// E15 — library micro-benchmarks (google-benchmark): the primitives the
// simulations spend their time in.

#include <benchmark/benchmark.h>

#include <memory>

#include "pob/core/block_set.h"
#include "pob/core/engine.h"
#include "pob/core/rng.h"
#include "pob/overlay/builders.h"
#include "pob/rand/randomized.h"
#include "pob/sched/binomial_pipeline.h"

namespace pob {
namespace {

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void BM_RngBelow(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.below(1000));
}
BENCHMARK(BM_RngBelow);

void BM_BlockSetHasUseful(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  BlockSet src(k), dst(k);
  Rng rng(2);
  for (BlockId b = 0; b < k; ++b) {
    if (rng.chance(0.5)) src.insert(b);
    if (rng.chance(0.5)) dst.insert(b);
  }
  for (auto _ : state) benchmark::DoNotOptimize(src.has_useful(dst, nullptr));
}
BENCHMARK(BM_BlockSetHasUseful)->Arg(64)->Arg(1000)->Arg(10000);

void BM_BlockSetPickRandom(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  BlockSet src(k), dst(k);
  Rng rng(3);
  for (BlockId b = 0; b < k; ++b) {
    if (rng.chance(0.6)) src.insert(b);
    if (rng.chance(0.3)) dst.insert(b);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(src.pick_random_useful(dst, nullptr, rng));
  }
}
BENCHMARK(BM_BlockSetPickRandom)->Arg(64)->Arg(1000)->Arg(10000);

void BM_BlockSetPickRarest(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  BlockSet src(k), dst(k);
  std::vector<std::uint32_t> freq(k);
  Rng rng(4);
  for (BlockId b = 0; b < k; ++b) {
    if (rng.chance(0.6)) src.insert(b);
    if (rng.chance(0.3)) dst.insert(b);
    freq[b] = rng.below(1000);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(src.pick_rarest_useful(dst, nullptr, freq, rng));
  }
}
BENCHMARK(BM_BlockSetPickRarest)->Arg(64)->Arg(1000);

void BM_BinomialPipelineFullRun(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    EngineConfig cfg;
    cfg.num_nodes = n;
    cfg.num_blocks = 64;
    cfg.download_capacity = 1;
    BinomialPipelineScheduler sched(n, 64);
    benchmark::DoNotOptimize(run(cfg, sched).completion_tick);
  }
}
BENCHMARK(BM_BinomialPipelineFullRun)->Arg(64)->Arg(1024);

void BM_RandomizedFullRun(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    EngineConfig cfg;
    cfg.num_nodes = n;
    cfg.num_blocks = 64;
    RandomizedScheduler sched(std::make_shared<CompleteOverlay>(n), {}, Rng(seed++));
    benchmark::DoNotOptimize(run(cfg, sched).completion_tick);
  }
}
BENCHMARK(BM_RandomizedFullRun)->Arg(64)->Arg(512);

void BM_MakeRandomRegular(benchmark::State& state) {
  const auto d = static_cast<std::uint32_t>(state.range(0));
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_random_regular(1000, d, rng).num_edges());
  }
}
BENCHMARK(BM_MakeRandomRegular)->Arg(10)->Arg(80);

}  // namespace
}  // namespace pob
