// The Mechanism interface: an incentive mechanism (§3) constrains which
// transfers may legally occur in a tick. The engine validates every tick's
// transfer set against the active mechanism before committing it, so an
// algorithm's claimed mechanism-compliance is machine-checked, not assumed.
//
// Implementations live in pob/mech; the interface lives in core because the
// engine depends on it.

#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "pob/core/swarm_state.h"
#include "pob/core/types.h"

namespace pob {

class Mechanism {
 public:
  virtual ~Mechanism() = default;

  virtual std::string_view name() const = 0;

  /// Validates a full tick's worth of simultaneous transfers against the
  /// mechanism, given the start-of-tick state. Returns an error description
  /// if the tick is illegal, std::nullopt if it complies.
  virtual std::optional<std::string> check_tick(
      Tick tick, std::span<const Transfer> transfers, const SwarmState& state) = 0;

  /// Called after a tick validates and is applied; mechanisms with history
  /// (e.g. credit ledgers) update themselves here.
  virtual void commit_tick(Tick tick, std::span<const Transfer> transfers,
                           const SwarmState& state) {
    (void)tick;
    (void)transfers;
    (void)state;
  }

  /// Conservative single-transfer pre-check for schedulers that want to ask
  /// "may `from` upload one more block to `to` right now?" before planning.
  /// A true result must not depend on the rest of the tick's transfers being
  /// absent (mechanisms where it would, like strict barter, return true and
  /// rely on check_tick).
  virtual bool may_upload(NodeId from, NodeId to) const {
    (void)from;
    (void)to;
    return true;
  }
};

/// The cooperative baseline of §2: no constraint at all.
class Cooperative final : public Mechanism {
 public:
  std::string_view name() const override { return "cooperative"; }
  std::optional<std::string> check_tick(Tick, std::span<const Transfer>,
                                        const SwarmState&) override {
    return std::nullopt;
  }
};

}  // namespace pob
