// §3.1.3 Riffle Pipeline: strict-barter compliance is machine-checked by the
// engine, and completion times track Theorem 2's n + k - 2 lower bound.

#include "pob/sched/riffle_pipeline.h"

#include <gtest/gtest.h>

#include "pob/analysis/bounds.h"
#include "pob/core/engine.h"
#include "pob/mech/barter.h"

namespace pob {
namespace {

RunResult run_riffle(std::uint32_t n, std::uint32_t k, std::uint32_t download_capacity = 2) {
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  cfg.upload_capacity = 1;
  cfg.download_capacity = download_capacity;
  RifflePipelineScheduler sched(n, k, 1, download_capacity);
  StrictBarter mech;
  return run(cfg, sched, &mech);
}

TEST(RifflePipeline, SingleCycleCompletesInTwoNMinusThree) {
  // k = n - 1: the paper's worked example completes at tick 2n - 3.
  for (const std::uint32_t n : {3u, 4u, 5u, 8u, 16u, 33u, 64u}) {
    const std::uint32_t k = n - 1;
    const RunResult r = run_riffle(n, k);
    ASSERT_TRUE(r.completed) << "n=" << n;
    EXPECT_EQ(r.completion_tick, 2 * n - 3) << "n=" << n;
  }
}

TEST(RifflePipeline, MultipleOfCycleMeetsTheorem2Bound) {
  // k = c * (n - 1) with d = 2u: completion matches n + k - 2 exactly.
  for (const std::uint32_t n : {4u, 7u, 12u, 20u}) {
    for (const std::uint32_t c : {2u, 3u, 5u}) {
      const std::uint32_t k = c * (n - 1);
      const RunResult r = run_riffle(n, k);
      ASSERT_TRUE(r.completed) << "n=" << n << " k=" << k;
      EXPECT_EQ(r.completion_tick, strict_barter_lower_bound_equal_bw(n, k))
          << "n=" << n << " k=" << k;
    }
  }
}

class RiffleGeneral
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(RiffleGeneral, CompletesUnderStrictBarterNearBound) {
  const auto [n, k] = GetParam();
  const RunResult r = run_riffle(n, k);
  ASSERT_TRUE(r.completed) << "n=" << n << " k=" << k;
  // Theorem 2's d >= 2u capability-ramp bound always applies...
  EXPECT_GE(r.completion_tick, strict_barter_lower_bound_ramp(n, k))
      << "n=" << n << " k=" << k;
  // ...and Theorem 3 flavor: within k + 2n of optimal even for ragged k.
  EXPECT_LE(r.completion_tick, k + 2 * n) << "n=" << n << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RiffleGeneral,
    ::testing::Combine(::testing::Values(3u, 5u, 9u, 16u, 30u),
                       ::testing::Values(1u, 2u, 3u, 7u, 15u, 40u, 101u)));

TEST(RifflePipeline, ClientOneFinishesFirstAtTickN) {
  // §3.1.3's worked example: with k = n - 1, "after n ticks, client C_1
  // obtains all the blocks", and each later client trails by one tick
  // (except the final pair, which finish together at 2n - 3).
  const std::uint32_t n = 12, k = 11;
  const RunResult r = run_riffle(n, k);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.client_completion[0], n);  // C_1
  for (NodeId c = 1; c + 2 < n - 1; ++c) {
    EXPECT_EQ(r.client_completion[c], n + c) << "client " << c + 1;
  }
  EXPECT_EQ(r.client_completion[n - 3], 2 * n - 3);
  EXPECT_EQ(r.client_completion[n - 2], 2 * n - 3);
}

TEST(RifflePipeline, EveryClientUploadsExactlyKBlocksInFullCycles) {
  // Barter symmetry: in the k = n - 1 riffle every client gives exactly as
  // much as it takes (minus the server-provided seed block).
  const std::uint32_t n = 10, k = 9;
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  cfg.download_capacity = 2;
  RifflePipelineScheduler sched(n, k, 1, 2);
  const RunResult r = run(cfg, sched);
  ASSERT_TRUE(r.completed);
  for (NodeId c = 1; c < n; ++c) {
    EXPECT_EQ(r.uploads_per_node[c], k - 1) << "client " << c;
  }
  EXPECT_EQ(r.uploads_per_node[kServer], k);
}

TEST(RifflePipeline, WorksWithUnitDownloadCapacityAtACost) {
  // d = u forces server hand-offs and barter to serialize; the run must
  // still complete and strict barter still holds.
  const RunResult r = run_riffle(8, 21, /*download_capacity=*/1);
  ASSERT_TRUE(r.completed);
  EXPECT_GE(r.completion_tick, strict_barter_lower_bound_equal_bw(8, 21));
}

TEST(RifflePipeline, TwoNodesDegenerateToServerStreaming) {
  const RunResult r = run_riffle(2, 5);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.completion_tick, 5u);
}

TEST(RifflePipeline, ScheduleLengthMatchesEngineCompletion) {
  RifflePipelineScheduler sched(10, 27, 1, 2);
  EngineConfig cfg;
  cfg.num_nodes = 10;
  cfg.num_blocks = 27;
  cfg.download_capacity = 2;
  StrictBarter mech;
  const RunResult r = run(cfg, sched, &mech);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.completion_tick, sched.schedule_length());
}

}  // namespace
}  // namespace pob
