// Deterministic scenario fuzzing: sample `budget` scenarios as pure
// functions of a base seed, run each through the differential oracle on a
// thread pool, and report failures plus a digest of the whole scenario
// stream. Everything is index-addressed, so the failures, the digest, and
// the order they are reported in are bit-identical at any --jobs value.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pob/check/scenario.h"

namespace pob::check {

struct FuzzFailure {
  std::uint32_t index = 0;
  Scenario scenario;
  std::string diagnosis;
};

struct FuzzReport {
  std::uint32_t budget = 0;
  std::uint32_t failed = 0;
  /// FNV-1a over every scenario's description and outcome, in index order —
  /// two runs with the same (seed, budget) must produce the same digest at
  /// any job count.
  std::uint64_t stream_digest = 0;
  std::vector<FuzzFailure> failures;  ///< capped at 32, lowest indices first
};

/// Which engines the sampled stream exercises: the sampler's natural mix
/// (roughly 1 in 4 scenarios on the scale engine, a third of those on the
/// stream layer), or every scenario forced onto one engine for targeted
/// smoke runs. Forcing re-sanitizes, so a scenario sampled for one engine
/// lands in the other's legal space. kStreamOnly forces the hybrid
/// tick+event layer (arrivals, rate churn, playback demand) on every draw.
enum class EngineFilter : std::uint8_t { kMixed, kCoreOnly, kScaleOnly, kStreamOnly };

/// Runs `budget` scenarios sampled from `base_seed`. `fault` is injected
/// into every scenario (kNone for a clean run). `jobs` as in
/// repeat_trials_parallel: 0 = all cores, results independent of the value.
FuzzReport fuzz_many(std::uint64_t base_seed, std::uint32_t budget, unsigned jobs,
                     FaultKind fault = FaultKind::kNone,
                     EngineFilter engines = EngineFilter::kMixed);

/// Greedily shrinks a failing scenario: tries halving/decrementing the node
/// and block counts, dropping churn, heterogeneity, mechanisms, and overlay
/// structure, keeping each mutation only if the scenario still fails. The
/// result is a (locally) minimal repro with the final diagnosis attached.
struct MinimizedScenario {
  Scenario scenario;
  std::string diagnosis;
  std::uint32_t steps_tried = 0;
};

MinimizedScenario minimize(const Scenario& failing);

}  // namespace pob::check
