#include "pob/overlay/overlay.h"

#include <gtest/gtest.h>

#include <set>

#include "pob/overlay/builders.h"

namespace pob {
namespace {

TEST(CompleteOverlay, NeighborsEnumerateEveryOtherNode) {
  const CompleteOverlay ov(5);
  EXPECT_EQ(ov.num_nodes(), 5u);
  for (NodeId u = 0; u < 5; ++u) {
    EXPECT_EQ(ov.degree(u), 4u);
    std::set<NodeId> seen;
    for (std::uint32_t i = 0; i < 4; ++i) {
      const NodeId v = ov.neighbor(u, i);
      EXPECT_NE(v, u);
      seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u);
  }
  EXPECT_TRUE(ov.adjacent(0, 4));
  EXPECT_FALSE(ov.adjacent(2, 2));
  EXPECT_DOUBLE_EQ(ov.average_degree(), 4.0);
}

TEST(GraphOverlay, WrapsGraphFaithfully) {
  const GraphOverlay ov(make_ring(6));
  EXPECT_EQ(ov.num_nodes(), 6u);
  for (NodeId u = 0; u < 6; ++u) EXPECT_EQ(ov.degree(u), 2u);
  EXPECT_TRUE(ov.adjacent(0, 1));
  EXPECT_TRUE(ov.adjacent(0, 5));
  EXPECT_FALSE(ov.adjacent(0, 3));
  EXPECT_DOUBLE_EQ(ov.average_degree(), 2.0);
}

TEST(GraphOverlay, RejectsUnfinalizedGraph) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(GraphOverlay{std::move(g)}, std::invalid_argument);
}

TEST(RingAndTree, Builders) {
  const Graph ring = make_ring(5);
  EXPECT_EQ(ring.num_edges(), 5u);
  EXPECT_TRUE(ring.is_connected());
  EXPECT_THROW(make_ring(2), std::invalid_argument);

  const Graph tree = make_kary_tree(7, 2);
  EXPECT_EQ(tree.num_edges(), 6u);
  EXPECT_TRUE(tree.is_connected());
  EXPECT_EQ(tree.degree(0), 2u);   // root: two children
  EXPECT_EQ(tree.degree(1), 3u);   // parent + two children
  EXPECT_EQ(tree.degree(6), 1u);   // leaf
  EXPECT_THROW(make_kary_tree(1, 2), std::invalid_argument);
  EXPECT_THROW(make_kary_tree(5, 0), std::invalid_argument);
}

}  // namespace
}  // namespace pob
