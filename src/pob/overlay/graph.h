// Simple undirected graph with CSR-style adjacency after finalization, plus
// the structural queries the experiments need (connectivity, degree stats,
// BFS eccentricity). Overlay networks in the paper are undirected: an edge
// means the two endpoints know each other's content and may transfer either
// way (§2.4.1).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pob/core/types.h"

namespace pob {

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::uint32_t num_nodes);

  std::uint32_t num_nodes() const { return num_nodes_; }
  std::uint64_t num_edges() const { return edges_.size() / 2; }

  /// Adds the undirected edge {u, v}. Requires u != v and both in range.
  /// Must be called before finalize(); duplicate edges are rejected at
  /// finalize() time.
  void add_edge(NodeId u, NodeId v);

  /// Sorts adjacency lists and validates simplicity (no parallel edges).
  /// Throws std::invalid_argument on duplicates. Idempotent.
  void finalize();

  bool finalized() const { return finalized_; }

  /// Sorted neighbor list of `u`. Requires finalize().
  std::span<const NodeId> neighbors(NodeId u) const;

  std::uint32_t degree(NodeId u) const {
    return static_cast<std::uint32_t>(offsets_[u + 1] - offsets_[u]);
  }

  /// Binary search over the sorted adjacency. Requires finalize().
  bool has_edge(NodeId u, NodeId v) const;

  std::uint32_t min_degree() const;
  std::uint32_t max_degree() const;
  double average_degree() const;

  /// True when every node is reachable from node 0. Requires finalize().
  bool is_connected() const;

  /// BFS eccentricity of `source` (max hop distance to any reachable node);
  /// returns kUnreachable if some node is unreachable. Requires finalize().
  std::uint32_t eccentricity(NodeId source) const;

  static constexpr std::uint32_t kUnreachable = 0xffffffffu;

 private:
  std::uint32_t num_nodes_ = 0;
  bool finalized_ = false;
  std::vector<std::pair<NodeId, NodeId>> pending_;  // pre-finalize edge list
  std::vector<NodeId> edges_;                       // CSR payload (both directions)
  std::vector<std::uint64_t> offsets_;              // CSR offsets, size n+1
};

}  // namespace pob
