#include "pob/exp/sweep.h"

#include <gtest/gtest.h>

namespace pob {
namespace {

TEST(Sweep, AggregatesCompletedRuns) {
  const TrialStats stats = repeat_trials(4, [](std::uint32_t i) {
    return TrialOutcome{true, 100.0 + i, 50.0 + i};
  });
  EXPECT_EQ(stats.runs, 4u);
  EXPECT_EQ(stats.censored, 0u);
  EXPECT_DOUBLE_EQ(stats.completion.mean, 101.5);
  EXPECT_DOUBLE_EQ(stats.mean_completion.mean, 51.5);
  EXPECT_FALSE(stats.all_censored());
}

TEST(Sweep, CountsCensoredRuns) {
  const TrialStats stats = repeat_trials(5, [](std::uint32_t i) {
    TrialOutcome o;
    o.completed = i % 2 == 0;
    o.completion = 10.0;
    o.mean_completion = 5.0;
    return o;
  });
  EXPECT_EQ(stats.censored, 2u);
  EXPECT_EQ(stats.completion.count, 3u);
}

TEST(Sweep, AllCensored) {
  const TrialStats stats =
      repeat_trials(3, [](std::uint32_t) { return TrialOutcome{}; });
  EXPECT_TRUE(stats.all_censored());
  EXPECT_EQ(completion_cell(stats, 5000.0), ">5000 (censored)");
}

TEST(Sweep, CompletionCellFormats) {
  const TrialStats clean = repeat_trials(3, [](std::uint32_t) {
    return TrialOutcome{true, 100.0, 50.0};
  });
  EXPECT_EQ(completion_cell(clean, 1e9), "100.0 +- 0.0");

  const TrialStats mixed = repeat_trials(4, [](std::uint32_t i) {
    return TrialOutcome{i > 0, 100.0, 50.0};
  });
  EXPECT_EQ(completion_cell(mixed, 1e9), "100.0 +- 0.0 [1/4 censored]");
}

}  // namespace
}  // namespace pob
