#include "pob/overlay/overlay.h"

#include <algorithm>
#include <stdexcept>

namespace pob {

double Overlay::average_degree() const {
  const std::uint32_t n = num_nodes();
  if (n == 0) return 0.0;
  double total = 0.0;
  for (NodeId u = 0; u < n; ++u) total += degree(u);
  return total / n;
}

GraphOverlay::GraphOverlay(Graph graph) : graph_(std::move(graph)) {
  if (!graph_.finalized()) throw std::invalid_argument("GraphOverlay: graph not finalized");
}

std::uint32_t GraphOverlay::neighbor_index(NodeId u, NodeId v) const {
  const auto nb = graph_.neighbors(u);
  const auto it = std::lower_bound(nb.begin(), nb.end(), v);
  if (it == nb.end() || *it != v) return kUnlimited;
  return static_cast<std::uint32_t>(it - nb.begin());
}

}  // namespace pob
