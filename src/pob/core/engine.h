// Synchronous tick engine.
//
// Implements the paper's bandwidth and data-transfer model (§2.1): per tick,
// each node uploads at most `upload_capacity` blocks and downloads at most
// `download_capacity` blocks; a block can only be forwarded starting the tick
// after it was fully received; a transfer's sender must hold the block and
// its receiver must lack it. Any violation by a scheduler is a bug and makes
// the engine throw EngineViolation — algorithms ship with machine-checked
// model compliance.

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "pob/core/mechanism.h"
#include "pob/core/scheduler.h"
#include "pob/core/swarm_state.h"
#include "pob/core/types.h"

namespace pob {

/// Thrown when a scheduler plans a transfer that violates the bandwidth /
/// data-transfer model or the active incentive mechanism.
class EngineViolation : public std::runtime_error {
 public:
  explicit EngineViolation(const std::string& what) : std::runtime_error(what) {}
};

struct EngineConfig {
  std::uint32_t num_nodes = 0;   ///< total nodes, server included (>= 2)
  std::uint32_t num_blocks = 0;  ///< file size in blocks (>= 1)

  /// Client upload capacity in blocks/tick (paper: 1).
  std::uint32_t upload_capacity = 1;

  /// Download capacity in blocks/tick; kUnlimited models d = infinity. The
  /// paper requires d >= u and notes cooperative results are insensitive to
  /// d, while the barter bounds (Theorems 2-3) depend on it.
  std::uint32_t download_capacity = kUnlimited;

  /// Server upload capacity; 0 means "same as upload_capacity". §2.3.4's
  /// higher-server-bandwidth variant sets this to m * upload_capacity.
  std::uint32_t server_upload_capacity = 0;

  /// Per-node capacity overrides (heterogeneous bandwidths, §2.3.4's
  /// asynchrony discussion). When non-empty, must have num_nodes entries
  /// and takes precedence over the scalar fields above (including
  /// server_upload_capacity).
  std::vector<std::uint32_t> upload_capacities;
  std::vector<std::uint32_t> download_capacities;

  /// Churn injection: node `second` departs at the START of tick `first`
  /// (it can neither send nor receive from that tick on, its replicas stop
  /// counting, and it no longer needs to complete). The server cannot
  /// depart.
  std::vector<std::pair<Tick, NodeId>> departures;

  /// Selfish-leecher mode: every client departs the tick after it completes
  /// (it grabs the file and leaves, contributing nothing further) — the
  /// regime where upload incentives matter most. The server stays.
  bool depart_on_complete = false;

  /// Lossy churn mode: when true, transfers touching a departed node are
  /// dropped (broken connections) and counted in RunResult::
  /// dropped_transfers, and so are the downstream casualties of rigid
  /// schedules — sends of blocks whose delivery was severed by a departure,
  /// and re-delivery attempts of such blocks. Model violations between two
  /// active nodes with no departed node in the causal chain still throw, as
  /// do capacity violations: those are genuine scheduler bugs, and churn
  /// must not mask them. This is what lets the binomial pipeline run under
  /// churn and simply lose the affected flows — the §2.4 robustness story.
  bool drop_transfers_involving_inactive = false;

  /// Hard tick cap; 0 selects a generous default that any terminating
  /// algorithm in this codebase stays far below. Runs that hit the cap
  /// return completed = false (used to censor the "off the charts" region
  /// of Figures 6-7).
  Tick max_ticks = 0;

  /// Record the full transfer log (memory-heavy; for tests/diagnostics).
  bool record_trace = false;

  /// Stall detection: when nonzero, a run whose total transfers over the
  /// last `stall_window` ticks fall below `stall_utilization` of the
  /// available upload slots is declared stalled and censored (completed =
  /// false, stalled = true). The credit-starved regimes of Figures 6-7
  /// creep along on server bandwidth alone (~1/n utilization); this cuts
  /// those runs off in O(window) instead of the full tick cap.
  Tick stall_window = 0;
  double stall_utilization = 0.02;
};

struct RunResult {
  bool completed = false;       ///< all clients complete within the cap
  bool stalled = false;         ///< cut off by stall detection
  Tick completion_tick = 0;     ///< paper's T (valid when completed)
  Tick ticks_executed = 0;      ///< ticks actually simulated
  Count total_transfers = 0;

  /// Transfers discarded under drop_transfers_involving_inactive: broken
  /// connections plus their downstream casualties. Always 0 outside lossy
  /// churn mode.
  Count dropped_transfers = 0;
  std::uint32_t departed = 0;              ///< nodes that left (churn runs)
  std::vector<Tick> client_completion;     ///< per client (index 0 = node 1)
  /// Per-node upload totals (fairness accounting). 64-bit: one node's
  /// uploads are bounded by ticks * capacity, which overflows 32 bits on
  /// long runs well before it overflows these.
  std::vector<Count> uploads_per_node;
  std::vector<Count> uploads_per_tick;  ///< utilization trace

  /// Upload slots actually available in each executed tick (departed nodes'
  /// capacity excluded). Parallel to uploads_per_tick; filled by the engine,
  /// may be empty for hand-built results (utilization then falls back to the
  /// static config capacity). 64-bit: the slot sum is n * capacity, which a
  /// mega-swarm with heterogeneous capacities pushes past 2^32.
  std::vector<Count> active_slots_per_tick;
  std::vector<std::vector<Transfer>> trace;     ///< per tick, if recorded

  // --- Streaming-demand metrics (pob/scale/stream) ----------------------
  // Filled only by streaming drives; empty / zero for plain runs, so plain
  // results (and their digests) are unaffected by these fields existing.

  /// Per client (index 0 = node 1): ticks from the client's arrival until
  /// its playback prefix first reached startup_blocks. NaN = never started
  /// (the censored-client convention client_completion uses tick 0 for).
  std::vector<double> startup_latency;

  /// Per client: ticks the playback cursor spent paused after startup
  /// because the next in-order block had not arrived yet.
  std::vector<Count> rebuffer_ticks;

  Count deadline_misses = 0;  ///< playback deadlines that fired unmet
  Count deadline_checks = 0;  ///< playback deadlines evaluated in total

  /// Clients that never reached startup before the run was cut off
  /// (startup_latency NaN) vs clients that started but paused at least
  /// once. Disjoint by construction: a never-started client has no playback
  /// cursor to pause, so it accrues no rebuffer ticks.
  std::uint32_t never_started = 0;
  std::uint32_t rebuffered_clients = 0;

  /// Mean client completion tick ("average time for nodes to finish",
  /// §3.2.4 remarks on it being less dramatic than the maximum).
  double mean_client_completion() const;

  /// deadline_misses / deadline_checks (0 when no deadlines were checked).
  double deadline_miss_fraction() const;

  /// Sum of rebuffer_ticks over all clients.
  Count total_rebuffer_ticks() const;

  /// Fraction of upload slots used in tick t (1-based). Uses the recorded
  /// per-tick active capacity when available, so departures shrink the
  /// denominator; falls back to the static capacities in `cfg`.
  double utilization(Tick t, const EngineConfig& cfg) const;
};

/// Runs `scheduler` under `config` until all clients are complete or the
/// tick cap is reached. If `mechanism` is non-null every tick is validated
/// against it (and committed to it). The final swarm state is discarded;
/// use run_with_state to keep it.
RunResult run(const EngineConfig& config, Scheduler& scheduler,
              Mechanism* mechanism = nullptr);

/// As run(), but executes against a caller-provided state (must be freshly
/// constructed with matching dimensions) so callers can inspect final
/// possession.
RunResult run_with_state(const EngineConfig& config, Scheduler& scheduler,
                         Mechanism* mechanism, SwarmState& state);

/// The default tick cap used when EngineConfig::max_ticks == 0.
Tick default_tick_cap(std::uint32_t num_nodes, std::uint32_t num_blocks);

}  // namespace pob
