#include <gtest/gtest.h>

#include "pob/check/fuzzer.h"

namespace pob::check {
namespace {

TEST(SampleScenario, IsAPureFunctionOfSeedAndIndex) {
  for (std::uint32_t i = 0; i < 32; ++i) {
    EXPECT_EQ(sample_scenario(7, i).describe(), sample_scenario(7, i).describe());
  }
  // Different indices explore the space rather than repeating one scenario.
  EXPECT_NE(sample_scenario(7, 0).describe(), sample_scenario(7, 1).describe());
}

TEST(SampleScenario, SanitizeIsIdempotent) {
  for (std::uint32_t i = 0; i < 64; ++i) {
    Scenario sc = sample_scenario(11, i);
    const std::string before = sc.describe();
    sanitize(sc);
    EXPECT_EQ(sc.describe(), before) << "index " << i;
  }
}

TEST(FuzzMany, CleanRunWithIdenticalStreamAtAnyJobCount) {
  const FuzzReport serial = fuzz_many(7, 60, 1);
  const FuzzReport parallel4 = fuzz_many(7, 60, 4);
  EXPECT_EQ(serial.failed, 0u)
      << (serial.failures.empty() ? "" : serial.failures.front().diagnosis);
  EXPECT_EQ(serial.stream_digest, parallel4.stream_digest);
  EXPECT_EQ(parallel4.failed, 0u);
  // And reproducible across invocations.
  EXPECT_EQ(fuzz_many(7, 60, 2).stream_digest, serial.stream_digest);
  // A different seed explores a different stream.
  EXPECT_NE(fuzz_many(8, 60, 2).stream_digest, serial.stream_digest);
}

TEST(FuzzMany, InjectedSameTickForwardIsAlwaysCaught) {
  const FuzzReport report = fuzz_many(42, 8, 2, FaultKind::kSameTickForward);
  EXPECT_EQ(report.failed, report.budget);
  ASSERT_FALSE(report.failures.empty());
  EXPECT_EQ(report.failures.front().index, 0u);
  EXPECT_FALSE(report.failures.front().diagnosis.empty());
}

TEST(Minimize, ShrinksAFaultyScenarioToAFewNodes) {
  const FuzzReport report = fuzz_many(42, 1, 1, FaultKind::kSameTickForward);
  ASSERT_EQ(report.failures.size(), 1u);
  const MinimizedScenario min = minimize(report.failures.front().scenario);
  EXPECT_LE(min.scenario.n, 8u);
  EXPECT_LE(min.scenario.k, 4u);
  EXPECT_FALSE(min.diagnosis.empty());
  // The minimized repro still fails, and its gtest emitter mentions the seed.
  EXPECT_FALSE(run_scenario(min.scenario).ok);
  const std::string test_case = min.scenario.to_gtest(min.diagnosis);
  EXPECT_NE(test_case.find("FaultKind::kSameTickForward"), std::string::npos);
  EXPECT_NE(test_case.find("run_scenario"), std::string::npos);
}

}  // namespace
}  // namespace pob::check
