// E2 / Figure 3 — randomized cooperative algorithm, completion time T vs n.
//
// Paper setup: k = 1000 blocks, complete-graph overlay, Random block
// selection, mean with 95% CIs over repeated runs, n from 10 to 10000 (log
// x-axis). Expected shape: T rises only ~linearly in log n, staying within a
// few percent of optimal (the paper reports ~1040-1100 ticks over the whole
// range).

#include <iostream>
#include <memory>

#include "bench_util.h"
#include "pob/analysis/bounds.h"

namespace pob::bench {
namespace {

int main_impl(int argc, char** argv) {
  const Args args(argc, argv);
  TrialRunner trials(args);
  const auto k = static_cast<std::uint32_t>(args.get_int("k", 1000));
  const auto runs = static_cast<std::uint32_t>(args.get_int("runs", 3));
  std::vector<std::int64_t> ns =
      args.get_int_list("n", {10, 32, 100, 316, 1000, 3162, 10000});
  if (args.has("quick")) ns = {10, 100, 1000};

  Table table({"n", "k", "T (mean +- 95% CI)", "mean-finish", "optimal", "T/optimal"});
  for (const std::int64_t n64 : ns) {
    const auto n = static_cast<std::uint32_t>(n64);
    EngineConfig cfg;
    cfg.num_nodes = n;
    cfg.num_blocks = k;
    const TrialStats stats = trials(runs, [&](std::uint32_t i) {
      return randomized_trial(cfg, std::make_shared<CompleteOverlay>(n), {},
                              trial_seed(0xF16'3000 + 977ull * n, i));
    });
    const Tick opt = cooperative_lower_bound(n, k);
    table.add_row({std::to_string(n), std::to_string(k),
                   fmt_ci(stats.completion.mean, stats.completion.ci95),
                   fmt(stats.mean_completion.mean),
                   std::to_string(opt),
                   fmt(stats.completion.mean / static_cast<double>(opt), 3)});
  }
  std::cout << "# E2/Figure 3: randomized cooperative, T vs n (complete graph, "
               "Random policy, k = " << k << ")\n";
  emit(args, table);
  trials.report(std::cout);
  return 0;
}

}  // namespace
}  // namespace pob::bench

int main(int argc, char** argv) { return pob::bench::main_impl(argc, argv); }
