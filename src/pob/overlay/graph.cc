#include "pob/overlay/graph.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <stdexcept>

namespace pob {

Graph::Graph(std::uint32_t num_nodes) : num_nodes_(num_nodes) {
  offsets_.assign(num_nodes_ + 1, 0);
}

void Graph::add_edge(NodeId u, NodeId v) {
  if (finalized_) throw std::logic_error("Graph::add_edge after finalize");
  if (u == v) throw std::invalid_argument("Graph: self loop");
  if (u >= num_nodes_ || v >= num_nodes_) throw std::invalid_argument("Graph: node out of range");
  pending_.emplace_back(u, v);
}

void Graph::finalize() {
  if (finalized_) return;
  std::vector<std::uint64_t> counts(num_nodes_ + 1, 0);
  for (const auto& [u, v] : pending_) {
    ++counts[u + 1];
    ++counts[v + 1];
  }
  offsets_.assign(num_nodes_ + 1, 0);
  for (std::uint32_t i = 0; i < num_nodes_; ++i) offsets_[i + 1] = offsets_[i] + counts[i + 1];
  edges_.assign(offsets_[num_nodes_], 0);
  std::vector<std::uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [u, v] : pending_) {
    edges_[cursor[u]++] = v;
    edges_[cursor[v]++] = u;
  }
  pending_.clear();
  pending_.shrink_to_fit();
  for (std::uint32_t u = 0; u < num_nodes_; ++u) {
    auto begin = edges_.begin() + static_cast<std::ptrdiff_t>(offsets_[u]);
    auto end = edges_.begin() + static_cast<std::ptrdiff_t>(offsets_[u + 1]);
    std::sort(begin, end);
    if (std::adjacent_find(begin, end) != end) {
      throw std::invalid_argument("Graph: duplicate edge at node " + std::to_string(u));
    }
  }
  finalized_ = true;
}

std::span<const NodeId> Graph::neighbors(NodeId u) const {
  assert(finalized_);
  return {edges_.data() + offsets_[u], edges_.data() + offsets_[u + 1]};
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  assert(finalized_);
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::uint32_t Graph::min_degree() const {
  std::uint32_t m = kUnreachable;
  for (NodeId u = 0; u < num_nodes_; ++u) m = std::min(m, degree(u));
  return m;
}

std::uint32_t Graph::max_degree() const {
  std::uint32_t m = 0;
  for (NodeId u = 0; u < num_nodes_; ++u) m = std::max(m, degree(u));
  return m;
}

double Graph::average_degree() const {
  if (num_nodes_ == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges()) / static_cast<double>(num_nodes_);
}

bool Graph::is_connected() const {
  return eccentricity(0) != kUnreachable;
}

std::uint32_t Graph::eccentricity(NodeId source) const {
  assert(finalized_);
  std::vector<std::uint32_t> dist(num_nodes_, kUnreachable);
  std::queue<NodeId> frontier;
  dist[source] = 0;
  frontier.push(source);
  std::uint32_t seen = 1;
  std::uint32_t ecc = 0;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const NodeId v : neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        ecc = std::max(ecc, dist[v]);
        ++seen;
        frontier.push(v);
      }
    }
  }
  return seen == num_nodes_ ? ecc : kUnreachable;
}

}  // namespace pob
