// Calendar queue for the hybrid tick+event stream layer (stream_engine.h):
// integer-tick buckets in a power-of-two ring, with a far-future overflow
// list migrated in ring-sized windows. Push and collect are O(1) amortized
// per event — a million arrival events cost a million bucket appends, not a
// million heap sifts.
//
// Determinism contract: collect(t) returns the tick's events sorted by
// (node, kind, payload), so the order the driver applies them in is a pure
// function of the event SET — independent of push order, which in turn is
// independent of the job count (events are only pushed from the serial
// driver loop and the serial workload build).

#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "pob/core/types.h"

namespace pob::scale::stream {

enum class EventKind : std::uint8_t {
  kArrive = 0,   ///< node joins the swarm at the start of the tick
  kRate = 1,     ///< node's (up, down) capacities change
  kDeadline = 2, ///< playback deadline timer (DemandTracker)
};

struct StreamEvent {
  Tick time = 0;
  NodeId node = kNoNode;
  EventKind kind = EventKind::kArrive;
  std::uint32_t up = 0;      ///< kRate payload
  std::uint32_t down = 0;    ///< kRate payload
  BlockId block = kNoBlock;  ///< kDeadline payload: block under check

  /// Total order within a tick: node id first (the ISSUE's "timestamp then
  /// node id"), then kind, then the payload fields so even degenerate
  /// duplicate events sort deterministically.
  friend bool operator<(const StreamEvent& a, const StreamEvent& b) {
    if (a.node != b.node) return a.node < b.node;
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.block != b.block) return a.block < b.block;
    if (a.up != b.up) return a.up < b.up;
    return a.down < b.down;
  }
};

class CalendarQueue {
 public:
  /// `ring_bits`: log2 of the ring width (default 1024 buckets). Width only
  /// affects how often the overflow list is touched, never the result.
  explicit CalendarQueue(std::uint32_t ring_bits = 10)
      : mask_((std::size_t{1} << ring_bits) - 1), ring_(std::size_t{1} << ring_bits) {}

  /// Schedules an event. `ev.time` must not precede a tick already
  /// collected (the driver only schedules into the future).
  void push(const StreamEvent& ev) {
    if (ev.time < base_) {
      throw std::logic_error("CalendarQueue: push into the past");
    }
    ++size_;
    if (ev.time < base_ + width()) {
      ring_[ev.time & mask_].push_back(ev);
    } else {
      overflow_.push_back(ev);
    }
  }

  /// Removes and returns all events with time == t, sorted (see
  /// StreamEvent::operator<). Ticks must be collected in non-decreasing
  /// order; the returned reference is valid until the next collect().
  const std::vector<StreamEvent>& collect(Tick t) {
    // Advance the ring window first, migrating newly in-range overflow.
    while (t >= base_ + width()) {
      base_ += static_cast<Tick>(width());
      if (!overflow_.empty()) {
        auto keep = overflow_.begin();
        for (auto it = overflow_.begin(); it != overflow_.end(); ++it) {
          if (it->time < base_ + width()) {
            ring_[it->time & mask_].push_back(*it);
          } else {
            *keep++ = *it;
          }
        }
        overflow_.erase(keep, overflow_.end());
      }
    }
    due_.clear();
    std::vector<StreamEvent>& bucket = ring_[t & mask_];
    // Within the current window a bucket holds exactly one tick's events
    // (times are congruent mod width and in [base_, base_ + width)).
    due_.swap(bucket);
    size_ -= due_.size();
    std::sort(due_.begin(), due_.end());
    return due_;
  }

  bool empty() const { return size_ == 0; }
  std::uint64_t size() const { return size_; }

  std::uint64_t memory_bytes() const {
    std::uint64_t bytes = overflow_.capacity() * sizeof(StreamEvent);
    bytes += due_.capacity() * sizeof(StreamEvent);
    for (const auto& bucket : ring_) bytes += bucket.capacity() * sizeof(StreamEvent);
    return bytes;
  }

 private:
  std::size_t width() const { return mask_ + 1; }

  std::size_t mask_;
  std::vector<std::vector<StreamEvent>> ring_;  // window [base_, base_ + width)
  std::vector<StreamEvent> overflow_;           // events at or past base_ + width
  std::vector<StreamEvent> due_;
  Tick base_ = 0;
  std::uint64_t size_ = 0;
};

}  // namespace pob::scale::stream
