#include "pob/exp/cli.h"

#include <gtest/gtest.h>

namespace pob {
namespace {

Args make_args(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return Args(static_cast<int>(v.size()), v.data());
}

TEST(Cli, ParsesEqualsAndSpaceForms) {
  const Args args = make_args({"prog", "--n=100", "--k", "50", "--quick"});
  EXPECT_EQ(args.program(), "prog");
  EXPECT_TRUE(args.has("n"));
  EXPECT_TRUE(args.has("quick"));
  EXPECT_FALSE(args.has("missing"));
  EXPECT_EQ(args.get_int("n", 0), 100);
  EXPECT_EQ(args.get_int("k", 0), 50);
  EXPECT_EQ(args.get_int("missing", 7), 7);
}

TEST(Cli, BareFlagBeforeAnotherFlag) {
  const Args args = make_args({"prog", "--full", "--runs=3"});
  EXPECT_TRUE(args.has("full"));
  EXPECT_EQ(args.get_int("runs", 0), 3);
  EXPECT_EQ(args.get_int("full", 9), 9);  // bare flag has no value
}

TEST(Cli, DoubleAndStringValues) {
  const Args args = make_args({"prog", "--rate=2.5", "--policy=rarest"});
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 2.5);
  EXPECT_EQ(args.get_string("policy", "random"), "rarest");
  EXPECT_EQ(args.get_string("other", "fallback"), "fallback");
}

TEST(Cli, IntListParsing) {
  const Args args = make_args({"prog", "--degrees=10,20,40"});
  EXPECT_EQ(args.get_int_list("degrees", {}), (std::vector<std::int64_t>{10, 20, 40}));
  EXPECT_EQ(args.get_int_list("none", {1, 2}), (std::vector<std::int64_t>{1, 2}));
}

TEST(Cli, RejectsPositionalArguments) {
  EXPECT_THROW(make_args({"prog", "oops"}), std::invalid_argument);
}

}  // namespace
}  // namespace pob
