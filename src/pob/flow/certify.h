// certify_completion_bound: a certified lower bound T* on the completion
// time of *any* legal schedule for a concrete scenario (config + overlay +
// mechanism family). Soundness contract: T* <= the completion tick of every
// schedule the engines accept — the fuzzer enforces this against all three
// engines on every scenario it generates.
//
// T* is the max of independently sound components (DESIGN.md §9 carries the
// arguments):
//   - last_block_bound: at most server_up blocks can first leave the server
//     per tick, and copies of the last-released block at most multiply by
//     (1 + max client upload) per tick — Theorem 1's argument, generalized;
//     exactly k - 1 + ceil(log2 n) at unit capacities.
//   - ramp_bound: cumulative upload capacity of the nodes that could
//     possibly hold a block yet (greedy highest-capacity infection
//     envelope) must cover all demand_clients * k receptions.
//   - pipe_bound: a client at BFS distance h whose inflow is capped at r
//     cannot finish before h - 1 + ceil(k / r).
//   - flow_bound: the time-expanded max-flow component — smallest horizon
//     at which k units route to the worst sink clients (per-block release
//     arcs included), found by exponential + binary search. Skipped on
//     complete topologies (the counting components are exact there) and
//     when the unrolled graph would exceed the arc budget.
//   - seed_bound / strict_ramp_bound (strict barter only): first blocks
//     come only from the server, and client-client transfers pair up —
//     Theorem 2's two regimes, generalized to arbitrary (u, d, server_up).

#pragma once

#include <cstdint>

#include "pob/core/engine.h"
#include "pob/core/types.h"
#include "pob/flow/time_expanded.h"
#include "pob/scale/topology.h"

namespace pob::flow {

struct CertifyOptions {
  /// Worst clients (by pipe score) given a full time-expanded flow search.
  std::uint32_t max_flow_sinks = 4;
  /// Skip the flow component when the unrolled graph would exceed this many
  /// arcs (the counting components still apply — the bound just loses the
  /// topology-aware refinement).
  std::uint64_t flow_arc_budget = 4'000'000;
  /// Absolute ceiling any component is clamped to (guards zero-capacity and
  /// disconnected scenarios where the true bound is "never").
  Tick horizon_cap = 1u << 20;
};

struct CompletionCertificate {
  Tick lower_bound = 0;        ///< T*: the max of every component below
  Tick last_block_bound = 0;   ///< per-block release + copy doubling
  Tick ramp_bound = 0;         ///< aggregate capability ramp
  Tick pipe_bound = 0;         ///< per-client distance / inflow counting
  Tick flow_bound = 0;         ///< time-expanded max-flow (0 when skipped)
  Tick seed_bound = 0;         ///< strict barter: server seeding (0 otherwise)
  Tick strict_ramp_bound = 0;  ///< strict barter: pairing ramp (0 otherwise)
  NodeId pipe_client = kNoNode;  ///< argmax client of pipe_bound
  NodeId flow_client = kNoNode;  ///< argmax client of flow_bound
  bool flow_evaluated = false;   ///< flow component actually ran
  std::uint32_t demand_clients = 0;  ///< clients that must complete
};

/// Certifies the scenario. A config with no demand clients (every client
/// departs) certifies trivially at 0. The topology must describe the edges
/// schedules may actually use — pass the complete topology for schedulers
/// that ignore their overlay.
CompletionCertificate certify_completion_bound(const EngineConfig& config,
                                               const scale::Topology& topology,
                                               BarterModel mechanism,
                                               const CertifyOptions& options = {});

/// simulated / certified — the certified price ratio (0 when either is 0).
double certified_price(Tick simulated, Tick certified);

}  // namespace pob::flow
