// E17 — §2.3.4 "Optimizing for Physical Network".
//
// Nodes placed in the plane (uniform and clustered layouts); the hypercube
// ID assignment is optimized by local search to shorten the overlay's
// physical links. Reported: total link cost before/after, and the mean link
// length, which is what every binomial-pipeline transfer pays.

#include <iostream>

#include "bench_util.h"
#include "pob/overlay/embedding.h"

namespace pob::bench {
namespace {

int main_impl(int argc, char** argv) {
  const Args args(argc, argv);
  std::vector<std::int64_t> ns = args.get_int_list("n", {64, 256, 1000});
  const auto iterations = static_cast<std::uint32_t>(args.get_int("iterations", 60000));
  const auto runs = static_cast<std::uint32_t>(args.get_int("runs", 3));

  Table table({"layout", "n", "initial-cost", "optimized-cost", "reduction",
               "accepted-swaps"});
  for (const std::int64_t n64 : ns) {
    const auto n = static_cast<std::uint32_t>(n64);
    for (const bool clustered : {false, true}) {
      double init = 0, fin = 0, swaps = 0;
      for (std::uint32_t i = 0; i < runs; ++i) {
        Rng rng(0xE3B'0000 + 17ull * n + (clustered ? 999 : 0) + i);
        const std::vector<Point> pts =
            clustered ? clustered_points(n, 8, rng) : random_points(n, rng);
        const EmbeddingResult res =
            optimize_hypercube_embedding(make_hypercube_map(n), pts, rng, iterations);
        init += res.initial_cost;
        fin += res.final_cost;
        swaps += res.accepted_swaps;
      }
      init /= runs;
      fin /= runs;
      table.add_row({clustered ? "clustered(8)" : "uniform", std::to_string(n),
                     fmt(init), fmt(fin), fmt(100.0 * (1.0 - fin / init), 1) + "%",
                     fmt(swaps / runs, 0)});
    }
  }
  std::cout << "# E17/§2.3.4: physical-network-aware hypercube embedding "
               "(local search, " << iterations << " proposals)\n";
  emit(args, table);
  return 0;
}

}  // namespace
}  // namespace pob::bench

int main(int argc, char** argv) { return pob::bench::main_impl(argc, argv); }
