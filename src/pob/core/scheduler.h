// The Scheduler interface: a content-distribution algorithm, in the paper's
// sense, is exactly "a strategy that determines, at every tick, which node
// transmits which block to which client" (§2.3.1). The engine calls
// plan_tick() once per tick with the start-of-tick state and executes the
// returned transfers simultaneously.

#pragma once

#include <string_view>
#include <vector>

#include "pob/core/swarm_state.h"
#include "pob/core/types.h"

namespace pob {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Human-readable algorithm name for tables and traces.
  virtual std::string_view name() const = 0;

  /// Appends this tick's transfers to `out`. `tick` is 1-based; `state`
  /// reflects possession at the start of the tick. Transfers must satisfy
  /// the bandwidth and data-transfer model — the engine validates and throws
  /// on violations, treating them as scheduler bugs.
  virtual void plan_tick(Tick tick, const SwarmState& state,
                         std::vector<Transfer>& out) = 0;
};

}  // namespace pob
