// Trace (de)serialization and replay: save a run's full transfer schedule to
// a compact text format, reload it later, and replay it through the
// validating engine (optionally under a different mechanism — e.g. record a
// cooperative schedule and ask "would this have been legal under strict
// barter?").
//
// Format (line-oriented, '#' comments allowed before the header):
//
//   pobtrace 1 <n> <k> <upload> <download> <server_upload>
//   <from>:<to>:<block> <from>:<to>:<block> ...     # tick 1
//   ...                                             # one line per tick
//
// An empty line encodes an idle tick. `download` of 0 encodes unlimited.
//
// Version 2 adds optional '!' directive lines between the header and the
// first tick, carrying the config extensions a replay needs to reproduce a
// churn or heterogeneous run:
//
//   pobtrace 2 <n> <k> <upload> <download> <server_upload>
//   !up <n per-node upload capacities>
//   !down <n per-node download capacities, 0 = unlimited>
//   !depart <tick>:<node> <tick>:<node> ...
//   !drop                # drop_transfers_involving_inactive
//   !depart-on-complete
//
// write_trace emits version 1 when none of the extensions are present, so
// existing v1 traces and consumers are unaffected.
//
// Version 3 adds the stream layer's event preamble (pob/scale/stream): one
// directive per event, 0 = unlimited for the rate's download column:
//
//   pobtrace 3 <n> <k> <upload> <download> <server_upload>
//   !arrive <tick> <node>
//   !rate <tick> <node> <up> <down>
//
// A node named by !arrive is absent until the start of that tick. Replaying
// a v3 trace through the core engine (which has no arrival concept) is
// still legal — a node present early simply has more freedom than the
// recorded schedule used — so the golden-corpus differential replay keeps
// working on stream traces. Version 2 traces containing !arrive/!rate are
// rejected: the directives are a v3 feature, not a v2 one.

#pragma once

#include <iosfwd>
#include <utility>
#include <vector>

#include "pob/core/engine.h"
#include "pob/core/scheduler.h"

namespace pob {

/// One mid-run capacity change (v3 `!rate` directive).
struct RateChange {
  Tick tick = 0;
  NodeId node = 0;
  std::uint32_t up = 0;
  std::uint32_t down = 0;

  friend bool operator==(const RateChange&, const RateChange&) = default;
};

/// The v3 event preamble a stream run hands write_trace alongside its
/// config and result.
struct TraceEvents {
  std::vector<std::pair<Tick, NodeId>> arrivals;
  std::vector<RateChange> rate_changes;

  bool empty() const { return arrivals.empty() && rate_changes.empty(); }
};

struct LoadedTrace {
  std::uint32_t num_nodes = 0;
  std::uint32_t num_blocks = 0;
  std::uint32_t upload_capacity = 1;
  std::uint32_t download_capacity = kUnlimited;
  std::uint32_t server_upload_capacity = 0;
  // v2 extensions (empty/false in v1 traces).
  std::vector<std::uint32_t> upload_capacities;
  std::vector<std::uint32_t> download_capacities;
  std::vector<std::pair<Tick, NodeId>> departures;
  bool drop_transfers_involving_inactive = false;
  bool depart_on_complete = false;
  // v3 extensions (empty in v1/v2 traces). to_config() ignores them: the
  // core engine has no arrival concept, and replaying with every node
  // present from tick 0 only grants the schedule more freedom.
  TraceEvents events;
  std::vector<std::vector<Transfer>> ticks;

  EngineConfig to_config() const;
};

/// Writes the run's trace (config.record_trace must have been set).
void write_trace(std::ostream& os, const EngineConfig& config, const RunResult& result);

/// As above, with a v3 event preamble; a non-empty `events` forces v3.
void write_trace(std::ostream& os, const EngineConfig& config, const RunResult& result,
                 const TraceEvents& events);

/// Parses a trace; throws std::invalid_argument on malformed input.
LoadedTrace read_trace(std::istream& is);

/// Scheduler that plays back a loaded trace verbatim.
class TraceScheduler final : public Scheduler {
 public:
  explicit TraceScheduler(const LoadedTrace& trace) : trace_(&trace) {}
  std::string_view name() const override { return "trace-replay"; }
  void plan_tick(Tick tick, const SwarmState& state, std::vector<Transfer>& out) override;

 private:
  const LoadedTrace* trace_;
};

/// Replays the trace through the validating engine (throws EngineViolation
/// if it breaks the model or `mechanism`).
RunResult replay_trace(const LoadedTrace& trace, Mechanism* mechanism = nullptr);

}  // namespace pob
