// Differential checking for the asynchronous event engine: replays a
// recorded AsyncResult::log entry by entry and verifies every model rule
// from §2.3.4 independently of the engine's own bookkeeping — senders held
// the block when the upload started, uploads of one node never overlap
// (one upload port), download ports are respected, no block is delivered
// twice, and the completion statistics match the log.

#pragma once

#include <optional>
#include <string>

#include "pob/async/event_engine.h"

namespace pob::check {

/// Returns std::nullopt when the log is a legal execution consistent with
/// `result`'s summary fields, otherwise a one-line description of the first
/// rule violated. `config` must be the configuration the run used (with
/// `record_log = true`).
std::optional<std::string> check_async_log(const AsyncConfig& config,
                                           const AsyncResult& result);

}  // namespace pob::check
