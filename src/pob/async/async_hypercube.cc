#include <algorithm>
#include <stdexcept>

#include "pob/async/policies.h"
#include "pob/overlay/builders.h"

namespace pob {

AsyncHypercubePolicy::AsyncHypercubePolicy(std::uint32_t num_nodes) {
  if (num_nodes < 2 || (num_nodes & (num_nodes - 1)) != 0) {
    throw std::invalid_argument("async hypercube: n must be a power of two >= 2");
  }
  dims_ = floor_log2(num_nodes);
  next_dim_.assign(num_nodes, 0);
}

Transfer AsyncHypercubePolicy::next_upload(NodeId node, double /*now*/,
                                           const AsyncView& view) {
  // Round-robin over dimensions at the node's own pace: try each link once,
  // starting from the cursor; send the highest-index block the partner
  // lacks (and is not already being sent); idle if no link has useful work.
  const BlockSet& have = view.blocks_of(node);
  if (have.empty()) return {};
  for (std::uint32_t attempt = 0; attempt < dims_; ++attempt) {
    const std::uint32_t dim = (next_dim_[node] + attempt) % dims_;
    const NodeId partner = node ^ (1u << dim);
    if (view.is_complete(partner)) continue;
    const auto& ph = view.blocks_of(partner);
    const auto& pin = view.inbound_of(partner);
    BlockId best = kNoBlock;
    if (node == kServer) {
      // The server injects blocks in ascending order, mirroring the
      // synchronous rule "transmit b_min(t,k)": one new block per upload
      // slot, then the last block forever.
      const BlockId capped =
          std::min<BlockId>(server_rank_, view.num_blocks()) - 1;
      if (!ph.contains(capped) && !pin.contains(capped)) {
        best = capped;
      } else {
        // Partner already has/was promised it; offer its highest gap below.
        have.for_each([&](BlockId b) {
          if (b <= capped && !ph.contains(b) && !pin.contains(b)) best = b;
        });
      }
      if (best != kNoBlock) ++server_rank_;
    } else {
      // Clients transmit the highest-index block they have that the partner
      // lacks and is not already being sent.
      const BlockId candidate = have.max_missing_from(ph);
      if (candidate == kNoBlock) continue;
      if (!pin.contains(candidate)) {
        best = candidate;
      } else {
        have.for_each([&](BlockId b) {
          if (!ph.contains(b) && !pin.contains(b)) best = b;  // ascending -> last wins
        });
      }
    }
    if (best == kNoBlock) continue;
    next_dim_[node] = (dim + 1) % dims_;
    return {node, partner, best};
  }
  return {};
}

}  // namespace pob
