#include "pob/sched/binomial_tree.h"

#include <stdexcept>
#include <vector>

#include "pob/overlay/builders.h"

namespace pob {

BinomialTreeScheduler::BinomialTreeScheduler(std::uint32_t num_nodes,
                                             std::uint32_t num_blocks)
    : n_(num_nodes), k_(num_blocks) {
  if (n_ < 2) throw std::invalid_argument("binomial-tree: need >= 2 nodes");
}

Tick BinomialTreeScheduler::completion_time(std::uint32_t num_nodes,
                                            std::uint32_t num_blocks) {
  return num_blocks * ceil_log2(num_nodes);
}

void BinomialTreeScheduler::plan_tick(Tick /*tick*/, const SwarmState& state,
                                      std::vector<Transfer>& out) {
  // The current phase distributes the lowest block not yet held by everyone;
  // every holder is paired with a distinct non-holder, doubling the holder
  // population each tick.
  const auto freq = state.block_frequency();
  BlockId phase = kNoBlock;
  for (BlockId b = 0; b < k_; ++b) {
    if (freq[b] < n_) {
      phase = b;
      break;
    }
  }
  if (phase == kNoBlock) return;  // everything fully replicated

  std::vector<NodeId> holders;
  std::vector<NodeId> missing;
  for (NodeId x = 0; x < n_; ++x) {
    (state.has(x, phase) ? holders : missing).push_back(x);
  }
  const std::size_t pairs = std::min(holders.size(), missing.size());
  for (std::size_t i = 0; i < pairs; ++i) {
    out.push_back({holders[i], missing[i], phase});
  }
}

}  // namespace pob
