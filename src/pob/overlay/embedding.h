// §2.3.4 "Optimizing for Physical Network": when pairwise bandwidth/latency
// depends on where nodes sit in the physical network, the hypercube can be
// "optimized" by choosing WHICH node gets which hypercube ID (the paper
// cites the Apocrypha embedding techniques [12]).
//
// We model the physical network as points in the plane (distance = link
// cost) and optimize the ID assignment by randomized local search: swap the
// vertex assignments of two clients whenever that lowers the total cost of
// the hypercube's overlay links. The schedule and tick count are unchanged —
// the win is that every hypercube link, which the binomial pipeline uses
// constantly, becomes physically shorter.

#pragma once

#include <span>
#include <vector>

#include "pob/core/rng.h"
#include "pob/overlay/builders.h"

namespace pob {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

double distance(const Point& a, const Point& b);

/// Total physical cost of the overlay induced by `map`: every hypercube edge
/// contributes the distance between each cross-vertex node pair, and doubled
/// vertices contribute their intra-pair distance. `positions` is indexed by
/// NodeId and must cover every node in the map.
double hypercube_embedding_cost(const HypercubeMap& map, std::span<const Point> positions);

struct EmbeddingResult {
  HypercubeMap map;
  double initial_cost = 0.0;
  double final_cost = 0.0;
  std::uint32_t accepted_swaps = 0;
};

/// Local search: `iterations` random client-pair swap proposals, each
/// accepted iff it strictly lowers hypercube_embedding_cost. The server's
/// all-zero ID never moves. Deterministic given `rng`.
EmbeddingResult optimize_hypercube_embedding(HypercubeMap map,
                                             std::span<const Point> positions, Rng& rng,
                                             std::uint32_t iterations);

/// `count` points uniform in the unit square.
std::vector<Point> random_points(std::uint32_t count, Rng& rng);

/// `count` points in `clusters` tight Gaussian-ish clusters spread across the
/// unit square — the interesting regime for embedding (keep cluster-mates
/// adjacent in the cube).
std::vector<Point> clustered_points(std::uint32_t count, std::uint32_t clusters, Rng& rng);

}  // namespace pob
