// Scenario: distributing to selfish clients (§3). Every client-to-client
// transfer must be justified by an incentive mechanism, and the engine
// validates that on every tick. This example measures the price of barter on
// one concrete swarm: strict barter (Riffle Pipeline) and credit-limited
// randomized swarms at several overlay degrees, against the cooperative
// optimum.
//
//   $ ./barter_swarm [--clients=255] [--blocks=255] [--seed=1]

#include <iostream>
#include <memory>

#include "pob/analysis/bounds.h"
#include "pob/core/engine.h"
#include "pob/exp/cli.h"
#include "pob/exp/table.h"
#include "pob/mech/barter.h"
#include "pob/overlay/builders.h"
#include "pob/rand/randomized.h"
#include "pob/sched/binomial_pipeline.h"
#include "pob/sched/riffle_pipeline.h"

int main(int argc, char** argv) {
  const pob::Args args(argc, argv);
  const auto clients = static_cast<std::uint32_t>(args.get_int("clients", 255));
  const auto k = static_cast<std::uint32_t>(args.get_int("blocks", 255));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::uint32_t n = clients + 1;
  const auto optimal = static_cast<double>(pob::cooperative_lower_bound(n, k));

  std::cout << "barter swarm: " << clients << " selfish clients, " << k
            << " blocks; every tick validated against the active mechanism\n\n";

  pob::Table table({"mechanism", "algorithm", "T (ticks)", "price (T/optimal)"});

  {  // Cooperative reference.
    pob::EngineConfig cfg;
    cfg.num_nodes = n;
    cfg.num_blocks = k;
    cfg.download_capacity = 1;
    pob::BinomialPipelineScheduler sched(n, k);
    const pob::RunResult r = pob::run(cfg, sched);
    table.add_row({"none (cooperative)", "binomial pipeline",
                   std::to_string(r.completion_tick),
                   pob::fmt(r.completion_tick / optimal, 2)});
  }
  {  // Strict barter: simultaneous pairwise exchange only.
    pob::EngineConfig cfg;
    cfg.num_nodes = n;
    cfg.num_blocks = k;
    cfg.download_capacity = 2;  // Theorem 3 needs d >= 2u
    pob::RifflePipelineScheduler sched(n, k, 1, 2);
    pob::StrictBarter mech;
    const pob::RunResult r = pob::run(cfg, sched, &mech);
    table.add_row({"strict barter", "riffle pipeline", std::to_string(r.completion_tick),
                   pob::fmt(r.completion_tick / optimal, 2)});
  }
  // Credit-limited barter (s = 1) on overlays of increasing degree: below
  // the threshold the swarm starves; above it, near-cooperative speed.
  for (const std::uint32_t degree : {8u, 16u, 32u, 64u}) {
    pob::EngineConfig cfg;
    cfg.num_nodes = n;
    cfg.num_blocks = k;
    cfg.max_ticks = static_cast<pob::Tick>(8 * optimal);
    cfg.stall_window = 200;
    pob::Rng graph_rng(seed + degree);
    auto overlay = std::make_shared<pob::GraphOverlay>(
        pob::make_random_regular(n, degree, graph_rng));
    pob::RandomizedOptions opt;
    opt.policy = pob::BlockPolicy::kRarestFirst;
    pob::CreditRandomized cr =
        pob::make_credit_randomized(std::move(overlay), opt, pob::Rng(seed), 1);
    const pob::RunResult r = pob::run(cfg, *cr.scheduler, cr.mechanism.get());
    table.add_row({"credit s=1, degree " + std::to_string(degree),
                   "randomized rarest-first",
                   r.completed ? std::to_string(r.completion_tick)
                               : std::string("starved (censored)"),
                   r.completed ? pob::fmt(r.completion_tick / optimal, 2)
                               : std::string("-")});
  }

  table.print(std::cout);
  std::cout << "\nstrict barter pays a ~2x price at k ~ n (Theorem 2's n + k - 2 vs the\n"
               "cooperative k + log n); credit-limited barter recovers cooperative\n"
               "speed, but only once the overlay degree clears the threshold.\n";
  return 0;
}
