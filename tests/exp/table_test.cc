#include "pob/exp/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace pob {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t({"n", "T"});
  t.add_row({"10", "1014"});
  t.add_row({"10000", "1105"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("    n     T"), std::string::npos);
  EXPECT_NE(out.find("10000  1105"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  std::ostringstream os;
  t.print(os);  // must not crash; missing cells render empty
  EXPECT_FALSE(os.str().empty());
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.0, 0), "3");
  EXPECT_EQ(fmt_ci(10.5, 0.25, 1), "10.5 +- 0.2");
}

}  // namespace
}  // namespace pob
