// E12 — §2.3.4 higher server bandwidths.
//
// With server upload m*u, splitting clients into m groups (one virtual
// server each, each running an independent binomial pipeline) is the
// paper's "natural optimal strategy". We report measured completion vs the
// per-group optimum k - 1 + ceil(log2(group + 1)) for several m.

#include <iostream>

#include "bench_util.h"
#include "pob/analysis/bounds.h"
#include "pob/sched/multi_server.h"

namespace pob::bench {
namespace {

int main_impl(int argc, char** argv) {
  const Args args(argc, argv);
  std::vector<std::int64_t> ns = args.get_int_list("n", {65, 257, 1000});
  std::vector<std::int64_t> ks = args.get_int_list("k", {64, 512});
  std::vector<std::int64_t> ms = args.get_int_list("m", {1, 2, 4, 8});

  Table table({"n", "k", "m (server bw)", "T", "per-group-optimal", "single-server-T"});
  for (const std::int64_t n64 : ns) {
    for (const std::int64_t k64 : ks) {
      const auto n = static_cast<std::uint32_t>(n64);
      const auto k = static_cast<std::uint32_t>(k64);
      for (const std::int64_t m64 : ms) {
        const auto m = static_cast<std::uint32_t>(m64);
        EngineConfig cfg;
        cfg.num_nodes = n;
        cfg.num_blocks = k;
        cfg.server_upload_capacity = m;
        cfg.download_capacity = 1;
        MultiServerScheduler sched(n, k, m);
        const RunResult r = run(cfg, sched);
        if (!r.completed) throw std::logic_error("multi-server run did not complete");
        table.add_row({std::to_string(n), std::to_string(k), std::to_string(m),
                       std::to_string(r.completion_tick),
                       std::to_string(multi_server_estimate(n, k, m)),
                       std::to_string(cooperative_lower_bound(n, k))});
      }
    }
  }
  std::cout << "# E12: multi-server binomial pipelines (server bandwidth m*u)\n";
  emit(args, table);
  return 0;
}

}  // namespace
}  // namespace pob::bench

int main(int argc, char** argv) { return pob::bench::main_impl(argc, argv); }
