// Ordinary least squares for the paper's §2.4.4 model fit:
//
//   "Using least-square estimates over a matrix of (n, k) data points, we
//    estimate that the expected completion time is [approximately linear in
//    k and log n]."
//
// We fit T = a*k + b*log2(n) + c and report coefficients plus R^2.

#pragma once

#include <span>
#include <vector>

namespace pob {

struct RegressionPoint {
  double x1 = 0.0;  ///< k
  double x2 = 0.0;  ///< log2(n)
  double y = 0.0;   ///< T
};

struct RegressionFit {
  double a = 0.0;   ///< coefficient on x1 (k)
  double b = 0.0;   ///< coefficient on x2 (log2 n)
  double c = 0.0;   ///< intercept
  double r2 = 0.0;  ///< coefficient of determination
  double predict(double x1, double x2) const { return a * x1 + b * x2 + c; }
};

/// Solves the 3x3 normal equations by Gaussian elimination with partial
/// pivoting. Requires >= 3 points spanning both predictors (throws on a
/// singular system).
RegressionFit fit_two_predictor(std::span<const RegressionPoint> points);

}  // namespace pob
