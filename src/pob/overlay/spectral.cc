#include "pob/overlay/spectral.h"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace pob {
namespace {

/// Removes the component of `v` along the stationary left-null direction.
/// For the row-stochastic P = D^-1 A, the RIGHT eigenvector for eigenvalue 1
/// is all-ones, so we deflate against 1 under the pi-weighted inner product
/// (pi_i proportional to degree), which keeps the iteration inside the
/// complement of the top eigenspace.
void deflate(std::vector<double>& v, const std::vector<double>& pi) {
  double dot = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) dot += pi[i] * v[i];
  for (double& x : v) x -= dot;  // <v,1>_pi * 1
}

double norm2(const std::vector<double>& v) {
  double s = 0.0;
  for (const double x : v) s += x * x;
  return std::sqrt(s);
}

}  // namespace

SpectralEstimate estimate_lambda2(const Graph& graph, Rng& rng,
                                  std::uint32_t iterations) {
  const std::uint32_t n = graph.num_nodes();
  if (n < 2) throw std::invalid_argument("estimate_lambda2: need >= 2 nodes");
  if (graph.min_degree() == 0) {
    throw std::invalid_argument("estimate_lambda2: isolated node");
  }
  if (!graph.is_connected()) {
    // Disconnected: lambda2 = 1 exactly (no mixing across components).
    return {1.0, 0.0, 0};
  }

  std::vector<double> pi(n);
  double total_degree = 0.0;
  for (NodeId u = 0; u < n; ++u) total_degree += graph.degree(u);
  for (NodeId u = 0; u < n; ++u) pi[u] = graph.degree(u) / total_degree;

  std::vector<double> v(n), next(n);
  for (double& x : v) x = rng.uniform() - 0.5;
  deflate(v, pi);
  {
    const double len = norm2(v);
    if (len < 1e-12) throw std::logic_error("estimate_lambda2: degenerate start");
    for (double& x : v) x /= len;
  }
  double lazy_lambda = 0.0;
  std::uint32_t it = 0;
  for (; it < iterations; ++it) {
    // next = (I + P)/2 v — the lazy walk's spectrum is nonnegative, so the
    // deflated dominant eigenvalue is (1 + lambda2)/2 with SIGNED lambda2.
    for (NodeId u = 0; u < n; ++u) {
      double sum = 0.0;
      for (const NodeId w : graph.neighbors(u)) sum += v[w];
      next[u] = 0.5 * (v[u] + sum / graph.degree(u));
    }
    deflate(next, pi);
    const double len = norm2(next);
    if (len < 1e-300) {  // collapsed into the top eigenspace
      return {-1.0, 2.0, it};
    }
    lazy_lambda = len;  // v is unit length
    for (NodeId u = 0; u < n; ++u) v[u] = next[u] / len;
  }
  double lambda2 = 2.0 * lazy_lambda - 1.0;
  if (lambda2 > 1.0) lambda2 = 1.0;  // numerical overshoot
  return {lambda2, 1.0 - lambda2, it};
}

}  // namespace pob
