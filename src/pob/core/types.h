// Core value types shared by every pob subsystem.
//
// The model follows the paper exactly: `n` nodes numbered 0..n-1, where node
// 0 is the server and nodes 1..n-1 are clients; a file of `k` blocks numbered
// 0..k-1; and discrete time measured in ticks, where one tick is the time a
// node needs to upload one block at its full upload bandwidth.

#pragma once

#include <cstdint>
#include <limits>

namespace pob {

/// Identifies a node in the swarm. Node 0 is always the server.
using NodeId = std::uint32_t;

/// Identifies a block of the file, 0-based. Paper block `b_i` (1-based) is
/// BlockId `i - 1` here.
using BlockId = std::uint32_t;

/// Discrete simulation time. Tick 1 is the first tick in which transfers
/// happen; tick 0 denotes "before the simulation starts".
using Tick = std::uint32_t;

/// The server's NodeId.
inline constexpr NodeId kServer = 0;

/// Sentinel for "no block".
inline constexpr BlockId kNoBlock = std::numeric_limits<BlockId>::max();

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Sentinel for an unbounded capacity (e.g. infinite download bandwidth).
inline constexpr std::uint32_t kUnlimited = std::numeric_limits<std::uint32_t>::max();

/// One block transfer scheduled within a tick. Transfers scheduled in the
/// same tick are simultaneous: the sender must possess `block` at the start
/// of the tick (a node cannot forward a block it is still receiving), and
/// the receiver must not already possess it.
struct Transfer {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  BlockId block = kNoBlock;

  friend bool operator==(const Transfer&, const Transfer&) = default;
};

}  // namespace pob
