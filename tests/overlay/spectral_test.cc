#include "pob/overlay/spectral.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "pob/overlay/builders.h"

namespace pob {
namespace {

Graph complete_graph(std::uint32_t n) {
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  g.finalize();
  return g;
}

TEST(Spectral, CompleteGraphHasNegativeLambda2) {
  // K_n: random-walk eigenvalues are 1 and -1/(n-1) (signed).
  Rng rng(1);
  for (const std::uint32_t n : {8u, 32u}) {
    const SpectralEstimate est = estimate_lambda2(complete_graph(n), rng, 400);
    EXPECT_NEAR(est.lambda2, -1.0 / (n - 1), 0.01) << n;
    EXPECT_GT(est.gap, 0.95);
  }
}

TEST(Spectral, RingMatchesClosedForm) {
  // C_n: lambda2 = cos(2*pi/n).
  Rng rng(2);
  for (const std::uint32_t n : {16u, 64u}) {
    const SpectralEstimate est = estimate_lambda2(make_ring(n), rng, 3000);
    EXPECT_NEAR(est.lambda2, std::cos(2.0 * std::numbers::pi / n), 0.01) << n;
  }
}

TEST(Spectral, HigherDegreeMixesFaster) {
  Rng rng(3);
  Rng grng(4);
  const SpectralEstimate sparse =
      estimate_lambda2(make_random_regular(200, 4, grng), rng, 500);
  const SpectralEstimate dense =
      estimate_lambda2(make_random_regular(200, 24, grng), rng, 500);
  EXPECT_GT(dense.gap, sparse.gap);
}

TEST(Spectral, HypercubeOverlayMixesWell) {
  Rng rng(5);
  const SpectralEstimate est = estimate_lambda2(make_hypercube_overlay(256), rng, 500);
  // The 8-cube's random walk has lambda2 = 1 - 2/8 = 0.75.
  EXPECT_NEAR(est.lambda2, 0.75, 0.02);
}

TEST(Spectral, DisconnectedGraphHasZeroGap) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.finalize();
  Rng rng(6);
  const SpectralEstimate est = estimate_lambda2(g, rng, 100);
  EXPECT_DOUBLE_EQ(est.gap, 0.0);
}

TEST(Spectral, RejectsDegenerateInputs) {
  Rng rng(7);
  Graph isolated(3);
  isolated.add_edge(0, 1);
  isolated.finalize();
  EXPECT_THROW(estimate_lambda2(isolated, rng), std::invalid_argument);
}

}  // namespace
}  // namespace pob
