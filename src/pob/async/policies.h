// Asynchronous upload policies:
//
//   AsyncSwarmPolicy      the randomized algorithm of §2.4, run event-driven:
//                         an idle node picks a random interested neighbor
//                         with a free download port and sends a policy-chosen
//                         useful block.
//   AsyncHypercubePolicy  §2.3.4's asynchronous hypercube: "each node simply
//                         using its links in round-robin order at its own
//                         pace", sending the highest-index block the partner
//                         lacks. Requires n to be a power of two.

#pragma once

#include <memory>

#include "pob/async/event_engine.h"
#include "pob/overlay/overlay.h"
#include "pob/rand/randomized.h"

namespace pob {

class AsyncSwarmPolicy final : public AsyncPolicy {
 public:
  AsyncSwarmPolicy(std::shared_ptr<const Overlay> overlay, BlockPolicy block_policy,
                   std::uint32_t download_ports, Rng rng, std::uint32_t max_probes = 24);

  Transfer next_upload(NodeId node, double now, const AsyncView& view) override;

 private:
  bool acceptable(NodeId u, NodeId v, const AsyncView& view) const;

  std::shared_ptr<const Overlay> overlay_;
  BlockPolicy block_policy_;
  std::uint32_t download_ports_;
  Rng rng_;
  std::uint32_t max_probes_;
};

class AsyncHypercubePolicy final : public AsyncPolicy {
 public:
  explicit AsyncHypercubePolicy(std::uint32_t num_nodes);

  Transfer next_upload(NodeId node, double now, const AsyncView& view) override;

 private:
  std::uint32_t dims_;
  std::vector<std::uint32_t> next_dim_;  // per-node round-robin cursor
  std::uint32_t server_rank_ = 1;        // server injects blocks in order, like b_min(t,k)
};

/// Asynchronous tit-for-tat — the §4 comparison in the paper's own setting
/// ("we are studying the performance of BitTorrent ... through asynchronous
/// simulations"). Same unchoke structure as the synchronous
/// TitForTatScheduler, but reciprocation windows are measured in simulation
/// time and each node rechokes on its own clock when its upload port frees.
class AsyncTitForTatPolicy final : public AsyncPolicy {
 public:
  AsyncTitForTatPolicy(std::shared_ptr<const Overlay> overlay,
                       std::uint32_t regular_unchokes, std::uint32_t optimistic_unchokes,
                       double rechoke_interval, BlockPolicy block_policy,
                       std::uint32_t download_ports, Rng rng);

  Transfer next_upload(NodeId node, double now, const AsyncView& view) override;
  double retry_after(NodeId node, double now) override;

 private:
  void rechoke(NodeId node, const AsyncView& view);

  std::shared_ptr<const Overlay> overlay_;
  std::uint32_t regular_;
  std::uint32_t optimistic_;
  double interval_;
  BlockPolicy block_policy_;
  std::uint32_t download_ports_;
  Rng rng_;
  std::vector<std::vector<std::uint32_t>> received_;  // per node, per neighbor idx
  std::vector<std::vector<NodeId>> unchoked_;
  std::vector<double> next_rechoke_;
};

}  // namespace pob
