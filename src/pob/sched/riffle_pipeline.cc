#include "pob/sched/riffle_pipeline.h"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <unordered_map>

namespace pob {

RifflePipelineScheduler::RifflePipelineScheduler(std::uint32_t num_nodes,
                                                 std::uint32_t num_blocks,
                                                 std::uint32_t upload_capacity,
                                                 std::uint32_t download_capacity) {
  if (num_nodes < 2) throw std::invalid_argument("riffle: need >= 2 nodes");
  if (num_blocks < 1) throw std::invalid_argument("riffle: need >= 1 block");
  if (upload_capacity < 1 || download_capacity < 1) {
    throw std::invalid_argument("riffle: capacities must be >= 1");
  }
  std::vector<NodeId> clients(num_nodes - 1);
  for (NodeId c = 1; c < num_nodes; ++c) clients[c - 1] = c;
  std::vector<BlockId> blocks(num_blocks);
  for (BlockId b = 0; b < num_blocks; ++b) blocks[b] = b;
  emit(clients, blocks, 0);
  legalize(upload_capacity, download_capacity);
}

void RifflePipelineScheduler::emit(const std::vector<NodeId>& clients,
                                   const std::vector<BlockId>& blocks, Tick t0) {
  const auto p = static_cast<std::uint32_t>(clients.size());
  const auto kk = static_cast<std::uint32_t>(blocks.size());
  if (p == 0 || kk == 0) return;

  if (p == 1) {
    // Degenerate riffle: the server streams every block to the lone client.
    for (std::uint32_t j = 0; j < kk; ++j) {
      meetings_.push_back({t0 + j + 1, next_seq_++, {{kServer, clients[0], blocks[j]}}});
    }
    return;
  }

  const std::uint32_t cycles = kk / p;
  const std::uint32_t rem = kk % p;

  // Full cycles: in cycle g the server hands block g*p + i to clients[i] at
  // tick t0 + g*p + i + 1, and clients[i], clients[j] (i < j) swap their
  // cycle-g blocks at tick t0 + g*p + (i+1) + (j+1).
  for (std::uint32_t g = 0; g < cycles; ++g) {
    const Tick base = t0 + g * p;
    for (std::uint32_t i = 0; i < p; ++i) {
      meetings_.push_back(
          {base + i + 1, next_seq_++, {{kServer, clients[i], blocks[g * p + i]}}});
    }
    for (std::uint32_t i = 0; i < p; ++i) {
      for (std::uint32_t j = i + 1; j < p; ++j) {
        meetings_.push_back({base + (i + 1) + (j + 1),
                             next_seq_++,
                             {{clients[i], clients[j], blocks[g * p + i]},
                              {clients[j], clients[i], blocks[g * p + j]}}});
      }
    }
  }

  if (rem == 0) return;

  // Remainder: split clients into subgroups of `rem`, serve each subgroup
  // its own copy of the leftover blocks in sequence; the final subgroup may
  // be smaller than `rem`, in which case the whole algorithm recurses.
  const Tick t1 = t0 + cycles * p;
  std::vector<BlockId> leftover(blocks.begin() + cycles * p, blocks.end());
  std::uint32_t h = 0;
  for (std::uint32_t start = 0; start < p; start += rem, ++h) {
    const std::uint32_t size = std::min(rem, p - start);
    std::vector<NodeId> sub(clients.begin() + start, clients.begin() + start + size);
    const Tick base = t1 + h * rem;
    if (size == rem) {
      for (std::uint32_t j = 0; j < rem; ++j) {
        meetings_.push_back({base + j + 1, next_seq_++, {{kServer, sub[j], leftover[j]}}});
      }
      for (std::uint32_t i = 0; i < rem; ++i) {
        for (std::uint32_t j = i + 1; j < rem; ++j) {
          meetings_.push_back({base + (i + 1) + (j + 1),
                               next_seq_++,
                               {{sub[i], sub[j], leftover[i]},
                                {sub[j], sub[i], leftover[j]}}});
        }
      }
    } else {
      emit(sub, leftover, base);
    }
  }
}

void RifflePipelineScheduler::legalize(std::uint32_t upload_capacity,
                                       std::uint32_t download_capacity) {
  // Greedy earliest-fit: process meetings in desired-tick order; a meeting
  // whose participants lack upload/download headroom at its tick slips to
  // the next tick. Ticks never lose capacity, so this terminates.
  const auto cmp = [this](std::uint32_t a, std::uint32_t b) {
    if (meetings_[a].desired != meetings_[b].desired) {
      return meetings_[a].desired > meetings_[b].desired;
    }
    return meetings_[a].seq > meetings_[b].seq;
  };
  std::priority_queue<std::uint32_t, std::vector<std::uint32_t>, decltype(cmp)> queue(cmp);
  for (std::uint32_t i = 0; i < meetings_.size(); ++i) queue.push(i);

  const auto slot = [](NodeId node, Tick t) {
    return (static_cast<std::uint64_t>(node) << 32) | t;
  };
  std::unordered_map<std::uint64_t, std::uint32_t> up_used, down_used;
  up_used.reserve(meetings_.size() * 2);
  down_used.reserve(meetings_.size() * 2);

  // Every block a client uploads in a barter came straight from a server
  // hand-off, so each client transfer has exactly one data dependency: the
  // meeting that handed its block to its sender. When tight capacities
  // (d = u) delay a hand-off, the barters bartering that block must slip
  // past it, or the schedule would have a sender uploading a block it has
  // not received yet.
  std::unordered_map<std::uint64_t, std::uint32_t> provider;
  provider.reserve(meetings_.size());
  for (std::uint32_t i = 0; i < meetings_.size(); ++i) {
    const Meeting& m = meetings_[i];
    if (m.transfers.size() == 1 && m.transfers[0].from == kServer) {
      provider[slot(m.transfers[0].to, m.transfers[0].block)] = i;
    }
  }
  std::vector<Tick> placed(meetings_.size(), 0);  // 0 = not placed yet

  while (!queue.empty()) {
    const std::uint32_t idx = queue.top();
    queue.pop();
    Meeting& m = meetings_[idx];

    Tick earliest = m.desired;
    for (const Transfer& tr : m.transfers) {
      if (tr.from == kServer) continue;
      const auto it = provider.find(slot(tr.from, tr.block));
      if (it == provider.end()) continue;
      // Unplaced hand-offs can still slip further; chase their current
      // desired tick and re-check once they settle.
      const Tick dep = placed[it->second] != 0 ? placed[it->second]
                                               : meetings_[it->second].desired;
      earliest = std::max(earliest, dep + 1);
    }
    if (earliest > m.desired) {
      m.desired = earliest;
      queue.push(idx);
      continue;
    }

    bool fits = true;
    for (const Transfer& tr : m.transfers) {
      if (up_used[slot(tr.from, m.desired)] + 1 > upload_capacity ||
          down_used[slot(tr.to, m.desired)] + 1 > download_capacity) {
        fits = false;
        break;
      }
    }
    if (!fits) {
      m.desired += 1;
      queue.push(idx);
      continue;
    }
    for (const Transfer& tr : m.transfers) {
      ++up_used[slot(tr.from, m.desired)];
      ++down_used[slot(tr.to, m.desired)];
    }
    placed[idx] = m.desired;
    if (schedule_.size() < m.desired) schedule_.resize(m.desired);
    for (const Transfer& tr : m.transfers) schedule_[m.desired - 1].push_back(tr);
  }
}

void RifflePipelineScheduler::plan_tick(Tick tick, const SwarmState& /*state*/,
                                        std::vector<Transfer>& out) {
  if (tick == 0 || tick > schedule_.size()) return;
  const auto& planned = schedule_[tick - 1];
  out.insert(out.end(), planned.begin(), planned.end());
}

}  // namespace pob
