// E22: mega-swarm engine throughput — the "production scale" claim, measured.
//
// Runs one scale::Engine swarm at million-node size (defaults: n = 10^6,
// k = 512, random 16-regular overlay, all cores) and reports the numbers the
// roadmap cares about: node-ticks/second, transfers/second, peak RSS, and
// bytes of engine state. Results land in BENCH_scale.json (override with
// --json=<path>) so CI can archive the trajectory.
//
//   scale_throughput                         # the full 10^6 x 512 run
//   scale_throughput --n=100000 --k=128      # quicker smoke (CI uses this)
//   scale_throughput --credit=2 --policy=rarest --jobs=4
//
// The run itself is deterministic for a given (seed, config) at any --jobs.

#include <chrono>
#include <iostream>

#include "bench_util.h"
#include "pob/scale/engine.h"

#if __has_include(<sys/resource.h>)
#include <sys/resource.h>
#define POB_HAVE_RUSAGE 1
#endif

namespace pob {
namespace {

std::uint64_t peak_rss_kb() {
#ifdef POB_HAVE_RUSAGE
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    // ru_maxrss is KiB on Linux (bytes on macOS; close enough for a trend
    // line, and this repo's CI is Linux).
    return static_cast<std::uint64_t>(usage.ru_maxrss);
  }
#endif
  return 0;
}

int main_impl(int argc, char** argv) {
  const Args args(argc, argv);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 1000000));
  const auto k = static_cast<std::uint32_t>(args.get_int("k", 512));
  const auto degree = static_cast<std::uint32_t>(args.get_int("degree", 16));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const unsigned jobs = jobs_from_flag(args.get_int("jobs", 0));

  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  cfg.max_ticks = static_cast<Tick>(args.get_int("cap", 0));

  scale::ScaleOptions opt;
  opt.policy = args.get_string("policy", "random") == "random"
                   ? BlockPolicy::kRandom
                   : BlockPolicy::kRarestFirst;
  opt.credit_limit = static_cast<std::uint32_t>(args.get_int("credit", 0));
  opt.max_probes = static_cast<std::uint32_t>(args.get_int("probes", 16));

  const auto t0 = std::chrono::steady_clock::now();
  Rng topo_rng = Rng(seed).split(0);
  auto topo = std::make_shared<scale::Topology>(
      scale::Topology::from_graph(make_random_regular(n, degree, topo_rng)));
  const double topo_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  scale::Engine engine(cfg, topo, opt, seed);
  const std::uint64_t state_bytes = engine.state_bytes();

  const auto t1 = std::chrono::steady_clock::now();
  const RunResult r = engine.run(jobs);
  const double run_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t1).count();

  const std::uint64_t node_ticks =
      static_cast<std::uint64_t>(n) * r.ticks_executed;
  const double node_ticks_per_sec =
      run_seconds > 0.0 ? static_cast<double>(node_ticks) / run_seconds : 0.0;
  const double transfers_per_sec =
      run_seconds > 0.0 ? static_cast<double>(r.total_transfers) / run_seconds : 0.0;
  const std::uint64_t rss_kb = peak_rss_kb();

  bench::emit(args, [&] {
    Table table({"n", "k", "degree", "jobs", "ticks", "T", "transfers",
                 "node-ticks/s", "xfers/s", "state-MiB", "rss-MiB"});
    table.add_row({std::to_string(n), std::to_string(k), std::to_string(degree),
                   std::to_string(jobs == 0 ? default_jobs() : jobs),
                   std::to_string(r.ticks_executed),
                   r.completed ? std::to_string(r.completion_tick)
                               : (r.stalled ? "stall" : "cap"),
                   std::to_string(r.total_transfers), fmt(node_ticks_per_sec / 1e6, 1) + "M",
                   fmt(transfers_per_sec / 1e6, 1) + "M",
                   std::to_string(state_bytes / (1024 * 1024)),
                   std::to_string(rss_kb / 1024)});
    return table;
  }());
  std::cout << "# graph build " << fmt(topo_seconds, 2) << " s, run "
            << fmt(run_seconds, 2) << " s\n";

  bench::JsonReport json;
  json.str("bench", "scale_throughput")
      .count("n", n)
      .count("k", k)
      .count("degree", degree)
      .count("jobs", jobs == 0 ? default_jobs() : jobs)
      .count("credit_limit", opt.credit_limit)
      .str("policy", opt.policy == BlockPolicy::kRandom ? "random" : "rarest")
      .flag("completed", r.completed)
      .count("ticks_executed", r.ticks_executed)
      .count("completion_tick", r.completion_tick)
      .count("total_transfers", r.total_transfers)
      .count("node_ticks", node_ticks)
      .num("run_seconds", run_seconds)
      .num("topology_seconds", topo_seconds)
      .num("node_ticks_per_sec", node_ticks_per_sec)
      .num("transfers_per_sec", transfers_per_sec)
      .count("state_bytes", state_bytes)
      .count("peak_rss_kb", rss_kb);
  if (!json.write(args, "BENCH_scale.json")) return 1;
  return r.completed || cfg.max_ticks != 0 ? 0 : 1;
}

}  // namespace
}  // namespace pob

int main(int argc, char** argv) {
  try {
    return pob::main_impl(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "scale_throughput: " << e.what() << "\n";
    return 2;
  }
}
