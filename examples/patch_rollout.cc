// Scenario: pushing a 100 MB security patch to 2000 hosts over 4 Mbit/s
// uplinks — the paper's opening motivation ("the file could be a software
// patch desired by all end hosts"). Compares the strategies of §2.2-2.4 and
// converts ticks to wall-clock time.
//
//   $ ./patch_rollout [--hosts=2000] [--mb=100] [--mbps=4] [--block-kb=256]

#include <iostream>
#include <memory>

#include "pob/analysis/bounds.h"
#include "pob/core/engine.h"
#include "pob/exp/cli.h"
#include "pob/exp/table.h"
#include "pob/overlay/overlay.h"
#include "pob/rand/randomized.h"
#include "pob/sched/binomial_pipeline.h"
#include "pob/sched/multicast_tree.h"
#include "pob/sched/pipeline.h"

namespace {

std::string wall_clock(double ticks, double seconds_per_tick) {
  const double s = ticks * seconds_per_tick;
  if (s < 120) return pob::fmt(s, 1) + " s";
  if (s < 7200) return pob::fmt(s / 60, 1) + " min";
  return pob::fmt(s / 3600, 2) + " h";
}

}  // namespace

int main(int argc, char** argv) {
  const pob::Args args(argc, argv);
  const auto hosts = static_cast<std::uint32_t>(args.get_int("hosts", 2000));
  const double mb = args.get_double("mb", 100.0);
  const double mbps = args.get_double("mbps", 4.0);
  const double block_kb = args.get_double("block-kb", 256.0);

  const std::uint32_t n = hosts + 1;  // + the patch server
  const auto k = static_cast<std::uint32_t>(mb * 1024.0 / block_kb);
  // One tick = time to upload one block at full uplink rate (§2.1).
  const double seconds_per_tick = block_kb * 8.0 / (mbps * 1000.0);

  std::cout << "patch rollout: " << mb << " MB to " << hosts << " hosts, "
            << mbps << " Mbit/s uplinks, " << block_kb << " KiB blocks -> k = "
            << k << " blocks, 1 tick = " << pob::fmt(seconds_per_tick, 2) << " s\n\n";

  pob::EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;

  pob::Table table({"strategy", "ticks", "wall-clock", "x optimal"});
  const auto optimal = static_cast<double>(pob::cooperative_lower_bound(n, k));

  const auto report = [&](const std::string& name, double ticks) {
    table.add_row({name, pob::fmt(ticks, 0), wall_clock(ticks, seconds_per_tick),
                   pob::fmt(ticks / optimal, 2)});
  };

  // Server unicasts to every host, one after another (no cooperation).
  report("server unicast (no p2p)", static_cast<double>(hosts) * k);

  {
    pob::PipelineScheduler sched(n, k);
    report("chain pipeline", static_cast<double>(pob::run(cfg, sched).completion_tick));
  }
  {
    pob::MulticastTreeScheduler sched(n, k, 2);
    report("binary multicast tree",
           static_cast<double>(pob::run(cfg, sched).completion_tick));
  }
  {
    pob::BinomialPipelineScheduler sched(n, k);
    report("binomial pipeline (optimal)",
           static_cast<double>(pob::run(cfg, sched).completion_tick));
  }
  {
    // Practical deployment: randomized swarm on a low-degree random overlay.
    pob::Rng graph_rng(1);
    auto overlay = std::make_shared<pob::GraphOverlay>(
        pob::make_random_regular(n, 20, graph_rng));
    pob::RandomizedScheduler sched(std::move(overlay), {}, pob::Rng(2));
    report("randomized swarm (degree 20)",
           static_cast<double>(pob::run(cfg, sched).completion_tick));
  }

  table.print(std::cout);
  std::cout << "\ncooperation buys a ~" << pob::fmt(static_cast<double>(hosts) * k / optimal, 0)
            << "x speedup over naive unicast; the randomized swarm needs no rigid\n"
               "structure and its gap to the provable optimum shrinks further as the\n"
               "file grows (see bench/fig4_completion_vs_k).\n";
  return 0;
}
