// A BitTorrent-style tit-for-tat swarm, for the §4 comparison ("our
// preliminary results suggest that, even with perfect tuning of protocol
// parameters, the completion time with BitTorrent is more than 30% worse
// than the optimal time").
//
// Unlike the §2.4 randomized algorithm — which uploads to a random
// *interested* neighbor chosen fresh every tick — a tit-for-tat node only
// uploads to neighbors it has *unchoked*:
//
//   * every `rechoke_period` ticks, each client unchokes the
//     `regular_unchokes` neighbors that sent it the most data during the
//     last window (reciprocation), plus `optimistic_unchokes` random
//     neighbors (exploration, how newcomers bootstrap);
//   * the server has nothing to reciprocate, so all of its unchokes are
//     optimistic (rotated randomly);
//   * per tick a node uploads one block to a random unchoked-and-interested
//     neighbor, block chosen rarest-first (the BitTorrent piece policy).
//
// The restriction to a slowly-changing unchoke set is exactly what costs
// BitTorrent its efficiency in this static, homogeneous-bandwidth setting.

#pragma once

#include <memory>
#include <vector>

#include "pob/core/rng.h"
#include "pob/core/scheduler.h"
#include "pob/overlay/overlay.h"
#include "pob/rand/randomized.h"

namespace pob {

struct TitForTatOptions {
  std::uint32_t regular_unchokes = 3;     ///< reciprocated upload slots
  std::uint32_t optimistic_unchokes = 1;  ///< random exploration slots
  Tick rechoke_period = 10;               ///< ticks between unchoke updates
  BlockPolicy policy = BlockPolicy::kRarestFirst;
  std::uint32_t upload_capacity = 1;
  std::uint32_t download_capacity = kUnlimited;
};

class TitForTatScheduler final : public Scheduler {
 public:
  TitForTatScheduler(std::shared_ptr<const Overlay> overlay, TitForTatOptions options,
                     Rng rng);

  std::string_view name() const override { return "tit-for-tat"; }
  void plan_tick(Tick tick, const SwarmState& state, std::vector<Transfer>& out) override;

 private:
  void ensure_scratch(const SwarmState& state);
  void rechoke(Tick tick, const SwarmState& state);

  std::shared_ptr<const Overlay> overlay_;
  TitForTatOptions opt_;
  Rng rng_;

  // received_[u] aligns with the overlay adjacency of u: blocks received
  // from each neighbor during the current rechoke window.
  std::vector<std::vector<std::uint32_t>> received_;
  std::vector<std::vector<NodeId>> unchoked_;  // per node, current unchoke set
  std::vector<BlockSet> incoming_;
  std::vector<Tick> incoming_stamp_;
  std::vector<std::uint32_t> down_used_;
  std::vector<Tick> down_stamp_;
};

}  // namespace pob
