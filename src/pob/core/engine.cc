#include "pob/core/engine.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <sstream>
#include <unordered_set>

namespace pob {

double RunResult::mean_client_completion() const {
  if (client_completion.empty()) return 0.0;
  const auto sum = std::accumulate(client_completion.begin(),
                                   client_completion.end(), std::uint64_t{0});
  return static_cast<double>(sum) / static_cast<double>(client_completion.size());
}

double RunResult::deadline_miss_fraction() const {
  if (deadline_checks == 0) return 0.0;
  return static_cast<double>(deadline_misses) /
         static_cast<double>(deadline_checks);
}

Count RunResult::total_rebuffer_ticks() const {
  return std::accumulate(rebuffer_ticks.begin(), rebuffer_ticks.end(), Count{0});
}

double RunResult::utilization(Tick t, const EngineConfig& cfg) const {
  if (t == 0 || t > uploads_per_tick.size()) return 0.0;
  if (t <= active_slots_per_tick.size()) {
    const double active = static_cast<double>(active_slots_per_tick[t - 1]);
    if (active <= 0.0) return 0.0;  // everyone but the server departed
    return static_cast<double>(uploads_per_tick[t - 1]) / active;
  }
  double slots = 0.0;
  if (!cfg.upload_capacities.empty()) {
    for (const std::uint32_t c : cfg.upload_capacities) slots += c;
  } else {
    const std::uint32_t server_up = cfg.server_upload_capacity != 0
                                        ? cfg.server_upload_capacity
                                        : cfg.upload_capacity;
    slots = static_cast<double>(cfg.upload_capacity) *
                static_cast<double>(cfg.num_nodes - 1) +
            static_cast<double>(server_up);
  }
  return static_cast<double>(uploads_per_tick[t - 1]) / slots;
}

Tick default_tick_cap(std::uint32_t num_nodes, std::uint32_t num_blocks) {
  // Generous: covers even the slowest deterministic baseline in this repo
  // (binomial tree sending one block at a time, T = k * ceil(log2 n)) with
  // ample headroom, since ceil(log2 n) <= 32 for any 32-bit n and the 66x
  // block factor doubles that. Computed in 64 bits and saturated: near
  // n = 2^31 the sum itself would wrap Tick and yield a tiny cap.
  const std::uint64_t cap = 1024ull + 2ull * num_nodes + 66ull * num_blocks;
  return static_cast<Tick>(
      std::min<std::uint64_t>(cap, std::numeric_limits<Tick>::max()));
}

namespace {

[[noreturn]] void violation(Tick tick, const Transfer& tr, const char* why) {
  std::ostringstream os;
  os << "tick " << tick << ": transfer " << tr.from << " -> " << tr.to
     << " (block " << tr.block << "): " << why;
  throw EngineViolation(os.str());
}

}  // namespace

RunResult run_with_state(const EngineConfig& config, Scheduler& scheduler,
                         Mechanism* mechanism, SwarmState& state) {
  if (config.num_nodes < 2) throw std::invalid_argument("engine: num_nodes < 2");
  if (config.num_blocks < 1) throw std::invalid_argument("engine: num_blocks < 1");
  if (config.upload_capacity < 1) throw std::invalid_argument("engine: upload_capacity < 1");
  if (config.download_capacity < 1) throw std::invalid_argument("engine: download_capacity < 1");
  if (state.num_nodes() != config.num_nodes || state.num_blocks() != config.num_blocks) {
    throw std::invalid_argument("engine: state dimensions do not match config");
  }

  const std::uint32_t n = config.num_nodes;
  // Config shape errors are reported as EngineViolation with distinct
  // messages: they are machine-checked preconditions of the §2.1 model, and
  // the differential oracle (pob/check) mirrors each rule independently.
  if (!config.upload_capacities.empty() && config.upload_capacities.size() != n) {
    throw EngineViolation("config: upload_capacities has " +
                          std::to_string(config.upload_capacities.size()) +
                          " entries for " + std::to_string(n) + " nodes");
  }
  if (!config.download_capacities.empty() && config.download_capacities.size() != n) {
    throw EngineViolation("config: download_capacities has " +
                          std::to_string(config.download_capacities.size()) +
                          " entries for " + std::to_string(n) + " nodes");
  }
  for (const auto& [dep_tick, dep_node] : config.departures) {
    (void)dep_tick;
    if (dep_node == kServer) {
      throw EngineViolation("config: departure names the server (node 0)");
    }
    if (dep_node >= n) {
      throw EngineViolation("config: departure names out-of-range node " +
                            std::to_string(dep_node) + " (num_nodes " +
                            std::to_string(n) + ")");
    }
  }
  const std::uint32_t server_up = config.server_upload_capacity != 0
                                      ? config.server_upload_capacity
                                      : config.upload_capacity;
  const auto up_cap_of = [&](NodeId node) -> std::uint32_t {
    if (!config.upload_capacities.empty()) return config.upload_capacities[node];
    return node == kServer ? server_up : config.upload_capacity;
  };
  const auto down_cap_of = [&](NodeId node) -> std::uint32_t {
    if (!config.download_capacities.empty()) return config.download_capacities[node];
    return config.download_capacity;
  };
  // The paper's model requires d >= u for every client (§2.1); the server
  // never downloads, so its entries are exempt (e.g. §2.3.4's m*u server).
  for (NodeId c = 1; c < n; ++c) {
    if (down_cap_of(c) < up_cap_of(c)) {
      throw EngineViolation("config: client " + std::to_string(c) +
                            " has download capacity " + std::to_string(down_cap_of(c)) +
                            " < upload capacity " + std::to_string(up_cap_of(c)) +
                            " (the model requires d >= u)");
    }
  }
  const Tick cap = config.max_ticks != 0
                       ? config.max_ticks
                       : default_tick_cap(config.num_nodes, config.num_blocks);

  // Departures sorted by tick; applied at the start of their tick.
  std::vector<std::pair<Tick, NodeId>> departures = config.departures;
  std::sort(departures.begin(), departures.end());
  std::size_t next_departure = 0;

  RunResult result;
  result.uploads_per_node.assign(n, 0);
  std::vector<Transfer> tick_transfers;
  std::vector<Transfer> kept;
  std::vector<std::uint32_t> up_used(n), down_used(n);

  // Upload slots offered by currently active nodes; shrinks as nodes depart
  // so that stall detection and utilization compare against capacity that
  // actually exists, not the tick-0 fleet.
  std::uint64_t active_slots = 0;
  for (NodeId u = 0; u < n; ++u) active_slots += up_cap_of(u);
  const auto deactivate = [&](NodeId node) {
    if (!state.is_active(node)) return;
    state.deactivate(node);
    active_slots -= up_cap_of(node);
  };
  std::uint64_t window_sum = 0;        // transfers in the stall window
  std::uint64_t window_slots_sum = 0;  // active slots in the stall window

  // Deliveries severed by churn, keyed (receiver << 32) | block. A rigid
  // schedule's later sends of a block that never arrived — and duplicate
  // re-deliveries of one that was rerouted — are casualties of these, and
  // only these, so they are what lossy mode may drop without masking real
  // scheduler bugs. A key is retired once the loss is resolved (the receiver
  // acquires the block, or one stale duplicate has been forgiven), so a
  // later genuine anomaly on the same (node, block) pair throws again.
  std::unordered_set<std::uint64_t> lost_deliveries;
  const auto delivery_key = [](NodeId to, BlockId block) {
    return (static_cast<std::uint64_t>(to) << 32) | block;
  };

  std::vector<NodeId> leaving;  // depart_on_complete: who finished last tick

  Tick tick = 0;
  while (!state.all_complete() && tick < cap) {
    ++tick;
    while (next_departure < departures.size() && departures[next_departure].first <= tick) {
      deactivate(departures[next_departure].second);
      ++next_departure;
    }
    if (config.depart_on_complete) {
      for (const NodeId c : leaving) deactivate(c);
      leaving.clear();
    }
    if (state.all_complete()) break;  // survivors may already all be done

    tick_transfers.clear();
    scheduler.plan_tick(tick, state, tick_transfers);

    // --- Validate the tick against the bandwidth / data-transfer model. ---
    std::fill(up_used.begin(), up_used.end(), 0u);
    std::fill(down_used.begin(), down_used.end(), 0u);
    kept.clear();
    for (const Transfer& tr : tick_transfers) {
      if (tr.from >= n || tr.to >= n) violation(tick, tr, "node id out of range");
      if (tr.from == tr.to) violation(tick, tr, "self transfer");
      if (tr.block >= config.num_blocks) violation(tick, tr, "block id out of range");
      if (!state.is_active(tr.from) || !state.is_active(tr.to)) {
        if (config.drop_transfers_involving_inactive) {
          ++result.dropped_transfers;
          if (state.is_active(tr.to)) {
            // A live receiver just lost this delivery; its own forwards of
            // the block become casualties too.
            lost_deliveries.insert(delivery_key(tr.to, tr.block));
          }
          continue;
        }
        violation(tick, tr, "transfer involves a departed node");
      }
      if (!state.has(tr.from, tr.block)) {
        if (config.drop_transfers_involving_inactive &&
            lost_deliveries.count(delivery_key(tr.from, tr.block)) != 0) {
          // Lost upstream: the sender never received the block because a
          // departure severed its delivery. The casualty cascades.
          ++result.dropped_transfers;
          lost_deliveries.insert(delivery_key(tr.to, tr.block));
          continue;
        }
        violation(tick, tr, "sender does not hold the block at tick start");
      }
      if (state.has(tr.to, tr.block)) {
        if (config.drop_transfers_involving_inactive &&
            lost_deliveries.erase(delivery_key(tr.to, tr.block)) != 0) {
          // The original delivery was severed but the receiver holds the
          // block anyway; drop the stale duplicate. Erasing the key forgives
          // only this first one — a second duplicate is a scheduler bug.
          ++result.dropped_transfers;
          continue;
        }
        violation(tick, tr, "receiver already holds the block");
      }
      if (++up_used[tr.from] > up_cap_of(tr.from)) {
        violation(tick, tr, "sender over upload capacity");
      }
      const std::uint32_t dcap = down_cap_of(tr.to);
      if (dcap != kUnlimited && ++down_used[tr.to] > dcap) {
        violation(tick, tr, "receiver over download capacity");
      }
      kept.push_back(tr);
    }
    tick_transfers.swap(kept);
    // No duplicate delivery of one block to one receiver within a tick (the
    // handshake protocol of §2.4.2 exists precisely to prevent this).
    {
      std::vector<std::uint64_t> keys;
      keys.reserve(tick_transfers.size());
      for (const Transfer& tr : tick_transfers) {
        keys.push_back((static_cast<std::uint64_t>(tr.to) << 32) | tr.block);
      }
      std::sort(keys.begin(), keys.end());
      if (std::adjacent_find(keys.begin(), keys.end()) != keys.end()) {
        violation(tick, tick_transfers.front(),
                  "same block delivered twice to one receiver in one tick");
      }
    }
    if (mechanism != nullptr) {
      if (auto err = mechanism->check_tick(tick, tick_transfers, state)) {
        throw EngineViolation("tick " + std::to_string(tick) + ": mechanism '" +
                              std::string(mechanism->name()) + "' violated: " + *err);
      }
    }

    // --- Commit. ---
    if (mechanism != nullptr) mechanism->commit_tick(tick, tick_transfers, state);
    for (const Transfer& tr : tick_transfers) {
      const bool became_complete = !state.is_complete(tr.to);
      const bool added = state.add_block(tr.to, tr.block, tick);
      assert(added);
      (void)added;
      if (!lost_deliveries.empty()) {
        // A delivery filled this receiver's severed gap; retire the key so
        // the lossy forgiveness for this (node, block) pair ends here.
        lost_deliveries.erase(delivery_key(tr.to, tr.block));
      }
      ++result.uploads_per_node[tr.from];
      if (config.depart_on_complete && became_complete && state.is_complete(tr.to)) {
        leaving.push_back(tr.to);
      }
    }
    result.total_transfers += tick_transfers.size();
    result.uploads_per_tick.push_back(tick_transfers.size());
    result.active_slots_per_tick.push_back(active_slots);
    if (config.record_trace) result.trace.push_back(tick_transfers);

    if (config.stall_window != 0) {
      window_sum += tick_transfers.size();
      window_slots_sum += active_slots;
      if (tick > config.stall_window) {
        window_sum -= result.uploads_per_tick[tick - config.stall_window - 1];
        window_slots_sum -= result.active_slots_per_tick[tick - config.stall_window - 1];
      }
      if (tick >= config.stall_window &&
          static_cast<double>(window_sum) <
              config.stall_utilization * static_cast<double>(window_slots_sum)) {
        result.stalled = true;
        break;
      }
    }
  }

  result.ticks_executed = tick;
  result.completed = state.all_complete();
  result.departed = state.num_departed();
  result.client_completion = state.client_completion_ticks();
  if (result.completed) {
    result.completion_tick =
        *std::max_element(result.client_completion.begin(), result.client_completion.end());
  }
  return result;
}

RunResult run(const EngineConfig& config, Scheduler& scheduler, Mechanism* mechanism) {
  SwarmState state(config.num_nodes, config.num_blocks);
  return run_with_state(config, scheduler, mechanism, state);
}

}  // namespace pob
