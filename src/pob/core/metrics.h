// Derived metrics over RunResults: utilization statistics for the
// "amortization" analysis of §2.4.3 and completion-spread statistics for the
// individual-completion-time observation of §2.3.4.

#pragma once

#include <cstdint>
#include <vector>

#include "pob/core/engine.h"
#include "pob/core/types.h"

namespace pob {

struct UtilizationSummary {
  double mean = 0.0;            ///< mean upload-slot utilization over the run
  double min = 0.0;             ///< worst single tick
  std::uint32_t full_ticks = 0; ///< ticks at 100% utilization
  std::uint32_t bad_ticks = 0;  ///< ticks below `bad_threshold`
  double bad_threshold = 0.0;
  std::uint32_t total_ticks = 0;
};

/// Summarizes per-tick upload utilization of a finished run. `bad_threshold`
/// defines a "bad" tick (paper's intuition argued >= 1/6 of nodes idle every
/// tick, i.e. utilization <= 5/6; the measured amortization refutes that).
UtilizationSummary summarize_utilization(const RunResult& result,
                                         const EngineConfig& config,
                                         double bad_threshold = 5.0 / 6.0);

struct CompletionSpread {
  Tick first = 0;   ///< earliest client completion tick
  Tick last = 0;    ///< latest client completion tick (= T)
  Tick spread = 0;  ///< last - first (0 means all finish simultaneously)
  double mean = 0.0;
};

/// Completion-time spread across clients of a completed run.
CompletionSpread completion_spread(const RunResult& result);

/// Effective per-client goodput in blocks/tick: k / T_i, averaged.
double mean_client_goodput(const RunResult& result, std::uint32_t num_blocks);

/// Distribution of upload work across CLIENTS (the server is excluded: it
/// is paid to upload). Barter mechanisms exist to equalize exactly this.
struct FairnessSummary {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Gini coefficient of client upload counts: 0 = perfectly equal,
  /// -> 1 = one client does all the work.
  double gini = 0.0;
};

FairnessSummary upload_fairness(const RunResult& result);

}  // namespace pob
