// §2.2.1 "The Pipeline": the server sends the file block by block to client
// 1, which relays it to client 2, and so on down a chain. Completion time is
// exactly k + n - 2 ticks: k ticks to drain the server plus n - 2 further
// hops for the last block to reach the last client.

#pragma once

#include "pob/core/scheduler.h"

namespace pob {

class PipelineScheduler final : public Scheduler {
 public:
  PipelineScheduler(std::uint32_t num_nodes, std::uint32_t num_blocks);

  std::string_view name() const override { return "pipeline"; }
  void plan_tick(Tick tick, const SwarmState& state, std::vector<Transfer>& out) override;

  /// Closed-form completion time of this schedule.
  static Tick completion_time(std::uint32_t num_nodes, std::uint32_t num_blocks) {
    return num_blocks + num_nodes - 2;
  }

 private:
  std::uint32_t n_;
  std::uint32_t k_;
};

}  // namespace pob
