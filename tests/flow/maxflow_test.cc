#include "pob/flow/maxflow.h"

#include <gtest/gtest.h>

namespace pob::flow {
namespace {

TEST(MaxFlow, SingleArcCarriesItsCapacity) {
  FlowNetwork net(2);
  const std::uint32_t arc = net.add_arc(0, 1, 5);
  EXPECT_EQ(net.max_flow(0, 1), 5);
  EXPECT_EQ(net.arc_flow(arc), 5);
}

TEST(MaxFlow, DisconnectedSinkGetsZero) {
  FlowNetwork net(3);
  net.add_arc(0, 1, 5);
  EXPECT_EQ(net.max_flow(0, 2), 0);
}

TEST(MaxFlow, ClassicDiamondNeedsTheCrossArc) {
  // s=0, a=1, b=2, t=3: the cross arc a->b unlocks the third unit.
  FlowNetwork net(4);
  net.add_arc(0, 1, 2);
  net.add_arc(0, 2, 1);
  net.add_arc(1, 3, 1);
  net.add_arc(2, 3, 2);
  const std::uint32_t cross = net.add_arc(1, 2, 1);
  EXPECT_EQ(net.max_flow(0, 3), 3);
  EXPECT_EQ(net.arc_flow(cross), 1);
}

TEST(MaxFlow, BipartiteMatchingRoutesEveryUnit) {
  // Source 0, left {1,2,3}, right {4,5,6}, sink 7; a perfect matching exists.
  FlowNetwork net(8);
  for (std::uint32_t l = 1; l <= 3; ++l) net.add_arc(0, l, 1);
  for (std::uint32_t r = 4; r <= 6; ++r) net.add_arc(r, 7, 1);
  net.add_arc(1, 4, 1);
  net.add_arc(1, 5, 1);
  net.add_arc(2, 4, 1);
  net.add_arc(3, 6, 1);
  EXPECT_EQ(net.max_flow(0, 7), 3);
}

TEST(MaxFlow, LimitStopsEarly) {
  FlowNetwork net(2);
  net.add_arc(0, 1, 10);
  EXPECT_EQ(net.max_flow(0, 1, 4), 4);
  // The remaining capacity is still routable by a second call.
  EXPECT_EQ(net.max_flow(0, 1), 6);
}

TEST(MaxFlow, ResidualsAllowReroutingAcrossCalls) {
  // A long path graph exercises the iterative (non-recursive) augmenter.
  constexpr std::uint32_t kLen = 50'000;
  FlowNetwork net(kLen + 1);
  for (std::uint32_t i = 0; i < kLen; ++i) net.add_arc(i, i + 1, 2);
  EXPECT_EQ(net.max_flow(0, kLen), 2);
}

TEST(MaxFlow, AddNodeExtendsTheNetwork) {
  FlowNetwork net(1);
  const std::uint32_t mid = net.add_node();
  const std::uint32_t sink = net.add_node();
  EXPECT_EQ(net.num_nodes(), 3u);
  net.add_arc(0, mid, 3);
  net.add_arc(mid, sink, 2);
  EXPECT_EQ(net.max_flow(0, sink), 2);
  EXPECT_EQ(net.num_arcs(), 2u);
}

TEST(MinCostFlow, PrefersTheCheapPathFirst) {
  // Two disjoint unit paths, cost 1 and cost 3.
  FlowNetwork net(4);
  net.add_arc(0, 1, 1, 1);
  net.add_arc(1, 3, 1, 0);
  net.add_arc(0, 2, 1, 3);
  net.add_arc(2, 3, 1, 0);
  const auto one = net.min_cost_max_flow(0, 3, 1);
  EXPECT_EQ(one.flow, 1);
  EXPECT_EQ(one.cost, 1);
  const auto rest = net.min_cost_max_flow(0, 3);
  EXPECT_EQ(rest.flow, 1);
  EXPECT_EQ(rest.cost, 3);
}

TEST(MinCostFlow, ReroutesThroughResidualArcs) {
  // The classic case where the second augmentation must cancel flow on the
  // middle arc: s=0, a=1, b=2, t=3.
  FlowNetwork net(4);
  net.add_arc(0, 1, 1, 1);
  net.add_arc(0, 2, 1, 4);
  net.add_arc(1, 2, 1, 1);
  net.add_arc(1, 3, 1, 5);
  net.add_arc(2, 3, 1, 1);
  const auto result = net.min_cost_max_flow(0, 3);
  EXPECT_EQ(result.flow, 2);
  // Cheapest path 0->1->2->3 (cost 3) saturates 2->3; the second unit must
  // cancel 1->2 via its residual: 0->2->(1)->3 costs 4 - 1 + 5 = 8.
  EXPECT_EQ(result.cost, 11);
}

TEST(MinCostFlow, MatchesMaxFlowValue) {
  FlowNetwork a(4), b(4);
  for (FlowNetwork* net : {&a, &b}) {
    net->add_arc(0, 1, 2, 1);
    net->add_arc(0, 2, 1, 1);
    net->add_arc(1, 3, 1, 2);
    net->add_arc(2, 3, 2, 2);
    net->add_arc(1, 2, 1, 0);
  }
  EXPECT_EQ(b.min_cost_max_flow(0, 3).flow, a.max_flow(0, 3));
}

}  // namespace
}  // namespace pob::flow
