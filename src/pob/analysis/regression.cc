#include "pob/analysis/regression.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace pob {
namespace {

/// Solves A x = b for 3x3 A, in place, with partial pivoting.
std::array<double, 3> solve3(std::array<std::array<double, 4>, 3> m) {
  double scale = 0.0;
  for (const auto& row : m) {
    for (std::size_t c = 0; c < 3; ++c) scale = std::max(scale, std::fabs(row[c]));
  }
  const double tolerance = std::max(scale, 1.0) * 1e-9;
  for (std::size_t col = 0; col < 3; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < 3; ++r) {
      if (std::fabs(m[r][col]) > std::fabs(m[pivot][col])) pivot = r;
    }
    if (std::fabs(m[pivot][col]) < tolerance) {
      throw std::invalid_argument("regression: singular normal equations");
    }
    std::swap(m[col], m[pivot]);
    for (std::size_t r = 0; r < 3; ++r) {
      if (r == col) continue;
      const double f = m[r][col] / m[col][col];
      for (std::size_t c = col; c < 4; ++c) m[r][c] -= f * m[col][c];
    }
  }
  return {m[0][3] / m[0][0], m[1][3] / m[1][1], m[2][3] / m[2][2]};
}

}  // namespace

RegressionFit fit_two_predictor(std::span<const RegressionPoint> points) {
  if (points.size() < 3) {
    throw std::invalid_argument("regression: need >= 3 points");
  }
  // Normal equations for [a b c]: X^T X beta = X^T y with X rows [x1 x2 1].
  double s11 = 0, s12 = 0, s1 = 0, s22 = 0, s2 = 0, s1y = 0, s2y = 0, sy = 0;
  const double n = static_cast<double>(points.size());
  for (const auto& p : points) {
    s11 += p.x1 * p.x1;
    s12 += p.x1 * p.x2;
    s1 += p.x1;
    s22 += p.x2 * p.x2;
    s2 += p.x2;
    s1y += p.x1 * p.y;
    s2y += p.x2 * p.y;
    sy += p.y;
  }
  const auto beta = solve3({{{s11, s12, s1, s1y}, {s12, s22, s2, s2y}, {s1, s2, n, sy}}});
  RegressionFit fit;
  fit.a = beta[0];
  fit.b = beta[1];
  fit.c = beta[2];

  const double mean_y = sy / n;
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (const auto& p : points) {
    const double e = p.y - fit.predict(p.x1, p.x2);
    ss_res += e * e;
    ss_tot += (p.y - mean_y) * (p.y - mean_y);
  }
  fit.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace pob
