// Random linear network coding over GF(2) for content distribution — the
// §4 related-work baseline ("Network coding for large scale content
// distribution", Gkantsidis & Rodriguez [13]).
//
// Instead of whole blocks, nodes exchange coded packets: XOR combinations of
// the k blocks, identified by coefficient vectors. Any k linearly
// independent packets decode the file, which dissolves the block-selection
// problem entirely — there is no "rarest block", any innovative packet
// helps. The cost is decoding work and the possibility of non-innovative
// (wasted) packets when coefficients collide.
//
// The simulator mirrors the §2.4 randomized algorithm tick-for-tick: every
// node with a nonzero span picks a random neighbor whose rank is not full
// and for whom it is an innovative source, and transmits a random
// combination of its span (one packet per tick = the same bandwidth model).

#pragma once

#include <memory>
#include <vector>

#include "pob/coding/gf2.h"
#include "pob/core/types.h"
#include "pob/overlay/overlay.h"

namespace pob {

struct CodedSwarmOptions {
  std::uint32_t max_probes = 24;
  /// Check innovativeness before sending (the "exact neighbor knowledge" of
  /// §2.4.1 applied to spans). When false, senders only check that the
  /// receiver's rank is not full — cheaper, but packets can be wasted, which
  /// is the regime [13] analyzes.
  bool check_innovative = true;
  Tick max_ticks = 0;  ///< 0 = generous default
};

struct CodedSwarmResult {
  bool completed = false;
  Tick completion_tick = 0;            ///< last client reaches rank k
  double mean_completion = 0.0;        ///< mean client full-rank tick
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_wasted = 0;    ///< non-innovative deliveries
  std::vector<Tick> client_completion;

  double waste_ratio() const {
    return packets_sent == 0
               ? 0.0
               : static_cast<double>(packets_wasted) / static_cast<double>(packets_sent);
  }
};

/// Runs the coded swarm: `num_nodes` nodes (node 0 the server, which knows
/// all k unit vectors), one packet upload per node per tick.
CodedSwarmResult run_coded_swarm(std::uint32_t num_nodes, std::uint32_t num_blocks,
                                 std::shared_ptr<const Overlay> overlay,
                                 CodedSwarmOptions options, Rng rng);

}  // namespace pob
