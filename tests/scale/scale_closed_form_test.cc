// Closed-form pins for the deterministic scale schedulers (binomial
// pipeline, triangular barter, riffle pipeline), on the same code paths the
// million-node runs use:
//
//  - Theorem 1: the binomial pipeline finishes at exactly k - 1 + log2 n on
//    every power-of-two swarm, and the triangular-barter variant (identical
//    schedule under a live 3-cycle ledger) matches it tick for tick.
//  - Theorem 2 / 3: the riffle pipeline matches the core scheduler's
//    schedule length, which is the strict-barter optimum n + k - 2 whenever
//    the last cycle is full ((n - 1) | k).
//  - The per-tick transfer *sets* equal the core schedulers' (order within
//    a tick is irrelevant in the simultaneous-tick model).
//  - RunResults are bit-identical across --jobs, and the mirrored core run
//    (MirrorScheduler + the real mechanisms) reproduces them exactly.
//  - Configs the closed forms were not derived for are rejected with
//    distinct EngineViolation messages.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "pob/analysis/bounds.h"
#include "pob/check/oracle.h"
#include "pob/core/engine.h"
#include "pob/mech/barter.h"
#include "pob/overlay/builders.h"
#include "pob/sched/binomial_pipeline.h"
#include "pob/sched/riffle_pipeline.h"
#include "pob/scale/engine.h"
#include "pob/scale/mirror.h"

namespace pob::scale {
namespace {

EngineConfig det_cfg(std::uint32_t n, std::uint32_t k, std::uint32_t down) {
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  cfg.download_capacity = down;
  return cfg;
}

RunResult run_det(const EngineConfig& cfg, SchedKind kind, unsigned jobs) {
  ScaleOptions opt;
  opt.scheduler = kind;
  if (kind == SchedKind::kTriangularBarter) opt.credit_limit = 1;
  auto topo = std::make_shared<Topology>(Topology::complete(cfg.num_nodes));
  Engine engine(cfg, std::move(topo), opt, 1);
  return engine.run(jobs);
}

// --- The (n, k) grid: every power of two up to 4096 crossed with block
// counts that straddle the 64-bit possession-word boundary. ---

class ScaleClosedForm
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(ScaleClosedForm, BinomialAchievesTheoremOneBitIdenticallyAcrossJobs) {
  const auto [n, k] = GetParam();
  const EngineConfig cfg = det_cfg(n, k, kUnlimited);
  const RunResult r = run_det(cfg, SchedKind::kBinomialPipeline, 1);
  const Tick want = cooperative_lower_bound(n, k);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.completion_tick, want);
  // Every client downloads every block exactly once.
  EXPECT_EQ(r.total_transfers, static_cast<Count>(n - 1) * k);
  EXPECT_EQ(check::run_result_digest(run_det(cfg, SchedKind::kBinomialPipeline, 4)),
            check::run_result_digest(r));
}

TEST_P(ScaleClosedForm, TriangularBarterRunsTheSameScheduleUnderTheLedger) {
  const auto [n, k] = GetParam();
  const EngineConfig cfg = det_cfg(n, k, kUnlimited);
  const RunResult r = run_det(cfg, SchedKind::kTriangularBarter, 1);
  ASSERT_TRUE(r.completed);
  // §3.3: the price of triangular barter is 1 — the cooperative optimum
  // survives the 3-cycle constraint unchanged.
  EXPECT_EQ(r.completion_tick, cooperative_lower_bound(n, k));
  EXPECT_EQ(check::run_result_digest(r),
            check::run_result_digest(run_det(cfg, SchedKind::kBinomialPipeline, 1)));
}

TEST_P(ScaleClosedForm, RiffleMatchesTheCoreScheduleLength) {
  const auto [n, k] = GetParam();
  const EngineConfig cfg = det_cfg(n, k, 2);
  const RunResult r = run_det(cfg, SchedKind::kRifflePipeline, 1);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.total_transfers, static_cast<Count>(n - 1) * k);
  // Strict barter can never beat Theorem 2's n + k - 2.
  EXPECT_GE(r.completion_tick, strict_barter_lower_bound_equal_bw(n, k));
  if (n <= 512) {
    // The core scheduler materializes O(n k) meetings — only affordable at
    // small n, but the schedule arithmetic being compared is the same one
    // the million-node runs execute.
    EXPECT_EQ(r.completion_tick,
              RifflePipelineScheduler(n, k, 1, 2).schedule_length());
  }
  if (k % (n - 1) == 0) {
    // Theorem 3: full cycles meet Theorem 2's strict-barter bound exactly.
    EXPECT_EQ(r.completion_tick,
              RifflePipelineScheduler::ideal_completion_time(n, k));
    EXPECT_EQ(r.completion_tick, strict_barter_lower_bound_equal_bw(n, k));
  }
  EXPECT_EQ(check::run_result_digest(run_det(cfg, SchedKind::kRifflePipeline, 4)),
            check::run_result_digest(r));
}

INSTANTIATE_TEST_SUITE_P(
    PowersOfTwo, ScaleClosedForm,
    ::testing::Combine(::testing::Values(2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u,
                                         512u, 1024u, 2048u, 4096u),
                       ::testing::Values(1u, 63u, 64u, 65u, 512u)),
    [](const auto& param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "k" +
             std::to_string(std::get<1>(param_info.param));
    });

// --- Per-tick set equality against the core schedulers. ---

using TickSet = std::vector<Transfer>;

std::vector<TickSet> sorted_trace(const RunResult& r) {
  std::vector<TickSet> out(r.trace.begin(), r.trace.end());
  const auto key = [](const Transfer& t) {
    return std::make_tuple(t.from, t.to, t.block);
  };
  for (TickSet& tick : out) {
    std::sort(tick.begin(), tick.end(),
              [&](const Transfer& a, const Transfer& b) { return key(a) < key(b); });
  }
  return out;
}

TEST(ScaleClosedFormTrace, BinomialPerTickSetsEqualTheCoreScheduler) {
  for (const auto& [n, k] : {std::pair{16u, 21u}, {256u, 65u}, {1024u, 1u}}) {
    EngineConfig cfg = det_cfg(n, k, kUnlimited);
    cfg.record_trace = true;
    const RunResult scale_r = run_det(cfg, SchedKind::kBinomialPipeline, 1);
    BinomialPipelineScheduler core_sched(n, k);
    const RunResult core_r = run(cfg, core_sched);
    ASSERT_TRUE(scale_r.completed && core_r.completed);
    ASSERT_EQ(scale_r.completion_tick, core_r.completion_tick) << "n=" << n;
    EXPECT_EQ(sorted_trace(scale_r), sorted_trace(core_r)) << "n=" << n << " k=" << k;
  }
}

TEST(ScaleClosedFormTrace, RifflePerTickSetsEqualTheCoreScheduler) {
  // Full cycles (k = 3(n-1)), a single full cycle (k = n-1), a partial tail
  // (15 ∤ 21), and the subgroup recursion (k < n - 1).
  for (const auto& [n, k] : {std::pair{8u, 21u}, {64u, 63u}, {16u, 21u}, {128u, 40u}}) {
    EngineConfig cfg = det_cfg(n, k, 2);
    cfg.record_trace = true;
    const RunResult scale_r = run_det(cfg, SchedKind::kRifflePipeline, 1);
    RifflePipelineScheduler core_sched(n, k, 1, 2);
    const RunResult core_r = run(cfg, core_sched);
    ASSERT_TRUE(scale_r.completed && core_r.completed);
    ASSERT_EQ(scale_r.completion_tick, core_r.completion_tick) << "n=" << n;
    EXPECT_EQ(sorted_trace(scale_r), sorted_trace(core_r)) << "n=" << n << " k=" << k;
  }
}

// --- Mirror equivalence: the scale stream, replayed through core::Engine
// with the real mechanism attached, reproduces the identical RunResult. ---

TEST(ScaleClosedFormMirror, DeterministicStreamsSurviveTheCoreMechanisms) {
  for (const auto& [n, k] : {std::pair{8u, 7u}, {64u, 65u}, {256u, 12u}}) {
    {
      ScaleOptions opt;
      opt.scheduler = SchedKind::kRifflePipeline;
      auto topo = std::make_shared<Topology>(Topology::complete(n));
      const EngineConfig cfg = det_cfg(n, k, 2);
      Engine direct(cfg, topo, opt, 1);
      const RunResult direct_r = direct.run(1);
      MirrorScheduler mirror(std::make_unique<Engine>(cfg, topo, opt, 1));
      StrictBarter strict;
      EXPECT_EQ(check::run_result_digest(run(cfg, mirror, &strict)),
                check::run_result_digest(direct_r))
          << "riffle n=" << n << " k=" << k;
    }
    {
      ScaleOptions opt;
      opt.scheduler = SchedKind::kTriangularBarter;
      opt.credit_limit = 1;
      auto topo = std::make_shared<Topology>(Topology::complete(n));
      const EngineConfig cfg = det_cfg(n, k, kUnlimited);
      Engine direct(cfg, topo, opt, 1);
      const RunResult direct_r = direct.run(1);
      MirrorScheduler mirror(std::make_unique<Engine>(cfg, topo, opt, 1));
      CyclicBarter tri(3, 1);
      EXPECT_EQ(check::run_result_digest(run(cfg, mirror, &tri)),
                check::run_result_digest(direct_r))
          << "triangular n=" << n << " k=" << k;
    }
  }
}

// --- Hypercube overlays: the binomial family runs on the materialized
// hypercube too (the complete graph merely contains it). ---

TEST(ScaleClosedFormOverlay, BinomialFamilyAcceptsTheHypercubeOverlay) {
  constexpr std::uint32_t n = 64, k = 19;
  auto topo = std::make_shared<Topology>(
      Topology::from_graph(make_hypercube_overlay(n)));
  for (const SchedKind kind :
       {SchedKind::kBinomialPipeline, SchedKind::kTriangularBarter}) {
    ScaleOptions opt;
    opt.scheduler = kind;
    if (kind == SchedKind::kTriangularBarter) opt.credit_limit = 1;
    Engine engine(det_cfg(n, k, kUnlimited), topo, opt, 1);
    const RunResult r = engine.run(1);
    ASSERT_TRUE(r.completed) << sched_kind_name(kind);
    EXPECT_EQ(r.completion_tick, cooperative_lower_bound(n, k));
  }
}

// --- Guard rails: distinct EngineViolation messages per rejected rule. ---

std::string violation_for(const EngineConfig& cfg,
                          std::shared_ptr<const Topology> topo,
                          const ScaleOptions& opt) {
  try {
    Engine engine(cfg, std::move(topo), opt, 1);
  } catch (const EngineViolation& v) {
    return v.what();
  }
  return "";
}

TEST(ScaleClosedFormGuards, EachIllegalConfigGetsItsOwnMessage) {
  ScaleOptions binomial;
  binomial.scheduler = SchedKind::kBinomialPipeline;
  ScaleOptions riffle;
  riffle.scheduler = SchedKind::kRifflePipeline;
  ScaleOptions triangular;
  triangular.scheduler = SchedKind::kTriangularBarter;
  triangular.credit_limit = 1;
  const auto complete = [](std::uint32_t n) {
    return std::make_shared<Topology>(Topology::complete(n));
  };

  EXPECT_EQ(violation_for(det_cfg(6, 4, kUnlimited), complete(6), binomial),
            "scale: binomial-pipeline requires power-of-two num_nodes (got 6)");
  {
    EngineConfig cfg = det_cfg(8, 4, kUnlimited);
    cfg.download_capacities.assign(8, 2);
    EXPECT_EQ(violation_for(cfg, complete(8), binomial),
              "scale: binomial-pipeline requires uniform capacities (per-node "
              "capacity vectors are not supported)");
  }
  {
    EngineConfig cfg = det_cfg(8, 4, kUnlimited);
    cfg.upload_capacity = 2;
    cfg.download_capacity = 2;
    EXPECT_EQ(violation_for(cfg, complete(8), binomial),
              "scale: binomial-pipeline requires unit upload capacity "
              "(upload_capacity 1, server_upload_capacity <= 1)");
  }
  {
    EngineConfig cfg = det_cfg(8, 4, kUnlimited);
    cfg.departures = {{2, 3}};
    cfg.drop_transfers_involving_inactive = true;
    EXPECT_EQ(violation_for(cfg, complete(8), riffle),
              "scale: riffle-pipeline does not support churn (departures / "
              "depart_on_complete)");
  }
  {
    auto hypercube = std::make_shared<Topology>(
        Topology::from_graph(make_hypercube_overlay(8)));
    EXPECT_EQ(violation_for(det_cfg(8, 4, 2), hypercube, riffle),
              "scale: riffle-pipeline requires the complete topology");
  }
  EXPECT_EQ(violation_for(det_cfg(8, 4, 1), complete(8), riffle),
            "scale: riffle-pipeline requires download capacity >= 2 (a server "
            "hand-off may land on a bartering client)");
  {
    ScaleOptions bad = riffle;
    bad.credit_limit = 1;
    EXPECT_EQ(violation_for(det_cfg(8, 4, 2), complete(8), bad),
              "scale: riffle-pipeline is strict barter; credit_limit must be 0");
  }
  {
    // A ring is missing hypercube edges; the message names the first one.
    auto ring = std::make_shared<Topology>(Topology::from_graph(make_ring(8)));
    EXPECT_EQ(violation_for(det_cfg(8, 4, kUnlimited), ring, binomial),
              "scale: binomial-pipeline requires the hypercube overlay: "
              "missing edge 0 <-> 2");
  }
  {
    ScaleOptions bad = binomial;
    bad.credit_limit = 1;
    EXPECT_EQ(violation_for(det_cfg(8, 4, kUnlimited), complete(8), bad),
              "scale: binomial-pipeline is cooperative; credit_limit must be 0");
  }
  {
    ScaleOptions bad = triangular;
    bad.credit_limit = 0;
    EXPECT_EQ(violation_for(det_cfg(8, 4, kUnlimited), complete(8), bad),
              "scale: triangular-barter requires credit_limit >= 1");
  }
  // And the legal baseline sails through.
  EXPECT_EQ(violation_for(det_cfg(8, 4, kUnlimited), complete(8), binomial), "");
}

}  // namespace
}  // namespace pob::scale
