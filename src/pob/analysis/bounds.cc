#include "pob/analysis/bounds.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "pob/overlay/builders.h"

namespace pob {

Tick cooperative_lower_bound(std::uint32_t num_nodes, std::uint32_t num_blocks) {
  return num_blocks - 1 + ceil_log2(num_nodes);
}

Tick pipeline_completion(std::uint32_t num_nodes, std::uint32_t num_blocks) {
  return num_blocks + num_nodes - 2;
}

Tick binomial_tree_completion(std::uint32_t num_nodes, std::uint32_t num_blocks) {
  return num_blocks * ceil_log2(num_nodes);
}

Tick multicast_tree_estimate(std::uint32_t num_nodes, std::uint32_t num_blocks,
                             std::uint32_t arity) {
  if (arity < 2) throw std::invalid_argument("multicast estimate: arity >= 2");
  // ceil(log_arity(num_nodes)) without floating point drift.
  std::uint32_t depth = 0;
  std::uint64_t reach = 1;
  while (reach < num_nodes) {
    reach *= arity;
    ++depth;
  }
  return arity * (num_blocks + depth - 1);
}

Tick strict_barter_lower_bound_equal_bw(std::uint32_t num_nodes,
                                        std::uint32_t num_blocks) {
  return num_nodes + num_blocks - 2;
}

Tick strict_barter_lower_bound_ramp(std::uint32_t num_nodes, std::uint32_t num_blocks) {
  const std::uint64_t needed =
      static_cast<std::uint64_t>(num_nodes - 1) * num_blocks;
  std::uint64_t delivered = 0;
  Tick t = 0;
  while (delivered < needed) {
    ++t;
    const std::uint32_t capable = std::min(t - 1, num_nodes - 1);
    delivered += 1 + 2ull * (capable / 2);
    if (t > 0x7fffffffu) throw std::logic_error("ramp bound diverged");
  }
  // Everyone also needs a first (server) block, which takes n - 1 ticks.
  return std::max<Tick>(t, num_nodes - 1);
}

Tick strict_barter_lower_bound_general(std::uint32_t num_nodes, std::uint32_t num_blocks,
                                       std::uint32_t upload, std::uint32_t download,
                                       std::uint32_t server_upload) {
  if (server_upload < 1 || download < 1) {
    throw std::invalid_argument("strict barter general: server_upload, download >= 1");
  }
  if (num_nodes < 2 || num_blocks == 0) return 0;
  const std::uint32_t clients = num_nodes - 1;

  // Seeding: the server hands out first blocks at server_upload per tick.
  const std::uint64_t seed_ticks = (clients + server_upload - 1) / server_upload;
  const std::uint64_t rate =
      std::min<std::uint64_t>(download, std::uint64_t{upload} + server_upload);
  const std::uint64_t tail =
      num_blocks == 1 ? 0 : (num_blocks - 1 + rate - 1) / rate;
  const std::uint64_t seed_bound = seed_ticks + tail;

  // Pairing ramp: cumulative deliveries must cover (n - 1) * k receptions.
  const std::uint64_t needed = static_cast<std::uint64_t>(clients) * num_blocks;
  std::uint64_t delivered = 0;
  Tick t = 0;
  while (delivered < needed) {
    ++t;
    const std::uint64_t capable =
        std::min<std::uint64_t>(std::uint64_t{server_upload} * (t - 1), clients);
    delivered += server_upload + 2 * (std::uint64_t{upload} * capable / 2);
    if (t > 0x7fffffffu) throw std::logic_error("general ramp bound diverged");
  }
  return static_cast<Tick>(std::max<std::uint64_t>(seed_bound, t));
}

double price_of_barter(std::uint32_t num_nodes, std::uint32_t num_blocks) {
  return static_cast<double>(strict_barter_lower_bound_equal_bw(num_nodes, num_blocks)) /
         static_cast<double>(cooperative_lower_bound(num_nodes, num_blocks));
}

Tick multi_server_estimate(std::uint32_t num_nodes, std::uint32_t num_blocks,
                           std::uint32_t num_virtual_servers) {
  const std::uint32_t clients = num_nodes - 1;
  const std::uint32_t biggest_group =
      (clients + num_virtual_servers - 1) / num_virtual_servers;
  return num_blocks - 1 + ceil_log2(biggest_group + 1);
}

}  // namespace pob
