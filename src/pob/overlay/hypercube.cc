#include <bit>
#include <stdexcept>

#include "pob/overlay/builders.h"

namespace pob {

std::uint32_t floor_log2(std::uint32_t x) {
  if (x == 0) throw std::invalid_argument("floor_log2(0)");
  return 31u - static_cast<std::uint32_t>(std::countl_zero(x));
}

std::uint32_t ceil_log2(std::uint32_t x) {
  if (x == 0) throw std::invalid_argument("ceil_log2(0)");
  const std::uint32_t f = floor_log2(x);
  return (x & (x - 1)) == 0 ? f : f + 1;
}

HypercubeMap make_hypercube_map(std::uint32_t n) {
  if (n < 2) throw std::invalid_argument("make_hypercube_map: need n >= 2");
  HypercubeMap map;
  map.dims = floor_log2(n);
  map.num_vertices = 1u << map.dims;
  const std::uint32_t v = map.num_vertices;
  // Server alone on the all-zero ID; clients 1..v-1 on their own IDs;
  // clients v..n-1 doubled onto IDs 1..n-v. Feasible because
  // v <= n < 2v implies n - v <= v - 1.
  map.vertex_of.assign(n, 0);
  map.members.assign(v, {kNoNode, kNoNode});
  map.members[0] = {kServer, kNoNode};
  for (NodeId c = 1; c < n; ++c) {
    const std::uint32_t id = c < v ? c : c - v + 1;
    map.vertex_of[c] = id;
    if (map.members[id][0] == kNoNode) {
      map.members[id][0] = c;
    } else {
      map.members[id][1] = c;
    }
  }
  return map;
}

Graph make_hypercube_overlay(std::uint32_t n) {
  const HypercubeMap map = make_hypercube_map(n);
  Graph g(n);
  for (std::uint32_t v = 0; v < map.num_vertices; ++v) {
    // Intra-vertex edge for doubled vertices.
    if (map.members[v][1] != kNoNode) g.add_edge(map.members[v][0], map.members[v][1]);
    // Hypercube edges, emitted once per dimension with v < w.
    for (std::uint32_t dim = 0; dim < map.dims; ++dim) {
      const std::uint32_t w = v ^ (1u << dim);
      if (w < v) continue;
      for (const NodeId a : map.members[v]) {
        if (a == kNoNode) continue;
        for (const NodeId b : map.members[w]) {
          if (b == kNoNode) continue;
          g.add_edge(a, b);
        }
      }
    }
  }
  g.finalize();
  return g;
}

}  // namespace pob
