// Streaming-demand metrics for the stream layer: startup latency, rebuffer
// ticks, and playback-deadline misses, folded over the delivery stream of a
// run. The tracker is deliberately engine-agnostic — it consumes only
// (receiver, block, tick) deliveries plus an end-of-tick hook — so the
// SAME fold runs over a scale::Engine drive (stream_engine.cc) and over a
// pob/async event log (check/stream_check.cc), making the mirror's metric
// comparison field-for-field by construction rather than by reimplementation.

#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "pob/core/engine.h"
#include "pob/core/types.h"
#include "pob/scale/stream/calendar.h"

namespace pob::scale::stream {

/// Playback model parameters. A client "starts" playback the tick its
/// contiguous prefix first reaches `startup_blocks`; from then on block b
/// (b >= startup_blocks) is due `interval` ticks after block b-1 played.
/// A block arriving after its due tick stalls playback (rebuffering) until
/// it arrives.
struct StreamDemand {
  /// 0 = random demand (classic rarest/random pick). Nonzero W = sequential
  /// demand: the engine picks in-order within a sliding window of W blocks
  /// past the contiguous prefix (ScaleOptions::stream_window).
  std::uint32_t window = 0;

  /// Contiguous blocks buffered before playback starts (clamped to [1, k]).
  std::uint32_t startup_blocks = 4;

  /// Playback ticks consumed per block.
  Tick interval = 1;

  /// Hard per-block deadlines: block b must be present by
  /// startup + (b - startup_blocks + 1) * interval + deadline_slack.
  /// Each started client gets one coalescing timer that walks its blocks in
  /// order (<= k fires per client); only deadlines the run actually reached
  /// count toward deadline_checks.
  bool deadlines = false;
  Tick deadline_slack = 2;
};

/// Folds deliveries into per-client streaming metrics. Owns its own packed
/// possession bitset (it cannot peek at engine internals — the async mirror
/// has no engine), a per-client contiguous-prefix cursor, the playback
/// chain, and a CalendarQueue of deadline timers.
///
/// Call discipline: for each tick t in increasing order, feed every delivery
/// of tick t via on_delivery(), then call end_tick(t) once; finally call
/// finalize() exactly once. All methods are serial — metric folding is O(k)
/// total per client and never worth parallelising.
class DemandTracker {
 public:
  /// `arrival[c]` is client c's arrival tick (0 = present from the start);
  /// pass an empty span when every node is present from tick 0.
  DemandTracker(const StreamDemand& demand, std::uint32_t num_nodes,
                std::uint32_t num_blocks, std::span<const Tick> arrival);

  void on_delivery(NodeId to, BlockId block, Tick t);

  /// Fires deadline timers due at tick t. Must be called with strictly
  /// increasing t after all of tick t's deliveries.
  void end_tick(Tick t);

  /// Writes startup_latency (NaN for never-started clients — the censored
  /// convention), rebuffer_ticks, deadline counters, never_started and
  /// rebuffered_clients into `result`. `last_tick` is the final simulated
  /// tick: a started, incomplete client whose next block was due before
  /// last_tick accrues the tail stall (last_tick - due).
  void finalize(Tick last_tick, RunResult& result);

  std::uint32_t prefix(NodeId node) const { return next_block_[node]; }
  bool started(NodeId node) const { return start_[node] != kNever; }

  std::uint64_t memory_bytes() const;

 private:
  static constexpr Tick kNever = std::numeric_limits<Tick>::max();

  void begin_playback(NodeId c, Tick t);
  void consume_prefix(NodeId c, Tick t);
  void credit_remaining_deadlines(NodeId c);

  StreamDemand demand_;
  std::uint32_t n_;
  std::uint32_t k_;
  std::uint32_t startup_;  // demand_.startup_blocks clamped to [1, k]
  std::size_t stride_;     // words per possession row

  std::vector<std::uint64_t> have_;     // n_ * stride_ packed possession bits
  std::vector<std::uint32_t> next_block_;  // contiguous prefix length
  std::vector<Tick> arrival_;
  std::vector<Tick> start_;             // playback start tick, kNever = not yet
  std::vector<std::uint32_t> next_play_;   // next block the playhead consumes
  std::vector<Tick> next_due_;          // tick next_play_ is needed by
  std::vector<Count> rebuffer_;
  std::vector<BlockId> dl_block_;       // next unevaluated deadline, kNoBlock = done
  CalendarQueue deadlines_;

  Count deadline_misses_ = 0;
  Count deadline_checks_ = 0;
};

}  // namespace pob::scale::stream
