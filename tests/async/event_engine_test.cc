// Asynchronous (event-driven) engine and policies: §2.3.4's "dealing with
// asynchrony". With uniform rates of 1 block/time-unit, async completion
// times should land near their synchronous counterparts.

#include "pob/async/event_engine.h"

#include <gtest/gtest.h>

#include <cmath>

#include "pob/analysis/bounds.h"
#include "pob/async/policies.h"
#include "pob/overlay/builders.h"

namespace pob {
namespace {

AsyncConfig basic(std::uint32_t n, std::uint32_t k) {
  AsyncConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  return cfg;
}

TEST(AsyncEngine, SwarmCompletesNearSynchronousTime) {
  const std::uint32_t n = 64, k = 32;
  AsyncSwarmPolicy policy(std::make_shared<CompleteOverlay>(n), BlockPolicy::kRandom,
                          kUnlimited, Rng(1));
  const AsyncResult r = run_async(basic(n, k), policy);
  ASSERT_TRUE(r.completed);
  EXPECT_GE(r.completion_time, static_cast<double>(k));  // k uploads of 1 time unit
  EXPECT_LE(r.completion_time, 3.0 * cooperative_lower_bound(n, k));
  EXPECT_LE(r.mean_completion_time, r.completion_time);
  EXPECT_GE(r.total_transfers, static_cast<std::uint64_t>(n - 1) * k);
}

TEST(AsyncEngine, HypercubeRoundRobinCompletes) {
  for (const std::uint32_t n : {8u, 16u, 32u}) {
    const std::uint32_t k = 16;
    AsyncHypercubePolicy policy(n);
    const AsyncResult r = run_async(basic(n, k), policy);
    ASSERT_TRUE(r.completed) << "n=" << n;
    // Round-robin at uniform rates tracks the synchronous optimum loosely.
    EXPECT_LE(r.completion_time, 2.0 * cooperative_lower_bound(n, k) + 4.0) << n;
  }
}

TEST(AsyncEngine, HypercubeRejectsNonPowerOfTwo) {
  EXPECT_THROW(AsyncHypercubePolicy(12), std::invalid_argument);
}

TEST(AsyncEngine, HeterogeneousRatesSlowerNodesDominate) {
  const std::uint32_t n = 32, k = 16;
  AsyncConfig slow = basic(n, k);
  slow.upload_rate.assign(n, 1.0);
  for (NodeId u = 0; u < n; u += 2) slow.upload_rate[u] = 0.5;  // half the fleet at half rate
  AsyncSwarmPolicy p1(std::make_shared<CompleteOverlay>(n), BlockPolicy::kRandom,
                      kUnlimited, Rng(3));
  const AsyncResult r_slow = run_async(slow, p1);
  AsyncSwarmPolicy p2(std::make_shared<CompleteOverlay>(n), BlockPolicy::kRandom,
                      kUnlimited, Rng(3));
  const AsyncResult r_fast = run_async(basic(n, k), p2);
  ASSERT_TRUE(r_slow.completed);
  ASSERT_TRUE(r_fast.completed);
  EXPECT_GT(r_slow.completion_time, r_fast.completion_time);
}

TEST(AsyncEngine, JitteredRatesStayNearUniform) {
  // §2.3.4: "different nodes may have slightly differing bandwidths" — small
  // jitter should not blow up completion time.
  const std::uint32_t n = 64, k = 32;
  Rng rng(5);
  AsyncConfig jitter = basic(n, k);
  jitter.upload_rate.resize(n);
  for (auto& r : jitter.upload_rate) r = 0.9 + 0.2 * rng.uniform();
  AsyncSwarmPolicy policy(std::make_shared<CompleteOverlay>(n), BlockPolicy::kRandom,
                          kUnlimited, Rng(7));
  const AsyncResult r = run_async(jitter, policy);
  ASSERT_TRUE(r.completed);
  EXPECT_LE(r.completion_time, 4.0 * cooperative_lower_bound(n, k));
}

TEST(AsyncEngine, DownloadPortsAreRespected) {
  const std::uint32_t n = 16, k = 8;
  AsyncConfig cfg = basic(n, k);
  cfg.download_ports = 1;
  AsyncSwarmPolicy policy(std::make_shared<CompleteOverlay>(n), BlockPolicy::kRandom,
                          1, Rng(9));
  const AsyncResult r = run_async(cfg, policy);
  ASSERT_TRUE(r.completed);
}

TEST(AsyncEngine, RarestFirstPolicyCompletes) {
  const std::uint32_t n = 32, k = 16;
  AsyncSwarmPolicy policy(std::make_shared<CompleteOverlay>(n),
                          BlockPolicy::kRarestFirst, kUnlimited, Rng(11));
  const AsyncResult r = run_async(basic(n, k), policy);
  ASSERT_TRUE(r.completed);
}

TEST(AsyncEngine, SparseOverlayCompletes) {
  Rng grng(13);
  auto ov = std::make_shared<GraphOverlay>(make_random_regular(48, 6, grng));
  AsyncSwarmPolicy policy(ov, BlockPolicy::kRandom, kUnlimited, Rng(15));
  const AsyncResult r = run_async(basic(48, 24), policy);
  ASSERT_TRUE(r.completed);
}

TEST(AsyncTitForTat, CompletesAndPaysThePenalty) {
  const std::uint32_t n = 96, k = 64;
  AsyncTitForTatPolicy tft(std::make_shared<CompleteOverlay>(n), 3, 1, 10.0,
                           BlockPolicy::kRarestFirst, kUnlimited, Rng(21));
  const AsyncResult r_tft = run_async(basic(n, k), tft);
  ASSERT_TRUE(r_tft.completed);

  AsyncSwarmPolicy swarm(std::make_shared<CompleteOverlay>(n), BlockPolicy::kRandom,
                         kUnlimited, Rng(21));
  const AsyncResult r_swarm = run_async(basic(n, k), swarm);
  ASSERT_TRUE(r_swarm.completed);
  // The §4 claim, in the asynchronous setting: unchoke-set lock-in costs
  // throughput relative to per-decision random matching.
  EXPECT_GT(r_tft.completion_time, r_swarm.completion_time);
}

TEST(AsyncTitForTat, RejectsBadOptions) {
  auto ov = std::make_shared<CompleteOverlay>(8);
  EXPECT_THROW(
      AsyncTitForTatPolicy(nullptr, 1, 1, 5.0, BlockPolicy::kRandom, kUnlimited, Rng(1)),
      std::invalid_argument);
  EXPECT_THROW(
      AsyncTitForTatPolicy(ov, 0, 0, 5.0, BlockPolicy::kRandom, kUnlimited, Rng(1)),
      std::invalid_argument);
  EXPECT_THROW(
      AsyncTitForTatPolicy(ov, 1, 1, 0.0, BlockPolicy::kRandom, kUnlimited, Rng(1)),
      std::invalid_argument);
}

TEST(AsyncTitForTat, WorksOnSparseOverlay) {
  Rng grng(23);
  auto ov = std::make_shared<GraphOverlay>(make_random_regular(64, 10, grng));
  AsyncTitForTatPolicy tft(ov, 3, 1, 8.0, BlockPolicy::kRarestFirst, kUnlimited,
                           Rng(25));
  AsyncConfig cfg = basic(64, 32);
  cfg.max_time = 4000;
  const AsyncResult r = run_async(cfg, tft);
  EXPECT_TRUE(r.completed);
}

TEST(AsyncEngine, ValidatesConfig) {
  AsyncSwarmPolicy policy(std::make_shared<CompleteOverlay>(4), BlockPolicy::kRandom,
                          kUnlimited, Rng(1));
  EXPECT_THROW(run_async(basic(1, 4), policy), std::invalid_argument);
  EXPECT_THROW(run_async(basic(4, 0), policy), std::invalid_argument);
  AsyncConfig bad_rate = basic(4, 2);
  bad_rate.upload_rate = {1.0, 0.0, 1.0, 1.0};
  EXPECT_THROW(run_async(bad_rate, policy), std::invalid_argument);
  AsyncConfig bad_size = basic(4, 2);
  bad_size.upload_rate = {1.0, 1.0};
  EXPECT_THROW(run_async(bad_size, policy), std::invalid_argument);
}

TEST(AsyncEngine, TimeCapCensorsRuns) {
  AsyncConfig cfg = basic(32, 64);
  cfg.max_time = 1.5;  // far too little
  AsyncSwarmPolicy policy(std::make_shared<CompleteOverlay>(32), BlockPolicy::kRandom,
                          kUnlimited, Rng(17));
  const AsyncResult r = run_async(cfg, policy);
  EXPECT_FALSE(r.completed);
  // Censored runs are distinguishable from "finished at t=0": the run
  // records how far it got and who was cut off.
  EXPECT_GT(r.last_event_time, 0.0);
  EXPECT_LE(r.last_event_time, cfg.max_time);
  EXPECT_EQ(r.unfinished_clients, 31u);
  for (const double t : r.client_completion) {
    EXPECT_TRUE(std::isnan(t));  // nobody can finish 64 blocks in 1.5 units
  }
}

// Stalls forever: never uploads, but keeps requesting a wakeup timer, so
// simulated time advances until the cap — the regression shape where a
// policy drives itself into timeout instead of going quiet.
class StallingPolicy final : public AsyncPolicy {
 public:
  Transfer next_upload(NodeId, double, const AsyncView&) override {
    return {kNoNode, kNoNode, kNoBlock};
  }
  double retry_after(NodeId, double) override { return 1.0; }
};

TEST(AsyncEngine, PolicyDrivenTimeoutMarksUnfinishedClients) {
  AsyncConfig cfg = basic(4, 2);
  cfg.max_time = 25.0;
  StallingPolicy policy;
  const AsyncResult r = run_async(cfg, policy);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.unfinished_clients, 3u);
  // The engine ran its wakeup timers all the way to the cap.
  EXPECT_GE(r.last_event_time, cfg.max_time - 1.0);
  EXPECT_LE(r.last_event_time, cfg.max_time);
  EXPECT_EQ(r.total_transfers, 0u);
  ASSERT_EQ(r.client_completion.size(), 3u);
  for (const double t : r.client_completion) EXPECT_TRUE(std::isnan(t));
  // A censored run reports no completion statistics.
  EXPECT_EQ(r.completion_time, 0.0);
  EXPECT_EQ(r.mean_completion_time, 0.0);
}

TEST(AsyncEngine, CompletedRunsHaveNoNaNsAndMatchLastEvent) {
  const std::uint32_t n = 16, k = 8;
  AsyncSwarmPolicy policy(std::make_shared<CompleteOverlay>(n), BlockPolicy::kRandom,
                          kUnlimited, Rng(19));
  const AsyncResult r = run_async(basic(n, k), policy);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.unfinished_clients, 0u);
  for (const double t : r.client_completion) EXPECT_FALSE(std::isnan(t));
  EXPECT_DOUBLE_EQ(r.completion_time, r.last_event_time);
}

}  // namespace
}  // namespace pob
