// The mega-swarm engine: a structure-of-arrays reimplementation of the
// randomized cooperative protocol (§2.4) and its credit-limited barter
// variant (§3.2) designed for swarms of 10^6 nodes and beyond.
//
// Where core::Engine is general (any Scheduler, any Mechanism, machine-
// checked validation of every tick), scale::Engine fuses one protocol
// family into the engine itself and trades generality for density:
//
//   * possession is one contiguous arena of packed uint64 bitset rows
//     (n * ceil(k/64) words), not n separate BlockSet allocations;
//   * neighbor adjacency is CSR (scale::Topology), not a virtual Overlay;
//   * each tick runs in three phases — INTENT GENERATION sharded by sender
//     range, a MERGE sharded by receiver range, and an APPLY sharded by
//     receiver (state commit) and sender (upload accounting) — all three on
//     the pob/exp ThreadPool. The transfer stream and the final RunResult
//     are bit-identical at any --jobs value: intents are a pure function of
//     (seed, tick, node) via trial_seed-derived per-node RNG streams, every
//     merge constraint is per-receiver (so receiver shards decide
//     independently, each walking its receivers' intents in canonical node
//     order), and the accepted stream is reconstructed from per-intent
//     accept flags in the exact order the old serial merge emitted. Shard
//     counts are pure functions of n, never of the worker count.
//
// The engine emits only legal transfers by construction; it is NOT trusted
// on its own. scale::MirrorScheduler replays the exact same plan/apply
// semantics through core::Engine and the pob/check reference oracle, and
// the scenario fuzzer cross-checks all three on overlapping n (see
// pob/check/scenario.h, EngineKind::kScale).

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "pob/core/engine.h"
#include "pob/core/rng.h"
#include "pob/core/types.h"
#include "pob/exp/parallel.h"
#include "pob/mech/barter.h"
#include "pob/rand/randomized.h"
#include "pob/scale/topology.h"

namespace pob::scale {

struct ScaleOptions {
  /// Block selection within u \ v: uniform random or globally rarest first
  /// (§2.4 / §3.2.4's "perfect statistics").
  BlockPolicy policy = BlockPolicy::kRandom;

  /// Neighbor probes per upload slot before the node gives up for the tick.
  /// The practical handshake protocol: no exhaustive fallback scan — at
  /// n = 10^6 an O(degree) scan per idle node would dominate the tick.
  std::uint32_t max_probes = 16;

  /// 0 = cooperative (no constraint); >= 1 enables the §3.2 credit-limited
  /// barter predicate: client u uploads to client v only while the pairwise
  /// net (pre-tick ledger) stays below the limit. The emitted stream always
  /// satisfies CreditLimited::check_tick.
  std::uint32_t credit_limit = 0;

  /// Nodes per intent shard in the parallel generation phase. Shard count
  /// is a pure function of n (never of the job count), so chunk assignment
  /// cannot leak into results.
  std::uint32_t shard_nodes = 4096;

  /// Accumulate per-phase wall-clock (generate / merge / apply) across
  /// ticks, readable via phase_timings(). Off by default: the two clock
  /// reads per phase are cheap but pure overhead for fuzzing and tests.
  bool collect_phase_timings = false;
};

/// Wall-clock seconds accumulated per tick phase (see
/// ScaleOptions::collect_phase_timings); all zero when collection is off.
struct PhaseTimings {
  double generate_seconds = 0.0;
  double merge_seconds = 0.0;
  double apply_seconds = 0.0;
};

class Engine {
 public:
  /// `config` uses the same EngineConfig as core::Engine; record_trace,
  /// departures, depart_on_complete, heterogeneous capacities, max_ticks
  /// and stall detection all behave identically. `topology->num_nodes()`
  /// must equal config.num_nodes. `seed` plays the role a scheduler Rng
  /// plays for core runs: the full run is a pure function of
  /// (config, topology, options, seed).
  Engine(const EngineConfig& config, std::shared_ptr<const Topology> topology,
         ScaleOptions options, std::uint64_t seed);

  /// Runs to completion / tick cap / stall on `jobs` workers (0 = all
  /// cores, 1 = serial) and returns a RunResult with the exact same shape
  /// and semantics as core::Engine's — including dropped_transfers (always
  /// 0: the planner reads live state and never names a departed node) and
  /// active_slots_per_tick. Consumes the engine state; call once.
  RunResult run(unsigned jobs = 1);

  // --- Lockstep API ---------------------------------------------------
  // MirrorScheduler (and tests) drive the engine one tick at a time so the
  // identical transfer stream can be validated by core::Engine and the
  // reference oracle. plan() runs phases 1+2 against the current state;
  // apply() commits an accepted stream; deactivate() injects departures
  // (run() handles config.departures itself — lockstep callers own churn).

  /// Appends this tick's merged transfer stream to `out`. Runs the sharded
  /// phases on the calling thread; produces exactly what run() would commit
  /// on this tick at any job count.
  void plan(Tick tick, std::vector<Transfer>& out);

  /// Commits a planned stream: possession bits, replica counts, completion
  /// ticks, per-node upload totals, and the credit ledger. Serial; run()
  /// uses the receiver/sender-sharded commit instead, which leaves the
  /// engine in the identical state.
  void apply(Tick tick, std::span<const Transfer> accepted);

  /// Removes a node (idempotent; the server cannot depart): its capacity
  /// leaves the active upload slots, its replicas stop counting, and it no
  /// longer needs to complete.
  void deactivate(NodeId node);

  bool is_active(NodeId node) const { return active_[node] != 0; }
  bool is_complete(NodeId node) const { return count_[node] >= k_; }
  bool all_complete() const { return num_incomplete_ == 0; }
  bool has(NodeId node, BlockId block) const {
    return (row(node)[block >> 6] >> (block & 63)) & 1u;
  }

  const EngineConfig& config() const { return cfg_; }
  const Topology& topology() const { return *topo_; }
  const ScaleOptions& options() const { return opt_; }

  /// Per-phase wall-clock accumulated so far; zeros unless
  /// options().collect_phase_timings.
  PhaseTimings phase_timings() const { return timings_; }

  /// Arena + index + tick-scratch memory actually allocated, for bench
  /// reporting: possession arena, per-node arrays, topology CSR, the
  /// per-shard intent vectors and merge/apply scratch (buckets, accept
  /// flags, admission tables, frequency scratch), and the credit ledger.
  std::uint64_t state_bytes() const;

 private:
  // A (receiver, block) admission table: open-addressed, epoch-stamped so a
  // tick reset is O(1) and a million inserts touch no allocator. One table
  // per receiver shard; a receiver's deliveries land in exactly one table.
  class PairTable {
   public:
    void begin_tick(std::size_t expected);
    bool insert(std::uint64_t key);  ///< false if already present this tick

    std::uint64_t memory_bytes() const {
      return keys_.capacity() * sizeof(std::uint64_t) +
             epochs_.capacity() * sizeof(std::uint32_t);
    }

   private:
    std::vector<std::uint64_t> keys_;
    std::vector<std::uint32_t> epochs_;
    std::uint64_t mask_ = 0;
    std::uint32_t epoch_ = 0;
  };

  // One intent, tagged with its global position in the canonical
  // (sender-node-ordered) intent stream so accept flags and the emitted
  // stream can be reconstructed in that order after receiver-sharded
  // admission.
  struct MergeItem {
    Transfer tr;
    std::uint32_t idx;
  };

  // Per-shard scratch for the fused usefulness-scan / block-pick: one pass
  // over su & ~sv records the diff words and their popcounts, and the
  // selection (random rank-select or rarest-first walk) reuses them instead
  // of re-walking the possession rows.
  struct DiffScan {
    std::vector<std::uint64_t> words;  // su[w] & ~sv[w]
    std::vector<std::uint32_t> pc;     // popcount per diff word
    std::uint32_t total = 0;           // sum of pc
  };

  std::uint64_t* row(NodeId node) {
    return bits_.data() + static_cast<std::size_t>(node) * stride_;
  }
  const std::uint64_t* row(NodeId node) const {
    return bits_.data() + static_cast<std::size_t>(node) * stride_;
  }

  std::uint32_t recv_shard_of(NodeId v) const { return v / recv_width_; }

  /// Fills `scan` with the word-wise diff su \ sv; returns scan.total != 0.
  bool scan_diff(const std::uint64_t* su, const std::uint64_t* sv,
                 DiffScan& scan) const;
  /// Picks a block from a non-empty DiffScan; consumes the identical RNG
  /// draws (one below(total), or the rarest-first reservoir sequence) as
  /// the historical two-pass pick_block.
  BlockId pick_from_scan(const DiffScan& scan, Rng& rng) const;

  void generate_node(std::uint64_t tick_base, NodeId u, std::vector<Transfer>& out,
                     DiffScan& scan);
  void plan_phases(Tick tick, std::vector<Transfer>& out, ThreadPool* pool);
  /// Commits the stream the immediately preceding plan_phases() call
  /// produced, reusing its receiver buckets and accept flags: possession /
  /// counts / completion sharded by receiver, upload totals sharded by
  /// sender (the accepted stream is non-decreasing in `from`), frequency
  /// deltas reduced from per-shard scratch in fixed shard order, ledger
  /// commit serial. Leaves the engine in the exact state apply() would.
  void apply_merged(Tick tick, std::span<const Transfer> accepted, ThreadPool* pool);

  EngineConfig cfg_;
  std::shared_ptr<const Topology> topo_;
  ScaleOptions opt_;
  std::uint64_t seed_ = 0;

  std::uint32_t n_ = 0;
  std::uint32_t k_ = 0;
  std::uint32_t stride_ = 0;  // words per possession row

  // Structure-of-arrays swarm state.
  std::vector<std::uint64_t> bits_;       // n * stride possession arena
  std::vector<std::uint32_t> count_;      // blocks held per node
  std::vector<Tick> completion_;          // completion tick per node (0 = not)
  std::vector<std::uint8_t> active_;      // 0 once departed
  std::vector<std::uint32_t> freq_;       // per-block replica count (active nodes)
  std::vector<std::uint32_t> up_caps_;    // resolved per-node capacities
  std::vector<std::uint32_t> down_caps_;
  std::vector<Count> uploads_per_node_;
  std::uint32_t num_incomplete_ = 0;
  std::uint32_t num_departed_ = 0;
  std::uint64_t active_slots_ = 0;
  CreditLedger ledger_;  // §3.2 pairwise net-transfer ledger (credit mode)

  // Receiver shards: contiguous node-id ranges of width recv_width_. Every
  // merge/apply constraint that crosses sender shards is per-receiver, so
  // shard r exclusively owns down_used_/down_stamp_/count_/completion_/
  // possession rows for its range. Both values are pure functions of n.
  std::uint32_t recv_shards_ = 1;
  std::uint32_t recv_width_ = 1;

  // Tick scratch (reused, never shrunk).
  std::vector<std::vector<Transfer>> shard_intents_;
  std::vector<DiffScan> gen_scratch_;       // one per intent shard
  std::vector<std::uint32_t> down_used_;    // stamped by down_stamp_
  std::vector<Tick> down_stamp_;
  std::vector<PairTable> delivered_;        // one per receiver shard
  std::vector<std::size_t> intent_offsets_; // canonical stream offsets, S+1
  std::vector<std::uint32_t> scatter_pos_;  // S x R counts, then cursors
  std::vector<std::uint32_t> bucket_offsets_;  // R+1 into bucket_
  std::vector<MergeItem> bucket_;           // intents grouped by recv shard
  std::vector<std::uint8_t> accept_;        // admission flag per intent idx
  std::vector<std::uint32_t> emit_offsets_; // accepted-stream offsets, S+1
  ShardScratch<std::uint32_t> freq_scratch_;   // R x k frequency deltas
  std::vector<std::vector<NodeId>> leaving_shards_;  // per recv shard
  std::vector<std::uint32_t> completions_scratch_;   // per recv shard
  std::vector<NodeId> leaving_;  // depart_on_complete queue (run() only)
  std::vector<Transfer> accepted_;

  PhaseTimings timings_;
  bool consumed_ = false;  // run() called or lockstep driving began
};

}  // namespace pob::scale
