#include <stdexcept>

#include "pob/overlay/builders.h"

namespace pob {

Graph make_kary_tree(std::uint32_t n, std::uint32_t arity) {
  if (n < 2) throw std::invalid_argument("make_kary_tree: need n >= 2");
  if (arity < 1) throw std::invalid_argument("make_kary_tree: need arity >= 1");
  Graph g(n);
  for (NodeId child = 1; child < n; ++child) {
    const NodeId parent = (child - 1) / arity;
    g.add_edge(parent, child);
  }
  g.finalize();
  return g;
}

}  // namespace pob
