#include "pob/core/swarm_state.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace pob {
namespace {

TEST(SwarmState, InitialConditions) {
  const SwarmState s(5, 10);
  EXPECT_EQ(s.num_nodes(), 5u);
  EXPECT_EQ(s.num_clients(), 4u);
  EXPECT_EQ(s.num_blocks(), 10u);
  EXPECT_TRUE(s.is_complete(kServer));
  for (NodeId c = 1; c < 5; ++c) {
    EXPECT_FALSE(s.is_complete(c));
    EXPECT_TRUE(s.blocks_of(c).empty());
  }
  EXPECT_FALSE(s.all_complete());
  EXPECT_EQ(s.num_incomplete(), 4u);
  for (const std::uint32_t f : s.block_frequency()) EXPECT_EQ(f, 1u);
  EXPECT_EQ(s.total_blocks_held(), 10u);
}

TEST(SwarmState, RejectsDegenerateDimensions) {
  EXPECT_THROW(SwarmState(1, 5), std::invalid_argument);
  EXPECT_THROW(SwarmState(3, 0), std::invalid_argument);
}

TEST(SwarmState, AddBlockUpdatesEverything) {
  SwarmState s(3, 2);
  EXPECT_TRUE(s.add_block(1, 0, 4));
  EXPECT_FALSE(s.add_block(1, 0, 5));  // duplicate
  EXPECT_TRUE(s.has(1, 0));
  EXPECT_EQ(s.block_frequency()[0], 2u);
  EXPECT_EQ(s.total_blocks_held(), 3u);
  EXPECT_EQ(s.completion_tick(1), 0u);  // not complete yet

  EXPECT_TRUE(s.add_block(1, 1, 7));
  EXPECT_TRUE(s.is_complete(1));
  EXPECT_EQ(s.completion_tick(1), 7u);
  EXPECT_EQ(s.num_incomplete(), 1u);

  EXPECT_TRUE(s.add_block(2, 0, 8));
  EXPECT_TRUE(s.add_block(2, 1, 9));
  EXPECT_TRUE(s.all_complete());
  EXPECT_EQ(s.client_completion_ticks(), (std::vector<Tick>{7, 9}));
}

TEST(SwarmState, IncompleteListShrinksConsistently) {
  SwarmState s(6, 1);
  for (NodeId c = 1; c < 6; ++c) {
    const auto before = s.num_incomplete();
    s.add_block(c, 0, c);
    EXPECT_EQ(s.num_incomplete(), before - 1);
    const auto inc = s.incomplete_nodes();
    EXPECT_TRUE(std::none_of(inc.begin(), inc.end(),
                             [c](NodeId x) { return x == c; }));
  }
  EXPECT_TRUE(s.all_complete());
}

TEST(SwarmState, ServerNeverListedIncomplete) {
  SwarmState s(4, 3);
  const auto inc = s.incomplete_nodes();
  EXPECT_TRUE(std::none_of(inc.begin(), inc.end(),
                           [](NodeId x) { return x == kServer; }));
}

}  // namespace
}  // namespace pob
