// E10 — the §2.4.3 amortization story, measured.
//
// The paper's intuition argued that after the opening, ~1/6 of the nodes get
// stranded holding only fully-replicated blocks, predicting at most 5/6
// utilization every tick and hence a >=20% gap from optimal. The measured
// runs refute the conclusion: "bad" ticks exist but are compensated by long
// stretches of 100% utilization, and the overall completion time lands
// within a few percent of optimal. This binary prints the per-run
// utilization summary plus a tick-by-tick strip around the worst tick.

#include <algorithm>
#include <iostream>
#include <memory>

#include "bench_util.h"
#include "pob/analysis/bounds.h"
#include "pob/core/metrics.h"

namespace pob::bench {
namespace {

int main_impl(int argc, char** argv) {
  const Args args(argc, argv);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 512));
  const auto k = static_cast<std::uint32_t>(args.get_int("k", 512));
  const auto runs = static_cast<std::uint32_t>(args.get_int("runs", 3));

  Table table({"run", "T", "optimal", "mean-util", "full-ticks", "bad-ticks(<5/6)",
               "worst-tick-util"});
  for (std::uint32_t i = 0; i < runs; ++i) {
    EngineConfig cfg;
    cfg.num_nodes = n;
    cfg.num_blocks = k;
    RandomizedScheduler sched(std::make_shared<CompleteOverlay>(n), {},
                              Rng(0xF16'A000 + i));
    const RunResult r = run(cfg, sched);
    if (!r.completed) throw std::logic_error("randomized run did not complete");
    const UtilizationSummary u = summarize_utilization(r, cfg);
    table.add_row({std::to_string(i), std::to_string(r.completion_tick),
                   std::to_string(cooperative_lower_bound(n, k)), fmt(u.mean, 4),
                   std::to_string(u.full_ticks), std::to_string(u.bad_ticks),
                   fmt(u.min, 3)});

    if (i == 0) {
      // Strip around the worst mid-run tick (after the opening ramp has
      // saturated): shows a bad tick followed by recovery at ~100%.
      Tick steady = 1;
      while (steady < r.uploads_per_tick.size() && r.utilization(steady, cfg) < 0.95) {
        ++steady;
      }
      Tick worst = steady;
      double worst_util = 1.0;
      for (Tick t = steady; t + 5 < r.uploads_per_tick.size(); ++t) {
        const double util = r.utilization(t, cfg);
        if (util < worst_util) {
          worst_util = util;
          worst = t;
        }
      }
      std::cout << "utilization strip around the worst mid-run tick (run 0):\n  ";
      const Tick from = worst > 4 ? worst - 4 : 1;
      for (Tick t = from; t < from + 12 && t <= r.uploads_per_tick.size(); ++t) {
        std::cout << "t" << t << "=" << fmt(r.utilization(t, cfg), 2) << "  ";
      }
      std::cout << "\n\n";
    }
  }
  std::cout << "# E10: amortization in the randomized cooperative algorithm (n = "
            << n << ", k = " << k << ", complete graph)\n";
  std::cout << "# naive 5/6-utilization intuition predicts T >= "
            << fmt(1.2 * static_cast<double>(cooperative_lower_bound(n, k)), 0)
            << "; measurements refute it\n";
  emit(args, table);
  return 0;
}

}  // namespace
}  // namespace pob::bench

int main(int argc, char** argv) { return pob::bench::main_impl(argc, argv); }
