#include "pob/scale/sched_randomized.h"

namespace pob::scale {

RandomizedScheduler::RandomizedScheduler(Engine& engine, std::uint32_t num_shards)
    : engine_(engine) {
  scratch_.resize(num_shards);
  for (Engine::DiffScan& scan : scratch_) {
    scan.widx.resize(engine_.stride_);
    scan.words.resize(engine_.stride_);
    scan.pc.resize(engine_.stride_);
  }
  cache_.resize(num_shards);
  for (Engine::ProbeCache& cache : cache_) cache.configure(engine_.opt_.shard_nodes);
}

void RandomizedScheduler::generate(Tick tick, std::uint32_t shard, NodeId first,
                                   NodeId last, std::vector<Transfer>& out) {
  // Per-node streams derive from trial_seed(seed, tick) exactly as before
  // the scheduler split; recomputing the tick base per shard yields the same
  // value every shard, so the streams — and the digests — are unchanged.
  const std::uint64_t tick_base = trial_seed(engine_.seed_, tick);
  engine_.generate_range(tick_base, first, last, out, scratch_[shard], cache_[shard]);
}

std::uint64_t RandomizedScheduler::memory_bytes() const {
  std::uint64_t bytes = 0;
  for (const Engine::DiffScan& scan : scratch_) bytes += scan.memory_bytes();
  for (const Engine::ProbeCache& cache : cache_) bytes += cache.memory_bytes();
  return bytes;
}

}  // namespace pob::scale
