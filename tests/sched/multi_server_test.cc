#include "pob/sched/multi_server.h"

#include <gtest/gtest.h>

#include "pob/analysis/bounds.h"
#include "pob/core/engine.h"

namespace pob {
namespace {

RunResult run_multi(std::uint32_t n, std::uint32_t k, std::uint32_t m) {
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  cfg.server_upload_capacity = m;  // §2.3.4: server bandwidth m*u
  cfg.download_capacity = 1;
  MultiServerScheduler sched(n, k, m);
  return run(cfg, sched);
}

class MultiServerGrid
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> {};

TEST_P(MultiServerGrid, MatchesPerGroupOptimum) {
  const auto [n, k, m] = GetParam();
  const RunResult r = run_multi(n, k, m);
  ASSERT_TRUE(r.completed) << "n=" << n << " k=" << k << " m=" << m;
  EXPECT_EQ(r.completion_tick, multi_server_estimate(n, k, m))
      << "n=" << n << " k=" << k << " m=" << m;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MultiServerGrid,
    ::testing::Combine(::testing::Values(9u, 17u, 33u, 64u, 100u),
                       ::testing::Values(4u, 10u, 32u), ::testing::Values(1u, 2u, 4u)));

TEST(MultiServer, OneGroupEqualsPlainBinomialPipeline) {
  const RunResult r = run_multi(32, 10, 1);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.completion_tick, cooperative_lower_bound(32, 10));
}

TEST(MultiServer, MoreVirtualServersNeverSlower) {
  Tick prev = 0;
  for (const std::uint32_t m : {1u, 2u, 4u}) {
    const RunResult r = run_multi(65, 16, m);
    ASSERT_TRUE(r.completed);
    if (prev != 0) {
      EXPECT_LE(r.completion_tick, prev);
    }
    prev = r.completion_tick;
  }
}

TEST(MultiServer, RejectsBadGrouping) {
  EXPECT_THROW(MultiServerScheduler(3, 4, 0), std::invalid_argument);
  EXPECT_THROW(MultiServerScheduler(3, 4, 3), std::invalid_argument);
}

}  // namespace
}  // namespace pob
