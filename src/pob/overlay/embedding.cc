#include "pob/overlay/embedding.h"

#include <cmath>
#include <stdexcept>

namespace pob {
namespace {

/// Cost of all overlay edges incident to `vertex`: its intra-pair edge plus
/// every cross edge to its hypercube neighbors.
double incident_cost(const HypercubeMap& map, std::span<const Point> positions,
                     std::uint32_t vertex) {
  double total = 0.0;
  const auto& members = map.members[vertex];
  if (members[1] != kNoNode) {
    total += distance(positions[members[0]], positions[members[1]]);
  }
  for (std::uint32_t dim = 0; dim < map.dims; ++dim) {
    const std::uint32_t w = vertex ^ (1u << dim);
    for (const NodeId a : members) {
      if (a == kNoNode) continue;
      for (const NodeId b : map.members[w]) {
        if (b == kNoNode) continue;
        total += distance(positions[a], positions[b]);
      }
    }
  }
  return total;
}

double cross_cost(const HypercubeMap& map, std::span<const Point> positions,
                  std::uint32_t v, std::uint32_t w) {
  double total = 0.0;
  for (const NodeId a : map.members[v]) {
    if (a == kNoNode) continue;
    for (const NodeId b : map.members[w]) {
      if (b == kNoNode) continue;
      total += distance(positions[a], positions[b]);
    }
  }
  return total;
}

bool hypercube_adjacent(std::uint32_t v, std::uint32_t w) {
  const std::uint32_t x = v ^ w;
  return x != 0 && (x & (x - 1)) == 0;
}

/// Cost of the neighborhood a swap of members in vertices va, vb can touch.
double swap_neighborhood_cost(const HypercubeMap& map, std::span<const Point> positions,
                              std::uint32_t va, std::uint32_t vb) {
  if (va == vb) return incident_cost(map, positions, va);
  double total = incident_cost(map, positions, va) + incident_cost(map, positions, vb);
  if (hypercube_adjacent(va, vb)) total -= cross_cost(map, positions, va, vb);
  return total;
}

}  // namespace

double distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

double hypercube_embedding_cost(const HypercubeMap& map,
                                std::span<const Point> positions) {
  if (positions.size() < map.vertex_of.size()) {
    throw std::invalid_argument("embedding: positions do not cover all nodes");
  }
  double total = 0.0;
  for (std::uint32_t v = 0; v < map.num_vertices; ++v) {
    const auto& members = map.members[v];
    if (members[1] != kNoNode) {
      total += distance(positions[members[0]], positions[members[1]]);
    }
    for (std::uint32_t dim = 0; dim < map.dims; ++dim) {
      const std::uint32_t w = v ^ (1u << dim);
      if (w < v) continue;  // each cube edge once
      total += cross_cost(map, positions, v, w);
    }
  }
  return total;
}

EmbeddingResult optimize_hypercube_embedding(HypercubeMap map,
                                             std::span<const Point> positions, Rng& rng,
                                             std::uint32_t iterations) {
  const auto n = static_cast<std::uint32_t>(map.vertex_of.size());
  if (n < 3) {
    return {map, hypercube_embedding_cost(map, positions),
            hypercube_embedding_cost(map, positions), 0};
  }
  EmbeddingResult result;
  result.initial_cost = hypercube_embedding_cost(map, positions);

  // Member slot of a node inside its vertex.
  const auto slot_of = [&](NodeId node) -> std::uint32_t {
    return map.members[map.vertex_of[node]][0] == node ? 0u : 1u;
  };
  for (std::uint32_t it = 0; it < iterations; ++it) {
    // Two distinct clients (never the server).
    const NodeId a = 1 + rng.below(n - 1);
    const NodeId b = 1 + rng.below(n - 1);
    if (a == b) continue;
    const std::uint32_t va = map.vertex_of[a];
    const std::uint32_t vb = map.vertex_of[b];
    if (va == vb) continue;

    const double before = swap_neighborhood_cost(map, positions, va, vb);
    const std::uint32_t sa = slot_of(a);
    const std::uint32_t sb = slot_of(b);
    map.members[va][sa] = b;
    map.members[vb][sb] = a;
    map.vertex_of[a] = vb;
    map.vertex_of[b] = va;
    const double after = swap_neighborhood_cost(map, positions, va, vb);
    if (after < before) {
      ++result.accepted_swaps;
    } else {  // revert
      map.members[va][sa] = a;
      map.members[vb][sb] = b;
      map.vertex_of[a] = va;
      map.vertex_of[b] = vb;
    }
  }
  result.final_cost = hypercube_embedding_cost(map, positions);
  result.map = std::move(map);
  return result;
}

std::vector<Point> random_points(std::uint32_t count, Rng& rng) {
  std::vector<Point> pts(count);
  for (auto& p : pts) p = {rng.uniform(), rng.uniform()};
  return pts;
}

std::vector<Point> clustered_points(std::uint32_t count, std::uint32_t clusters,
                                    Rng& rng) {
  if (clusters == 0) throw std::invalid_argument("clustered_points: clusters >= 1");
  std::vector<Point> centers(clusters);
  for (auto& c : centers) c = {rng.uniform(), rng.uniform()};
  std::vector<Point> pts(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    // Random cluster membership: node id must carry no positional hint, or
    // the identity embedding would already be aligned with the clusters.
    const Point& c = centers[rng.below(clusters)];
    pts[i] = {c.x + 0.02 * (rng.uniform() - 0.5), c.y + 0.02 * (rng.uniform() - 0.5)};
  }
  return pts;
}

}  // namespace pob
