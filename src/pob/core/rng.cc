#include "pob/core/rng.h"

#include <cassert>

namespace pob {
namespace {

/// splitmix64: used to expand a 64-bit seed into xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint32_t Rng::below(std::uint32_t bound) {
  assert(bound > 0);
  // Lemire's multiply-shift with rejection for exact uniformity.
  std::uint64_t x = next() & 0xffffffffULL;
  std::uint64_t m = x * bound;
  auto low = static_cast<std::uint32_t>(m);
  if (low < bound) {
    const std::uint32_t threshold = (0u - bound) % bound;
    while (low < threshold) {
      x = next() & 0xffffffffULL;
      m = x * bound;
      low = static_cast<std::uint32_t>(m);
    }
  }
  return static_cast<std::uint32_t>(m >> 32);
}

std::uint32_t Rng::range(std::uint32_t lo, std::uint32_t hi) {
  assert(lo <= hi);
  return lo + below(hi - lo + 1);
}

double Rng::uniform() {
  // 53 random bits into [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::split(std::uint64_t stream) const {
  // Mix the parent state with the stream id through splitmix64; the parent
  // is untouched (method is const and copies state words by value).
  std::uint64_t s = state_[0] ^ rotl(state_[3], 13) ^ (stream * 0xd1342543de82ef95ULL);
  Rng child(splitmix64(s));
  return child;
}

}  // namespace pob
