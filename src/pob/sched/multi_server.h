// §2.3.4 "Higher Server Bandwidths": when the server has upload bandwidth
// m*u, the natural optimal strategy splits the clients into m equal groups
// and the server into m virtual servers, one per group, each running an
// independent binomial pipeline over the full file. Run it with
// EngineConfig::server_upload_capacity = m.

#pragma once

#include <memory>
#include <vector>

#include "pob/core/scheduler.h"
#include "pob/sched/binomial_pipeline.h"

namespace pob {

class MultiServerScheduler final : public Scheduler {
 public:
  /// Splits clients 1..n-1 into `num_virtual_servers` groups round-robin and
  /// builds one binomial pipeline per group over all k blocks.
  MultiServerScheduler(std::uint32_t num_nodes, std::uint32_t num_blocks,
                       std::uint32_t num_virtual_servers);

  std::string_view name() const override { return "multi-server-binomial"; }
  void plan_tick(Tick tick, const SwarmState& state, std::vector<Transfer>& out) override;

  std::uint32_t num_groups() const {
    return static_cast<std::uint32_t>(pipelines_.size());
  }

 private:
  std::vector<std::unique_ptr<BinomialPipelineScheduler>> pipelines_;
};

}  // namespace pob
