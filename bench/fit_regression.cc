// E4 — the §2.4.4 least-squares fit.
//
// "Using least-square estimates over a matrix of (n, k) data points, we
// estimate the expected completion time [is ~linear in k and log n],
// suggesting that the algorithm is [only a few percent] worse than the
// optimal for large values of k."
//
// We run the randomized cooperative algorithm over an (n, k) grid and fit
// T = a*k + b*log2(n) + c. Expect a ~ 1.0x (k coefficient within a few
// percent of 1) and a modest b.

#include <iostream>
#include <memory>

#include "bench_util.h"
#include "pob/analysis/bounds.h"
#include "pob/analysis/regression.h"
#include "pob/overlay/builders.h"

namespace pob::bench {
namespace {

int main_impl(int argc, char** argv) {
  const Args args(argc, argv);
  TrialRunner trials(args);
  const auto runs = static_cast<std::uint32_t>(args.get_int("runs", 3));
  std::vector<std::int64_t> ns = args.get_int_list("n", {16, 64, 256, 1024});
  std::vector<std::int64_t> ks = args.get_int_list("k", {64, 128, 256, 512, 1024});
  if (args.has("quick")) {
    ns = {16, 128};
    ks = {64, 256};
  }

  std::vector<RegressionPoint> points;
  Table table({"n", "k", "T-mean", "optimal"});
  for (const std::int64_t n64 : ns) {
    for (const std::int64_t k64 : ks) {
      const auto n = static_cast<std::uint32_t>(n64);
      const auto k = static_cast<std::uint32_t>(k64);
      EngineConfig cfg;
      cfg.num_nodes = n;
      cfg.num_blocks = k;
      const TrialStats stats = trials(runs, [&](std::uint32_t i) {
        return randomized_trial(cfg, std::make_shared<CompleteOverlay>(n), {},
                                trial_seed(0xF17'0000 + 1009ull * n + 31ull * k, i));
      });
      points.push_back({static_cast<double>(k),
                        static_cast<double>(ceil_log2(n)), stats.completion.mean});
      table.add_row({std::to_string(n), std::to_string(k), fmt(stats.completion.mean),
                     std::to_string(cooperative_lower_bound(n, k))});
    }
  }
  const RegressionFit fit = fit_two_predictor(points);
  std::cout << "# E4: least-squares fit of randomized cooperative completion time\n";
  emit(args, table);
  trials.report(std::cout);
  std::cout << "\nfit: T = " << fmt(fit.a, 4) << " * k + " << fmt(fit.b, 2)
            << " * log2(n) + " << fmt(fit.c, 2) << "   (R^2 = " << fmt(fit.r2, 4)
            << ")\n";
  std::cout << "paper: T ~= 1.0 * k + O(log n); k-coefficient within a few % of "
               "optimal for large k\n";
  return 0;
}

}  // namespace
}  // namespace pob::bench

int main(int argc, char** argv) { return pob::bench::main_impl(argc, argv); }
