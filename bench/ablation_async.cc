// E14a — §2.3.4 "dealing with asynchrony".
//
// Event-driven runs with heterogeneous upload rates: the async randomized
// swarm and the async hypercube round-robin, at 0% / 10% / 50% rate jitter,
// against the synchronous optimum. With zero jitter and unit rates, times
// should track the synchronous values closely; jitter degrades gracefully.

#include <iostream>
#include <memory>

#include "bench_util.h"
#include "pob/analysis/bounds.h"
#include "pob/async/policies.h"

namespace pob::bench {
namespace {

std::vector<double> jittered_rates(std::uint32_t n, double jitter, Rng& rng) {
  std::vector<double> rates(n);
  for (auto& r : rates) r = 1.0 - jitter / 2 + jitter * rng.uniform();
  return rates;
}

int main_impl(int argc, char** argv) {
  const Args args(argc, argv);
  TrialRunner trials(args);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 256));
  const auto k = static_cast<std::uint32_t>(args.get_int("k", 128));
  const auto runs = static_cast<std::uint32_t>(args.get_int("runs", 3));

  Table table({"policy", "rate-jitter", "time (mean +- 95% CI)", "sync-optimal"});
  const Tick optimal = cooperative_lower_bound(n, k);
  for (const double jitter : {0.0, 0.1, 0.5}) {
    for (const bool hypercube : {false, true}) {
      const TrialStats stats = trials(runs, [&](std::uint32_t i) {
        Rng rng(trial_seed(0xF16'E000 + static_cast<std::uint64_t>(jitter * 100), i));
        AsyncConfig cfg;
        cfg.num_nodes = n;
        cfg.num_blocks = k;
        cfg.upload_rate = jittered_rates(n, jitter, rng);
        AsyncResult r;
        if (hypercube) {
          AsyncHypercubePolicy policy(n);
          r = run_async(cfg, policy);
        } else {
          AsyncSwarmPolicy policy(std::make_shared<CompleteOverlay>(n),
                                  BlockPolicy::kRandom, kUnlimited, rng.split(9));
          r = run_async(cfg, policy);
        }
        TrialOutcome out;
        out.completed = r.completed;
        out.completion = r.completion_time;
        out.mean_completion = r.mean_completion_time;
        return out;
      });
      table.add_row({hypercube ? "async-hypercube" : "async-swarm",
                     fmt(jitter * 100, 0) + "%",
                     fmt_ci(stats.completion.mean, stats.completion.ci95),
                     std::to_string(optimal)});
    }
  }
  std::cout << "# E14a: asynchronous (event-driven) runs with heterogeneous rates "
               "(n = " << n << ", k = " << k << ")\n";
  emit(args, table);
  trials.report(std::cout);
  return 0;
}

}  // namespace
}  // namespace pob::bench

int main(int argc, char** argv) { return pob::bench::main_impl(argc, argv); }
