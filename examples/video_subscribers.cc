// Scenario: an ESPN-Motion-style service pushing a sports-highlights video
// to subscribers (§1), exploring what extra server bandwidth buys (§2.3.4's
// multi-server strategy) and when every subscriber finishes.
//
//   $ ./video_subscribers [--subs=500] [--mb=600] [--block-kb=512]

#include <iostream>

#include "pob/analysis/bounds.h"
#include "pob/core/engine.h"
#include "pob/core/metrics.h"
#include "pob/exp/cli.h"
#include "pob/exp/table.h"
#include "pob/sched/multi_server.h"

int main(int argc, char** argv) {
  const pob::Args args(argc, argv);
  const auto subs = static_cast<std::uint32_t>(args.get_int("subs", 500));
  const double mb = args.get_double("mb", 600.0);
  const double block_kb = args.get_double("block-kb", 512.0);

  const std::uint32_t n = subs + 1;
  const auto k = static_cast<std::uint32_t>(mb * 1024.0 / block_kb);

  std::cout << "video push: " << mb << " MB to " << subs << " subscribers, k = "
            << k << " blocks\n";
  std::cout << "server bandwidth scaled as m x client uplink; clients split into m\n"
               "groups, one virtual server each (the §2.3.4 optimal strategy)\n\n";

  pob::Table table({"m", "ticks", "per-group optimal", "first-finish", "last-finish",
                    "spread"});
  for (const std::uint32_t m : {1u, 2u, 4u, 8u, 16u}) {
    pob::EngineConfig cfg;
    cfg.num_nodes = n;
    cfg.num_blocks = k;
    cfg.server_upload_capacity = m;
    cfg.download_capacity = 1;
    pob::MultiServerScheduler sched(n, k, m);
    const pob::RunResult r = pob::run(cfg, sched);
    if (!r.completed) {
      std::cerr << "run failed to complete\n";
      return 1;
    }
    const pob::CompletionSpread spread = pob::completion_spread(r);
    table.add_row({std::to_string(m), std::to_string(r.completion_tick),
                   std::to_string(pob::multi_server_estimate(n, k, m)),
                   std::to_string(spread.first), std::to_string(spread.last),
                   std::to_string(spread.spread)});
  }
  table.print(std::cout);
  std::cout << "\nnote the diminishing returns: with k >> log2(n), the k-block serial\n"
               "injection dominates and extra server bandwidth shaves only the\n"
               "log-term — cooperation, not server capacity, is what scales.\n";
  return 0;
}
