#include "pob/check/fuzzer.h"

#include <algorithm>

#include "pob/exp/parallel.h"
#include "pob/exp/sweep.h"

namespace pob::check {
namespace {

constexpr std::uint32_t kMaxReportedFailures = 32;
constexpr std::uint32_t kMinimizeBudget = 400;  // scenario runs, not mutations

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

FuzzReport fuzz_many(std::uint64_t base_seed, std::uint32_t budget, unsigned jobs,
                     FaultKind fault, EngineFilter engines) {
  FuzzReport report;
  report.budget = budget;
  if (budget == 0) return report;

  // Index-addressed slots: each trial writes only its own entry, and all
  // aggregation below happens serially in index order, so the report is
  // bit-identical at any job count.
  std::vector<Scenario> scenarios(budget);
  std::vector<ScenarioOutcome> outcomes(budget);
  const auto trial = [&](std::uint32_t i) {
    Scenario sc = sample_scenario(base_seed, i);
    sc.fault = fault;
    if (engines != EngineFilter::kMixed) {
      sc.engine = engines == EngineFilter::kCoreOnly ? EngineKind::kCore
                                                     : EngineKind::kScale;
      if (engines == EngineFilter::kStreamOnly && !sc.stream) {
        // The sampler did not take the stream branch for this index, so its
        // stream fields are still defaults; derive them from the scenario
        // seed so a forced stream run sweeps the pattern space too.
        sc.arrival_pattern =
            static_cast<scale::stream::ArrivalPattern>(sc.seed % 4);
        sc.rate_class_count =
            (sc.seed >> 2) % 2 == 0 ? 0 : 2 + static_cast<std::uint32_t>((sc.seed >> 3) % 2);
        sc.rate_changes = static_cast<std::uint32_t>((sc.seed >> 5) % 9);
        sc.playback_window =
            (sc.seed >> 8) % 2 == 0 ? 0 : 1 + static_cast<std::uint32_t>((sc.seed >> 9) % 8);
        sc.startup_blocks = 1 + static_cast<std::uint32_t>((sc.seed >> 13) % 4);
        sc.playback_interval = 1 + static_cast<Tick>((sc.seed >> 15) % 2);
        sc.hard_deadlines = ((sc.seed >> 16) & 1) != 0;
      }
      sc.stream = engines == EngineFilter::kStreamOnly;
      if (sc.stream && sc.n > 512) sc.n = 4 + sc.n % 509;  // mirror-affordable
      sanitize(sc);  // the forced engine has its own legal space
    }
    scenarios[i] = sc;
    outcomes[i] = run_scenario(sc);
    TrialOutcome out;
    out.completed = outcomes[i].ok;
    out.completion = 1.0;
    out.mean_completion = 1.0;
    return out;
  };
  repeat_trials_parallel(budget, jobs, trial);

  std::uint64_t digest = 0xcbf29ce484222325ULL;
  for (std::uint32_t i = 0; i < budget; ++i) {
    digest = fnv1a(digest, scenarios[i].describe());
    digest = fnv1a(digest, outcomes[i].ok ? "ok" : outcomes[i].diagnosis);
    if (!outcomes[i].ok) {
      ++report.failed;
      if (report.failures.size() < kMaxReportedFailures) {
        report.failures.push_back({i, scenarios[i], outcomes[i].diagnosis});
      }
    }
  }
  report.stream_digest = digest;
  return report;
}

MinimizedScenario minimize(const Scenario& failing) {
  MinimizedScenario m;
  m.scenario = failing;
  m.diagnosis = run_scenario(failing).diagnosis;
  ++m.steps_tried;

  // Accepts the candidate iff (after re-sanitizing) it is a genuinely new
  // scenario that still fails.
  const auto still_fails = [&](Scenario cand) {
    sanitize(cand);
    if (cand.describe() == m.scenario.describe()) return false;
    if (m.steps_tried >= kMinimizeBudget) return false;
    ++m.steps_tried;
    const ScenarioOutcome out = run_scenario(cand);
    if (out.ok) return false;
    m.scenario = cand;
    m.diagnosis = out.diagnosis;
    return true;
  };

  bool progress = true;
  while (progress && m.steps_tried < kMinimizeBudget) {
    progress = false;

    // Structural simplifications first: each one that sticks removes a whole
    // dimension from the search the numeric shrinks below have to do.
    {
      Scenario c = m.scenario;
      c.departures.clear();
      c.depart_on_complete = false;
      c.drop_on_churn = false;
      if (still_fails(c)) progress = true;
    }
    while (!m.scenario.departures.empty()) {
      Scenario c = m.scenario;
      c.departures.pop_back();
      if (!still_fails(c)) break;
      progress = true;
    }
    {
      Scenario c = m.scenario;
      c.upload_caps.clear();
      c.download_caps.clear();
      if (still_fails(c)) progress = true;
    }
    // Stream axis: strip one feature at a time (deadlines, sequential
    // window, rate churn, classes, the arrival pattern) before trying to
    // leave the stream layer entirely.
    if (m.scenario.stream) {
      for (const auto mutate : {
               +[](Scenario& c) { c.hard_deadlines = false; },
               +[](Scenario& c) { c.playback_window = 0; },
               +[](Scenario& c) { c.rate_changes = 0; },
               +[](Scenario& c) { c.rate_class_count = 0; },
               +[](Scenario& c) {
                 c.arrival_pattern = scale::stream::ArrivalPattern::kAllAtStart;
               },
               +[](Scenario& c) { c.stream = false; },
           }) {
        Scenario c = m.scenario;
        mutate(c);
        if (still_fails(c)) progress = true;
      }
    }
    if (m.scenario.overlay != OverlayKind::kComplete) {
      Scenario c = m.scenario;
      c.overlay = OverlayKind::kComplete;
      if (still_fails(c)) progress = true;
    }
    if (m.scenario.mechanism.kind != MechanismSpec::Kind::kNone) {
      Scenario c = m.scenario;
      c.mechanism.kind = MechanismSpec::Kind::kNone;
      if (still_fails(c)) progress = true;
    }
    {
      Scenario c = m.scenario;
      c.download = kUnlimited;
      if (still_fails(c)) progress = true;
    }
    {
      Scenario c = m.scenario;
      c.upload = 1;
      c.server_upload = 0;
      if (still_fails(c)) progress = true;
    }

    // Numeric shrinks: halve toward the floor, then single steps.
    while (m.scenario.n > 2) {
      Scenario c = m.scenario;
      c.n = std::max(2u, c.n / 2);
      if (!still_fails(c)) break;
      progress = true;
    }
    while (m.scenario.n > 2) {
      Scenario c = m.scenario;
      --c.n;
      if (!still_fails(c)) break;
      progress = true;
    }
    while (m.scenario.k > 1) {
      Scenario c = m.scenario;
      c.k = std::max(1u, c.k / 2);
      if (!still_fails(c)) break;
      progress = true;
    }
    while (m.scenario.k > 1) {
      Scenario c = m.scenario;
      --c.k;
      if (!still_fails(c)) break;
      progress = true;
    }
    for (auto dim : {&Scenario::arity, &Scenario::stripes, &Scenario::servers,
                     &Scenario::degree}) {
      while (m.scenario.*dim > 2) {
        Scenario c = m.scenario;
        --(c.*dim);
        if (!still_fails(c)) break;
        progress = true;
      }
    }
    while (m.scenario.period > 2) {
      Scenario c = m.scenario;
      c.period /= 2;
      if (!still_fails(c)) break;
      progress = true;
    }
  }
  return m;
}

}  // namespace pob::check
