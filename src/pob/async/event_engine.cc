#include "pob/async/event_engine.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "pob/async/event_queue.h"

namespace pob {
namespace {

class EngineView final : public AsyncView {
 public:
  EngineView(std::uint32_t n, std::uint32_t k) : k_(k) {
    have_.reserve(n);
    inbound_.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      have_.emplace_back(k);
      inbound_.emplace_back(k);
    }
    have_[kServer].fill();
    inbound_count_.assign(n, 0);
    freq_.assign(k, 1);
  }

  std::uint32_t num_nodes() const override {
    return static_cast<std::uint32_t>(have_.size());
  }
  std::uint32_t num_blocks() const override { return k_; }
  const BlockSet& blocks_of(NodeId node) const override { return have_[node]; }
  const BlockSet& inbound_of(NodeId node) const override { return inbound_[node]; }
  std::uint32_t inbound_count(NodeId node) const override { return inbound_count_[node]; }
  bool is_complete(NodeId node) const override { return have_[node].full(); }
  std::span<const std::uint32_t> block_frequency() const override { return freq_; }

  std::uint32_t k_;
  std::vector<BlockSet> have_;
  std::vector<BlockSet> inbound_;
  std::vector<std::uint32_t> inbound_count_;
  std::vector<std::uint32_t> freq_;
};

}  // namespace

AsyncResult run_async(const AsyncConfig& config, AsyncPolicy& policy) {
  const std::uint32_t n = config.num_nodes;
  const std::uint32_t k = config.num_blocks;
  if (n < 2) throw std::invalid_argument("async: num_nodes < 2");
  if (k < 1) throw std::invalid_argument("async: num_blocks < 1");
  std::vector<double> rate = config.upload_rate;
  if (rate.empty()) rate.assign(n, 1.0);
  if (rate.size() != n) throw std::invalid_argument("async: upload_rate size mismatch");
  for (const double r : rate) {
    if (r <= 0.0) throw std::invalid_argument("async: rates must be positive");
  }
  const double time_cap =
      config.max_time > 0.0
          ? config.max_time
          : 1024.0 + 2.0 * n + 66.0 * k;  // mirrors the synchronous default cap

  EngineView view(n, k);
  // A Transfer with to == kNoNode encodes a policy wakeup timer.
  EventQueue<Transfer> events;
  std::vector<char> busy(n, 0);

  AsyncResult result;
  result.client_completion.assign(n - 1, std::numeric_limits<double>::quiet_NaN());
  std::uint32_t incomplete_clients = n - 1;

  std::vector<char> wakeup_pending(n, 0);

  // Tries to start an upload from `u` at time `now`.
  const auto try_start = [&](NodeId u, double now) {
    if (busy[u]) return;
    const Transfer tr = policy.next_upload(u, now, view);
    if (tr.from == kNoNode || tr.to == kNoNode || tr.block == kNoBlock) {
      // Idle: honor a policy timer so a fully idle swarm can still make
      // progress (e.g. tit-for-tat rechoking).
      const double delay = policy.retry_after(u, now);
      if (delay > 0.0 && !wakeup_pending[u]) {
        wakeup_pending[u] = 1;
        events.push(now + delay, Transfer{u, kNoNode, kNoBlock});
      }
      return;
    }
    if (tr.from != u) throw std::logic_error("async policy: transfer.from mismatch");
    if (!view.have_[u].contains(tr.block)) {
      throw std::logic_error("async policy: sender lacks block");
    }
    if (view.have_[tr.to].contains(tr.block) || view.inbound_[tr.to].contains(tr.block)) {
      throw std::logic_error("async policy: duplicate delivery");
    }
    if (config.download_ports != kUnlimited &&
        view.inbound_count_[tr.to] >= config.download_ports) {
      throw std::logic_error("async policy: receiver out of download ports");
    }
    busy[u] = 1;
    view.inbound_[tr.to].insert(tr.block);
    ++view.inbound_count_[tr.to];
    events.push(now + 1.0 / rate[u], tr);
  };

  for (NodeId u = 0; u < n; ++u) try_start(u, 0.0);

  double now = 0.0;
  while (!events.empty() && incomplete_clients > 0) {
    if (events.top().time > time_cap) break;  // cap abort: `now` stays at the last real event
    const TimedEvent<Transfer> ev = events.pop();
    now = ev.time;
    result.last_event_time = now;
    const Transfer& tr = ev.payload;
    if (tr.to == kNoNode) {  // policy wakeup timer
      wakeup_pending[tr.from] = 0;
      try_start(tr.from, now);
      continue;
    }
    busy[tr.from] = 0;
    view.inbound_[tr.to].erase(tr.block);
    --view.inbound_count_[tr.to];
    view.have_[tr.to].insert(tr.block);
    ++view.freq_[tr.block];
    ++result.total_transfers;
    if (config.record_log) {
      result.log.push_back({tr, now - 1.0 / rate[tr.from], now});
    }
    if (view.have_[tr.to].full() && tr.to != kServer) {
      result.client_completion[tr.to - 1] = now;
      --incomplete_clients;
    }
    if (incomplete_clients == 0) break;
    // Wake every idle node: the completed transfer may have created work
    // for any of them (new holder, freed download port).
    for (NodeId u = 0; u < n; ++u) try_start(u, now);
  }

  result.completed = incomplete_clients == 0;
  result.unfinished_clients = incomplete_clients;
  if (result.completed) {
    double sum = 0.0;
    for (const double t : result.client_completion) {
      result.completion_time = std::max(result.completion_time, t);
      sum += t;
    }
    result.mean_completion_time = sum / static_cast<double>(n - 1);
  }
  return result;
}

}  // namespace pob
