#include "pob/core/block_set.h"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace pob {

BlockSet::BlockSet(std::uint32_t universe)
    : universe_(universe), words_((universe + 63) / 64, 0) {
  // A zero-block universe is always a caller bug (the model requires k >= 1,
  // and packed possession rows would have zero words, so contains()/insert()
  // would index out of bounds). Reject it loudly instead of letting the
  // first bit operation corrupt memory. The *default* constructor still
  // builds an inert empty set, as members and containers need.
  if (universe == 0) {
    throw std::invalid_argument("BlockSet: universe must be >= 1 (k = 0 file)");
  }
}

bool BlockSet::insert(BlockId b) {
  assert(b < universe_);
  std::uint64_t& w = words_[b >> 6];
  const std::uint64_t bit = 1ULL << (b & 63);
  if (w & bit) return false;
  w |= bit;
  ++count_;
  return true;
}

bool BlockSet::erase(BlockId b) {
  assert(b < universe_);
  std::uint64_t& w = words_[b >> 6];
  const std::uint64_t bit = 1ULL << (b & 63);
  if (!(w & bit)) return false;
  w &= ~bit;
  --count_;
  return true;
}

void BlockSet::clear() {
  for (auto& w : words_) w = 0;
  count_ = 0;
}

std::uint64_t BlockSet::word_mask(std::size_t w) const {
  // All words are full except possibly the last.
  if (w + 1 < words_.size() || (universe_ & 63) == 0) return ~0ULL;
  return (1ULL << (universe_ & 63)) - 1;
}

void BlockSet::fill() {
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] = word_mask(w);
  count_ = universe_;
}

BlockId BlockSet::min() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return static_cast<BlockId>((w << 6) + static_cast<std::uint32_t>(std::countr_zero(words_[w])));
    }
  }
  return kNoBlock;
}

BlockId BlockSet::max() const {
  for (std::size_t w = words_.size(); w-- > 0;) {
    if (words_[w] != 0) {
      return static_cast<BlockId>((w << 6) + 63 - static_cast<std::uint32_t>(std::countl_zero(words_[w])));
    }
  }
  return kNoBlock;
}

BlockId BlockSet::first_missing() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    const std::uint64_t missing = ~words_[w] & word_mask(w);
    if (missing != 0) {
      return static_cast<BlockId>((w << 6) + static_cast<std::uint32_t>(std::countr_zero(missing)));
    }
  }
  return kNoBlock;
}

bool BlockSet::has_block_missing_from(const BlockSet& other) const {
  assert(universe_ == other.universe_);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] & ~other.words_[w]) return true;
  }
  return false;
}

BlockId BlockSet::max_missing_from(const BlockSet& other) const {
  assert(universe_ == other.universe_);
  for (std::size_t w = words_.size(); w-- > 0;) {
    const std::uint64_t diff = words_[w] & ~other.words_[w];
    if (diff != 0) {
      return static_cast<BlockId>((w << 6) + 63 - static_cast<std::uint32_t>(std::countl_zero(diff)));
    }
  }
  return kNoBlock;
}

std::uint32_t BlockSet::count_missing_from(const BlockSet& other) const {
  assert(universe_ == other.universe_);
  std::uint32_t total = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    total += static_cast<std::uint32_t>(std::popcount(words_[w] & ~other.words_[w]));
  }
  return total;
}

bool BlockSet::covers_complement_of(const BlockSet& have) const {
  assert(universe_ == have.universe_);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (~have.words_[w] & word_mask(w) & ~words_[w]) return false;
  }
  return true;
}

bool BlockSet::has_useful(const BlockSet& dst, const BlockSet* excl) const {
  assert(universe_ == dst.universe_);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t diff = words_[w] & ~dst.words_[w];
    if (excl != nullptr) diff &= ~excl->words_[w];
    if (diff != 0) return true;
  }
  return false;
}

BlockId BlockSet::pick_random_useful(const BlockSet& dst, const BlockSet* excl,
                                     Rng& rng) const {
  assert(universe_ == dst.universe_);
  // Pass 1: count candidates. Pass 2: select the r-th by rank.
  std::uint32_t total = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t diff = words_[w] & ~dst.words_[w];
    if (excl != nullptr) diff &= ~excl->words_[w];
    total += static_cast<std::uint32_t>(std::popcount(diff));
  }
  if (total == 0) return kNoBlock;
  std::uint32_t r = rng.below(total);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t diff = words_[w] & ~dst.words_[w];
    if (excl != nullptr) diff &= ~excl->words_[w];
    const auto pc = static_cast<std::uint32_t>(std::popcount(diff));
    if (r < pc) {
      // Select the r-th set bit of diff.
      while (r-- > 0) diff &= diff - 1;
      return static_cast<BlockId>((w << 6) + static_cast<std::uint32_t>(std::countr_zero(diff)));
    }
    r -= pc;
  }
  return kNoBlock;  // unreachable
}

BlockId BlockSet::pick_rarest_useful(const BlockSet& dst, const BlockSet* excl,
                                     std::span<const std::uint32_t> freq,
                                     Rng& rng) const {
  assert(universe_ == dst.universe_);
  if (freq.size() != universe_) {
    throw std::invalid_argument("pick_rarest_useful: freq size mismatch");
  }
  BlockId best = kNoBlock;
  std::uint32_t best_freq = 0;
  std::uint32_t ties = 0;  // reservoir over equally-rare candidates
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t diff = words_[w] & ~dst.words_[w];
    if (excl != nullptr) diff &= ~excl->words_[w];
    while (diff != 0) {
      const auto b = static_cast<BlockId>((w << 6) + static_cast<std::uint32_t>(std::countr_zero(diff)));
      diff &= diff - 1;
      const std::uint32_t f = freq[b];
      if (best == kNoBlock || f < best_freq) {
        best = b;
        best_freq = f;
        ties = 1;
      } else if (f == best_freq) {
        ++ties;
        if (rng.below(ties) == 0) best = b;
      }
    }
  }
  return best;
}

std::vector<BlockId> BlockSet::to_vector() const {
  std::vector<BlockId> out;
  out.reserve(count_);
  for_each([&out](BlockId b) { out.push_back(b); });
  return out;
}

}  // namespace pob
