// The scheduler side of the scale tick: a ScaleScheduler turns (tick, sender
// range) into intents, and the engine's merge/apply pipeline does the rest.
//
// The contract that keeps the whole engine bit-identical at any --jobs:
//
//   * begin_tick(t) runs serially, once, before any generate() call of tick
//     t — the place to materialize per-tick state (the riffle scheduler
//     builds its active-meeting buffer here). It must be a pure function of
//     (engine state, tick), never of the job count.
//   * generate(t, shard, first, last, out) appends every intent of tick t
//     whose SENDER lies in [first, last), in ascending sender order, to
//     `out`. Calls for different shards may run concurrently on the thread
//     pool; a shard's intents must not depend on which thread runs it or on
//     whether other shards ran first. Concatenating the shards in ascending
//     shard order yields the canonical (sender-ordered) intent stream the
//     merge admits against.
//   * the merge phase enforces only RECEIVER-side constraints (download
//     capacity, one delivery per (receiver, block)). Upload capacity and any
//     mechanism constraint are the scheduler's contract: randomized
//     generation prechecks the §3.2 credit predicate per probe; the
//     deterministic schedules are legal by construction, so every intent
//     they emit is admitted verbatim.
//
// Deterministic emission is what makes porting the paper's closed-form
// algorithms cheap: merge and apply do not change at all, and the
// MirrorScheduler/oracle stack validates any intent stream the same way.

#pragma once

#include <cstdint>
#include <vector>

#include "pob/core/types.h"

namespace pob::scale {

/// Which intent generator drives the tick. The engine rejects configurations
/// a deterministic schedule cannot serve (non-power-of-two n, missing
/// hypercube edges, d < 2 for the riffle) with a distinct EngineViolation —
/// see the constructor — instead of emitting garbage intents.
enum class SchedKind : std::uint8_t {
  /// §2.4 randomized cooperative probing (credit-limited when
  /// ScaleOptions::credit_limit > 0) — the historical scale protocol.
  kRandomized = 0,
  /// Theorem 1's binomial pipeline: pure index arithmetic on the hypercube,
  /// optimal cooperative T = k - 1 + log2 n at power-of-two n.
  kBinomialPipeline = 1,
  /// Theorem 3's riffle pipeline: strict bilateral barter, T = k + n - 2 in
  /// its clean regimes (matching Theorem 2's lower bound).
  kRifflePipeline = 2,
  /// §3.3 triangular barter: the binomial-pipeline schedule run with the
  /// pairwise ledger live (credit_limit >= 1). The schedule satisfies
  /// CyclicBarter(3, 1), so relaxing barter to 3-cycles already recovers the
  /// optimal cooperative time — the paper's "price of triangular barter = 1".
  kTriangularBarter = 3,
};

inline const char* sched_kind_name(SchedKind kind) {
  switch (kind) {
    case SchedKind::kBinomialPipeline: return "binomial-pipeline";
    case SchedKind::kRifflePipeline: return "riffle-pipeline";
    case SchedKind::kTriangularBarter: return "triangular-barter";
    case SchedKind::kRandomized: break;
  }
  return "randomized";
}

class ScaleScheduler {
 public:
  virtual ~ScaleScheduler() = default;

  /// Serial per-tick hook; see the contract above. Default: nothing.
  virtual void begin_tick(Tick /*tick*/) {}

  /// Appends tick `tick`'s intents with sender in [first, last) to `out`,
  /// ascending by sender. `shard` is the intent-shard index (shard-owned
  /// scratch lives behind it); shards partition [0, n) contiguously.
  virtual void generate(Tick tick, std::uint32_t shard, NodeId first,
                        NodeId last, std::vector<Transfer>& out) = 0;

  virtual const char* name() const = 0;

  /// Scratch + schedule memory owned by the scheduler, for state_bytes().
  virtual std::uint64_t memory_bytes() const { return 0; }
};

}  // namespace pob::scale
