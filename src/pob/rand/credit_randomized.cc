#include "pob/rand/randomized.h"

namespace pob {

CreditRandomized make_credit_randomized(std::shared_ptr<const Overlay> overlay,
                                        RandomizedOptions options, Rng rng,
                                        std::uint32_t credit_limit) {
  CreditRandomized result;
  result.mechanism = std::make_unique<CreditLimited>(credit_limit);
  result.scheduler = std::make_unique<RandomizedScheduler>(
      std::move(overlay), options, rng, result.mechanism.get());
  return result;
}

}  // namespace pob
