// Summary statistics for repeated randomized runs: the paper reports mean
// completion times with 95% confidence intervals ("the error bars on each
// point represent the 95% confidence intervals on the mean, obtained through
// multiple algorithm runs", §2.4.4).

#pragma once

#include <span>
#include <vector>

namespace pob {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;   ///< sample standard deviation (n - 1 denominator)
  double ci95 = 0.0;     ///< 95% CI half-width on the mean
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Computes a Summary; the CI uses Student-t critical values for small
/// samples (n <= 30) and the normal 1.96 beyond.
Summary summarize(std::span<const double> samples);

/// Two-sided 97.5% Student-t critical value for `dof` degrees of freedom.
double t_critical_975(std::size_t dof);

}  // namespace pob
