// E14b — §3.2.4's closing experiment: low-degree overlay with periodic
// neighbor rotation under credit-limited barter ("initial results from this
// approach appear promising").
//
// At degrees below the Figure-6 threshold, the static overlay starves (the
// credit lines to all d neighbors exhaust); re-drawing the overlay every R
// ticks opens fresh credit lines and restores progress.

#include <iostream>
#include <memory>

#include "bench_util.h"
#include "pob/analysis/bounds.h"
#include "pob/rand/rotation.h"

namespace pob::bench {
namespace {

int main_impl(int argc, char** argv) {
  const Args args(argc, argv);
  TrialRunner trials(args);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 500));
  const auto k = static_cast<std::uint32_t>(args.get_int("k", 500));
  const auto runs = static_cast<std::uint32_t>(args.get_int("runs", 3));
  const auto d = static_cast<std::uint32_t>(args.get_int("degree", 8));
  const Tick cap = static_cast<Tick>(
      args.get_int("cap", 6 * static_cast<std::int64_t>(cooperative_lower_bound(n, k))));

  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  cfg.max_ticks = cap;
  cfg.stall_window = 250;

  Table table({"overlay", "rotation-period", "T (mean +- 95% CI)", "optimal"});
  const Tick optimal = cooperative_lower_bound(n, k);

  const TrialStats static_stats = trials(runs, [&](std::uint32_t i) {
    return credit_trial(cfg, d, 1, {}, trial_seed(0xF16'F000, i));
  });
  table.add_row({"static d=" + std::to_string(d), "-",
                 completion_cell(static_stats, static_cast<double>(cap)),
                 std::to_string(optimal)});

  for (const Tick period : {4u, 16u, 64u}) {
    const TrialStats stats = trials(runs, [&](std::uint32_t i) {
      CreditLimited mech(1);
      RotatingRandomizedScheduler sched(n, d, period, {}, Rng(trial_seed(0xF16'F100 + 13ull * period, i)),
                                        &mech);
      const RunResult r = run(cfg, sched, &mech);
      TrialOutcome out;
      out.completed = r.completed;
      if (r.completed) {
        out.completion = static_cast<double>(r.completion_tick);
        out.mean_completion = r.mean_client_completion();
      }
      return out;
    });
    table.add_row({"rotating d=" + std::to_string(d), std::to_string(period),
                   completion_cell(stats, static_cast<double>(cap)),
                   std::to_string(optimal)});
  }
  std::cout << "# E14b: neighbor rotation under credit-limited barter (n = " << n
            << ", k = " << k << ", s = 1, Random policy)\n";
  emit(args, table);
  trials.report(std::cout);
  return 0;
}

}  // namespace
}  // namespace pob::bench

int main(int argc, char** argv) { return pob::bench::main_impl(argc, argv); }
