// The hybrid tick+event mega-swarm driver: a calendar-queue event core
// (arrivals, rate changes) feeding variable-population ticks through
// scale::Engine::step(), with a DemandTracker folding the delivery stream
// into streaming metrics (startup latency, rebuffer ticks, deadline misses).
//
// Determinism: the whole run is a pure function of (spec) — the workload
// plan is integer-only sampling from the spec seed, events apply in
// (timestamp, node id) order from the CalendarQueue, and the tick itself is
// the engine's sharded pipeline, bit-identical at any --jobs value. The
// small-n mirror (pob/check/stream_check) replays the recorded trace
// through pob/async and recomputes every metric field-for-field.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "pob/core/engine.h"
#include "pob/scale/engine.h"
#include "pob/scale/stream/calendar.h"
#include "pob/scale/stream/demand.h"
#include "pob/scale/stream/workload.h"

namespace pob::scale::stream {

/// Everything a stream run is a function of.
struct StreamSpec {
  EngineConfig config;
  std::shared_ptr<const Topology> topology;
  ScaleOptions options;  ///< stream_window is overwritten from demand.window
  StreamWorkload workload;
  StreamDemand demand;
  std::uint64_t seed = 0;
};

class StreamEngine {
 public:
  /// Builds the workload plan, constructs the underlying engine with every
  /// late arrival pre-deactivated and per-class capacities applied, and
  /// loads the calendar. Throws like Engine's constructor plus
  /// std::invalid_argument for a malformed workload/demand.
  explicit StreamEngine(StreamSpec spec);

  /// Drives the swarm to completion (or the tick cap / stall) on `jobs`
  /// workers and returns a RunResult shaped exactly like Engine::run()'s,
  /// plus the streaming-metric fields. The cap extends past the default by
  /// the last arrival tick so a long arrival tail cannot eat the whole
  /// budget; stall detection is suspended while arrivals are still pending
  /// (a quiet pre-spike swarm is expected, not stalled). One-shot.
  RunResult run(unsigned jobs = 1);

  const Engine& engine() const { return *engine_; }
  const WorkloadPlan& plan() const { return plan_; }
  /// Per-node arrival ticks (0 = present from the start).
  const std::vector<Tick>& arrivals() const { return plan_.arrival; }
  std::uint32_t pending_arrivals() const { return pending_arrivals_; }

  /// Engine state + the event calendar + the demand tracker (possession
  /// fold, playback chains, deadline timers).
  std::uint64_t state_bytes() const;

 private:
  StreamSpec spec_;
  WorkloadPlan plan_;
  std::unique_ptr<Engine> engine_;
  CalendarQueue calendar_;
  DemandTracker tracker_;
  std::uint32_t pending_arrivals_ = 0;
  bool ran_ = false;
};

}  // namespace pob::scale::stream
