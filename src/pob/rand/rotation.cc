#include "pob/rand/rotation.h"

#include <stdexcept>

#include "pob/overlay/builders.h"

namespace pob {

RotatingRandomizedScheduler::RotatingRandomizedScheduler(std::uint32_t num_nodes,
                                                         std::uint32_t degree,
                                                         Tick rotation_period,
                                                         RandomizedOptions options,
                                                         Rng rng,
                                                         const Mechanism* precheck)
    : num_nodes_(num_nodes),
      degree_(degree),
      rotation_period_(rotation_period),
      graph_rng_(rng.split(0xc0ffee)) {
  if (rotation_period_ < 1) throw std::invalid_argument("rotation: period must be >= 1");
  auto overlay = std::make_shared<GraphOverlay>(
      make_random_regular(num_nodes_, degree_, graph_rng_));
  inner_ = std::make_unique<RandomizedScheduler>(std::move(overlay), options,
                                                 rng.split(0xdeed), precheck);
}

void RotatingRandomizedScheduler::plan_tick(Tick tick, const SwarmState& state,
                                            std::vector<Transfer>& out) {
  if (tick > 1 && (tick - 1) % rotation_period_ == 0) {
    inner_->set_overlay(std::make_shared<GraphOverlay>(
        make_random_regular(num_nodes_, degree_, graph_rng_)));
  }
  inner_->plan_tick(tick, state, out);
}

}  // namespace pob
