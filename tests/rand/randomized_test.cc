// §2.4 randomized cooperative distribution: correctness (always completes,
// engine-validated), near-optimality on the complete graph, insensitivity to
// block policy and download capacity (§2.4.4), and overlay-degree behavior
// (Figure 5's "near-optimal once degree is Θ(log n)").

#include "pob/rand/randomized.h"

#include <gtest/gtest.h>

#include "pob/analysis/bounds.h"
#include "pob/core/engine.h"
#include "pob/overlay/builders.h"

namespace pob {
namespace {

RunResult run_random(std::uint32_t n, std::uint32_t k, std::uint64_t seed,
                     RandomizedOptions opt = {},
                     std::shared_ptr<const Overlay> overlay = nullptr) {
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  cfg.upload_capacity = opt.upload_capacity;
  cfg.download_capacity = opt.download_capacity;
  if (overlay == nullptr) overlay = std::make_shared<CompleteOverlay>(n);
  RandomizedScheduler sched(std::move(overlay), opt, Rng(seed));
  return run(cfg, sched);
}

class RandomizedGrid
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>> {};

TEST_P(RandomizedGrid, CompletesWithinModestOverhead) {
  const auto [n, k, seed] = GetParam();
  const RunResult r = run_random(n, k, seed);
  ASSERT_TRUE(r.completed) << "n=" << n << " k=" << k << " seed=" << seed;
  const Tick opt = cooperative_lower_bound(n, k);
  EXPECT_GE(r.completion_tick, opt);
  // §2.4.4's regression says ~1.01k + ~5.5 log n; x3 + slack is a safe
  // regression-proof envelope that still catches gross breakage.
  EXPECT_LE(r.completion_tick, 3 * opt + 40) << "n=" << n << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RandomizedGrid,
    ::testing::Combine(::testing::Values(4u, 10u, 33u, 100u),
                       ::testing::Values(1u, 8u, 64u), ::testing::Values(1ull, 2ull)));

TEST(Randomized, NearOptimalForLargeK) {
  // Figure 4 regime: T grows like ~1.0 k for k >> log n.
  const RunResult r = run_random(100, 500, 7);
  ASSERT_TRUE(r.completed);
  const Tick opt = cooperative_lower_bound(100, 500);
  EXPECT_LT(static_cast<double>(r.completion_tick), 1.25 * static_cast<double>(opt));
}

TEST(Randomized, RarestFirstAlsoCompletes) {
  RandomizedOptions opt;
  opt.policy = BlockPolicy::kRarestFirst;
  const RunResult r = run_random(64, 64, 11, opt);
  ASSERT_TRUE(r.completed);
  // §2.4.4: "no significant differences" vs Random in the cooperative case.
  const RunResult base = run_random(64, 64, 11);
  const double ratio = static_cast<double>(r.completion_tick) /
                       static_cast<double>(base.completion_tick);
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.4);
}

TEST(Randomized, FiniteDownloadCapacityStillCompletes) {
  for (const std::uint32_t d : {1u, 2u}) {
    RandomizedOptions opt;
    opt.download_capacity = d;
    const RunResult r = run_random(50, 40, 13, opt);
    ASSERT_TRUE(r.completed) << "d=" << d;
  }
}

TEST(Randomized, UploadCapacityTwoRoughlyHalvesTime) {
  RandomizedOptions fast;
  fast.upload_capacity = 2;
  fast.download_capacity = kUnlimited;
  const RunResult two = run_random(64, 128, 17, fast);
  const RunResult one = run_random(64, 128, 17);
  ASSERT_TRUE(two.completed);
  ASSERT_TRUE(one.completed);
  EXPECT_LT(2 * two.completion_tick, 3 * one.completion_tick);  // < 1.5x of half
}

TEST(Randomized, WorksOnSparseOverlays) {
  Rng grng(23);
  for (const std::uint32_t d : {4u, 8u, 16u}) {
    auto ov = std::make_shared<GraphOverlay>(make_random_regular(64, d, grng));
    const RunResult r = run_random(64, 32, 29, {}, ov);
    ASSERT_TRUE(r.completed) << "degree " << d;
  }
}

TEST(Randomized, HigherDegreeHelpsOnAverage) {
  // Figure 5 shape on a small instance: degree 4 vs degree 24 regular
  // overlays, 5 seeds each.
  Rng grng(31);
  double t_low = 0, t_high = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto low = std::make_shared<GraphOverlay>(make_random_regular(128, 4, grng));
    auto high = std::make_shared<GraphOverlay>(make_random_regular(128, 24, grng));
    t_low += static_cast<double>(run_random(128, 64, 100 + seed, {}, low).completion_tick);
    t_high +=
        static_cast<double>(run_random(128, 64, 100 + seed, {}, high).completion_tick);
  }
  EXPECT_LT(t_high, t_low);
}

TEST(Randomized, RingOverlayDegeneratesTowardPipeline) {
  auto ring = std::make_shared<GraphOverlay>(make_ring(32));
  const RunResult r = run_random(32, 16, 37, {}, ring);
  ASSERT_TRUE(r.completed);
  // On a ring, blocks spread at most 2 hops/tick; T must far exceed the
  // complete-graph optimum.
  EXPECT_GT(r.completion_tick, cooperative_lower_bound(32, 16) + 8);
}

TEST(Randomized, ExactScanMatchesCappedScanClosely) {
  RandomizedOptions exact;
  exact.max_scan = 0;
  const RunResult a = run_random(128, 128, 41, exact);
  const RunResult b = run_random(128, 128, 41);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  const double ratio =
      static_cast<double>(a.completion_tick) / static_cast<double>(b.completion_tick);
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.1);
}

TEST(Randomized, DeterministicGivenSeed) {
  const RunResult a = run_random(40, 30, 43);
  const RunResult b = run_random(40, 30, 43);
  EXPECT_EQ(a.completion_tick, b.completion_tick);
  EXPECT_EQ(a.total_transfers, b.total_transfers);
}

TEST(Randomized, RejectsBadConstruction) {
  EXPECT_THROW(RandomizedScheduler(nullptr, {}, Rng(1)), std::invalid_argument);
  RandomizedOptions bad;
  bad.upload_capacity = 0;
  EXPECT_THROW(RandomizedScheduler(std::make_shared<CompleteOverlay>(4), bad, Rng(1)),
               std::invalid_argument);
}

TEST(Randomized, SetOverlayValidatesSize) {
  RandomizedScheduler sched(std::make_shared<CompleteOverlay>(8), {}, Rng(1));
  EXPECT_THROW(sched.set_overlay(std::make_shared<CompleteOverlay>(9)),
               std::invalid_argument);
  EXPECT_THROW(sched.set_overlay(nullptr), std::invalid_argument);
  sched.set_overlay(std::make_shared<CompleteOverlay>(8));
}

TEST(Randomized, BlockPolicyToString) {
  EXPECT_STREQ(to_string(BlockPolicy::kRandom), "random");
  EXPECT_STREQ(to_string(BlockPolicy::kRarestFirst), "rarest-first");
}

}  // namespace
}  // namespace pob
