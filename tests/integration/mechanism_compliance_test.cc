// Cross-module integration: which algorithms run legally under which
// incentive mechanisms (§3.2.2, §3.3), with every tick machine-validated by
// the engine.
//
// Verified map (documented in EXPERIMENTS.md):
//   * binomial pipeline, n = 2^m: CreditLimited(1) — the §3.2.2 claim.
//   * binomial pipeline, any n:   CyclicBarter(4, 1) — the §3.3 idea; the
//     doubled-vertex construction produces quadrilateral barter cycles
//     (external transfer pair + the two internal forwards), so triangles are
//     not enough but cycles of length 4 with one block of credit are.
//   * riffle pipeline, any n, k:  StrictBarter (§3.1.3).
//   * randomized cooperative:     violates StrictBarter immediately.

#include <gtest/gtest.h>

#include "pob/core/engine.h"
#include "pob/mech/barter.h"
#include "pob/overlay/overlay.h"
#include "pob/rand/randomized.h"
#include "pob/sched/binomial_pipeline.h"
#include "pob/sched/riffle_pipeline.h"

namespace pob {
namespace {

class PipelineUnderCyclicBarter
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(PipelineUnderCyclicBarter, GeneralNRunsWithCycleLen4Credit1) {
  const auto [n, k] = GetParam();
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  BinomialPipelineScheduler sched(n, k);
  CyclicBarter mech(4, 1);
  const RunResult r = run(cfg, sched, &mech);
  EXPECT_TRUE(r.completed) << "n=" << n << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PipelineUnderCyclicBarter,
    ::testing::Combine(::testing::Values(3u, 5u, 7u, 11u, 20u, 33u, 47u, 100u, 200u),
                       ::testing::Values(1u, 9u, 64u, 128u)));

TEST(MechanismCompliance, PowerOfTwoPipelineNeedsNoCycles) {
  // For n = 2^m all client transfers are simultaneous pairwise exchanges:
  // plain credit-limited barter at s = 1 suffices, and so does strict
  // barter *after* the opening — but the opening's free server blocks mean
  // full strict barter fails (clients receive without reciprocating).
  EngineConfig cfg;
  cfg.num_nodes = 16;
  cfg.num_blocks = 8;
  {
    BinomialPipelineScheduler sched(16, 8);
    CreditLimited mech(1);
    EXPECT_TRUE(run(cfg, sched, &mech).completed);
  }
  {
    BinomialPipelineScheduler sched(16, 8);
    StrictBarter mech;
    EXPECT_THROW(run(cfg, sched, &mech), EngineViolation);
  }
}

TEST(MechanismCompliance, GeneralPipelineViolatesTriangularAlone) {
  // The honest delta vs the paper's §3.3 remark: length-3 cycles with s = 1
  // do NOT cover the doubled-vertex flows for this n, k.
  EngineConfig cfg;
  cfg.num_nodes = 7;
  cfg.num_blocks = 64;
  BinomialPipelineScheduler sched(7, 64);
  CyclicBarter mech(3, 1);
  EXPECT_THROW(run(cfg, sched, &mech), EngineViolation);
}

TEST(MechanismCompliance, RiffleSatisfiesStrictBarterEverywhere) {
  for (const std::uint32_t n : {4u, 9u, 17u, 40u}) {
    for (const std::uint32_t k : {3u, 10u, 50u}) {
      EngineConfig cfg;
      cfg.num_nodes = n;
      cfg.num_blocks = k;
      cfg.download_capacity = 2;
      RifflePipelineScheduler sched(n, k, 1, 2);
      StrictBarter mech;
      EXPECT_TRUE(run(cfg, sched, &mech).completed) << "n=" << n << " k=" << k;
    }
  }
}

TEST(MechanismCompliance, RiffleAlsoSatisfiesWeakerMechanisms) {
  // Strict barter is the strongest mechanism here; anything it satisfies,
  // credit-limited and cyclic barter must also accept.
  EngineConfig cfg;
  cfg.num_nodes = 10;
  cfg.num_blocks = 18;
  cfg.download_capacity = 2;
  {
    RifflePipelineScheduler sched(10, 18, 1, 2);
    CreditLimited mech(1);
    EXPECT_TRUE(run(cfg, sched, &mech).completed);
  }
  {
    RifflePipelineScheduler sched(10, 18, 1, 2);
    CyclicBarter mech(3, 1);
    EXPECT_TRUE(run(cfg, sched, &mech).completed);
  }
}

TEST(MechanismCompliance, RandomizedCooperativeBreaksStrictBarter) {
  EngineConfig cfg;
  cfg.num_nodes = 16;
  cfg.num_blocks = 8;
  RandomizedScheduler sched(std::make_shared<CompleteOverlay>(16), {}, Rng(3));
  StrictBarter mech;
  EXPECT_THROW(run(cfg, sched, &mech), EngineViolation);
}

TEST(MechanismCompliance, CooperativeMechanismIsNeutral) {
  EngineConfig cfg;
  cfg.num_nodes = 16;
  cfg.num_blocks = 8;
  RandomizedScheduler sched(std::make_shared<CompleteOverlay>(16), {}, Rng(3));
  Cooperative mech;
  EXPECT_TRUE(run(cfg, sched, &mech).completed);
}

}  // namespace
}  // namespace pob
