#include "pob/flow/time_expanded.h"

#include <gtest/gtest.h>

#include "pob/overlay/builders.h"

namespace pob::flow {
namespace {

using scale::Topology;

EngineConfig unit_cfg(std::uint32_t n, std::uint32_t k) {
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  cfg.download_capacity = 1;
  return cfg;
}

TEST(CapacityShape, ResolvesScalarCapacities) {
  const CapacityShape shape = CapacityShape::from_config(unit_cfg(4, 3));
  ASSERT_EQ(shape.n, 4u);
  EXPECT_EQ(shape.k, 3u);
  EXPECT_EQ(shape.server_up, 1u);
  EXPECT_EQ(shape.up, (std::vector<std::uint64_t>{1, 1, 1, 1}));
  EXPECT_EQ(shape.down, (std::vector<std::uint64_t>{1, 1, 1, 1}));
  EXPECT_EQ(shape.demand_clients, 3u);
  EXPECT_FALSE(shape.demand[kServer]);
}

TEST(CapacityShape, ServerUploadOverridesTheScalar) {
  EngineConfig cfg = unit_cfg(4, 3);
  cfg.server_upload_capacity = 5;
  const CapacityShape shape = CapacityShape::from_config(cfg);
  EXPECT_EQ(shape.server_up, 5u);
  EXPECT_EQ(shape.up[1], 1u);
}

TEST(CapacityShape, PerNodeVectorsBeatScalarsIncludingTheServer) {
  EngineConfig cfg = unit_cfg(3, 2);
  cfg.upload_capacities = {7, 2, 3};
  cfg.download_capacities = {1, 4, 5};
  cfg.server_upload_capacity = 9;  // ignored: the vector wins
  const CapacityShape shape = CapacityShape::from_config(cfg);
  EXPECT_EQ(shape.server_up, 7u);
  EXPECT_EQ(shape.up, (std::vector<std::uint64_t>{7, 2, 3}));
  EXPECT_EQ(shape.down, (std::vector<std::uint64_t>{1, 4, 5}));
}

TEST(CapacityShape, DepartingClientsLeaveTheDemandSet) {
  EngineConfig cfg = unit_cfg(5, 2);
  cfg.departures = {{3, 2}, {7, 4}};
  const CapacityShape shape = CapacityShape::from_config(cfg);
  EXPECT_EQ(shape.demand_clients, 2u);
  EXPECT_FALSE(shape.demand[2]);
  EXPECT_FALSE(shape.demand[4]);
  EXPECT_TRUE(shape.demand[1]);
  EXPECT_TRUE(shape.demand[3]);
}

TEST(CapacityShape, DegenerateConfigsResolveEmpty) {
  EXPECT_EQ(CapacityShape::from_config(unit_cfg(1, 3)).demand_clients, 0u);
  EXPECT_EQ(CapacityShape::from_config(unit_cfg(4, 0)).demand_clients, 0u);
}

TEST(TimeExpanded, ArcCountBoundsTheBuiltGraph) {
  const CapacityShape shape = CapacityShape::from_config(unit_cfg(4, 2));
  const Topology topo = Topology::complete(4);
  for (const BarterModel model :
       {BarterModel::kCooperative, BarterModel::kStrictBarter}) {
    const TimeExpandedGraph g = build_time_expanded(shape, topo, 3, 2, model);
    EXPECT_LE(g.net.num_arcs(), time_expanded_arc_count(shape, topo, 3, model));
    if (model == BarterModel::kCooperative) {
      // No conditional arcs skipped in the unit cooperative case: the
      // formula is exact.
      EXPECT_EQ(g.net.num_arcs(), time_expanded_arc_count(shape, topo, 3, model));
    }
  }
}

TEST(TimeExpanded, PathFeasibilityThresholdIsDistancePlusPipeline) {
  // Chain 0-1-2-3: block b leaves the server at tick b+1 and needs 3 hops,
  // so client 3 holds both blocks first at horizon 4.
  const CapacityShape shape = CapacityShape::from_config(unit_cfg(4, 2));
  const Topology topo = Topology::from_graph(make_kary_tree(4, 1));
  EXPECT_FALSE(horizon_feasible(shape, topo, 3, 3, BarterModel::kCooperative));
  EXPECT_TRUE(horizon_feasible(shape, topo, 4, 3, BarterModel::kCooperative));
  // Monotone in the horizon.
  EXPECT_TRUE(horizon_feasible(shape, topo, 9, 3, BarterModel::kCooperative));
}

TEST(TimeExpanded, ServerReleaseScheduleSerializesBlocks) {
  // Complete n=2: the single client downloads one block per tick from the
  // server, but even with download 2 the server's unit upload serializes.
  EngineConfig cfg = unit_cfg(2, 4);
  cfg.download_capacity = 2;
  const CapacityShape shape = CapacityShape::from_config(cfg);
  const Topology topo = Topology::complete(2);
  EXPECT_FALSE(horizon_feasible(shape, topo, 3, 1, BarterModel::kCooperative));
  EXPECT_TRUE(horizon_feasible(shape, topo, 4, 1, BarterModel::kCooperative));
}

TEST(TimeExpanded, StrictCouplingCapsClientSourcedInflow) {
  // Diamond 0-1, 0-2, 1-3, 2-3 with server upload 2 and download 2: the
  // cooperative relaxation finishes client 3 at horizon 2 (both blocks land
  // simultaneously), but strict barter pairs client-client transfers, so
  // client 3 (upload 1) can absorb only one per tick.
  EngineConfig cfg = unit_cfg(4, 2);
  cfg.download_capacity = 2;
  cfg.server_upload_capacity = 2;
  const CapacityShape shape = CapacityShape::from_config(cfg);
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  g.finalize();
  const Topology topo = Topology::from_graph(g);
  EXPECT_TRUE(horizon_feasible(shape, topo, 2, 3, BarterModel::kCooperative));
  EXPECT_FALSE(horizon_feasible(shape, topo, 2, 3, BarterModel::kStrictBarter));
  EXPECT_TRUE(horizon_feasible(shape, topo, 3, 3, BarterModel::kStrictBarter));
}

TEST(TimeExpanded, MinCostFlowCountsTransferVolume) {
  // Chain 0-1-2, one block to client 2: two transfers minimum, and the unit
  // upload-arc costs make min-cost flow report exactly that.
  const CapacityShape shape = CapacityShape::from_config(unit_cfg(3, 1));
  const Topology topo = Topology::from_graph(make_kary_tree(3, 1));
  TimeExpandedGraph g = build_time_expanded(shape, topo, 2, 2, BarterModel::kCooperative);
  const auto result = g.net.min_cost_max_flow(g.source, g.sink, g.demand);
  EXPECT_EQ(result.flow, 1);
  EXPECT_EQ(result.cost, 2);
}

TEST(TickFlow, AcceptsARealizableTransferSet) {
  const CapacityShape shape = CapacityShape::from_config(unit_cfg(4, 2));
  const Topology topo = Topology::complete(4);
  const std::vector<Transfer> transfers = {{0, 1, 0}, {2, 3, 1}};
  EXPECT_EQ(tick_flow_feasible(shape, topo, transfers), std::nullopt);
  EXPECT_EQ(tick_flow_feasible(shape, topo, {}), std::nullopt);
}

TEST(TickFlow, RejectsUploadOverCapacity) {
  const CapacityShape shape = CapacityShape::from_config(unit_cfg(4, 2));
  const Topology topo = Topology::complete(4);
  const std::vector<Transfer> transfers = {{0, 1, 0}, {0, 2, 1}};
  const auto diag = tick_flow_feasible(shape, topo, transfers);
  ASSERT_TRUE(diag.has_value());
  EXPECT_NE(diag->find("1 of 2 transfers route"), std::string::npos);
}

TEST(TickFlow, RejectsDownloadOverCapacity) {
  const CapacityShape shape = CapacityShape::from_config(unit_cfg(4, 2));
  const Topology topo = Topology::complete(4);
  const std::vector<Transfer> transfers = {{0, 3, 0}, {1, 3, 1}};
  EXPECT_TRUE(tick_flow_feasible(shape, topo, transfers).has_value());
}

TEST(TickFlow, RejectsNonOverlayEdgesAndMalformedEndpoints) {
  const CapacityShape shape = CapacityShape::from_config(unit_cfg(4, 2));
  const Topology ring = Topology::from_graph(make_ring(4));
  const auto non_edge = tick_flow_feasible(shape, ring, {{0, 2, 0}});
  ASSERT_TRUE(non_edge.has_value());
  EXPECT_NE(non_edge->find("not an overlay edge"), std::string::npos);
  const auto loop = tick_flow_feasible(shape, ring, {{1, 1, 0}});
  ASSERT_TRUE(loop.has_value());
  EXPECT_NE(loop->find("malformed"), std::string::npos);
  EXPECT_TRUE(tick_flow_feasible(shape, ring, {{0, 9, 0}}).has_value());
}

}  // namespace
}  // namespace pob::flow
