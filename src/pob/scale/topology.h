// Neighbor adjacency for the mega-swarm engine, stored as CSR (one offsets
// array, one flat targets array) so a million-node overlay is two dense
// allocations instead of a million vectors. Complete graphs are answered
// arithmetically and never materialized — the n = 10^6 complete overlay
// would need ~4 TB of edges.
//
// Neighbor ordering is sorted ascending (skipping the node itself for the
// complete graph), matching Graph's finalized CSR, so a Topology built from
// a Graph and one built arithmetically agree on neighbor(u, idx) whenever
// the edge sets agree. The scale planner's per-node RNG indexes into this
// ordering, so the ordering is part of the deterministic contract.

#pragma once

#include <cstdint>
#include <vector>

#include "pob/core/types.h"
#include "pob/overlay/graph.h"
#include "pob/overlay/overlay.h"
#include "pob/scale/hugemem.h"

namespace pob::scale {

class Topology {
 public:
  /// The complete graph on `num_nodes` nodes, answered arithmetically.
  static Topology complete(std::uint32_t num_nodes);

  /// Copies a finalized Graph's adjacency into CSR form.
  static Topology from_graph(const Graph& graph);

  /// Materializes any Overlay by querying degree()/neighbor() per node.
  /// O(sum of degrees) — do not call on a large CompleteOverlay; use
  /// complete() for that.
  static Topology from_overlay(const Overlay& overlay);

  std::uint32_t num_nodes() const { return n_; }

  bool is_complete() const { return complete_; }

  std::uint32_t degree(NodeId u) const {
    if (complete_) return n_ - 1;
    return static_cast<std::uint32_t>(offsets_[u + 1] - offsets_[u]);
  }

  /// The idx-th neighbor of u, ascending id order, 0 <= idx < degree(u).
  NodeId neighbor(NodeId u, std::uint32_t idx) const {
    if (complete_) return idx < u ? idx : idx + 1;
    return targets_[offsets_[u] + idx];
  }

  /// Directed edge count (2x undirected); 0-cost summary for benches.
  std::uint64_t num_directed_edges() const {
    if (complete_) return static_cast<std::uint64_t>(n_) * (n_ - 1);
    return targets_.size();
  }

  /// Bytes held by the CSR arrays (0 for the arithmetic complete graph).
  std::uint64_t memory_bytes() const {
    return offsets_.size() * sizeof(std::uint64_t) +
           targets_.size() * sizeof(NodeId);
  }

 private:
  Topology() = default;

  std::uint32_t n_ = 0;
  bool complete_ = false;
  // Hugepage-backed where possible: the planner does millions of random
  // neighbor lookups per tick, and big pages keep those off the TLB-walk
  // path (see hugemem.h).
  HugeBuffer<std::uint64_t> offsets_;  // n + 1 entries when !complete_
  HugeBuffer<NodeId> targets_;
};

}  // namespace pob::scale
