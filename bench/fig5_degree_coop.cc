// E5 / Figure 5 — cooperative randomized algorithm on random regular
// overlays: completion time vs overlay degree, for k = 1000 and k = 2000 at
// n = 1000.
//
// Expected shape: T drops steeply with degree and converges to the
// complete-graph value once the degree is ~25 = Θ(log n), independent of k.
// The paper also notes the randomized algorithm on the hypercube-like
// overlay (avg degree ~10 at n = 1000) matches the complete graph; the last
// rows reproduce that comparison.

#include <iostream>
#include <memory>

#include "bench_util.h"
#include "pob/analysis/bounds.h"

namespace pob::bench {
namespace {

int main_impl(int argc, char** argv) {
  const Args args(argc, argv);
  TrialRunner trials(args);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 1000));
  const auto runs = static_cast<std::uint32_t>(args.get_int("runs", 3));
  std::vector<std::int64_t> ks = args.get_int_list("k", {1000, 2000});
  // Degrees below ~10 show the steep left side of the paper's plot; 3 is
  // the smallest degree where random regular graphs are reliably connected.
  std::vector<std::int64_t> degrees =
      args.get_int_list("degrees", {3, 4, 6, 10, 15, 20, 25, 30, 40, 60, 80, 100});
  if (args.has("quick")) {
    ks = {1000};
    degrees = {10, 25, 60};
  }

  Table table({"overlay", "degree", "k", "T (mean +- 95% CI)", "optimal"});
  for (const std::int64_t k64 : ks) {
    const auto k = static_cast<std::uint32_t>(k64);
    EngineConfig cfg;
    cfg.num_nodes = n;
    cfg.num_blocks = k;
    for (const std::int64_t d64 : degrees) {
      const auto d = static_cast<std::uint32_t>(d64);
      const TrialStats stats = trials(runs, [&](std::uint32_t i) {
        Rng graph_rng(trial_seed(0xF16'5000 + 89ull * d + 7ull * k, i));
        auto overlay =
            std::make_shared<GraphOverlay>(make_random_regular(n, d, graph_rng));
        return randomized_trial(cfg, std::move(overlay), {},
                                trial_seed(0xF16'5100 + 83ull * d + 5ull * k, i));
      });
      table.add_row({"random-regular", std::to_string(d), std::to_string(k),
                     fmt_ci(stats.completion.mean, stats.completion.ci95),
                     std::to_string(cooperative_lower_bound(n, k))});
    }
    // Hypercube-like overlay and complete-graph reference.
    {
      const Graph cube = make_hypercube_overlay(n);
      const double avg_degree = cube.average_degree();
      const TrialStats stats = trials(runs, [&](std::uint32_t i) {
        auto overlay = std::make_shared<GraphOverlay>(make_hypercube_overlay(n));
        return randomized_trial(cfg, std::move(overlay), {},
                                trial_seed(0xF16'5200 + 5ull * k, i));
      });
      table.add_row({"hypercube-like", fmt(avg_degree), std::to_string(k),
                     fmt_ci(stats.completion.mean, stats.completion.ci95),
                     std::to_string(cooperative_lower_bound(n, k))});
    }
    {
      const TrialStats stats = trials(runs, [&](std::uint32_t i) {
        return randomized_trial(cfg, std::make_shared<CompleteOverlay>(n), {},
                                trial_seed(0xF16'5300 + 5ull * k, i));
      });
      table.add_row({"complete", std::to_string(n - 1), std::to_string(k),
                     fmt_ci(stats.completion.mean, stats.completion.ci95),
                     std::to_string(cooperative_lower_bound(n, k))});
    }
  }
  std::cout << "# E5/Figure 5: cooperative randomized, T vs overlay degree (n = "
            << n << ", Random policy)\n";
  emit(args, table);
  trials.report(std::cout);
  return 0;
}

}  // namespace
}  // namespace pob::bench

int main(int argc, char** argv) { return pob::bench::main_impl(argc, argv); }
