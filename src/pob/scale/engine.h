// The mega-swarm engine: a structure-of-arrays reimplementation of the
// randomized cooperative protocol (§2.4) and its credit-limited barter
// variant (§3.2) designed for swarms of 10^6 nodes and beyond.
//
// Where core::Engine is general (any Scheduler, any Mechanism, machine-
// checked validation of every tick), scale::Engine fuses one protocol
// family into the engine itself and trades generality for density:
//
//   * possession is one contiguous arena of packed uint64 bitset rows
//     (n * ceil(k/64) words), not n separate BlockSet allocations;
//   * neighbor adjacency is CSR (scale::Topology), not a virtual Overlay;
//   * each tick runs in three phases — INTENT GENERATION sharded by sender
//     range, a MERGE sharded by receiver range, and an APPLY sharded by
//     receiver (state commit) and sender (upload accounting) — all three on
//     the pob/exp ThreadPool. The transfer stream and the final RunResult
//     are bit-identical at any --jobs value: intents are a pure function of
//     (seed, tick, node) via trial_seed-derived per-node RNG streams, every
//     merge constraint is per-receiver (so receiver shards decide
//     independently, each walking its receivers' intents in canonical node
//     order), and the accepted stream is reconstructed from per-intent
//     accept flags in the exact order the old serial merge emitted. Shard
//     counts are pure functions of n, never of the worker count.
//
// The generate phase — the single-core ceiling at n = 10^6, where endgame
// ticks make almost every probe useless — is accelerated three ways, none
// of which may change a single emitted intent:
//
//   * a HIERARCHICAL SUMMARY per node (one bit per 64-block possession
//     word, tail bits masked): `summary_has` marks words holding at least
//     one block, `summary_missing` marks words still missing at least one.
//     A probe u -> v can only be useful where summary_has(u) AND
//     summary_missing(v) is nonzero, so near-complete receivers and empty
//     chunks reject probes in O(ceil(k/4096)) words without touching the
//     possession rows. Both summaries are maintained in the apply commit.
//   * a VECTORIZED word-diff scan (AVX2 / NEON when compiled in, an
//     unrolled four-word uint64 sweep otherwise; ScanKernel::kScalar forces
//     the one-word reference loop) that records only the nonzero diff words
//     and their popcounts, in ascending word order — so block selection
//     consumes the identical RNG draw sequence as the historical scan.
//   * PROBE-OUTCOME CACHES, one per sender shard, keyed on (u, v) and both
//     endpoints' possession versions: a failed probe whose endpoints have
//     not gained blocks since is rejected O(1) without rescanning. The
//     version IS the per-node delivered-block count — both bump exactly
//     once per delivery and nothing else changes possession, so count_
//     doubles as the version array. On top of that sits a whole-node skip:
//     when a deterministic sweep of u's neighborhood finds no viable target
//     at all, u is marked sated until its own possession version changes.
//     That is sound because every viability predicate is monotone while u's
//     row is frozen — receivers only gain blocks (su \ sv shrinks),
//     departures and completions only remove targets, and a §3.2 credit
//     that blocks u -> v can only clear via a v -> u delivery, which bumps
//     u's version. A sated node emits nothing and would emit nothing, so
//     skipping its RNG stream entirely is bit-identical (per-node streams
//     are derived per tick and unused elsewhere).
//
// Because the saturated midgame (every probe useful) is latency-bound, the
// engine also fights the memory system directly: the summary/cache checks
// are gated behind a cheap expected-diff-size test so dense pairs skip
// straight to the scan; each sender shard generates in small batches that
// software-prefetch the first probe target's metadata and row one batch
// ahead; and the big arenas are madvise(MADV_HUGEPAGE)d so random row
// accesses stop paying 4 KiB TLB walks. None of this consumes RNG draws or
// changes a comparison outcome, so the intent stream is untouched.
//
// The engine emits only legal transfers by construction; it is NOT trusted
// on its own. scale::MirrorScheduler replays the exact same plan/apply
// semantics through core::Engine and the pob/check reference oracle, and
// the scenario fuzzer cross-checks all three on overlapping n (see
// pob/check/scenario.h, EngineKind::kScale) — including scalar vs
// vectorized scan kernels against each other.

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "pob/core/engine.h"
#include "pob/core/rng.h"
#include "pob/core/types.h"
#include "pob/exp/parallel.h"
#include "pob/mech/barter.h"
#include "pob/rand/randomized.h"
#include "pob/scale/scheduler.h"
#include "pob/scale/topology.h"

namespace pob::scale {

/// Which word-diff kernel the generate phase uses. kAuto picks the widest
/// compiled-in path (AVX2, then NEON, then the unrolled uint64 sweep);
/// kScalar forces the one-word-at-a-time reference loop. Both orders are
/// ascending-word and both record identical diffs, so every digest is
/// bit-identical across kernels — CI pins the 200k run both ways.
enum class ScanKernel : std::uint8_t { kAuto = 0, kScalar = 1 };

/// The name of the path `kernel` resolves to in this build: "avx2", "neon"
/// or "unrolled" for kAuto (compile-time dispatch), "scalar" for kScalar.
const char* scan_kernel_name(ScanKernel kernel);

struct ScaleOptions {
  /// Block selection within u \ v: uniform random or globally rarest first
  /// (§2.4 / §3.2.4's "perfect statistics").
  BlockPolicy policy = BlockPolicy::kRandom;

  /// Neighbor probes per upload slot before the node gives up for the tick.
  /// The practical handshake protocol: no exhaustive fallback scan — at
  /// n = 10^6 an O(degree) scan per idle node would dominate the tick.
  std::uint32_t max_probes = 16;

  /// 0 = cooperative (no constraint); >= 1 enables the §3.2 credit-limited
  /// barter predicate: client u uploads to client v only while the pairwise
  /// net (pre-tick ledger) stays below the limit. The emitted stream always
  /// satisfies CreditLimited::check_tick.
  ///
  /// Under kTriangularBarter the limit must be >= 1: the deterministic
  /// schedule never consults the ledger (it is CyclicBarter(3, 1)-compliant
  /// by construction), but the engine keeps it live so mirrors and tests can
  /// audit the stream under the §3.3 mechanism.
  std::uint32_t credit_limit = 0;

  /// Which ScaleScheduler generates intents; see SchedKind (scheduler.h).
  /// The deterministic kinds place hard requirements on the config —
  /// power-of-two n, uniform unit upload capacity, no churn, and per-kind
  /// topology/capacity/credit rules — each rejected with a distinct
  /// EngineViolation at construction.
  SchedKind scheduler = SchedKind::kRandomized;

  /// Nodes per intent shard in the parallel generation phase. Shard count
  /// is a pure function of n (never of the job count), so chunk assignment
  /// cannot leak into results.
  std::uint32_t shard_nodes = 4096;

  /// Accumulate per-phase wall-clock (generate / merge / apply) across the
  /// ticks of one run() call, readable via phase_timings(). Off by default:
  /// the two clock reads per phase are cheap but pure overhead for fuzzing
  /// and tests.
  bool collect_phase_timings = false;

  /// Word-diff kernel selection; see ScanKernel. Results are identical
  /// either way — kScalar exists so tests and CI can prove exactly that.
  ScanKernel scan_kernel = ScanKernel::kAuto;

  /// 0 = the paper's random block demand. >= 1 enables SEQUENTIAL demand
  /// with a sliding playback window (the pob/scale/stream VoD mode): a
  /// probe u -> v is viable only if the lowest block of su \ sv lies inside
  /// v's window [first_missing(v), first_missing(v) + stream_window), and
  /// the pick is always that lowest block (in-order priority, no RNG draw —
  /// the draw sequence differs from random mode by design; within one mode
  /// the stream stays bit-identical at any job count). Because a receiver's
  /// window advances when its prefix grows, a previously useless sender can
  /// become useful without the SENDER's version changing — so the sated-
  /// node skip is disabled in this mode (the probe cache stays sound: its
  /// entries are keyed on both endpoints' versions, and the window bound is
  /// a pure function of the receiver's row). Randomized schedulers only.
  std::uint32_t stream_window = 0;
};

/// Wall-clock seconds accumulated per tick phase (see
/// ScaleOptions::collect_phase_timings); all zero when collection is off.
/// run() resets the accumulators on entry, so each call reports only its
/// own ticks; a lockstep drive accumulates across all its plan/apply calls.
struct PhaseTimings {
  double generate_seconds = 0.0;
  double merge_seconds = 0.0;
  double apply_seconds = 0.0;
};

class Engine {
 public:
  /// `config` uses the same EngineConfig as core::Engine; record_trace,
  /// departures, depart_on_complete, heterogeneous capacities, max_ticks
  /// and stall detection all behave identically. `topology->num_nodes()`
  /// must equal config.num_nodes. `seed` plays the role a scheduler Rng
  /// plays for core runs: the full run is a pure function of
  /// (config, topology, options, seed).
  Engine(const EngineConfig& config, std::shared_ptr<const Topology> topology,
         ScaleOptions options, std::uint64_t seed);

  /// Runs up to the tick cap (config.max_ticks per call, or the default
  /// cap) on `jobs` workers (0 = all cores, 1 = serial) and returns a
  /// RunResult with the exact same shape and semantics as core::Engine's —
  /// including dropped_transfers (always 0: the planner reads live state
  /// and never names a departed node) and active_slots_per_tick.
  ///
  /// run() is RESUMABLE: a second call continues the same swarm from where
  /// the previous call stopped (tick numbering, departures, the credit
  /// ledger and the depart-on-complete queue all carry over), so a capped
  /// run can be driven in windows. Per-call fields (ticks_executed,
  /// total_transfers, uploads_per_tick, trace, stall detection, phase
  /// timings) cover only that call's ticks; cumulative state (completion
  /// ticks, uploads_per_node, departed) reports global totals. Splitting
  /// one run into windows changes no transfer and no completion tick.
  /// Cannot be mixed with the lockstep API below.
  RunResult run(unsigned jobs = 1);

  // --- Lockstep API ---------------------------------------------------
  // MirrorScheduler (and tests) drive the engine one tick at a time so the
  // identical transfer stream can be validated by core::Engine and the
  // reference oracle. plan() runs phases 1+2 against the current state;
  // apply() commits an accepted stream; deactivate() injects departures
  // (run() handles config.departures itself — lockstep callers own churn).

  /// Appends this tick's merged transfer stream to `out`. Runs the sharded
  /// phases on the calling thread; produces exactly what run() would commit
  /// on this tick at any job count.
  void plan(Tick tick, std::vector<Transfer>& out);

  /// Commits a planned stream: possession bits and summaries, possession
  /// versions, replica counts, completion ticks, per-node upload totals,
  /// and the credit ledger. Serial; run() uses the receiver/sender-sharded
  /// commit instead, which leaves the engine in the identical state.
  void apply(Tick tick, std::span<const Transfer> accepted);

  /// Removes a node (idempotent; the server cannot depart): its capacity
  /// leaves the active upload slots, its replicas stop counting, and it no
  /// longer needs to complete.
  void deactivate(NodeId node);

  // --- Stream-driver API (pob/scale/stream) ----------------------------
  // The hybrid tick+event layer constructs the engine with every late
  // arrival pre-deactivated, then drives variable-population ticks through
  // step() while injecting arrivals and rate changes between ticks. All
  // mutators below are serial, called only between ticks.

  /// (Re)admits a node (idempotent; no-op for an active node): its capacity
  /// rejoins the active upload slots, its held blocks count as replicas
  /// again, and — because a fresh incomplete target appeared — every sated
  /// stamp in the swarm is invalidated (batched: cleared once at the next
  /// plan, not per arrival).
  void activate(NodeId node);

  /// Changes a node's capacities mid-run (client rule d >= u enforced,
  /// d >= 1; the server's download capacity is ignored as always). Takes
  /// effect at the next planned tick.
  void set_capacity(NodeId node, std::uint32_t up, std::uint32_t down);

  /// One variable-population tick on a caller-owned pool (nullptr = the
  /// calling thread): applies due config departures and the depart-on-
  /// complete queue exactly like run()'s loop head, then runs the sharded
  /// plan and the sharded commit. Returns the tick's accepted stream (valid
  /// until the next step/plan call). Like plan(), poisons run().
  std::span<const Transfer> step(ThreadPool* pool);

  /// Lowest block `node` is missing, or k if complete — O(summary words)
  /// via the missing-summary, then one possession word. The playback prefix
  /// of the sequential-demand mode: every block below it is held.
  BlockId first_missing(NodeId node) const;

  Tick current_tick() const { return tick_; }
  std::uint32_t blocks_held(NodeId node) const { return count_[node]; }
  /// Completion tick of `node` (0 = not complete yet).
  Tick node_completion(NodeId node) const { return completion_[node]; }
  std::uint64_t active_upload_slots() const { return active_slots_; }
  std::uint32_t num_departed() const { return num_departed_; }
  Count node_uploads(NodeId node) const { return uploads_per_node_[node]; }

  bool is_active(NodeId node) const { return active_[node] != 0; }
  bool is_complete(NodeId node) const { return count_[node] >= k_; }
  bool all_complete() const { return num_incomplete_ == 0; }
  bool has(NodeId node, BlockId block) const {
    return (row(node)[block >> 6] >> (block & 63)) & 1u;
  }
  /// Highest block id `node` holds, kNoBlock if none — O(summary words) via
  /// the has-summary, then one possession word. The binomial pipeline's
  /// transmission rank is top_block + 1 (block ids are rank-ordered).
  BlockId top_block(NodeId node) const;

  const EngineConfig& config() const { return cfg_; }
  const Topology& topology() const { return *topo_; }
  const ScaleOptions& options() const { return opt_; }

  // --- Summary / version introspection (tests, invariant checks) -------

  /// Words per per-node summary row: ceil(ceil(k/64) / 64).
  std::uint32_t summary_words_per_row() const { return sum_stride_; }
  /// Summary word `g` of `node`: bit w set iff possession word (g*64 + w)
  /// holds at least one block.
  std::uint64_t summary_has_word(NodeId node, std::uint32_t g) const {
    return summary_has_[static_cast<std::size_t>(node) * sum_stride_ + g];
  }
  /// Summary word `g` of `node`: bit w set iff possession word (g*64 + w)
  /// is still missing at least one of its (tail-masked) blocks.
  std::uint64_t summary_missing_word(NodeId node, std::uint32_t g) const {
    return summary_missing_[static_cast<std::size_t>(node) * sum_stride_ + g];
  }
  /// Monotone counter bumped once per block `node` receives; probe-cache
  /// entries and the sated-node skip are keyed on it. It is exactly the
  /// delivered-block count (the server's stays at k forever): deliveries
  /// are the only possession changes, so count and version coincide.
  std::uint32_t possession_version(NodeId node) const { return count_[node]; }

  /// Per-phase wall-clock for the current/most recent run() call (or the
  /// lockstep drive so far); zeros unless options().collect_phase_timings.
  PhaseTimings phase_timings() const { return timings_; }

  /// Arena + index + tick-scratch memory actually allocated, for bench
  /// reporting: possession arena and summaries, per-node arrays (counts —
  /// which double as possession versions — sated stamps, capacities, upload
  /// totals), topology CSR, the
  /// per-shard intent vectors, diff-scan scratch and probe caches, the
  /// merge/apply scratch (buckets, accept flags, admission tables,
  /// frequency scratch), and the credit ledger.
  std::uint64_t state_bytes() const;

 private:
  // The randomized scheduler is the probing logic's historical home — it
  // keeps calling straight into generate_range and the private scratch
  // types; the deterministic schedulers use only the public introspection
  // surface (top_block, has, config).
  friend class RandomizedScheduler;

  // A (receiver, block) admission table: open-addressed, epoch-stamped so a
  // tick reset is O(1) and a million inserts touch no allocator. One table
  // per receiver shard; a receiver's deliveries land in exactly one table.
  class PairTable {
   public:
    void begin_tick(std::size_t expected);
    bool insert(std::uint64_t key);  ///< false if already present this tick

    /// Warms the home slot of a key about to be inserted (the table is a
    /// random-indexed miss per insert otherwise; the admission loop runs a
    /// few keys ahead of itself).
    void prefetch(std::uint64_t key) const {
      __builtin_prefetch(slots_.data() + (hash(key) & mask_), 1, 1);
    }

    std::uint64_t memory_bytes() const {
      return slots_.capacity() * sizeof(Slot);
    }

   private:
    // splitmix64 finalizer; good avalanche for open-addressed probing.
    static std::uint64_t hash(std::uint64_t x) {
      x += 0x9e3779b97f4a7c15ULL;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      return x ^ (x >> 31);
    }

    // Key and epoch share a slot so a probe touches one cache line, not a
    // line in each of two parallel arrays.
    struct Slot {
      std::uint64_t key;
      std::uint32_t epoch;
    };
    std::vector<Slot> slots_;
    std::uint64_t mask_ = 0;
    std::uint32_t epoch_ = 0;
  };

  // A direct-mapped cache of failed usefulness scans, one per sender shard
  // (shard s only ever probes senders it owns, so no cross-thread access).
  // An entry says "su \ sv was empty when u was at version vu and v at
  // version vv"; it is consulted only when both versions still match, so a
  // hit is exact, never heuristic — collisions merely overwrite. Misses
  // change nothing observable: the cache can only skip rescans.
  class ProbeCache {
   public:
    void configure(std::uint32_t shard_width);
    bool is_useless(NodeId u, NodeId v, std::uint32_t ver_u,
                    std::uint32_t ver_v) const;
    void note_useless(NodeId u, NodeId v, std::uint32_t ver_u, std::uint32_t ver_v);

    std::uint64_t memory_bytes() const {
      return keys_.capacity() * sizeof(std::uint64_t) +
             (ver_from_.capacity() + ver_to_.capacity()) * sizeof(std::uint32_t);
    }

   private:
    std::vector<std::uint64_t> keys_;  // (u << 32) | v; kNoNode-based empty
    std::vector<std::uint32_t> ver_from_;
    std::vector<std::uint32_t> ver_to_;
    std::uint64_t mask_ = 0;
  };

  // One intent, tagged with its global position in the canonical
  // (sender-node-ordered) intent stream so accept flags and the emitted
  // stream can be reconstructed in that order after receiver-sharded
  // admission.
  struct MergeItem {
    Transfer tr;
    std::uint32_t idx;
  };

  // Per-shard scratch for the fused usefulness-scan / block-pick: one pass
  // over su & ~sv records the NONZERO diff words (ascending word index),
  // their popcounts and the total, and the selection (random rank-select or
  // rarest-first walk) reuses the recording instead of re-walking the
  // possession rows. Sparse by construction: endgame scans record one or
  // two entries, not ceil(k/64).
  struct DiffScan {
    std::vector<std::uint32_t> widx;   // possession-word index per entry
    std::vector<std::uint64_t> words;  // su[w] & ~sv[w], nonzero only
    std::vector<std::uint32_t> pc;     // popcount per entry
    std::uint32_t entries = 0;
    std::uint32_t total = 0;  // sum of pc over entries

    std::uint64_t memory_bytes() const {
      return widx.capacity() * sizeof(std::uint32_t) +
             words.capacity() * sizeof(std::uint64_t) +
             pc.capacity() * sizeof(std::uint32_t);
    }
  };

  std::uint64_t* row(NodeId node) {
    return rows_ + static_cast<std::size_t>(node) * stride_;
  }
  const std::uint64_t* row(NodeId node) const {
    return rows_ + static_cast<std::size_t>(node) * stride_;
  }
  const std::uint64_t* summary_has_row(NodeId node) const {
    return summary_has_.data() + static_cast<std::size_t>(node) * sum_stride_;
  }
  const std::uint64_t* summary_missing_row(NodeId node) const {
    return summary_missing_.data() + static_cast<std::size_t>(node) * sum_stride_;
  }

  /// The full-word mask of possession word w (tail-masked for the last word
  /// when k is not a multiple of 64).
  std::uint64_t word_full_mask(std::uint32_t w) const {
    return (w + 1 == stride_) ? tail_mask_ : ~0ULL;
  }

  std::uint32_t recv_shard_of(NodeId v) const { return v >> recv_shift_; }

  /// O(summary words): true iff some chunk where u holds blocks is still
  /// incomplete at v — the necessary condition for a useful probe.
  bool summary_overlap(NodeId u, NodeId v) const;

  /// Fills `scan` with the nonzero words of su \ sv (ascending word index)
  /// via the configured kernel; returns scan.total != 0. `guided` allows
  /// the summary-driven sparse walk (the caller has already paid for the
  /// summary rows); false goes straight to the linear vector sweep. Every
  /// path records identical entries, so the choice is perf-only.
  bool scan_pair(NodeId u, NodeId v, DiffScan& scan, bool guided) const;

  /// Sequential-demand viability (opt_.stream_window != 0): true iff the
  /// lowest block of the recorded diff lies inside v's sliding playback
  /// window [first_missing(v), first_missing(v) + stream_window).
  bool window_admits(NodeId v, const DiffScan& scan) const;

  /// Picks a block from a non-empty DiffScan; consumes the identical RNG
  /// draws (one below(total), or the rarest-first reservoir sequence) as
  /// the historical two-pass pick_block. Sequential-demand mode always
  /// picks the lowest recorded bit and draws nothing.
  BlockId pick_from_scan(const DiffScan& scan, Rng& rng) const;

  /// Deterministic sweep of u's whole neighborhood: true iff no neighbor is
  /// currently a viable probe target (so u cannot emit an intent this tick
  /// or any later tick until u's possession version changes — see the
  /// argument in the header comment). Populates the probe cache as it goes.
  bool neighborhood_exhausted(NodeId u, DiffScan& scan, ProbeCache& cache);

  /// Commits one delivery's summary bookkeeping for `to` after the
  /// possession bit of `block` has been set in `word`. (The version bump is
  /// the caller's count_ increment — count doubles as the version.)
  void note_delivery(NodeId to, BlockId block, std::uint64_t word);

  /// Emits node u's intents. `rng` is u's per-(tick, node) stream with the
  /// first below(degree) draw already consumed — `first_probe` is that
  /// draw's neighbor — and the caller has verified u is eligible (active,
  /// holds blocks, not sated, has slots and neighbors).
  void generate_node(NodeId u, Rng& rng, NodeId first_probe,
                     std::vector<Transfer>& out, DiffScan& scan, ProbeCache& cache);
  /// Runs generate_node over [first, last) in small batches: a lead pass
  /// seeds each eligible node's RNG, peeks its first probe target and
  /// prefetches that target's metadata and possession row, so the emit pass
  /// finds the lines resident instead of stalling per probe.
  void generate_range(std::uint64_t tick_base, NodeId first, NodeId last,
                      std::vector<Transfer>& out, DiffScan& scan, ProbeCache& cache);
  void plan_phases(Tick tick, std::vector<Transfer>& out, ThreadPool* pool);
  /// The serial commit loop shared by the public apply() and the sparse-tick
  /// fast path of apply_merged().
  void commit_serial(Tick tick, std::span<const Transfer> accepted);
  /// Commits the stream the immediately preceding plan_phases() call
  /// produced, reusing its receiver buckets and accept flags: possession /
  /// summaries / counts / completion sharded by receiver, upload totals
  /// sharded by sender (the accepted stream is non-decreasing in `from`),
  /// frequency deltas reduced from per-shard scratch in fixed shard order,
  /// ledger commit serial. Leaves the engine in the exact state apply()
  /// would.
  void apply_merged(Tick tick, std::span<const Transfer> accepted, ThreadPool* pool);

  EngineConfig cfg_;
  std::shared_ptr<const Topology> topo_;
  ScaleOptions opt_;
  std::uint64_t seed_ = 0;

  std::uint32_t n_ = 0;
  std::uint32_t k_ = 0;
  std::uint32_t stride_ = 0;      // words per possession row
  std::uint32_t sum_stride_ = 0;  // words per summary row
  std::uint64_t tail_mask_ = ~0ULL;  // full mask of the last possession word

  // Structure-of-arrays swarm state. The possession version of a node is
  // count_[node] — see possession_version(). The three random-read arenas
  // live on hugepage-preferring buffers (hugemem.h): TLB relief, and a
  // prerequisite for the generate phase's software prefetch to fire at all.
  HugeBuffer<std::uint64_t> bits_;  // possession arena + alignment slack
  std::uint64_t* rows_ = nullptr;   // 64-byte-aligned base inside bits_
  HugeBuffer<std::uint64_t> summary_has_;      // n * sum_stride hierarchy
  HugeBuffer<std::uint64_t> summary_missing_;  // n * sum_stride hierarchy
  std::vector<std::uint32_t> sated_ver_;  // version+1 stamp when exhausted
  bool sated_dirty_ = false;  // an arrival added targets; clear stamps at next plan
  HugeBuffer<std::uint32_t> count_;       // blocks held per node
  std::vector<Tick> completion_;          // completion tick per node (0 = not)
  HugeBuffer<std::uint8_t> active_;       // 0 once departed
  std::vector<std::uint32_t> freq_;       // per-block replica count (active nodes)
  std::vector<std::uint32_t> up_caps_;    // resolved per-node capacities
  std::vector<std::uint32_t> down_caps_;
  bool down_caps_unlimited_ = false;  // merge skips capacity bookkeeping
  std::vector<Count> uploads_per_node_;
  std::uint32_t num_incomplete_ = 0;
  std::uint32_t num_departed_ = 0;
  std::uint64_t active_slots_ = 0;
  CreditLedger ledger_;  // §3.2 pairwise net-transfer ledger (credit mode)

  // Receiver shards: contiguous node-id ranges of width recv_width_ (a
  // power of two, so the merge's three million-intent passes shard with a
  // shift instead of an integer division). Every merge/apply constraint
  // that crosses sender shards is per-receiver, so shard r exclusively owns
  // down_used_/down_stamp_/count_/completion_/possession+summary rows for
  // its range. All three values are pure functions of n — and because each
  // receiver lives wholly inside one shard and shards decide independently
  // in canonical order, the admitted stream does not depend on the widths.
  std::uint32_t recv_shards_ = 1;
  std::uint32_t recv_width_ = 1;
  std::uint32_t recv_shift_ = 0;

  // Resumable-run cursor: global tick counter and the next config departure
  // to apply, both carried across run() calls.
  Tick tick_ = 0;
  std::vector<std::pair<Tick, NodeId>> departures_;  // sorted copy
  std::size_t next_departure_ = 0;

  // The intent generator (scheduler.h); constructed from opt_.scheduler,
  // owns its own per-shard scratch (the randomized probe scans and caches
  // live here now, not in the engine).
  std::unique_ptr<ScaleScheduler> sched_;

  // Tick scratch (reused, never shrunk).
  std::vector<std::vector<Transfer>> shard_intents_;
  std::vector<std::uint32_t> down_used_;    // stamped by down_stamp_
  std::vector<Tick> down_stamp_;
  std::vector<PairTable> delivered_;        // one per receiver shard
  std::vector<std::size_t> intent_offsets_; // canonical stream offsets, S+1
  std::vector<std::uint32_t> scatter_pos_;  // S x R counts, then cursors
  std::vector<std::uint32_t> bucket_offsets_;  // R+1 into bucket_
  std::vector<MergeItem> bucket_;           // intents grouped by recv shard
  std::vector<std::uint8_t> accept_;        // admission flag per intent idx
  std::vector<std::uint32_t> emit_offsets_; // accepted-stream offsets, S+1
  ShardScratch<std::uint32_t> freq_scratch_;   // R x k frequency deltas
  std::vector<std::vector<NodeId>> leaving_shards_;  // per recv shard
  std::vector<std::uint32_t> completions_scratch_;   // per recv shard
  std::vector<NodeId> leaving_;  // depart_on_complete queue (run() only)
  std::vector<Transfer> accepted_;

  PhaseTimings timings_;
  bool lockstep_ = false;  // plan() called; run() may no longer be used

  // Set by plan_phases when the tick's intent total is at or below the
  // sparse threshold: the merge ran serially in canonical order (no buckets,
  // no accept flags), so apply_merged must commit serially too. A pure
  // function of the intent stream, hence identical at any job count. This is
  // what makes million-tick deterministic runs (riffle: T = n + k - 2 ticks
  // of ~k intents) affordable — the O(shards * recv_shards) merge scaffolding
  // and the O(R * k) frequency reduce would otherwise dominate every tick.
  bool sparse_tick_ = false;
};

}  // namespace pob::scale
