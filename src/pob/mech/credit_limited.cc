#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "pob/mech/barter.h"

namespace pob {
namespace {

std::uint64_t ordered_key(NodeId a, NodeId b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

CreditLimited::CreditLimited(std::uint32_t credit_limit) : credit_limit_(credit_limit) {
  if (credit_limit_ < 1) {
    throw std::invalid_argument("CreditLimited: credit limit must be >= 1");
  }
}

std::optional<std::string> CreditLimited::check_tick(Tick /*tick*/,
                                                     std::span<const Transfer> transfers,
                                                     const SwarmState& /*state*/) {
  // Net deltas for this tick, keyed on the ordered (min,max) pair with the
  // same sign convention as the ledger.
  std::unordered_map<std::uint64_t, std::int64_t> delta;
  for (const Transfer& tr : transfers) {
    if (tr.from == kServer) continue;
    if (tr.to == kServer) {
      return "client " + std::to_string(tr.from) + " uploads to the server";
    }
    if (tr.from < tr.to) {
      delta[ordered_key(tr.from, tr.to)] += 1;
    } else {
      delta[ordered_key(tr.to, tr.from)] -= 1;
    }
  }
  for (const auto& [k, d] : delta) {
    const auto lo = static_cast<NodeId>(k >> 32);
    const auto hi = static_cast<NodeId>(k & 0xffffffffULL);
    const std::int64_t end = ledger_.net(lo, hi) + d;  // net lo -> hi after tick
    const std::int64_t limit = static_cast<std::int64_t>(credit_limit_);
    if (end > limit || -end > limit) {
      std::ostringstream os;
      os << "credit limit " << credit_limit_ << " exceeded between clients " << lo
         << " and " << hi << " (end-of-tick net " << end << ")";
      return os.str();
    }
  }
  return std::nullopt;
}

void CreditLimited::commit_tick(Tick /*tick*/, std::span<const Transfer> transfers,
                                const SwarmState& /*state*/) {
  for (const Transfer& tr : transfers) {
    if (tr.from == kServer || tr.to == kServer) continue;
    ledger_.record(tr.from, tr.to);
  }
}

bool CreditLimited::may_upload(NodeId from, NodeId to) const {
  if (from == kServer) return true;
  if (to == kServer) return false;
  return ledger_.net(from, to) + 1 <= static_cast<std::int64_t>(credit_limit_);
}

}  // namespace pob
