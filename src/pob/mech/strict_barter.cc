#include <algorithm>
#include <sstream>
#include <vector>

#include "pob/mech/barter.h"

namespace pob {

std::optional<std::string> StrictBarter::check_tick(Tick /*tick*/,
                                                    std::span<const Transfer> transfers,
                                                    const SwarmState& /*state*/) {
  // A client->client transfer u->v must be matched (with multiplicity) by a
  // v->u transfer in the same tick. Represent each client transfer as a
  // signed directed-pair record and require every (unordered pair)'s u->v
  // and v->u counts to be equal.
  std::vector<std::uint64_t> directed;  // (min << 33) | (max << 1) | dir
  directed.reserve(transfers.size());
  for (const Transfer& tr : transfers) {
    if (tr.from == kServer) continue;  // server gives freely
    if (tr.to == kServer) {
      return "client " + std::to_string(tr.from) + " uploads to the server";
    }
    const NodeId lo = std::min(tr.from, tr.to);
    const NodeId hi = std::max(tr.from, tr.to);
    const std::uint64_t dir = tr.from == lo ? 0 : 1;
    directed.push_back((static_cast<std::uint64_t>(lo) << 33) |
                       (static_cast<std::uint64_t>(hi) << 1) | dir);
  }
  std::sort(directed.begin(), directed.end());
  // Scan runs of the same unordered pair; dir bits must balance.
  for (std::size_t i = 0; i < directed.size();) {
    const std::uint64_t pair = directed[i] >> 1;
    std::int64_t bal = 0;
    std::size_t j = i;
    while (j < directed.size() && (directed[j] >> 1) == pair) {
      bal += (directed[j] & 1) ? -1 : 1;
      ++j;
    }
    if (bal != 0) {
      std::ostringstream os;
      os << "unreciprocated exchange between clients " << (pair >> 32) << " and "
         << (pair & 0xffffffffULL);
      return os.str();
    }
    i = j;
  }
  return std::nullopt;
}

}  // namespace pob
