#include "pob/check/reference_engine.h"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>
#include <utility>

#include "pob/mech/barter.h"

namespace pob::check {
namespace {

using PairKey = std::pair<NodeId, NodeId>;  // (min, max)

PairKey pair_key(NodeId a, NodeId b) {
  return a < b ? PairKey{a, b} : PairKey{b, a};
}

/// Reference re-implementation of the §3 legality predicates over one tick's
/// simultaneous transfer set. The ledger is a plain std::map with the same
/// sign convention as pob::CreditLedger: positive net(lo, hi) means lo has
/// sent more blocks to hi than it received back.
class RefMechanism {
 public:
  explicit RefMechanism(const MechanismSpec& spec) : spec_(spec) {}

  std::optional<std::string> check(const std::vector<Transfer>& transfers) const {
    switch (spec_.kind) {
      case MechanismSpec::Kind::kNone:
        return std::nullopt;
      case MechanismSpec::Kind::kStrictBarter:
        return check_strict(transfers);
      case MechanismSpec::Kind::kCreditLimited:
        return check_credit(transfers, nullptr);
      case MechanismSpec::Kind::kCyclicBarter: {
        std::vector<char> cleared;
        if (auto err = classify_cycles(transfers, cleared)) return err;
        return check_credit(transfers, &cleared);
      }
    }
    return std::nullopt;
  }

  void commit(const std::vector<Transfer>& transfers) {
    if (spec_.kind != MechanismSpec::Kind::kCreditLimited &&
        spec_.kind != MechanismSpec::Kind::kCyclicBarter) {
      return;
    }
    std::vector<char> cleared(transfers.size(), 0);
    if (spec_.kind == MechanismSpec::Kind::kCyclicBarter) {
      (void)classify_cycles(transfers, cleared);  // validated in check()
    }
    for (std::size_t i = 0; i < transfers.size(); ++i) {
      const Transfer& tr = transfers[i];
      if (tr.from == kServer || tr.to == kServer || cleared[i]) continue;
      const PairKey k = pair_key(tr.from, tr.to);
      ledger_[k] += tr.from == k.first ? 1 : -1;
    }
  }

 private:
  std::int64_t net(const PairKey& k) const {
    const auto it = ledger_.find(k);
    return it == ledger_.end() ? 0 : it->second;
  }

  static std::optional<std::string> check_strict(const std::vector<Transfer>& transfers) {
    // Every client pair's u->v and v->u transfer counts must be equal.
    std::map<PairKey, std::int64_t> bal;
    for (const Transfer& tr : transfers) {
      if (tr.from == kServer) continue;
      if (tr.to == kServer) {
        return "client " + std::to_string(tr.from) + " uploads to the server";
      }
      const PairKey k = pair_key(tr.from, tr.to);
      bal[k] += tr.from == k.first ? 1 : -1;
    }
    for (const auto& [k, b] : bal) {
      if (b != 0) {
        std::ostringstream os;
        os << "unreciprocated exchange between clients " << k.first << " and "
           << k.second;
        return os.str();
      }
    }
    return std::nullopt;
  }

  /// |end-of-tick net| <= credit_limit for every pair touched this tick,
  /// counting only uncleared transfers when `cleared` is provided.
  std::optional<std::string> check_credit(const std::vector<Transfer>& transfers,
                                          const std::vector<char>* cleared) const {
    std::map<PairKey, std::int64_t> delta;
    for (std::size_t i = 0; i < transfers.size(); ++i) {
      const Transfer& tr = transfers[i];
      if (tr.from == kServer) continue;
      if (tr.to == kServer) {
        return "client " + std::to_string(tr.from) + " uploads to the server";
      }
      if (cleared != nullptr && (*cleared)[i]) continue;
      const PairKey k = pair_key(tr.from, tr.to);
      delta[k] += tr.from == k.first ? 1 : -1;
    }
    const auto limit = static_cast<std::int64_t>(spec_.credit_limit);
    for (const auto& [k, d] : delta) {
      const std::int64_t end = net(k) + d;
      if (end > limit || -end > limit) {
        std::ostringstream os;
        os << "credit limit " << spec_.credit_limit << " exceeded between clients "
           << k.first << " and " << k.second << " (end-of-tick net " << end << ")";
        return os.str();
      }
    }
    return std::nullopt;
  }

  /// An edge clears iff it lies on a directed cycle of client transfers of
  /// length <= max_cycle_len — equivalently, iff a directed path of at most
  /// max_cycle_len - 1 edges runs from its receiver back to its sender. BFS
  /// shortest paths make that criterion order-independent and obviously
  /// correct, unlike the fast engine's path-clearing DFS (whose cleared set
  /// it must nonetheless equal: every edge on a found cycle of length <= L
  /// has a return path of length <= L - 1 along that same cycle).
  std::optional<std::string> classify_cycles(const std::vector<Transfer>& transfers,
                                             std::vector<char>& cleared) const {
    cleared.assign(transfers.size(), 0);
    std::map<NodeId, std::vector<NodeId>> out;
    for (std::size_t i = 0; i < transfers.size(); ++i) {
      const Transfer& tr = transfers[i];
      if (tr.from == kServer) {
        cleared[i] = 1;  // the server gives freely
        continue;
      }
      if (tr.to == kServer) {
        return "client " + std::to_string(tr.from) + " uploads to the server";
      }
      out[tr.from].push_back(tr.to);
    }
    for (std::size_t i = 0; i < transfers.size(); ++i) {
      const Transfer& tr = transfers[i];
      if (tr.from == kServer) continue;
      // BFS from tr.to, looking for tr.from within max_cycle_len - 1 hops.
      std::map<NodeId, std::uint32_t> dist;
      std::deque<NodeId> queue;
      dist[tr.to] = 0;
      queue.push_back(tr.to);
      while (!queue.empty()) {
        const NodeId u = queue.front();
        queue.pop_front();
        const std::uint32_t du = dist[u];
        if (u == tr.from) break;
        if (du + 1 > spec_.max_cycle_len - 1) continue;
        const auto it = out.find(u);
        if (it == out.end()) continue;
        for (const NodeId v : it->second) {
          if (dist.count(v) == 0) {
            dist[v] = du + 1;
            queue.push_back(v);
          }
        }
      }
      const auto hit = dist.find(tr.from);
      if (hit != dist.end() && hit->second + 1 <= spec_.max_cycle_len) cleared[i] = 1;
    }
    return std::nullopt;
  }

  MechanismSpec spec_;
  std::map<PairKey, std::int64_t> ledger_;
};

}  // namespace

std::string MechanismSpec::describe() const {
  switch (kind) {
    case Kind::kNone:
      return "none";
    case Kind::kStrictBarter:
      return "strict";
    case Kind::kCreditLimited:
      return "credit:" + std::to_string(credit_limit);
    case Kind::kCyclicBarter:
      return "cyclic:" + std::to_string(max_cycle_len) + ":" +
             std::to_string(credit_limit);
  }
  return "?";
}

std::unique_ptr<Mechanism> make_mechanism(const MechanismSpec& spec) {
  switch (spec.kind) {
    case MechanismSpec::Kind::kNone:
      return nullptr;
    case MechanismSpec::Kind::kStrictBarter:
      return std::make_unique<StrictBarter>();
    case MechanismSpec::Kind::kCreditLimited:
      return std::make_unique<CreditLimited>(spec.credit_limit);
    case MechanismSpec::Kind::kCyclicBarter:
      return std::make_unique<CyclicBarter>(spec.max_cycle_len, spec.credit_limit);
  }
  return nullptr;
}

std::uint64_t fingerprint_frequencies(std::span<const std::uint32_t> freq) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (const std::uint32_t f : freq) {
    h = (h ^ f) * 0x100000001b3ULL;
  }
  return h;
}

void RecordingScheduler::plan_tick(Tick tick, const SwarmState& state,
                                   std::vector<Transfer>& out) {
  TickRecord rec;
  rec.tick = tick;
  rec.blocks_held_at_start = state.total_blocks_held();
  rec.freq_fingerprint = fingerprint_frequencies(state.block_frequency());
  const std::size_t before = out.size();
  inner_->plan_tick(tick, state, out);
  rec.planned.assign(out.begin() + static_cast<std::ptrdiff_t>(before), out.end());
  log_.push_back(std::move(rec));
}

ReferenceResult reference_run(const EngineConfig& config,
                              const std::vector<TickRecord>& log,
                              const MechanismSpec& mech) {
  const std::uint32_t n = config.num_nodes;
  const std::uint32_t k = config.num_blocks;

  // --- Naive swarm state. ---
  std::vector<std::set<BlockId>> have(n);
  for (BlockId b = 0; b < k; ++b) have[kServer].insert(b);
  std::vector<char> active(n, 1);
  std::vector<Tick> completion(n, 0);
  std::uint32_t departed = 0;

  const auto client_incomplete = [&](NodeId c) {
    return active[c] != 0 && have[c].size() < k;
  };
  const auto all_complete = [&] {
    for (NodeId c = 1; c < n; ++c) {
      if (client_incomplete(c)) return false;
    }
    return true;
  };
  const auto count_blocks_held = [&] {
    std::uint64_t total = 0;
    for (NodeId u = 0; u < n; ++u) {
      if (active[u]) total += have[u].size();
    }
    return total;
  };
  const auto frequencies = [&] {
    std::vector<std::uint32_t> freq(k, 0);
    for (NodeId u = 0; u < n; ++u) {
      if (!active[u]) continue;
      for (const BlockId b : have[u]) ++freq[b];
    }
    return freq;
  };

  // --- Capacities, mirroring the fast engine's resolution rules. ---
  const std::uint32_t server_up = config.server_upload_capacity != 0
                                      ? config.server_upload_capacity
                                      : config.upload_capacity;
  const auto up_cap_of = [&](NodeId node) -> std::uint32_t {
    if (!config.upload_capacities.empty()) return config.upload_capacities[node];
    return node == kServer ? server_up : config.upload_capacity;
  };
  const auto down_cap_of = [&](NodeId node) -> std::uint32_t {
    if (!config.download_capacities.empty()) return config.download_capacities[node];
    return config.download_capacity;
  };

  std::uint64_t active_slots = 0;
  for (NodeId u = 0; u < n; ++u) active_slots += up_cap_of(u);
  const auto deactivate = [&](NodeId node) {
    if (!active[node]) return;
    active[node] = 0;
    ++departed;
    active_slots -= up_cap_of(node);
  };

  const Tick cap = config.max_ticks != 0 ? config.max_ticks
                                         : default_tick_cap(n, k);

  std::vector<std::pair<Tick, NodeId>> departures = config.departures;
  std::sort(departures.begin(), departures.end());
  std::size_t next_departure = 0;

  RefMechanism mechanism(mech);

  ReferenceResult res;
  res.uploads_per_node.assign(n, 0);

  std::set<std::pair<NodeId, BlockId>> lost_deliveries;
  std::vector<NodeId> leaving;
  std::size_t ri = 0;  // next record in the log

  const auto reject = [&](Tick tick, std::string message) {
    res.violated = true;
    res.violation_tick = tick;
    res.violation_message = std::move(message);
  };
  const auto describe_transfer = [](Tick tick, const Transfer& tr, const char* why) {
    std::ostringstream os;
    os << "tick " << tick << ": transfer " << tr.from << " -> " << tr.to
       << " (block " << tr.block << "): " << why;
    return os.str();
  };

  Tick tick = 0;
  while (!all_complete() && tick < cap) {
    ++tick;
    while (next_departure < departures.size() &&
           departures[next_departure].first <= tick) {
      deactivate(departures[next_departure].second);
      ++next_departure;
    }
    if (config.depart_on_complete) {
      for (const NodeId c : leaving) deactivate(c);
      leaving.clear();
    }
    if (all_complete()) break;

    if (ri >= log.size()) {
      res.ran_out_of_log = true;
      break;
    }
    if (log[ri].tick != tick) {
      res.ran_out_of_log = true;
      res.violation_message = "log misalignment: expected tick " +
                              std::to_string(tick) + ", log has tick " +
                              std::to_string(log[ri].tick);
      break;
    }
    res.blocks_held_at_start.push_back(count_blocks_held());
    res.freq_fingerprint.push_back(fingerprint_frequencies(frequencies()));
    const std::vector<Transfer>& planned = log[ri].planned;
    ++ri;

    // --- Validate, transfer by transfer, in schedule order. ---
    std::vector<Transfer> kept;
    std::vector<std::uint32_t> up_used(n, 0), down_used(n, 0);
    std::uint64_t dropped_this_tick = 0;
    for (const Transfer& tr : planned) {
      if (tr.from >= n || tr.to >= n) {
        reject(tick, describe_transfer(tick, tr, "node id out of range"));
        break;
      }
      if (tr.from == tr.to) {
        reject(tick, describe_transfer(tick, tr, "self transfer"));
        break;
      }
      if (tr.block >= k) {
        reject(tick, describe_transfer(tick, tr, "block id out of range"));
        break;
      }
      if (!active[tr.from] || !active[tr.to]) {
        if (config.drop_transfers_involving_inactive) {
          ++dropped_this_tick;
          if (active[tr.to]) lost_deliveries.insert({tr.to, tr.block});
          continue;
        }
        reject(tick, describe_transfer(tick, tr, "transfer involves a departed node"));
        break;
      }
      if (have[tr.from].count(tr.block) == 0) {
        if (config.drop_transfers_involving_inactive &&
            lost_deliveries.count({tr.from, tr.block}) != 0) {
          ++dropped_this_tick;
          lost_deliveries.insert({tr.to, tr.block});
          continue;
        }
        reject(tick,
               describe_transfer(tick, tr, "sender does not hold the block at tick start"));
        break;
      }
      if (have[tr.to].count(tr.block) != 0) {
        if (config.drop_transfers_involving_inactive &&
            lost_deliveries.erase({tr.to, tr.block}) != 0) {
          ++dropped_this_tick;
          continue;
        }
        reject(tick, describe_transfer(tick, tr, "receiver already holds the block"));
        break;
      }
      if (++up_used[tr.from] > up_cap_of(tr.from)) {
        reject(tick, describe_transfer(tick, tr, "sender over upload capacity"));
        break;
      }
      const std::uint32_t dcap = down_cap_of(tr.to);
      if (dcap != kUnlimited && ++down_used[tr.to] > dcap) {
        reject(tick, describe_transfer(tick, tr, "receiver over download capacity"));
        break;
      }
      kept.push_back(tr);
    }
    if (res.violated) break;
    // No block may be delivered twice to one receiver within a tick.
    for (std::size_t i = 0; i < kept.size() && !res.violated; ++i) {
      for (std::size_t j = i + 1; j < kept.size(); ++j) {
        if (kept[i].to == kept[j].to && kept[i].block == kept[j].block) {
          reject(tick,
                 describe_transfer(tick, kept.front(),
                                   "same block delivered twice to one receiver in one tick"));
          break;
        }
      }
    }
    if (res.violated) break;
    if (auto err = mechanism.check(kept)) {
      reject(tick, "tick " + std::to_string(tick) + ": mechanism violated: " + *err);
      break;
    }

    // --- Commit. ---
    res.dropped_transfers += dropped_this_tick;
    mechanism.commit(kept);
    for (const Transfer& tr : kept) {
      const bool was_incomplete = have[tr.to].size() < k;
      have[tr.to].insert(tr.block);
      lost_deliveries.erase({tr.to, tr.block});
      if (was_incomplete && have[tr.to].size() == k && tr.to != kServer) {
        completion[tr.to] = tick;
        if (config.depart_on_complete) leaving.push_back(tr.to);
      }
      ++res.uploads_per_node[tr.from];
    }
    res.total_transfers += kept.size();
    res.uploads_per_tick.push_back(kept.size());
    res.active_slots_per_tick.push_back(active_slots);
    res.accepted.push_back(std::move(kept));

    if (config.stall_window != 0 && tick >= config.stall_window) {
      std::uint64_t window_sum = 0, window_slots = 0;
      const std::size_t ticks_so_far = res.uploads_per_tick.size();
      for (std::size_t t = ticks_so_far - config.stall_window; t < ticks_so_far; ++t) {
        window_sum += res.uploads_per_tick[t];
        window_slots += res.active_slots_per_tick[t];
      }
      if (static_cast<double>(window_sum) <
          config.stall_utilization * static_cast<double>(window_slots)) {
        res.stalled = true;
        break;
      }
    }
  }

  res.ticks_executed = tick;
  res.completed = !res.violated && !res.ran_out_of_log && all_complete();
  res.departed = departed;
  res.client_completion.assign(completion.begin() + 1, completion.end());
  if (res.completed) {
    res.completion_tick = *std::max_element(res.client_completion.begin(),
                                            res.client_completion.end());
  }
  res.final_have = std::move(have);
  return res;
}

}  // namespace pob::check
