#include "pob/scale/stream/stream_engine.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace pob::scale::stream {

StreamEngine::StreamEngine(StreamSpec spec)
    : spec_(std::move(spec)),
      plan_(build_workload(spec_.workload, spec_.config, spec_.seed)),
      tracker_(spec_.demand, spec_.config.num_nodes, spec_.config.num_blocks,
               plan_.arrival) {
  spec_.options.stream_window = spec_.demand.window;
  engine_ = std::make_unique<Engine>(spec_.config, spec_.topology, spec_.options,
                                     spec_.seed);
  // Class capacities first (set_capacity on an active node keeps the slot
  // total consistent, and a later deactivate subtracts the updated cap).
  if (!plan_.initial_up.empty()) {
    for (NodeId u = 0; u < spec_.config.num_nodes; ++u) {
      engine_->set_capacity(u, plan_.initial_up[u], plan_.initial_down[u]);
    }
  }
  for (NodeId c = 1; c < spec_.config.num_nodes; ++c) {
    if (plan_.arrival[c] >= 1) engine_->deactivate(c);
  }
  for (const StreamEvent& ev : plan_.events) calendar_.push(ev);
  pending_arrivals_ = plan_.pending_arrivals;
}

RunResult StreamEngine::run(unsigned jobs) {
  if (ran_) throw std::logic_error("stream: run() is one-shot");
  ran_ = true;
  ThreadPool pool(jobs);
  const EngineConfig& cfg = spec_.config;

  // The default cap budgets for a swarm that is all present at tick 0; a
  // stream run cannot even see its last client before last_arrival, so the
  // budget starts there.
  const Tick cap =
      cfg.max_ticks != 0
          ? cfg.max_ticks
          : default_tick_cap(cfg.num_nodes, cfg.num_blocks) + plan_.last_arrival;

  RunResult result;
  std::uint64_t window_sum = 0;
  std::uint64_t window_slots_sum = 0;
  std::vector<Count> steady_uploads;      // stall window, arrivals-done ticks only
  std::vector<std::uint64_t> steady_slots;

  Tick executed = 0;
  while ((pending_arrivals_ != 0 || !engine_->all_complete()) && executed < cap) {
    const Tick t = engine_->current_tick() + 1;
    // Inject this tick's events before the tick plans: an arrival at t
    // participates in tick t (it can receive immediately), matching the
    // async mirror where the node exists from time t-1 onward.
    if (!calendar_.empty()) {
      for (const StreamEvent& ev : calendar_.collect(t)) {
        switch (ev.kind) {
          case EventKind::kArrive:
            engine_->activate(ev.node);
            --pending_arrivals_;
            break;
          case EventKind::kRate:
            engine_->set_capacity(ev.node, ev.up, ev.down);
            break;
          case EventKind::kDeadline:
            break;  // deadline timers live in the tracker's own calendar
        }
      }
    }

    const std::span<const Transfer> accepted = engine_->step(&pool);
    ++executed;

    result.total_transfers += accepted.size();
    result.uploads_per_tick.push_back(accepted.size());
    result.active_slots_per_tick.push_back(engine_->active_upload_slots());
    if (cfg.record_trace) {
      result.trace.emplace_back(accepted.begin(), accepted.end());
    }
    for (const Transfer& tr : accepted) tracker_.on_delivery(tr.to, tr.block, t);
    tracker_.end_tick(t);

    // Stall detection runs only once every client has arrived: before that,
    // low utilization is the workload (a thin pre-spike swarm), not a stall.
    if (cfg.stall_window != 0 && pending_arrivals_ == 0) {
      steady_uploads.push_back(accepted.size());
      steady_slots.push_back(engine_->active_upload_slots());
      window_sum += accepted.size();
      window_slots_sum += engine_->active_upload_slots();
      const std::size_t steady = steady_uploads.size();
      if (steady > cfg.stall_window) {
        window_sum -= steady_uploads[steady - cfg.stall_window - 1];
        window_slots_sum -= steady_slots[steady - cfg.stall_window - 1];
      }
      if (steady >= cfg.stall_window &&
          static_cast<double>(window_sum) <
              cfg.stall_utilization * static_cast<double>(window_slots_sum)) {
        result.stalled = true;
        break;
      }
    }
  }

  result.ticks_executed = executed;
  result.completed = pending_arrivals_ == 0 && engine_->all_complete();
  result.departed = engine_->num_departed();
  const std::uint32_t n = cfg.num_nodes;
  result.client_completion.resize(n - 1);
  result.uploads_per_node.resize(n);
  for (NodeId u = 0; u < n; ++u) {
    if (u != kServer) result.client_completion[u - 1] = engine_->node_completion(u);
    result.uploads_per_node[u] = engine_->node_uploads(u);
  }
  if (result.completed) {
    result.completion_tick = *std::max_element(result.client_completion.begin(),
                                               result.client_completion.end());
  }
  tracker_.finalize(engine_->current_tick(), result);
  return result;
}

std::uint64_t StreamEngine::state_bytes() const {
  return engine_->state_bytes() + calendar_.memory_bytes() + tracker_.memory_bytes() +
         plan_.arrival.capacity() * sizeof(Tick) +
         plan_.events.capacity() * sizeof(StreamEvent) +
         (plan_.initial_up.capacity() + plan_.initial_down.capacity()) *
             sizeof(std::uint32_t);
}

}  // namespace pob::scale::stream
