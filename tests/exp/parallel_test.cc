// The deterministic parallel trial runner: per-index seed derivation,
// bit-identical aggregation at any job count, and thread-pool basics.

#include "pob/exp/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <set>
#include <stdexcept>
#include <vector>

#include "pob/core/engine.h"
#include "pob/exp/cli.h"
#include "pob/overlay/overlay.h"
#include "pob/rand/randomized.h"

namespace pob {
namespace {

TEST(TrialSeed, DependsOnlyOnBaseAndIndex) {
  // Same (base, i) always maps to the same seed — the property that makes
  // results independent of --jobs and of scheduling order.
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(trial_seed(42, i), trial_seed(42, i));
  }
  EXPECT_NE(trial_seed(42, 0), trial_seed(43, 0));
}

TEST(TrialSeed, NearbyIndicesAndBasesGiveDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t base : {0ull, 1ull, 42ull, 0xF16'6000ull}) {
    for (std::uint32_t i = 0; i < 256; ++i) seeds.insert(trial_seed(base, i));
  }
  EXPECT_EQ(seeds.size(), 4u * 256u);  // no collisions among nearby inputs
}

TEST(JobsFromFlag, RejectsNegativeValues) {
  // A --jobs=-1 typo must not wrap to 4294967295 workers.
  EXPECT_EQ(jobs_from_flag(0), 0u);  // 0 = "use default_jobs()", resolved later
  EXPECT_EQ(jobs_from_flag(1), 1u);
  EXPECT_THROW(jobs_from_flag(-1), std::invalid_argument);
  EXPECT_THROW(jobs_from_flag(std::numeric_limits<std::int64_t>::min()),
               std::invalid_argument);
}

TEST(JobsFromFlag, ClampsValuesAboveHardwareConcurrency) {
  // Mild oversubscription passes through; absurd values clamp to 4x the
  // hardware instead of spawning that many threads.
  const std::uint64_t cap = 4ull * default_jobs();
  EXPECT_EQ(jobs_from_flag(static_cast<std::int64_t>(cap)), cap);
  EXPECT_EQ(jobs_from_flag(static_cast<std::int64_t>(cap) + 1), cap);
  EXPECT_EQ(jobs_from_flag(1'000'000), cap);
  EXPECT_EQ(jobs_from_flag(std::numeric_limits<std::int64_t>::max()), cap);
}

TEST(JobsFromFlag, NonNumericFlagTextIsRejectedByTheParser) {
  // pobsim/pobfuzz route --jobs through Args::get_int, whose stoll call
  // throws on text like --jobs=fast before jobs_from_flag ever runs.
  const char* argv[] = {"prog", "--jobs=fast"};
  const Args args(2, argv);
  EXPECT_THROW(args.get_int("jobs", 0), std::invalid_argument);
  const char* none[] = {"prog"};
  EXPECT_EQ(Args(1, none).get_int("jobs", 0), 0);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.jobs(), 4u);
  std::vector<std::atomic<std::uint32_t>> hits(1000);
  pool.parallel_for(1000, [&](std::uint32_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1u);
}

TEST(ThreadPool, ReusableAcrossDispatches) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::uint64_t> sum{0};
    pool.parallel_for(100, [&](std::uint32_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(ThreadPool, ZeroAndOneItemWork) {
  ThreadPool pool(4);
  pool.parallel_for(0, [](std::uint32_t) { FAIL() << "no items to run"; });
  std::atomic<std::uint32_t> hits{0};
  pool.parallel_for(1, [&](std::uint32_t) { ++hits; });
  EXPECT_EQ(hits.load(), 1u);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::uint32_t i) {
                                   if (i == 13) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool survives a throwing dispatch.
  std::atomic<std::uint32_t> hits{0};
  pool.parallel_for(8, [&](std::uint32_t) { ++hits; });
  EXPECT_EQ(hits.load(), 8u);
}

// A real randomized workload: completion time of a small cooperative swarm,
// seeded purely from the trial index.
TrialOutcome swarm_trial(std::uint32_t i) {
  EngineConfig cfg;
  cfg.num_nodes = 24;
  cfg.num_blocks = 12;
  RandomizedScheduler sched(std::make_shared<CompleteOverlay>(24), {},
                            Rng(trial_seed(0xABCD, i)));
  const RunResult r = run(cfg, sched);
  TrialOutcome out;
  out.completed = r.completed;
  if (r.completed) {
    out.completion = static_cast<double>(r.completion_tick);
    out.mean_completion = r.mean_client_completion();
  }
  return out;
}

void expect_bit_identical(const TrialStats& a, const TrialStats& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.censored, b.censored);
  for (const auto& [sa, sb] : {std::pair{a.completion, b.completion},
                               std::pair{a.mean_completion, b.mean_completion}}) {
    EXPECT_EQ(sa.count, sb.count);
    EXPECT_EQ(sa.mean, sb.mean);  // exact: same values reduced in same order
    EXPECT_EQ(sa.stddev, sb.stddev);
    EXPECT_EQ(sa.ci95, sb.ci95);
    EXPECT_EQ(sa.min, sb.min);
    EXPECT_EQ(sa.max, sb.max);
    EXPECT_EQ(sa.median, sb.median);
  }
}

TEST(RepeatTrialsParallel, BitIdenticalToSerialAtAnyJobCount) {
  const TrialStats serial = repeat_trials(32, swarm_trial);
  for (const unsigned jobs : {1u, 2u, 3u, 8u, 64u}) {
    const TrialStats parallel = repeat_trials_parallel(32, jobs, swarm_trial);
    expect_bit_identical(serial, parallel);
  }
}

TEST(RepeatTrialsParallel, CountsCensoredRunsLikeSerial) {
  const auto trial = [](std::uint32_t i) {
    TrialOutcome out;
    out.completed = i % 3 != 0;  // every third run censored
    out.completion = static_cast<double>(100 + i);
    out.mean_completion = static_cast<double>(50 + i);
    return out;
  };
  const TrialStats serial = repeat_trials(20, trial);
  const TrialStats parallel = repeat_trials_parallel(20, 7, trial);
  EXPECT_EQ(parallel.censored, 7u);
  expect_bit_identical(serial, parallel);
}

TEST(RepeatTrialsParallel, MoreJobsThanRunsIsFine) {
  const TrialStats stats = repeat_trials_parallel(3, 16, swarm_trial);
  EXPECT_EQ(stats.runs, 3u);
  EXPECT_EQ(stats.censored, 0u);
}

TEST(RepeatTrialsParallel, JobsZeroUsesHardwareDefault) {
  EXPECT_GE(default_jobs(), 1u);
  const TrialStats stats = repeat_trials_parallel(8, 0, swarm_trial);
  expect_bit_identical(repeat_trials(8, swarm_trial), stats);
}

}  // namespace
}  // namespace pob
