// Differential testing: BlockSet against a std::set<BlockId> reference model
// over long random operation sequences, including the word-boundary sizes
// where bit-twiddling bugs live.

#include <gtest/gtest.h>

#include <set>

#include "pob/core/block_set.h"

namespace pob {
namespace {

class BlockSetModel : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BlockSetModel, MatchesReferenceSetOverRandomOps) {
  const std::uint32_t universe = GetParam();
  Rng rng(0xB10C'0000 + universe);
  BlockSet sut(universe);
  std::set<BlockId> model;

  for (int step = 0; step < 4000; ++step) {
    const std::uint32_t op = rng.below(100);
    const BlockId b = rng.below(universe);
    if (op < 45) {
      EXPECT_EQ(sut.insert(b), model.insert(b).second);
    } else if (op < 70) {
      EXPECT_EQ(sut.erase(b), model.erase(b) > 0);
    } else if (op < 72) {
      sut.clear();
      model.clear();
    } else if (op < 74) {
      sut.fill();
      model.clear();
      for (BlockId x = 0; x < universe; ++x) model.insert(x);
    } else if (op < 85) {
      EXPECT_EQ(sut.contains(b), model.count(b) > 0);
    } else {
      // Aggregate queries.
      ASSERT_EQ(sut.count(), model.size());
      EXPECT_EQ(sut.empty(), model.empty());
      EXPECT_EQ(sut.full(), model.size() == universe);
      EXPECT_EQ(sut.min(), model.empty() ? kNoBlock : *model.begin());
      EXPECT_EQ(sut.max(), model.empty() ? kNoBlock : *model.rbegin());
      BlockId first_missing = kNoBlock;
      for (BlockId x = 0; x < universe; ++x) {
        if (model.count(x) == 0) {
          first_missing = x;
          break;
        }
      }
      EXPECT_EQ(sut.first_missing(), first_missing);
    }
  }
  // Final full comparison.
  const std::vector<BlockId> got = sut.to_vector();
  const std::vector<BlockId> want(model.begin(), model.end());
  EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(Universes, BlockSetModel,
                         ::testing::Values(1u, 7u, 63u, 64u, 65u, 127u, 128u, 129u,
                                           500u, 1000u));

class BlockSetPairModel : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BlockSetPairModel, SetAlgebraMatchesReference) {
  const std::uint32_t universe = GetParam();
  Rng rng(0xB10C'1111 + universe);
  for (int trial = 0; trial < 50; ++trial) {
    BlockSet a(universe), b(universe), excl(universe);
    std::set<BlockId> ma, mb, mx;
    for (std::uint32_t i = 0; i < universe; ++i) {
      if (rng.chance(0.4)) {
        a.insert(i);
        ma.insert(i);
      }
      if (rng.chance(0.4)) {
        b.insert(i);
        mb.insert(i);
      }
      if (rng.chance(0.2)) {
        excl.insert(i);
        mx.insert(i);
      }
    }
    // Reference a \ b and a \ b \ excl.
    std::set<BlockId> diff, diff_ex;
    for (const BlockId x : ma) {
      if (mb.count(x) == 0) {
        diff.insert(x);
        if (mx.count(x) == 0) diff_ex.insert(x);
      }
    }
    EXPECT_EQ(a.has_block_missing_from(b), !diff.empty());
    EXPECT_EQ(a.count_missing_from(b), diff.size());
    EXPECT_EQ(a.max_missing_from(b), diff.empty() ? kNoBlock : *diff.rbegin());
    EXPECT_EQ(a.has_useful(b, &excl), !diff_ex.empty());
    const BlockId pick = a.pick_random_useful(b, &excl, rng);
    if (diff_ex.empty()) {
      EXPECT_EQ(pick, kNoBlock);
    } else {
      EXPECT_TRUE(diff_ex.count(pick) > 0);
    }
    // covers_complement_of: excl covers ~a iff every non-member of a is in excl.
    bool covers = true;
    for (BlockId x = 0; x < universe; ++x) {
      if (ma.count(x) == 0 && mx.count(x) == 0) {
        covers = false;
        break;
      }
    }
    EXPECT_EQ(excl.covers_complement_of(a), covers);
  }
}

INSTANTIATE_TEST_SUITE_P(Universes, BlockSetPairModel,
                         ::testing::Values(3u, 64u, 65u, 200u));

}  // namespace
}  // namespace pob
