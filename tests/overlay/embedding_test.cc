#include "pob/overlay/embedding.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace pob {
namespace {

TEST(Embedding, DistanceBasics) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

TEST(Embedding, CostOfKnownSquare) {
  // n = 4: vertices 00,01,10,11 each with one node; unit-square positions
  // chosen so every cube edge has length 1 (cube edges: 0-1, 0-2, 1-3, 2-3).
  const HypercubeMap map = make_hypercube_map(4);
  const std::vector<Point> pts = {{0, 0}, {1, 0}, {0, 1}, {1, 1}};
  EXPECT_DOUBLE_EQ(hypercube_embedding_cost(map, pts), 4.0);
}

TEST(Embedding, CostCountsIntraPairEdges) {
  // n = 3: vertex 1 holds clients 1 and 2.
  const HypercubeMap map = make_hypercube_map(3);
  const std::vector<Point> pts = {{0, 0}, {1, 0}, {1, 1}};
  // Edges: intra {1,2} (length 1) + cube edge 0-1 crossing to both members
  // (lengths 1 and sqrt(2)).
  EXPECT_NEAR(hypercube_embedding_cost(map, pts), 1.0 + 1.0 + std::sqrt(2.0), 1e-12);
}

TEST(Embedding, RejectsShortPositionVector) {
  const HypercubeMap map = make_hypercube_map(8);
  const std::vector<Point> pts(4);
  EXPECT_THROW(hypercube_embedding_cost(map, pts), std::invalid_argument);
}

TEST(Embedding, OptimizeNeverIncreasesCost) {
  Rng rng(1);
  for (const std::uint32_t n : {8u, 11u, 32u, 100u}) {
    const std::vector<Point> pts = clustered_points(n, 4, rng);
    const HypercubeMap map = make_hypercube_map(n);
    const EmbeddingResult res = optimize_hypercube_embedding(map, pts, rng, 2000);
    EXPECT_LE(res.final_cost, res.initial_cost) << "n=" << n;
    EXPECT_NEAR(res.final_cost, hypercube_embedding_cost(res.map, pts), 1e-6) << n;
  }
}

TEST(Embedding, OptimizedMapIsStillAValidAssignment) {
  Rng rng(2);
  const std::uint32_t n = 50;
  const std::vector<Point> pts = random_points(n, rng);
  const EmbeddingResult res =
      optimize_hypercube_embedding(make_hypercube_map(n), pts, rng, 5000);
  const HypercubeMap& m = res.map;
  EXPECT_EQ(m.members[0][0], kServer);  // server never moves
  std::set<NodeId> seen;
  for (std::uint32_t v = 0; v < m.num_vertices; ++v) {
    for (const NodeId node : m.members[v]) {
      if (node == kNoNode) continue;
      EXPECT_TRUE(seen.insert(node).second) << "node assigned twice";
      EXPECT_EQ(m.vertex_of[node], v);
    }
  }
  EXPECT_EQ(seen.size(), n);
}

TEST(Embedding, ClusteredLayoutImprovesSubstantially) {
  // With tight clusters, local search should cut total link cost a lot.
  Rng rng(3);
  const std::uint32_t n = 64;
  const std::vector<Point> pts = clustered_points(n, 4, rng);
  const EmbeddingResult res =
      optimize_hypercube_embedding(make_hypercube_map(n), pts, rng, 20000);
  EXPECT_LT(res.final_cost, 0.7 * res.initial_cost);
  EXPECT_GT(res.accepted_swaps, 0u);
}

TEST(Embedding, PointGenerators) {
  Rng rng(4);
  const auto uniform = random_points(100, rng);
  EXPECT_EQ(uniform.size(), 100u);
  for (const Point& p : uniform) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 1.0);
  }
  const auto clustered = clustered_points(100, 5, rng);
  EXPECT_EQ(clustered.size(), 100u);
  EXPECT_THROW(clustered_points(10, 0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace pob
