// E3 / Figure 4 — randomized cooperative algorithm, completion time T vs k.
//
// Paper setup: n fixed at 1000, complete graph, Random selection, k from 1
// to 10000 on a log-log plot. Expected shape: T linear in k with slope ~1.

#include <iostream>
#include <memory>

#include "bench_util.h"
#include "pob/analysis/bounds.h"

namespace pob::bench {
namespace {

int main_impl(int argc, char** argv) {
  const Args args(argc, argv);
  TrialRunner trials(args);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 1000));
  const auto runs = static_cast<std::uint32_t>(args.get_int("runs", 3));
  std::vector<std::int64_t> ks =
      args.get_int_list("k", {1, 3, 10, 32, 100, 316, 1000, 3162, 10000});
  if (args.has("quick")) ks = {1, 10, 100, 1000};

  Table table({"n", "k", "T (mean +- 95% CI)", "optimal", "T/optimal"});
  for (const std::int64_t k64 : ks) {
    const auto k = static_cast<std::uint32_t>(k64);
    EngineConfig cfg;
    cfg.num_nodes = n;
    cfg.num_blocks = k;
    const TrialStats stats = trials(runs, [&](std::uint32_t i) {
      return randomized_trial(cfg, std::make_shared<CompleteOverlay>(n), {},
                              trial_seed(0xF16'4000 + 991ull * k, i));
    });
    const Tick opt = cooperative_lower_bound(n, k);
    table.add_row({std::to_string(n), std::to_string(k),
                   fmt_ci(stats.completion.mean, stats.completion.ci95),
                   std::to_string(opt),
                   fmt(stats.completion.mean / static_cast<double>(opt), 3)});
  }
  std::cout << "# E3/Figure 4: randomized cooperative, T vs k (complete graph, "
               "Random policy, n = " << n << ")\n";
  emit(args, table);
  trials.report(std::cout);
  return 0;
}

}  // namespace
}  // namespace pob::bench

int main(int argc, char** argv) { return pob::bench::main_impl(argc, argv); }
