// Hugepage-aware memory for the mega-swarm engine's large flat arrays.
//
// The scale engine's hot loops are dominated by random reads into arenas of
// tens to hundreds of MiB (possession rows, CSR targets, summary bitmaps).
// With 4 KiB pages every such read risks a TLB miss, and — worse — software
// prefetches that miss the TLB are dropped on common x86 cores, so the
// batched-prefetch schedule in the generate phase only pays off when the
// arena sits on big pages. Two mechanisms, tried in order:
//
//   1. Explicit hugetlb pages (mmap MAP_HUGETLB): guaranteed 2 MiB mappings
//      drawn from the kernel's reserved pool (/proc/sys/vm/nr_hugepages).
//      Fails cleanly when the pool is empty or absent.
//   2. Transparent hugepages (madvise MADV_HUGEPAGE): a hint the kernel may
//      honor lazily, or never (THP in "madvise" mode with no compaction —
//      some virtualized kernels simply don't supply them).
//
// Everything here is a perf shade only: allocation always succeeds (the
// final fallback is ordinary anonymous memory), contents start zeroed on
// every path, and no observable engine behavior depends on which path won.

#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>

namespace pob::scale {

/// Best-effort madvise(MADV_HUGEPAGE) over the pages fully inside
/// [data, data + bytes). A perf hint only — random accesses into a
/// hundred-MiB arena otherwise spend much of their latency on 4 KiB TLB
/// walks. No-op off Linux, on failure, or when THP is disabled; never
/// changes observable behavior.
void advise_hugepages(const void* data, std::size_t bytes);

/// Allocates `bytes` of zero-filled memory, preferring explicit 2 MiB
/// hugetlb pages for large requests and falling back to ordinary pages
/// (with a THP hint) when the hugetlb pool can't serve it. Never returns
/// nullptr for a nonzero request; returns nullptr for bytes == 0.
/// Release with huge_free(ptr, bytes) using the same byte count.
void* huge_alloc(std::size_t bytes);

/// Releases memory obtained from huge_alloc. `bytes` must match the
/// original request (the mapping length is derived from it).
void huge_free(void* ptr, std::size_t bytes) noexcept;

/// A fixed-size, zero-initialized, move-only array on huge_alloc memory.
/// Deliberately minimal: the engine sizes these once per construction and
/// never resizes, so there is no growth logic to get wrong. Only trivial
/// element types are allowed — memory comes back zeroed and is released
/// without running destructors.
template <typename T>
class HugeBuffer {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "HugeBuffer holds raw zeroed memory; T must be trivial");

 public:
  HugeBuffer() = default;
  explicit HugeBuffer(std::size_t count) { reset(count); }
  ~HugeBuffer() { reset(0); }

  HugeBuffer(HugeBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  HugeBuffer& operator=(HugeBuffer&& other) noexcept {
    if (this != &other) {
      reset(0);
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  HugeBuffer(const HugeBuffer&) = delete;
  HugeBuffer& operator=(const HugeBuffer&) = delete;

  /// Frees the current storage and allocates `count` zeroed elements
  /// (count == 0 leaves the buffer empty).
  void reset(std::size_t count) {
    if (data_ != nullptr) huge_free(data_, size_ * sizeof(T));
    data_ = count == 0 ? nullptr : static_cast<T*>(huge_alloc(count * sizeof(T)));
    size_ = count;
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace pob::scale
