// Core value types shared by every pob subsystem.
//
// The model follows the paper exactly: `n` nodes numbered 0..n-1, where node
// 0 is the server and nodes 1..n-1 are clients; a file of `k` blocks numbered
// 0..k-1; and discrete time measured in ticks, where one tick is the time a
// node needs to upload one block at its full upload bandwidth.

#pragma once

#include <cstdint>
#include <limits>

namespace pob {

/// Identifies a node in the swarm. Node 0 is always the server.
using NodeId = std::uint32_t;

/// Identifies a block of the file, 0-based. Paper block `b_i` (1-based) is
/// BlockId `i - 1` here.
using BlockId = std::uint32_t;

/// Discrete simulation time. Tick 1 is the first tick in which transfers
/// happen; tick 0 denotes "before the simulation starts".
using Tick = std::uint32_t;

/// Counter for quantities that scale with n * ticks (total uploads by one
/// node, transfers in one tick, upload slots offered per tick). At the
/// mega-swarm scale the pob/scale engine targets (n up to 10^6 and beyond,
/// long async runs), products of 32-bit ids overflow 32 bits, so every
/// accumulated count in RunResult uses this type.
using Count = std::uint64_t;

// Id types are deliberately 32-bit: a possession row for node 2^32 would
// need a 32 GiB arena per 512-block file, far past any simulation this
// codebase targets, and halving id width keeps the scale engine's intent
// buffers and CSR adjacency dense. Counters, in contrast, must be 64-bit:
// n * ticks and n * k products overflow 32 bits already at n = 2^16 with
// long runs. These asserts pin the contract the scale engine relies on.
static_assert(sizeof(NodeId) == 4, "NodeId is 32-bit by design (arena density)");
static_assert(sizeof(BlockId) == 4, "BlockId is 32-bit by design");
static_assert(sizeof(Tick) == 4, "Tick is 32-bit; accumulate tick products in Count");
static_assert(sizeof(Count) == 8, "accumulated counters must not overflow at n*ticks");

/// The server's NodeId.
inline constexpr NodeId kServer = 0;

/// Sentinel for "no block".
inline constexpr BlockId kNoBlock = std::numeric_limits<BlockId>::max();

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Sentinel for an unbounded capacity (e.g. infinite download bandwidth).
inline constexpr std::uint32_t kUnlimited = std::numeric_limits<std::uint32_t>::max();

/// One block transfer scheduled within a tick. Transfers scheduled in the
/// same tick are simultaneous: the sender must possess `block` at the start
/// of the tick (a node cannot forward a block it is still receiving), and
/// the receiver must not already possess it.
struct Transfer {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  BlockId block = kNoBlock;

  friend bool operator==(const Transfer&, const Transfer&) = default;
};

}  // namespace pob
