// The historical randomized cooperative / credit-limited generator (§2.4,
// §3.2), extracted behind the ScaleScheduler interface. This class owns the
// per-shard probe scratch (diff scans, probe-outcome caches) that used to
// live in the engine; the probing logic itself — eligibility, RNG streams,
// the rejection ladder, block picks — stays in Engine::generate_range so the
// emitted intent stream is bit-for-bit the pre-refactor one (the 200k digest
// pins in tests/scale prove exactly that).

#pragma once

#include <cstdint>
#include <vector>

#include "pob/scale/engine.h"
#include "pob/scale/scheduler.h"

namespace pob::scale {

class RandomizedScheduler final : public ScaleScheduler {
 public:
  RandomizedScheduler(Engine& engine, std::uint32_t num_shards);

  void generate(Tick tick, std::uint32_t shard, NodeId first, NodeId last,
                std::vector<Transfer>& out) override;

  const char* name() const override { return "randomized"; }
  std::uint64_t memory_bytes() const override;

 private:
  Engine& engine_;
  // Shard-owned: node u always generates in shard u / shard_nodes, so scans
  // and cache entries never cross threads.
  std::vector<Engine::DiffScan> scratch_;
  std::vector<Engine::ProbeCache> cache_;
};

}  // namespace pob::scale
