#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "pob/async/policies.h"

namespace pob {

AsyncTitForTatPolicy::AsyncTitForTatPolicy(std::shared_ptr<const Overlay> overlay,
                                           std::uint32_t regular_unchokes,
                                           std::uint32_t optimistic_unchokes,
                                           double rechoke_interval,
                                           BlockPolicy block_policy,
                                           std::uint32_t download_ports, Rng rng)
    : overlay_(std::move(overlay)),
      regular_(regular_unchokes),
      optimistic_(optimistic_unchokes),
      interval_(rechoke_interval),
      block_policy_(block_policy),
      download_ports_(download_ports),
      rng_(rng) {
  if (overlay_ == nullptr) throw std::invalid_argument("async tft: null overlay");
  if (regular_ + optimistic_ == 0) {
    throw std::invalid_argument("async tft: need at least one unchoke slot");
  }
  if (interval_ <= 0.0) throw std::invalid_argument("async tft: interval > 0");
  const std::uint32_t n = overlay_->num_nodes();
  received_.resize(n);
  for (NodeId u = 0; u < n; ++u) received_[u].assign(overlay_->degree(u), 0);
  unchoked_.assign(n, {});
  next_rechoke_.assign(n, 0.0);  // everyone rechokes on first wake-up
}

void AsyncTitForTatPolicy::rechoke(NodeId node, const AsyncView& /*view*/) {
  const std::uint32_t deg = overlay_->degree(node);
  auto& slots = unchoked_[node];
  slots.clear();
  if (deg == 0) return;
  std::vector<std::uint32_t> order(deg);
  std::iota(order.begin(), order.end(), 0u);
  rng_.shuffle(order);
  if (node != kServer) {
    std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
      return received_[node][a] > received_[node][b];
    });
    for (const std::uint32_t idx : order) {
      if (slots.size() >= regular_) break;
      if (received_[node][idx] == 0) break;
      slots.push_back(overlay_->neighbor(node, idx));
    }
  }
  const std::uint32_t target =
      node == kServer ? regular_ + optimistic_
                      : static_cast<std::uint32_t>(slots.size()) + optimistic_;
  for (const std::uint32_t idx : order) {
    if (slots.size() >= std::min(target, deg)) break;
    const NodeId v = overlay_->neighbor(node, idx);
    if (std::find(slots.begin(), slots.end(), v) == slots.end()) slots.push_back(v);
  }
  std::fill(received_[node].begin(), received_[node].end(), 0u);
}

Transfer AsyncTitForTatPolicy::next_upload(NodeId node, double now,
                                           const AsyncView& view) {
  if (now >= next_rechoke_[node]) {
    rechoke(node, view);
    next_rechoke_[node] = now + interval_;
  }
  const BlockSet& have = view.blocks_of(node);
  if (have.empty()) return {};

  std::vector<NodeId> candidates;
  for (const NodeId v : unchoked_[node]) {
    if (v == kServer || view.is_complete(v)) continue;
    if (download_ports_ != kUnlimited && view.inbound_count(v) >= download_ports_) {
      continue;
    }
    if (have.has_useful(view.blocks_of(v), &view.inbound_of(v))) candidates.push_back(v);
  }
  if (candidates.empty()) return {};
  const NodeId v = candidates[rng_.below(static_cast<std::uint32_t>(candidates.size()))];
  const BlockId b =
      block_policy_ == BlockPolicy::kRandom
          ? have.pick_random_useful(view.blocks_of(v), &view.inbound_of(v), rng_)
          : have.pick_rarest_useful(view.blocks_of(v), &view.inbound_of(v),
                                    view.block_frequency(), rng_);
  // Reciprocation accounting: v credits node when the packet lands; we
  // approximate by crediting at send time (the view has no completion hook).
  const std::uint32_t idx = overlay_->neighbor_index(v, node);
  if (idx != kUnlimited) received_[v][idx] += 1;
  return {node, v, b};
}

double AsyncTitForTatPolicy::retry_after(NodeId node, double now) {
  // Wake up for the next rechoke; a fresh optimistic unchoke may create
  // work even if no transfer completes meanwhile.
  const double until = next_rechoke_[node] - now;
  return until > 0.0 ? until : interval_;
}

}  // namespace pob
