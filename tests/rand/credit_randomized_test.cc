// §3.2.3 credit-limited randomized algorithm: mechanism compliance is
// engine-checked on every tick; the degree threshold phenomenon (Figures
// 6-7) is reproduced qualitatively at small scale.

#include <gtest/gtest.h>

#include "pob/analysis/bounds.h"
#include "pob/core/engine.h"
#include "pob/overlay/builders.h"
#include "pob/rand/randomized.h"

namespace pob {
namespace {

RunResult run_credit(std::uint32_t n, std::uint32_t k, std::uint32_t credit,
                     std::shared_ptr<const Overlay> overlay, std::uint64_t seed,
                     BlockPolicy policy = BlockPolicy::kRandom, Tick max_ticks = 0) {
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  cfg.max_ticks = max_ticks;
  RandomizedOptions opt;
  opt.policy = policy;
  CreditRandomized cr = make_credit_randomized(std::move(overlay), opt, Rng(seed), credit);
  return run(cfg, *cr.scheduler, cr.mechanism.get());
}

TEST(CreditRandomized, CompletesOnCompleteGraph) {
  for (const std::uint32_t s : {1u, 2u, 8u}) {
    const RunResult r =
        run_credit(64, 32, s, std::make_shared<CompleteOverlay>(64), 3 + s);
    ASSERT_TRUE(r.completed) << "s=" << s;
    EXPECT_GE(r.completion_tick, cooperative_lower_bound(64, 32));
  }
}

TEST(CreditRandomized, HighDegreeNearCooperative) {
  // Dense overlay: credit-limited randomized should be within a small factor
  // of the unconstrained randomized run.
  auto ov = std::make_shared<CompleteOverlay>(96);
  const RunResult credit = run_credit(96, 64, 1, ov, 5);
  EngineConfig cfg;
  cfg.num_nodes = 96;
  cfg.num_blocks = 64;
  RandomizedScheduler coop(ov, {}, Rng(5));
  const RunResult free_run = run(cfg, coop);
  ASSERT_TRUE(credit.completed);
  ASSERT_TRUE(free_run.completed);
  EXPECT_LT(credit.completion_tick, 2 * free_run.completion_tick);
}

TEST(CreditRandomized, LowDegreeWithUnitCreditStallsOrCrawls) {
  // Figure 6's left side: s = 1 on a low-degree overlay is dramatically
  // worse — often not finishing within 4x the cooperative optimum.
  Rng grng(7);
  auto ov = std::make_shared<GraphOverlay>(make_random_regular(128, 4, grng));
  const Tick cap = 4 * cooperative_lower_bound(128, 64);
  const RunResult r = run_credit(128, 64, 1, ov, 9, BlockPolicy::kRandom, cap);
  // Either censored, or dramatically slower than a dense overlay would be.
  if (r.completed) {
    EXPECT_GT(r.completion_tick, 2 * cooperative_lower_bound(128, 64));
  } else {
    SUCCEED();
  }
}

TEST(CreditRandomized, DegreeHelpsMoreThanCredit) {
  // §3.2.4: raising s at low degree is "nowhere near as powerful" as raising
  // the degree. Compare (d=8, s=25) — 4x the total credit — against
  // (d=48, s=1), which sits past the measured degree threshold (~32 at this
  // scale).
  Rng grng(11);
  double slow_total = 0, fast_total = 0;
  const Tick cap = 20 * cooperative_lower_bound(128, 64);
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    auto low = std::make_shared<GraphOverlay>(make_random_regular(128, 8, grng));
    auto high = std::make_shared<GraphOverlay>(make_random_regular(128, 48, grng));
    const RunResult slow =
        run_credit(128, 64, 25, low, 100 + seed, BlockPolicy::kRandom, cap);
    const RunResult fast =
        run_credit(128, 64, 1, high, 100 + seed, BlockPolicy::kRandom, cap);
    ASSERT_TRUE(fast.completed);
    slow_total += slow.completed ? static_cast<double>(slow.completion_tick)
                                 : static_cast<double>(cap);
    fast_total += static_cast<double>(fast.completion_tick);
  }
  EXPECT_LT(fast_total, slow_total);
}

TEST(CreditRandomized, RarestFirstBeatsRandomAtLowDegree) {
  // Figure 7 vs Figure 6: Rarest-First reaches near-optimal behavior at a
  // ~2-4x lower degree than Random. At d = 16 (measured: Random censors,
  // Rarest-First completes near-optimally) the gap is stark.
  Rng grng(13);
  const Tick cap = 20 * cooperative_lower_bound(128, 64);
  double random_total = 0, rarest_total = 0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    auto ov = std::make_shared<GraphOverlay>(make_random_regular(128, 16, grng));
    const RunResult rnd =
        run_credit(128, 64, 1, ov, 200 + seed, BlockPolicy::kRandom, cap);
    const RunResult rar =
        run_credit(128, 64, 1, ov, 200 + seed, BlockPolicy::kRarestFirst, cap);
    random_total += rnd.completed ? static_cast<double>(rnd.completion_tick)
                                  : static_cast<double>(cap);
    rarest_total += rar.completed ? static_cast<double>(rar.completion_tick)
                                  : static_cast<double>(cap);
  }
  EXPECT_LT(rarest_total, random_total);
}

TEST(CreditRandomized, LedgerNeverExceedsLimit) {
  auto ov = std::make_shared<CompleteOverlay>(32);
  RandomizedOptions opt;
  CreditRandomized cr = make_credit_randomized(ov, opt, Rng(17), 2);
  EngineConfig cfg;
  cfg.num_nodes = 32;
  cfg.num_blocks = 24;
  const RunResult r = run(cfg, *cr.scheduler, cr.mechanism.get());
  ASSERT_TRUE(r.completed);
  // The engine validated every tick; spot-check the final ledger too.
  for (NodeId u = 1; u < 32; ++u) {
    for (NodeId v = u + 1; v < 32; ++v) {
      const std::int64_t net = cr.mechanism->ledger().net(u, v);
      EXPECT_LE(net, 2);
      EXPECT_GE(net, -2);
    }
  }
}

}  // namespace
}  // namespace pob
