// Differential oracle: run a scheduler through the fast engine with trace
// recording on, replay the recorded schedule through the reference engine,
// and require bit-exact agreement on every accept/reject decision, per-tick
// observation, and the final RunResult.

#pragma once

#include <string>

#include "pob/check/reference_engine.h"
#include "pob/core/engine.h"
#include "pob/exp/trace_io.h"

namespace pob::check {

struct OracleReport {
  bool ok = true;
  /// First disagreement found (empty when ok).
  std::string diagnosis;

  /// True when the fast engine threw EngineViolation (and, if ok, the
  /// reference agreed the schedule was illegal on the same tick).
  bool violated = false;
  Tick violation_tick = 0;
  std::string violation_message;

  /// The fast engine's result; meaningful only when !violated.
  RunResult fast;
};

/// Runs `scheduler` under `config` through both engines and compares.
/// `fast_mechanism` is the fast-side mechanism instance; it must be freshly
/// constructed (its ledger advances during the run) and must correspond to
/// `mech`. Pass nullptr to have one built from the spec — callers only need
/// to supply their own when the scheduler itself holds a precheck pointer to
/// it (the §3.2.3 credit-limited randomized pair).
OracleReport differential_check(const EngineConfig& config, Scheduler& scheduler,
                                const MechanismSpec& mech,
                                Mechanism* fast_mechanism = nullptr);

/// Replays a loaded trace through both engines (the golden-corpus check).
OracleReport differential_replay(const LoadedTrace& trace, const MechanismSpec& mech);

/// FNV-1a digest over every RunResult field, including the trace when one
/// was recorded. Two results digest equal iff diff_run_results finds no
/// difference; determinism tests (scale engine at several --jobs values)
/// compare digests instead of hauling whole results around.
std::uint64_t run_result_digest(const RunResult& result);

/// Field-by-field comparison of two RunResults; returns an empty string when
/// they are identical, else a one-line description of the first divergence.
/// Traces are compared too (an unrecorded trace is just an empty one).
std::string diff_run_results(const RunResult& a, const RunResult& b);

}  // namespace pob::check
