// E22/E23: mega-swarm engine throughput — the "production scale" claim,
// measured, as a multi-core trajectory.
//
// Runs scale::Engine swarms at million-node size (defaults: n = 10^6,
// k = 512, random 16-regular overlay) and reports the numbers the roadmap
// cares about: node-ticks/second, transfers/second, per-phase wall-clock
// (generate / merge / apply), peak RSS, and bytes of engine state. With
// --sweep the identical configuration is re-run once per job count and the
// speedup column records the scaling curve (every run is bit-identical to
// every other — only the wall-clock may differ). Results land in
// BENCH_scale.json (override with --json=<path>) so CI can archive the
// trajectory.
//
//   scale_throughput                         # the full 10^6 x 512 run
//   scale_throughput --sweep=1,2,4,8,16      # the E23 jobs trajectory
//   scale_throughput --n=100000 --k=128      # quicker smoke (CI uses this)
//   scale_throughput --credit=2 --policy=rarest --jobs=4
//   scale_throughput --scheduler=riffle      # deterministic Theorem 2/3 run
//
// --scheduler selects the intent generator: randomized (default; the
// probing protocol over the random-regular overlay), or the deterministic
// closed-form schedules — binomial (Theorem 1), riffle (strict barter,
// Theorems 2/3), triangular (§3.3; binomial schedule with the ledger live).
// Deterministic runs use the complete topology, unit upload capacity and a
// power-of-two n (the engine enforces all three), and the JSON gains the
// price-of-barter fields E24 tabulates: completion time against the
// Theorem 1 cooperative lower bound.
//
// The run itself is deterministic for a given (seed, config) at any --jobs.

#include <algorithm>
#include <chrono>
#include <iostream>
#include <stdexcept>
#include <vector>

#include "bench_util.h"
#include "pob/analysis/bounds.h"
#include "pob/flow/certify.h"
#include "pob/scale/engine.h"

#if __has_include(<sys/resource.h>)
#include <sys/resource.h>
#define POB_HAVE_RUSAGE 1
#endif

namespace pob {
namespace {

std::uint64_t peak_rss_kb() {
#ifdef POB_HAVE_RUSAGE
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    // ru_maxrss is KiB on Linux (bytes on macOS; close enough for a trend
    // line, and this repo's CI is Linux).
    return static_cast<std::uint64_t>(usage.ru_maxrss);
  }
#endif
  return 0;
}

struct SweepPoint {
  unsigned jobs = 1;
  RunResult result;
  double run_seconds = 0.0;
  double node_ticks_per_sec = 0.0;
  double transfers_per_sec = 0.0;
  scale::PhaseTimings phases;
  std::uint64_t state_bytes = 0;
};

int main_impl(int argc, char** argv) {
  const Args args(argc, argv);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 1000000));
  const auto k = static_cast<std::uint32_t>(args.get_int("k", 512));
  const auto degree = static_cast<std::uint32_t>(args.get_int("degree", 16));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  // --sweep=1,2,4,8 runs the same swarm once per job count; without it the
  // single --jobs run keeps the historical E22 behavior. jobs_from_flag
  // clamps oversized requests to 4x the core count, so on small hosts
  // several requested values can collapse to the same effective job count —
  // dedupe to keep one run (and one JSON field group) per effective value.
  std::vector<unsigned> sweep;
  for (const std::int64_t j : args.get_int_list("sweep", {})) {
    const unsigned jobs = jobs_from_flag(j);
    if (std::find(sweep.begin(), sweep.end(), jobs) == sweep.end()) {
      sweep.push_back(jobs);
    }
  }
  if (sweep.empty()) sweep.push_back(jobs_from_flag(args.get_int("jobs", 0)));

  const std::string sched_name = args.get_string("scheduler", "randomized");
  scale::SchedKind sched = scale::SchedKind::kRandomized;
  if (sched_name == "binomial" || sched_name == "binomial-pipeline") {
    sched = scale::SchedKind::kBinomialPipeline;
  } else if (sched_name == "riffle" || sched_name == "riffle-pipeline") {
    sched = scale::SchedKind::kRifflePipeline;
  } else if (sched_name == "triangular" || sched_name == "triangular-barter") {
    sched = scale::SchedKind::kTriangularBarter;
  } else if (sched_name != "randomized") {
    throw std::invalid_argument("unknown --scheduler=" + sched_name +
                                " (randomized | binomial | riffle | triangular)");
  }
  const bool deterministic = sched != scale::SchedKind::kRandomized;

  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  cfg.max_ticks = static_cast<Tick>(args.get_int("cap", 0));
  if (sched == scale::SchedKind::kRifflePipeline) {
    cfg.download_capacity = 2;  // Theorem 3's d = 2u regime
  }

  scale::ScaleOptions opt;
  opt.scheduler = sched;
  opt.policy = args.get_string("policy", "random") == "random"
                   ? BlockPolicy::kRandom
                   : BlockPolicy::kRarestFirst;
  opt.credit_limit = static_cast<std::uint32_t>(args.get_int("credit", 0));
  if (sched == scale::SchedKind::kTriangularBarter && opt.credit_limit == 0) {
    opt.credit_limit = 1;  // the §3.3 ledger; the schedule never consults it
  }
  opt.max_probes = static_cast<std::uint32_t>(args.get_int("probes", 16));
  opt.collect_phase_timings = true;
  // --simd=off forces the scalar reference scan kernel; CI runs the digest
  // pin both ways to prove the vectorized paths change nothing but seconds.
  opt.scan_kernel = args.get_string("simd", "auto") == "off"
                        ? scale::ScanKernel::kScalar
                        : scale::ScanKernel::kAuto;

  // Deterministic schedules are derived for the complete overlay (the
  // binomial pipeline only ever uses the hypercube edges inside it); the
  // arithmetic complete Topology costs nothing to "build".
  const auto t0 = std::chrono::steady_clock::now();
  std::shared_ptr<scale::Topology> topo;
  if (deterministic) {
    topo = std::make_shared<scale::Topology>(scale::Topology::complete(n));
  } else {
    Rng topo_rng = Rng(seed).split(0);
    topo = std::make_shared<scale::Topology>(
        scale::Topology::from_graph(make_random_regular(n, degree, topo_rng)));
  }
  const double topo_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  std::vector<SweepPoint> points;
  for (const unsigned jobs : sweep) {
    scale::Engine engine(cfg, topo, opt, seed);
    SweepPoint p;
    p.jobs = jobs == 0 ? default_jobs() : jobs;
    p.state_bytes = engine.state_bytes();
    const auto t1 = std::chrono::steady_clock::now();
    p.result = engine.run(jobs);
    p.run_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t1).count();
    p.phases = engine.phase_timings();
    const std::uint64_t node_ticks =
        static_cast<std::uint64_t>(n) * p.result.ticks_executed;
    if (p.run_seconds > 0.0) {
      p.node_ticks_per_sec = static_cast<double>(node_ticks) / p.run_seconds;
      p.transfers_per_sec =
          static_cast<double>(p.result.total_transfers) / p.run_seconds;
    }
    points.push_back(std::move(p));
  }
  const std::uint64_t rss_kb = peak_rss_kb();
  const SweepPoint& head = points.front();
  // Speedups normalize against the real serial run when the sweep has one;
  // a clamped/deduped list without jobs=1 falls back to its first point
  // (and the speedup fields then read "vs jobs=<baseline.jobs>", never a
  // division against a point that was not run).
  const SweepPoint& baseline = points[bench::sweep_baseline_index(sweep)];

  bench::emit(args, [&] {
    Table table({"n", "k", "degree", "jobs", "ticks", "T", "transfers",
                 "node-ticks/s", "xfers/s", "speedup", "gen-s", "merge-s",
                 "apply-s"});
    for (const SweepPoint& p : points) {
      const double speedup = baseline.run_seconds > 0.0 && p.run_seconds > 0.0
                                 ? baseline.run_seconds / p.run_seconds
                                 : 0.0;
      table.add_row({std::to_string(n), std::to_string(k),
                     deterministic ? std::string("-") : std::to_string(degree),
                     std::to_string(p.jobs), std::to_string(p.result.ticks_executed),
                     p.result.completed ? std::to_string(p.result.completion_tick)
                                        : (p.result.stalled ? "stall" : "cap"),
                     std::to_string(p.result.total_transfers),
                     fmt(p.node_ticks_per_sec / 1e6, 1) + "M",
                     fmt(p.transfers_per_sec / 1e6, 1) + "M", fmt(speedup, 2) + "x",
                     fmt(p.phases.generate_seconds, 2),
                     fmt(p.phases.merge_seconds, 2), fmt(p.phases.apply_seconds, 2)});
    }
    return table;
  }());
  std::cout << "# graph build " << fmt(topo_seconds, 2) << " s, state "
            << head.state_bytes / (1024 * 1024) << " MiB, peak rss "
            << rss_kb / 1024 << " MiB\n";

  // The E24 comparison row: completion against the Theorem 1 cooperative
  // optimum (price of barter = T / coop bound). Reported for every
  // scheduler so the randomized/credit rows line up in the same table.
  const Tick coop_bound = cooperative_lower_bound(n, k);
  const Tick strict_bound = strict_barter_lower_bound_equal_bw(n, k);
  const double price = head.result.completed
                           ? static_cast<double>(head.result.completion_tick) /
                                 static_cast<double>(coop_bound)
                           : 0.0;
  std::cout << "# scheduler " << scale::sched_kind_name(sched) << ", coop bound "
            << coop_bound << ", strict-barter bound " << strict_bound
            << ", price of barter " << fmt(price, 3) << "\n";

  // The pob/flow certificate on the exact topology this run used: riffle is
  // the only scheduler here bound by strict barter's same-tick coupling.
  const flow::CompletionCertificate cert = flow::certify_completion_bound(
      cfg, *topo,
      sched == scale::SchedKind::kRifflePipeline ? flow::BarterModel::kStrictBarter
                                                 : flow::BarterModel::kCooperative);
  const double certified = head.result.completed
                               ? flow::certified_price(head.result.completion_tick,
                                                       cert.lower_bound)
                               : 0.0;
  std::cout << "# certificate: T*=" << cert.lower_bound << ", certified price "
            << fmt(certified, 3) << "\n";

  bench::JsonReport json;
  json.str("bench", "scale_throughput")
      .count("n", n)
      .count("k", k)
      .count("degree", degree)
      .count("jobs", head.jobs)
      .str("scheduler", scale::sched_kind_name(sched))
      .count("coop_lower_bound", coop_bound)
      .count("strict_barter_bound", strict_bound)
      .num("price_of_barter", price)
      .certified(cert.lower_bound, certified)
      .count("credit_limit", opt.credit_limit)
      .str("policy", opt.policy == BlockPolicy::kRandom ? "random" : "rarest")
      .str("scan_kernel", scale::scan_kernel_name(opt.scan_kernel))
      .flag("completed", head.result.completed)
      .count("ticks_executed", head.result.ticks_executed)
      .count("completion_tick", head.result.completion_tick)
      .count("total_transfers", head.result.total_transfers)
      .count("node_ticks",
             static_cast<std::uint64_t>(n) * head.result.ticks_executed)
      .num("run_seconds", head.run_seconds)
      .num("topology_seconds", topo_seconds)
      .num("node_ticks_per_sec", head.node_ticks_per_sec)
      .num("transfers_per_sec", head.transfers_per_sec)
      .num("phase_generate_seconds", head.phases.generate_seconds)
      .num("phase_merge_seconds", head.phases.merge_seconds)
      .num("phase_apply_seconds", head.phases.apply_seconds)
      .count("state_bytes", head.state_bytes)
      .count("peak_rss_kb", rss_kb);
  if (points.size() > 1) {
    // The scaling trajectory, one flat field group per job count so the
    // JSON scraper stays trivial: *_j<jobs> suffixes, speedup vs the serial
    // sweep entry (or the first one when jobs=1 was clamped/deduped away —
    // speedup_baseline_jobs records which).
    std::string jobs_list;
    for (const SweepPoint& p : points) {
      if (!jobs_list.empty()) jobs_list += ',';
      jobs_list += std::to_string(p.jobs);
    }
    json.str("jobs_sweep", jobs_list);
    json.count("speedup_baseline_jobs", baseline.jobs);
    for (const SweepPoint& p : points) {
      const std::string suffix = "_j" + std::to_string(p.jobs);
      json.num("run_seconds" + suffix, p.run_seconds)
          .num("node_ticks_per_sec" + suffix, p.node_ticks_per_sec)
          .num("speedup" + suffix, baseline.run_seconds > 0.0 && p.run_seconds > 0.0
                                       ? baseline.run_seconds / p.run_seconds
                                       : 0.0)
          .num("phase_generate_seconds" + suffix, p.phases.generate_seconds)
          .num("phase_merge_seconds" + suffix, p.phases.merge_seconds)
          .num("phase_apply_seconds" + suffix, p.phases.apply_seconds);
    }
  }
  if (!json.write(args, "BENCH_scale.json")) return 1;
  return head.result.completed || cfg.max_ticks != 0 ? 0 : 1;
}

}  // namespace
}  // namespace pob

int main(int argc, char** argv) {
  try {
    return pob::main_impl(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "scale_throughput: " << e.what() << "\n";
    return 2;
  }
}
