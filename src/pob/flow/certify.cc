#include "pob/flow/certify.h"

#include <algorithm>
#include <vector>

namespace pob::flow {
namespace {

constexpr std::uint64_t kNoDist = ~0ull;

std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) { return (a + b - 1) / b; }

Tick clamp_tick(std::uint64_t t, const CertifyOptions& opt) {
  return static_cast<Tick>(std::min<std::uint64_t>(t, opt.horizon_cap));
}

/// Sorted-descending client capacities with prefix sums: prefix[c] = total
/// upload capacity of the c highest-capacity clients. Any schedule's set of
/// c block-holding clients has capacity <= prefix[c], which is what makes
/// the greedy envelopes below upper bounds on deliverable volume.
struct ClientCaps {
  std::vector<std::uint64_t> prefix;  // size n (clients 1..n-1 => c in 0..n-1)
  std::uint64_t max_cap = 0;

  explicit ClientCaps(const CapacityShape& shape) {
    std::vector<std::uint64_t> caps(shape.up.begin() + 1, shape.up.end());
    std::sort(caps.begin(), caps.end(), std::greater<>());
    prefix.resize(caps.size() + 1, 0);
    for (std::size_t i = 0; i < caps.size(); ++i) prefix[i + 1] = prefix[i] + caps[i];
    if (!caps.empty()) max_cap = caps.front();
  }
};

/// Cumulative-capacity ramp: at the start of tick t at most `infected`
/// clients can hold any block, so deliveries in tick t are bounded by the
/// infected set's capacity, and the infected set itself grows by at most
/// that many nodes (each delivery infects at most one empty node). Greedy
/// infection of the highest-capacity clients dominates every schedule.
Tick ramp_bound(const CapacityShape& shape, const ClientCaps& caps,
                const CertifyOptions& opt) {
  const std::uint64_t need =
      static_cast<std::uint64_t>(shape.demand_clients) * shape.k;
  const std::uint64_t clients = shape.n - 1;
  std::uint64_t cum = 0;
  std::uint64_t infected = 0;
  std::uint64_t t = 0;
  while (cum < need) {
    ++t;
    const std::uint64_t budget = shape.server_up + caps.prefix[infected];
    if (budget == 0 || t >= opt.horizon_cap) return opt.horizon_cap;
    cum += budget;
    infected = std::min(clients, infected + budget);
  }
  return clamp_tick(t, opt);
}

/// Theorem 1 generalized: some block's first copy leaves the server no
/// earlier than tick ceil(k / server_up); from then on its client copies
/// can at most grow by (1 + max client upload) per tick plus the server's
/// contribution, and every demand client needs one.
Tick last_block_bound(const CapacityShape& shape, const ClientCaps& caps,
                      const CertifyOptions& opt) {
  if (shape.server_up == 0) return opt.horizon_cap;
  const std::uint64_t clients = shape.n - 1;
  const std::uint64_t t0 = ceil_div(shape.k, shape.server_up);
  // Growth beyond the client count is irrelevant; clamping the factors
  // keeps the recurrence overflow-free.
  const std::uint64_t grow = std::min<std::uint64_t>(caps.max_cap, clients);
  const std::uint64_t seed = std::min<std::uint64_t>(shape.server_up, clients);
  std::uint64_t copies = seed;
  std::uint64_t extra = 0;
  while (copies < shape.demand_clients) {
    copies = std::min(clients, copies + copies * grow + seed);
    if (++extra >= opt.horizon_cap) return opt.horizon_cap;
  }
  return clamp_tick(t0 + extra, opt);
}

/// BFS hop distance from the server; kNoDist for unreachable nodes. The
/// complete topology short-circuits to distance 1 (materializing its
/// neighbor lists would be O(n^2)).
std::vector<std::uint64_t> server_distances(const CapacityShape& shape,
                                            const scale::Topology& topo) {
  std::vector<std::uint64_t> dist(shape.n, kNoDist);
  dist[kServer] = 0;
  if (topo.is_complete()) {
    for (std::uint32_t i = 1; i < shape.n; ++i) dist[i] = 1;
    return dist;
  }
  std::vector<NodeId> queue{kServer};
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    const std::uint32_t deg = topo.degree(u);
    for (std::uint32_t idx = 0; idx < deg; ++idx) {
      const NodeId v = topo.neighbor(u, idx);
      if (dist[v] != kNoDist) continue;
      dist[v] = dist[u] + 1;
      queue.push_back(v);
    }
  }
  return dist;
}

/// Strict barter, Theorem 2's d = u argument generalized: first blocks come
/// only from the server (an empty client cannot reciprocate), so the last
/// demand client is seeded at tick >= ceil(demand / server_up) and then
/// needs k - 1 more blocks at its per-tick reception rate. The schedule
/// picks who is seeded last, so the rate is the best one available.
Tick seed_bound(const CapacityShape& shape, const CertifyOptions& opt) {
  if (shape.server_up == 0) return opt.horizon_cap;
  const std::uint64_t seed_ticks = ceil_div(shape.demand_clients, shape.server_up);
  if (shape.k == 1) return clamp_tick(seed_ticks, opt);
  std::uint64_t best_extra = kNoDist;
  for (std::uint32_t v = 1; v < shape.n; ++v) {
    if (!shape.demand[v]) continue;
    const std::uint64_t rate = std::min(shape.down[v], shape.up[v] + shape.server_up);
    if (rate == 0) continue;
    best_extra = std::min(best_extra, ceil_div(shape.k - 1, rate));
  }
  if (best_extra == kNoDist) return opt.horizon_cap;
  return clamp_tick(seed_ticks + best_extra, opt);
}

/// Strict barter pairing ramp (Theorem 2's d >= 2u regime, generalized):
/// at tick t at most server_up * (t - 1) clients have been seeded, client-
/// client transfers come in reciprocal pairs (even total, bounded by the
/// seeded clients' capacity), and the server adds server_up more.
Tick strict_ramp_bound(const CapacityShape& shape, const ClientCaps& caps,
                       const CertifyOptions& opt) {
  if (shape.server_up == 0) return opt.horizon_cap;
  const std::uint64_t need =
      static_cast<std::uint64_t>(shape.demand_clients) * shape.k;
  const std::uint64_t clients = shape.n - 1;
  std::uint64_t cum = 0;
  std::uint64_t t = 0;
  while (cum < need) {
    ++t;
    if (t >= opt.horizon_cap) return opt.horizon_cap;
    const std::uint64_t capable = std::min(shape.server_up * (t - 1), clients);
    const std::uint64_t barter = caps.prefix[capable];
    cum += shape.server_up + 2 * (barter / 2);
  }
  return clamp_tick(t, opt);
}

}  // namespace

CompletionCertificate certify_completion_bound(const EngineConfig& config,
                                               const scale::Topology& topology,
                                               BarterModel mechanism,
                                               const CertifyOptions& options) {
  const CapacityShape shape = CapacityShape::from_config(config);
  CompletionCertificate cert;
  cert.demand_clients = shape.demand_clients;
  if (shape.n < 2 || shape.k == 0 || shape.demand_clients == 0) return cert;

  const ClientCaps caps(shape);
  cert.ramp_bound = ramp_bound(shape, caps, options);
  cert.last_block_bound = last_block_bound(shape, caps, options);
  if (mechanism == BarterModel::kStrictBarter) {
    cert.seed_bound = seed_bound(shape, options);
    cert.strict_ramp_bound = strict_ramp_bound(shape, caps, options);
  }

  // Per-client pipe bound: distance delays the first reception, the inflow
  // cap (own download vs neighborhood upload) limits the rate after it.
  const std::vector<std::uint64_t> dist = server_distances(shape, topology);
  std::uint64_t total_up = 0;
  for (const std::uint64_t u : shape.up) total_up += u;
  std::vector<std::uint64_t> pipe(shape.n, 0);
  for (std::uint32_t v = 1; v < shape.n; ++v) {
    if (!shape.demand[v]) continue;
    std::uint64_t inflow;
    if (topology.is_complete()) {
      inflow = total_up - shape.up[v];
    } else {
      inflow = 0;
      const std::uint32_t deg = topology.degree(v);
      for (std::uint32_t idx = 0; idx < deg; ++idx) {
        inflow += shape.up[topology.neighbor(v, idx)];
      }
    }
    inflow = std::min(inflow, shape.down[v]);
    pipe[v] = dist[v] == kNoDist || inflow == 0
                  ? options.horizon_cap
                  : std::min<std::uint64_t>(
                        dist[v] - 1 + ceil_div(shape.k, inflow), options.horizon_cap);
    if (pipe[v] > cert.pipe_bound) {
      cert.pipe_bound = static_cast<Tick>(pipe[v]);
      cert.pipe_client = v;
    }
  }

  const Tick counting =
      std::max({cert.ramp_bound, cert.last_block_bound, cert.pipe_bound,
                cert.seed_bound, cert.strict_ramp_bound});
  cert.lower_bound = counting;

  // Time-expanded flow refinement. Complete topologies skip it: the
  // counting components are exact there (Theorem 1/2 tight), and unrolling
  // n^2 arcs per tick buys nothing.
  if (!topology.is_complete() && counting < options.horizon_cap) {
    const std::uint64_t span = static_cast<std::uint64_t>(counting) + shape.k + shape.n;
    const Tick hi = clamp_tick(span, options);
    if (time_expanded_arc_count(shape, topology, hi, mechanism) <=
        options.flow_arc_budget) {
      cert.flow_evaluated = true;
      // The worst clients by pipe score are the candidates worth the search.
      std::vector<NodeId> sinks;
      for (std::uint32_t v = 1; v < shape.n; ++v) {
        if (shape.demand[v]) sinks.push_back(v);
      }
      std::sort(sinks.begin(), sinks.end(),
                [&](NodeId a, NodeId b) { return pipe[a] > pipe[b]; });
      if (sinks.size() > options.max_flow_sinks) sinks.resize(options.max_flow_sinks);

      Tick best = counting;
      for (const NodeId v : sinks) {
        const auto feasible = [&](Tick t) {
          return horizon_feasible(shape, topology, t, v, mechanism);
        };
        if (best >= hi || feasible(best)) continue;  // no improvement here
        // Exponential probe out of the infeasible region, then binary
        // search the boundary. Feasibility is monotone in the horizon (a
        // longer unrolling embeds the shorter one).
        Tick bad = best;
        Tick step = 1;
        Tick probe = std::min<Tick>(best + step, hi);
        while (probe < hi && !feasible(probe)) {
          bad = probe;
          step *= 2;
          probe = std::min<Tick>(probe + step, hi);
        }
        if (probe >= hi && !feasible(hi)) {
          // Even the generous horizon is infeasible — certify it and stop
          // (hi + 1 is sound; the true bound may be larger still).
          best = clamp_tick(static_cast<std::uint64_t>(hi) + 1, options);
          cert.flow_client = v;
          continue;
        }
        Tick good = probe;
        while (bad + 1 < good) {
          const Tick mid = bad + (good - bad) / 2;
          (feasible(mid) ? good : bad) = mid;
        }
        if (good > best) {
          best = good;
          cert.flow_client = v;
        }
      }
      if (best > counting) cert.flow_bound = best;
      cert.lower_bound = std::max(counting, best);
    }
  }
  return cert;
}

double certified_price(Tick simulated, Tick certified) {
  if (simulated == 0 || certified == 0) return 0.0;
  return static_cast<double>(simulated) / static_cast<double>(certified);
}

}  // namespace pob::flow
