// E20 — testing §2.4.4's mixing conjecture.
//
// "We conjecture that the phenomenon may be related to the mixing
// properties of G, with near-optimal performance kicking in when the graph
// degree is Θ(log n)."
//
// For each overlay we report the estimated spectral gap of its random walk
// (the standard mixing measure) next to the measured completion time of the
// cooperative randomized algorithm, and — the sharper test — the
// credit-limited variant whose degree threshold motivated the conjecture.

#include <iostream>
#include <memory>

#include "bench_util.h"
#include "pob/analysis/bounds.h"
#include "pob/overlay/spectral.h"

namespace pob::bench {
namespace {

int main_impl(int argc, char** argv) {
  const Args args(argc, argv);
  TrialRunner trials(args);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 500));
  const auto k = static_cast<std::uint32_t>(args.get_int("k", 500));
  const auto runs = static_cast<std::uint32_t>(args.get_int("runs", 3));
  std::vector<std::int64_t> degrees =
      args.get_int_list("degrees", {4, 8, 16, 32, 64, 96, 128});

  EngineConfig coop_cfg;
  coop_cfg.num_nodes = n;
  coop_cfg.num_blocks = k;

  EngineConfig credit_cfg = coop_cfg;
  credit_cfg.max_ticks = 8 * cooperative_lower_bound(n, k);
  credit_cfg.stall_window = 250;

  Table table({"overlay", "degree", "spectral-gap", "T cooperative",
               "T credit(s=1)", "optimal"});
  const auto row = [&](const std::string& name, std::uint32_t degree, double gap,
                       const TrialStats& coop, const TrialStats& credit) {
    table.add_row({name, std::to_string(degree), fmt(gap, 3),
                   fmt_ci(coop.completion.mean, coop.completion.ci95),
                   completion_cell(credit, static_cast<double>(credit_cfg.max_ticks)),
                   std::to_string(cooperative_lower_bound(n, k))});
  };

  for (const std::int64_t d64 : degrees) {
    const auto d = static_cast<std::uint32_t>(d64);
    // One representative graph per degree for the spectral estimate; fresh
    // graphs per run for the timing trials.
    Rng spectral_rng(0xE20'0000 + d);
    Rng graph_rng(0xE20'1000 + d);
    const Graph sample = make_random_regular(n, d, graph_rng);
    const SpectralEstimate spec = estimate_lambda2(sample, spectral_rng, 400);

    const TrialStats coop = trials(runs, [&](std::uint32_t i) {
      Rng grng(trial_seed(0xE20'2000 + 131ull * d, i));
      auto ov = std::make_shared<GraphOverlay>(make_random_regular(n, d, grng));
      return randomized_trial(coop_cfg, std::move(ov), {}, trial_seed(0xE20'3000 + 7ull * d, i));
    });
    const TrialStats credit = trials(runs, [&](std::uint32_t i) {
      return credit_trial(credit_cfg, d, 1, {}, trial_seed(0xE20'4000 + 11ull * d, i));
    });
    row("random-regular", d, spec.gap, coop, credit);
  }
  {
    Rng spectral_rng(0xE20'5000);
    const Graph cube = make_hypercube_overlay(n);
    const SpectralEstimate spec = estimate_lambda2(cube, spectral_rng, 400);
    const TrialStats coop = trials(runs, [&](std::uint32_t i) {
      auto ov = std::make_shared<GraphOverlay>(make_hypercube_overlay(n));
      return randomized_trial(coop_cfg, std::move(ov), {}, trial_seed(0xE20'6000, i));
    });
    const TrialStats credit = trials(runs, [&](std::uint32_t i) {
      auto ov = std::make_shared<GraphOverlay>(make_hypercube_overlay(n));
      RandomizedOptions opt;
      CreditRandomized cr = make_credit_randomized(std::move(ov), opt,
                                                   Rng(trial_seed(0xE20'7000, i)), 1);
      const RunResult r = run(credit_cfg, *cr.scheduler, cr.mechanism.get());
      TrialOutcome out;
      out.completed = r.completed;
      if (r.completed) {
        out.completion = static_cast<double>(r.completion_tick);
        out.mean_completion = r.mean_client_completion();
      }
      return out;
    });
    row("hypercube-like", static_cast<std::uint32_t>(cube.average_degree()), spec.gap,
        coop, credit);
  }
  std::cout << "# E20/§2.4.4 conjecture: spectral gap (mixing) vs completion time "
               "(n = " << n << ", k = " << k << ")\n";
  emit(args, table);
  trials.report(std::cout);
  std::cout << "\nreading: cooperative T is insensitive once the graph is connected\n"
               "enough, but the credit-limited threshold tracks the gap — poor\n"
               "mixing (small gap) is where credit exhaustion strands the swarm.\n";
  return 0;
}

}  // namespace
}  // namespace pob::bench

int main(int argc, char** argv) { return pob::bench::main_impl(argc, argv); }
