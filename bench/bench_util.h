// Helpers shared by the experiment binaries: standard flag handling, the
// randomized-trial plumbing (per-run seeds, censoring, CSV output), and the
// machine-readable --json result format CI archives as BENCH_*.json.

#pragma once

#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "pob/core/engine.h"
#include "pob/exp/cli.h"
#include "pob/exp/parallel.h"
#include "pob/exp/sweep.h"
#include "pob/exp/table.h"
#include "pob/overlay/builders.h"
#include "pob/overlay/overlay.h"
#include "pob/rand/randomized.h"

namespace pob::bench {

/// Prints the table, as text or CSV depending on --csv.
inline void emit(const Args& args, const Table& table) {
  if (args.has("csv")) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

/// Runs every repeat_trials-style sweep of a bench binary through the
/// deterministic parallel runner, honoring --jobs (default: hardware
/// concurrency; --jobs=1 restores serial execution) and accumulating
/// wall-clock and trial counts so the binary can report throughput.
class TrialRunner {
 public:
  explicit TrialRunner(const Args& args)
      : jobs_(jobs_from_flag(args.get_int("jobs", 0))) {}

  TrialStats operator()(std::uint32_t runs,
                        const std::function<TrialOutcome(std::uint32_t)>& trial) {
    const auto start = std::chrono::steady_clock::now();
    const TrialStats stats = repeat_trials_parallel(runs, jobs_, trial);
    seconds_ += std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                    .count();
    trials_ += runs;
    return stats;
  }

  /// Emits "# sweep: ..." with wall-clock and trials/sec; a comment line, so
  /// CSV consumers and the BENCH_*.json scraper can keep or skip it.
  void report(std::ostream& os) const {
    const double rate = seconds_ > 0.0 ? static_cast<double>(trials_) / seconds_ : 0.0;
    os << "# sweep: " << trials_ << " trials in " << fmt(seconds_, 2) << " s ("
       << fmt(rate, 1) << " trials/s, jobs=" << (jobs_ == 0 ? default_jobs() : jobs_)
       << ")\n";
  }

 private:
  unsigned jobs_;
  std::uint64_t trials_ = 0;
  double seconds_ = 0.0;
};

/// A flat JSON object a bench binary fills with its headline numbers and
/// writes via --json=<path> (CI uploads these as artifacts, so throughput
/// history survives the build logs). Values render on insertion; insertion
/// order is preserved. Keys and strings must not need JSON escaping — bench
/// metadata never does.
class JsonReport {
 public:
  JsonReport& count(const std::string& key, std::uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonReport& num(const std::string& key, double value) {
    std::ostringstream os;
    os.precision(6);
    os << std::fixed << value;
    fields_.emplace_back(key, os.str());
    return *this;
  }
  JsonReport& str(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, '"' + value + '"');
    return *this;
  }
  JsonReport& flag(const std::string& key, bool value) {
    fields_.emplace_back(key, value ? "true" : "false");
    return *this;
  }
  /// The certificate pair every certified bench emits under the same keys,
  /// so CI can grep `certified_price` out of any BENCH_*.json: the pob/flow
  /// oracle's lower bound T* and the simulated-T / T* ratio.
  JsonReport& certified(std::uint64_t lower_bound, double price) {
    return count("certified_lower_bound", lower_bound).num("certified_price", price);
  }

  /// Writes to the --json=<path> flag's target, or to `fallback` when the
  /// flag is absent and a fallback is given. Returns false (with a note on
  /// stderr) when the file cannot be opened; true otherwise, including the
  /// silent no-op when there is nowhere to write.
  bool write(const Args& args, const std::string& fallback = "") const {
    const std::string path = args.get_string("json", fallback);
    if (path.empty()) return true;
    std::ofstream os(path);
    if (!os) {
      std::cerr << "cannot write " << path << "\n";
      return false;
    }
    os << "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i != 0) os << ", ";
      os << '"' << fields_[i].first << "\": " << fields_[i].second;
    }
    os << "}\n";
    std::cout << "# wrote " << path << "\n";
    return true;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// The index of the sweep point speedups are measured against: the
/// jobs == 1 entry wherever it sits in the list, falling back to the first
/// entry when no serial point ran. jobs_from_flag clamps oversized requests
/// and callers dedupe collapsed values, so a requested "1" can be absent
/// (or present but not first) in the effective list; speedups must
/// normalize against the real serial run when there is one.
inline std::size_t sweep_baseline_index(const std::vector<unsigned>& jobs) {
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i] == 1) return i;
  }
  return 0;
}

/// A randomized-cooperative trial on a fixed overlay.
inline TrialOutcome randomized_trial(const EngineConfig& cfg,
                                     std::shared_ptr<const Overlay> overlay,
                                     RandomizedOptions opt, std::uint64_t seed) {
  RandomizedScheduler sched(std::move(overlay), opt, Rng(seed));
  const RunResult r = run(cfg, sched);
  TrialOutcome out;
  out.completed = r.completed;
  if (r.completed) {
    out.completion = static_cast<double>(r.completion_tick);
    out.mean_completion = r.mean_client_completion();
  }
  return out;
}

/// A credit-limited randomized trial on a freshly drawn random regular
/// overlay (a new graph per run, like re-running the experiment).
inline TrialOutcome credit_trial(const EngineConfig& cfg, std::uint32_t degree,
                                 std::uint32_t credit, RandomizedOptions opt,
                                 std::uint64_t seed) {
  Rng graph_rng(seed * 2654435761u + degree);
  auto overlay = std::make_shared<GraphOverlay>(
      make_random_regular(cfg.num_nodes, degree, graph_rng));
  CreditRandomized cr = make_credit_randomized(std::move(overlay), opt,
                                               Rng(seed), credit);
  const RunResult r = run(cfg, *cr.scheduler, cr.mechanism.get());
  TrialOutcome out;
  out.completed = r.completed;
  if (r.completed) {
    out.completion = static_cast<double>(r.completion_tick);
    out.mean_completion = r.mean_client_completion();
  }
  return out;
}

}  // namespace pob::bench
