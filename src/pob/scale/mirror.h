// MirrorScheduler: replays scale::Engine's planned transfer stream through
// core::Engine, tick for tick.
//
// This is how the mega-swarm engine earns trust. scale::Engine is fast
// because it validates nothing; core::Engine (and the pob/check reference
// oracle behind it) validates everything and trusts no scheduler. The mirror
// welds them together: each plan_tick() first syncs externally-caused
// departures from the core SwarmState into the scale engine, then runs the
// scale planner (phases 1 + 2 — the same receiver-sharded merge run() uses,
// executed on the calling thread), hands the stream to core for validation,
// and applies the same stream to the scale state (via the serial commit
// path, which leaves the engine bit-identical to run()'s sharded commit) so
// both sides enter the next tick in lockstep.
//
// If, for matching configs, seed and topology,
//
//     scale::Engine(cfg, topo, opt, seed).run(jobs)
//  ==
//     pob::run(cfg, MirrorScheduler(...), mechanism)   [field for field]
//
// then the scale engine's transfers were legal under the machine-checked
// model (and mechanism) on every tick, and its bookkeeping (completion
// ticks, upload counts, stall detection, churn accounting) agrees with the
// reference implementation. The scenario fuzzer asserts exactly this.
//
// The same weld covers the deterministic schedulers: a scale engine built
// with SchedKind::kRifflePipeline mirrored against core's StrictBarter
// mechanism (or kTriangularBarter against CyclicBarter(3, credit 1)) proves
// the closed-form schedules really satisfy the barter constraints they
// claim, not just their own bookkeeping.

#pragma once

#include <memory>
#include <vector>

#include "pob/core/scheduler.h"
#include "pob/scale/engine.h"

namespace pob::scale {

class MirrorScheduler final : public Scheduler {
 public:
  /// Takes ownership of a freshly constructed scale engine (its lockstep
  /// API is driven from here; do not also call run() on it).
  explicit MirrorScheduler(std::unique_ptr<Engine> engine);

  std::string_view name() const override { return "scale-mirror"; }

  void plan_tick(Tick tick, const SwarmState& state,
                 std::vector<Transfer>& out) override;

  const Engine& engine() const { return *engine_; }

 private:
  std::unique_ptr<Engine> engine_;
  std::vector<Transfer> planned_;
};

}  // namespace pob::scale
