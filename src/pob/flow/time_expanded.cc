#include "pob/flow/time_expanded.h"

#include <algorithm>
#include <sstream>

namespace pob::flow {
namespace {

/// Adjacency test against the CSR (or arithmetic-complete) topology; the
/// neighbor lists are sorted ascending, so binary search suffices.
bool has_edge(const scale::Topology& topo, NodeId u, NodeId v) {
  if (u == v) return false;
  if (topo.is_complete()) return true;
  std::uint32_t lo = 0;
  std::uint32_t hi = topo.degree(u);
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    const NodeId w = topo.neighbor(u, mid);
    if (w == v) return true;
    if (w < v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return false;
}

std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) { return (a + b - 1) / b; }

}  // namespace

CapacityShape CapacityShape::from_config(const EngineConfig& config) {
  CapacityShape shape;
  shape.n = config.num_nodes;
  shape.k = config.num_blocks;
  if (shape.n < 2 || shape.k == 0) return shape;

  shape.up.resize(shape.n);
  shape.down.resize(shape.n);
  for (std::uint32_t i = 0; i < shape.n; ++i) {
    shape.up[i] = config.upload_capacities.empty() ? config.upload_capacity
                                                   : config.upload_capacities[i];
    shape.down[i] = config.download_capacities.empty()
                        ? config.download_capacity
                        : config.download_capacities[i];
  }
  if (config.upload_capacities.empty() && config.server_upload_capacity != 0) {
    shape.up[kServer] = config.server_upload_capacity;
  }
  shape.server_up = shape.up[kServer];

  // Demand = clients with no scheduled departure. depart_on_complete leavers
  // still must finish first, so they stay in demand; capacity contributions
  // of departed nodes are deliberately never subtracted (over-estimating
  // capacity keeps the certificate a lower bound).
  shape.demand.assign(shape.n, 1);
  shape.demand[kServer] = 0;
  for (const auto& [tick, node] : config.departures) {
    (void)tick;
    if (node < shape.n) shape.demand[node] = 0;
  }
  for (std::uint32_t i = 1; i < shape.n; ++i) {
    if (shape.demand[i]) ++shape.demand_clients;
  }
  return shape;
}

std::uint64_t time_expanded_arc_count(const CapacityShape& shape,
                                      const scale::Topology& topology,
                                      Tick horizon, BarterModel model) {
  const std::uint64_t per_tick =
      3ull * shape.n + topology.num_directed_edges() +
      (model == BarterModel::kStrictBarter ? shape.n : 0);
  return 2ull * shape.k + per_tick * horizon;
}

TimeExpandedGraph build_time_expanded(const CapacityShape& shape,
                                      const scale::Topology& topology,
                                      Tick horizon, NodeId sink_client,
                                      BarterModel model) {
  const std::uint32_t n = shape.n;
  const std::uint32_t k = shape.k;
  const bool strict = model == BarterModel::kStrictBarter;
  const std::int64_t kFlow = static_cast<std::int64_t>(k);
  // Any capacity >= k is non-binding for a k-unit flow; clamping keeps the
  // arithmetic small and kUnlimited harmless.
  const auto cap = [&](std::uint64_t c) {
    return static_cast<std::int64_t>(std::min<std::uint64_t>(c, k));
  };

  // Node layout: source, k block nodes, then per tick: n states (ticks
  // 0..T), n upload ports (1..T), n download ports (1..T), and under strict
  // barter n client-coupling sub-ports (1..T).
  const std::uint32_t source = 0;
  const std::uint32_t block0 = 1;
  const std::uint32_t state0 = block0 + k;
  const std::uint32_t up0 = state0 + (horizon + 1) * n;
  const std::uint32_t down0 = up0 + horizon * n;
  const std::uint32_t cli0 = down0 + horizon * n;
  const std::uint32_t total = cli0 + (strict ? horizon * n : 0);
  const auto state = [&](NodeId i, Tick t) { return state0 + t * n + i; };
  const auto up_port = [&](NodeId i, Tick t) { return up0 + (t - 1) * n + i; };
  const auto down_port = [&](NodeId i, Tick t) { return down0 + (t - 1) * n + i; };
  const auto cli_port = [&](NodeId i, Tick t) { return cli0 + (t - 1) * n + i; };

  TimeExpandedGraph g;
  g.net = FlowNetwork(total);
  g.source = source;
  g.sink = state(sink_client, horizon);
  g.demand = kFlow;

  // Per-block source arcs: the server holds every block from tick 0, but at
  // most server_up blocks can *first leave* it per tick, so (ordering blocks
  // by first departure) the i-th block is not uploadable before tick
  // ceil(i / server_up) — its unit enters the server's state one tick prior.
  for (std::uint32_t b = 0; b < k; ++b) {
    g.net.add_arc(source, block0 + b, 1);
    if (shape.server_up == 0) continue;  // nothing ever leaves the server
    const std::uint64_t release = ceil_div(b + 1, shape.server_up);
    if (release - 1 > horizon) continue;  // unreachable within the horizon
    g.net.add_arc(block0 + b, state(kServer, static_cast<Tick>(release - 1)), 1);
  }

  for (Tick t = 1; t <= horizon; ++t) {
    for (NodeId i = 0; i < n; ++i) {
      // Storage: a held block stays held.
      g.net.add_arc(state(i, t - 1), state(i, t), kFlow);
      // Upload port (unit cost: min-cost flow counts transfer volume); a
      // block can be forwarded only from the tick after it was received —
      // exactly the state(t-1) -> transfer-at-t wiring.
      if (shape.up[i] > 0) {
        g.net.add_arc(state(i, t - 1), up_port(i, t), cap(shape.up[i]), 1);
      }
      // Download port.
      g.net.add_arc(down_port(i, t), state(i, t), cap(shape.down[i]));
      // Barter coupling: strict barter pairs every client-client transfer
      // with a simultaneous reciprocal upload, so client-sourced receptions
      // at j per tick cannot exceed j's own upload capacity either.
      if (strict && i != kServer) {
        g.net.add_arc(cli_port(i, t),
                      down_port(i, t), cap(std::min(shape.up[i], shape.down[i])));
      }
    }
    for (NodeId i = 0; i < n; ++i) {
      if (shape.up[i] == 0) continue;
      const std::uint32_t deg = topology.degree(i);
      for (std::uint32_t idx = 0; idx < deg; ++idx) {
        const NodeId j = topology.neighbor(i, idx);
        const std::uint32_t target = strict && i != kServer && j != kServer
                                         ? cli_port(j, t)
                                         : down_port(j, t);
        g.net.add_arc(up_port(i, t), target, kFlow);
      }
    }
  }
  return g;
}

bool horizon_feasible(const CapacityShape& shape, const scale::Topology& topology,
                      Tick horizon, NodeId sink_client, BarterModel model) {
  TimeExpandedGraph g = build_time_expanded(shape, topology, horizon, sink_client, model);
  return g.net.max_flow(g.source, g.sink, g.demand) >= g.demand;
}

std::optional<std::string> tick_flow_feasible(const CapacityShape& shape,
                                              const scale::Topology& topology,
                                              const std::vector<Transfer>& transfers) {
  if (transfers.empty()) return std::nullopt;
  const std::uint32_t n = shape.n;
  for (const Transfer& tr : transfers) {
    if (tr.from >= n || tr.to >= n || tr.from == tr.to) {
      std::ostringstream os;
      os << "transfer " << tr.from << "->" << tr.to << " has malformed endpoints";
      return os.str();
    }
    if (!has_edge(topology, tr.from, tr.to)) {
      std::ostringstream os;
      os << "transfer " << tr.from << "->" << tr.to << " is not an overlay edge";
      return os.str();
    }
  }

  // Bipartite flow: source -> sender upload port (cap u_i) -> one unit arc
  // per transfer -> receiver download port (cap d_j) -> sink. The tick is
  // realizable iff every transfer routes.
  const auto count = static_cast<std::int64_t>(transfers.size());
  FlowNetwork net(2 + 2 * n);
  const std::uint32_t source = 0;
  const std::uint32_t sink = 1;
  const auto up_port = [&](NodeId i) { return 2 + i; };
  const auto down_port = [&](NodeId i) { return 2 + n + i; };
  const auto cap = [&](std::uint64_t c) {
    return static_cast<std::int64_t>(std::min<std::uint64_t>(c, transfers.size()));
  };
  std::vector<char> has_up(n, 0), has_down(n, 0);
  for (const Transfer& tr : transfers) {
    if (!has_up[tr.from]) {
      has_up[tr.from] = 1;
      net.add_arc(source, up_port(tr.from), cap(shape.up[tr.from]));
    }
    if (!has_down[tr.to]) {
      has_down[tr.to] = 1;
      net.add_arc(down_port(tr.to), sink, cap(shape.down[tr.to]));
    }
    net.add_arc(up_port(tr.from), down_port(tr.to), 1);
  }
  const std::int64_t routed = net.max_flow(source, sink, count);
  if (routed == count) return std::nullopt;
  std::ostringstream os;
  os << "tick transfer set infeasible under capacities: only " << routed << " of "
     << count << " transfers route";
  return os.str();
}

}  // namespace pob::flow
