#include "pob/analysis/regression.h"

#include <gtest/gtest.h>

#include "pob/core/rng.h"

namespace pob {
namespace {

TEST(Regression, RecoversExactLinearModel) {
  std::vector<RegressionPoint> pts;
  for (double x1 = 1; x1 <= 5; ++x1) {
    for (double x2 = 1; x2 <= 4; ++x2) {
      pts.push_back({x1, x2, 2.5 * x1 + 7.0 * x2 + 3.0});
    }
  }
  const RegressionFit fit = fit_two_predictor(pts);
  EXPECT_NEAR(fit.a, 2.5, 1e-9);
  EXPECT_NEAR(fit.b, 7.0, 1e-9);
  EXPECT_NEAR(fit.c, 3.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
  EXPECT_NEAR(fit.predict(2, 3), 2.5 * 2 + 7.0 * 3 + 3.0, 1e-9);
}

TEST(Regression, ToleratesNoise) {
  Rng rng(5);
  std::vector<RegressionPoint> pts;
  for (int i = 0; i < 400; ++i) {
    const double x1 = rng.uniform() * 100;
    const double x2 = rng.uniform() * 10;
    const double noise = (rng.uniform() - 0.5) * 2.0;
    pts.push_back({x1, x2, 1.0 * x1 + 5.5 * x2 + 2.0 + noise});
  }
  const RegressionFit fit = fit_two_predictor(pts);
  EXPECT_NEAR(fit.a, 1.0, 0.02);
  EXPECT_NEAR(fit.b, 5.5, 0.2);
  EXPECT_NEAR(fit.c, 2.0, 1.0);
  EXPECT_GT(fit.r2, 0.99);
}

TEST(Regression, RejectsTooFewPoints) {
  const std::vector<RegressionPoint> two = {{1, 1, 1}, {2, 2, 2}};
  EXPECT_THROW(fit_two_predictor(two), std::invalid_argument);
}

TEST(Regression, RejectsDegeneratePredictors) {
  // x1 and x2 perfectly collinear -> singular normal equations.
  std::vector<RegressionPoint> pts;
  for (double x = 1; x <= 10; ++x) pts.push_back({x, 2 * x, 3 * x});
  EXPECT_THROW(fit_two_predictor(pts), std::invalid_argument);
}

}  // namespace
}  // namespace pob
