#include <gtest/gtest.h>

#include "pob/mech/barter.h"

namespace pob {
namespace {

SwarmState rich_state() {
  // 4 nodes, 6 blocks; clients hold plenty to send.
  SwarmState s(4, 6);
  for (NodeId c = 1; c <= 3; ++c) {
    for (BlockId b = 0; b < 4; ++b) s.add_block(c, (b + c) % 6, 1);
  }
  return s;
}

TEST(CreditLedger, SignConventionAndSymmetry) {
  CreditLedger ledger;
  EXPECT_EQ(ledger.net(1, 2), 0);
  ledger.record(1, 2);
  EXPECT_EQ(ledger.net(1, 2), 1);
  EXPECT_EQ(ledger.net(2, 1), -1);
  ledger.record(2, 1);
  EXPECT_EQ(ledger.net(1, 2), 0);
  ledger.record(5, 3);  // higher id sends to lower
  EXPECT_EQ(ledger.net(5, 3), 1);
  EXPECT_EQ(ledger.net(3, 5), -1);
}

TEST(CreditLimited, RequiresPositiveLimit) {
  EXPECT_THROW(CreditLimited(0), std::invalid_argument);
}

TEST(CreditLimited, OneFreeBlockThenBlocked) {
  CreditLimited mech(1);
  const SwarmState s = rich_state();
  const std::vector<Transfer> first = {{1, 2, 1}};
  ASSERT_EQ(mech.check_tick(2, first, s), std::nullopt);
  mech.commit_tick(2, first, s);
  EXPECT_EQ(mech.ledger().net(1, 2), 1);
  EXPECT_FALSE(mech.may_upload(1, 2));
  EXPECT_TRUE(mech.may_upload(2, 1));  // the debtor can repay

  const std::vector<Transfer> second = {{1, 2, 2}};
  EXPECT_TRUE(mech.check_tick(3, second, s).has_value());
}

TEST(CreditLimited, SimultaneousExchangeKeepsNetFlat) {
  CreditLimited mech(1);
  const SwarmState s = rich_state();
  // u->v and v->u in the same tick: net stays 0, always legal.
  const std::vector<Transfer> tick = {{1, 2, 1}, {2, 1, 5}};
  for (Tick t = 2; t < 10; ++t) {
    ASSERT_EQ(mech.check_tick(t, tick, s), std::nullopt) << t;
    mech.commit_tick(t, tick, s);
  }
  EXPECT_EQ(mech.ledger().net(1, 2), 0);
}

TEST(CreditLimited, HigherLimitAllowsDeeperDebt) {
  CreditLimited mech(3);
  const SwarmState s = rich_state();
  for (const BlockId b : {1u, 2u, 3u}) {
    const std::vector<Transfer> tick = {{1, 2, b}};
    ASSERT_EQ(mech.check_tick(b + 1, tick, s), std::nullopt);
    mech.commit_tick(b + 1, tick, s);
  }
  EXPECT_EQ(mech.ledger().net(1, 2), 3);
  EXPECT_FALSE(mech.may_upload(1, 2));
  const std::vector<Transfer> over = {{1, 2, 4}};
  EXPECT_TRUE(mech.check_tick(9, over, s).has_value());
}

TEST(CreditLimited, ServerIsExemptBothWays) {
  CreditLimited mech(1);
  const SwarmState s = rich_state();
  const std::vector<Transfer> server_sends = {{kServer, 1, 5}, {kServer, 2, 5}};
  EXPECT_EQ(mech.check_tick(2, server_sends, s), std::nullopt);
  EXPECT_TRUE(mech.may_upload(kServer, 1));
  EXPECT_FALSE(mech.may_upload(1, kServer));
  const std::vector<Transfer> to_server = {{1, kServer, 1}};
  EXPECT_TRUE(mech.check_tick(2, to_server, s).has_value());
}

TEST(CreditLimited, ChecksWholeTickNet) {
  CreditLimited mech(1);
  const SwarmState s = rich_state();
  // Two u->v transfers in one tick overdraw a limit of 1 even from zero.
  const std::vector<Transfer> tick = {{1, 2, 1}, {1, 2, 2}};
  EXPECT_TRUE(mech.check_tick(2, tick, s).has_value());
}

}  // namespace
}  // namespace pob
