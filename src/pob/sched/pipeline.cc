#include "pob/sched/pipeline.h"

#include <stdexcept>

namespace pob {

PipelineScheduler::PipelineScheduler(std::uint32_t num_nodes, std::uint32_t num_blocks)
    : n_(num_nodes), k_(num_blocks) {
  if (n_ < 2) throw std::invalid_argument("pipeline: need >= 2 nodes");
}

void PipelineScheduler::plan_tick(Tick tick, const SwarmState& /*state*/,
                                  std::vector<Transfer>& out) {
  // Block b (0-based) leaves the server at tick b + 1 and reaches client i at
  // tick b + i; client i relays it to client i + 1 one tick later.
  if (tick <= k_) {
    out.push_back({kServer, 1, static_cast<BlockId>(tick - 1)});
  }
  for (NodeId i = 1; i + 1 < n_; ++i) {
    // Client i relays block (tick - i - 1) if that block id is valid.
    if (tick >= i + 1) {
      const Tick b = tick - i - 1;
      if (b < k_) out.push_back({i, i + 1, static_cast<BlockId>(b)});
    }
  }
}

}  // namespace pob
