#include "pob/coding/gf2.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

namespace pob {

Gf2Vector::Gf2Vector(std::uint32_t dimension)
    : dimension_(dimension), words_((dimension + 63) / 64, 0) {}

void Gf2Vector::operator^=(const Gf2Vector& other) {
  assert(dimension_ == other.dimension_);
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] ^= other.words_[w];
}

bool Gf2Vector::is_zero() const {
  for (const std::uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

std::uint32_t Gf2Vector::leading() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return static_cast<std::uint32_t>(
          (w << 6) + static_cast<std::uint32_t>(std::countr_zero(words_[w])));
    }
  }
  return dimension_;
}

Gf2Vector Gf2Vector::random_nonzero(std::uint32_t dimension, Rng& rng) {
  Gf2Vector v(dimension);
  do {
    for (std::size_t w = 0; w < v.words_.size(); ++w) v.words_[w] = rng.next();
    // Mask stray high bits in the last word.
    if (dimension & 63) v.words_.back() &= (1ULL << (dimension & 63)) - 1;
  } while (v.is_zero());
  return v;
}

Gf2Vector Gf2Vector::unit(std::uint32_t dimension, std::uint32_t i) {
  Gf2Vector v(dimension);
  v.set(i);
  return v;
}

Gf2Basis::Gf2Basis(std::uint32_t dimension) : dimension_(dimension) {}

Gf2Vector Gf2Basis::reduce(Gf2Vector v) const {
  for (const Gf2Vector& row : rows_) {
    if (v.is_zero()) break;
    const std::uint32_t lead = v.leading();
    const std::uint32_t row_lead = row.leading();
    if (row_lead > lead) break;  // rows_ sorted; nothing can cancel v's lead
    if (row_lead == lead) v ^= row;
  }
  return v;
}

bool Gf2Basis::insert(Gf2Vector v) {
  if (v.dimension() != dimension_) throw std::invalid_argument("Gf2Basis: dimension");
  // Full reduction loop: reduce() only runs one pass; repeat until stable.
  for (;;) {
    const Gf2Vector reduced = reduce(v);
    if (reduced == v) break;
    v = reduced;
  }
  if (v.is_zero()) return false;
  const std::uint32_t lead = v.leading();
  const auto pos = std::lower_bound(
      rows_.begin(), rows_.end(), lead,
      [](const Gf2Vector& row, std::uint32_t l) { return row.leading() < l; });
  rows_.insert(pos, std::move(v));
  return true;
}

bool Gf2Basis::contains(const Gf2Vector& v) const {
  Gf2Vector r = v;
  for (;;) {
    const Gf2Vector reduced = reduce(r);
    if (reduced == r) break;
    r = reduced;
  }
  return r.is_zero();
}

bool Gf2Basis::is_innovative_source(const Gf2Basis& other) const {
  for (const Gf2Vector& row : other.rows_) {
    if (!contains(row)) return true;
  }
  return false;
}

Gf2Vector Gf2Basis::random_combination(Rng& rng) const {
  if (rows_.empty()) throw std::logic_error("Gf2Basis: empty span");
  Gf2Vector v(dimension_);
  do {
    for (const Gf2Vector& row : rows_) {
      if (rng.chance(0.5)) v ^= row;
    }
  } while (v.is_zero());
  return v;
}

}  // namespace pob
