#include <stdexcept>

#include "pob/async/policies.h"

namespace pob {

AsyncSwarmPolicy::AsyncSwarmPolicy(std::shared_ptr<const Overlay> overlay,
                                   BlockPolicy block_policy,
                                   std::uint32_t download_ports, Rng rng,
                                   std::uint32_t max_probes)
    : overlay_(std::move(overlay)),
      block_policy_(block_policy),
      download_ports_(download_ports),
      rng_(rng),
      max_probes_(max_probes) {
  if (overlay_ == nullptr) throw std::invalid_argument("async swarm: null overlay");
}

bool AsyncSwarmPolicy::acceptable(NodeId u, NodeId v, const AsyncView& view) const {
  if (v == u || v == kServer) return false;
  if (view.is_complete(v)) return false;
  if (download_ports_ != kUnlimited && view.inbound_count(v) >= download_ports_) {
    return false;
  }
  return view.blocks_of(u).has_useful(view.blocks_of(v), &view.inbound_of(v));
}

Transfer AsyncSwarmPolicy::next_upload(NodeId node, double /*now*/,
                                       const AsyncView& view) {
  if (view.blocks_of(node).empty()) return {};
  const std::uint32_t deg = overlay_->degree(node);
  if (deg == 0) return {};
  NodeId target = kNoNode;
  for (std::uint32_t probe = 0; probe < max_probes_ && target == kNoNode; ++probe) {
    const NodeId v = overlay_->neighbor(node, rng_.below(deg));
    if (acceptable(node, v, view)) target = v;
  }
  if (target == kNoNode) {
    const std::uint32_t offset = rng_.below(deg);
    for (std::uint32_t i = 0; i < deg && target == kNoNode; ++i) {
      const NodeId v = overlay_->neighbor(node, (offset + i) % deg);
      if (acceptable(node, v, view)) target = v;
    }
  }
  if (target == kNoNode) return {};
  const BlockSet& have = view.blocks_of(node);
  const BlockSet* excl = &view.inbound_of(target);
  const BlockId b =
      block_policy_ == BlockPolicy::kRandom
          ? have.pick_random_useful(view.blocks_of(target), excl, rng_)
          : have.pick_rarest_useful(view.blocks_of(target), excl,
                                    view.block_frequency(), rng_);
  return {node, target, b};
}

}  // namespace pob
