#include "pob/exp/cli.h"

#include <stdexcept>

namespace pob {

Args::Args(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected argument: " + token);
    }
    token.erase(0, 2);
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      values_[token.substr(0, eq)] = token.substr(eq + 1);
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      values_[token] = argv[++i];
    } else {
      values_[token] = "";  // bare boolean flag
    }
  }
}

bool Args::has(std::string_view flag) const { return values_.count(flag) > 0; }

std::int64_t Args::get_int(std::string_view flag, std::int64_t fallback) const {
  const auto it = values_.find(flag);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::stoll(it->second);
}

double Args::get_double(std::string_view flag, double fallback) const {
  const auto it = values_.find(flag);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::stod(it->second);
}

std::string Args::get_string(std::string_view flag, std::string_view fallback) const {
  const auto it = values_.find(flag);
  if (it == values_.end()) return std::string(fallback);
  return it->second;
}

std::vector<std::int64_t> Args::get_int_list(std::string_view flag,
                                             std::vector<std::int64_t> fallback) const {
  const auto it = values_.find(flag);
  if (it == values_.end() || it->second.empty()) return fallback;
  std::vector<std::int64_t> out;
  std::string current;
  for (const char ch : it->second + ",") {
    if (ch == ',') {
      if (!current.empty()) out.push_back(std::stoll(current));
      current.clear();
    } else {
      current.push_back(ch);
    }
  }
  return out;
}

}  // namespace pob
