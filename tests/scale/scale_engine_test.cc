// scale::Engine earns trust by equivalence: every stream it plans must be
// accepted, tick for tick, by core::Engine and the reference oracle (via
// MirrorScheduler), and the RunResult it reports on its own must match the
// one the mirrored core run produces, field for field. These tests pin that
// contract on fixed scenarios spanning topology, policy, mechanism, churn,
// and block-count edge cases; the fuzzer explores the space around them.

#include "pob/scale/engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "pob/check/oracle.h"
#include "pob/overlay/builders.h"
#include "pob/scale/mirror.h"

namespace pob::scale {
namespace {

using check::diff_run_results;
using check::differential_check;
using check::MechanismSpec;
using check::run_result_digest;

std::shared_ptr<const Topology> complete_topo(std::uint32_t n) {
  return std::make_shared<Topology>(Topology::complete(n));
}

std::shared_ptr<const Topology> regular_topo(std::uint32_t n, std::uint32_t degree,
                                             std::uint64_t seed) {
  Rng rng(seed);
  return std::make_shared<Topology>(
      Topology::from_graph(make_random_regular(n, degree, rng)));
}

/// Runs the scale engine standalone, then replays its exact stream through
/// core::Engine + reference oracle via the mirror, and requires the two
/// RunResults (traces included) to be identical.
void expect_matches_mirrored_core(const EngineConfig& cfg,
                                  std::shared_ptr<const Topology> topo,
                                  const ScaleOptions& opt, std::uint64_t seed) {
  MechanismSpec spec;
  if (opt.credit_limit != 0) {
    spec.kind = MechanismSpec::Kind::kCreditLimited;
    spec.credit_limit = opt.credit_limit;
  }
  MirrorScheduler mirror(std::make_unique<Engine>(cfg, topo, opt, seed));
  const check::OracleReport report = differential_check(cfg, mirror, spec);
  ASSERT_TRUE(report.ok) << report.diagnosis;
  ASSERT_FALSE(report.violated) << report.violation_message;

  EngineConfig traced = cfg;
  traced.record_trace = true;  // differential_check records; match it
  Engine engine(traced, std::move(topo), opt, seed);
  const RunResult r = engine.run(1);
  EXPECT_EQ(diff_run_results(r, report.fast), "");
}

TEST(ScaleEngine, CompleteSwarmMatchesMirroredCore) {
  EngineConfig cfg;
  cfg.num_nodes = 48;
  cfg.num_blocks = 33;  // not a word multiple: tail masking in play
  expect_matches_mirrored_core(cfg, complete_topo(48), {}, 7);
}

TEST(ScaleEngine, RegularOverlayRarestFirstMatchesMirroredCore) {
  EngineConfig cfg;
  cfg.num_nodes = 120;
  cfg.num_blocks = 64;
  cfg.download_capacity = 2;
  cfg.server_upload_capacity = 3;
  ScaleOptions opt;
  opt.policy = BlockPolicy::kRarestFirst;
  opt.shard_nodes = 17;  // force many shards
  expect_matches_mirrored_core(cfg, regular_topo(120, 8, 11), opt, 11);
}

TEST(ScaleEngine, CreditLimitedStreamAcceptedByMechanism) {
  EngineConfig cfg;
  cfg.num_nodes = 60;
  cfg.num_blocks = 40;
  cfg.download_capacity = 2;
  ScaleOptions opt;
  opt.credit_limit = 1;  // tightest barter constraint
  expect_matches_mirrored_core(cfg, complete_topo(60), opt, 3);
}

TEST(ScaleEngine, ChurnAndDepartOnCompleteMatchMirroredCore) {
  EngineConfig cfg;
  cfg.num_nodes = 80;
  cfg.num_blocks = 50;
  cfg.depart_on_complete = true;
  cfg.departures = {{3, 5}, {3, 6}, {9, 40}};
  expect_matches_mirrored_core(cfg, complete_topo(80), {}, 19);
}

TEST(ScaleEngine, HeterogeneousCapacitiesMatchMirroredCore) {
  EngineConfig cfg;
  cfg.num_nodes = 40;
  cfg.num_blocks = 24;
  cfg.upload_capacities.assign(40, 1);
  cfg.download_capacities.assign(40, 2);
  cfg.upload_capacities[0] = 4;    // beefy server
  cfg.upload_capacities[7] = 3;    // one fast client (model needs d >= u)
  cfg.download_capacities[7] = 3;
  cfg.download_capacities[9] = 1;
  expect_matches_mirrored_core(cfg, complete_topo(40), {}, 23);
}

TEST(ScaleEngine, BlockCountWordBoundaries) {
  for (const std::uint32_t k : {1u, 63u, 64u, 65u, 127u}) {
    EngineConfig cfg;
    cfg.num_nodes = 16;
    cfg.num_blocks = k;
    expect_matches_mirrored_core(cfg, complete_topo(16), {}, 100 + k);
  }
}

TEST(ScaleEngine, SummaryBitmapsTailMaskedAtWordBoundaries) {
  // The per-chunk summaries mirror the possession rows at every block-count
  // edge: the tail bits of both the last possession word and the last
  // summary word must never leak into "has" or survive in "missing".
  for (const std::uint32_t k : {1u, 63u, 64u, 65u, 127u}) {
    SCOPED_TRACE(k);
    EngineConfig cfg;
    cfg.num_nodes = 12;
    cfg.num_blocks = k;
    Engine engine(cfg, complete_topo(12), {}, 200 + k);

    const std::uint32_t stride = (k + 63) / 64;
    ASSERT_EQ(engine.summary_words_per_row(), (stride + 63) / 64);
    const auto pattern = [&](std::uint32_t g) {
      const bool partial = (g + 1 == engine.summary_words_per_row()) && (stride & 63) != 0;
      return partial ? (1ULL << (stride & 63)) - 1 : ~0ULL;
    };

    // Fresh swarm: the server has every chunk and misses none; clients are
    // the exact complement. No summary bit above chunk stride-1 anywhere.
    for (std::uint32_t g = 0; g < engine.summary_words_per_row(); ++g) {
      EXPECT_EQ(engine.summary_has_word(kServer, g), pattern(g));
      EXPECT_EQ(engine.summary_missing_word(kServer, g), 0u);
      EXPECT_EQ(engine.summary_has_word(3, g), 0u);
      EXPECT_EQ(engine.summary_missing_word(3, g), pattern(g));
    }
    EXPECT_EQ(engine.possession_version(3), 0u);

    const RunResult r = engine.run(1);
    ASSERT_TRUE(r.completed);
    // Every client ended with the full file: has == the tail-masked chunk
    // pattern (not ~0 — that would mean a tail bit escaped), missing == 0,
    // and the possession version counted exactly its k deliveries.
    for (NodeId u = 0; u < 12; ++u) {
      for (std::uint32_t g = 0; g < engine.summary_words_per_row(); ++g) {
        EXPECT_EQ(engine.summary_has_word(u, g), pattern(g));
        EXPECT_EQ(engine.summary_missing_word(u, g), 0u);
      }
      // The version is the delivered-block count: k for every client, and
      // constant k for the server (it was seeded, never delivered to).
      EXPECT_EQ(engine.possession_version(u), k);
    }
  }
}

TEST(ScaleEngine, ProbeCacheSurvivesChurnAndPossessionChanges) {
  // Maximum cache pressure: one probe per slot means a single stale
  // "useless" verdict (after the target gained blocks, after a departure,
  // or after a depart-on-complete exit) would directly suppress an intent
  // the mirrored core run emits. Credit mode adds the unblock-via-ledger
  // path, which must invalidate through the receiver's version bump.
  EngineConfig cfg;
  cfg.num_nodes = 72;
  cfg.num_blocks = 65;  // tail word in play
  cfg.depart_on_complete = true;
  cfg.departures = {{2, 9}, {5, 33}, {5, 34}, {12, 60}};
  ScaleOptions opt;
  opt.max_probes = 1;
  opt.credit_limit = 1;
  opt.policy = BlockPolicy::kRarestFirst;
  opt.shard_nodes = 13;
  expect_matches_mirrored_core(cfg, regular_topo(72, 9, 31), opt, 31);
}

TEST(ScaleEngine, ResultIndependentOfJobCount) {
  EngineConfig cfg;
  cfg.num_nodes = 300;
  cfg.num_blocks = 96;
  cfg.record_trace = true;  // digest the full transfer stream too
  ScaleOptions opt;
  opt.shard_nodes = 29;
  const auto run_at = [&](unsigned jobs) {
    Engine engine(cfg, regular_topo(300, 10, 5), opt, 5);
    return run_result_digest(engine.run(jobs));
  };
  const std::uint64_t serial = run_at(1);
  EXPECT_EQ(run_at(2), serial);
  EXPECT_EQ(run_at(5), serial);
}

TEST(ScaleEngine, CompleteTopologyMatchesExplicitCsr) {
  // The arithmetic complete() fast path and a materialized complete graph
  // must be indistinguishable to the planner.
  const std::uint32_t n = 24;
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  g.finalize();
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = 31;
  cfg.record_trace = true;
  const auto digest_with = [&](std::shared_ptr<const Topology> topo) {
    Engine engine(cfg, std::move(topo), {}, 13);
    return run_result_digest(engine.run(1));
  };
  EXPECT_EQ(digest_with(complete_topo(n)),
            digest_with(std::make_shared<Topology>(Topology::from_graph(g))));
}

TEST(ScaleEngine, ValidatesLikeCore) {
  EngineConfig good;
  good.num_nodes = 8;
  good.num_blocks = 4;

  EngineConfig cfg = good;
  cfg.num_nodes = 1;
  EXPECT_THROW(Engine(cfg, complete_topo(1), {}, 1), std::invalid_argument);

  cfg = good;
  cfg.num_blocks = 0;
  EXPECT_THROW(Engine(cfg, complete_topo(8), {}, 1), std::invalid_argument);

  // Topology size must match the config.
  EXPECT_THROW(Engine(good, complete_topo(9), {}, 1), std::invalid_argument);

  cfg = good;
  cfg.upload_capacities.assign(3, 1);  // wrong length
  EXPECT_THROW(Engine(cfg, complete_topo(8), {}, 1), EngineViolation);

  cfg = good;
  cfg.departures = {{2, 0}};  // the server cannot depart
  EXPECT_THROW(Engine(cfg, complete_topo(8), {}, 1), EngineViolation);

  ScaleOptions opt;
  opt.max_probes = 0;
  EXPECT_THROW(Engine(good, complete_topo(8), opt, 1), std::invalid_argument);
}

TEST(ScaleEngine, RunResumesInWindows) {
  // run() is windowed: driving the same swarm in max_ticks-sized slices
  // must reproduce the uncapped run transfer for transfer — tick numbering,
  // departures, depart-on-complete and the credit ledger all carry across
  // calls.
  EngineConfig cfg;
  cfg.num_nodes = 90;
  cfg.num_blocks = 50;
  cfg.depart_on_complete = true;
  cfg.departures = {{4, 11}, {7, 52}};
  ScaleOptions opt;
  opt.credit_limit = 2;

  Engine whole(cfg, complete_topo(90), opt, 41);
  const RunResult single = whole.run(1);
  ASSERT_TRUE(single.completed);

  EngineConfig windowed_cfg = cfg;
  windowed_cfg.max_ticks = 5;  // the per-call cap
  Engine windowed(windowed_cfg, complete_topo(90), opt, 41);
  Tick total_ticks = 0;
  Count total_transfers = 0;
  std::vector<Count> uploads_per_tick;
  RunResult last;
  for (int window = 0; window < 1000; ++window) {
    last = windowed.run(1);
    total_ticks += last.ticks_executed;
    total_transfers += last.total_transfers;
    uploads_per_tick.insert(uploads_per_tick.end(), last.uploads_per_tick.begin(),
                            last.uploads_per_tick.end());
    if (last.completed) break;
    ASSERT_EQ(last.ticks_executed, 5u);  // a non-final window uses its full cap
  }
  ASSERT_TRUE(last.completed);
  EXPECT_EQ(total_ticks, single.ticks_executed);
  EXPECT_EQ(total_transfers, single.total_transfers);
  EXPECT_EQ(uploads_per_tick, single.uploads_per_tick);
  EXPECT_EQ(last.client_completion, single.client_completion);
  EXPECT_EQ(last.uploads_per_node, single.uploads_per_node);
  EXPECT_EQ(last.departed, single.departed);

  // A further call on the completed swarm is a no-op window.
  const RunResult after = windowed.run(1);
  EXPECT_EQ(after.ticks_executed, 0u);
  EXPECT_TRUE(after.completed);
  EXPECT_EQ(after.total_transfers, 0u);
}

TEST(ScaleEngine, PhaseTimingsResetEveryRun) {
  // Regression: timings_ used to accumulate across run() calls, so a second
  // instrumented window reported the first window's seconds too. Each call
  // must report only its own ticks — and a zero-tick window exactly zero.
  EngineConfig cfg;
  cfg.num_nodes = 400;
  cfg.num_blocks = 48;
  cfg.max_ticks = 4;
  ScaleOptions opt;
  opt.collect_phase_timings = true;
  Engine engine(cfg, complete_topo(400), opt, 8);

  (void)engine.run(1);
  const PhaseTimings first = engine.phase_timings();
  EXPECT_GT(first.generate_seconds, 0.0);

  RunResult rest;
  do {
    rest = engine.run(1);
  } while (!rest.completed && rest.ticks_executed != 0);
  ASSERT_TRUE(rest.completed);

  // The swarm is done: a fresh window executes zero ticks, and its timings
  // must be exactly zero, not the accumulated history.
  (void)engine.run(1);
  const PhaseTimings idle = engine.phase_timings();
  EXPECT_EQ(idle.generate_seconds, 0.0);
  EXPECT_EQ(idle.merge_seconds, 0.0);
  EXPECT_EQ(idle.apply_seconds, 0.0);
}

TEST(ScaleEngine, RunRefusesLockstepEngines) {
  EngineConfig cfg;
  cfg.num_nodes = 8;
  cfg.num_blocks = 4;
  Engine engine(cfg, complete_topo(8), {}, 1);
  std::vector<Transfer> planned;
  engine.plan(1, planned);  // lockstep driving began: run() would desync
  EXPECT_THROW(engine.run(1), std::logic_error);
}

TEST(ScaleEngine, LockstepPlanApplyRoundTrip) {
  EngineConfig cfg;
  cfg.num_nodes = 6;
  cfg.num_blocks = 8;
  Engine engine(cfg, complete_topo(6), {}, 2);
  std::vector<Transfer> planned;
  engine.plan(1, planned);
  ASSERT_FALSE(planned.empty());
  for (const Transfer& t : planned) {
    EXPECT_EQ(t.from, kServer);  // tick 1: only the server holds blocks
    EXPECT_FALSE(engine.has(t.to, t.block));
  }
  engine.apply(1, planned);
  for (const Transfer& t : planned) EXPECT_TRUE(engine.has(t.to, t.block));

  engine.deactivate(3);
  EXPECT_FALSE(engine.is_active(3));
  engine.deactivate(3);  // idempotent
  EXPECT_THROW(engine.deactivate(kServer), std::invalid_argument);

  planned.clear();
  engine.plan(2, planned);
  for (const Transfer& t : planned) {
    EXPECT_NE(t.from, 3u);  // departed nodes neither send...
    EXPECT_NE(t.to, 3u);    // ...nor receive
  }
}

TEST(ScaleEngine, StateBytesCountsTickScratchAndLedger) {
  EngineConfig cfg;
  cfg.num_nodes = 64;
  cfg.num_blocks = 40;
  ScaleOptions opt;
  opt.credit_limit = 2;
  opt.shard_nodes = 16;
  Engine engine(cfg, complete_topo(64), opt, 9);

  // The construction-time figure must cover at least the possession arena
  // and its chunk summaries, the per-node arrays (seven uint32-sized —
  // counts (which double as possession versions), completion ticks,
  // capacities, download bookkeeping and sated stamps — one uint64 Count,
  // one byte), the per-block
  // frequency table, and the generate-phase scratch the constructor sizes
  // up front: per intent shard, a full-stride diff recording (word index +
  // word + popcount per entry) and a probe cache of at least 2x shard_nodes
  // 16-byte entries. Any future scratch must only push the real figure
  // further above this floor.
  const std::uint64_t fresh = engine.state_bytes();
  const std::uint64_t stride = (40 + 63) / 64;
  const std::uint64_t sum_stride = (stride + 63) / 64;
  const std::uint64_t shards = (64 + 16 - 1) / 16;  // n / shard_nodes
  const std::uint64_t floor =
      64 * stride * sizeof(std::uint64_t) +
      2 * 64 * sum_stride * sizeof(std::uint64_t) +  // has + missing summaries
      64 * (7 * sizeof(std::uint32_t) + sizeof(Count) + 1) +
      40 * sizeof(std::uint32_t) +
      shards * stride *
          (sizeof(std::uint64_t) + 2 * sizeof(std::uint32_t)) +  // diff scans
      shards * 2 * 16 *
          (sizeof(std::uint64_t) + 2 * sizeof(std::uint32_t));  // probe caches
  EXPECT_GE(fresh, floor);

  std::vector<Transfer> planned;
  engine.plan(1, planned);
  engine.apply(1, planned);
  ASSERT_FALSE(planned.empty());

  // Planning allocates the per-shard intent vectors, the receiver-shard
  // admission tables and the merge buckets; applying in credit mode
  // populates the ledger. All of that is engine state the old accounting
  // omitted — the figure must grow by at least the intents now buffered.
  const std::uint64_t planned_bytes = engine.state_bytes();
  EXPECT_GE(planned_bytes, fresh + planned.size() * sizeof(Transfer));
}

TEST(ScaleEngine, PhaseTimingsAccumulateOnlyWhenEnabled) {
  EngineConfig cfg;
  cfg.num_nodes = 600;
  cfg.num_blocks = 64;

  ScaleOptions timed;
  timed.collect_phase_timings = true;
  Engine on(cfg, complete_topo(600), timed, 5);
  const RunResult r = on.run(2);
  EXPECT_TRUE(r.completed);
  const PhaseTimings t = on.phase_timings();
  EXPECT_GT(t.generate_seconds, 0.0);
  EXPECT_GT(t.merge_seconds, 0.0);
  EXPECT_GT(t.apply_seconds, 0.0);

  Engine off(cfg, complete_topo(600), {}, 5);
  (void)off.run(2);
  const PhaseTimings z = off.phase_timings();
  EXPECT_EQ(z.generate_seconds, 0.0);
  EXPECT_EQ(z.merge_seconds, 0.0);
  EXPECT_EQ(z.apply_seconds, 0.0);
}

TEST(ScaleTopology, CompleteNeighborArithmetic) {
  const Topology topo = Topology::complete(5);
  EXPECT_EQ(topo.num_nodes(), 5u);
  EXPECT_EQ(topo.degree(2), 4u);
  // Ascending neighbor order with self skipped: 0, 1, 3, 4.
  EXPECT_EQ(topo.neighbor(2, 0), 0u);
  EXPECT_EQ(topo.neighbor(2, 1), 1u);
  EXPECT_EQ(topo.neighbor(2, 2), 3u);
  EXPECT_EQ(topo.neighbor(2, 3), 4u);
  EXPECT_EQ(topo.num_directed_edges(), 20u);
}

TEST(ScaleTopology, FromGraphKeepsSortedOrder) {
  Graph g(4);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  g.add_edge(2, 1);
  g.finalize();
  const Topology topo = Topology::from_graph(g);
  EXPECT_EQ(topo.degree(2), 3u);
  EXPECT_EQ(topo.neighbor(2, 0), 0u);
  EXPECT_EQ(topo.neighbor(2, 1), 1u);
  EXPECT_EQ(topo.neighbor(2, 2), 3u);
  EXPECT_EQ(topo.degree(0), 1u);
  EXPECT_EQ(topo.neighbor(0, 0), 2u);
  EXPECT_GT(topo.memory_bytes(), 0u);
}

}  // namespace
}  // namespace pob::scale
