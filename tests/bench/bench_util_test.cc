// The bench helpers carry real reporting semantics — most importantly which
// sweep point a speedup column normalizes against. scale_throughput's
// speedup_j<jobs> fields claim "vs the serial run"; jobs_from_flag can clamp
// or dedupe jobs=1 out of the effective list, and the baseline choice must
// degrade to the first point that actually ran, never to a fabricated one.

#include "bench_util.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace pob::bench {
namespace {

TEST(BenchUtil, SweepBaselinePrefersTheSerialPoint) {
  // jobs=1 first: the common --sweep=1,2,4,8 shape.
  EXPECT_EQ(sweep_baseline_index({1u, 2u, 4u, 8u}), 0u);
  // jobs=1 present but not first: the baseline must follow it, not assume
  // points.front() is serial (the historical bug).
  EXPECT_EQ(sweep_baseline_index({8u, 4u, 1u}), 2u);
  EXPECT_EQ(sweep_baseline_index({16u, 1u, 2u}), 1u);
}

TEST(BenchUtil, SweepBaselineFallsBackToTheFirstPoint) {
  // No serial point ran (1 was clamped or never requested): normalize
  // against the first effective point rather than emitting garbage ratios.
  EXPECT_EQ(sweep_baseline_index({4u, 8u, 16u}), 0u);
  EXPECT_EQ(sweep_baseline_index({2u}), 0u);
  // jobs=0 means "all cores" — it is not serial and earns no preference.
  EXPECT_EQ(sweep_baseline_index({0u, 4u}), 0u);
}

TEST(BenchUtil, SweepBaselineHandlesSingletonSerial) {
  EXPECT_EQ(sweep_baseline_index({1u}), 0u);
}

TEST(BenchUtil, JsonReportEmitsTheCertifiedPairUnderStableKeys) {
  // CI greps `certified_price` out of the archived BENCH_*.json files, so the
  // helper's key names are a contract, not a convenience.
  const std::string path = ::testing::TempDir() + "pob_bench_util_certified.json";
  const char* argv[] = {"bench", "--json", path.c_str()};
  const Args args(3, argv);
  JsonReport json;
  json.str("bench", "t").certified(37, 1.5);
  ASSERT_TRUE(json.write(args));
  std::ifstream in(path);
  std::stringstream body;
  body << in.rdbuf();
  EXPECT_EQ(body.str(),
            "{\"bench\": \"t\", \"certified_lower_bound\": 37, "
            "\"certified_price\": 1.500000}\n");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pob::bench
