#include "pob/core/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace pob {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (const std::uint32_t bound : {1u, 2u, 3u, 10u, 1000u, 0x7fffffffu}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.below(10)];
  for (const int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(Rng, RangeIsInclusive) {
  Rng rng(13);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.range(5, 8));
  EXPECT_EQ(seen, (std::set<std::uint32_t>{5, 6, 7, 8}));
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(Rng, SplitIsIndependentAndStable) {
  const Rng parent(42);
  Rng c1 = parent.split(1);
  Rng c2 = parent.split(2);
  Rng c1_again = parent.split(1);
  EXPECT_EQ(c1.next(), c1_again.next());
  int same = 0;
  for (int i = 0; i < 64; ++i) same += c1.next() == c2.next();
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitDoesNotAdvanceParent) {
  Rng a(5), b(5);
  (void)a.split(9);
  EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(23);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(Rng, ShuffleMixesPositions) {
  Rng rng(29);
  int moved = 0;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7};
    rng.shuffle(v);
    for (std::size_t i = 0; i < v.size(); ++i) moved += v[i] != static_cast<int>(i);
  }
  EXPECT_GT(moved, 200);  // ~7/8 of 400 positions expected to move
}

}  // namespace
}  // namespace pob
