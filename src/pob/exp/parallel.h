// Deterministic parallel trial execution.
//
// Randomized sweeps (Figures 3-7, the barter/credit tables) need hundreds of
// independent trials; running them serially leaves every core but one idle.
// The pieces here parallelize the *trials* while keeping the aggregate
// statistics bit-identical to the serial runner: each trial's RNG seed is a
// pure function of its index (never of thread or schedule), outcomes land in
// an index-addressed slot, and aggregation happens in index order on the
// calling thread.

#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "pob/exp/sweep.h"

namespace pob {

/// Derives the RNG seed for trial `trial` from a base seed, splitmix64-style.
/// Depends only on (base, trial) — never on thread assignment — so trial i
/// sees the same seed at any --jobs setting. Nearby trial indices map to
/// uncorrelated seeds (unlike `base + i`, which hands xoshiro's seeding
/// nearly identical inputs for every run of a sweep point).
///
/// Inline because the scale engine derives a seed per (tick, node) — twice,
/// nested — in its hottest loop.
inline std::uint64_t trial_seed(std::uint64_t base, std::uint32_t trial) {
  // Two splitmix64 steps: the first diffuses the base, the second mixes in
  // the trial index, so seeds for consecutive trials share no structure.
  const auto mix = [](std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  return mix(mix(base) ^ (0xd1342543de82ef95ULL * (static_cast<std::uint64_t>(trial) + 1)));
}

/// Hardware concurrency, with a floor of 1 when the runtime reports 0.
unsigned default_jobs();

/// Validates a --jobs flag value and narrows it to a worker count. 0 means
/// "use default_jobs()" (resolved later); negative values are rejected rather
/// than wrapped through the unsigned conversion; values above 4x
/// default_jobs() are clamped to that cap (a larger value is always a typo,
/// and spawning it would thread-bomb the machine).
unsigned jobs_from_flag(std::int64_t jobs);

/// A small self-scheduling thread pool. Work is claimed from a shared index
/// range in chunks (fetch_add on an atomic cursor), so fast threads
/// automatically take over the items a slow thread never reached — the
/// load-balancing benefit of work stealing without per-thread deques.
///
/// The pool owns jobs-1 worker threads; the thread calling parallel_for
/// participates as the jobs-th worker.
class ThreadPool {
 public:
  /// `jobs` = total worker count, including the calling thread; 0 selects
  /// default_jobs(). A pool of size 1 runs everything inline.
  explicit ThreadPool(unsigned jobs = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned jobs() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Runs body(i) for every i in [0, count), across the pool. Blocks until
  /// all items finish. If any body throws, the first exception is rethrown
  /// here after the remaining items complete. Not reentrant.
  void parallel_for(std::uint32_t count,
                    const std::function<void(std::uint32_t)>& body);

 private:
  void worker_loop();
  void drain(const std::function<void(std::uint32_t)>& body, std::uint32_t count,
             std::uint32_t chunk);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable wake_;
  std::condition_variable all_done_;
  // Dispatch state, all guarded by mu_. Workers adopt a dispatch under the
  // lock (copying body/count/chunk and incrementing in_flight_), so drain()
  // touches no shared non-atomic state; parallel_for returns only once every
  // adopting worker has left drain(), never just when the items ran out —
  // otherwise a preempted worker could wake into the *next* dispatch's
  // cursors while holding the previous (already destroyed) body.
  std::uint64_t generation_ = 0;  // bumped per parallel_for dispatch
  bool stop_ = false;
  const std::function<void(std::uint32_t)>* body_ = nullptr;
  std::uint32_t count_ = 0;
  std::uint32_t chunk_ = 1;
  std::uint32_t in_flight_ = 0;  // workers currently inside drain()
  std::atomic<std::uint32_t> next_{0};
  std::atomic<std::uint32_t> done_{0};
  std::exception_ptr error_;  // guarded by mu_
};

/// Per-shard accumulation scratch for parallel reductions: `shards` rows of
/// `width` zero-initialized counters. Writers own one row each (disjoint, so
/// no synchronization), and reduce_into() folds the rows into a target array
/// in ascending shard order — a fixed order, so the reduction is bit-exact
/// for any element type, including floating point — then re-zeroes the rows
/// so the scratch is ready for the next round. The row-major layout keeps
/// each writer's row contiguous (no false sharing between shards beyond one
/// cache line at row boundaries).
template <typename T>
class ShardScratch {
 public:
  /// (Re)shapes to `shards` x `width` and zeroes everything. Keeps capacity.
  void configure(std::uint32_t shards, std::size_t width) {
    shards_ = shards;
    width_ = width;
    data_.assign(static_cast<std::size_t>(shards) * width, T{});
  }

  std::uint32_t shards() const { return shards_; }
  std::size_t width() const { return width_; }

  /// Row `s`, for exclusive use by whichever worker runs shard `s`.
  T* shard(std::uint32_t s) { return data_.data() + static_cast<std::size_t>(s) * width_; }

  /// out[i] += sum over rows of row[s][i] (ascending s), then zeroes the
  /// rows. `out` must have at least width() elements. When a pool with more
  /// than one worker is given and the width is large enough to amortize a
  /// dispatch, the element range is chunked across the pool; per-element
  /// summation order is ascending-s either way, so results are identical.
  void reduce_into(T* out, ThreadPool* pool = nullptr) {
    const auto fold = [&](std::size_t lo, std::size_t hi) {
      for (std::uint32_t s = 0; s < shards_; ++s) {
        T* row = shard(s);
        for (std::size_t i = lo; i < hi; ++i) {
          out[i] += row[i];
          row[i] = T{};
        }
      }
    };
    constexpr std::size_t kParallelGrain = 4096;
    if (pool != nullptr && pool->jobs() > 1 && width_ >= 2 * kParallelGrain) {
      const auto chunks =
          static_cast<std::uint32_t>((width_ + kParallelGrain - 1) / kParallelGrain);
      pool->parallel_for(chunks, [&](std::uint32_t c) {
        const std::size_t lo = static_cast<std::size_t>(c) * kParallelGrain;
        fold(lo, std::min(width_, lo + kParallelGrain));
      });
    } else {
      fold(0, width_);
    }
  }

  std::uint64_t memory_bytes() const { return data_.capacity() * sizeof(T); }

 private:
  std::uint32_t shards_ = 0;
  std::size_t width_ = 0;
  std::vector<T> data_;
};

/// As repeat_trials, but runs trials on `jobs` threads (0 = default_jobs(),
/// 1 = the serial runner). The returned TrialStats is bit-identical to
/// repeat_trials(runs, trial) for every `jobs` value: outcomes are collected
/// per index and aggregated in index order. `trial` must be safe to call
/// concurrently from multiple threads with distinct indices.
TrialStats repeat_trials_parallel(
    std::uint32_t runs, unsigned jobs,
    const std::function<TrialOutcome(std::uint32_t)>& trial);

}  // namespace pob
