// The engine enforces the §2.1 bandwidth and data-transfer model: these
// tests drive it with tiny hand-written schedulers, both legal and illegal.

#include "pob/core/engine.h"

#include <gtest/gtest.h>

#include <functional>

namespace pob {
namespace {

/// Scheduler built from a lambda, for hand-written schedules.
class LambdaScheduler final : public Scheduler {
 public:
  using Fn = std::function<void(Tick, const SwarmState&, std::vector<Transfer>&)>;
  explicit LambdaScheduler(Fn fn) : fn_(std::move(fn)) {}
  std::string_view name() const override { return "lambda"; }
  void plan_tick(Tick t, const SwarmState& s, std::vector<Transfer>& out) override {
    fn_(t, s, out);
  }

 private:
  Fn fn_;
};

EngineConfig tiny(std::uint32_t n, std::uint32_t k) {
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  return cfg;
}

TEST(Engine, TrivialServerToOneClient) {
  LambdaScheduler s([](Tick t, const SwarmState&, std::vector<Transfer>& out) {
    out.push_back({kServer, 1, static_cast<BlockId>(t - 1)});
  });
  const RunResult r = run(tiny(2, 3), s);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.completion_tick, 3u);
  EXPECT_EQ(r.total_transfers, 3u);
  EXPECT_EQ(r.client_completion, (std::vector<Tick>{3}));
  EXPECT_EQ(r.ticks_executed, 3u);
}

TEST(Engine, RejectsSenderWithoutBlock) {
  LambdaScheduler s([](Tick, const SwarmState&, std::vector<Transfer>& out) {
    out.push_back({1, 2, 0});  // client 1 owns nothing yet
  });
  EXPECT_THROW(run(tiny(3, 1), s), EngineViolation);
}

TEST(Engine, RejectsForwardingWithinSameTick) {
  // Client 1 may not relay a block in the tick it receives it.
  LambdaScheduler s([](Tick t, const SwarmState&, std::vector<Transfer>& out) {
    if (t == 1) {
      out.push_back({kServer, 1, 0});
      out.push_back({1, 2, 0});
    }
  });
  EXPECT_THROW(run(tiny(3, 1), s), EngineViolation);
}

TEST(Engine, RejectsDeliveryToHolder) {
  LambdaScheduler s([](Tick t, const SwarmState&, std::vector<Transfer>& out) {
    out.push_back({kServer, 1, 0});  // tick 2 delivers again
    (void)t;
  });
  EXPECT_THROW(run(tiny(3, 2), s), EngineViolation);
}

TEST(Engine, RejectsUploadOverCapacity) {
  LambdaScheduler s([](Tick, const SwarmState&, std::vector<Transfer>& out) {
    out.push_back({kServer, 1, 0});
    out.push_back({kServer, 2, 0});  // second upload, capacity 1
  });
  EXPECT_THROW(run(tiny(3, 1), s), EngineViolation);
}

TEST(Engine, ServerCapacityOverrideAllowsParallelSends) {
  LambdaScheduler s([](Tick, const SwarmState&, std::vector<Transfer>& out) {
    out.push_back({kServer, 1, 0});
    out.push_back({kServer, 2, 0});
  });
  EngineConfig cfg = tiny(3, 1);
  cfg.server_upload_capacity = 2;
  const RunResult r = run(cfg, s);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.completion_tick, 1u);
}

TEST(Engine, RejectsDownloadOverCapacity) {
  LambdaScheduler s([](Tick t, const SwarmState&, std::vector<Transfer>& out) {
    if (t == 1) {
      out.push_back({kServer, 1, 0});
    } else {
      out.push_back({kServer, 2, 0});
      out.push_back({1, 2, 0});  // ILLEGAL: duplicate block to node 2...
    }
  });
  // ...which trips the duplicate-delivery check first; use distinct blocks
  // to exercise the download-capacity check itself.
  LambdaScheduler s2([](Tick t, const SwarmState&, std::vector<Transfer>& out) {
    if (t == 1) {
      out.push_back({kServer, 1, 0});
    } else {
      out.push_back({kServer, 2, 1});
      out.push_back({1, 2, 0});
    }
  });
  EXPECT_THROW(run(tiny(3, 2), s), EngineViolation);
  EngineConfig cfg = tiny(3, 2);
  cfg.download_capacity = 1;
  EXPECT_THROW(run(cfg, s2), EngineViolation);
  // With capacity 2 the same schedule is legal.
  LambdaScheduler s3([](Tick t, const SwarmState&, std::vector<Transfer>& out) {
    if (t == 1) {
      out.push_back({kServer, 1, 0});
    } else if (t == 2) {
      out.push_back({kServer, 2, 1});
      out.push_back({1, 2, 0});
    } else if (t == 3) {
      out.push_back({kServer, 1, 1});
    }
  });
  EngineConfig cfg2 = tiny(3, 2);
  cfg2.download_capacity = 2;
  EXPECT_TRUE(run(cfg2, s3).completed);
}

TEST(Engine, RejectsSelfTransferAndBadIds) {
  LambdaScheduler self([](Tick, const SwarmState&, std::vector<Transfer>& out) {
    out.push_back({1, 1, 0});
  });
  EXPECT_THROW(run(tiny(3, 1), self), EngineViolation);
  LambdaScheduler bad_node([](Tick, const SwarmState&, std::vector<Transfer>& out) {
    out.push_back({kServer, 99, 0});
  });
  EXPECT_THROW(run(tiny(3, 1), bad_node), EngineViolation);
  LambdaScheduler bad_block([](Tick, const SwarmState&, std::vector<Transfer>& out) {
    out.push_back({kServer, 1, 99});
  });
  EXPECT_THROW(run(tiny(3, 1), bad_block), EngineViolation);
}

TEST(Engine, IdleSchedulerHitsTickCap) {
  LambdaScheduler idle([](Tick, const SwarmState&, std::vector<Transfer>&) {});
  EngineConfig cfg = tiny(3, 1);
  cfg.max_ticks = 25;
  const RunResult r = run(cfg, idle);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.ticks_executed, 25u);
  EXPECT_EQ(r.completion_tick, 0u);
}

TEST(Engine, StallDetectionCensorsIdleRuns) {
  LambdaScheduler idle([](Tick, const SwarmState&, std::vector<Transfer>&) {});
  EngineConfig cfg = tiny(3, 1);
  cfg.max_ticks = 100000;
  cfg.stall_window = 10;
  const RunResult r = run(cfg, idle);
  EXPECT_FALSE(r.completed);
  EXPECT_TRUE(r.stalled);
  EXPECT_EQ(r.ticks_executed, 10u);
}

TEST(Engine, StallDetectionSparesBusyRuns) {
  LambdaScheduler s([](Tick t, const SwarmState&, std::vector<Transfer>& out) {
    out.push_back({kServer, 1, static_cast<BlockId>(t - 1)});
  });
  EngineConfig cfg = tiny(2, 30);
  cfg.stall_window = 5;
  cfg.stall_utilization = 0.2;  // 1 of 2 slots used -> 0.5 > 0.2
  const RunResult r = run(cfg, s);
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.stalled);
}

TEST(Engine, DefaultTickCapIsGenerous) {
  EXPECT_GE(default_tick_cap(1024, 64), 64u * 11u);  // binomial-tree worst case
  EXPECT_GE(default_tick_cap(4, 1000), 66u * 1000u);
}

TEST(Engine, RecordsUtilizationTrace) {
  LambdaScheduler s([](Tick t, const SwarmState&, std::vector<Transfer>& out) {
    out.push_back({kServer, 1, static_cast<BlockId>(t - 1)});
  });
  const EngineConfig cfg = tiny(2, 2);
  const RunResult r = run(cfg, s);
  ASSERT_EQ(r.uploads_per_tick.size(), 2u);
  EXPECT_EQ(r.uploads_per_tick[0], 1u);
  // 2 nodes x capacity 1 = 2 slots; 1 used.
  EXPECT_DOUBLE_EQ(r.utilization(1, cfg), 0.5);
  EXPECT_DOUBLE_EQ(r.utilization(3, cfg), 0.0);  // out of range
}

TEST(Engine, TraceRecordingCapturesTransfers) {
  LambdaScheduler s([](Tick t, const SwarmState&, std::vector<Transfer>& out) {
    out.push_back({kServer, 1, static_cast<BlockId>(t - 1)});
  });
  EngineConfig cfg = tiny(2, 2);
  cfg.record_trace = true;
  const RunResult r = run(cfg, s);
  ASSERT_EQ(r.trace.size(), 2u);
  EXPECT_EQ(r.trace[0][0], (Transfer{kServer, 1, 0}));
  EXPECT_EQ(r.trace[1][0], (Transfer{kServer, 1, 1}));
}

TEST(Engine, RunWithStateExposesFinalPossession) {
  LambdaScheduler s([](Tick t, const SwarmState&, std::vector<Transfer>& out) {
    out.push_back({kServer, 1, static_cast<BlockId>(t - 1)});
  });
  const EngineConfig cfg = tiny(2, 3);
  SwarmState state(2, 3);
  const RunResult r = run_with_state(cfg, s, nullptr, state);
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(state.is_complete(1));
}

TEST(Engine, ValidatesConfig) {
  LambdaScheduler s([](Tick, const SwarmState&, std::vector<Transfer>&) {});
  EXPECT_THROW(run(tiny(1, 1), s), std::invalid_argument);
  EXPECT_THROW(run(tiny(2, 0), s), std::invalid_argument);
  EngineConfig cfg = tiny(2, 1);
  cfg.upload_capacity = 0;
  EXPECT_THROW(run(cfg, s), std::invalid_argument);
}

// Runs `cfg` with an idle scheduler and returns the EngineViolation message,
// failing the test if nothing is thrown.
std::string violation_message(const EngineConfig& cfg) {
  LambdaScheduler idle([](Tick, const SwarmState&, std::vector<Transfer>&) {});
  try {
    run(cfg, idle);
  } catch (const EngineViolation& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected EngineViolation";
  return "";
}

TEST(Engine, RejectsDeparturesNamingTheServer) {
  EngineConfig cfg = tiny(4, 2);
  cfg.departures = {{3, kServer}};
  EXPECT_NE(violation_message(cfg).find("departure names the server"), std::string::npos);
}

TEST(Engine, RejectsDeparturesNamingOutOfRangeNodes) {
  EngineConfig cfg = tiny(4, 2);
  cfg.departures = {{3, 4}};  // valid ids are 1..3
  EXPECT_NE(violation_message(cfg).find("out-of-range node 4"), std::string::npos);
}

TEST(Engine, RejectsMismatchedUploadCapacities) {
  EngineConfig cfg = tiny(4, 2);
  cfg.upload_capacities = {1, 1, 1};  // 3 entries for 4 nodes
  EXPECT_NE(violation_message(cfg).find("upload_capacities has 3 entries for 4 nodes"),
            std::string::npos);
}

TEST(Engine, RejectsMismatchedDownloadCapacities) {
  EngineConfig cfg = tiny(4, 2);
  cfg.download_capacities = {kUnlimited, kUnlimited, kUnlimited, kUnlimited, kUnlimited};
  EXPECT_NE(violation_message(cfg).find("download_capacities has 5 entries for 4 nodes"),
            std::string::npos);
}

TEST(Engine, RejectsDownloadBelowUpload) {
  // Scalar form: d < u violates the §2.1 model.
  EngineConfig cfg = tiny(4, 2);
  cfg.upload_capacity = 2;
  cfg.download_capacity = 1;
  EXPECT_NE(violation_message(cfg).find("requires d >= u"), std::string::npos);
  // Per-node form: one under-provisioned client is enough.
  EngineConfig het = tiny(3, 2);
  het.upload_capacities = {1, 3, 1};
  het.download_capacities = {kUnlimited, 2, 1};
  EXPECT_NE(violation_message(het).find("client 1"), std::string::npos);
}

TEST(Engine, ServerIsExemptFromDownloadBelowUpload) {
  // §2.3.4's higher-bandwidth server: upload m*u with any download entry is
  // fine because the server never downloads.
  LambdaScheduler s([](Tick, const SwarmState&, std::vector<Transfer>& out) {
    out.push_back({kServer, 1, 0});
    out.push_back({kServer, 2, 0});
  });
  EngineConfig cfg = tiny(3, 1);
  cfg.upload_capacities = {4, 1, 1};
  cfg.download_capacities = {1, 1, 1};
  EXPECT_TRUE(run(cfg, s).completed);
}

TEST(Engine, MeanClientCompletion) {
  RunResult r;
  r.client_completion = {2, 4, 6};
  EXPECT_DOUBLE_EQ(r.mean_client_completion(), 4.0);
}

}  // namespace
}  // namespace pob
