#include "pob/exp/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "pob/mech/barter.h"
#include "pob/sched/binomial_pipeline.h"
#include "pob/sched/riffle_pipeline.h"

namespace pob {
namespace {

TEST(TraceIo, RoundTripsABinomialPipelineRun) {
  EngineConfig cfg;
  cfg.num_nodes = 11;
  cfg.num_blocks = 7;
  cfg.download_capacity = 1;
  cfg.record_trace = true;
  BinomialPipelineScheduler sched(11, 7);
  const RunResult original = run(cfg, sched);
  ASSERT_TRUE(original.completed);

  std::stringstream buffer;
  write_trace(buffer, cfg, original);
  const LoadedTrace loaded = read_trace(buffer);
  EXPECT_EQ(loaded.num_nodes, 11u);
  EXPECT_EQ(loaded.num_blocks, 7u);
  EXPECT_EQ(loaded.download_capacity, 1u);
  ASSERT_EQ(loaded.ticks.size(), original.trace.size());
  for (std::size_t t = 0; t < loaded.ticks.size(); ++t) {
    EXPECT_EQ(loaded.ticks[t], original.trace[t]) << "tick " << t + 1;
  }

  const RunResult replayed = replay_trace(loaded);
  ASSERT_TRUE(replayed.completed);
  EXPECT_EQ(replayed.completion_tick, original.completion_tick);
}

TEST(TraceIo, UnlimitedDownloadEncodesAsZero) {
  EngineConfig cfg;
  cfg.num_nodes = 4;
  cfg.num_blocks = 2;
  cfg.record_trace = true;
  BinomialPipelineScheduler sched(4, 2);
  const RunResult r = run(cfg, sched);
  std::stringstream buffer;
  write_trace(buffer, cfg, r);
  EXPECT_NE(buffer.str().find("pobtrace 1 4 2 1 0 0"), std::string::npos);
  EXPECT_EQ(read_trace(buffer).download_capacity, kUnlimited);
}

TEST(TraceIo, ReplayUnderDifferentMechanism) {
  // Record a strict-barter riffle run, replay it under StrictBarter and
  // CreditLimited: both must accept. Replaying a binomial pipeline under
  // StrictBarter must throw.
  EngineConfig cfg;
  cfg.num_nodes = 9;
  cfg.num_blocks = 16;
  cfg.download_capacity = 2;
  cfg.record_trace = true;
  RifflePipelineScheduler riffle(9, 16, 1, 2);
  const RunResult r = run(cfg, riffle);
  std::stringstream buffer;
  write_trace(buffer, cfg, r);
  const LoadedTrace loaded = read_trace(buffer);

  StrictBarter strict;
  EXPECT_TRUE(replay_trace(loaded, &strict).completed);
  CreditLimited credit(1);
  EXPECT_TRUE(replay_trace(loaded, &credit).completed);

  EngineConfig coop_cfg;
  coop_cfg.num_nodes = 16;
  coop_cfg.num_blocks = 4;
  coop_cfg.record_trace = true;
  BinomialPipelineScheduler bp(16, 4);
  const RunResult coop = run(coop_cfg, bp);
  std::stringstream coop_buffer;
  write_trace(coop_buffer, coop_cfg, coop);
  const LoadedTrace coop_trace = read_trace(coop_buffer);
  StrictBarter strict2;
  EXPECT_THROW(replay_trace(coop_trace, &strict2), EngineViolation);
}

TEST(TraceIo, CommentsAndIdleTicks) {
  std::stringstream in;
  in << "# produced by hand\n"
     << "pobtrace 1 3 2 1 0 0\n"
     << "0:1:0\n"
     << "\n"               // idle tick
     << "0:1:1 1:2:0\n"
     << "0:2:1\n";
  const LoadedTrace t = read_trace(in);
  ASSERT_EQ(t.ticks.size(), 4u);
  EXPECT_TRUE(t.ticks[1].empty());
  const RunResult r = replay_trace(t);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.completion_tick, 4u);
}

TEST(TraceIo, RejectsMalformedInput) {
  {
    std::stringstream in("not a trace\n");
    EXPECT_THROW(read_trace(in), std::invalid_argument);
  }
  {
    std::stringstream in("pobtrace 4 3 2 1 0 0\n");  // unknown version
    EXPECT_THROW(read_trace(in), std::invalid_argument);
  }
  {
    std::stringstream in("pobtrace 1 3 2 1 0 0\n0:1\n");  // bad cell
    EXPECT_THROW(read_trace(in), std::invalid_argument);
  }
  {
    std::stringstream in;
    EXPECT_THROW(read_trace(in), std::invalid_argument);
  }
  {  // v1 traces cannot carry directives
    std::stringstream in("pobtrace 1 3 2 1 0 0\n!drop\n");
    EXPECT_THROW(read_trace(in), std::invalid_argument);
  }
  {  // !up must list one capacity per node
    std::stringstream in("pobtrace 2 3 2 1 0 0\n!up 1 1\n");
    EXPECT_THROW(read_trace(in), std::invalid_argument);
  }
  {  // unknown directive
    std::stringstream in("pobtrace 2 3 2 1 0 0\n!frobnicate\n");
    EXPECT_THROW(read_trace(in), std::invalid_argument);
  }
  {  // directives must precede the first tick
    std::stringstream in("pobtrace 2 3 2 1 0 0\n0:1:0\n!drop\n");
    EXPECT_THROW(read_trace(in), std::invalid_argument);
  }
}

TEST(TraceIo, V2RoundTripsChurnAndHeterogeneousConfigs) {
  EngineConfig cfg;
  cfg.num_nodes = 6;
  cfg.num_blocks = 4;
  cfg.upload_capacities = {1, 2, 1, 1, 2, 1};
  cfg.download_capacities = {kUnlimited, 2, kUnlimited, 2, 2, kUnlimited};
  cfg.departures = {{9, 2}, {11, 4}};
  cfg.drop_transfers_involving_inactive = true;
  cfg.record_trace = true;

  RunResult fake;  // an empty schedule round-trips the config alone
  std::stringstream buffer;
  write_trace(buffer, cfg, fake);
  EXPECT_NE(buffer.str().find("pobtrace 2"), std::string::npos);

  const LoadedTrace loaded = read_trace(buffer);
  EXPECT_EQ(loaded.upload_capacities, cfg.upload_capacities);
  EXPECT_EQ(loaded.download_capacities, cfg.download_capacities);
  EXPECT_EQ(loaded.departures, cfg.departures);
  EXPECT_TRUE(loaded.drop_transfers_involving_inactive);
  EXPECT_FALSE(loaded.depart_on_complete);

  const EngineConfig back = loaded.to_config();
  EXPECT_EQ(back.upload_capacities, cfg.upload_capacities);
  EXPECT_EQ(back.download_capacities, cfg.download_capacities);
  EXPECT_EQ(back.departures, cfg.departures);
  EXPECT_TRUE(back.drop_transfers_involving_inactive);
}

TEST(TraceIo, V3RoundTripsArrivalsAndRateChanges) {
  EngineConfig cfg;
  cfg.num_nodes = 5;
  cfg.num_blocks = 3;
  cfg.record_trace = true;

  TraceEvents events;
  events.arrivals = {{2, 1}, {2, 3}, {7, 4}};
  events.rate_changes = {{3, 2, 2, 4}, {5, 1, 1, kUnlimited}};

  RunResult fake;
  fake.trace = {{{0, 2, 0}}, {{0, 2, 1}}};
  std::stringstream buffer;
  write_trace(buffer, cfg, fake, events);
  EXPECT_NE(buffer.str().find("pobtrace 3"), std::string::npos);
  // kUnlimited download encodes as 0 on the wire.
  EXPECT_NE(buffer.str().find("!rate 5 1 1 0"), std::string::npos);

  const LoadedTrace loaded = read_trace(buffer);
  EXPECT_EQ(loaded.events.arrivals, events.arrivals);
  EXPECT_EQ(loaded.events.rate_changes, events.rate_changes);
  ASSERT_EQ(loaded.ticks.size(), 2u);

  // to_config() deliberately ignores the events: the core engine has no
  // arrival concept, and a node present early only has more freedom.
  const RunResult replayed = replay_trace(loaded);
  EXPECT_EQ(replayed.total_transfers, 2u);

  // An empty event preamble must NOT force v3.
  std::stringstream plain;
  write_trace(plain, cfg, fake, TraceEvents{});
  EXPECT_NE(plain.str().find("pobtrace 1"), std::string::npos);
}

TEST(TraceIo, V3RejectsMalformedEventDirectives) {
  {  // !arrive is a v3 directive, not a v2 one
    std::stringstream in("pobtrace 2 3 2 1 0 0\n!arrive 2 1\n");
    EXPECT_THROW(read_trace(in), std::invalid_argument);
  }
  {  // !rate is a v3 directive, not a v2 one
    std::stringstream in("pobtrace 2 3 2 1 0 0\n!rate 2 1 1 0\n");
    EXPECT_THROW(read_trace(in), std::invalid_argument);
  }
  {  // the server cannot arrive
    std::stringstream in("pobtrace 3 3 2 1 0 0\n!arrive 2 0\n");
    EXPECT_THROW(read_trace(in), std::invalid_argument);
  }
  {  // arrival node out of range
    std::stringstream in("pobtrace 3 3 2 1 0 0\n!arrive 2 3\n");
    EXPECT_THROW(read_trace(in), std::invalid_argument);
  }
  {  // arrivals happen at tick >= 1 (tick 0 means "present from the start")
    std::stringstream in("pobtrace 3 3 2 1 0 0\n!arrive 0 1\n");
    EXPECT_THROW(read_trace(in), std::invalid_argument);
  }
  {  // missing !rate fields
    std::stringstream in("pobtrace 3 3 2 1 0 0\n!rate 2 1\n");
    EXPECT_THROW(read_trace(in), std::invalid_argument);
  }
  {  // trailing fields
    std::stringstream in("pobtrace 3 3 2 1 0 0\n!arrive 2 1 9\n");
    EXPECT_THROW(read_trace(in), std::invalid_argument);
  }
  {  // rate-change node out of range
    std::stringstream in("pobtrace 3 3 2 1 0 0\n!rate 2 7 1 0\n");
    EXPECT_THROW(read_trace(in), std::invalid_argument);
  }
  {  // directives still must precede the first tick
    std::stringstream in("pobtrace 3 3 2 1 0 0\n0:1:0\n!arrive 2 1\n");
    EXPECT_THROW(read_trace(in), std::invalid_argument);
  }
}

TEST(TraceIo, ReplayCatchesTamperedTraces) {
  std::stringstream in;
  in << "pobtrace 1 3 2 1 0 0\n"
     << "1:2:0\n";  // client 1 does not have block 0
  const LoadedTrace t = read_trace(in);
  EXPECT_THROW(replay_trace(t), EngineViolation);
}

}  // namespace
}  // namespace pob
