#include "pob/scale/sched_riffle.h"

#include <algorithm>
#include <cassert>

namespace pob::scale {

RiffleScheduler::RiffleScheduler(const Engine& engine) {
  const std::uint32_t n = engine.config().num_nodes;
  const std::uint32_t k = engine.config().num_blocks;
  build(/*client0=*/1, /*p=*/n - 1, /*block0=*/0, /*kk=*/k, /*t0=*/0);
  for (const Segment& seg : segments_) last_tick_ = std::max(last_tick_, seg.end);
}

void RiffleScheduler::build(NodeId client0, std::uint32_t p, BlockId block0,
                            std::uint32_t kk, Tick t0) {
  if (p == 0 || kk == 0) return;
  if (p == 1) {
    // Degenerate riffle: the server streams every block to the lone client
    // (CDTP's chain-transfer endpoint). Representable as kk one-client
    // "cycles": handoffs at t0 + 1 .. t0 + kk, no barters.
    segments_.push_back(Segment{t0, t0 + kk, client0, 1, block0, kk});
    return;
  }
  const std::uint32_t cycles = kk / p;
  const std::uint32_t rem = kk % p;
  if (cycles > 0) {
    // Last barter of the last full cycle: t0 + (cycles-1)*p + (2p - 3) + 2.
    segments_.push_back(Segment{t0, t0 + (cycles - 1) * p + 2 * p - 1, client0,
                                p, block0, cycles});
  }
  if (rem == 0) return;

  // Remainder: subgroups of `rem` clients each riffle one cycle of the
  // leftover blocks, staggered `rem` ticks apart (the server windows are
  // disjoint); a short final subgroup recurses.
  const Tick t1 = t0 + cycles * p;
  const BlockId b1 = block0 + cycles * p;
  std::uint32_t h = 0;
  for (std::uint32_t start = 0; start < p; start += rem, ++h) {
    const std::uint32_t size = std::min(rem, p - start);
    const Tick base = t1 + h * rem;
    if (size == rem) {
      segments_.push_back(Segment{base,
                                  rem == 1 ? base + 1 : base + 2 * rem - 1,
                                  client0 + start, rem, b1, 1});
    } else {
      build(client0 + start, size, b1, rem, base);
    }
  }
}

void RiffleScheduler::emit_segment(const Segment& seg, Tick tick) {
  const std::uint32_t p = seg.p;
  const Tick rel = tick - seg.t0;  // >= 1: begin_tick only activates t0 < tick

  // Server handoff: one per segment tick while the cycles are being fed.
  const std::uint32_t c = static_cast<std::uint32_t>(rel - 1);
  if (c < seg.cycles * p) {
    tick_buf_.push_back(
        Transfer{kServer, seg.client0 + (c % p), seg.block0 + c});
  }
  if (p < 2 || rel < 3) return;

  // Barters: cycle g is active iff c' = rel - g*p - 2 is in [1, 2p - 3];
  // solve for g instead of scanning cycles — at most two hit any tick.
  const std::uint32_t cmax = 2 * p - 3;
  const std::uint64_t r2 = rel - 2;
  const std::uint64_t gmin = r2 > cmax ? (r2 - cmax + p - 1) / p : 0;
  const std::uint64_t gmax =
      std::min<std::uint64_t>((rel - 3) / p, seg.cycles - 1);
  for (std::uint64_t g = gmin; g <= gmax; ++g) {
    const auto cp = static_cast<std::uint32_t>(r2 - g * p);  // i + j, in [1, cmax]
    const BlockId cycle_base = seg.block0 + static_cast<std::uint32_t>(g) * p;
    const std::uint32_t ilo = cp > p - 1 ? cp - (p - 1) : 0;
    const std::uint32_t ihi = (cp - 1) / 2;
    for (std::uint32_t i = ilo; i <= ihi; ++i) {
      const std::uint32_t j = cp - i;
      tick_buf_.push_back(
          Transfer{seg.client0 + i, seg.client0 + j, cycle_base + i});
      tick_buf_.push_back(
          Transfer{seg.client0 + j, seg.client0 + i, cycle_base + j});
    }
  }
}

void RiffleScheduler::begin_tick(Tick tick) {
  if (tick <= built_tick_) {
    // Non-monotone drive (a fresh lockstep replay): rewind and replay the
    // cursor — segments_ is immutable, so this is exact.
    next_segment_ = 0;
    active_.clear();
  }
  while (next_segment_ < segments_.size() && segments_[next_segment_].t0 < tick) {
    active_.push_back(segments_[next_segment_++]);
  }
  std::erase_if(active_, [&](const Segment& seg) { return seg.end < tick; });

  tick_buf_.clear();
  for (const Segment& seg : active_) emit_segment(seg, tick);
  // Canonical sharded order is ascending sender. Each node uploads at most
  // once per tick (u = 1 by construction), so the sort key is unique.
  std::sort(tick_buf_.begin(), tick_buf_.end(),
            [](const Transfer& a, const Transfer& b) { return a.from < b.from; });
  built_tick_ = tick;
}

void RiffleScheduler::generate(Tick tick, std::uint32_t /*shard*/, NodeId first,
                               NodeId last, std::vector<Transfer>& out) {
  assert(tick == built_tick_ && "begin_tick must precede generate");
  (void)tick;
  const auto lo = std::partition_point(
      tick_buf_.begin(), tick_buf_.end(),
      [&](const Transfer& t) { return t.from < first; });
  const auto hi = std::partition_point(
      lo, tick_buf_.end(), [&](const Transfer& t) { return t.from < last; });
  out.insert(out.end(), lo, hi);
}

std::uint64_t RiffleScheduler::memory_bytes() const {
  return (segments_.capacity() + active_.capacity()) * sizeof(Segment) +
         tick_buf_.capacity() * sizeof(Transfer);
}

}  // namespace pob::scale
