// Theorem 3's riffle pipeline as a scale intent generator: strict bilateral
// barter reaching Theorem 2's T = n + k - 2 lower bound.
//
// Core's RifflePipelineScheduler materializes every meeting (O(n^2 k / p)
// of them) and runs a greedy legalizer — fine at n <= 10^4, hopeless at
// 10^6. The observation that makes a million-node port cheap: the recursive
// riffle construction only ever produces one shape, a CYCLE RUN — a
// contiguous client range [client0, client0 + p) playing `cycles`
// consecutive riffle cycles over a contiguous block range starting at
// block0 from tick t0 + 1. The whole schedule is a short list of such
// Segments (O(n / k + log) of them, built once from (n, k) by mirroring the
// recursion), and any tick's transfer set is recovered by pure arithmetic:
//
//   handoff   server -> client0 + (c mod p), block0 + c, at t0 + c + 1,
//             for c in [0, cycles * p)
//   barter    cycle g is active at relative tick rel = tick - t0 iff
//             c' = rel - g*p - 2 lies in [1, 2p - 3]; the meetings are the
//             pairs i < j with i + j = c', swapping (block0 + g*p + i) for
//             (block0 + g*p + j) — at most two cycles of a segment overlap
//             any tick, so emission is O(transfers), not O(schedule).
//
// At u = 1, d >= 2 the desired schedule is already legal — consecutive
// cycles' barter partners shift by p (never two barters on one client in a
// tick), a handoff landing on a bartering client is exactly the d = 2 case,
// and the recursion's server windows are time-disjoint — so core's
// legalizer is a no-op on it and the per-tick sets here equal core's
// legalized schedule (the fuzzer's mirror arm checks precisely that). The
// engine therefore requires download capacity >= 2 for this scheduler; the
// merge admits every intent verbatim.
//
// begin_tick materializes the tick's transfers once, serially, sorted by
// sender (each node sends at most once per tick); generate() binary-searches
// the sender slice, keeping the sharded phase-1 contract bit-identical at
// any job count.

#pragma once

#include <cstdint>
#include <vector>

#include "pob/scale/engine.h"
#include "pob/scale/scheduler.h"

namespace pob::scale {

class RiffleScheduler final : public ScaleScheduler {
 public:
  explicit RiffleScheduler(const Engine& engine);

  void begin_tick(Tick tick) override;
  void generate(Tick tick, std::uint32_t shard, NodeId first, NodeId last,
                std::vector<Transfer>& out) override;

  const char* name() const override { return "riffle-pipeline"; }
  std::uint64_t memory_bytes() const override;

  /// The schedule's last transfer tick — n + k - 2 whenever (n - 1) | k or
  /// k < n - 1 divides evenly down the recursion; always >= n + k - 2
  /// (Theorem 2). Exposed for tests and the bench table.
  Tick last_tick() const { return last_tick_; }

 private:
  // One cycle run; see the header comment. `end` is the segment's last
  // transfer tick, precomputed so begin_tick retires segments in O(1).
  struct Segment {
    Tick t0;
    Tick end;
    NodeId client0;
    std::uint32_t p;
    BlockId block0;
    std::uint32_t cycles;
  };

  /// Mirrors core's emit(): contiguous clients [client0, client0 + p) x
  /// blocks [block0, block0 + kk), first transfer after t0. Appends
  /// segments in nondecreasing t0.
  void build(NodeId client0, std::uint32_t p, BlockId block0, std::uint32_t kk,
             Tick t0);
  void emit_segment(const Segment& seg, Tick tick);

  std::vector<Segment> segments_;
  Tick last_tick_ = 0;

  // Per-tick state: a monotone cursor into segments_, the live segments,
  // and the tick's transfers sorted by sender.
  std::size_t next_segment_ = 0;
  std::vector<Segment> active_;
  std::vector<Transfer> tick_buf_;
  Tick built_tick_ = 0;
};

}  // namespace pob::scale
