// Per-node capacity overrides (heterogeneous bandwidths).

#include <gtest/gtest.h>

#include "pob/core/engine.h"
#include "pob/core/metrics.h"
#include "pob/overlay/overlay.h"
#include "pob/rand/randomized.h"

namespace pob {
namespace {

TEST(Heterogeneous, EngineValidatesVectorSizes) {
  EngineConfig cfg;
  cfg.num_nodes = 4;
  cfg.num_blocks = 2;
  cfg.upload_capacities = {1, 1};  // wrong size
  RandomizedScheduler sched(std::make_shared<CompleteOverlay>(4), {}, Rng(1));
  EXPECT_THROW(run(cfg, sched), EngineViolation);
}

TEST(Heterogeneous, PerNodeUploadCapsAreEnforced) {
  // Client 1 has zero upload slots in the config; a scheduler that makes it
  // upload must be vetoed.
  class ForceUpload final : public Scheduler {
   public:
    std::string_view name() const override { return "force"; }
    void plan_tick(Tick t, const SwarmState&, std::vector<Transfer>& out) override {
      if (t == 1) out.push_back({kServer, 1, 0});
      if (t == 2) out.push_back({1, 2, 0});
    }
  };
  EngineConfig cfg;
  cfg.num_nodes = 3;
  cfg.num_blocks = 1;
  cfg.upload_capacities = {1, 0, 1};
  ForceUpload sched;
  EXPECT_THROW(run(cfg, sched), EngineViolation);
}

TEST(Heterogeneous, FastNodesCarryMoreLoad) {
  const std::uint32_t n = 64, k = 64;
  std::vector<std::uint32_t> up(n, 1);
  for (NodeId u = 1; u < n; u += 2) up[u] = 3;  // odd clients are 3x faster
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  cfg.upload_capacities = up;
  RandomizedOptions opt;
  opt.upload_capacities = up;
  RandomizedScheduler sched(std::make_shared<CompleteOverlay>(n), opt, Rng(3));
  const RunResult r = run(cfg, sched);
  ASSERT_TRUE(r.completed);
  std::uint64_t fast = 0, slow = 0;
  for (NodeId u = 1; u < n; ++u) {
    (u % 2 == 1 ? fast : slow) += r.uploads_per_node[u];
  }
  EXPECT_GT(fast, 2 * slow);
}

TEST(Heterogeneous, ExtraCapacitySpeedsUpCompletion) {
  const std::uint32_t n = 64, k = 128;
  EngineConfig uniform;
  uniform.num_nodes = n;
  uniform.num_blocks = k;
  RandomizedScheduler s1(std::make_shared<CompleteOverlay>(n), {}, Rng(5));
  const RunResult slow = run(uniform, s1);

  std::vector<std::uint32_t> up(n, 2);
  EngineConfig fat = uniform;
  fat.upload_capacities = up;
  RandomizedOptions opt;
  opt.upload_capacities = up;
  RandomizedScheduler s2(std::make_shared<CompleteOverlay>(n), opt, Rng(5));
  const RunResult fast = run(fat, s2);

  ASSERT_TRUE(slow.completed);
  ASSERT_TRUE(fast.completed);
  EXPECT_LT(2 * fast.completion_tick, 3 * slow.completion_tick);  // ~half
}

TEST(Heterogeneous, PerNodeDownloadCapsAreEnforced) {
  class DoubleFeed final : public Scheduler {
   public:
    std::string_view name() const override { return "feed"; }
    void plan_tick(Tick t, const SwarmState&, std::vector<Transfer>& out) override {
      if (t == 1) {
        out.push_back({kServer, 1, 0});
      } else if (t == 2) {
        out.push_back({kServer, 2, 0});
        out.push_back({1, 2, 1});  // second download into node 2
      }
    }
  };
  EngineConfig cfg;
  cfg.num_nodes = 3;
  cfg.num_blocks = 2;
  cfg.download_capacities = {kUnlimited, kUnlimited, 1};
  DoubleFeed sched;
  EXPECT_THROW(run(cfg, sched), EngineViolation);
}

TEST(Heterogeneous, UtilizationUsesPerNodeSlots) {
  RunResult r;
  r.uploads_per_tick = {3};
  EngineConfig cfg;
  cfg.num_nodes = 3;
  cfg.num_blocks = 1;
  cfg.upload_capacities = {2, 2, 2};
  EXPECT_DOUBLE_EQ(r.utilization(1, cfg), 0.5);
}

TEST(Fairness, GiniOfKnownDistributions) {
  RunResult equal;
  equal.uploads_per_node = {99, 5, 5, 5, 5};  // server excluded
  const FairnessSummary f1 = upload_fairness(equal);
  EXPECT_DOUBLE_EQ(f1.mean, 5.0);
  EXPECT_NEAR(f1.gini, 0.0, 1e-12);

  RunResult skewed;
  skewed.uploads_per_node = {99, 0, 0, 0, 20};
  const FairnessSummary f2 = upload_fairness(skewed);
  EXPECT_DOUBLE_EQ(f2.max, 20.0);
  EXPECT_NEAR(f2.gini, 0.75, 1e-12);  // (n-1)/n for one-does-all, n = 4
}

TEST(Fairness, EmptyAndTinyInputs) {
  RunResult r;
  EXPECT_DOUBLE_EQ(upload_fairness(r).gini, 0.0);
  r.uploads_per_node = {7};  // server only
  EXPECT_DOUBLE_EQ(upload_fairness(r).gini, 0.0);
}

TEST(Fairness, BarterEqualizesLoad) {
  // Under credit-limited barter nobody can freeload: client upload loads
  // should be tighter than in the cooperative swarm.
  const std::uint32_t n = 128, k = 128;
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  RandomizedScheduler coop(std::make_shared<CompleteOverlay>(n), {}, Rng(11));
  const RunResult r_coop = run(cfg, coop);
  ASSERT_TRUE(r_coop.completed);

  auto cr = make_credit_randomized(std::make_shared<CompleteOverlay>(n), {}, Rng(11), 1);
  const RunResult r_barter = run(cfg, *cr.scheduler, cr.mechanism.get());
  ASSERT_TRUE(r_barter.completed);

  EXPECT_LE(upload_fairness(r_barter).gini, upload_fairness(r_coop).gini + 0.02);
}

}  // namespace
}  // namespace pob
