#include "pob/scale/topology.h"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

namespace pob::scale {

Topology Topology::complete(std::uint32_t num_nodes) {
  if (num_nodes < 2) throw std::invalid_argument("Topology: need >= 2 nodes");
  Topology t;
  t.n_ = num_nodes;
  t.complete_ = true;
  return t;
}

Topology Topology::from_graph(const Graph& graph) {
  if (!graph.finalized()) throw std::invalid_argument("Topology: graph not finalized");
  if (graph.num_nodes() < 2) throw std::invalid_argument("Topology: need >= 2 nodes");
  Topology t;
  t.n_ = graph.num_nodes();
  // Both CSR arrays are sized exactly up front, so they can live on
  // hugepage-backed memory from the first byte (see hugemem.h) — the
  // planner random-reads targets_ millions of times per tick, and big
  // pages keep those lookups off the TLB-walk path.
  t.offsets_.reset(static_cast<std::size_t>(t.n_) + 1);
  t.targets_.reset(graph.num_edges() * 2);
  std::uint64_t offset = 0;
  for (NodeId u = 0; u < t.n_; ++u) {
    t.offsets_[u] = offset;
    const auto neighbors = graph.neighbors(u);
    std::copy(neighbors.begin(), neighbors.end(), t.targets_.data() + offset);
    offset += neighbors.size();
  }
  t.offsets_[t.n_] = offset;
  return t;
}

Topology Topology::from_overlay(const Overlay& overlay) {
  const std::uint32_t n = overlay.num_nodes();
  if (n < 2) throw std::invalid_argument("Topology: need >= 2 nodes");
  Topology t;
  t.n_ = n;
  t.offsets_.reset(static_cast<std::size_t>(n) + 1);
  std::uint64_t total = 0;
  for (NodeId u = 0; u < n; ++u) {
    t.offsets_[u] = total;
    total += overlay.degree(u);
  }
  t.offsets_[n] = total;
  t.targets_.reset(total);
  for (NodeId u = 0; u < n; ++u) {
    const std::uint64_t offset = t.offsets_[u];
    const std::uint32_t deg = overlay.degree(u);
    for (std::uint32_t i = 0; i < deg; ++i) {
      t.targets_[offset + i] = overlay.neighbor(u, i);
    }
    // Overlay promises stable-but-arbitrary ordering; the planner's contract
    // is ascending ids, so normalize here.
    std::sort(t.targets_.data() + offset, t.targets_.data() + offset + deg);
  }
  return t;
}

}  // namespace pob::scale
