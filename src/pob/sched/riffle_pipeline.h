// §3.1.3 "The Riffle Pipeline" — the deterministic strict-barter algorithm
// behind Theorem 3.
//
// Single cycle (k = n - 1): the server hands block b_i to client C_i at tick
// i; clients C_i and C_j (i < j) meet at tick i + j and exchange their
// server-given blocks. Every client thus talks to the others in the same
// sequence, each trailing the previous by one tick — the "riffle". The cycle
// completes at tick 2(n-1) - 1 = 2n - 3.
//
// General k: full cycles of n - 1 blocks are riffled back to back (the next
// cycle's server hand-off overlaps the previous cycle's barter, which is why
// Theorem 3 needs download capacity >= 2 * upload capacity); the k mod (n-1)
// leftover blocks are distributed to subgroups of that size, recursively for
// the final partial subgroup, exactly as §3.1.3 describes.
//
// The constructor materializes the whole schedule, legalizing it against the
// configured capacities by greedily delaying any meeting whose participants
// are busy; every client-client transfer remains a simultaneous pairwise
// exchange, so the engine's StrictBarter mechanism validates every tick.

#pragma once

#include <cstdint>
#include <vector>

#include "pob/core/scheduler.h"

namespace pob {

class RifflePipelineScheduler final : public Scheduler {
 public:
  /// `download_capacity` is the d of Theorem 3; 2u gives the tight schedule,
  /// d = u still works but serializes server hand-offs against barter.
  RifflePipelineScheduler(std::uint32_t num_nodes, std::uint32_t num_blocks,
                          std::uint32_t upload_capacity = 1,
                          std::uint32_t download_capacity = 2);

  std::string_view name() const override { return "riffle-pipeline"; }
  void plan_tick(Tick tick, const SwarmState& state, std::vector<Transfer>& out) override;

  /// Number of ticks in the materialized schedule (== completion time).
  Tick schedule_length() const { return static_cast<Tick>(schedule_.size()); }

  /// Theorem 3's bound in its cleanest regime: k a multiple of n - 1 with
  /// d >= 2u completes in k + n - 2 ticks, matching Theorem 2's lower bound.
  static Tick ideal_completion_time(std::uint32_t num_nodes, std::uint32_t num_blocks) {
    return num_blocks + num_nodes - 2;
  }

 private:
  struct Meeting {
    Tick desired;              // earliest legal tick
    std::uint32_t seq;         // stable tiebreak
    std::vector<Transfer> transfers;  // 1 (server send) or 2 (barter pair)
  };

  /// Emits the riffle schedule for distributing `blocks` to `clients`, with
  /// server sends starting after tick `t0`. Recursion handles the final
  /// partial subgroup.
  void emit(const std::vector<NodeId>& clients, const std::vector<BlockId>& blocks,
            Tick t0);

  void legalize(std::uint32_t upload_capacity, std::uint32_t download_capacity);

  std::vector<Meeting> meetings_;
  std::vector<std::vector<Transfer>> schedule_;  // schedule_[t-1] = tick t
  std::uint32_t next_seq_ = 0;
};

}  // namespace pob
