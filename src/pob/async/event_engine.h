// Event-driven (asynchronous) simulation, modeling §2.3.4's "dealing with
// asynchrony": nodes have individual upload rates, a transfer of one block
// from u occupies u's upload port for 1/rate(u) time units, and each node
// proceeds at its own pace instead of in lock-step. Receivers gain a block
// only when the transfer completes ("a node cannot begin transmitting a
// block until it has received that block in its entirety").

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "pob/core/block_set.h"
#include "pob/core/rng.h"
#include "pob/core/types.h"

namespace pob {

/// Read-only view the upload policies consult when a node's port frees up.
class AsyncView {
 public:
  virtual ~AsyncView() = default;
  virtual std::uint32_t num_nodes() const = 0;
  virtual std::uint32_t num_blocks() const = 0;
  virtual const BlockSet& blocks_of(NodeId node) const = 0;
  /// Blocks currently in flight toward `node` (counted as promised).
  virtual const BlockSet& inbound_of(NodeId node) const = 0;
  virtual std::uint32_t inbound_count(NodeId node) const = 0;
  virtual bool is_complete(NodeId node) const = 0;
  virtual std::span<const std::uint32_t> block_frequency() const = 0;
};

/// Decides what an idle uploader sends next; return {kNoNode, ...} to idle.
/// Idle nodes are re-consulted whenever any transfer completes.
class AsyncPolicy {
 public:
  virtual ~AsyncPolicy() = default;
  virtual Transfer next_upload(NodeId node, double now, const AsyncView& view) = 0;

  /// When next_upload returned nothing: delay until the engine should ask
  /// this node again even if no transfer completes meanwhile (for policies
  /// with internal timers, like tit-for-tat's rechoke clock). Return 0 for
  /// "only wake me on events" (the default); without timers a fully idle
  /// swarm ends the simulation.
  virtual double retry_after(NodeId node, double now) {
    (void)node;
    (void)now;
    return 0.0;
  }
};

struct AsyncConfig {
  std::uint32_t num_nodes = 0;
  std::uint32_t num_blocks = 0;
  /// Per-node upload rate in blocks per time unit; empty = all 1.0. A rate
  /// of 1.0 for everyone makes times comparable to synchronous ticks.
  std::vector<double> upload_rate;
  /// Max concurrent inbound transfers per node (download ports).
  std::uint32_t download_ports = kUnlimited;
  /// Simulation time cap; 0 picks a generous default.
  double max_time = 0.0;
  /// Record every completed transfer into AsyncResult::log (for differential
  /// checking and trace export).
  bool record_log = false;
};

/// One completed transfer in an asynchronous run. `start` is when the upload
/// port was claimed, `finish` = start + 1/rate(from) is when the receiver
/// gained the block.
struct AsyncTransfer {
  Transfer transfer;
  double start = 0.0;
  double finish = 0.0;
};

struct AsyncResult {
  bool completed = false;
  double completion_time = 0.0;          ///< last client finish time (completed runs)
  double mean_completion_time = 0.0;     ///< mean client finish time (completed runs)

  /// Simulation time actually reached: the time of the last processed event.
  /// On a time-cap abort this is where the run was cut off, so censored runs
  /// are distinguishable from ones that finished instantly.
  double last_event_time = 0.0;

  /// Clients that had not finished when the run ended; nonzero exactly when
  /// !completed.
  std::uint32_t unfinished_clients = 0;

  /// Per client (index 0 = node 1); NaN marks a client that never finished
  /// (censored), never 0.0-as-unfinished.
  std::vector<double> client_completion;
  std::uint64_t total_transfers = 0;

  /// Completed transfers in completion order (config.record_log only).
  std::vector<AsyncTransfer> log;
};

/// Runs the asynchronous simulation to completion (or the time cap).
AsyncResult run_async(const AsyncConfig& config, AsyncPolicy& policy);

}  // namespace pob
