// Fixed-width table printer for bench output (and optional CSV emission),
// so every experiment binary prints the same shape of row the paper's
// figures/tables report.

#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace pob {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  void print(std::ostream& os) const;
  void write_csv(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` digits after the point.
std::string fmt(double value, int precision = 1);

/// Formats "mean ± ci95".
std::string fmt_ci(double mean, double ci, int precision = 1);

}  // namespace pob
