#include "pob/core/swarm_state.h"

#include <cassert>
#include <stdexcept>

namespace pob {

SwarmState::SwarmState(std::uint32_t num_nodes, std::uint32_t num_blocks)
    : num_blocks_(num_blocks) {
  if (num_nodes < 2) throw std::invalid_argument("SwarmState: need >= 2 nodes");
  if (num_blocks < 1) throw std::invalid_argument("SwarmState: need >= 1 block");
  have_.reserve(num_nodes);
  for (std::uint32_t i = 0; i < num_nodes; ++i) have_.emplace_back(num_blocks);
  have_[kServer].fill();
  completion_tick_.assign(num_nodes, 0);
  position_.assign(num_nodes, kNotListed);
  incomplete_.reserve(num_nodes - 1);
  for (NodeId c = 1; c < num_nodes; ++c) {
    position_[c] = static_cast<std::uint32_t>(incomplete_.size());
    incomplete_.push_back(c);
  }
  freq_.assign(num_blocks, 1);  // the server's copy
  active_.assign(num_nodes, 1);
  total_held_ = num_blocks;
}

void SwarmState::deactivate(NodeId node) {
  assert(node < num_nodes());
  if (node == kServer) throw std::invalid_argument("deactivate: the server cannot depart");
  if (!active_[node]) return;
  active_[node] = 0;
  ++num_departed_;
  have_[node].for_each([this](BlockId b) { --freq_[b]; });
  total_held_ -= have_[node].count();
  const std::uint32_t pos = position_[node];
  if (pos != kNotListed) {
    const NodeId moved = incomplete_.back();
    incomplete_[pos] = moved;
    position_[moved] = pos;
    incomplete_.pop_back();
    position_[node] = kNotListed;
  }
}

bool SwarmState::add_block(NodeId node, BlockId block, Tick tick) {
  assert(node < num_nodes());
  assert(block < num_blocks_);
  if (!have_[node].insert(block)) return false;
  ++freq_[block];
  ++total_held_;
  if (have_[node].full() && node != kServer) {
    completion_tick_[node] = tick;
    const std::uint32_t pos = position_[node];
    assert(pos != kNotListed);
    const NodeId moved = incomplete_.back();
    incomplete_[pos] = moved;
    position_[moved] = pos;
    incomplete_.pop_back();
    position_[node] = kNotListed;
  }
  return true;
}

std::vector<Tick> SwarmState::client_completion_ticks() const {
  std::vector<Tick> out;
  out.reserve(num_clients());
  for (NodeId c = 1; c < num_nodes(); ++c) out.push_back(completion_tick_[c]);
  return out;
}

}  // namespace pob
