#include "pob/sched/pipeline.h"

#include <gtest/gtest.h>

#include "pob/core/engine.h"

namespace pob {
namespace {

RunResult run_pipe(std::uint32_t n, std::uint32_t k) {
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  cfg.download_capacity = 1;
  PipelineScheduler sched(n, k);
  return run(cfg, sched);
}

class PipelineFormula
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(PipelineFormula, CompletesInKPlusNMinus2) {
  const auto [n, k] = GetParam();
  const RunResult r = run_pipe(n, k);
  ASSERT_TRUE(r.completed) << "n=" << n << " k=" << k;
  EXPECT_EQ(r.completion_tick, PipelineScheduler::completion_time(n, k));
  EXPECT_EQ(r.completion_tick, k + n - 2);
}

INSTANTIATE_TEST_SUITE_P(Grid, PipelineFormula,
                         ::testing::Combine(::testing::Values(2u, 3u, 5u, 10u, 64u, 100u),
                                            ::testing::Values(1u, 2u, 8u, 50u)));

TEST(Pipeline, ClientsFinishInChainOrder) {
  const RunResult r = run_pipe(5, 3);
  ASSERT_TRUE(r.completed);
  // Client i finishes at k - 1 + i.
  EXPECT_EQ(r.client_completion, (std::vector<Tick>{3, 4, 5, 6}));
}

TEST(Pipeline, TransfersEveryTickUntilDone) {
  const RunResult r = run_pipe(4, 4);
  ASSERT_TRUE(r.completed);
  // Total blocks delivered = (n - 1) * k.
  EXPECT_EQ(r.total_transfers, 3u * 4u);
}

TEST(Pipeline, RejectsTooFewNodes) {
  EXPECT_THROW(PipelineScheduler(1, 4), std::invalid_argument);
}

}  // namespace
}  // namespace pob
