#include "pob/analysis/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace pob {
namespace {

TEST(Stats, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, SingleSample) {
  const std::vector<double> x = {42.0};
  const Summary s = summarize(x);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 42.0);
}

TEST(Stats, KnownMoments) {
  const std::vector<double> x = {2, 4, 4, 4, 5, 5, 7, 9};
  const Summary s = summarize(x);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.13809, 1e-4);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
}

TEST(Stats, OddMedian) {
  const std::vector<double> x = {9, 1, 5};
  EXPECT_DOUBLE_EQ(summarize(x).median, 5.0);
}

TEST(Stats, CiUsesStudentTForSmallSamples) {
  const std::vector<double> x = {1, 2, 3};  // stddev 1, n 3, t(2) = 4.303
  const Summary s = summarize(x);
  EXPECT_NEAR(s.ci95, 4.303 * 1.0 / std::sqrt(3.0), 1e-9);
}

TEST(Stats, CiConvergesToNormalForLargeSamples) {
  std::vector<double> x;
  for (int i = 0; i < 100; ++i) x.push_back(i % 2 == 0 ? 1.0 : -1.0);
  const Summary s = summarize(x);
  EXPECT_NEAR(s.ci95, 1.96 * s.stddev / 10.0, 1e-9);
}

TEST(Stats, TCriticalTable) {
  EXPECT_DOUBLE_EQ(t_critical_975(1), 12.706);
  EXPECT_DOUBLE_EQ(t_critical_975(10), 2.228);
  EXPECT_DOUBLE_EQ(t_critical_975(1000), 1.96);
  EXPECT_DOUBLE_EQ(t_critical_975(0), 0.0);
}

}  // namespace
}  // namespace pob
