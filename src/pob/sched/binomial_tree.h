// §2.2.3 "The Binomial Tree": with a single block, the number of nodes
// holding it doubles every tick (Figure 1), completing in ceil(log2 n) ticks
// — optimal for k = 1. For k > 1 the simple extension sends the file one
// block at a time, waiting for each block to finish before starting the
// next, for a completion time of k * ceil(log2 n).

#pragma once

#include "pob/core/scheduler.h"

namespace pob {

class BinomialTreeScheduler final : public Scheduler {
 public:
  BinomialTreeScheduler(std::uint32_t num_nodes, std::uint32_t num_blocks);

  std::string_view name() const override { return "binomial-tree"; }
  void plan_tick(Tick tick, const SwarmState& state, std::vector<Transfer>& out) override;

  /// Closed-form completion time of this schedule.
  static Tick completion_time(std::uint32_t num_nodes, std::uint32_t num_blocks);

 private:
  std::uint32_t n_;
  std::uint32_t k_;
};

}  // namespace pob
