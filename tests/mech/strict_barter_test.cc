#include <gtest/gtest.h>

#include "pob/mech/barter.h"

namespace pob {
namespace {

SwarmState seeded_state() {
  // 5 nodes, 4 blocks; clients 1..4 each hold one distinct block.
  SwarmState s(5, 4);
  for (NodeId c = 1; c <= 4; ++c) s.add_block(c, c - 1, 1);
  return s;
}

TEST(StrictBarter, ServerGivesFreely) {
  StrictBarter mech;
  const SwarmState s = seeded_state();
  const std::vector<Transfer> tick = {{kServer, 1, 3}, {kServer, 2, 3}};
  EXPECT_EQ(mech.check_tick(2, tick, s), std::nullopt);
}

TEST(StrictBarter, PairedExchangeIsLegal) {
  StrictBarter mech;
  const SwarmState s = seeded_state();
  const std::vector<Transfer> tick = {{1, 2, 0}, {2, 1, 1}, {3, 4, 2}, {4, 3, 3}};
  EXPECT_EQ(mech.check_tick(2, tick, s), std::nullopt);
}

TEST(StrictBarter, UnreciprocatedTransferIsIllegal) {
  StrictBarter mech;
  const SwarmState s = seeded_state();
  const std::vector<Transfer> tick = {{1, 2, 0}};
  EXPECT_TRUE(mech.check_tick(2, tick, s).has_value());
}

TEST(StrictBarter, ChainIsNotBarter) {
  // 1 -> 2 -> 3 -> 1 is a triangle, not pairwise barter.
  StrictBarter mech;
  const SwarmState s = seeded_state();
  const std::vector<Transfer> tick = {{1, 2, 0}, {2, 3, 1}, {3, 1, 2}};
  EXPECT_TRUE(mech.check_tick(2, tick, s).has_value());
}

TEST(StrictBarter, UploadToServerIsIllegal) {
  StrictBarter mech;
  const SwarmState s = seeded_state();
  const std::vector<Transfer> tick = {{1, kServer, 0}};
  EXPECT_TRUE(mech.check_tick(2, tick, s).has_value());
}

TEST(StrictBarter, MixedServerAndPairs) {
  StrictBarter mech;
  const SwarmState s = seeded_state();
  const std::vector<Transfer> tick = {{kServer, 1, 3}, {2, 3, 1}, {3, 2, 2}};
  EXPECT_EQ(mech.check_tick(2, tick, s), std::nullopt);
}

TEST(StrictBarter, EmptyTickIsLegal) {
  StrictBarter mech;
  const SwarmState s = seeded_state();
  EXPECT_EQ(mech.check_tick(1, {}, s), std::nullopt);
}

}  // namespace
}  // namespace pob
