// CalendarQueue unit tests: tick-bucket collection order, the overflow
// window migration, and the push-into-the-past guard. The queue's total
// order within a tick is what makes the stream driver's event application a
// pure function of the event SET — these tests pin that contract.

#include <gtest/gtest.h>

#include <stdexcept>

#include "pob/scale/stream/calendar.h"

namespace pob::scale::stream {
namespace {

StreamEvent arrive(Tick t, NodeId node) {
  StreamEvent ev;
  ev.time = t;
  ev.node = node;
  ev.kind = EventKind::kArrive;
  return ev;
}

StreamEvent rate(Tick t, NodeId node, std::uint32_t up, std::uint32_t down) {
  StreamEvent ev;
  ev.time = t;
  ev.node = node;
  ev.kind = EventKind::kRate;
  ev.up = up;
  ev.down = down;
  return ev;
}

TEST(CalendarQueue, CollectsATickSortedByNodeThenKind) {
  CalendarQueue q;
  // Push in scrambled order; collect must return (node, kind) order.
  q.push(rate(3, 2, 2, 4));
  q.push(arrive(3, 7));
  q.push(arrive(3, 2));
  q.push(arrive(4, 1));
  ASSERT_EQ(q.size(), 4u);

  const std::vector<StreamEvent>& t3 = q.collect(3);
  ASSERT_EQ(t3.size(), 3u);
  EXPECT_EQ(t3[0].node, 2u);
  EXPECT_EQ(t3[0].kind, EventKind::kArrive);
  EXPECT_EQ(t3[1].node, 2u);
  EXPECT_EQ(t3[1].kind, EventKind::kRate);
  EXPECT_EQ(t3[2].node, 7u);

  const std::vector<StreamEvent>& t4 = q.collect(4);
  ASSERT_EQ(t4.size(), 1u);
  EXPECT_EQ(t4[0].node, 1u);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, EmptyTicksCollectNothing) {
  CalendarQueue q;
  q.push(arrive(10, 1));
  EXPECT_TRUE(q.collect(1).empty());
  EXPECT_TRUE(q.collect(9).empty());
  EXPECT_EQ(q.collect(10).size(), 1u);
  EXPECT_TRUE(q.collect(11).empty());
}

TEST(CalendarQueue, OverflowMigratesAcrossRingWindows) {
  // A 4-bucket ring: anything past tick 3 starts in the overflow list and
  // must migrate into the ring as collection advances the window.
  CalendarQueue q(/*ring_bits=*/2);
  q.push(arrive(2, 1));
  q.push(arrive(5, 2));    // one window out
  q.push(arrive(103, 3));  // far future, several windows out
  ASSERT_EQ(q.size(), 3u);

  EXPECT_EQ(q.collect(2).size(), 1u);
  EXPECT_EQ(q.collect(5).size(), 1u);
  for (Tick t = 6; t < 103; ++t) EXPECT_TRUE(q.collect(t).empty()) << t;
  const std::vector<StreamEvent>& far = q.collect(103);
  ASSERT_EQ(far.size(), 1u);
  EXPECT_EQ(far[0].node, 3u);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, ManyEventsPerBucketStayTogether) {
  CalendarQueue q(/*ring_bits=*/2);
  // Ticks 1 and 5 share bucket 1 in a 4-wide ring; only tick-1 events may
  // come out at t = 1.
  q.push(arrive(1, 4));
  q.push(arrive(5, 5));
  q.push(arrive(1, 3));
  const std::vector<StreamEvent>& t1 = q.collect(1);
  ASSERT_EQ(t1.size(), 2u);
  EXPECT_EQ(t1[0].node, 3u);
  EXPECT_EQ(t1[1].node, 4u);
  const std::vector<StreamEvent>& t5 = q.collect(5);
  ASSERT_EQ(t5.size(), 1u);
  EXPECT_EQ(t5[0].node, 5u);
}

TEST(CalendarQueue, RejectsPushIntoThePast) {
  CalendarQueue q(/*ring_bits=*/2);
  q.push(arrive(1, 1));
  EXPECT_EQ(q.collect(1).size(), 1u);
  for (Tick t = 2; t <= 9; ++t) EXPECT_TRUE(q.collect(t).empty());
  // The window now starts past tick 1; scheduling there must fail loudly.
  EXPECT_THROW(q.push(arrive(1, 2)), std::logic_error);
}

}  // namespace
}  // namespace pob::scale::stream
