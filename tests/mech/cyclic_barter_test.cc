#include <gtest/gtest.h>

#include "pob/mech/barter.h"

namespace pob {
namespace {

SwarmState seeded_state() {
  SwarmState s(6, 6);
  for (NodeId c = 1; c <= 5; ++c) s.add_block(c, c, 1);
  return s;
}

TEST(CyclicBarter, RejectsTrivialCycleLength) {
  EXPECT_THROW(CyclicBarter(1, 1), std::invalid_argument);
}

TEST(CyclicBarter, TriangleClearsUnderTriangular) {
  CyclicBarter mech = make_triangular_barter(1);
  const SwarmState s = seeded_state();
  const std::vector<Transfer> tri = {{1, 2, 1}, {2, 3, 2}, {3, 1, 3}};
  ASSERT_EQ(mech.check_tick(2, tri, s), std::nullopt);
  mech.commit_tick(2, tri, s);
  // Cleared cyclically: the ledger carries no debt.
  EXPECT_EQ(mech.ledger().net(1, 2), 0);
  EXPECT_EQ(mech.ledger().net(2, 3), 0);
}

TEST(CyclicBarter, PairClearsToo) {
  CyclicBarter mech = make_triangular_barter(1);
  const SwarmState s = seeded_state();
  const std::vector<Transfer> pair = {{1, 2, 1}, {2, 1, 2}};
  EXPECT_EQ(mech.check_tick(2, pair, s), std::nullopt);
}

TEST(CyclicBarter, FourCycleDoesNotClearUnderTriangular) {
  CyclicBarter mech = make_triangular_barter(1);
  const SwarmState s = seeded_state();
  const std::vector<Transfer> quad = {{1, 2, 1}, {2, 3, 2}, {3, 4, 3}, {4, 1, 4}};
  // Each edge falls back to credit; all within limit 1, so legal...
  ASSERT_EQ(mech.check_tick(2, quad, s), std::nullopt);
  mech.commit_tick(2, quad, s);
  // ...but the ledger now carries debt (unlike a cleared cycle).
  EXPECT_EQ(mech.ledger().net(1, 2), 1);
  // Re-running the same tick would overdraw the credit line.
  EXPECT_TRUE(mech.check_tick(3, quad, s).has_value());
}

TEST(CyclicBarter, FourCycleClearsWhenLengthAllowed) {
  CyclicBarter mech(4, 1);
  const SwarmState s = seeded_state();
  const std::vector<Transfer> quad = {{1, 2, 1}, {2, 3, 2}, {3, 4, 3}, {4, 1, 4}};
  for (Tick t = 2; t < 8; ++t) {
    ASSERT_EQ(mech.check_tick(t, quad, s), std::nullopt) << t;
    mech.commit_tick(t, quad, s);
  }
  EXPECT_EQ(mech.ledger().net(1, 2), 0);
}

TEST(CyclicBarter, LoneTransferUsesCredit) {
  CyclicBarter mech = make_triangular_barter(1);
  const SwarmState s = seeded_state();
  const std::vector<Transfer> lone = {{1, 2, 1}};
  ASSERT_EQ(mech.check_tick(2, lone, s), std::nullopt);
  mech.commit_tick(2, lone, s);
  EXPECT_FALSE(mech.may_upload(1, 2));
  EXPECT_TRUE(mech.check_tick(3, lone, s).has_value());
}

TEST(CyclicBarter, ServerExemptAndNoUploadsToServer) {
  CyclicBarter mech = make_triangular_barter(1);
  const SwarmState s = seeded_state();
  const std::vector<Transfer> from_server = {{kServer, 1, 0}};
  EXPECT_EQ(mech.check_tick(2, from_server, s), std::nullopt);
  const std::vector<Transfer> to_server = {{1, kServer, 1}};
  EXPECT_TRUE(mech.check_tick(2, to_server, s).has_value());
}

TEST(CyclicBarter, TriangleSharingANodeClears) {
  // Two triangles sharing node 1; out-degree stays 1 per node except node 1
  // which uploads twice (capacity 2 scenario).
  CyclicBarter mech = make_triangular_barter(1);
  const SwarmState s = seeded_state();
  const std::vector<Transfer> two_tris = {{1, 2, 1}, {2, 3, 2}, {3, 1, 3},
                                          {1, 4, 1}, {4, 5, 4}, {5, 1, 5}};
  ASSERT_EQ(mech.check_tick(2, two_tris, s), std::nullopt);
  mech.commit_tick(2, two_tris, s);
  EXPECT_EQ(mech.ledger().net(1, 4), 0);
}

}  // namespace
}  // namespace pob
