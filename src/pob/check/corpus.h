// The golden trace corpus: a fixed set of recorded runs — one per scheduler
// family, two churn/lossy, one heterogeneous, one asynchronous — committed
// under tests/check/corpus/. Every entry is regenerated deterministically
// from a Scenario (or a fixed async setup) and byte-compared against the
// committed file, so any drift in engine or scheduler behavior fails loudly;
// the committed bytes are then replayed through the differential oracle.

#pragma once

#include <string>
#include <vector>

#include "pob/async/event_engine.h"
#include "pob/check/scenario.h"

namespace pob::check {

struct CorpusEntry {
  std::string filename;  ///< e.g. "pipeline.pobtrace"
  Scenario scenario;     ///< deterministic generator; also the replay mechanism
  bool completes = true; ///< false for the lossy-churn entry that honestly DNFs
};

/// The synchronous corpus, in a stable order.
const std::vector<CorpusEntry>& golden_corpus();

/// Renders one entry to its full file contents: a comment banner plus the
/// pobtrace emitted by recording the scenario's fast-engine run.
std::string render_corpus_entry(const CorpusEntry& entry);

/// The asynchronous golden: a fixed heterogeneous-rate swarm run with its
/// recorded log, plus the rendered `.pobasync` file contents.
struct AsyncGolden {
  std::string filename;
  AsyncConfig config;
  AsyncResult result;
  std::string text;
};

AsyncGolden async_golden();

}  // namespace pob::check
