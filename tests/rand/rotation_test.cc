#include "pob/rand/rotation.h"

#include <gtest/gtest.h>

#include "pob/analysis/bounds.h"
#include "pob/core/engine.h"
#include "pob/overlay/builders.h"

namespace pob {
namespace {

TEST(Rotation, CompletesOnLowDegreeOverlay) {
  EngineConfig cfg;
  cfg.num_nodes = 64;
  cfg.num_blocks = 32;
  RotatingRandomizedScheduler sched(64, 6, /*rotation_period=*/8, {}, Rng(1));
  const RunResult r = run(cfg, sched);
  ASSERT_TRUE(r.completed);
  EXPECT_GE(r.completion_tick, cooperative_lower_bound(64, 32));
}

TEST(Rotation, HelpsCreditLimitedLowDegree) {
  // §3.2.4's closing idea: periodic re-wiring lets a low-degree overlay
  // escape the credit-exhaustion trap. Compare rotating vs static at d = 6,
  // s = 1 (same censoring cap).
  const std::uint32_t n = 96, k = 48;
  const Tick cap = 6 * cooperative_lower_bound(n, k);
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  cfg.max_ticks = cap;

  double rotating_total = 0, static_total = 0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    CreditLimited rot_mech(1);
    RotatingRandomizedScheduler rot(n, 6, 8, {}, Rng(seed), &rot_mech);
    const RunResult rr = run(cfg, rot, &rot_mech);
    rotating_total +=
        rr.completed ? static_cast<double>(rr.completion_tick) : static_cast<double>(cap);

    Rng grng(seed + 77);
    auto ov = std::make_shared<GraphOverlay>(make_random_regular(n, 6, grng));
    RandomizedOptions opt;
    CreditRandomized st = make_credit_randomized(ov, opt, Rng(seed), 1);
    const RunResult sr = run(cfg, *st.scheduler, st.mechanism.get());
    static_total +=
        sr.completed ? static_cast<double>(sr.completion_tick) : static_cast<double>(cap);
  }
  EXPECT_LE(rotating_total, static_total);
}

TEST(Rotation, RejectsZeroPeriod) {
  EXPECT_THROW(RotatingRandomizedScheduler(16, 4, 0, {}, Rng(1)), std::invalid_argument);
}

}  // namespace
}  // namespace pob
