// The paper's central claim (§2.3): the binomial pipeline meets Theorem 1's
// lower bound k - 1 + ceil(log2 n) exactly, for every n, under upload =
// download = 1 block/tick.

#include "pob/sched/binomial_pipeline.h"

#include <gtest/gtest.h>

#include "pob/analysis/bounds.h"
#include "pob/core/engine.h"
#include "pob/mech/barter.h"

namespace pob {
namespace {

RunResult run_pipeline(std::uint32_t n, std::uint32_t k, Mechanism* mech = nullptr,
                       std::uint32_t download_capacity = 1) {
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  cfg.upload_capacity = 1;
  cfg.download_capacity = download_capacity;
  BinomialPipelineScheduler sched(n, k);
  return run(cfg, sched, mech);
}

TEST(BinomialPipeline, TinyPowerOfTwoMatchesHandTrace) {
  // n = 4, k = 3: the §2.3.2 rules finish in k + m - 1 = 4 ticks.
  const RunResult r = run_pipeline(4, 3);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.completion_tick, 4u);
}

TEST(BinomialPipeline, SingleBlockIsBinomialTree) {
  for (const std::uint32_t n : {2u, 4u, 8u, 16u, 64u, 256u}) {
    const RunResult r = run_pipeline(n, 1);
    ASSERT_TRUE(r.completed) << "n=" << n;
    EXPECT_EQ(r.completion_tick, ceil_log2(n)) << "n=" << n;
  }
}

class BinomialPipelineOptimality
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(BinomialPipelineOptimality, MeetsTheorem1Bound) {
  const auto [n, k] = GetParam();
  const RunResult r = run_pipeline(n, k);
  ASSERT_TRUE(r.completed) << "n=" << n << " k=" << k;
  EXPECT_EQ(r.completion_tick, cooperative_lower_bound(n, k)) << "n=" << n << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    PowersOfTwo, BinomialPipelineOptimality,
    ::testing::Combine(::testing::Values(2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u),
                       ::testing::Values(1u, 2u, 3u, 5u, 8u, 16u, 33u, 100u)));

INSTANTIATE_TEST_SUITE_P(
    GeneralN, BinomialPipelineOptimality,
    ::testing::Combine(::testing::Values(3u, 5u, 6u, 7u, 9u, 11u, 13u, 20u, 31u, 33u,
                                         47u, 63u, 65u, 100u, 127u, 200u, 255u, 257u),
                       ::testing::Values(1u, 2u, 4u, 7u, 16u, 50u)));

TEST(BinomialPipeline, AllClientsFinishSimultaneouslyWhenKAtLeastLogN) {
  // §2.3.4 "Individual Completion Times": with k >= log2 n every node
  // finishes on the same tick (power-of-two case).
  for (const std::uint32_t n : {8u, 32u, 128u}) {
    const std::uint32_t k = ceil_log2(n) + 3;
    const RunResult r = run_pipeline(n, k);
    ASSERT_TRUE(r.completed);
    for (const Tick t : r.client_completion) {
      EXPECT_EQ(t, r.completion_tick) << "n=" << n;
    }
  }
}

TEST(BinomialPipeline, PowerOfTwoObeysCreditLimitOne) {
  // §3.2.2: for n = 2^m the hypercube algorithm satisfies credit-limited
  // barter with s = 1 — one free block in the opening, symmetric exchanges
  // afterwards.
  for (const std::uint32_t n : {4u, 8u, 16u, 32u, 64u}) {
    CreditLimited mech(1);
    const RunResult r = run_pipeline(n, 12, &mech);
    ASSERT_TRUE(r.completed) << "n=" << n;
    EXPECT_EQ(r.completion_tick, cooperative_lower_bound(n, 12)) << "n=" << n;
  }
}

TEST(BinomialPipeline, RunsUnderUnitDownloadCapacity) {
  // The schedule never asks any node to download more than one block per
  // tick, even with doubled vertices.
  for (const std::uint32_t n : {6u, 11u, 24u, 100u}) {
    const RunResult r = run_pipeline(n, 9, nullptr, /*download_capacity=*/1);
    ASSERT_TRUE(r.completed) << "n=" << n;
  }
}

TEST(BinomialPipeline, OpeningDoublesLikeFigureOne) {
  // §2.3.1 opening: during tick t <= m, the number of transfers is 2^(t-1)
  // (the binomial-tree doubling of Figure 1), and after m ticks every node
  // holds exactly one block.
  const std::uint32_t n = 16, k = 8, m = 4;
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  cfg.record_trace = true;
  BinomialPipelineScheduler sched(n, k);
  SwarmState probe(n, k);
  // Replay the opening manually tick by tick against a private state.
  for (Tick t = 1; t <= m; ++t) {
    std::vector<Transfer> tick;
    sched.plan_tick(t, probe, tick);
    EXPECT_EQ(tick.size(), 1u << (t - 1)) << "tick " << t;
    for (const Transfer& tr : tick) probe.add_block(tr.to, tr.block, t);
  }
  for (NodeId c = 1; c < n; ++c) {
    EXPECT_EQ(probe.blocks_of(c).count(), 1u) << "client " << c;
  }
  // Group sizes after the opening: block b_i held by 2^(m-i-1) clients
  // (plus the server holding everything), §2.3.1's G_1..G_m partition.
  const auto freq = probe.block_frequency();
  for (std::uint32_t i = 0; i < m; ++i) {
    EXPECT_EQ(freq[i] - 1, 1u << (m - i - 1)) << "block " << i;
  }
}

TEST(BinomialPipeline, HypercubeDegreeMatchesLowerBound) {
  // §2.3.2: "no optimal algorithm can operate on an overlay network with
  // degree less than log2 n", and the hypercube meets it exactly.
  for (const std::uint32_t n : {8u, 16u, 64u, 256u}) {
    const Graph g = make_hypercube_overlay(n);
    EXPECT_EQ(g.max_degree(), floor_log2(n)) << n;
    EXPECT_EQ(g.min_degree(), floor_log2(n)) << n;
  }
}

TEST(BinomialPipeline, RejectsDegenerateInputs) {
  EXPECT_THROW(BinomialPipelineScheduler(std::vector<NodeId>{0}, {0}),
               std::invalid_argument);
  EXPECT_THROW(BinomialPipelineScheduler({0, 1}, std::vector<BlockId>{}),
               std::invalid_argument);
  EXPECT_THROW(BinomialPipelineScheduler({0, 1}, {3, 1}), std::invalid_argument);
  EXPECT_THROW(BinomialPipelineScheduler({0, 1}, {2, 2}), std::invalid_argument);
}

}  // namespace
}  // namespace pob
