// Trace replay against an independent reference validator: every algorithm's
// recorded transfer log is re-checked by a from-scratch reimplementation of
// the §2.1 model (no BlockSet, no engine code — plain std containers), so a
// bug would have to exist twice to slip through.

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <vector>

#include "pob/check/async_check.h"
#include "pob/check/corpus.h"
#include "pob/check/oracle.h"
#include "pob/core/engine.h"
#include "pob/exp/trace_io.h"
#include "pob/overlay/builders.h"
#include "pob/rand/randomized.h"
#include "pob/rand/tit_for_tat.h"
#include "pob/sched/binomial_pipeline.h"
#include "pob/sched/binomial_tree.h"
#include "pob/sched/multicast_tree.h"
#include "pob/sched/pipeline.h"
#include "pob/sched/riffle_pipeline.h"
#include "pob/sched/striped_trees.h"

namespace pob {
namespace {

/// Independent model checker: replays a trace tick by tick and verifies the
/// bandwidth and data-transfer rules with naive data structures.
struct ReferenceValidator {
  std::uint32_t n, k, up, down, server_up;
  std::vector<std::set<BlockId>> have;

  ReferenceValidator(std::uint32_t n_, std::uint32_t k_, std::uint32_t up_,
                     std::uint32_t down_, std::uint32_t server_up_)
      : n(n_), k(k_), up(up_), down(down_), server_up(server_up_), have(n_) {
    for (BlockId b = 0; b < k; ++b) have[0].insert(b);
  }

  /// Validates one tick; returns an error description or empty string.
  std::string check_and_apply(const std::vector<Transfer>& tick) {
    std::vector<std::uint32_t> ups(n, 0), downs(n, 0);
    std::set<std::pair<NodeId, BlockId>> deliveries;
    for (const Transfer& tr : tick) {
      if (tr.from >= n || tr.to >= n || tr.from == tr.to) return "bad endpoints";
      if (tr.block >= k) return "bad block";
      if (have[tr.from].count(tr.block) == 0) return "sender lacks block";
      if (have[tr.to].count(tr.block) != 0) return "receiver already has block";
      if (!deliveries.insert({tr.to, tr.block}).second) return "duplicate delivery";
      if (++ups[tr.from] > (tr.from == 0 ? server_up : up)) return "upload overflow";
      if (down != kUnlimited && ++downs[tr.to] > down) return "download overflow";
    }
    for (const Transfer& tr : tick) have[tr.to].insert(tr.block);
    return "";
  }

  bool all_complete() const {
    for (NodeId c = 1; c < n; ++c) {
      if (have[c].size() != k) return false;
    }
    return true;
  }
};

void replay_and_check(const EngineConfig& cfg, const RunResult& r) {
  ASSERT_TRUE(r.completed);
  const std::uint32_t server_up =
      cfg.server_upload_capacity != 0 ? cfg.server_upload_capacity : cfg.upload_capacity;
  ReferenceValidator ref(cfg.num_nodes, cfg.num_blocks, cfg.upload_capacity,
                         cfg.download_capacity, server_up);
  for (Tick t = 1; t <= r.trace.size(); ++t) {
    const std::string err = ref.check_and_apply(r.trace[t - 1]);
    ASSERT_EQ(err, "") << "tick " << t;
  }
  EXPECT_TRUE(ref.all_complete());
  // Every delivery is useful exactly once: total transfers = (n-1)*k.
  EXPECT_EQ(r.total_transfers,
            static_cast<std::uint64_t>(cfg.num_nodes - 1) * cfg.num_blocks);
}

EngineConfig traced(std::uint32_t n, std::uint32_t k, std::uint32_t down) {
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  cfg.download_capacity = down;
  cfg.record_trace = true;
  return cfg;
}

TEST(TraceReplay, BinomialPipeline) {
  for (const std::uint32_t n : {9u, 16u, 33u}) {
    EngineConfig cfg = traced(n, 21, 1);
    BinomialPipelineScheduler sched(n, 21);
    replay_and_check(cfg, run(cfg, sched));
  }
}

TEST(TraceReplay, PipelineAndTrees) {
  {
    EngineConfig cfg = traced(12, 9, 1);
    PipelineScheduler sched(12, 9);
    replay_and_check(cfg, run(cfg, sched));
  }
  {
    EngineConfig cfg = traced(14, 9, 1);
    MulticastTreeScheduler sched(14, 9, 3);
    replay_and_check(cfg, run(cfg, sched));
  }
  {
    EngineConfig cfg = traced(19, 6, 1);
    BinomialTreeScheduler sched(19, 6);
    replay_and_check(cfg, run(cfg, sched));
  }
}

TEST(TraceReplay, RifflePipeline) {
  for (const std::uint32_t n : {7u, 20u}) {
    EngineConfig cfg = traced(n, 25, 2);
    RifflePipelineScheduler sched(n, 25, 1, 2);
    replay_and_check(cfg, run(cfg, sched));
  }
}

TEST(TraceReplay, StripedTrees) {
  EngineConfig cfg = traced(25, 24, 4);
  StripedTreesScheduler sched(25, 24, 4);
  replay_and_check(cfg, run(cfg, sched));
}

TEST(TraceReplay, RandomizedSwarmManySeeds) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    EngineConfig cfg = traced(40, 30, kUnlimited);
    RandomizedScheduler sched(std::make_shared<CompleteOverlay>(40), {}, Rng(seed));
    replay_and_check(cfg, run(cfg, sched));
  }
}

TEST(TraceReplay, RandomizedWithFiniteDownloadCapacity) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    EngineConfig cfg = traced(32, 24, 2);
    RandomizedOptions opt;
    opt.download_capacity = 2;
    RandomizedScheduler sched(std::make_shared<CompleteOverlay>(32), opt, Rng(seed));
    replay_and_check(cfg, run(cfg, sched));
  }
}

TEST(TraceReplay, TitForTat) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    EngineConfig cfg = traced(36, 18, kUnlimited);
    TitForTatScheduler sched(std::make_shared<CompleteOverlay>(36), {}, Rng(seed));
    replay_and_check(cfg, run(cfg, sched));
  }
}

// --- The golden corpus (tests/check/corpus/) ---
//
// Committed bytes are compared against a deterministic regeneration, so any
// behavioral drift in an engine or scheduler fails here first; the committed
// bytes are then replayed through the differential oracle. Regenerate on an
// intentional change with: pobfuzz --write-corpus=tests/check/corpus

std::string slurp(const std::string& filename) {
  std::ifstream is(std::string(POB_CORPUS_DIR) + "/" + filename, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

TEST(GoldenCorpus, CommittedTracesMatchTheirGenerators) {
  for (const check::CorpusEntry& entry : check::golden_corpus()) {
    const std::string committed = slurp(entry.filename);
    ASSERT_FALSE(committed.empty()) << entry.filename << " missing or empty";
    EXPECT_EQ(committed, check::render_corpus_entry(entry))
        << entry.filename << " drifted from its generator";
  }
}

TEST(GoldenCorpus, CommittedTracesReplayCleanThroughTheOracle) {
  for (const check::CorpusEntry& entry : check::golden_corpus()) {
    std::istringstream is(slurp(entry.filename));
    const LoadedTrace trace = read_trace(is);
    const check::OracleReport report =
        check::differential_replay(trace, entry.scenario.mechanism);
    EXPECT_TRUE(report.ok) << entry.filename << ": " << report.diagnosis;
    EXPECT_FALSE(report.violated)
        << entry.filename << ": " << report.violation_message;
    EXPECT_EQ(report.fast.completed, entry.completes) << entry.filename;
  }
}

TEST(GoldenCorpus, AsyncGoldenMatchesAndItsLogChecksOut) {
  const check::AsyncGolden golden = check::async_golden();
  EXPECT_EQ(slurp(golden.filename), golden.text)
      << golden.filename << " drifted from its generator";
  const auto error = check::check_async_log(golden.config, golden.result);
  EXPECT_FALSE(error.has_value()) << *error;
  EXPECT_TRUE(golden.result.completed);
}

TEST(TraceReplay, StrictBarterPairingVerifiedIndependently) {
  // Re-verify the riffle trace's strict-barter property with naive counting.
  EngineConfig cfg = traced(11, 30, 2);
  RifflePipelineScheduler sched(11, 30, 1, 2);
  const RunResult r = run(cfg, sched);
  ASSERT_TRUE(r.completed);
  for (const auto& tick : r.trace) {
    std::map<std::pair<NodeId, NodeId>, int> dir;
    for (const Transfer& tr : tick) {
      if (tr.from == kServer) continue;
      ++dir[{tr.from, tr.to}];
    }
    for (const auto& [pair, count] : dir) {
      const auto rev = dir.find({pair.second, pair.first});
      ASSERT_TRUE(rev != dir.end() && rev->second == count)
          << pair.first << "->" << pair.second;
    }
  }
}

}  // namespace
}  // namespace pob
