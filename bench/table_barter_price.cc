// E8 / E26 — Theorems 2-3 and the price of barter, with certificates.
//
// For a grid of (n, k): the strict-barter Riffle Pipeline's measured
// completion time (validated against the StrictBarter mechanism on every
// tick), Theorem 2's lower bounds, the cooperative optimum, and the
// resulting price-of-barter ratio. Expected shape: riffle tracks n + k - 2
// (exact when k is a multiple of n - 1), so the ratio approaches
// (n + k) / (k + log n) — about 2 when k ~ n, vanishing for k >> n.
//
// E26 adds the pob/flow certificate next to each closed form: coop-T* is the
// cooperative-model oracle bound and price-cert the measured price against
// it, side by side with the Theorem 1 closed form (the two columns agree on
// the complete graph — the oracle reproduces the paper); strict-T* is the
// strict-model bound the riffle run itself can never beat. --json emits the
// certified_* fields for the largest grid cell.

#include <iostream>

#include "bench_util.h"
#include "pob/analysis/bounds.h"
#include "pob/flow/certify.h"
#include "pob/mech/barter.h"
#include "pob/sched/binomial_pipeline.h"
#include "pob/sched/riffle_pipeline.h"

namespace pob::bench {
namespace {

int main_impl(int argc, char** argv) {
  const Args args(argc, argv);
  std::vector<std::int64_t> ns = args.get_int_list("n", {16, 64, 256, 1000});
  std::vector<std::int64_t> ks = args.get_int_list("k", {15, 63, 255, 999, 4095});

  Table table({"n", "k", "riffle-T", "thm2-bound", "strict-T*", "coop-optimal",
               "coop-T*", "price-closed", "price-cert", "riffle/bound"});
  Tick last_cert = 0;
  double last_price_cert = 0.0;
  bool cert_matches_closed_form = true;
  for (const std::int64_t n64 : ns) {
    for (const std::int64_t k64 : ks) {
      const auto n = static_cast<std::uint32_t>(n64);
      const auto k = static_cast<std::uint32_t>(k64);
      EngineConfig cfg;
      cfg.num_nodes = n;
      cfg.num_blocks = k;
      cfg.download_capacity = 2;  // Theorem 3's d >= 2u
      RifflePipelineScheduler riffle(n, k, 1, 2);
      StrictBarter mech;
      const RunResult r = run(cfg, riffle, &mech);
      if (!r.completed) throw std::logic_error("riffle did not complete");
      const Tick bound = strict_barter_lower_bound_equal_bw(n, k);
      const Tick coop = cooperative_lower_bound(n, k);
      const scale::Topology topo = scale::Topology::complete(n);
      const flow::CompletionCertificate coop_cert =
          flow::certify_completion_bound(cfg, topo, flow::BarterModel::kCooperative);
      const flow::CompletionCertificate strict_cert =
          flow::certify_completion_bound(cfg, topo, flow::BarterModel::kStrictBarter);
      const double price_cert =
          flow::certified_price(r.completion_tick, coop_cert.lower_bound);
      last_cert = coop_cert.lower_bound;
      last_price_cert = price_cert;
      cert_matches_closed_form &= coop_cert.lower_bound == coop;
      table.add_row(
          {std::to_string(n), std::to_string(k), std::to_string(r.completion_tick),
           std::to_string(bound), std::to_string(strict_cert.lower_bound),
           std::to_string(coop), std::to_string(coop_cert.lower_bound),
           fmt(static_cast<double>(r.completion_tick) / static_cast<double>(coop), 3),
           fmt(price_cert, 3),
           fmt(static_cast<double>(r.completion_tick) / static_cast<double>(bound), 3)});
    }
  }
  std::cout << "# E8/E26: strict-barter riffle pipeline vs Theorem 2 bounds, the "
               "cooperative optimum, and the pob/flow certificates (u = 1, d = 2)\n";
  emit(args, table);

  JsonReport json;
  json.str("bench", "table_barter_price")
      .count("cells", ns.size() * ks.size())
      .flag("certificate_matches_closed_form", cert_matches_closed_form)
      .certified(last_cert, last_price_cert);
  if (!json.write(args)) return 1;
  return 0;
}

}  // namespace
}  // namespace pob::bench

int main(int argc, char** argv) { return pob::bench::main_impl(argc, argv); }
