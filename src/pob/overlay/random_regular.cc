#include <cstdint>
#include <stdexcept>
#include <unordered_set>
#include <utility>
#include <vector>

#include "pob/overlay/builders.h"

namespace pob {
namespace {

std::uint64_t edge_key(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

/// One configuration-model draw plus double-edge-swap repair. Returns true
/// and fills `edges` with a simple d-regular edge list on success.
bool try_build(std::uint32_t n, std::uint32_t d, Rng& rng,
               std::vector<std::pair<NodeId, NodeId>>& edges) {
  std::vector<NodeId> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * d);
  for (NodeId u = 0; u < n; ++u) {
    for (std::uint32_t i = 0; i < d; ++i) stubs.push_back(u);
  }
  rng.shuffle(stubs);

  const std::size_t m = stubs.size() / 2;
  edges.assign(m, {});
  std::unordered_set<std::uint64_t> present;
  present.reserve(m * 2);
  std::vector<std::size_t> bad;
  std::vector<char> is_bad(m, 0);
  for (std::size_t i = 0; i < m; ++i) {
    const NodeId u = stubs[2 * i];
    const NodeId v = stubs[2 * i + 1];
    edges[i] = {u, v};
    if (u == v || !present.insert(edge_key(u, v)).second) {
      bad.push_back(i);
      is_bad[i] = 1;
    }
  }

  // Repair bad edges (self-loops / parallels) with degree-preserving
  // double-edge swaps against uniformly chosen good edges.
  std::uint64_t guard = 0;
  const std::uint64_t guard_limit = 500 * static_cast<std::uint64_t>(m) + 100000;
  while (!bad.empty()) {
    if (++guard > guard_limit) return false;
    const std::size_t i = bad.back();
    auto [u, v] = edges[i];
    const std::size_t j = rng.below(static_cast<std::uint32_t>(m));
    if (j == i || is_bad[j]) continue;
    auto [x, y] = edges[j];
    if (rng.chance(0.5)) std::swap(x, y);
    // Propose replacing {u,v},{x,y} with {u,x},{v,y}.
    if (u == x || v == y) continue;
    const std::uint64_t k1 = edge_key(u, x);
    const std::uint64_t k2 = edge_key(v, y);
    if (k1 == k2 || present.contains(k1) || present.contains(k2)) continue;
    present.erase(edge_key(x, y));
    present.insert(k1);
    present.insert(k2);
    edges[i] = {u, x};
    edges[j] = {v, y};
    is_bad[i] = 0;
    bad.pop_back();
  }
  return true;
}

}  // namespace

Graph make_random_regular(std::uint32_t n, std::uint32_t d, Rng& rng) {
  if (d >= n) throw std::invalid_argument("make_random_regular: need d < n");
  if (d == 0) throw std::invalid_argument("make_random_regular: need d >= 1");
  if ((static_cast<std::uint64_t>(n) * d) % 2 != 0) {
    throw std::invalid_argument("make_random_regular: n*d must be even");
  }
  if (d == n - 1) {
    // The complete graph is the unique (n-1)-regular graph; repair-based
    // sampling cannot converge to a unique target, so build it directly.
    Graph g(n);
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v);
    }
    g.finalize();
    return g;
  }
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (int attempt = 0; attempt < 200; ++attempt) {
    if (!try_build(n, d, rng, edges)) continue;
    Graph g(n);
    for (const auto& [u, v] : edges) g.add_edge(u, v);
    g.finalize();
    // d = 1 is a perfect matching and d = 2 a union of cycles; both are
    // legitimately disconnected, so only retry for d >= 3 where a connected
    // d-regular graph is overwhelmingly likely.
    if (d <= 2 || g.is_connected()) return g;
  }
  throw std::runtime_error("make_random_regular: failed to build a connected graph");
}

}  // namespace pob
