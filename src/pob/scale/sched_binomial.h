// Theorem 1's binomial pipeline as a scale intent generator, for swarms at
// exactly n = 2^m (the engine rejects anything else). With no doubled
// vertices, core's hypercube schedule collapses to pure index arithmetic:
// on tick t <= k + m - 1 the active dimension is d = (t-1) mod m, and every
// node u with transmission rank r > 0 offers block r-1 to its partner
// u ^ (1 << d) — where the server's rank is min(t, k) and a client's rank is
// 1 + its highest held block id. No probing, no RNG, no legalization: the
// per-tick transfer SET equals core BinomialPipelineScheduler's exactly
// (core emits pair-by-pair, the shards here emit sender-by-sender; only the
// within-tick order differs, which the simultaneous-tick model ignores).
//
// The same emission doubles as §3.3 triangular barter (kTriangularBarter):
// the schedule is unchanged, but the engine keeps the pairwise ledger live
// (credit_limit >= 1) and the fuzzer validates the stream under
// CyclicBarter(3, limit) instead of no mechanism — the paper's point being
// that the optimal cooperative schedule already satisfies relaxed barter, so
// the price of triangular barter is 1.

#pragma once

#include <cstdint>
#include <vector>

#include "pob/scale/engine.h"
#include "pob/scale/scheduler.h"

namespace pob::scale {

class BinomialScheduler final : public ScaleScheduler {
 public:
  /// `engine.config().num_nodes` must be a power of two (validated by the
  /// engine before construction). `triangular` only changes the reported
  /// name: the schedule is identical, the ledger semantics live in the
  /// engine's credit_limit.
  BinomialScheduler(const Engine& engine, bool triangular);

  void generate(Tick tick, std::uint32_t shard, NodeId first, NodeId last,
                std::vector<Transfer>& out) override;

  const char* name() const override {
    return triangular_ ? "triangular-barter" : "binomial-pipeline";
  }

 private:
  const Engine& engine_;
  std::uint32_t k_;
  std::uint32_t dims_;     // m = log2(n)
  Tick phase_len_;         // k + m - 1: the last tick with transfers
  bool triangular_;
};

}  // namespace pob::scale
