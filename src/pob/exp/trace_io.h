// Trace (de)serialization and replay: save a run's full transfer schedule to
// a compact text format, reload it later, and replay it through the
// validating engine (optionally under a different mechanism — e.g. record a
// cooperative schedule and ask "would this have been legal under strict
// barter?").
//
// Format (line-oriented, '#' comments allowed before the header):
//
//   pobtrace 1 <n> <k> <upload> <download> <server_upload>
//   <from>:<to>:<block> <from>:<to>:<block> ...     # tick 1
//   ...                                             # one line per tick
//
// An empty line encodes an idle tick. `download` of 0 encodes unlimited.

#pragma once

#include <iosfwd>
#include <vector>

#include "pob/core/engine.h"
#include "pob/core/scheduler.h"

namespace pob {

struct LoadedTrace {
  std::uint32_t num_nodes = 0;
  std::uint32_t num_blocks = 0;
  std::uint32_t upload_capacity = 1;
  std::uint32_t download_capacity = kUnlimited;
  std::uint32_t server_upload_capacity = 0;
  std::vector<std::vector<Transfer>> ticks;

  EngineConfig to_config() const;
};

/// Writes the run's trace (config.record_trace must have been set).
void write_trace(std::ostream& os, const EngineConfig& config, const RunResult& result);

/// Parses a trace; throws std::invalid_argument on malformed input.
LoadedTrace read_trace(std::istream& is);

/// Scheduler that plays back a loaded trace verbatim.
class TraceScheduler final : public Scheduler {
 public:
  explicit TraceScheduler(const LoadedTrace& trace) : trace_(&trace) {}
  std::string_view name() const override { return "trace-replay"; }
  void plan_tick(Tick tick, const SwarmState& state, std::vector<Transfer>& out) override;

 private:
  const LoadedTrace* trace_;
};

/// Replays the trace through the validating engine (throws EngineViolation
/// if it breaks the model or `mechanism`).
RunResult replay_trace(const LoadedTrace& trace, Mechanism* mechanism = nullptr);

}  // namespace pob
