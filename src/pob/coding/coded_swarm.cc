#include "pob/coding/coded_swarm.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "pob/core/engine.h"  // default_tick_cap

namespace pob {

CodedSwarmResult run_coded_swarm(std::uint32_t num_nodes, std::uint32_t num_blocks,
                                 std::shared_ptr<const Overlay> overlay,
                                 CodedSwarmOptions options, Rng rng) {
  if (num_nodes < 2) throw std::invalid_argument("coded swarm: need >= 2 nodes");
  if (num_blocks < 1) throw std::invalid_argument("coded swarm: need >= 1 block");
  if (overlay == nullptr || overlay->num_nodes() != num_nodes) {
    throw std::invalid_argument("coded swarm: overlay mismatch");
  }
  const Tick cap = options.max_ticks != 0 ? options.max_ticks
                                          : default_tick_cap(num_nodes, num_blocks);

  std::vector<Gf2Basis> span(num_nodes, Gf2Basis(num_blocks));
  for (std::uint32_t i = 0; i < num_blocks; ++i) {
    span[kServer].insert(Gf2Vector::unit(num_blocks, i));
  }

  CodedSwarmResult result;
  result.client_completion.assign(num_nodes - 1, 0);
  std::uint32_t incomplete = num_nodes - 1;

  std::vector<NodeId> order(num_nodes);
  std::iota(order.begin(), order.end(), NodeId{0});

  // Per-tick staged deliveries: packets sent in tick t become usable at
  // t+1, matching the block-based engine's store-and-forward rule.
  struct Delivery {
    NodeId to;
    Gf2Vector packet;
  };
  std::vector<Delivery> staged;

  const auto acceptable = [&](NodeId u, NodeId v) {
    if (v == u || v == kServer) return false;
    if (span[v].full_rank()) return false;
    if (options.check_innovative && !span[v].is_innovative_source(span[u])) return false;
    return true;
  };

  Tick tick = 0;
  while (incomplete > 0 && tick < cap) {
    ++tick;
    staged.clear();
    rng.shuffle(order);
    for (const NodeId u : order) {
      if (span[u].rank() == 0) continue;
      const std::uint32_t deg = overlay->degree(u);
      if (deg == 0) continue;
      NodeId target = kNoNode;
      for (std::uint32_t probe = 0; probe < options.max_probes && target == kNoNode;
           ++probe) {
        const NodeId v = overlay->neighbor(u, rng.below(deg));
        if (acceptable(u, v)) target = v;
      }
      if (target == kNoNode) {
        const std::uint32_t offset = rng.below(deg);
        const std::uint32_t limit = std::min(deg, 256u);
        for (std::uint32_t i = 0; i < limit && target == kNoNode; ++i) {
          const NodeId v = overlay->neighbor(u, (offset + i) % deg);
          if (acceptable(u, v)) target = v;
        }
      }
      if (target == kNoNode) continue;
      staged.push_back({target, span[u].random_combination(rng)});
    }
    for (Delivery& d : staged) {
      ++result.packets_sent;
      const bool was_complete = span[d.to].full_rank();
      if (!span[d.to].insert(std::move(d.packet))) {
        ++result.packets_wasted;
        continue;
      }
      if (!was_complete && span[d.to].full_rank()) {
        result.client_completion[d.to - 1] = tick;
        --incomplete;
      }
    }
  }

  result.completed = incomplete == 0;
  if (result.completed) {
    double sum = 0.0;
    for (const Tick t : result.client_completion) {
      result.completion_tick = std::max(result.completion_tick, t);
      sum += t;
    }
    result.mean_completion = sum / static_cast<double>(num_nodes - 1);
  }
  return result;
}

}  // namespace pob
