// §2.4 randomized content distribution, and its §3.2.3 credit-limited
// variant.
//
// Every tick, each node u (in random order, emulating the asynchronous
// handshake protocol's collision resolution):
//
//   1. finds a random neighbor v that is interested in u's content — v lacks
//      a block u has that v is not already being sent this tick — and that
//      still has download capacity (and, under credit-limited barter,
//      headroom on the u->v credit line);
//   2. uploads one block of u \ v chosen by the block-selection policy:
//      Random, or Rarest-First using global replica counts ("perfect
//      statistics about block frequencies", §3.2.4).
//
// Neighbor choice uses rejection sampling over the overlay with a
// deterministic fallback scan, so the planner stays O(probes) per node in
// the common case and exact in the endgame.

#pragma once

#include <memory>
#include <vector>

#include "pob/core/mechanism.h"
#include "pob/core/rng.h"
#include "pob/core/scheduler.h"
#include "pob/mech/barter.h"
#include "pob/overlay/overlay.h"

namespace pob {

enum class BlockPolicy {
  kRandom,       ///< uniform over the useful blocks
  kRarestFirst,  ///< globally least-replicated useful block
};

const char* to_string(BlockPolicy policy);

struct RandomizedOptions {
  BlockPolicy policy = BlockPolicy::kRandom;
  std::uint32_t upload_capacity = 1;
  std::uint32_t download_capacity = kUnlimited;
  /// Per-node overrides for heterogeneous swarms (empty = uniform). Must
  /// mirror the EngineConfig the run uses, or the engine will veto.
  std::vector<std::uint32_t> upload_capacities;
  std::vector<std::uint32_t> download_capacities;
  /// Rejection-sampling attempts before the deterministic fallback scan.
  std::uint32_t max_probes = 24;
  /// Cap on the fallback scan when many nodes are still incomplete; 0 means
  /// exhaustive (exact "transmit iff any neighbor is interested" semantics).
  /// A bounded scan models a practical protocol that gives up after a few
  /// failed handshakes; it only matters for uploaders whose whole inventory
  /// is nearly fully replicated, and measurably changes T by well under 1%.
  std::uint32_t max_scan = 256;
};

class RandomizedScheduler : public Scheduler {
 public:
  /// `precheck`, when set, vetoes candidate uploads via
  /// Mechanism::may_upload — pass the CreditLimited mechanism here (and to
  /// the engine) to obtain the §3.2.3 algorithm.
  RandomizedScheduler(std::shared_ptr<const Overlay> overlay, RandomizedOptions options,
                      Rng rng, const Mechanism* precheck = nullptr);

  std::string_view name() const override { return "randomized"; }
  void plan_tick(Tick tick, const SwarmState& state, std::vector<Transfer>& out) override;

  /// Swaps the overlay between ticks (used by the neighbor-rotation
  /// extension of §3.2.4).
  void set_overlay(std::shared_ptr<const Overlay> overlay);

  const Overlay& overlay() const { return *overlay_; }

 private:
  void ensure_scratch(const SwarmState& state);
  bool acceptable(NodeId u, NodeId v, Tick tick, const SwarmState& state) const;
  NodeId find_target(NodeId u, Tick tick, const SwarmState& state);
  const BlockSet* incoming_of(NodeId v, Tick tick) const;

  std::shared_ptr<const Overlay> overlay_;
  RandomizedOptions opt_;
  Rng rng_;
  const Mechanism* precheck_;

  // Per-tick scratch, tick-stamped to avoid O(n) clears.
  BlockSet dead_;  // blocks already held by every node ("dead": nobody wants them)
  std::vector<NodeId> order_;
  std::vector<BlockSet> incoming_;
  std::vector<Tick> incoming_stamp_;
  std::vector<Tick> saturated_stamp_;
  std::vector<std::uint32_t> down_used_;
  std::vector<Tick> down_stamp_;
  std::vector<NodeId> chosen_;  // targets the current uploader already picked
};

/// Builds the §3.2.3 credit-limited randomized pair: the scheduler consults
/// the mechanism's ledger before planning, and the same mechanism instance
/// must be passed to the engine so the ledger advances and every tick is
/// validated.
struct CreditRandomized {
  std::unique_ptr<CreditLimited> mechanism;
  std::unique_ptr<RandomizedScheduler> scheduler;
};

CreditRandomized make_credit_randomized(std::shared_ptr<const Overlay> overlay,
                                        RandomizedOptions options, Rng rng,
                                        std::uint32_t credit_limit);

}  // namespace pob
