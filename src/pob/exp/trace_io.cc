#include "pob/exp/trace_io.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace pob {

EngineConfig LoadedTrace::to_config() const {
  EngineConfig cfg;
  cfg.num_nodes = num_nodes;
  cfg.num_blocks = num_blocks;
  cfg.upload_capacity = upload_capacity;
  cfg.download_capacity = download_capacity;
  cfg.server_upload_capacity = server_upload_capacity;
  return cfg;
}

void write_trace(std::ostream& os, const EngineConfig& config, const RunResult& result) {
  os << "pobtrace 1 " << config.num_nodes << ' ' << config.num_blocks << ' '
     << config.upload_capacity << ' '
     << (config.download_capacity == kUnlimited ? 0 : config.download_capacity) << ' '
     << config.server_upload_capacity << '\n';
  for (const auto& tick : result.trace) {
    bool first = true;
    for (const Transfer& tr : tick) {
      if (!first) os << ' ';
      first = false;
      os << tr.from << ':' << tr.to << ':' << tr.block;
    }
    os << '\n';
  }
}

LoadedTrace read_trace(std::istream& is) {
  LoadedTrace trace;
  std::string line;
  // Header (skipping comments/blank lines before it).
  for (;;) {
    if (!std::getline(is, line)) {
      throw std::invalid_argument("pobtrace: missing header");
    }
    if (line.empty() || line[0] == '#') continue;
    break;
  }
  {
    std::istringstream header(line);
    std::string magic;
    int version = 0;
    std::uint32_t download = 0;
    header >> magic >> version >> trace.num_nodes >> trace.num_blocks >>
        trace.upload_capacity >> download >> trace.server_upload_capacity;
    if (!header || magic != "pobtrace" || version != 1) {
      throw std::invalid_argument("pobtrace: bad header: " + line);
    }
    trace.download_capacity = download == 0 ? kUnlimited : download;
  }
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] == '#') continue;
    std::vector<Transfer>& tick = trace.ticks.emplace_back();
    std::istringstream cells(line);
    std::string cell;
    while (cells >> cell) {
      Transfer tr;
      char c1 = 0, c2 = 0;
      std::istringstream parts(cell);
      parts >> tr.from >> c1 >> tr.to >> c2 >> tr.block;
      if (!parts || c1 != ':' || c2 != ':') {
        throw std::invalid_argument("pobtrace: bad transfer cell: " + cell);
      }
      tick.push_back(tr);
    }
  }
  return trace;
}

void TraceScheduler::plan_tick(Tick tick, const SwarmState& /*state*/,
                               std::vector<Transfer>& out) {
  if (tick == 0 || tick > trace_->ticks.size()) return;
  const auto& planned = trace_->ticks[tick - 1];
  out.insert(out.end(), planned.begin(), planned.end());
}

RunResult replay_trace(const LoadedTrace& trace, Mechanism* mechanism) {
  EngineConfig cfg = trace.to_config();
  cfg.max_ticks = static_cast<Tick>(trace.ticks.size()) + 1;
  TraceScheduler sched(trace);
  return run(cfg, sched, mechanism);
}

}  // namespace pob
