#include "pob/core/metrics.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace pob {

UtilizationSummary summarize_utilization(const RunResult& result,
                                         const EngineConfig& config,
                                         double bad_threshold) {
  UtilizationSummary s;
  s.bad_threshold = bad_threshold;
  s.total_ticks = static_cast<std::uint32_t>(result.uploads_per_tick.size());
  if (s.total_ticks == 0) return s;
  double sum = 0.0;
  s.min = 1.0;
  for (Tick t = 1; t <= s.total_ticks; ++t) {
    const double u = result.utilization(t, config);
    sum += u;
    s.min = std::min(s.min, u);
    if (u >= 1.0) ++s.full_ticks;
    if (u < bad_threshold) ++s.bad_ticks;
  }
  s.mean = sum / s.total_ticks;
  return s;
}

CompletionSpread completion_spread(const RunResult& result) {
  if (!result.completed || result.client_completion.empty()) {
    throw std::invalid_argument("completion_spread: run did not complete");
  }
  CompletionSpread c;
  const auto [lo, hi] = std::minmax_element(result.client_completion.begin(),
                                            result.client_completion.end());
  c.first = *lo;
  c.last = *hi;
  c.spread = c.last - c.first;
  const auto sum = std::accumulate(result.client_completion.begin(),
                                   result.client_completion.end(), std::uint64_t{0});
  c.mean = static_cast<double>(sum) / static_cast<double>(result.client_completion.size());
  return c;
}

FairnessSummary upload_fairness(const RunResult& result) {
  FairnessSummary f;
  if (result.uploads_per_node.size() < 2) return f;
  // Clients only: skip index 0 (the server).
  std::vector<double> loads(result.uploads_per_node.begin() + 1,
                            result.uploads_per_node.end());
  std::sort(loads.begin(), loads.end());
  const auto n = static_cast<double>(loads.size());
  double sum = 0.0;
  double weighted = 0.0;  // sum of (rank * load), ranks 1..n over sorted loads
  for (std::size_t i = 0; i < loads.size(); ++i) {
    sum += loads[i];
    weighted += static_cast<double>(i + 1) * loads[i];
  }
  f.min = loads.front();
  f.max = loads.back();
  f.mean = sum / n;
  if (sum > 0.0) {
    // Gini via the sorted-rank formula: G = (2*sum_i i*x_i)/(n*sum) - (n+1)/n.
    f.gini = 2.0 * weighted / (n * sum) - (n + 1.0) / n;
  }
  return f;
}

double mean_client_goodput(const RunResult& result, std::uint32_t num_blocks) {
  if (!result.completed || result.client_completion.empty()) return 0.0;
  double sum = 0.0;
  for (const Tick t : result.client_completion) {
    sum += static_cast<double>(num_blocks) / static_cast<double>(t);
  }
  return sum / static_cast<double>(result.client_completion.size());
}

}  // namespace pob
