// Shared driver for Figures 6 and 7 — credit-limited randomized algorithm,
// completion time vs overlay degree, two curves:
//
//   s = 1        unit credit at every degree
//   s * d = 100  total per-neighbor credit held constant as degree varies
//
// Paper setup: n = k = 1000, random regular overlays. Expected shape: below
// a policy-dependent degree threshold the algorithm is "off the charts"
// (censored here via tick cap + stall detection); above it, performance
// snaps to near-cooperative. Raising s at low degree does NOT substitute
// for degree. Rarest-First's threshold sits ~4x below Random's.

#pragma once

#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "pob/analysis/bounds.h"

namespace pob::bench {

inline int run_fig67(int argc, char** argv, BlockPolicy policy,
                     const char* figure_name) {
  const Args args(argc, argv);
  TrialRunner trials(args);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 1000));
  const auto k = static_cast<std::uint32_t>(args.get_int("k", 1000));
  const auto runs = static_cast<std::uint32_t>(args.get_int("runs", 3));
  const auto cap = static_cast<Tick>(
      args.get_int("cap", 6 * static_cast<std::int64_t>(cooperative_lower_bound(n, k))));
  std::vector<std::int64_t> degrees = args.get_int_list(
      "degrees", {10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 120, 140});
  if (args.has("quick")) degrees = {10, 40, 80, 120};

  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  cfg.max_ticks = cap;
  // Censor crawling runs early: the starved regime progresses on server
  // bandwidth alone (utilization ~1/n << 2%).
  cfg.stall_window = 250;

  RandomizedOptions opt;
  opt.policy = policy;

  Table table({"curve", "degree", "s", "T (mean +- 95% CI)", "optimal"});
  const Tick optimal = cooperative_lower_bound(n, k);
  for (const char* curve : {"s=1", "s*d=100"}) {
    const bool unit = std::string_view(curve) == "s=1";
    for (const std::int64_t d64 : degrees) {
      const auto d = static_cast<std::uint32_t>(d64);
      const std::uint32_t s = unit ? 1u : std::max(1u, (100u + d / 2) / d);
      const TrialStats stats = trials(runs, [&](std::uint32_t i) {
        return credit_trial(cfg, d, s, opt,
                            trial_seed(0xF16'6000 + 101ull * d + (unit ? 0 : 7777), i));
      });
      table.add_row({curve, std::to_string(d), std::to_string(s),
                     completion_cell(stats, static_cast<double>(cap)),
                     std::to_string(optimal)});
    }
  }
  std::cout << "# " << figure_name
            << ": credit-limited randomized, T vs overlay degree (n = " << n
            << ", k = " << k << ", " << to_string(policy)
            << " policy; censored = no completion within " << cap
            << " ticks or stalled)\n";
  emit(args, table);
  trials.report(std::cout);
  return 0;
}

}  // namespace pob::bench
