#include "pob/scale/mirror.h"

#include <stdexcept>

namespace pob::scale {

MirrorScheduler::MirrorScheduler(std::unique_ptr<Engine> engine)
    : engine_(std::move(engine)) {
  if (engine_ == nullptr) {
    throw std::invalid_argument("MirrorScheduler: null engine");
  }
}

void MirrorScheduler::plan_tick(Tick tick, const SwarmState& state,
                                std::vector<Transfer>& out) {
  // core::Engine owns churn during a mirrored run (config departures and
  // depart_on_complete are applied to the SwarmState before plan_tick).
  // Sync them across so the scale planner sees the identical active set.
  const std::uint32_t n = state.num_nodes();
  for (NodeId node = 1; node < n; ++node) {
    if (engine_->is_active(node) && !state.is_active(node)) {
      engine_->deactivate(node);
    }
  }

  planned_.clear();
  engine_->plan(tick, planned_);
  out.insert(out.end(), planned_.begin(), planned_.end());

  // Commit our own stream immediately: core applies `out` to the SwarmState
  // after this returns, and the scale state must match at the next tick.
  // If core instead throws EngineViolation on the stream, the run is dead
  // anyway — divergence of the two states no longer matters.
  engine_->apply(tick, planned_);
}

}  // namespace pob::scale
