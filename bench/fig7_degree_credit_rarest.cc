// E7 / Figure 7 — credit-limited randomized algorithm with the Rarest-First
// block-selection policy. Same sweep as Figure 6; the paper's threshold
// drops ~4x (to around degree 20 at n = k = 1000).

#include "fig67_common.h"

int main(int argc, char** argv) {
  return pob::bench::run_fig67(argc, argv, pob::BlockPolicy::kRarestFirst,
                               "E7/Figure 7");
}
