// Deterministic parallel trial execution.
//
// Randomized sweeps (Figures 3-7, the barter/credit tables) need hundreds of
// independent trials; running them serially leaves every core but one idle.
// The pieces here parallelize the *trials* while keeping the aggregate
// statistics bit-identical to the serial runner: each trial's RNG seed is a
// pure function of its index (never of thread or schedule), outcomes land in
// an index-addressed slot, and aggregation happens in index order on the
// calling thread.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "pob/exp/sweep.h"

namespace pob {

/// Derives the RNG seed for trial `trial` from a base seed, splitmix64-style.
/// Depends only on (base, trial) — never on thread assignment — so trial i
/// sees the same seed at any --jobs setting. Nearby trial indices map to
/// uncorrelated seeds (unlike `base + i`, which hands xoshiro's seeding
/// nearly identical inputs for every run of a sweep point).
std::uint64_t trial_seed(std::uint64_t base, std::uint32_t trial);

/// Hardware concurrency, with a floor of 1 when the runtime reports 0.
unsigned default_jobs();

/// Validates a --jobs flag value and narrows it to a worker count. 0 means
/// "use default_jobs()" (resolved later); negative values are rejected rather
/// than wrapped through the unsigned conversion; values above 4x
/// default_jobs() are clamped to that cap (a larger value is always a typo,
/// and spawning it would thread-bomb the machine).
unsigned jobs_from_flag(std::int64_t jobs);

/// A small self-scheduling thread pool. Work is claimed from a shared index
/// range in chunks (fetch_add on an atomic cursor), so fast threads
/// automatically take over the items a slow thread never reached — the
/// load-balancing benefit of work stealing without per-thread deques.
///
/// The pool owns jobs-1 worker threads; the thread calling parallel_for
/// participates as the jobs-th worker.
class ThreadPool {
 public:
  /// `jobs` = total worker count, including the calling thread; 0 selects
  /// default_jobs(). A pool of size 1 runs everything inline.
  explicit ThreadPool(unsigned jobs = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned jobs() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Runs body(i) for every i in [0, count), across the pool. Blocks until
  /// all items finish. If any body throws, the first exception is rethrown
  /// here after the remaining items complete. Not reentrant.
  void parallel_for(std::uint32_t count,
                    const std::function<void(std::uint32_t)>& body);

 private:
  void worker_loop();
  void drain(const std::function<void(std::uint32_t)>& body, std::uint32_t count,
             std::uint32_t chunk);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable wake_;
  std::condition_variable all_done_;
  // Dispatch state, all guarded by mu_. Workers adopt a dispatch under the
  // lock (copying body/count/chunk and incrementing in_flight_), so drain()
  // touches no shared non-atomic state; parallel_for returns only once every
  // adopting worker has left drain(), never just when the items ran out —
  // otherwise a preempted worker could wake into the *next* dispatch's
  // cursors while holding the previous (already destroyed) body.
  std::uint64_t generation_ = 0;  // bumped per parallel_for dispatch
  bool stop_ = false;
  const std::function<void(std::uint32_t)>* body_ = nullptr;
  std::uint32_t count_ = 0;
  std::uint32_t chunk_ = 1;
  std::uint32_t in_flight_ = 0;  // workers currently inside drain()
  std::atomic<std::uint32_t> next_{0};
  std::atomic<std::uint32_t> done_{0};
  std::exception_ptr error_;  // guarded by mu_
};

/// As repeat_trials, but runs trials on `jobs` threads (0 = default_jobs(),
/// 1 = the serial runner). The returned TrialStats is bit-identical to
/// repeat_trials(runs, trial) for every `jobs` value: outcomes are collected
/// per index and aggregated in index order. `trial` must be safe to call
/// concurrently from multiple threads with distinct indices.
TrialStats repeat_trials_parallel(
    std::uint32_t runs, unsigned jobs,
    const std::function<TrialOutcome(std::uint32_t)>& trial);

}  // namespace pob
