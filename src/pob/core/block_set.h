// Dense, word-packed set of block ids with the selection primitives the
// dissemination algorithms need on their hot paths:
//
//   * "does u have a block that v lacks?"            (interest test)
//   * "pick a uniformly random block of u \ v \ x"   (Random policy)
//   * "pick the globally rarest block of u \ v \ x"  (Rarest-First policy)
//
// where x is the set of blocks v is already receiving this tick (the
// handshake protocol of §2.4.2 prevents v from being sent the same block by
// two uploaders at once).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pob/core/rng.h"
#include "pob/core/types.h"

namespace pob {

class BlockSet {
 public:
  BlockSet() = default;

  /// An empty set over a universe of `universe` blocks (ids 0..universe-1).
  explicit BlockSet(std::uint32_t universe);

  /// Number of blocks in the universe (not the number contained).
  std::uint32_t universe() const { return universe_; }

  /// Number of blocks contained.
  std::uint32_t count() const { return count_; }

  bool empty() const { return count_ == 0; }

  /// True when every block in the universe is contained.
  bool full() const { return count_ == universe_; }

  bool contains(BlockId b) const {
    return (words_[b >> 6] >> (b & 63)) & 1u;
  }

  /// Inserts `b`; returns true if it was newly inserted.
  bool insert(BlockId b);

  /// Removes `b`; returns true if it was present.
  bool erase(BlockId b);

  /// Removes all blocks.
  void clear();

  /// Inserts every block of the universe.
  void fill();

  /// Lowest-id block contained, or kNoBlock if empty.
  BlockId min() const;

  /// Highest-id block contained, or kNoBlock if empty. This is the block the
  /// hypercube rule transmits ("the block b_i with the largest i").
  BlockId max() const;

  /// Lowest-id block of the universe NOT contained, or kNoBlock if full.
  BlockId first_missing() const;

  /// True if this set contains a block that `other` lacks.
  bool has_block_missing_from(const BlockSet& other) const;

  /// Highest-id block in `*this \ other`, or kNoBlock if none.
  BlockId max_missing_from(const BlockSet& other) const;

  /// Number of blocks in `*this \ other`.
  std::uint32_t count_missing_from(const BlockSet& other) const;

  /// True if `*this \ dst \ excl` is non-empty. `excl` may be null.
  bool has_useful(const BlockSet& dst, const BlockSet* excl) const;

  /// True if every block of the universe missing from `have` is contained
  /// in *this — i.e. *this covers the complement of `have`. Used to detect
  /// receivers whose every missing block is already inbound this tick.
  bool covers_complement_of(const BlockSet& have) const;

  /// Uniformly random element of `*this \ dst \ excl`, or kNoBlock if the
  /// difference is empty. `excl` may be null.
  BlockId pick_random_useful(const BlockSet& dst, const BlockSet* excl, Rng& rng) const;

  /// Element of `*this \ dst \ excl` minimizing `freq[b]`, ties broken
  /// uniformly at random; kNoBlock if the difference is empty.
  /// `freq.size()` must equal the universe size. `excl` may be null.
  BlockId pick_rarest_useful(const BlockSet& dst, const BlockSet* excl,
                             std::span<const std::uint32_t> freq, Rng& rng) const;

  /// All contained block ids in increasing order.
  std::vector<BlockId> to_vector() const;

  /// Calls `fn(BlockId)` for each contained block in increasing order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const auto bit = static_cast<std::uint32_t>(__builtin_ctzll(bits));
        fn(static_cast<BlockId>((w << 6) + bit));
        bits &= bits - 1;
      }
    }
  }

  /// Raw word storage (little-endian bit order), for tests and diagnostics.
  std::span<const std::uint64_t> words() const { return words_; }

  friend bool operator==(const BlockSet& a, const BlockSet& b) {
    return a.universe_ == b.universe_ && a.words_ == b.words_;
  }

 private:
  std::uint64_t word_mask(std::size_t w) const;  // valid-bit mask for word w

  std::uint32_t universe_ = 0;
  std::uint32_t count_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace pob
