// Determinism pins for the fully parallel tick (receiver-sharded merge +
// sharded apply): a 200,000-node swarm that exercises every cross-node
// constraint the merge and commit phases enforce at once — config churn,
// depart-on-complete, the §3.2 credit ledger under rarest-first selection,
// and heterogeneous download caps — must produce bit-identical RunResults
// at jobs = 1, 4 and hardware_concurrency. The smaller companion case keeps
// record_trace on, so the full per-tick transfer stream (not just the
// aggregate bookkeeping) is digested too.
//
// The digests themselves are pinned to absolute constants (captured before
// the scheduler-interface refactor for the randomized family, at its
// introduction for the deterministic mechanisms), so a silent behavioral
// drift fails even if it drifts identically at every job count.

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "pob/check/oracle.h"
#include "pob/overlay/builders.h"
#include "pob/scale/engine.h"

namespace pob::scale {
namespace {

// Captured from the pre-refactor engine (randomized planner inlined in
// generate); the ScaleScheduler extraction must not move a single bit.
constexpr std::uint64_t kCreditRarest200kDigest = 0x5157ee3c583eea14ULL;
constexpr std::uint64_t kTrace2500Digest = 0xf28c333e5835ab16ULL;
constexpr std::uint64_t kPureRandomized200kDigest = 0x72fa6ecfba949db6ULL;

// The deterministic mechanisms at 2^18 nodes, k = 64 (the power of two
// nearest the 200k randomized pins). Binomial and triangular share a digest
// by design: §3.3's result is that the triangular ledger admits the
// binomial schedule unchanged.
constexpr std::uint64_t kBinomial262kDigest = 0xce992a8dbb1d2100ULL;
constexpr std::uint64_t kTriangular262kDigest = kBinomial262kDigest;
constexpr std::uint64_t kRiffle262kDigest = 0x4842fc682201766dULL;

TEST(ScaleParallel, TwoHundredThousandNodesEveryPhaseSharded) {
  constexpr std::uint32_t kNodes = 200000;
  constexpr std::uint64_t kSeed = 29;

  EngineConfig cfg;
  cfg.num_nodes = kNodes;
  cfg.num_blocks = 32;
  cfg.server_upload_capacity = 8;
  cfg.depart_on_complete = true;  // run()'s leaving queue, sharded by receiver
  cfg.departures = {{4, 777}, {11, 1234}, {25, 99999}};
  // Fixed horizon: with depart-on-complete on a sparse overlay, stragglers
  // whose whole neighborhood departed can never finish, and the digest at a
  // fixed tick is exactly as discriminating as one at completion.
  cfg.max_ticks = 64;
  // Heterogeneous download caps: every 7th client can take 3 blocks/tick,
  // the rest 2 — receiver shards must enforce exactly their own slice.
  cfg.download_capacities.assign(kNodes, 2);
  for (NodeId c = 1; c < kNodes; c += 7) cfg.download_capacities[c] = 3;

  ScaleOptions opt;
  opt.policy = BlockPolicy::kRarestFirst;
  opt.credit_limit = 3;

  const auto digest_at = [&](unsigned jobs) {
    Rng rng(kSeed);
    auto topo = std::make_shared<Topology>(
        Topology::from_graph(make_random_regular(kNodes, 16, rng)));
    Engine engine(cfg, std::move(topo), opt, kSeed);
    const RunResult r = engine.run(jobs);
    EXPECT_EQ(r.ticks_executed, 64u);
    EXPECT_GT(r.departed, 3u);  // the 3 config departures + depart-on-complete
    return check::run_result_digest(r);
  };

  const std::uint64_t serial = digest_at(1);
  EXPECT_EQ(serial, kCreditRarest200kDigest);
  EXPECT_EQ(digest_at(4), serial);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  EXPECT_EQ(digest_at(hw), serial);

  // The scan-kernel axis: forcing the one-word reference kernel (no SIMD,
  // no summary-guided sparse walk) must reproduce the identical stream —
  // this is the pin that keeps the vectorized paths honest at scale.
  opt.scan_kernel = ScanKernel::kScalar;
  EXPECT_EQ(digest_at(1), serial);
}

TEST(ScaleParallel, PureRandomizedTwoHundredThousandNodesPinned) {
  constexpr std::uint32_t kNodes = 200000;
  EngineConfig cfg;
  cfg.num_nodes = kNodes;
  cfg.num_blocks = 64;
  cfg.server_upload_capacity = 4;
  cfg.max_ticks = 48;

  ScaleOptions opt;  // defaults: cooperative randomized, no credit ledger

  const auto digest_at = [&](unsigned jobs) {
    Rng rng(11);
    auto topo = std::make_shared<Topology>(
        Topology::from_graph(make_random_regular(kNodes, 8, rng)));
    Engine engine(cfg, std::move(topo), opt, 11);
    return check::run_result_digest(engine.run(jobs));
  };

  const std::uint64_t serial = digest_at(1);
  EXPECT_EQ(serial, kPureRandomized200kDigest);
  EXPECT_EQ(digest_at(4), serial);
}

TEST(ScaleParallel, DeterministicSchedulersQuarterMillionNodesPinned) {
  constexpr std::uint32_t kNodes = 262144;  // 2^18
  constexpr std::uint32_t kBlocks = 64;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  const auto digest_at = [&](SchedKind kind, unsigned jobs) {
    EngineConfig cfg;
    cfg.num_nodes = kNodes;
    cfg.num_blocks = kBlocks;
    if (kind == SchedKind::kRifflePipeline) cfg.download_capacity = 2;
    ScaleOptions opt;
    opt.scheduler = kind;
    if (kind == SchedKind::kTriangularBarter) opt.credit_limit = 1;
    auto topo = std::make_shared<Topology>(Topology::complete(kNodes));
    Engine engine(cfg, std::move(topo), opt, 7);
    const RunResult r = engine.run(jobs);
    EXPECT_TRUE(r.completed);
    // Every client downloads each block exactly once, whatever the mechanism.
    EXPECT_EQ(r.total_transfers, static_cast<Count>(kNodes - 1) * kBlocks);
    return check::run_result_digest(r);
  };

  for (const auto& [kind, pinned] :
       {std::pair{SchedKind::kBinomialPipeline, kBinomial262kDigest},
        {SchedKind::kTriangularBarter, kTriangular262kDigest},
        {SchedKind::kRifflePipeline, kRiffle262kDigest}}) {
    const std::uint64_t serial = digest_at(kind, 1);
    EXPECT_EQ(serial, pinned) << sched_kind_name(kind);
    EXPECT_EQ(digest_at(kind, 4), serial) << sched_kind_name(kind);
    EXPECT_EQ(digest_at(kind, hw), serial) << sched_kind_name(kind);
  }
}

TEST(ScaleParallel, TraceDigestStableAcrossJobsWithChurnAndCredit) {
  EngineConfig cfg;
  cfg.num_nodes = 2500;
  cfg.num_blocks = 65;  // tail word in play
  cfg.record_trace = true;
  cfg.depart_on_complete = true;
  cfg.departures = {{2, 17}, {6, 400}};
  cfg.download_capacities.assign(2500, 2);
  cfg.download_capacities[42] = 4;

  ScaleOptions opt;
  opt.policy = BlockPolicy::kRarestFirst;
  opt.credit_limit = 2;
  opt.shard_nodes = 97;  // many intent shards, boundaries mid-swarm

  const auto digest_at = [&](unsigned jobs) {
    Rng rng(3);
    auto topo = std::make_shared<Topology>(
        Topology::from_graph(make_random_regular(2500, 12, rng)));
    Engine engine(cfg, std::move(topo), opt, 3);
    return check::run_result_digest(engine.run(jobs));
  };

  const std::uint64_t serial = digest_at(1);
  EXPECT_EQ(serial, kTrace2500Digest);
  EXPECT_EQ(digest_at(2), serial);
  EXPECT_EQ(digest_at(4), serial);
  EXPECT_EQ(digest_at(16), serial);

  // With record_trace on, the digest covers every transfer of every tick —
  // the scalar reference kernel must reproduce them all, across jobs too.
  opt.scan_kernel = ScanKernel::kScalar;
  EXPECT_EQ(digest_at(1), serial);
  EXPECT_EQ(digest_at(4), serial);
}

}  // namespace
}  // namespace pob::scale
