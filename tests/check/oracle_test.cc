#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "pob/check/oracle.h"
#include "pob/exp/trace_io.h"
#include "pob/overlay/builders.h"
#include "pob/rand/randomized.h"
#include "pob/sched/binomial_tree.h"
#include "pob/sched/pipeline.h"
#include "pob/sched/riffle_pipeline.h"

namespace pob::check {
namespace {

template <typename Fn>
class LambdaScheduler final : public Scheduler {
 public:
  explicit LambdaScheduler(Fn fn) : fn_(std::move(fn)) {}
  std::string_view name() const override { return "lambda"; }
  void plan_tick(Tick t, const SwarmState& s, std::vector<Transfer>& out) override {
    fn_(t, s, out);
  }

 private:
  Fn fn_;
};

EngineConfig config(std::uint32_t n, std::uint32_t k) {
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  return cfg;
}

TEST(DifferentialCheck, AgreesOnDeterministicSchedules) {
  {
    PipelineScheduler sched(12, 9);
    const OracleReport report = differential_check(config(12, 9), sched, {});
    EXPECT_TRUE(report.ok) << report.diagnosis;
    EXPECT_FALSE(report.violated);
    EXPECT_TRUE(report.fast.completed);
  }
  {
    BinomialTreeScheduler sched(19, 6);
    const OracleReport report = differential_check(config(19, 6), sched, {});
    EXPECT_TRUE(report.ok) << report.diagnosis;
  }
}

TEST(DifferentialCheck, AgreesOnTheRandomizedSwarm) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    EngineConfig cfg = config(24, 16);
    RandomizedScheduler sched(std::make_shared<CompleteOverlay>(24), {}, Rng(seed));
    const OracleReport report = differential_check(cfg, sched, {});
    EXPECT_TRUE(report.ok) << "seed " << seed << ": " << report.diagnosis;
    EXPECT_TRUE(report.fast.completed);
  }
}

TEST(DifferentialCheck, AgreesUnderStrictBarter) {
  EngineConfig cfg = config(11, 30);
  cfg.download_capacity = 2;
  RifflePipelineScheduler sched(11, 30, 1, 2);
  MechanismSpec spec;
  spec.kind = MechanismSpec::Kind::kStrictBarter;
  const OracleReport report = differential_check(cfg, sched, spec);
  EXPECT_TRUE(report.ok) << report.diagnosis;
  EXPECT_FALSE(report.violated);
  EXPECT_TRUE(report.fast.completed);
}

TEST(DifferentialCheck, BothEnginesRejectTheSameTick) {
  // Legal on ticks 1-2, illegal on tick 3 (node 2 never received block 1).
  LambdaScheduler sched([](Tick t, const SwarmState&, std::vector<Transfer>& out) {
    if (t == 1) out.push_back({0, 1, 0});
    if (t == 2) out.push_back({0, 2, 0});
    if (t == 3) out.push_back({2, 1, 1});
  });
  const OracleReport report = differential_check(config(3, 2), sched, {});
  EXPECT_TRUE(report.ok) << report.diagnosis;  // agreement, not success
  EXPECT_TRUE(report.violated);
  EXPECT_EQ(report.violation_tick, 3u);
  EXPECT_FALSE(report.violation_message.empty());
}

TEST(DifferentialCheck, AgreesUnderLossyChurn) {
  // The pipeline keeps naming node 3 after it departs; drop mode forgives
  // and both engines must agree on every dropped transfer and final count.
  EngineConfig cfg = config(12, 9);
  cfg.departures = {{5, 3}};
  cfg.drop_transfers_involving_inactive = true;
  PipelineScheduler sched(12, 9);
  const OracleReport report = differential_check(cfg, sched, {});
  EXPECT_TRUE(report.ok) << report.diagnosis;
  EXPECT_FALSE(report.violated);
  EXPECT_GT(report.fast.dropped_transfers, 0u);
}

TEST(DifferentialReplay, RoundTripsARecordedRun) {
  EngineConfig cfg = config(10, 6);
  cfg.record_trace = true;
  RandomizedScheduler sched(std::make_shared<CompleteOverlay>(10), {}, Rng(3));
  const RunResult r = run(cfg, sched);
  ASSERT_TRUE(r.completed);

  std::ostringstream os;
  write_trace(os, cfg, r);
  std::istringstream is(os.str());
  const LoadedTrace trace = read_trace(is);

  const OracleReport report = differential_replay(trace, {});
  EXPECT_TRUE(report.ok) << report.diagnosis;
  EXPECT_FALSE(report.violated);
  EXPECT_TRUE(report.fast.completed);
  EXPECT_EQ(report.fast.completion_tick, r.completion_tick);
}

}  // namespace
}  // namespace pob::check
