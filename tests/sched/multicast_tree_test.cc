#include "pob/sched/multicast_tree.h"

#include <gtest/gtest.h>

#include "pob/analysis/bounds.h"
#include "pob/core/engine.h"

namespace pob {
namespace {

RunResult run_tree(std::uint32_t n, std::uint32_t k, std::uint32_t d) {
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  cfg.download_capacity = 1;
  MulticastTreeScheduler sched(n, k, d);
  return run(cfg, sched);
}

TEST(MulticastTree, ChainEqualsPipeline) {
  // Arity 1 degenerates to the pipeline: T = k + n - 2.
  const RunResult r = run_tree(6, 4, 1);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.completion_tick, 4u + 6u - 2u);
}

TEST(MulticastTree, BinaryTreeSmallCase) {
  // n = 3 (root + 2 children), k = 2, d = 2: root sends b0 to c1 (t1), b0 to
  // c2 (t2), b1 to c1 (t3), b1 to c2 (t4).
  const RunResult r = run_tree(3, 2, 2);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.completion_tick, 4u);
}

class MulticastGrid
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> {};

TEST_P(MulticastGrid, CompletesNearTheoreticalEstimate) {
  const auto [n, k, d] = GetParam();
  const RunResult r = run_tree(n, k, d);
  ASSERT_TRUE(r.completed) << "n=" << n << " k=" << k << " d=" << d;
  const Tick estimate = multicast_tree_estimate(n, k, d);
  // The estimate assumes a full tree; the schedule can only be faster when
  // the last level is ragged, and never slower.
  EXPECT_LE(r.completion_tick, estimate) << "n=" << n << " k=" << k << " d=" << d;
  EXPECT_GE(r.completion_tick, cooperative_lower_bound(n, k));
  // The d-ary tree pays roughly a factor-d penalty on the k term.
  EXPECT_GE(r.completion_tick, d * (k - 1) + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MulticastGrid,
    ::testing::Combine(::testing::Values(7u, 15u, 31u, 40u, 121u),
                       ::testing::Values(1u, 4u, 16u), ::testing::Values(2u, 3u)));

TEST(MulticastTree, FullBinaryTreeMatchesClosedForm) {
  // Perfect binary tree n = 2^(h+1) - 1: last block leaves the root at tick
  // d*k, then takes d per level for the remaining h - 1 levels.
  for (const std::uint32_t h : {2u, 3u, 4u}) {
    const std::uint32_t n = (1u << (h + 1)) - 1;
    const std::uint32_t k = 5;
    const RunResult r = run_tree(n, k, 2);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.completion_tick, 2 * k + 2 * (h - 1)) << "h=" << h;
  }
}

TEST(MulticastTree, RejectsBadArity) {
  EXPECT_THROW(MulticastTreeScheduler(4, 2, 0), std::invalid_argument);
  EXPECT_THROW(MulticastTreeScheduler(1, 2, 2), std::invalid_argument);
}

}  // namespace
}  // namespace pob
