// The mega-swarm determinism pin at real size: one n = 50,000 swarm run at
// jobs = 1, 4 and 16 must produce bit-identical RunResults (compared by
// digest — completion ticks, per-node upload totals, per-tick utilization,
// everything). This is the property the three-phase tick design exists to
// provide; if a data race or merge-order dependency creeps into the parallel
// intent phase, this test is the tripwire.

#include <gtest/gtest.h>

#include <memory>

#include "pob/check/oracle.h"
#include "pob/overlay/builders.h"
#include "pob/scale/engine.h"

namespace pob::scale {
namespace {

TEST(ScaleDeterminism, FiftyThousandNodesAnyJobCount) {
  constexpr std::uint32_t kNodes = 50000;
  constexpr std::uint64_t kSeed = 17;

  EngineConfig cfg;
  cfg.num_nodes = kNodes;
  cfg.num_blocks = 64;
  cfg.download_capacity = 2;
  cfg.server_upload_capacity = 8;
  cfg.departures = {{5, 101}, {20, 202}, {40, 303}};

  ScaleOptions opt;
  opt.policy = BlockPolicy::kRarestFirst;
  opt.credit_limit = 3;

  const auto digest_at = [&](unsigned jobs) {
    Rng rng(kSeed);
    auto topo = std::make_shared<Topology>(
        Topology::from_graph(make_random_regular(kNodes, 16, rng)));
    Engine engine(cfg, std::move(topo), opt, kSeed);
    const RunResult r = engine.run(jobs);
    EXPECT_TRUE(r.completed);
    return check::run_result_digest(r);
  };

  const std::uint64_t serial = digest_at(1);
  EXPECT_EQ(digest_at(4), serial);
  EXPECT_EQ(digest_at(16), serial);
}

}  // namespace
}  // namespace pob::scale
