#include "pob/coding/coded_swarm.h"

#include <gtest/gtest.h>

#include "pob/analysis/bounds.h"
#include "pob/core/engine.h"
#include "pob/overlay/builders.h"
#include "pob/rand/randomized.h"

namespace pob {
namespace {

CodedSwarmResult run_coded(std::uint32_t n, std::uint32_t k, std::uint64_t seed,
                           CodedSwarmOptions opt = {},
                           std::shared_ptr<const Overlay> overlay = nullptr) {
  if (overlay == nullptr) overlay = std::make_shared<CompleteOverlay>(n);
  return run_coded_swarm(n, k, std::move(overlay), opt, Rng(seed));
}

class CodedGrid
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(CodedGrid, CompletesNearOptimal) {
  const auto [n, k] = GetParam();
  const CodedSwarmResult r = run_coded(n, k, 5);
  ASSERT_TRUE(r.completed) << "n=" << n << " k=" << k;
  // Rank k needs at least k received packets; k - 1 + log2 n is still the
  // dissemination bound.
  EXPECT_GE(r.completion_tick, k);
  EXPECT_LE(r.completion_tick, 3 * cooperative_lower_bound(n, k) + 20);
}

INSTANTIATE_TEST_SUITE_P(Grid, CodedGrid,
                         ::testing::Combine(::testing::Values(8u, 32u, 100u),
                                            ::testing::Values(4u, 16u, 64u)));

TEST(CodedSwarm, InnovativeCheckEliminatesMostWaste) {
  const CodedSwarmResult checked = run_coded(64, 64, 7);
  ASSERT_TRUE(checked.completed);
  // With innovativeness checks, waste only comes from coefficient
  // collisions (probability <= 1/2 per dependent draw), not from stale
  // sources.
  EXPECT_LT(checked.waste_ratio(), 0.2);
}

TEST(CodedSwarm, NoCheckStillCompletesWithBoundedWaste) {
  CodedSwarmOptions blind;
  blind.check_innovative = false;
  double blind_waste = 0, checked_waste = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const CodedSwarmResult b = run_coded(64, 64, 900 + seed, blind);
    ASSERT_TRUE(b.completed);
    blind_waste += b.waste_ratio();
    checked_waste += run_coded(64, 64, 900 + seed).waste_ratio();
  }
  // Skipping the innovativeness handshake cannot *reduce* waste on average
  // (allow a small noise margin), and waste stays bounded either way.
  EXPECT_GE(blind_waste, 0.9 * checked_waste);
  EXPECT_LT(blind_waste / 5.0, 0.4);
}

TEST(CodedSwarm, WorksOnSparseOverlays) {
  Rng grng(11);
  auto ov = std::make_shared<GraphOverlay>(make_random_regular(64, 6, grng));
  const CodedSwarmResult r = run_coded(64, 32, 13, {}, ov);
  ASSERT_TRUE(r.completed);
}

TEST(CodedSwarm, CodingBeatsRandomBlockSelectionOnSparseOverlays) {
  // The [13] pitch: coding removes the block-selection problem. On a sparse
  // overlay, coded swarms should not lose to Random block selection.
  const std::uint32_t n = 96, k = 96;
  double coded_total = 0, block_total = 0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    Rng grng(100 + seed);
    const Graph g = make_random_regular(n, 6, grng);
    auto ov1 = std::make_shared<GraphOverlay>(g);
    coded_total += static_cast<double>(run_coded(n, k, 200 + seed, {}, ov1).completion_tick);

    Rng grng2(100 + seed);
    auto ov2 = std::make_shared<GraphOverlay>(make_random_regular(n, 6, grng2));
    EngineConfig cfg;
    cfg.num_nodes = n;
    cfg.num_blocks = k;
    RandomizedScheduler sched(std::move(ov2), {}, Rng(300 + seed));
    block_total += static_cast<double>(run(cfg, sched).completion_tick);
  }
  EXPECT_LT(coded_total, 1.25 * block_total);
}

TEST(CodedSwarm, DeterministicGivenSeed) {
  const CodedSwarmResult a = run_coded(32, 16, 17);
  const CodedSwarmResult b = run_coded(32, 16, 17);
  EXPECT_EQ(a.completion_tick, b.completion_tick);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
}

TEST(CodedSwarm, RejectsBadInputs) {
  EXPECT_THROW(run_coded(1, 4, 1), std::invalid_argument);
  EXPECT_THROW(run_coded(4, 0, 1), std::invalid_argument);
  EXPECT_THROW(
      run_coded_swarm(8, 4, std::make_shared<CompleteOverlay>(9), {}, Rng(1)),
      std::invalid_argument);
  EXPECT_THROW(run_coded_swarm(8, 4, nullptr, {}, Rng(1)), std::invalid_argument);
}

TEST(CodedSwarm, TickCapCensors) {
  CodedSwarmOptions opt;
  opt.max_ticks = 3;
  const CodedSwarmResult r = run_coded(16, 32, 19, opt);
  EXPECT_FALSE(r.completed);
}

}  // namespace
}  // namespace pob
