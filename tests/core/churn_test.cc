// Churn / failure injection: the §2.4 robustness argument made concrete.
// Departed nodes stop counting, stop transferring, and stop holding
// replicas; rigid schedules lose flows while the randomized swarm routes
// around the loss.

#include <gtest/gtest.h>

#include "pob/core/engine.h"
#include "pob/overlay/overlay.h"
#include "pob/rand/randomized.h"
#include "pob/sched/binomial_pipeline.h"
#include "pob/sched/pipeline.h"

namespace pob {
namespace {

TEST(SwarmChurn, DeactivateUpdatesIndexes) {
  SwarmState s(5, 3);
  s.add_block(1, 0, 1);
  s.add_block(2, 0, 1);
  EXPECT_EQ(s.block_frequency()[0], 3u);  // server + clients 1, 2
  s.deactivate(1);
  EXPECT_FALSE(s.is_active(1));
  EXPECT_EQ(s.num_departed(), 1u);
  EXPECT_EQ(s.block_frequency()[0], 2u);
  EXPECT_EQ(s.num_incomplete(), 3u);  // clients 2, 3, 4
  s.deactivate(1);                    // idempotent
  EXPECT_EQ(s.num_departed(), 1u);
  EXPECT_THROW(s.deactivate(kServer), std::invalid_argument);
}

TEST(SwarmChurn, AllCompleteIgnoresDeparted) {
  SwarmState s(4, 1);
  s.add_block(1, 0, 1);
  s.add_block(2, 0, 2);
  EXPECT_FALSE(s.all_complete());
  s.deactivate(3);  // the last straggler leaves
  EXPECT_TRUE(s.all_complete());
}

TEST(EngineChurn, TransfersToDepartedNodesThrowByDefault) {
  EngineConfig cfg;
  cfg.num_nodes = 4;
  cfg.num_blocks = 4;
  cfg.departures = {{2, 1}};  // client 1 leaves at tick 2
  PipelineScheduler sched(4, 4);  // keeps relaying through client 1
  EXPECT_THROW(run(cfg, sched), EngineViolation);
}

TEST(EngineChurn, DropModeLosesFlowsInsteadOfThrowing) {
  EngineConfig cfg;
  cfg.num_nodes = 4;
  cfg.num_blocks = 4;
  cfg.departures = {{2, 1}};
  cfg.drop_transfers_involving_inactive = true;
  cfg.max_ticks = 200;
  PipelineScheduler sched(4, 4);
  const RunResult r = run(cfg, sched);
  // The chain is severed at its first hop: clients 2 and 3 can never finish.
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.departed, 1u);
  // Every severed flow is accounted for: the departed relay's own transfers
  // plus the downstream sends of blocks that never arrived.
  EXPECT_GT(r.dropped_transfers, 0u);
}

TEST(EngineChurn, CleanRunsDropNothing) {
  EngineConfig cfg;
  cfg.num_nodes = 8;
  cfg.num_blocks = 8;
  cfg.drop_transfers_involving_inactive = true;  // armed but never triggered
  PipelineScheduler sched(8, 8);
  const RunResult r = run(cfg, sched);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.dropped_transfers, 0u);
}

// A scheduler with a genuine bug: it sends a block the server never gave
// anyone, between two perfectly healthy nodes.
class BuggyScheduler final : public Scheduler {
 public:
  std::string_view name() const override { return "buggy"; }
  void plan_tick(Tick tick, const SwarmState&, std::vector<Transfer>& out) override {
    if (tick == 1) out.push_back({kServer, 1, 0});
    if (tick == 2) out.push_back({1, 2, 1});  // client 1 never received block 1
  }
};

TEST(EngineChurn, DropModeDoesNotMaskSchedulerBugsBetweenActiveNodes) {
  // Before drop accounting, lossy mode swallowed ALL "sender lacks block" /
  // "receiver already holds" violations, hiding real scheduler bugs. Only
  // casualties of an actual departure may be dropped.
  EngineConfig cfg;
  cfg.num_nodes = 4;
  cfg.num_blocks = 4;
  cfg.drop_transfers_involving_inactive = true;  // no departures configured
  cfg.max_ticks = 10;
  BuggyScheduler sched;
  EXPECT_THROW(run(cfg, sched), EngineViolation);
}

// Re-delivers block 0 to client 2 at every tick — a duplicate-delivery bug
// once client 2 holds it, unrelated to any departure.
class DuplicateSender final : public Scheduler {
 public:
  std::string_view name() const override { return "duplicate-sender"; }
  void plan_tick(Tick, const SwarmState& state, std::vector<Transfer>& out) override {
    if (!state.has(1, 0)) {
      out.push_back({kServer, 1, 0});
      return;
    }
    out.push_back({1, 2, 0});  // violates once client 2 already holds block 0
  }
};

TEST(EngineChurn, DropModeDoesNotMaskDuplicateDeliveryBugs) {
  EngineConfig cfg;
  cfg.num_nodes = 4;
  cfg.num_blocks = 1;
  cfg.drop_transfers_involving_inactive = true;
  cfg.max_ticks = 10;
  DuplicateSender sched;
  EXPECT_THROW(run(cfg, sched), EngineViolation);
}

// Replays a fixed per-tick script of transfers; exercises the drop-mode
// bookkeeping paths precisely.
class ScriptedScheduler final : public Scheduler {
 public:
  explicit ScriptedScheduler(std::vector<std::vector<Transfer>> script)
      : script_(std::move(script)) {}
  std::string_view name() const override { return "scripted"; }
  void plan_tick(Tick tick, const SwarmState&, std::vector<Transfer>& out) override {
    if (tick <= script_.size()) out = script_[tick - 1];
  }

 private:
  std::vector<std::vector<Transfer>> script_;
};

TEST(EngineChurn, DropForgivenessEndsOnceRerouteFillsTheGap) {
  // Once a reroute delivers the block the departure severed, the lossy
  // bookkeeping for that (node, block) pair is retired: a later duplicate
  // delivery is a genuine scheduler bug again, not a churn casualty.
  EngineConfig cfg;
  cfg.num_nodes = 4;
  cfg.num_blocks = 2;  // block 1 is never distributed, keeping the run alive
  cfg.departures = {{2, 3}};
  cfg.drop_transfers_involving_inactive = true;
  cfg.max_ticks = 6;
  const std::vector<std::vector<Transfer>> script = {
      {{kServer, 1, 0}},  // tick 1
      {{3, 2, 0}},        // tick 2: severed by 3's departure
      {{1, 2, 0}},        // tick 3: reroute fills client 2's gap
  };
  {
    ScriptedScheduler ok(script);
    const RunResult r = run(cfg, ok);
    EXPECT_EQ(r.dropped_transfers, 1u);
  }
  auto with_dup = script;
  with_dup.push_back({{1, 2, 0}});  // tick 4: duplicate after the gap filled
  ScriptedScheduler buggy(with_dup);
  EXPECT_THROW(run(cfg, buggy), EngineViolation);
}

TEST(EngineChurn, StaleDuplicateIsForgivenExactlyOnce) {
  EngineConfig cfg;
  cfg.num_nodes = 4;
  cfg.num_blocks = 2;
  cfg.upload_capacity = 2;
  cfg.departures = {{2, 3}};
  cfg.drop_transfers_involving_inactive = true;
  cfg.max_ticks = 6;
  const std::vector<std::vector<Transfer>> script = {
      {{kServer, 1, 0}, {kServer, 2, 0}},  // tick 1
      {{3, 2, 0}},  // tick 2: severed send to a receiver that already holds 0
      {{1, 2, 0}},  // tick 3: stale duplicate — forgiven, key retired
  };
  {
    ScriptedScheduler ok(script);
    const RunResult r = run(cfg, ok);
    EXPECT_EQ(r.dropped_transfers, 2u);
  }
  auto with_second = script;
  with_second.push_back({{1, 2, 0}});  // tick 4: second duplicate must throw
  ScriptedScheduler buggy(with_second);
  EXPECT_THROW(run(cfg, buggy), EngineViolation);
}

TEST(EngineChurn, DeparturesCombineWithDepartOnComplete) {
  // Both churn mechanisms at once: scheduled departures sever flows while
  // finished clients leave on their own; accounting covers both.
  const std::uint32_t n = 48, k = 24;
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  cfg.depart_on_complete = true;
  cfg.departures = {{5, 2}, {8, 9}, {11, 17}};
  cfg.drop_transfers_involving_inactive = true;
  RandomizedScheduler sched(std::make_shared<CompleteOverlay>(n), {}, Rng(77));
  const RunResult r = run(cfg, sched);
  ASSERT_TRUE(r.completed);
  // Nearly all clients departed: 3 by schedule, the rest on completion.
  // (Clients finishing in the final tick never reach their departure tick.)
  EXPECT_GE(r.departed, 40u);
  // The randomized scheduler reads state each tick, so it never targets
  // already-departed nodes and nothing is dropped.
  EXPECT_EQ(r.dropped_transfers, 0u);
}

TEST(EngineChurn, RandomizedSwarmRoutesAroundDepartures) {
  const std::uint32_t n = 64, k = 32;
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  // A fifth of the swarm leaves mid-distribution.
  for (NodeId c = 2; c <= 50; c += 4) {
    cfg.departures.push_back({10 + c / 4, c});
  }
  RandomizedScheduler sched(std::make_shared<CompleteOverlay>(n), {}, Rng(5));
  const RunResult r = run(cfg, sched);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.departed, 8u);
  // Departed-but-incomplete clients report completion 0; survivors finished.
  std::uint32_t finished = 0;
  for (const Tick t : r.client_completion) finished += t != 0;
  EXPECT_GE(finished, n - 1 - r.departed);
}

TEST(EngineChurn, BinomialPipelineStallsUnderChurnButSwarmDoesNot) {
  // The §2.4 motivation: "such a rigid construction may not be particularly
  // robust". Same departures, same cap; drop mode for the rigid schedule.
  const std::uint32_t n = 32, k = 64;
  std::vector<std::pair<Tick, NodeId>> departures = {{5, 3}, {9, 17}, {12, 24}};

  EngineConfig rigid;
  rigid.num_nodes = n;
  rigid.num_blocks = k;
  rigid.departures = departures;
  rigid.drop_transfers_involving_inactive = true;
  rigid.max_ticks = 10 * (k + 5);
  BinomialPipelineScheduler bp(n, k);
  const RunResult r_rigid = run(rigid, bp);

  EngineConfig swarm = rigid;
  RandomizedScheduler rs(std::make_shared<CompleteOverlay>(n), {}, Rng(7));
  const RunResult r_swarm = run(swarm, rs);

  ASSERT_TRUE(r_swarm.completed);
  // The hypercube schedule lost three relays; survivors depending on them
  // never fill their gaps.
  EXPECT_FALSE(r_rigid.completed);
}

TEST(EngineChurn, SelfishLeechersLeaveOnCompletion) {
  // depart_on_complete: finished clients vanish the next tick, so the swarm
  // loses its best uploaders. The run still completes (the server persists)
  // but more slowly than with lingering seeders.
  const std::uint32_t n = 64, k = 64;
  EngineConfig stay;
  stay.num_nodes = n;
  stay.num_blocks = k;
  RandomizedScheduler s1(std::make_shared<CompleteOverlay>(n), {}, Rng(31));
  const RunResult with_seeders = run(stay, s1);

  EngineConfig leave = stay;
  leave.depart_on_complete = true;
  RandomizedScheduler s2(std::make_shared<CompleteOverlay>(n), {}, Rng(31));
  const RunResult selfish = run(leave, s2);

  ASSERT_TRUE(with_seeders.completed);
  ASSERT_TRUE(selfish.completed);
  EXPECT_GT(selfish.departed, 0u);
  EXPECT_GE(selfish.completion_tick, with_seeders.completion_tick);
}

// Feeds client 1 one block per tick from the server; nothing else.
class DripScheduler final : public Scheduler {
 public:
  explicit DripScheduler(std::uint32_t k) : k_(k) {}
  std::string_view name() const override { return "drip"; }
  void plan_tick(Tick tick, const SwarmState&, std::vector<Transfer>& out) override {
    if (tick <= k_) out.push_back({kServer, 1, static_cast<BlockId>(tick - 1)});
  }

 private:
  std::uint32_t k_;
};

TEST(EngineChurn, DeparturesShrinkTheUtilizationDenominator) {
  EngineConfig cfg;
  cfg.num_nodes = 3;
  cfg.num_blocks = 2;
  cfg.departures = {{2, 2}};  // client 2 leaves before tick 2
  DripScheduler sched(2);
  const RunResult r = run(cfg, sched);
  ASSERT_TRUE(r.completed);  // client 1 finished, client 2 departed
  ASSERT_EQ(r.active_slots_per_tick.size(), 2u);
  EXPECT_EQ(r.active_slots_per_tick[0], 3u);  // full fleet
  EXPECT_EQ(r.active_slots_per_tick[1], 2u);  // minus the departed client
  EXPECT_DOUBLE_EQ(r.utilization(1, cfg), 1.0 / 3.0);
  // Against the stale static fleet this read 1/3; the live capacity is 2.
  EXPECT_DOUBLE_EQ(r.utilization(2, cfg), 0.5);
}

TEST(EngineChurn, StallDetectorUsesSurvivingCapacity) {
  // One transfer per tick is 50% of the surviving two upload slots — healthy.
  // Against the stale four-slot fleet it is 25% < 40% and the old detector
  // would have censored the run as stalled.
  const std::uint32_t k = 12;
  EngineConfig cfg;
  cfg.num_nodes = 4;
  cfg.num_blocks = k;
  cfg.departures = {{1, 2}, {1, 3}};
  cfg.stall_window = 4;
  cfg.stall_utilization = 0.4;
  DripScheduler sched(k);
  const RunResult r = run(cfg, sched);
  EXPECT_FALSE(r.stalled);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.completion_tick, k);
}

TEST(EngineChurn, DepartureOfFinishedNodeIsHarmlessToOthers) {
  const std::uint32_t n = 16, k = 8;
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  cfg.departures = {{500, 1}};  // long after everyone is done
  RandomizedScheduler sched(std::make_shared<CompleteOverlay>(n), {}, Rng(9));
  const RunResult r = run(cfg, sched);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.departed, 0u);  // run ended before the departure tick
}

}  // namespace
}  // namespace pob
