// A SplitStream-style striped multi-tree scheduler (§4 related work): the
// file is striped across `stripes` interior-disjoint distribution trees.
// Clients are partitioned into `stripes` groups; stripe j's tree uses group
// j's members as its interior (arranged as a binary tree fed by the server)
// and every other client as a leaf, so each client is interior in exactly
// one tree — SplitStream's "every node forwards in exactly one stripe"
// property, which bounds per-node upload load. A node may receive from up
// to `stripes` trees in one tick, so run it with download capacity >=
// stripes (SplitStream's inbound-bandwidth assumption).
//
// With homogeneous bandwidth the expected completion is roughly
// (1 + leaves/(2 + leaves)) adjustments around k * (fanout/stripes) plus a
// depth term — the paper cites it as near-optimal at k + Θ(stripes * log n)
// when bandwidths are homogeneous, and our simulation measures the exact
// schedule. The point of including it: the paper argues simple randomized
// swarms make this machinery unnecessary in the static cooperative case.

#pragma once

#include <vector>

#include "pob/core/scheduler.h"

namespace pob {

class StripedTreesScheduler final : public Scheduler {
 public:
  StripedTreesScheduler(std::uint32_t num_nodes, std::uint32_t num_blocks,
                        std::uint32_t stripes);

  std::string_view name() const override { return "striped-trees"; }
  void plan_tick(Tick tick, const SwarmState& state, std::vector<Transfer>& out) override;

  std::uint32_t stripes() const { return stripes_; }

 private:
  struct NodeDuty {
    // Forwarding targets for the one stripe this node is interior in, in
    // send order: interior children first (pipelining the stripe onward),
    // then attached leaves.
    std::vector<NodeId> targets;
    std::uint32_t stripe = 0;
    // Cursor: next (stripe-block index, target index) to send.
    std::uint32_t block_idx = 0;
    std::uint32_t target_idx = 0;
  };

  std::uint32_t n_;
  std::uint32_t k_;
  std::uint32_t stripes_;
  std::vector<std::vector<BlockId>> stripe_blocks_;  // stripe -> its block ids
  std::vector<NodeDuty> duty_;                       // per client (index = node)
  // Server state: per stripe, next block index to inject and the tree root.
  std::vector<std::uint32_t> server_next_;
  std::vector<NodeId> root_;
  std::uint32_t server_cursor_ = 0;  // round-robin over stripes
};

}  // namespace pob
