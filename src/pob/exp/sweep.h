// Repeated-trial runner: executes a randomized experiment `runs` times with
// per-run derived seeds and aggregates completion statistics, with explicit
// censoring support for runs that hit the tick cap (Figures 6-7's "off the
// charts" region).

#pragma once

#include <functional>
#include <span>
#include <string>

#include "pob/analysis/stats.h"

namespace pob {

struct TrialOutcome {
  bool completed = false;
  double completion = 0.0;       ///< T in ticks (valid when completed)
  double mean_completion = 0.0;  ///< mean client finish tick (valid when completed)
};

struct TrialStats {
  Summary completion;       ///< over completed runs only
  Summary mean_completion;  ///< over completed runs only
  std::uint32_t runs = 0;
  std::uint32_t censored = 0;  ///< runs that hit the tick cap

  bool all_censored() const { return runs > 0 && censored == runs; }
};

/// Aggregates outcomes listed in trial-index order. Both the serial and the
/// parallel runner funnel through this, which is what makes their TrialStats
/// bit-identical: the floating-point reductions see the same values in the
/// same order regardless of execution schedule.
TrialStats aggregate_trials(std::span<const TrialOutcome> outcomes);

/// Runs `trial(run_index)` `runs` times serially and aggregates. For the
/// multi-threaded equivalent see repeat_trials_parallel (pob/exp/parallel.h).
TrialStats repeat_trials(std::uint32_t runs,
                         const std::function<TrialOutcome(std::uint32_t)>& trial);

/// Renders the completion column: "mean +- ci" or ">cap (censored)".
std::string completion_cell(const TrialStats& stats, double cap, int precision = 1);

}  // namespace pob
