// Scenario: a flash crowd with churn. A popular file hits a swarm of
// impatient clients — a fraction of them give up and leave mid-download
// (failure injection), and the engine models their connections breaking.
// The randomized swarm absorbs the churn; the optimal-but-rigid binomial
// pipeline strands everyone downstream of a departed relay (the paper's
// §2.4 argument for randomized designs, made runnable).
//
//   $ ./flash_crowd [--clients=300] [--blocks=200] [--leave-pct=20] [--seed=7]

#include <iostream>
#include <memory>

#include "pob/analysis/bounds.h"
#include "pob/core/engine.h"
#include "pob/exp/cli.h"
#include "pob/exp/table.h"
#include "pob/overlay/builders.h"
#include "pob/rand/randomized.h"
#include "pob/sched/binomial_pipeline.h"

int main(int argc, char** argv) {
  const pob::Args args(argc, argv);
  const auto clients = static_cast<std::uint32_t>(args.get_int("clients", 300));
  const auto k = static_cast<std::uint32_t>(args.get_int("blocks", 200));
  const double leave = args.get_double("leave-pct", 20.0) / 100.0;
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  const std::uint32_t n = clients + 1;

  // Random clients leave at random ticks in the first half of the nominal
  // schedule.
  pob::Rng churn_rng(seed);
  std::vector<pob::NodeId> order(clients);
  for (pob::NodeId c = 1; c <= clients; ++c) order[c - 1] = c;
  churn_rng.shuffle(order);
  std::vector<std::pair<pob::Tick, pob::NodeId>> departures;
  const auto leavers = static_cast<std::uint32_t>(leave * clients);
  const pob::Tick horizon = (k + pob::ceil_log2(n)) / 2 + 1;
  for (std::uint32_t i = 0; i < leavers; ++i) {
    departures.push_back({1 + churn_rng.below(horizon), order[i]});
  }

  std::cout << "flash crowd: " << clients << " clients, " << k << " blocks, "
            << leavers << " clients leave mid-download\n\n";

  pob::Table table({"algorithm", "completed", "departed", "survivors done", "T"});
  const auto report = [&](const std::string& name, const pob::RunResult& r) {
    std::uint32_t done = 0;
    for (const pob::Tick t : r.client_completion) done += t != 0;
    table.add_row({name, r.completed ? "yes" : "NO", std::to_string(r.departed),
                   std::to_string(done) + "/" + std::to_string(clients - r.departed),
                   r.completed ? std::to_string(r.completion_tick) : "-"});
  };

  pob::EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  cfg.departures = departures;
  cfg.drop_transfers_involving_inactive = true;  // broken connections drop
  cfg.max_ticks = 10 * pob::cooperative_lower_bound(n, k);
  cfg.stall_window = 200;

  {
    pob::RandomizedScheduler sched(std::make_shared<pob::CompleteOverlay>(n), {},
                                   pob::Rng(seed + 1));
    report("randomized swarm", pob::run(cfg, sched));
  }
  {
    pob::BinomialPipelineScheduler sched(n, k);
    report("binomial pipeline (rigid)", pob::run(cfg, sched));
  }

  table.print(std::cout);
  std::cout << "\noptimal without churn: " << pob::cooperative_lower_bound(n, k)
            << " ticks. The rigid hypercube schedule cannot re-route around\n"
               "departed relays; the randomized swarm re-matches peers every tick\n"
               "and finishes with only the churn's bandwidth loss as overhead.\n";
  return 0;
}
