#include "pob/check/scenario.h"

#include <algorithm>
#include <bit>
#include <sstream>

#include "pob/analysis/bounds.h"
#include "pob/core/rng.h"
#include "pob/exp/parallel.h"
#include "pob/overlay/builders.h"
#include "pob/rand/randomized.h"
#include "pob/rand/rotation.h"
#include "pob/rand/tit_for_tat.h"
#include "pob/sched/binomial_pipeline.h"
#include "pob/sched/binomial_tree.h"
#include "pob/sched/multi_server.h"
#include "pob/sched/multicast_tree.h"
#include "pob/sched/pipeline.h"
#include "pob/sched/riffle_pipeline.h"
#include "pob/sched/striped_trees.h"
#include "pob/check/stream_check.h"
#include "pob/flow/certify.h"
#include "pob/scale/engine.h"
#include "pob/scale/mirror.h"

namespace pob::check {
namespace {

constexpr std::uint32_t kMaxNodes = 64;
constexpr std::uint32_t kMaxBlocks = 48;
/// Scale scenarios get a far larger node budget: the point of the SoA engine
/// is n beyond what the per-node-object path is sized for, and the reference
/// oracle still replays these sizes in reasonable time.
constexpr std::uint32_t kMaxScaleNodes = 4096;

bool is_randomized_family(SchedulerKind kind) {
  return kind == SchedulerKind::kRandomized || kind == SchedulerKind::kCreditRandomized ||
         kind == SchedulerKind::kRotating || kind == SchedulerKind::kTitForTat;
}

bool may_have_churn(SchedulerKind kind) {
  return is_randomized_family(kind) || kind == SchedulerKind::kPipeline ||
         kind == SchedulerKind::kBinomialPipeline;
}

/// Appends a same-tick forward of the first planned transfer's block — the
/// deliberately broken scheduler of FaultKind::kSameTickForward.
class FaultyScheduler final : public Scheduler {
 public:
  FaultyScheduler(Scheduler& inner, std::uint32_t num_nodes)
      : inner_(&inner), n_(num_nodes) {}

  std::string_view name() const override { return "faulty"; }

  void plan_tick(Tick tick, const SwarmState& state, std::vector<Transfer>& out) override {
    const std::size_t before = out.size();
    inner_->plan_tick(tick, state, out);
    if (out.size() == before) return;
    const Transfer first = out[before];
    // The receiver forwards the block it is only now being sent. With no
    // third node to forward to, bounce it back to the sender (equally
    // illegal: the sender already holds it).
    NodeId target = first.from;
    for (NodeId w = 0; w < n_; ++w) {
      if (w != first.from && w != first.to) {
        target = w;
        break;
      }
    }
    out.push_back({first.to, target, first.block});
  }

 private:
  Scheduler* inner_;
  std::uint32_t n_;
};

}  // namespace

const char* to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kPipeline: return "pipeline";
    case SchedulerKind::kMulticastTree: return "multicast-tree";
    case SchedulerKind::kBinomialTree: return "binomial-tree";
    case SchedulerKind::kBinomialPipeline: return "binomial-pipeline";
    case SchedulerKind::kRiffle: return "riffle";
    case SchedulerKind::kStripedTrees: return "striped-trees";
    case SchedulerKind::kMultiServer: return "multi-server";
    case SchedulerKind::kRandomized: return "randomized";
    case SchedulerKind::kCreditRandomized: return "credit-randomized";
    case SchedulerKind::kRotating: return "rotating";
    case SchedulerKind::kTitForTat: return "tit-for-tat";
  }
  return "?";
}

const char* to_string(OverlayKind kind) {
  switch (kind) {
    case OverlayKind::kComplete: return "complete";
    case OverlayKind::kRegular: return "regular";
    case OverlayKind::kHypercube: return "hypercube";
    case OverlayKind::kRing: return "ring";
    case OverlayKind::kKaryTree: return "karytree";
  }
  return "?";
}

const char* to_string(EngineKind kind) {
  switch (kind) {
    case EngineKind::kCore: return "core";
    case EngineKind::kScale: return "scale";
  }
  return "?";
}

EngineConfig Scenario::to_config() const {
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  cfg.upload_capacity = upload;
  cfg.download_capacity = download;
  cfg.server_upload_capacity = server_upload;
  cfg.upload_capacities = upload_caps;
  cfg.download_capacities = download_caps;
  cfg.departures = departures;
  cfg.drop_transfers_involving_inactive = drop_on_churn;
  cfg.depart_on_complete = depart_on_complete;
  // Cut hopeless runs (disconnected overlays, churned-out pipelines) early
  // instead of spinning to the generous default tick cap. The deterministic
  // scale schedules are exempt: a sparse riffle tick moves O(n) blocks out
  // of O(n k) outstanding, far below the stall heuristic's utilization
  // floor, yet the schedule provably finishes at n + k - 2.
  cfg.stall_window = 64;
  if (engine == EngineKind::kScale && scheduler != SchedulerKind::kRandomized &&
      scheduler != SchedulerKind::kCreditRandomized) {
    cfg.stall_window = 0;
  }
  return cfg;
}

std::string Scenario::describe() const {
  std::ostringstream os;
  if (engine == EngineKind::kScale) os << "scale:";
  os << to_string(scheduler) << " n=" << n << " k=" << k << " u=" << upload << " d=";
  if (download == kUnlimited) {
    os << "inf";
  } else {
    os << download;
  }
  if (server_upload != 0) os << " su=" << server_upload;
  os << " mech=" << mechanism.describe();
  if (is_randomized_family(scheduler) && scheduler != SchedulerKind::kRotating) {
    os << " overlay=" << to_string(overlay);
    if (overlay == OverlayKind::kRegular) os << ":" << degree;
    if (overlay == OverlayKind::kKaryTree) os << ":" << arity;
  }
  switch (scheduler) {
    case SchedulerKind::kMulticastTree: os << " arity=" << arity; break;
    case SchedulerKind::kStripedTrees: os << " stripes=" << stripes; break;
    case SchedulerKind::kMultiServer: os << " servers=" << servers; break;
    case SchedulerKind::kRotating: os << " degree=" << degree << " period=" << period; break;
    default: break;
  }
  if (!upload_caps.empty()) os << " hetero-up";
  if (!download_caps.empty()) os << " hetero-down";
  if (!departures.empty()) {
    os << " depart=";
    for (std::size_t i = 0; i < departures.size(); ++i) {
      if (i != 0) os << ',';
      os << departures[i].first << ':' << departures[i].second;
    }
  }
  if (drop_on_churn) os << " drop";
  if (depart_on_complete) os << " depart-on-complete";
  if (stream) {
    os << " stream=" << scale::stream::arrival_pattern_name(arrival_pattern);
    if (playback_window != 0) os << " window=" << playback_window;
    os << " startup=" << startup_blocks << " ivl=" << playback_interval;
    if (hard_deadlines) os << " deadlines";
    if (rate_class_count != 0) os << " classes=" << rate_class_count;
    if (rate_changes != 0) os << " rate-churn=" << rate_changes;
  }
  if (fault == FaultKind::kSameTickForward) os << " FAULT=same-tick-forward";
  os << " seed=" << seed;
  return os.str();
}

std::string Scenario::to_gtest(const std::string& diagnosis) const {
  std::ostringstream os;
  os << "TEST(PobFuzzRepro, Seed" << seed << ") {\n";
  os << "  // " << describe() << "\n";
  if (!diagnosis.empty()) os << "  // failed with: " << diagnosis << "\n";
  os << "  using namespace pob::check;\n";
  os << "  Scenario sc;\n";
  os << "  sc.seed = " << seed << "ull;\n";
  if (engine == EngineKind::kScale) os << "  sc.engine = EngineKind::kScale;\n";
  os << "  sc.scheduler = SchedulerKind::k";
  switch (scheduler) {
    case SchedulerKind::kPipeline: os << "Pipeline"; break;
    case SchedulerKind::kMulticastTree: os << "MulticastTree"; break;
    case SchedulerKind::kBinomialTree: os << "BinomialTree"; break;
    case SchedulerKind::kBinomialPipeline: os << "BinomialPipeline"; break;
    case SchedulerKind::kRiffle: os << "Riffle"; break;
    case SchedulerKind::kStripedTrees: os << "StripedTrees"; break;
    case SchedulerKind::kMultiServer: os << "MultiServer"; break;
    case SchedulerKind::kRandomized: os << "Randomized"; break;
    case SchedulerKind::kCreditRandomized: os << "CreditRandomized"; break;
    case SchedulerKind::kRotating: os << "Rotating"; break;
    case SchedulerKind::kTitForTat: os << "TitForTat"; break;
  }
  os << ";\n";
  os << "  sc.overlay = OverlayKind::k";
  switch (overlay) {
    case OverlayKind::kComplete: os << "Complete"; break;
    case OverlayKind::kRegular: os << "Regular"; break;
    case OverlayKind::kHypercube: os << "Hypercube"; break;
    case OverlayKind::kRing: os << "Ring"; break;
    case OverlayKind::kKaryTree: os << "KaryTree"; break;
  }
  os << ";\n";
  os << "  sc.mechanism.kind = MechanismSpec::Kind::k";
  switch (mechanism.kind) {
    case MechanismSpec::Kind::kNone: os << "None"; break;
    case MechanismSpec::Kind::kStrictBarter: os << "StrictBarter"; break;
    case MechanismSpec::Kind::kCreditLimited: os << "CreditLimited"; break;
    case MechanismSpec::Kind::kCyclicBarter: os << "CyclicBarter"; break;
  }
  os << ";\n";
  os << "  sc.mechanism.credit_limit = " << mechanism.credit_limit << ";\n";
  os << "  sc.mechanism.max_cycle_len = " << mechanism.max_cycle_len << ";\n";
  os << "  sc.n = " << n << ";\n  sc.k = " << k << ";\n";
  os << "  sc.upload = " << upload << ";\n";
  if (download == kUnlimited) {
    os << "  sc.download = pob::kUnlimited;\n";
  } else {
    os << "  sc.download = " << download << ";\n";
  }
  os << "  sc.server_upload = " << server_upload << ";\n";
  os << "  sc.arity = " << arity << ";\n  sc.stripes = " << stripes << ";\n";
  os << "  sc.servers = " << servers << ";\n  sc.degree = " << degree << ";\n";
  os << "  sc.period = " << period << ";\n";
  if (!upload_caps.empty()) {
    os << "  sc.upload_caps = {";
    for (std::size_t i = 0; i < upload_caps.size(); ++i) {
      os << (i == 0 ? "" : ", ") << upload_caps[i];
    }
    os << "};\n";
  }
  if (!download_caps.empty()) {
    os << "  sc.download_caps = {";
    for (std::size_t i = 0; i < download_caps.size(); ++i) {
      if (i != 0) os << ", ";
      if (download_caps[i] == kUnlimited) {
        os << "pob::kUnlimited";
      } else {
        os << download_caps[i];
      }
    }
    os << "};\n";
  }
  for (const auto& [t, c] : departures) {
    os << "  sc.departures.push_back({" << t << ", " << c << "});\n";
  }
  os << "  sc.drop_on_churn = " << (drop_on_churn ? "true" : "false") << ";\n";
  os << "  sc.depart_on_complete = " << (depart_on_complete ? "true" : "false") << ";\n";
  if (stream) {
    os << "  sc.stream = true;\n";
    os << "  sc.arrival_pattern = pob::scale::stream::ArrivalPattern::k";
    switch (arrival_pattern) {
      case scale::stream::ArrivalPattern::kAllAtStart: os << "AllAtStart"; break;
      case scale::stream::ArrivalPattern::kPoisson: os << "Poisson"; break;
      case scale::stream::ArrivalPattern::kFlashCrowd: os << "FlashCrowd"; break;
      case scale::stream::ArrivalPattern::kBurst: os << "Burst"; break;
    }
    os << ";\n";
    os << "  sc.rate_class_count = " << rate_class_count << ";\n";
    os << "  sc.rate_changes = " << rate_changes << ";\n";
    os << "  sc.playback_window = " << playback_window << ";\n";
    os << "  sc.startup_blocks = " << startup_blocks << ";\n";
    os << "  sc.playback_interval = " << playback_interval << ";\n";
    os << "  sc.hard_deadlines = " << (hard_deadlines ? "true" : "false") << ";\n";
  }
  if (fault == FaultKind::kSameTickForward) {
    os << "  sc.fault = FaultKind::kSameTickForward;\n";
  }
  os << "  const ScenarioOutcome out = run_scenario(sc);\n";
  os << "  EXPECT_TRUE(out.ok) << out.diagnosis;\n";
  os << "}\n";
  return os.str();
}

void sanitize(Scenario& sc) {
  // The stream axis rides the scale engine's randomized protocol only, and
  // fault injection targets the core oracle path — a faulted scenario stays
  // a core scenario. This runs first so every rule below sees the final
  // (engine, scheduler) pair.
  if (sc.fault != FaultKind::kNone) sc.stream = false;
  if (sc.stream) {
    sc.engine = EngineKind::kScale;
    sc.scheduler = SchedulerKind::kRandomized;
  }
  // The scale engine implements the randomized cooperative protocol, its
  // credit-limited variant, and the deterministic mechanisms ported from
  // core: binomial pipeline, riffle pipeline, and triangular barter (the
  // latter encoded as kBinomialPipeline + CyclicBarter, since the §3.3
  // result is that the binomial schedule itself satisfies the 3-cycle
  // ledger). Everything else collapses to randomized so the churn /
  // heterogeneity rules below (keyed on kRandomized) apply unchanged.
  if (sc.engine == EngineKind::kScale &&
      sc.scheduler != SchedulerKind::kBinomialPipeline &&
      sc.scheduler != SchedulerKind::kRiffle) {
    sc.scheduler = SchedulerKind::kRandomized;
  }
  sc.n = std::clamp(sc.n, 2u,
                    sc.engine == EngineKind::kScale ? kMaxScaleNodes : kMaxNodes);
  sc.k = std::clamp(sc.k, 1u, kMaxBlocks);
  sc.upload = std::clamp(sc.upload, 1u, 2u);
  sc.arity = std::clamp(sc.arity, 2u, 4u);
  sc.period = std::clamp<Tick>(sc.period, 1, 32);
  sc.mechanism.credit_limit = std::clamp(sc.mechanism.credit_limit, 1u, 3u);
  sc.mechanism.max_cycle_len = std::clamp(sc.mechanism.max_cycle_len, 2u, 4u);

  // Deterministic schedules are materialized for unit capacities; the riffle
  // additionally takes (u, d) but the schedule builder is only exercised at
  // u = 1 here.
  if (!is_randomized_family(sc.scheduler)) sc.upload = 1;
  if (sc.download != kUnlimited && sc.download < sc.upload) sc.download = sc.upload;

  switch (sc.scheduler) {
    case SchedulerKind::kRiffle:
      // Theorem 3's schedule; d = 2u is the tight regime, d = u serializes.
      if (sc.download == kUnlimited || sc.download > 2 * sc.upload) {
        sc.download = 2 * sc.upload;
      }
      if (sc.mechanism.kind != MechanismSpec::Kind::kStrictBarter) {
        sc.mechanism.kind = MechanismSpec::Kind::kNone;
      }
      break;
    case SchedulerKind::kStripedTrees:
      sc.n = std::max(sc.n, 3u);
      sc.stripes = std::clamp(sc.stripes, 2u, std::min(4u, sc.n - 1));
      if (sc.download != kUnlimited) sc.download = std::max(sc.download, sc.stripes);
      sc.mechanism.kind = MechanismSpec::Kind::kNone;
      break;
    case SchedulerKind::kMultiServer:
      sc.n = std::max(sc.n, 3u);
      sc.servers = std::clamp(sc.servers, 2u, std::min(4u, sc.n - 1));
      sc.server_upload = sc.servers;
      sc.mechanism.kind = MechanismSpec::Kind::kNone;
      break;
    case SchedulerKind::kCreditRandomized:
      // The may_upload precheck only guarantees end-of-tick legality when
      // each client sends at most one block per tick.
      sc.upload = 1;
      if (sc.mechanism.kind != MechanismSpec::Kind::kCreditLimited &&
          sc.mechanism.kind != MechanismSpec::Kind::kCyclicBarter) {
        sc.mechanism.kind = MechanismSpec::Kind::kCreditLimited;
      }
      break;
    case SchedulerKind::kPipeline:
    case SchedulerKind::kMulticastTree:
    case SchedulerKind::kBinomialTree:
      sc.mechanism.kind = MechanismSpec::Kind::kNone;
      break;
    case SchedulerKind::kBinomialPipeline:
      // On the scale engine, CyclicBarter marks the triangular-barter
      // variant: the identical binomial schedule run under a live 3-cycle
      // ledger. Everywhere else the schedule is purely cooperative.
      if (sc.engine == EngineKind::kScale &&
          sc.mechanism.kind == MechanismSpec::Kind::kCyclicBarter) {
        sc.mechanism.max_cycle_len = 3;
      } else {
        sc.mechanism.kind = MechanismSpec::Kind::kNone;
      }
      break;
    case SchedulerKind::kRandomized:
      if (sc.engine == EngineKind::kScale) {
        // The scale planner prechecks its own §3.2 credit predicate, so it
        // may run under CreditLimited; the other mechanisms it does not model.
        if (sc.mechanism.kind != MechanismSpec::Kind::kCreditLimited) {
          sc.mechanism.kind = MechanismSpec::Kind::kNone;
        }
      } else {
        sc.mechanism.kind = MechanismSpec::Kind::kNone;
      }
      break;
    case SchedulerKind::kRotating:
    case SchedulerKind::kTitForTat:
      sc.mechanism.kind = MechanismSpec::Kind::kNone;
      break;
  }
  if (sc.scheduler != SchedulerKind::kMultiServer) {
    sc.server_upload = std::min(sc.server_upload, 2u);
  }

  // Heterogeneous capacities: plain randomized only (the scheduler options
  // must mirror the config, and only RandomizedOptions carries the vectors).
  if (sc.scheduler != SchedulerKind::kRandomized) {
    sc.upload_caps.clear();
    sc.download_caps.clear();
  }
  if (!sc.upload_caps.empty()) {
    sc.upload_caps.resize(sc.n, 1);
    for (auto& c : sc.upload_caps) c = std::clamp(c, 1u, 3u);
  }
  if (!sc.upload_caps.empty() && sc.download_caps.empty() && sc.download != kUnlimited) {
    // A limited scalar download under heterogeneous uploads would violate
    // d >= u wherever the node's upload exceeds it; materialize per-node
    // downloads so the fixup below can raise them.
    sc.download_caps.assign(sc.n, sc.download);
  }
  if (!sc.download_caps.empty()) {
    sc.download_caps.resize(sc.n, kUnlimited);
    const auto up_of = [&](std::size_t i) {
      return sc.upload_caps.empty() ? sc.upload : sc.upload_caps[i];
    };
    for (std::size_t i = 0; i < sc.download_caps.size(); ++i) {
      if (sc.download_caps[i] != kUnlimited) {
        sc.download_caps[i] = std::max(sc.download_caps[i], up_of(i));
      }
    }
  }

  if (sc.overlay == OverlayKind::kRing && sc.n < 3) sc.overlay = OverlayKind::kComplete;

  // Regular-graph degree (used by the regular overlay and by rotation):
  // make_random_regular needs degree < n with degree * n even.
  {
    const std::uint32_t hi = sc.n - 1;
    sc.degree = std::clamp(sc.degree, std::min(2u, hi), hi);
    if (sc.degree % 2 != 0 && sc.n % 2 != 0) {
      // n odd forces even degree; hi = n - 1 is even, so the odd degree is
      // strictly below it and bumping up stays in range.
      sc.degree = sc.degree < hi ? sc.degree + 1 : sc.degree - 1;
    }
  }

  // Churn: only schedulers whose interplay with lossy drop mode is defined
  // (randomized family reads live state; pipelines are the drop-forgiveness
  // regression family). Any timed departure forces drop mode — rigid
  // schedules keep naming departed nodes, and that must be lossy, not fatal.
  if (!may_have_churn(sc.scheduler)) {
    sc.departures.clear();
    sc.depart_on_complete = false;
  }
  if (sc.departures.size() > 3) sc.departures.resize(3);
  for (auto& [t, c] : sc.departures) {
    if (t < 1 || t > 40) t = 1 + t % 40;
    if (c < 1 || c >= sc.n) c = 1 + c % (sc.n - 1);
  }
  if (sc.depart_on_complete && sc.scheduler != SchedulerKind::kRandomized) {
    sc.depart_on_complete = false;
  }
  sc.drop_on_churn = !sc.departures.empty() || sc.depart_on_complete;

  // Deterministic scale schedules are pure index arithmetic on power-of-two
  // hypercubes with unit uniform capacities and no churn; snap every axis
  // into that space (the scale engine hard-rejects anything outside it).
  // This runs last because the churn section above would otherwise re-admit
  // departures for kBinomialPipeline.
  if (sc.engine == EngineKind::kScale && !is_randomized_family(sc.scheduler)) {
    if (sc.scheduler == SchedulerKind::kRiffle) {
      // The reference oracle replays all T = n + k - 2 ticks; cap n so the
      // mirrored run stays affordable.
      sc.n = std::min(sc.n, 512u);
    }
    sc.n = std::bit_floor(sc.n);
    sc.upload = 1;
    sc.server_upload = std::min(sc.server_upload, 1u);
    sc.upload_caps.clear();
    sc.download_caps.clear();
    sc.departures.clear();
    sc.depart_on_complete = false;
    sc.drop_on_churn = false;
    if (sc.scheduler == SchedulerKind::kRiffle) {
      // Strict barter on the complete graph; d = 2 because a server
      // hand-off may land on a client that is bartering the same tick.
      sc.overlay = OverlayKind::kComplete;
      sc.download = 2;
      sc.mechanism.kind = MechanismSpec::Kind::kStrictBarter;
    } else if (sc.overlay != OverlayKind::kComplete) {
      sc.overlay = OverlayKind::kHypercube;
    }
  }

  // Stream clamps (sc.engine/scheduler were already coerced above). The
  // async mirror replays every recorded transfer through pob/async, so keep
  // the file small; arrivals replace config departures outright, and rate
  // classes replace the static heterogeneous cap vectors.
  if (sc.stream) {
    sc.k = std::min(sc.k, 24u);
    sc.departures.clear();
    sc.depart_on_complete = false;
    sc.drop_on_churn = false;
    if (sc.rate_class_count != 0) {
      sc.rate_class_count = std::clamp(sc.rate_class_count, 2u, 3u);
      sc.upload_caps.clear();
      sc.download_caps.clear();
    }
    if (sc.rate_class_count == 0) {
      sc.rate_changes = 0;  // kRate events need classes to draw from
    } else {
      sc.rate_changes = std::min(sc.rate_changes, 8u);
    }
    sc.startup_blocks = std::clamp(sc.startup_blocks, 1u, sc.k);
    sc.playback_interval = std::clamp<Tick>(sc.playback_interval, 1, 4);
    if (sc.playback_window != 0) {
      sc.playback_window = std::clamp(sc.playback_window, 1u, sc.k);
    }
  }
}

Scenario sample_scenario(std::uint64_t base_seed, std::uint32_t index) {
  Rng rng(trial_seed(base_seed, index));
  Scenario sc;
  sc.seed = rng.next();
  constexpr SchedulerKind kKinds[] = {
      SchedulerKind::kPipeline,       SchedulerKind::kMulticastTree,
      SchedulerKind::kBinomialTree,   SchedulerKind::kBinomialPipeline,
      SchedulerKind::kRiffle,         SchedulerKind::kStripedTrees,
      SchedulerKind::kMultiServer,    SchedulerKind::kRandomized,
      SchedulerKind::kRandomized,     SchedulerKind::kRandomized,
      SchedulerKind::kCreditRandomized, SchedulerKind::kCreditRandomized,
      SchedulerKind::kRotating,       SchedulerKind::kTitForTat,
  };
  sc.scheduler = kKinds[rng.below(static_cast<std::uint32_t>(std::size(kKinds)))];
  constexpr OverlayKind kOverlays[] = {
      OverlayKind::kComplete, OverlayKind::kComplete, OverlayKind::kRegular,
      OverlayKind::kHypercube, OverlayKind::kRing, OverlayKind::kKaryTree,
  };
  sc.overlay = kOverlays[rng.below(static_cast<std::uint32_t>(std::size(kOverlays)))];
  sc.n = 2 + rng.below(kMaxNodes - 1);
  sc.k = 1 + rng.below(kMaxBlocks);
  sc.upload = 1 + rng.below(2);
  switch (rng.below(3)) {  // d in {u, 2u, inf}
    case 0: sc.download = sc.upload; break;
    case 1: sc.download = 2 * sc.upload; break;
    default: sc.download = kUnlimited; break;
  }
  sc.server_upload = rng.below(4) == 0 ? 2 : 0;
  sc.arity = 2 + rng.below(3);
  sc.stripes = 2 + rng.below(3);
  sc.servers = 2 + rng.below(3);
  sc.degree = 3 + rng.below(8);
  sc.period = 2 + rng.below(16);
  switch (rng.below(3)) {
    case 0:
      sc.mechanism.kind = MechanismSpec::Kind::kCreditLimited;
      break;
    case 1:
      sc.mechanism.kind = MechanismSpec::Kind::kCyclicBarter;
      break;
    default:
      sc.mechanism.kind = sc.scheduler == SchedulerKind::kRiffle
                              ? MechanismSpec::Kind::kStrictBarter
                              : MechanismSpec::Kind::kNone;
      break;
  }
  sc.mechanism.credit_limit = 1 + rng.below(3);
  sc.mechanism.max_cycle_len = 3 + rng.below(2);
  if (sc.scheduler == SchedulerKind::kRandomized && rng.below(3) == 0) {
    sc.upload_caps.resize(sc.n);
    for (auto& c : sc.upload_caps) c = 1 + rng.below(3);
    if (rng.below(2) == 0) {
      sc.download_caps.resize(sc.n);
      for (std::size_t i = 0; i < sc.n; ++i) {
        sc.download_caps[i] =
            rng.below(2) == 0 ? kUnlimited : sc.upload_caps[i] + rng.below(2);
      }
    }
  }
  if (may_have_churn(sc.scheduler) && rng.below(3) == 0) {
    const std::uint32_t count = 1 + rng.below(3);
    for (std::uint32_t i = 0; i < count; ++i) {
      sc.departures.emplace_back(1 + rng.below(40), 1 + rng.below(sc.n - 1));
    }
  }
  if (sc.scheduler == SchedulerKind::kRandomized && rng.below(8) == 0) {
    sc.depart_on_complete = true;
  }
  // The engine axis, drawn last so the scenario stream for the fields above
  // is unchanged: ~1 in 4 scenarios run on the scale engine (sanitize then
  // coerces them into its protocol family), and some of those leave the core
  // sampler's node range entirely.
  if (rng.below(4) == 0) {
    sc.engine = EngineKind::kScale;
    if (rng.below(8) == 0) sc.n = kMaxNodes + 1 + rng.below(960);
    // Half the scale draws run a deterministic mechanism ported from core;
    // sanitize snaps n to a power of two and clears churn for those.
    switch (rng.below(6)) {
      case 0:
        sc.scheduler = SchedulerKind::kBinomialPipeline;
        sc.mechanism.kind = MechanismSpec::Kind::kNone;
        break;
      case 1:  // triangular barter: the binomial schedule + 3-cycle ledger
        sc.scheduler = SchedulerKind::kBinomialPipeline;
        sc.mechanism.kind = MechanismSpec::Kind::kCyclicBarter;
        break;
      case 2:
        sc.scheduler = SchedulerKind::kRiffle;
        break;
      default:
        break;  // the randomized family, as sanitize coerces
    }
    // A third of the randomized scale draws become stream scenarios: the
    // hybrid tick+event driver, mirrored through pob/async at these sizes.
    // The mirror's replay is O(transfers), so the stream sampler stays well
    // under the scale cap (sanitize admits up to kMaxScaleNodes for
    // hand-written repros).
    if (sc.scheduler == SchedulerKind::kRandomized && rng.below(3) == 0) {
      sc.stream = true;
      sc.n = 4 + rng.below(509);
      constexpr scale::stream::ArrivalPattern kPatterns[] = {
          scale::stream::ArrivalPattern::kAllAtStart,
          scale::stream::ArrivalPattern::kPoisson,
          scale::stream::ArrivalPattern::kFlashCrowd,
          scale::stream::ArrivalPattern::kBurst,
      };
      sc.arrival_pattern =
          kPatterns[rng.below(static_cast<std::uint32_t>(std::size(kPatterns)))];
      sc.rate_class_count = rng.below(2) == 0 ? 0 : 2 + rng.below(2);
      sc.rate_changes = sc.rate_class_count == 0 ? 0 : rng.below(9);
      sc.playback_window = rng.below(2) == 0 ? 0 : 1 + rng.below(8);
      sc.startup_blocks = 1 + rng.below(4);
      sc.playback_interval = 1 + rng.below(2);
      sc.hard_deadlines = rng.below(2) == 0;
    }
  }
  sanitize(sc);
  return sc;
}

BuiltScenario build_scenario(const Scenario& sc) {
  BuiltScenario built;
  built.config = sc.to_config();
  Rng rng(sc.seed);

  if (is_randomized_family(sc.scheduler) && sc.scheduler != SchedulerKind::kRotating) {
    Rng overlay_rng = rng.split(0);
    switch (sc.overlay) {
      case OverlayKind::kComplete:
        built.overlay = std::make_shared<CompleteOverlay>(sc.n);
        break;
      case OverlayKind::kRegular:
        built.overlay = std::make_shared<GraphOverlay>(
            make_random_regular(sc.n, sc.degree, overlay_rng));
        break;
      case OverlayKind::kHypercube:
        built.overlay = std::make_shared<GraphOverlay>(make_hypercube_overlay(sc.n));
        break;
      case OverlayKind::kRing:
        built.overlay = std::make_shared<GraphOverlay>(make_ring(sc.n));
        break;
      case OverlayKind::kKaryTree:
        built.overlay =
            std::make_shared<GraphOverlay>(make_kary_tree(sc.n, sc.arity));
        break;
    }
  }

  RandomizedOptions opt;
  opt.upload_capacity = sc.upload;
  opt.download_capacity = sc.download;
  opt.upload_capacities = sc.upload_caps;
  opt.download_capacities = sc.download_caps;
  opt.policy = sc.seed % 2 == 0 ? BlockPolicy::kRandom : BlockPolicy::kRarestFirst;

  switch (sc.scheduler) {
    case SchedulerKind::kPipeline:
      built.scheduler = std::make_unique<PipelineScheduler>(sc.n, sc.k);
      break;
    case SchedulerKind::kMulticastTree:
      built.scheduler = std::make_unique<MulticastTreeScheduler>(sc.n, sc.k, sc.arity);
      break;
    case SchedulerKind::kBinomialTree:
      built.scheduler = std::make_unique<BinomialTreeScheduler>(sc.n, sc.k);
      break;
    case SchedulerKind::kBinomialPipeline:
      built.scheduler = std::make_unique<BinomialPipelineScheduler>(sc.n, sc.k);
      break;
    case SchedulerKind::kRiffle:
      built.scheduler = std::make_unique<RifflePipelineScheduler>(
          sc.n, sc.k, sc.upload,
          sc.download == kUnlimited ? 2 * sc.upload : sc.download);
      break;
    case SchedulerKind::kStripedTrees:
      built.scheduler = std::make_unique<StripedTreesScheduler>(sc.n, sc.k, sc.stripes);
      break;
    case SchedulerKind::kMultiServer:
      built.scheduler = std::make_unique<MultiServerScheduler>(sc.n, sc.k, sc.servers);
      break;
    case SchedulerKind::kRandomized:
      built.scheduler =
          std::make_unique<RandomizedScheduler>(built.overlay, opt, rng.split(1));
      break;
    case SchedulerKind::kCreditRandomized:
      built.mechanism = make_mechanism(sc.mechanism);
      built.scheduler = std::make_unique<RandomizedScheduler>(
          built.overlay, opt, rng.split(1), built.mechanism.get());
      break;
    case SchedulerKind::kRotating:
      built.scheduler = std::make_unique<RotatingRandomizedScheduler>(
          sc.n, sc.degree, sc.period, opt, rng.split(1));
      break;
    case SchedulerKind::kTitForTat: {
      TitForTatOptions tft;
      tft.upload_capacity = sc.upload;
      tft.download_capacity = sc.download;
      built.scheduler =
          std::make_unique<TitForTatScheduler>(built.overlay, tft, rng.split(1));
      break;
    }
  }
  if (built.mechanism == nullptr) built.mechanism = make_mechanism(sc.mechanism);
  return built;
}

/// Mirrors build_scenario's overlay switch (same seed-derived rng stream)
/// but produces the CSR form the scale engine consumes. The complete graph
/// never materializes — that is the point at mega-swarm sizes.
std::shared_ptr<const scale::Topology> make_scale_topology(const Scenario& sc) {
  Rng rng(sc.seed);
  Rng overlay_rng = rng.split(0);
  switch (sc.overlay) {
    case OverlayKind::kComplete:
      return std::make_shared<scale::Topology>(scale::Topology::complete(sc.n));
    case OverlayKind::kRegular:
      return std::make_shared<scale::Topology>(scale::Topology::from_graph(
          make_random_regular(sc.n, sc.degree, overlay_rng)));
    case OverlayKind::kHypercube:
      return std::make_shared<scale::Topology>(
          scale::Topology::from_graph(make_hypercube_overlay(sc.n)));
    case OverlayKind::kRing:
      return std::make_shared<scale::Topology>(
          scale::Topology::from_graph(make_ring(sc.n)));
    case OverlayKind::kKaryTree:
      return std::make_shared<scale::Topology>(
          scale::Topology::from_graph(make_kary_tree(sc.n, sc.arity)));
  }
  return nullptr;  // unreachable
}

scale::ScaleOptions make_scale_options(const Scenario& sc) {
  scale::ScaleOptions opt;
  opt.policy = sc.seed % 2 == 0 ? BlockPolicy::kRandom : BlockPolicy::kRarestFirst;
  switch (sc.scheduler) {
    case SchedulerKind::kBinomialPipeline:
      if (sc.mechanism.kind == MechanismSpec::Kind::kCyclicBarter) {
        opt.scheduler = scale::SchedKind::kTriangularBarter;
        opt.credit_limit = sc.mechanism.credit_limit;
      } else {
        opt.scheduler = scale::SchedKind::kBinomialPipeline;
      }
      break;
    case SchedulerKind::kRiffle:
      opt.scheduler = scale::SchedKind::kRifflePipeline;
      break;
    default:
      if (sc.mechanism.kind == MechanismSpec::Kind::kCreditLimited) {
        opt.credit_limit = sc.mechanism.credit_limit;
      }
      break;
  }
  // Vary the planner's knobs off their defaults: tiny shard sizes put shard
  // boundaries mid-swarm (the jobs-determinism hazard), and small probe
  // budgets exercise the give-up path.
  opt.max_probes = 2 + static_cast<std::uint32_t>((sc.seed >> 8) % 23);
  opt.shard_nodes = 1 + static_cast<std::uint32_t>((sc.seed >> 16) % 48);
  // Half the scenarios run with phase timing collection on: the clock reads
  // must never perturb the stream (jobs=1 vs jobs=4 digests still compare).
  opt.collect_phase_timings = ((sc.seed >> 40) & 1) != 0;
  // Half start from the scalar reference scan kernel; run_scale_scenario
  // additionally re-runs every scenario under the flipped kernel and
  // requires the identical stream, so the fuzzer sweeps the SIMD/summary/
  // cache fast paths against the plain one-word loop on every shape it
  // visits.
  opt.scan_kernel = ((sc.seed >> 41) & 1) != 0 ? scale::ScanKernel::kScalar
                                               : scale::ScanKernel::kAuto;
  return opt;
}

scale::stream::StreamSpec make_stream_spec(const Scenario& sc) {
  scale::stream::StreamSpec spec;
  spec.config = sc.to_config();
  spec.topology = make_scale_topology(sc);
  spec.options = make_scale_options(sc);
  spec.seed = sc.seed;

  scale::stream::StreamWorkload& wl = spec.workload;
  wl.arrivals = sc.arrival_pattern;
  // Pattern parameters are seed-derived (pure, like the planner knobs in
  // make_scale_options) and kept tight so sampled runs resolve in tens of
  // ticks: sub-tick to multi-tick Poisson gaps, a spike inside the first
  // dozen ticks, cohorts of a handful to ~100 clients.
  wl.mean_gap16 = 4 + static_cast<std::uint32_t>((sc.seed >> 4) % 29);
  wl.flash_start = 2 + static_cast<Tick>((sc.seed >> 9) % 7);
  wl.flash_width = 1 + static_cast<std::uint32_t>((sc.seed >> 12) % 6);
  wl.flash_pct = 50 + static_cast<std::uint32_t>((sc.seed >> 15) % 51);
  wl.burst_period = 1 + static_cast<std::uint32_t>((sc.seed >> 21) % 6);
  wl.burst_size = 4 + static_cast<std::uint32_t>((sc.seed >> 24) % 97);
  for (std::uint32_t i = 0; i < sc.rate_class_count; ++i) {
    scale::stream::RateClass cls;
    cls.weight = 1 + i;
    cls.up = 1 + i;
    // down >= up always holds (the model rule build_workload enforces);
    // the first class keeps unlimited download like the scalar default.
    cls.down = i == 0 ? kUnlimited : 2 * (1 + i);
    wl.rate_classes.push_back(cls);
  }
  wl.rate_changes = sc.rate_changes;
  wl.rate_change_horizon = 32;

  spec.demand.window = sc.playback_window;
  spec.demand.startup_blocks = sc.startup_blocks;
  spec.demand.interval = sc.playback_interval;
  spec.demand.deadlines = sc.hard_deadlines;
  spec.demand.deadline_slack = 2;
  return spec;
}

namespace {

/// The certificate soundness axis: a completed run's completion tick must
/// never undercut the flow/counting certificate (pob/flow) for its scenario
/// — T* <= T is the oracle's contract on every topology, capacity shape,
/// churn pattern, and mechanism family the fuzzer samples. Violations fail
/// the scenario and therefore minimize to a paste-ready gtest like every
/// other axis. Only the strict-barter mechanism certifies against the
/// barter-coupled model; credit and cyclic barter permit client seeding, so
/// they (soundly) certify against the cooperative relaxation.
ScenarioOutcome check_certificate_soundness(const Scenario& sc,
                                            const EngineConfig& config,
                                            const scale::Topology& topology,
                                            const RunResult& r) {
  if (!r.completed) return {true, ""};
  const flow::BarterModel model =
      sc.mechanism.kind == MechanismSpec::Kind::kStrictBarter
          ? flow::BarterModel::kStrictBarter
          : flow::BarterModel::kCooperative;
  // Fuzz-tier options: the counting components always run; the flow search
  // stays cheap enough to keep scenario throughput up.
  flow::CertifyOptions opts;
  opts.max_flow_sinks = 2;
  opts.flow_arc_budget = 250'000;
  const flow::CompletionCertificate cert =
      flow::certify_completion_bound(config, topology, model, opts);
  if (cert.lower_bound > r.completion_tick) {
    std::ostringstream os;
    os << "completion tick " << r.completion_tick
       << " beats the certified lower bound " << cert.lower_bound
       << " (last_block " << cert.last_block_bound << ", ramp " << cert.ramp_bound
       << ", pipe " << cert.pipe_bound << " @" << cert.pipe_client << ", flow "
       << cert.flow_bound << ", seed " << cert.seed_bound << ", strict_ramp "
       << cert.strict_ramp_bound << "; demand " << cert.demand_clients << ")";
    return {false, os.str()};
  }
  return {true, ""};
}

/// The scale-engine scenario check: the engine must agree with itself across
/// job counts, and its mirrored transfer stream must be accepted by
/// core::Engine + mechanism + reference oracle and reproduce the identical
/// RunResult — bookkeeping divergence is as much a bug as an illegal stream.
ScenarioOutcome run_scale_scenario(const Scenario& sc) {
  EngineConfig config = sc.to_config();
  config.record_trace = true;  // compare full transfer streams, not summaries

  const std::shared_ptr<const scale::Topology> topo = make_scale_topology(sc);
  const scale::ScaleOptions opt = make_scale_options(sc);

  scale::Engine serial(config, topo, opt, sc.seed);
  const RunResult r_serial = serial.run(1);
  scale::Engine threaded(config, topo, opt, sc.seed);
  const RunResult r_threaded = threaded.run(4);
  if (const std::string d = diff_run_results(r_serial, r_threaded); !d.empty()) {
    return {false, "scale engine diverges between jobs=1 and jobs=4: " + d};
  }

  // The scan-kernel axis: the vectorized/summary-guided scan and the scalar
  // reference loop must emit the identical stream on every sampled shape.
  scale::ScaleOptions flipped = opt;
  flipped.scan_kernel = opt.scan_kernel == scale::ScanKernel::kScalar
                            ? scale::ScanKernel::kAuto
                            : scale::ScanKernel::kScalar;
  scale::Engine other_kernel(config, topo, flipped, sc.seed);
  const RunResult r_other = other_kernel.run(1);
  if (const std::string d = diff_run_results(r_serial, r_other); !d.empty()) {
    return {false, std::string("scale engine diverges between scan kernels (") +
                       scale::scan_kernel_name(opt.scan_kernel) + " vs " +
                       scale::scan_kernel_name(flipped.scan_kernel) + "): " + d};
  }

  auto mirrored = std::make_unique<scale::Engine>(config, topo, opt, sc.seed);
  scale::MirrorScheduler mirror(std::move(mirrored));
  Scheduler* scheduler = &mirror;
  FaultyScheduler faulty(mirror, sc.n);
  if (sc.fault == FaultKind::kSameTickForward) scheduler = &faulty;

  const OracleReport report = differential_check(config, *scheduler, sc.mechanism);
  if (!report.ok) {
    return {false, "oracle disagreement (scale mirror): " + report.diagnosis};
  }
  if (report.violated) {
    return {false, "scale stream rejected by both engines: " + report.violation_message};
  }
  if (const std::string d = diff_run_results(r_serial, report.fast); !d.empty()) {
    return {false, "scale engine vs mirrored core run diverge: " + d};
  }

  // Theorem 1: the scale engine is still a cooperative schedule; with unit
  // capacities it cannot beat k - 1 + ceil(log2 n).
  const bool uniform_unit =
      sc.upload == 1 && sc.server_upload <= 1 && sc.upload_caps.empty();
  if (r_serial.completed && uniform_unit && sc.departures.empty()) {
    const Tick bound = cooperative_lower_bound(sc.n, sc.k);
    if (r_serial.completion_tick < bound) {
      return {false, "beats Theorem 1: completed at tick " +
                         std::to_string(r_serial.completion_tick) +
                         " < lower bound " + std::to_string(bound)};
    }
  }

  // Certificate soundness, plus the per-tick flow predicate as a second,
  // flow-flavored differential oracle over the recorded stream: every tick
  // both engines accepted must route in the bipartite capacity network.
  if (const ScenarioOutcome cert =
          check_certificate_soundness(sc, config, *topo, r_serial);
      !cert.ok) {
    return cert;
  }
  if (sc.n <= 256) {
    const flow::CapacityShape shape = flow::CapacityShape::from_config(config);
    for (std::size_t t = 0; t < r_serial.trace.size(); ++t) {
      if (const auto diag = flow::tick_flow_feasible(shape, *topo, r_serial.trace[t])) {
        return {false, "tick " + std::to_string(t + 1) +
                           " rejected by the flow predicate: " + *diag};
      }
    }
  }

  // Closed forms for the ported deterministic schedules. The binomial
  // pipeline (and its triangular-barter variant, which runs the identical
  // schedule under the 3-cycle ledger) achieves Theorem 1's bound exactly
  // at power-of-two n; the riffle must match the core scheduler's length,
  // which is Theorem 2's n + k - 2 whenever the last cycle is full.
  if (sc.scheduler == SchedulerKind::kBinomialPipeline) {
    const Tick want = cooperative_lower_bound(sc.n, sc.k);
    if (!r_serial.completed || r_serial.completion_tick != want) {
      return {false, "scale binomial/triangular missed Theorem 1's k - 1 + "
                     "ceil(log2 n) = " + std::to_string(want) + " (got " +
                         (r_serial.completed
                              ? std::to_string(r_serial.completion_tick)
                              : "DNF") + ")"};
    }
  }
  if (sc.scheduler == SchedulerKind::kRiffle) {
    const Tick want = RifflePipelineScheduler(sc.n, sc.k, 1, 2).schedule_length();
    if (!r_serial.completed || r_serial.completion_tick != want) {
      return {false, "scale riffle missed the core schedule length " +
                         std::to_string(want) + " (got " +
                         (r_serial.completed
                              ? std::to_string(r_serial.completion_tick)
                              : "DNF") + ")"};
    }
    if (sc.k % (sc.n - 1) == 0 &&
        want != RifflePipelineScheduler::ideal_completion_time(sc.n, sc.k)) {
      return {false, "scale riffle with full cycles missed Theorem 2's "
                     "n + k - 2"};
    }
  }
  return {true, ""};
}

/// The stream-scenario check: the hybrid tick+event driver must (a) be
/// accepted by pob/async replaying its exact transfer stream in continuous
/// time and reproduce every field — including the streaming metrics,
/// recomputed independently from the log — (b) agree with itself across job
/// counts, and (c) agree with itself across scan kernels.
ScenarioOutcome run_stream_scenario(const Scenario& sc) {
  const StreamMirrorReport mirror = stream_mirror_check(make_stream_spec(sc), 1);
  if (!mirror.ok) {
    return {false, "stream mirror (pob/async) disagrees: " + mirror.diagnosis};
  }
  const RunResult& r_serial = mirror.scale;  // recorded with record_trace on

  {
    scale::stream::StreamSpec spec = make_stream_spec(sc);
    spec.config.record_trace = true;
    scale::stream::StreamEngine threaded(std::move(spec));
    const RunResult r4 = threaded.run(4);
    if (const std::string d = diff_run_results(r_serial, r4); !d.empty()) {
      return {false, "stream engine diverges between jobs=1 and jobs=4: " + d};
    }
  }

  {
    scale::stream::StreamSpec spec = make_stream_spec(sc);
    spec.config.record_trace = true;
    spec.options.scan_kernel =
        spec.options.scan_kernel == scale::ScanKernel::kScalar
            ? scale::ScanKernel::kAuto
            : scale::ScanKernel::kScalar;
    scale::stream::StreamEngine other(std::move(spec));
    const RunResult r = other.run(1);
    if (const std::string d = diff_run_results(r_serial, r); !d.empty()) {
      return {false, "stream engine diverges between scan kernels: " + d};
    }
  }

  // Certificate soundness: arrivals only delay clients relative to the
  // everyone-present-at-start relaxation the certifier assumes, so T* <= T
  // must hold for completed stream runs too. Rate classes raise capacities
  // above the scalar config the certifier would read, so those scenarios
  // are excluded (certifying them against understated capacities would be
  // an unsound *upper* estimate of the bound).
  if (sc.rate_class_count == 0) {
    const scale::stream::StreamSpec spec = make_stream_spec(sc);
    if (const ScenarioOutcome cert = check_certificate_soundness(
            sc, spec.config, *spec.topology, r_serial);
        !cert.ok) {
      return cert;
    }
  }

  // Metric sanity on top of the mirror's field-for-field agreement: a
  // completed run has no censored startup latencies, and the deadline
  // counters are consistent.
  if (r_serial.completed && r_serial.never_started != 0) {
    return {false, "completed stream run reports " +
                       std::to_string(r_serial.never_started) +
                       " never-started clients"};
  }
  if (r_serial.deadline_misses > r_serial.deadline_checks) {
    return {false, "deadline_misses exceeds deadline_checks"};
  }
  return {true, ""};
}

}  // namespace

ScenarioOutcome run_scenario(const Scenario& sc) {
  if (sc.stream) return run_stream_scenario(sc);
  if (sc.engine == EngineKind::kScale) return run_scale_scenario(sc);
  BuiltScenario built = build_scenario(sc);
  Scheduler* scheduler = built.scheduler.get();
  FaultyScheduler faulty(*built.scheduler, sc.n);
  if (sc.fault == FaultKind::kSameTickForward) scheduler = &faulty;

  const OracleReport report =
      differential_check(built.config, *scheduler, sc.mechanism, built.mechanism.get());
  if (!report.ok) {
    return {false, "oracle disagreement: " + report.diagnosis};
  }
  if (report.violated) {
    // Both engines rejected the schedule in agreement — for a sampled
    // (legal-by-construction) scenario that still means the *scheduler*
    // planned an illegal transfer, which is a bug worth failing on.
    return {false, "schedule rejected by both engines: " + report.violation_message};
  }

  const RunResult& r = report.fast;
  const bool uniform_unit = sc.upload == 1 && sc.server_upload <= 1 &&
                            sc.upload_caps.empty();

  // Theorem 1: no cooperative schedule with unit capacities beats
  // k - 1 + ceil(log2 n).
  if (r.completed && uniform_unit && sc.departures.empty()) {
    const Tick bound = cooperative_lower_bound(sc.n, sc.k);
    if (r.completion_tick < bound) {
      return {false, "beats Theorem 1: completed at tick " +
                         std::to_string(r.completion_tick) + " < lower bound " +
                         std::to_string(bound)};
    }
  }

  // Certificate soundness. Core schedulers other than the overlay-driven
  // randomized family ignore their sampled overlay (the rotating scheduler
  // draws its own rotation graphs), so they certify against the complete
  // topology — the only edge set that provably contains every transfer
  // they plan.
  {
    const bool overlay_respected = is_randomized_family(sc.scheduler) &&
                                   sc.scheduler != SchedulerKind::kRotating;
    const std::shared_ptr<const scale::Topology> cert_topo =
        overlay_respected
            ? make_scale_topology(sc)
            : std::make_shared<scale::Topology>(scale::Topology::complete(sc.n));
    if (const ScenarioOutcome cert =
            check_certificate_soundness(sc, built.config, *cert_topo, r);
        !cert.ok) {
      return cert;
    }
  }

  // Closed forms for the deterministic schedules (no churn, no mechanism).
  const bool clean = sc.departures.empty() && !sc.depart_on_complete &&
                     sc.mechanism.kind == MechanismSpec::Kind::kNone;
  if (clean && sc.scheduler == SchedulerKind::kPipeline && sc.server_upload <= 1) {
    const Tick want = pipeline_completion(sc.n, sc.k);
    if (!r.completed || r.completion_tick != want) {
      return {false, "pipeline missed its closed form k + n - 2 = " +
                         std::to_string(want) + " (got " +
                         (r.completed ? std::to_string(r.completion_tick) : "DNF") + ")"};
    }
  }
  if (clean && sc.scheduler == SchedulerKind::kBinomialTree && sc.server_upload <= 1) {
    const Tick want = binomial_tree_completion(sc.n, sc.k);
    if (!r.completed || r.completion_tick != want) {
      return {false, "binomial tree missed its closed form k*ceil(log2 n) = " +
                         std::to_string(want) + " (got " +
                         (r.completed ? std::to_string(r.completion_tick) : "DNF") + ")"};
    }
  }
  // Theorem 3: the riffle pipeline with d = 2u and full cycles meets the
  // strict-barter lower bound k + n - 2 exactly (mechanism on or off).
  if (sc.scheduler == SchedulerKind::kRiffle && sc.departures.empty() &&
      sc.server_upload <= 1 && sc.upload == 1 && sc.download == 2 &&
      sc.k % (sc.n - 1) == 0) {
    const Tick want = RifflePipelineScheduler::ideal_completion_time(sc.n, sc.k);
    if (!r.completed || r.completion_tick != want) {
      return {false, "riffle missed Theorem 3's k + n - 2 = " + std::to_string(want) +
                         " (got " +
                         (r.completed ? std::to_string(r.completion_tick) : "DNF") + ")"};
    }
  }
  // Deterministic schedules must complete outright when nothing departs.
  if (sc.departures.empty() && !sc.depart_on_complete &&
      !is_randomized_family(sc.scheduler) && !r.completed) {
    return {false, std::string("deterministic schedule did not complete (") +
                       (r.stalled ? "stalled" : "hit tick cap") + ")"};
  }
  return {true, ""};
}

}  // namespace pob::check
