// Workload generators for the stream layer: arrival processes (Poisson
// trickle, flash-crowd spike, periodic bursts), heterogeneous rate classes,
// and mid-run rate churn. build_workload is a PURE function of (workload,
// config, seed) — all sampling is integer-only (Bernoulli subtick gaps, no
// libm), so the plan is bit-identical across platforms, runs and job counts.

#pragma once

#include <cstdint>
#include <vector>

#include "pob/core/engine.h"
#include "pob/core/types.h"
#include "pob/scale/stream/calendar.h"

namespace pob::scale::stream {

enum class ArrivalPattern : std::uint8_t {
  kAllAtStart = 0,  ///< the classic batch swarm: every client present at t=0
  kPoisson = 1,     ///< steady trickle, geometric inter-arrival gaps
  kFlashCrowd = 2,  ///< a spike window absorbs most clients, thin background
  kBurst = 3,       ///< fixed-size cohorts every period ticks
};

const char* arrival_pattern_name(ArrivalPattern pattern);

/// One heterogeneous capacity class; clients draw a class weighted by
/// `weight`. Must satisfy the model rule down >= up (down == kUnlimited ok).
struct RateClass {
  std::uint32_t weight = 1;
  std::uint32_t up = 1;
  std::uint32_t down = kUnlimited;
};

struct StreamWorkload {
  ArrivalPattern arrivals = ArrivalPattern::kAllAtStart;

  /// kPoisson: inter-arrival gap between consecutive clients (node-id
  /// order) is geometric with success probability 1/mean_gap16 per
  /// 1/16-tick subtick — mean gap (mean_gap16 - 1)/16 ticks. 17 = about
  /// one tick between arrivals; 2 = ~16 arrivals per tick (the densest
  /// non-degenerate trickle); 1 degenerates to everyone at tick 1. Gaps
  /// are capped at 64x mean_gap16 subticks so a pathological draw cannot
  /// push an arrival past any horizon.
  std::uint32_t mean_gap16 = 16;

  /// kFlashCrowd: `flash_pct`% of clients arrive uniformly inside
  /// [flash_start, flash_start + flash_width); the rest arrive uniformly
  /// over the background window [1, flash_start + 4 * flash_width].
  Tick flash_start = 8;
  std::uint32_t flash_width = 4;
  std::uint32_t flash_pct = 90;

  /// kBurst: clients 1..burst_size at tick 1, the next cohort at
  /// 1 + burst_period, and so on.
  std::uint32_t burst_period = 4;
  std::uint32_t burst_size = 64;

  /// Heterogeneous capacity classes; empty keeps the config capacities.
  /// Classes are assigned per client up front (set_capacity before the
  /// run), so a late arrival lands with its class already in place.
  std::vector<RateClass> rate_classes;

  /// Mid-run rate churn: this many clients re-draw a class at a uniform
  /// tick in [1, rate_change_horizon] (kRate events). Requires
  /// rate_classes; 0 disables.
  std::uint32_t rate_changes = 0;
  Tick rate_change_horizon = 64;
};

struct WorkloadPlan {
  /// Per node: arrival tick (0 = present from the start; server always 0).
  std::vector<Tick> arrival;

  /// kArrive + kRate events, times >= 1, ready for CalendarQueue::push.
  std::vector<StreamEvent> events;

  /// Per-node class capacities (empty when rate_classes is empty). The
  /// driver applies these via Engine::set_capacity before the first tick.
  std::vector<std::uint32_t> initial_up;
  std::vector<std::uint32_t> initial_down;

  std::uint32_t pending_arrivals = 0;  ///< arrivals with tick >= 1
  Tick last_arrival = 0;
};

/// Pure function of its arguments; throws std::invalid_argument on a
/// malformed workload (zero weights, up > down classes, zero mean gap).
WorkloadPlan build_workload(const StreamWorkload& workload, const EngineConfig& config,
                            std::uint64_t seed);

}  // namespace pob::scale::stream
