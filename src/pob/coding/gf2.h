// GF(2) linear algebra for random linear network coding (the §4 related-work
// baseline of Gkantsidis & Rodriguez [13]): coded packets are XOR
// combinations of blocks, identified by their coefficient vectors over
// GF(2). A node's knowledge is the span of the coefficient vectors it
// holds; it can decode once the span has full rank k.

#pragma once

#include <cstdint>
#include <vector>

#include "pob/core/rng.h"

namespace pob {

/// Dense bit vector over GF(2), dimension fixed at construction.
class Gf2Vector {
 public:
  Gf2Vector() = default;
  explicit Gf2Vector(std::uint32_t dimension);

  std::uint32_t dimension() const { return dimension_; }
  bool get(std::uint32_t i) const { return (words_[i >> 6] >> (i & 63)) & 1u; }
  void set(std::uint32_t i) { words_[i >> 6] |= 1ULL << (i & 63); }
  void operator^=(const Gf2Vector& other);
  bool is_zero() const;
  /// Index of the lowest set bit, or dimension() if zero.
  std::uint32_t leading() const;

  /// Uniformly random nonzero vector.
  static Gf2Vector random_nonzero(std::uint32_t dimension, Rng& rng);

  /// Unit vector e_i.
  static Gf2Vector unit(std::uint32_t dimension, std::uint32_t i);

  friend bool operator==(const Gf2Vector&, const Gf2Vector&) = default;

 private:
  std::uint32_t dimension_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Incremental row-echelon basis over GF(2): insert vectors one at a time;
/// rank grows by one per linearly independent insertion.
class Gf2Basis {
 public:
  Gf2Basis() = default;
  explicit Gf2Basis(std::uint32_t dimension);

  std::uint32_t dimension() const { return dimension_; }
  std::uint32_t rank() const { return static_cast<std::uint32_t>(rows_.size()); }
  bool full_rank() const { return rank() == dimension_; }

  /// Reduces `v` against the basis; true if it was independent (and was
  /// added), false if it lies in the span (wasted packet).
  bool insert(Gf2Vector v);

  /// True iff `v` lies in the current span (zero vector included).
  bool contains(const Gf2Vector& v) const;

  /// True if some vector of `other`'s basis is outside this span, i.e.
  /// `other` has innovative information for us... from the RECEIVER's view:
  /// rank(this ∪ other) > rank(this).
  bool is_innovative_source(const Gf2Basis& other) const;

  /// A uniformly random vector from the span's nonzero elements — what a
  /// coding node transmits. Requires rank() >= 1.
  Gf2Vector random_combination(Rng& rng) const;

 private:
  Gf2Vector reduce(Gf2Vector v) const;

  std::uint32_t dimension_ = 0;
  // Rows kept in echelon form, sorted by leading index.
  std::vector<Gf2Vector> rows_;
};

}  // namespace pob
