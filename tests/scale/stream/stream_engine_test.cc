// StreamEngine tests: the async mirror at small n (field-for-field,
// including bit-identical metric NaNs), the censored-startup convention on
// capped runs, in-order delivery under sequential window demand, the
// 200k-node variable-population determinism pin, and the state_bytes()
// floor covering the event queue and per-node deadline state.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <thread>

#include "pob/check/oracle.h"
#include "pob/check/stream_check.h"
#include "pob/overlay/builders.h"
#include "pob/scale/engine.h"
#include "pob/scale/stream/stream_engine.h"

namespace pob::scale::stream {
namespace {

StreamSpec spec_for(std::uint32_t n, std::uint32_t k, std::uint64_t seed) {
  StreamSpec spec;
  spec.config.num_nodes = n;
  spec.config.num_blocks = k;
  spec.topology = std::make_shared<Topology>(Topology::complete(n));
  spec.seed = seed;
  return spec;
}

TEST(StreamEngine, FlashCrowdMirrorsAgainstAsync) {
  StreamSpec spec = spec_for(48, 10, 21);
  spec.workload.arrivals = ArrivalPattern::kFlashCrowd;
  spec.workload.flash_start = 4;
  spec.workload.flash_width = 3;
  spec.demand.startup_blocks = 2;

  const check::StreamMirrorReport report = check::stream_mirror_check(spec);
  EXPECT_TRUE(report.ok) << report.diagnosis;
  const RunResult& r = report.scale;
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.startup_latency.size(), 47u);
  EXPECT_EQ(r.never_started, 0u);
  for (const double lat : r.startup_latency) {
    EXPECT_FALSE(std::isnan(lat));
    EXPECT_GE(lat, 0.0);
  }
}

TEST(StreamEngine, VodWindowWithDeadlinesMirrorsAgainstAsync) {
  StreamSpec spec = spec_for(40, 12, 5);
  spec.workload.arrivals = ArrivalPattern::kPoisson;
  spec.workload.mean_gap16 = 8;
  spec.demand.window = 4;  // sequential in-order demand
  spec.demand.startup_blocks = 3;
  spec.demand.deadlines = true;

  const check::StreamMirrorReport report = check::stream_mirror_check(spec);
  EXPECT_TRUE(report.ok) << report.diagnosis;
  const RunResult& r = report.scale;
  ASSERT_TRUE(r.completed);
  // Every started client walks its whole deadline chain (or gets the rest
  // credited at completion): k - startup checks each.
  EXPECT_EQ(r.deadline_checks, std::uint64_t{39} * (12 - 3));
  EXPECT_LE(r.deadline_misses, r.deadline_checks);
}

TEST(StreamEngine, RateClassesAndChurnMirrorAgainstAsync) {
  StreamSpec spec = spec_for(32, 8, 99);
  spec.workload.arrivals = ArrivalPattern::kBurst;
  spec.workload.burst_size = 6;
  spec.workload.burst_period = 2;
  spec.workload.rate_classes = {{2, 1, kUnlimited}, {1, 2, 4}};
  spec.workload.rate_changes = 5;
  spec.workload.rate_change_horizon = 10;

  const check::StreamMirrorReport report = check::stream_mirror_check(spec);
  EXPECT_TRUE(report.ok) << report.diagnosis;
  EXPECT_TRUE(report.scale.completed);
}

// Satellite regression: a run capped before most of the flash crowd even
// arrives must NaN-mark exactly the never-started clients (the censored
// convention from the metrics layer) and keep them out of the rebuffering
// population — a never-started client cannot have stalled playback.
TEST(StreamEngine, CensorsNeverStartedClientsAsNaN) {
  StreamSpec spec = spec_for(32, 4, 13);
  // Burst cohorts of 8 every 30 ticks: clients 1-8 arrive at tick 1, the
  // other three cohorts (clients 9-31) arrive at ticks 31/61/91 — all past
  // the cap below, so they never even join, let alone start playback.
  spec.workload.arrivals = ArrivalPattern::kBurst;
  spec.workload.burst_size = 8;
  spec.workload.burst_period = 30;
  spec.demand.startup_blocks = 1;
  spec.config.max_ticks = 12;
  spec.config.stall_window = 0;

  StreamEngine engine(spec);
  const RunResult r = engine.run(1);
  EXPECT_FALSE(r.completed);

  std::uint32_t nans = 0;
  for (NodeId c = 1; c < 32; ++c) {
    if (std::isnan(r.startup_latency[c - 1])) {
      ++nans;
      // Censored clients are reported separately from rebuffering ones.
      EXPECT_EQ(r.rebuffer_ticks[c - 1], 0u) << c;
    }
  }
  EXPECT_EQ(r.never_started, nans);
  EXPECT_GE(nans, 23u);  // the three late cohorts are censored for sure
  EXPECT_LT(nans, 31u);  // the first cohort had 12 ticks to start
}

TEST(StreamEngine, SequentialWindowDeliversBlocksInOrder) {
  StreamSpec spec = spec_for(24, 8, 3);
  spec.config.record_trace = true;
  spec.demand.window = 1;  // W = 1: only the first missing block is viable

  StreamEngine engine(spec);
  const RunResult r = engine.run(1);
  ASSERT_TRUE(r.completed);
  std::vector<BlockId> next(24, 0);
  for (const auto& tick : r.trace) {
    for (const Transfer& tr : tick) {
      EXPECT_EQ(tr.block, next[tr.to]) << "out-of-order delivery to " << tr.to;
      ++next[tr.to];
    }
  }
}

// The mega-swarm pin for the stream layer: a 200k-node flash crowd with
// heterogeneous rate classes, mid-run rate churn and hard deadlines must
// produce a bit-identical RunResult (by digest, which covers the streaming
// metric fields too) at jobs = 1, 4 and the hardware count. Random-regular
// overlay, like the 50k engine pin — the arithmetic complete graph makes
// every randomized probe ring shoulder the whole swarm and is far too slow
// at this n to be a unit test.
TEST(StreamDeterminism, TwoHundredThousandNodeFlashCrowdAnyJobCount) {
  constexpr std::uint32_t kNodes = 200000;

  Rng topo_rng(77);
  const auto topology = std::make_shared<Topology>(
      Topology::from_graph(make_random_regular(kNodes, 16, topo_rng)));

  const auto digest_at = [&](unsigned jobs) {
    StreamSpec spec = spec_for(kNodes, 32, 1234);
    spec.topology = topology;
    spec.config.server_upload_capacity = 8;
    spec.workload.arrivals = ArrivalPattern::kFlashCrowd;
    spec.workload.flash_start = 8;
    spec.workload.flash_width = 6;
    spec.workload.rate_classes = {{3, 1, kUnlimited}, {2, 2, 4}, {1, 3, 6}};
    spec.workload.rate_changes = 64;
    spec.workload.rate_change_horizon = 32;
    spec.demand.startup_blocks = 4;
    spec.demand.deadlines = true;
    StreamEngine engine(std::move(spec));
    const RunResult r = engine.run(jobs);
    EXPECT_TRUE(r.completed);
    return check::run_result_digest(r);
  };

  const std::uint64_t serial = digest_at(1);
  EXPECT_EQ(digest_at(4), serial);
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  EXPECT_EQ(digest_at(hw), serial);
}

// state_bytes() must account for the stream layer's own state on top of the
// engine arena: the pending event calendar and the per-node playback /
// deadline tracking rows.
TEST(StreamEngine, StateBytesCoversEventQueueAndDeadlineState) {
  constexpr std::uint32_t kNodes = 4096;
  StreamSpec spec = spec_for(kNodes, 64, 7);
  spec.workload.arrivals = ArrivalPattern::kPoisson;
  spec.workload.mean_gap16 = 2;
  spec.demand.deadlines = true;

  StreamEngine engine(spec);  // not run: the calendar still holds every event
  const std::uint64_t event_bytes =
      engine.plan().events.size() * sizeof(StreamEvent);
  // Per node, at minimum: one possession word, the prefix cursor, arrival /
  // start / due ticks, the playhead, the rebuffer counter and the deadline
  // cursor.
  const std::uint64_t per_node =
      sizeof(std::uint64_t) + 2 * sizeof(std::uint32_t) + 3 * sizeof(Tick) +
      sizeof(Count) + sizeof(BlockId);
  EXPECT_GE(engine.state_bytes(),
            engine.engine().state_bytes() + event_bytes + kNodes * per_node);
}

}  // namespace
}  // namespace pob::scale::stream
