#include "pob/analysis/bounds.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace pob {
namespace {

TEST(Bounds, CooperativeLowerBound) {
  EXPECT_EQ(cooperative_lower_bound(2, 1), 1u);
  EXPECT_EQ(cooperative_lower_bound(8, 1), 3u);
  EXPECT_EQ(cooperative_lower_bound(8, 10), 12u);
  EXPECT_EQ(cooperative_lower_bound(9, 10), 13u);   // ceil(log2 9) = 4
  EXPECT_EQ(cooperative_lower_bound(1024, 1000), 1009u);
}

TEST(Bounds, ClosedFormsMatchDefinitions) {
  EXPECT_EQ(pipeline_completion(10, 5), 13u);
  EXPECT_EQ(binomial_tree_completion(8, 4), 12u);
  EXPECT_EQ(binomial_tree_completion(9, 4), 16u);
}

TEST(Bounds, MulticastEstimate) {
  // d=2, n=7 (depth 3 reach: 1,2,4 -> need 3 levels): 2*(k + 3 - 1).
  EXPECT_EQ(multicast_tree_estimate(7, 5, 2), 2u * (5u + 3u - 1u));
  EXPECT_EQ(multicast_tree_estimate(3, 5, 3), 3u * 5u);
  EXPECT_THROW(multicast_tree_estimate(7, 5, 1), std::invalid_argument);
}

TEST(Bounds, StrictBarterEqualBandwidth) {
  // Theorem 2, d = u: n + k - 2.
  EXPECT_EQ(strict_barter_lower_bound_equal_bw(8, 7), 13u);
  EXPECT_EQ(strict_barter_lower_bound_equal_bw(1000, 1000), 1998u);
}

TEST(Bounds, StrictBarterRampBasics) {
  // k = 1: the bound is the server seeding time, n - 1.
  EXPECT_EQ(strict_barter_lower_bound_ramp(10, 1), 9u);
  // The ramp bound never exceeds the equal-bandwidth bound...
  for (const std::uint32_t n : {4u, 10u, 50u}) {
    for (const std::uint32_t k : {1u, 5u, 50u}) {
      EXPECT_LE(strict_barter_lower_bound_ramp(n, k),
                strict_barter_lower_bound_equal_bw(n, k))
          << "n=" << n << " k=" << k;
      // ...and always dominates the cooperative bound's start-up flavor n-1.
      EXPECT_GE(strict_barter_lower_bound_ramp(n, k), n - 1);
    }
  }
}

TEST(Bounds, RampBoundIsMonotone) {
  Tick prev = 0;
  for (const std::uint32_t k : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const Tick t = strict_barter_lower_bound_ramp(20, k);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(Bounds, GeneralStrictBarterReducesToUnitClosedForms) {
  // At u = d = us = 1 the general bound collapses to the max of Theorem 2's
  // two unit-capacity regimes.
  for (const std::uint32_t n : {2u, 3u, 4u, 10u, 50u, 128u, 1000u}) {
    for (const std::uint32_t k : {1u, 2u, 5u, 50u, 512u}) {
      EXPECT_EQ(strict_barter_lower_bound_general(n, k, 1, 1, 1),
                std::max(strict_barter_lower_bound_equal_bw(n, k),
                         strict_barter_lower_bound_ramp(n, k)))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(Bounds, GeneralStrictBarterRespondsToCapacities) {
  // Extra download can only help (d = 2u lowers the seeding tail)...
  EXPECT_LE(strict_barter_lower_bound_general(64, 63, 1, 2, 1),
            strict_barter_lower_bound_general(64, 63, 1, 1, 1));
  // ...as does a faster server.
  EXPECT_LE(strict_barter_lower_bound_general(64, 63, 1, 1, 2),
            strict_barter_lower_bound_general(64, 63, 1, 1, 1));
  // Monotone in k at fixed capacities.
  Tick prev = 0;
  for (const std::uint32_t k : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const Tick t = strict_barter_lower_bound_general(20, k, 1, 2, 1);
    EXPECT_GE(t, prev);
    prev = t;
  }
  // n = 2: a lone client gets everything from the server, so download and
  // pairing are irrelevant — the bound is ceil-free k at us = 1.
  EXPECT_EQ(strict_barter_lower_bound_general(2, 512, 1, 2, 1), 512u);
  EXPECT_THROW(strict_barter_lower_bound_general(8, 4, 1, 1, 0),
               std::invalid_argument);
  EXPECT_THROW(strict_barter_lower_bound_general(8, 4, 1, 0, 1),
               std::invalid_argument);
}

TEST(Bounds, PriceOfBarterGrowsWithN) {
  // The barter penalty is Θ(n) in the start-up, so the ratio grows with n
  // at fixed k and shrinks as k grows.
  EXPECT_GT(price_of_barter(1000, 10), price_of_barter(100, 10));
  EXPECT_GT(price_of_barter(1000, 10), price_of_barter(1000, 10000));
  EXPECT_GT(price_of_barter(1024, 1000), 1.9);  // ~2022/1009
}

TEST(Bounds, MultiServerEstimate) {
  // 64 clients in 4 groups of 16: k - 1 + ceil(log2 17).
  EXPECT_EQ(multi_server_estimate(65, 10, 4), 10u - 1u + 5u);
  // m = 1 reduces to the cooperative bound.
  EXPECT_EQ(multi_server_estimate(33, 10, 1), cooperative_lower_bound(33, 10));
}

}  // namespace
}  // namespace pob
