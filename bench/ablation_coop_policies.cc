// E13 — §2.4.4's null results, made explicit.
//
// In the *cooperative* case the paper reports "no significant differences"
// from (a) Rarest-First instead of Random block selection and (b) download
// capacity anywhere from u to infinity. This ablation quantifies both, plus
// the handshake-order design choice (random vs fixed uploader order) that
// the paper's protocol implies.

#include <iostream>
#include <memory>

#include "bench_util.h"
#include "pob/analysis/bounds.h"

namespace pob::bench {
namespace {

int main_impl(int argc, char** argv) {
  const Args args(argc, argv);
  TrialRunner trials(args);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 500));
  const auto k = static_cast<std::uint32_t>(args.get_int("k", 500));
  const auto runs = static_cast<std::uint32_t>(args.get_int("runs", 3));

  Table table({"policy", "download-capacity", "T (mean +- 95% CI)", "T/optimal"});
  const Tick optimal = cooperative_lower_bound(n, k);
  for (const BlockPolicy policy : {BlockPolicy::kRandom, BlockPolicy::kRarestFirst}) {
    for (const std::uint32_t d : {1u, 2u, kUnlimited}) {
      RandomizedOptions opt;
      opt.policy = policy;
      opt.download_capacity = d;
      EngineConfig cfg;
      cfg.num_nodes = n;
      cfg.num_blocks = k;
      cfg.download_capacity = d;
      const TrialStats stats = trials(runs, [&](std::uint32_t i) {
        return randomized_trial(cfg, std::make_shared<CompleteOverlay>(n), opt,
                                trial_seed(0xF16'D000 + 19ull * d +
                                    (policy == BlockPolicy::kRandom ? 0 : 4096), i));
      });
      table.add_row({to_string(policy), d == kUnlimited ? "inf" : std::to_string(d),
                     fmt_ci(stats.completion.mean, stats.completion.ci95),
                     fmt(stats.completion.mean / static_cast<double>(optimal), 3)});
    }
  }
  std::cout << "# E13: cooperative ablations (n = " << n << ", k = " << k
            << ", complete graph) — paper: no significant differences\n";
  emit(args, table);
  trials.report(std::cout);
  return 0;
}

}  // namespace
}  // namespace pob::bench

int main(int argc, char** argv) { return pob::bench::main_impl(argc, argv); }
