#include <gtest/gtest.h>

#include "pob/overlay/builders.h"

namespace pob {
namespace {

TEST(Logs, FloorAndCeilLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_EQ(floor_log2(1025), 10u);
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
  EXPECT_THROW(floor_log2(0), std::invalid_argument);
  EXPECT_THROW(ceil_log2(0), std::invalid_argument);
}

TEST(HypercubeMap, PowerOfTwoIsOneNodePerVertex) {
  const HypercubeMap m = make_hypercube_map(8);
  EXPECT_EQ(m.dims, 3u);
  EXPECT_EQ(m.num_vertices, 8u);
  for (std::uint32_t v = 0; v < 8; ++v) {
    EXPECT_EQ(m.vertex_count(v), 1u);
    EXPECT_EQ(m.members[v][0], v);
  }
  EXPECT_EQ(m.members[0][0], kServer);
}

TEST(HypercubeMap, GeneralNDoublesLowVertices) {
  // n = 11: m = 3, vertices 8; clients 8, 9, 10 double onto IDs 1, 2, 3.
  const HypercubeMap m = make_hypercube_map(11);
  EXPECT_EQ(m.dims, 3u);
  EXPECT_EQ(m.vertex_count(0), 1u);  // server always alone
  EXPECT_EQ(m.vertex_count(1), 2u);
  EXPECT_EQ(m.vertex_count(2), 2u);
  EXPECT_EQ(m.vertex_count(3), 2u);
  for (std::uint32_t v = 4; v < 8; ++v) EXPECT_EQ(m.vertex_count(v), 1u);
  EXPECT_EQ(m.vertex_of[8], 1u);
  EXPECT_EQ(m.vertex_of[10], 3u);
}

class HypercubeMapProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(HypercubeMapProperty, EveryVertexHasOneOrTwoNodes) {
  const std::uint32_t n = GetParam();
  const HypercubeMap m = make_hypercube_map(n);
  EXPECT_EQ(m.num_vertices, 1u << m.dims);
  EXPECT_LE(m.num_vertices, n);
  EXPECT_LT(n, 2 * m.num_vertices);
  std::uint32_t total = 0;
  for (std::uint32_t v = 0; v < m.num_vertices; ++v) {
    const std::uint32_t count = m.vertex_count(v);
    ASSERT_GE(count, 1u);
    ASSERT_LE(count, 2u);
    total += count;
    for (const NodeId node : m.members[v]) {
      if (node != kNoNode) {
        ASSERT_EQ(m.vertex_of[node], v);
      }
    }
  }
  EXPECT_EQ(total, n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, HypercubeMapProperty,
                         ::testing::Values(2u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u, 17u,
                                           31u, 100u, 1000u, 1023u, 1024u, 1025u));

TEST(HypercubeOverlay, PowerOfTwoIsExactHypercube) {
  const Graph g = make_hypercube_overlay(16);
  EXPECT_TRUE(g.is_connected());
  for (NodeId u = 0; u < 16; ++u) EXPECT_EQ(g.degree(u), 4u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 8));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(HypercubeOverlay, GeneralNHasLogarithmicAverageDegree) {
  const Graph g = make_hypercube_overlay(1000);
  EXPECT_TRUE(g.is_connected());
  EXPECT_GT(g.average_degree(), 9.0);   // ~2 * log2(512) flavor
  EXPECT_LT(g.average_degree(), 40.0);  // well below random-regular thresholds
}

TEST(HypercubeOverlay, DoubledMembersAreAdjacent) {
  const HypercubeMap m = make_hypercube_map(11);
  const Graph g = make_hypercube_overlay(11);
  for (std::uint32_t v = 0; v < m.num_vertices; ++v) {
    if (m.vertex_count(v) == 2) {
      EXPECT_TRUE(g.has_edge(m.members[v][0], m.members[v][1]));
    }
  }
}

}  // namespace
}  // namespace pob
