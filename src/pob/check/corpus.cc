#include "pob/check/corpus.h"

#include <cstdio>
#include <sstream>

#include "pob/async/policies.h"
#include "pob/exp/trace_io.h"

namespace pob::check {
namespace {

Scenario base(SchedulerKind kind, std::uint32_t n, std::uint32_t k) {
  Scenario sc;
  sc.scheduler = kind;
  sc.n = n;
  sc.k = k;
  sc.seed = 0x9e3779b97f4a7c15ull;  // fixed: corpus runs must be reproducible
  return sc;
}

std::vector<CorpusEntry> make_corpus() {
  std::vector<CorpusEntry> corpus;
  const auto add = [&](std::string filename, Scenario sc, bool completes = true) {
    sanitize(sc);
    corpus.push_back({std::move(filename), std::move(sc), completes});
  };

  add("pipeline.pobtrace", base(SchedulerKind::kPipeline, 12, 9));
  {
    Scenario sc = base(SchedulerKind::kMulticastTree, 14, 9);
    sc.arity = 3;
    add("multicast-tree.pobtrace", sc);
  }
  add("binomial-tree.pobtrace", base(SchedulerKind::kBinomialTree, 19, 6));
  add("binomial-pipeline.pobtrace", base(SchedulerKind::kBinomialPipeline, 16, 21));
  {
    // k = 3 * (n - 1): full riffle cycles, so the recorded schedule is also
    // legal under strict barter — the replay exercises the mechanism path.
    Scenario sc = base(SchedulerKind::kRiffle, 11, 30);
    sc.download = 2;
    sc.mechanism.kind = MechanismSpec::Kind::kStrictBarter;
    add("riffle.pobtrace", sc);
  }
  {
    Scenario sc = base(SchedulerKind::kStripedTrees, 25, 24);
    sc.stripes = 4;
    sc.download = 4;
    add("striped-trees.pobtrace", sc);
  }
  {
    Scenario sc = base(SchedulerKind::kMultiServer, 20, 16);
    sc.servers = 4;
    add("multi-server.pobtrace", sc);
  }
  add("randomized.pobtrace", base(SchedulerKind::kRandomized, 40, 30));
  {
    // Heterogeneous capacities: exercises the v2 !up / !down directives.
    Scenario sc = base(SchedulerKind::kRandomized, 10, 8);
    sc.upload_caps = {1, 2, 3, 1, 2, 1, 3, 1, 2, 1};
    sc.download_caps = {kUnlimited, 2, 3, kUnlimited, 2,
                        kUnlimited, 3, 2, kUnlimited, 2};
    add("hetero-randomized.pobtrace", sc);
  }
  {
    // Lossy churn against a rigid schedule: the pipeline keeps naming the
    // departed nodes, drop mode forgives, and the run honestly fails to
    // complete — exercising !depart/!drop and dropped_transfers accounting.
    Scenario sc = base(SchedulerKind::kBinomialPipeline, 16, 21);
    sc.departures = {{6, 3}, {9, 10}};
    add("churn-binomial-pipeline.pobtrace", sc, /*completes=*/false);
  }
  {
    // Churn against an adaptive scheduler: the randomized swarm routes
    // around the departure and still completes.
    Scenario sc = base(SchedulerKind::kRandomized, 18, 10);
    sc.departures = {{4, 2}};
    add("churn-randomized.pobtrace", sc);
  }
  {
    // The deterministic mechanisms ported to the scale engine, one golden
    // each: binomial pipeline, the same schedule under the triangular
    // 3-cycle ledger, and the strict-barter riffle (k = 3(n - 1): full
    // cycles, so the trace replays clean under StrictBarter).
    Scenario sc = base(SchedulerKind::kBinomialPipeline, 16, 12);
    sc.engine = EngineKind::kScale;
    add("scale-binomial-pipeline.pobtrace", sc);
  }
  {
    Scenario sc = base(SchedulerKind::kBinomialPipeline, 16, 12);
    sc.engine = EngineKind::kScale;
    sc.mechanism.kind = MechanismSpec::Kind::kCyclicBarter;
    add("scale-triangular-barter.pobtrace", sc);
  }
  {
    Scenario sc = base(SchedulerKind::kRiffle, 8, 21);
    sc.engine = EngineKind::kScale;
    sc.download = 2;
    add("scale-riffle.pobtrace", sc);
  }
  {
    // Stream layer, flash crowd with random demand: exercises the v3
    // !arrive preamble. Uniform capacities and no rate classes, so the
    // core-engine replay (which ignores arrivals — every node present from
    // the start only has more freedom) stays legal.
    Scenario sc = base(SchedulerKind::kRandomized, 24, 10);
    sc.stream = true;
    sc.arrival_pattern = scale::stream::ArrivalPattern::kFlashCrowd;
    sc.startup_blocks = 2;
    add("stream-flash-crowd.pobtrace", sc);
  }
  {
    // Stream layer, VoD shape: Poisson trickle arrivals with in-order
    // sequential demand through a sliding playback window and hard
    // per-block deadlines (deadlines shape the metrics, not the schedule).
    Scenario sc = base(SchedulerKind::kRandomized, 20, 12);
    sc.stream = true;
    sc.arrival_pattern = scale::stream::ArrivalPattern::kPoisson;
    sc.playback_window = 4;
    sc.startup_blocks = 3;
    sc.hard_deadlines = true;
    add("stream-vod-window.pobtrace", sc);
  }
  return corpus;
}

std::string fmt(double t) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", t);
  return buf;
}

}  // namespace

const std::vector<CorpusEntry>& golden_corpus() {
  static const std::vector<CorpusEntry> corpus = make_corpus();
  return corpus;
}

std::string render_corpus_entry(const CorpusEntry& entry) {
  const Scenario& sc = entry.scenario;
  EngineConfig cfg;
  RunResult result;
  if (sc.stream) {
    scale::stream::StreamSpec spec = make_stream_spec(sc);
    spec.config.record_trace = true;
    cfg = spec.config;
    scale::stream::StreamEngine engine(std::move(spec));
    result = engine.run(1);
    TraceEvents events;
    const std::vector<Tick>& arrival = engine.arrivals();
    for (NodeId c = 0; c < arrival.size(); ++c) {
      if (arrival[c] >= 1) events.arrivals.emplace_back(arrival[c], c);
    }
    for (const scale::stream::StreamEvent& ev : engine.plan().events) {
      if (ev.kind == scale::stream::EventKind::kRate) {
        events.rate_changes.push_back({ev.time, ev.node, ev.up, ev.down});
      }
    }
    std::ostringstream os;
    os << "# golden trace: " << sc.describe() << "\n";
    os << "# regenerate with: pobfuzz --write-corpus=tests/check/corpus\n";
    write_trace(os, cfg, result, events);
    return os.str();
  }
  if (sc.engine == EngineKind::kScale) {
    cfg = sc.to_config();
    cfg.record_trace = true;
    scale::Engine engine(cfg, make_scale_topology(sc), make_scale_options(sc),
                         sc.seed);
    result = engine.run(1);
  } else {
    BuiltScenario built = build_scenario(sc);
    cfg = built.config;
    cfg.record_trace = true;
    SwarmState state(cfg.num_nodes, cfg.num_blocks);
    result = run_with_state(cfg, *built.scheduler, built.mechanism.get(), state);
  }
  std::ostringstream os;
  os << "# golden trace: " << sc.describe() << "\n";
  os << "# regenerate with: pobfuzz --write-corpus=tests/check/corpus\n";
  write_trace(os, cfg, result);
  return os.str();
}

AsyncGolden async_golden() {
  AsyncGolden g;
  g.filename = "async-swarm.pobasync";
  g.config.num_nodes = 12;
  g.config.num_blocks = 8;
  g.config.upload_rate = {1.0, 1.0, 2.0, 1.0, 0.5, 1.0, 1.0, 2.0, 1.0, 1.0, 0.5, 1.0};
  g.config.download_ports = 2;
  g.config.record_log = true;

  const auto overlay = std::make_shared<CompleteOverlay>(g.config.num_nodes);
  AsyncSwarmPolicy policy(overlay, BlockPolicy::kRarestFirst, g.config.download_ports,
                          Rng(0xC0FFEEull));
  g.result = run_async(g.config, policy);

  std::ostringstream os;
  os << "# golden async trace: swarm n=" << g.config.num_nodes
     << " k=" << g.config.num_blocks << " ports=" << g.config.download_ports
     << " rarest-first seed=0xC0FFEE\n";
  os << "pobasync 1 " << g.config.num_nodes << ' ' << g.config.num_blocks << ' '
     << g.config.download_ports << "\n";
  os << "!rate";
  for (const double r : g.config.upload_rate) os << ' ' << fmt(r);
  os << "\n";
  for (const AsyncTransfer& e : g.result.log) {
    os << e.transfer.from << ':' << e.transfer.to << ':' << e.transfer.block << ' '
       << fmt(e.start) << ' ' << fmt(e.finish) << "\n";
  }
  g.text = os.str();
  return g;
}

}  // namespace pob::check
