// Pins the certificate oracle to the paper's closed forms on the complete
// grid (Theorem 1 exactly; Theorem 2 under the barter model), and to the
// overlays where a deterministic scheduler in the repo achieves the
// certified bound exactly (hypercube, chain/tree); the ring gets an exact
// arithmetic pin plus a soundness sandwich against a legal schedule.

#include "pob/flow/certify.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <tuple>

#include "pob/analysis/bounds.h"
#include "pob/core/engine.h"
#include "pob/overlay/builders.h"
#include "pob/sched/binomial_pipeline.h"
#include "pob/sched/binomial_tree.h"
#include "pob/sched/multicast_tree.h"
#include "pob/sched/pipeline.h"
#include "pob/sched/riffle_pipeline.h"
#include "pob/scale/engine.h"

namespace pob::flow {
namespace {

using scale::Topology;

EngineConfig unit_cfg(std::uint32_t n, std::uint32_t k, std::uint32_t down = 1) {
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  cfg.download_capacity = down;
  return cfg;
}

class CertifyGrid
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(CertifyGrid, CompleteCooperativeMatchesTheoremOne) {
  const auto [n, k] = GetParam();
  const Topology topo = Topology::complete(n);
  const CompletionCertificate cert =
      certify_completion_bound(unit_cfg(n, k), topo, BarterModel::kCooperative);
  EXPECT_EQ(cert.lower_bound, cooperative_lower_bound(n, k)) << "n=" << n << " k=" << k;
  EXPECT_EQ(cert.last_block_bound, cooperative_lower_bound(n, k));
  EXPECT_FALSE(cert.flow_evaluated);  // complete graphs skip the unrolling
  EXPECT_EQ(cert.demand_clients, n - 1);
}

TEST_P(CertifyGrid, CompleteStrictBarterMatchesTheoremTwoEqualBandwidth) {
  const auto [n, k] = GetParam();
  const Topology topo = Topology::complete(n);
  const CompletionCertificate cert =
      certify_completion_bound(unit_cfg(n, k), topo, BarterModel::kStrictBarter);
  const Tick expected = std::max(strict_barter_lower_bound_equal_bw(n, k),
                                 strict_barter_lower_bound_ramp(n, k));
  EXPECT_EQ(cert.lower_bound, expected) << "n=" << n << " k=" << k;
  EXPECT_EQ(cert.lower_bound, strict_barter_lower_bound_general(n, k, 1, 1, 1));
  EXPECT_GE(cert.lower_bound, cooperative_lower_bound(n, k));
}

TEST_P(CertifyGrid, CompleteStrictBarterMatchesTheoremTwoRampRegime) {
  const auto [n, k] = GetParam();
  const Topology topo = Topology::complete(n);
  const CompletionCertificate cert = certify_completion_bound(
      unit_cfg(n, k, /*down=*/2), topo, BarterModel::kStrictBarter);
  EXPECT_EQ(cert.lower_bound,
            std::max(cooperative_lower_bound(n, k),
                     strict_barter_lower_bound_general(n, k, 1, 2, 1)))
      << "n=" << n << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CertifyGrid,
    ::testing::Combine(::testing::Values(2u, 3u, 4u, 5u, 8u, 16u, 17u, 31u, 32u, 64u,
                                         100u, 128u, 256u, 512u, 1000u, 1024u, 2048u,
                                         4095u, 4096u),
                       ::testing::Values(1u, 63u, 64u, 65u, 512u)));

TEST(Certify, HypercubeBinomialPipelineAchievesTheCertificate) {
  // §2.3.2-2.3.3: the binomial pipeline runs on the materialized hypercube
  // overlay and still finishes at Theorem 1's bound — so the certificate on
  // that overlay (flow component included) must equal it exactly.
  constexpr std::uint32_t n = 64, k = 19;
  const EngineConfig cfg = unit_cfg(n, k, kUnlimited);
  auto topo = std::make_shared<Topology>(
      Topology::from_graph(make_hypercube_overlay(n)));
  const CompletionCertificate cert =
      certify_completion_bound(cfg, *topo, BarterModel::kCooperative);
  EXPECT_TRUE(cert.flow_evaluated);
  EXPECT_EQ(cert.lower_bound, cooperative_lower_bound(n, k));

  scale::ScaleOptions opt;
  opt.scheduler = scale::SchedKind::kBinomialPipeline;
  scale::Engine engine(cfg, topo, opt, 1);
  const RunResult r = engine.run(1);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.completion_tick, cert.lower_bound);
  EXPECT_DOUBLE_EQ(certified_price(r.completion_tick, cert.lower_bound), 1.0);
}

TEST(Certify, ChainPipelineAchievesTheCertificate) {
  // The chain (a 1-ary tree) is the pipeline's native overlay: the farthest
  // client pins pipe_bound at n + k - 2 and the schedule meets it.
  constexpr std::uint32_t n = 16, k = 8;
  const Topology chain = Topology::from_graph(make_kary_tree(n, 1));
  const CompletionCertificate cert =
      certify_completion_bound(unit_cfg(n, k), chain, BarterModel::kCooperative);
  EXPECT_EQ(cert.lower_bound, n + k - 2);
  EXPECT_EQ(cert.pipe_bound, n + k - 2);
  EXPECT_EQ(cert.pipe_client, n - 1);

  PipelineScheduler sched(n, k);
  const RunResult r = run(unit_cfg(n, k), sched);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.completion_tick, cert.lower_bound);
}

TEST(Certify, RingCertificateIsExactAndSandwiched) {
  // Ring of 16: the antipodal client sits 8 hops out with unit inflow, so
  // T* = n/2 - 1 + k; strictly above the complete-graph optimum, and at
  // most the chain pipeline's k + n - 2 (a legal schedule on the ring,
  // which contains the chain).
  constexpr std::uint32_t n = 16, k = 8;
  const Topology ring = Topology::from_graph(make_ring(n));
  const CompletionCertificate cert =
      certify_completion_bound(unit_cfg(n, k), ring, BarterModel::kCooperative);
  EXPECT_EQ(cert.lower_bound, n / 2 - 1 + k);
  EXPECT_GT(cert.lower_bound, cooperative_lower_bound(n, k));

  PipelineScheduler sched(n, k);
  const RunResult r = run(unit_cfg(n, k), sched);
  ASSERT_TRUE(r.completed);
  EXPECT_LE(cert.lower_bound, r.completion_tick);
}

TEST(Certify, NeverExceedsDeterministicSchedulesOnTheCompleteGraph) {
  constexpr std::uint32_t n = 32, k = 16;
  const Topology topo = Topology::complete(n);
  const auto check = [&](Scheduler& sched, const EngineConfig& cfg, BarterModel model) {
    const RunResult r = run(cfg, sched);
    ASSERT_TRUE(r.completed);
    const CompletionCertificate cert = certify_completion_bound(cfg, topo, model);
    EXPECT_LE(cert.lower_bound, r.completion_tick);
    EXPECT_GE(certified_price(r.completion_tick, cert.lower_bound), 1.0);
  };
  PipelineScheduler pipe(n, k);
  check(pipe, unit_cfg(n, k), BarterModel::kCooperative);
  MulticastTreeScheduler tree(n, k, 2);
  check(tree, unit_cfg(n, k), BarterModel::kCooperative);
  BinomialTreeScheduler btree(n, k);
  check(btree, unit_cfg(n, k), BarterModel::kCooperative);
  BinomialPipelineScheduler bp(n, k);
  check(bp, unit_cfg(n, k), BarterModel::kCooperative);
  RifflePipelineScheduler riffle(n, k, 1, 2);
  check(riffle, unit_cfg(n, k, /*down=*/2), BarterModel::kStrictBarter);
}

TEST(Certify, BinomialPipelineIsCertifiedOptimal) {
  // The full optimality certificate in one assertion: simulated == T*.
  constexpr std::uint32_t n = 64, k = 64;
  BinomialPipelineScheduler bp(n, k);
  const RunResult r = run(unit_cfg(n, k), bp);
  ASSERT_TRUE(r.completed);
  const CompletionCertificate cert = certify_completion_bound(
      unit_cfg(n, k), Topology::complete(n), BarterModel::kCooperative);
  EXPECT_EQ(r.completion_tick, cert.lower_bound);
}

TEST(Certify, DepartingClientsShrinkDemand) {
  EngineConfig cfg = unit_cfg(8, 4);
  cfg.departures = {{2, 3}, {5, 6}};
  const CompletionCertificate cert = certify_completion_bound(
      cfg, Topology::complete(8), BarterModel::kCooperative);
  EXPECT_EQ(cert.demand_clients, 5u);
  // Fewer clients can only lower (never raise) the certified bound.
  EXPECT_LE(cert.lower_bound, cooperative_lower_bound(8, 4));
  EXPECT_GT(cert.lower_bound, 0u);
}

TEST(Certify, DegenerateScenariosCertifyZero) {
  EXPECT_EQ(certify_completion_bound(unit_cfg(4, 0), Topology::complete(4),
                                     BarterModel::kCooperative)
                .lower_bound,
            0u);
  EngineConfig all_leave = unit_cfg(3, 2);
  all_leave.departures = {{1, 1}, {1, 2}};
  EXPECT_EQ(certify_completion_bound(all_leave, Topology::complete(3),
                                     BarterModel::kCooperative)
                .lower_bound,
            0u);
}

TEST(Certify, ArcBudgetGatesTheFlowComponentOnly) {
  constexpr std::uint32_t n = 16, k = 8;
  const Topology ring = Topology::from_graph(make_ring(n));
  CertifyOptions opts;
  opts.flow_arc_budget = 10;  // far below any unrolling
  const CompletionCertificate cert =
      certify_completion_bound(unit_cfg(n, k), ring, BarterModel::kCooperative, opts);
  EXPECT_FALSE(cert.flow_evaluated);
  EXPECT_EQ(cert.flow_bound, 0u);
  // The counting components alone still pin the ring exactly (see above).
  EXPECT_EQ(cert.lower_bound, n / 2 - 1 + k);
}

TEST(Certify, ZeroServerUploadClampsToTheHorizonCap) {
  EngineConfig cfg = unit_cfg(4, 2);
  cfg.upload_capacities = {0, 1, 1, 1};
  CertifyOptions opts;
  opts.horizon_cap = 99;
  const CompletionCertificate cert = certify_completion_bound(
      cfg, Topology::complete(4), BarterModel::kCooperative, opts);
  EXPECT_EQ(cert.lower_bound, 99u);
  EXPECT_EQ(cert.last_block_bound, 99u);
}

TEST(CertifiedPrice, RatioAndGuards) {
  EXPECT_DOUBLE_EQ(certified_price(30, 15), 2.0);
  EXPECT_DOUBLE_EQ(certified_price(0, 15), 0.0);
  EXPECT_DOUBLE_EQ(certified_price(30, 0), 0.0);
}

}  // namespace
}  // namespace pob::flow
