// End-to-end checks of the paper's headline comparative claims, at scales
// small enough for CI.

#include <gtest/gtest.h>

#include "pob/analysis/bounds.h"
#include "pob/core/engine.h"
#include "pob/core/metrics.h"
#include "pob/mech/barter.h"
#include "pob/overlay/builders.h"
#include "pob/rand/randomized.h"
#include "pob/sched/binomial_pipeline.h"
#include "pob/sched/binomial_tree.h"
#include "pob/sched/multicast_tree.h"
#include "pob/sched/pipeline.h"
#include "pob/sched/riffle_pipeline.h"

namespace pob {
namespace {

Tick run_to_completion(Scheduler& sched, std::uint32_t n, std::uint32_t k,
                       std::uint32_t download = kUnlimited) {
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  cfg.download_capacity = download;
  const RunResult r = run(cfg, sched);
  EXPECT_TRUE(r.completed);
  return r.completion_tick;
}

TEST(PaperClaims, Section22Ordering) {
  // For moderate n and k: binomial pipeline < pipeline < binary multicast
  // tree < block-at-a-time binomial tree. (The orderings flip in extreme
  // regimes; this grid is the paper's motivating middle ground.)
  const std::uint32_t n = 64, k = 64;
  BinomialPipelineScheduler bp(n, k);
  PipelineScheduler pipe(n, k);
  MulticastTreeScheduler tree(n, k, 2);
  BinomialTreeScheduler btree(n, k);
  const Tick t_bp = run_to_completion(bp, n, k, 1);
  const Tick t_pipe = run_to_completion(pipe, n, k, 1);
  const Tick t_tree = run_to_completion(tree, n, k, 1);
  const Tick t_btree = run_to_completion(btree, n, k, 1);
  EXPECT_EQ(t_bp, cooperative_lower_bound(n, k));
  EXPECT_LT(t_bp, t_pipe);
  EXPECT_LT(t_pipe, t_tree);
  EXPECT_LT(t_tree, t_btree);
}

TEST(PaperClaims, PipelineBeatsTreeForSmallK) {
  // k = 1 flips it: the binomial tree is optimal, the pipeline pays n - 1.
  const std::uint32_t n = 64;
  BinomialTreeScheduler btree(n, 1);
  PipelineScheduler pipe(n, 1);
  EXPECT_LT(run_to_completion(btree, n, 1), run_to_completion(pipe, n, 1));
}

TEST(PaperClaims, PriceOfBarterIsRoughlyTwoAtEqualNK) {
  // T_barter / T_coop -> ~2 when k = n - 1 (both linear in n + k).
  const std::uint32_t n = 128, k = 127;
  RifflePipelineScheduler riffle(n, k, 1, 2);
  BinomialPipelineScheduler bp(n, k);
  const auto t_riffle = static_cast<double>(run_to_completion(riffle, n, k, 2));
  const auto t_bp = static_cast<double>(run_to_completion(bp, n, k, 1));
  const double ratio = t_riffle / t_bp;
  EXPECT_GT(ratio, 1.6);
  EXPECT_LT(ratio, 2.1);
  EXPECT_NEAR(ratio, price_of_barter(n, k), 0.25);
}

TEST(PaperClaims, BarterPenaltyVanishesForHugeFiles) {
  // With k >> n the start-up cost amortizes: ratio -> 1.
  const std::uint32_t n = 16, k = 1200;
  RifflePipelineScheduler riffle(n, k, 1, 2);
  BinomialPipelineScheduler bp(n, k);
  const auto t_riffle = static_cast<double>(run_to_completion(riffle, n, k, 2));
  const auto t_bp = static_cast<double>(run_to_completion(bp, n, k, 1));
  EXPECT_LT(t_riffle / t_bp, 1.05);
}

TEST(PaperClaims, RandomizedAmortizationBeatsTheIntuition) {
  // §2.4.3 argued at most 5/6 of nodes can transmit every tick; §2.4.4's
  // measurements refute the pessimistic conclusion — mean utilization is far
  // above 2/3 and "bad" ticks are compensated by 100% ticks.
  const std::uint32_t n = 256, k = 256;
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  RandomizedScheduler sched(std::make_shared<CompleteOverlay>(n), {}, Rng(21));
  const RunResult r = run(cfg, sched);
  ASSERT_TRUE(r.completed);
  const UtilizationSummary u = summarize_utilization(r, cfg);
  EXPECT_GT(u.mean, 0.8);
  EXPECT_GT(u.full_ticks, 0u);
  // Near-optimal completion is the sharper form of the same claim.
  EXPECT_LT(static_cast<double>(r.completion_tick),
            1.2 * static_cast<double>(cooperative_lower_bound(n, k)));
}

TEST(PaperClaims, HypercubeOverlayMatchesCompleteGraph) {
  // §2.4.4: the randomized algorithm on the hypercube-like overlay (avg
  // degree Θ(log n)) performs like the complete graph.
  const std::uint32_t n = 256, k = 128;
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  RandomizedScheduler complete(std::make_shared<CompleteOverlay>(n), {}, Rng(23));
  RandomizedScheduler cube(std::make_shared<GraphOverlay>(make_hypercube_overlay(n)),
                           {}, Rng(23));
  const RunResult rc = run(cfg, complete);
  cfg = EngineConfig{};
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  const RunResult rh = run(cfg, cube);
  ASSERT_TRUE(rc.completed);
  ASSERT_TRUE(rh.completed);
  const double ratio = static_cast<double>(rh.completion_tick) /
                       static_cast<double>(rc.completion_tick);
  EXPECT_GT(ratio, 0.85);
  EXPECT_LT(ratio, 1.15);
}

TEST(PaperClaims, StrictBarterLowerBoundHolds) {
  // No strict-barter run in this codebase may beat Theorem 2.
  for (const std::uint32_t n : {8u, 16u, 32u}) {
    const std::uint32_t k = n - 1;
    EngineConfig cfg;
    cfg.num_nodes = n;
    cfg.num_blocks = k;
    cfg.download_capacity = 2;
    RifflePipelineScheduler sched(n, k, 1, 2);
    StrictBarter mech;
    const RunResult r = run(cfg, sched, &mech);
    ASSERT_TRUE(r.completed);
    EXPECT_GE(r.completion_tick, strict_barter_lower_bound_ramp(n, k));
  }
}

}  // namespace
}  // namespace pob
