#include <stdexcept>

#include "pob/overlay/builders.h"

namespace pob {

Graph make_ring(std::uint32_t n) {
  if (n < 3) throw std::invalid_argument("make_ring: need n >= 3");
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) g.add_edge(u, (u + 1) % n);
  g.finalize();
  return g;
}

}  // namespace pob
