#include "pob/sched/binomial_tree.h"

#include <gtest/gtest.h>

#include "pob/core/engine.h"
#include "pob/overlay/builders.h"

namespace pob {
namespace {

RunResult run_binomial(std::uint32_t n, std::uint32_t k) {
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  cfg.download_capacity = 1;
  BinomialTreeScheduler sched(n, k);
  return run(cfg, sched);
}

TEST(BinomialTree, SingleBlockIsOptimal) {
  // §2.2.3: for k = 1 the binomial tree completes in ceil(log2 n) ticks,
  // which is optimal.
  for (const std::uint32_t n : {2u, 3u, 4u, 7u, 8u, 9u, 100u, 128u, 1000u}) {
    const RunResult r = run_binomial(n, 1);
    ASSERT_TRUE(r.completed) << n;
    EXPECT_EQ(r.completion_tick, ceil_log2(n)) << n;
  }
}

class BinomialTreeGrid
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(BinomialTreeGrid, BlockAtATimeIsKTimesLogN) {
  const auto [n, k] = GetParam();
  const RunResult r = run_binomial(n, k);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.completion_tick, BinomialTreeScheduler::completion_time(n, k));
  EXPECT_EQ(r.completion_tick, k * ceil_log2(n));
}

INSTANTIATE_TEST_SUITE_P(Grid, BinomialTreeGrid,
                         ::testing::Combine(::testing::Values(2u, 5u, 8u, 16u, 33u, 100u),
                                            ::testing::Values(1u, 2u, 7u, 20u)));

TEST(BinomialTree, HoldersDoublePerTick) {
  EngineConfig cfg;
  cfg.num_nodes = 16;
  cfg.num_blocks = 1;
  cfg.record_trace = true;
  BinomialTreeScheduler sched(16, 1);
  const RunResult r = run(cfg, sched);
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.trace.size(), 4u);
  // Tick t sees 2^(t-1) transfers: 1, 2, 4, 8.
  for (Tick t = 1; t <= 4; ++t) {
    EXPECT_EQ(r.trace[t - 1].size(), 1u << (t - 1)) << "tick " << t;
  }
}

}  // namespace
}  // namespace pob
