#include "pob/exp/parallel.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace pob {

// trial_seed is inline in the header (hot in the scale engine).

unsigned default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

unsigned jobs_from_flag(std::int64_t jobs) {
  if (jobs < 0) {
    throw std::invalid_argument("--jobs must be >= 0 (got " +
                                std::to_string(jobs) + ")");
  }
  // Oversubscribing a little can help with uneven trials, but --jobs=100000
  // is always a typo; cap at 4x the hardware so it can't thread-bomb the box.
  const std::uint64_t cap = 4ull * default_jobs();
  if (static_cast<std::uint64_t>(jobs) > cap) {
    return static_cast<unsigned>(cap);
  }
  return static_cast<unsigned>(jobs);
}

ThreadPool::ThreadPool(unsigned jobs) {
  if (jobs == 0) jobs = default_jobs();
  workers_.reserve(jobs - 1);
  for (unsigned i = 1; i < jobs; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::uint32_t)>* body = nullptr;
    std::uint32_t count = 0;
    std::uint32_t chunk = 1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      // Adopt the dispatch entirely under the lock: body_ is nullptr once its
      // parallel_for has returned, so a worker that wakes late sees either a
      // complete, still-live dispatch or nothing at all.
      body = body_;
      count = count_;
      chunk = chunk_;
      if (body != nullptr) ++in_flight_;
    }
    if (body != nullptr) {
      drain(*body, count, chunk);
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::drain(const std::function<void(std::uint32_t)>& body,
                       const std::uint32_t count, const std::uint32_t chunk) {
  for (;;) {
    const std::uint32_t begin = next_.fetch_add(chunk, std::memory_order_relaxed);
    if (begin >= count) return;
    const std::uint32_t end = std::min(count, begin + chunk);
    for (std::uint32_t i = begin; i < end; ++i) {
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!error_) error_ = std::current_exception();
      }
      if (done_.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
        std::lock_guard<std::mutex> lock(mu_);  // pairs with the waiter's wait
        all_done_.notify_all();
      }
    }
  }
}

void ThreadPool::parallel_for(std::uint32_t count,
                              const std::function<void(std::uint32_t)>& body) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (std::uint32_t i = 0; i < count; ++i) body(i);
    return;
  }
  // Small chunks keep threads balanced when per-trial cost varies (censored
  // runs finish early; completed ones run long); one item per claim once
  // the pool is large relative to the range.
  const std::uint32_t chunk = std::max(1u, count / (jobs() * 8u));
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    count_ = count;
    chunk_ = chunk;
    next_.store(0, std::memory_order_relaxed);
    done_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    ++generation_;
  }
  wake_.notify_all();
  drain(body, count, chunk);  // the calling thread is the jobs-th worker
  // Wait for the items *and* the workers: every item done, and no worker
  // still inside drain() for this dispatch. Workers that never woke are
  // harmless — they adopt under mu_ and find body_ already nulled below.
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [&] {
    return done_.load(std::memory_order_acquire) == count && in_flight_ == 0;
  });
  body_ = nullptr;
  if (error_) {
    std::exception_ptr err = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

TrialStats repeat_trials_parallel(
    std::uint32_t runs, unsigned jobs,
    const std::function<TrialOutcome(std::uint32_t)>& trial) {
  if (jobs == 0) jobs = default_jobs();
  if (jobs <= 1 || runs <= 1) return repeat_trials(runs, trial);
  std::vector<TrialOutcome> outcomes(runs);
  ThreadPool pool(std::min<unsigned>(jobs, runs));
  pool.parallel_for(runs, [&](std::uint32_t i) { outcomes[i] = trial(i); });
  return aggregate_trials(outcomes);
}

}  // namespace pob
