#include "pob/sched/multi_server.h"

#include <numeric>
#include <stdexcept>

namespace pob {

MultiServerScheduler::MultiServerScheduler(std::uint32_t num_nodes,
                                           std::uint32_t num_blocks,
                                           std::uint32_t num_virtual_servers) {
  if (num_virtual_servers < 1) {
    throw std::invalid_argument("multi-server: need >= 1 virtual server");
  }
  if (num_nodes < num_virtual_servers + 1) {
    throw std::invalid_argument("multi-server: need at least one client per group");
  }
  std::vector<std::vector<NodeId>> groups(num_virtual_servers);
  for (NodeId c = 1; c < num_nodes; ++c) {
    groups[(c - 1) % num_virtual_servers].push_back(c);
  }
  std::vector<BlockId> blocks(num_blocks);
  std::iota(blocks.begin(), blocks.end(), BlockId{0});
  for (auto& group : groups) {
    std::vector<NodeId> participants;
    participants.reserve(group.size() + 1);
    participants.push_back(kServer);
    participants.insert(participants.end(), group.begin(), group.end());
    pipelines_.push_back(
        std::make_unique<BinomialPipelineScheduler>(std::move(participants), blocks));
  }
}

void MultiServerScheduler::plan_tick(Tick tick, const SwarmState& state,
                                     std::vector<Transfer>& out) {
  for (const auto& pipeline : pipelines_) pipeline->plan_tick(tick, state, out);
}

}  // namespace pob
