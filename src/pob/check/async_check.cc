#include "pob/check/async_check.h"

#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

namespace pob::check {
namespace {

// Event times round-trip through now + 1/rate then start = now - 1/rate, so
// exact equality is too strict; the slack is far below any 1/rate duration.
constexpr double kTol = 1e-6;

std::string entry_str(std::size_t i, const AsyncTransfer& e) {
  std::ostringstream os;
  os << "log[" << i << "] " << e.transfer.from << "->" << e.transfer.to << " block "
     << e.transfer.block << " [" << e.start << ", " << e.finish << "]";
  return os.str();
}

}  // namespace

std::optional<std::string> check_async_log(const AsyncConfig& config,
                                           const AsyncResult& result) {
  const std::uint32_t n = config.num_nodes;
  const std::uint32_t k = config.num_blocks;
  std::vector<double> rate = config.upload_rate;
  if (rate.empty()) rate.assign(n, 1.0);
  if (rate.size() != n) return "upload_rate has wrong length";

  if (result.total_transfers != result.log.size()) {
    return "total_transfers=" + std::to_string(result.total_transfers) +
           " but the log has " + std::to_string(result.log.size()) + " entries";
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // acquired[u][b]: when u gained block b (server: 0, never delivered to).
  std::vector<std::vector<double>> acquired(n, std::vector<double>(k, kInf));
  for (BlockId b = 0; b < k; ++b) acquired[kServer][b] = 0.0;
  std::vector<double> port_free(n, 0.0);  // sender's upload port frees up at
  double prev_finish = 0.0;

  for (std::size_t i = 0; i < result.log.size(); ++i) {
    const AsyncTransfer& e = result.log[i];
    const Transfer& tr = e.transfer;
    if (tr.from >= n || tr.to >= n || tr.block >= k) {
      return entry_str(i, e) + ": out of range";
    }
    if (tr.from == tr.to) return entry_str(i, e) + ": self-transfer";
    if (tr.to == kServer) return entry_str(i, e) + ": delivery to the server";
    if (std::abs(e.finish - e.start - 1.0 / rate[tr.from]) > kTol) {
      return entry_str(i, e) + ": duration is not 1/rate(" +
             std::to_string(tr.from) + ")";
    }
    if (e.finish < prev_finish - kTol) {
      return entry_str(i, e) + ": log is not in completion order";
    }
    prev_finish = e.finish;
    if (acquired[tr.from][tr.block] > e.start + kTol) {
      return entry_str(i, e) + ": sender had not received the block when the "
                               "upload started";
    }
    if (acquired[tr.to][tr.block] != kInf) {
      return entry_str(i, e) + ": receiver already got this block at t=" +
             std::to_string(acquired[tr.to][tr.block]);
    }
    if (e.start < port_free[tr.from] - kTol) {
      return entry_str(i, e) + ": overlaps the sender's previous upload "
                               "(port busy until t=" +
             std::to_string(port_free[tr.from]) + ")";
    }
    port_free[tr.from] = e.finish;
    acquired[tr.to][tr.block] = e.finish;
  }

  // Download ports: at any instant, at most `download_ports` transfers may be
  // in flight toward one receiver. Counting, for each transfer, how many
  // intervals toward the same receiver cover its start instant is exact: the
  // in-flight count only changes at starts, so its maximum is attained at one.
  if (config.download_ports != kUnlimited) {
    for (std::size_t i = 0; i < result.log.size(); ++i) {
      const AsyncTransfer& e = result.log[i];
      std::uint32_t in_flight = 0;
      for (const AsyncTransfer& other : result.log) {
        if (other.transfer.to == e.transfer.to && other.start <= e.start + kTol &&
            e.start < other.finish - kTol) {
          ++in_flight;
        }
      }
      if (in_flight > config.download_ports) {
        return entry_str(i, e) + ": " + std::to_string(in_flight) +
               " concurrent inbound transfers exceed download_ports=" +
               std::to_string(config.download_ports);
      }
    }
  }

  // Completion statistics must be derivable from the log alone.
  bool all_complete = true;
  double last = 0.0, sum = 0.0;
  for (NodeId c = 1; c < n; ++c) {
    double done = 0.0;
    bool full = true;
    for (BlockId b = 0; b < k; ++b) {
      if (acquired[c][b] == kInf) {
        full = false;
        break;
      }
      done = std::max(done, acquired[c][b]);
    }
    const double reported = result.client_completion[c - 1];
    if (full != !std::isnan(reported)) {
      return "client " + std::to_string(c) + ": log says " +
             (full ? "complete" : "incomplete") + " but client_completion says " +
             (std::isnan(reported) ? "censored" : "finished");
    }
    if (full && std::abs(reported - done) > kTol) {
      return "client " + std::to_string(c) + ": finished at t=" +
             std::to_string(done) + " per the log but client_completion=" +
             std::to_string(reported);
    }
    all_complete = all_complete && full;
    last = std::max(last, done);
    sum += done;
  }
  if (result.completed != all_complete) {
    return std::string("completed flag is ") + (result.completed ? "true" : "false") +
           " but the log says otherwise";
  }
  if (result.completed) {
    if (std::abs(result.completion_time - last) > kTol) {
      return "completion_time=" + std::to_string(result.completion_time) +
             " but the last client finished at t=" + std::to_string(last);
    }
    const double mean = sum / static_cast<double>(n - 1);
    if (std::abs(result.mean_completion_time - mean) > kTol) {
      return "mean_completion_time=" + std::to_string(result.mean_completion_time) +
             " but the log's mean is " + std::to_string(mean);
    }
  }
  return std::nullopt;
}

}  // namespace pob::check
