// E9 — machine-checked mechanism compliance (§3.2.2, §3.3).
//
// Runs each deterministic algorithm under each incentive mechanism and
// reports whether the engine's validator accepted every tick, plus the
// completion time when it did. Documents the verified compliance map:
// binomial pipeline needs only CreditLimited(1) at n = 2^m, CyclicBarter(4,1)
// in general; the riffle pipeline satisfies strict barter everywhere.

#include <functional>
#include <iostream>
#include <memory>

#include "bench_util.h"
#include "pob/mech/barter.h"
#include "pob/sched/binomial_pipeline.h"
#include "pob/sched/riffle_pipeline.h"

namespace pob::bench {
namespace {

std::string attempt(const std::function<std::unique_ptr<Scheduler>()>& make_sched,
                    Mechanism& mech, std::uint32_t n, std::uint32_t k,
                    std::uint32_t download) {
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  cfg.download_capacity = download;
  auto sched = make_sched();
  try {
    const RunResult r = run(cfg, *sched, &mech);
    return r.completed ? "OK T=" + std::to_string(r.completion_tick) : "incomplete";
  } catch (const EngineViolation&) {
    return "VIOLATION";
  }
}

int main_impl(int argc, char** argv) {
  const Args args(argc, argv);
  std::vector<std::int64_t> ns = args.get_int_list("n", {16, 64, 11, 100, 200});
  const auto k = static_cast<std::uint32_t>(args.get_int("k", 64));

  Table table({"algorithm", "n", "k", "strict", "credit(1)", "triangular(3,1)",
               "cyclic(4,1)"});
  for (const std::int64_t n64 : ns) {
    const auto n = static_cast<std::uint32_t>(n64);
    {
      const auto make = [&]() -> std::unique_ptr<Scheduler> {
        return std::make_unique<BinomialPipelineScheduler>(n, k);
      };
      StrictBarter strict;
      CreditLimited credit(1);
      CyclicBarter tri(3, 1);
      CyclicBarter quad(4, 1);
      table.add_row({"binomial-pipeline", std::to_string(n), std::to_string(k),
                     attempt(make, strict, n, k, 1), attempt(make, credit, n, k, 1),
                     attempt(make, tri, n, k, 1), attempt(make, quad, n, k, 1)});
    }
    {
      const auto make = [&]() -> std::unique_ptr<Scheduler> {
        return std::make_unique<RifflePipelineScheduler>(n, k, 1, 2);
      };
      StrictBarter strict;
      CreditLimited credit(1);
      CyclicBarter tri(3, 1);
      CyclicBarter quad(4, 1);
      table.add_row({"riffle-pipeline", std::to_string(n), std::to_string(k),
                     attempt(make, strict, n, k, 2), attempt(make, credit, n, k, 2),
                     attempt(make, tri, n, k, 2), attempt(make, quad, n, k, 2)});
    }
  }
  std::cout << "# E9: which algorithm satisfies which barter mechanism "
               "(every tick engine-validated)\n";
  emit(args, table);
  std::cout << "\nnote: at n = 2^m the binomial pipeline's client transfers are pure\n"
               "pairwise exchanges, so credit(1) suffices; at general n the doubled-\n"
               "vertex construction produces quadrilateral barter cycles, hence\n"
               "cyclic(4,1) passes where triangular(3,1) does not (refines §3.3).\n";
  return 0;
}

}  // namespace
}  // namespace pob::bench

int main(int argc, char** argv) { return pob::bench::main_impl(argc, argv); }
