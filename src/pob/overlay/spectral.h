// Spectral diagnostics for overlay graphs.
//
// §2.4.4 conjectures that the randomized algorithm's degree threshold "may
// be related to the mixing properties of G, with near-optimal performance
// kicking in when the graph degree is Θ(log n)". Mixing is governed by the
// spectral gap 1 - λ₂ of the random-walk (degree-normalized) adjacency
// operator; this module estimates λ₂ by power iteration with deflation
// against the stationary vector, so the conjecture becomes measurable
// (bench/table_mixing correlates the gap with completion times).

#pragma once

#include <cstdint>

#include "pob/core/rng.h"
#include "pob/overlay/graph.h"

namespace pob {

struct SpectralEstimate {
  double lambda2 = 0.0;  ///< second-largest (signed) eigenvalue of P = D^-1 A
  double gap = 0.0;      ///< 1 - lambda2; bigger = faster mixing (can exceed 1)
  std::uint32_t iterations = 0;
};

/// Estimates the second-largest signed eigenvalue of the random-walk matrix
/// P = D^-1 A via power iteration on the LAZY walk (I + P)/2 — whose
/// spectrum is nonnegative, making the iteration immune to bipartite
/// graphs' -1 eigenvalue — deflated against the stationary distribution
/// (proportional to degree). Requires min degree >= 1; a disconnected graph
/// reports lambda2 = 1 (gap 0) immediately. A few hundred iterations give
/// two-digit precision on the graphs used here.
SpectralEstimate estimate_lambda2(const Graph& graph, Rng& rng,
                                  std::uint32_t iterations = 300);

}  // namespace pob
