// pobfuzz: deterministic scenario fuzzing against the differential oracle.
//
//   pobfuzz --seed=42 --budget=2000 --jobs=8
//       Run 2000 sampled scenarios through the fast engine and the reference
//       engine, failing on any disagreement or paper-invariant violation.
//       Output on stdout is identical at any --jobs value (timing goes to
//       stderr); exit status 1 when any scenario fails.
//
//   pobfuzz ... --minimize
//       Additionally shrink the first failure to a (locally) minimal repro
//       and print it as a ready-to-paste gtest case.
//
//   pobfuzz ... --break=same-tick-forward
//       Inject the off-by-one forwarding fault into every scenario's
//       scheduler — a self-test that the oracle actually catches bugs.
//
//   pobfuzz ... --engine=core|scale|stream|mixed
//       Restrict which engine the scenarios run on. `scale` forces every
//       scenario through the mega-swarm engine (serial vs threaded vs
//       core-mirrored cross-check); `stream` forces the hybrid tick+event
//       layer (arrivals, rate churn, playback demand, async-mirrored);
//       default `mixed` is the sampler's blend.
//
//   pobfuzz --write-corpus=tests/check/corpus
//       Regenerate the golden trace corpus in place.

#include <chrono>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>

#include "pob/check/async_check.h"
#include "pob/check/corpus.h"
#include "pob/check/fuzzer.h"
#include "pob/exp/cli.h"
#include "pob/exp/parallel.h"

namespace {

using namespace pob;
using namespace pob::check;

int write_corpus(const std::string& dir) {
  for (const CorpusEntry& entry : golden_corpus()) {
    const std::string path = dir + "/" + entry.filename;
    std::ofstream os(path, std::ios::binary);
    if (!os) {
      std::cerr << "pobfuzz: cannot write " << path << "\n";
      return 1;
    }
    os << render_corpus_entry(entry);
    std::cout << "wrote " << path << "\n";
  }
  const AsyncGolden async = async_golden();
  if (const auto err = check_async_log(async.config, async.result)) {
    std::cerr << "pobfuzz: async golden is itself illegal: " << *err << "\n";
    return 1;
  }
  const std::string path = dir + "/" + async.filename;
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    std::cerr << "pobfuzz: cannot write " << path << "\n";
    return 1;
  }
  os << async.text;
  std::cout << "wrote " << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  try {
    const std::string corpus_dir = args.get_string("write-corpus", "");
    if (!corpus_dir.empty()) return write_corpus(corpus_dir);

    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    const auto budget = static_cast<std::uint32_t>(args.get_int("budget", 1000));
    const unsigned jobs = jobs_from_flag(args.get_int("jobs", 0));
    FaultKind fault = FaultKind::kNone;
    const std::string broken = args.get_string("break", "");
    if (broken == "same-tick-forward") {
      fault = FaultKind::kSameTickForward;
    } else if (!broken.empty()) {
      std::cerr << "pobfuzz: unknown --break=" << broken
                << " (known: same-tick-forward)\n";
      return 2;
    }
    EngineFilter engines = EngineFilter::kMixed;
    const std::string engine = args.get_string("engine", "mixed");
    if (engine == "core") {
      engines = EngineFilter::kCoreOnly;
    } else if (engine == "scale") {
      engines = EngineFilter::kScaleOnly;
    } else if (engine == "stream") {
      engines = EngineFilter::kStreamOnly;
    } else if (engine != "mixed") {
      std::cerr << "pobfuzz: unknown --engine=" << engine
                << " (known: core, scale, stream, mixed)\n";
      return 2;
    }

    const auto t0 = std::chrono::steady_clock::now();
    const FuzzReport report = fuzz_many(seed, budget, jobs, fault, engines);
    const auto elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0);

    std::cout << "pobfuzz seed=" << seed << " budget=" << report.budget
              << " failed=" << report.failed << " digest=" << std::hex
              << report.stream_digest << std::dec << "\n";
    std::cerr << "elapsed " << elapsed.count() << "s at jobs="
              << (jobs == 0 ? default_jobs() : jobs) << "\n";

    for (const FuzzFailure& f : report.failures) {
      std::cout << "FAIL #" << f.index << " " << f.scenario.describe() << "\n"
                << "  " << f.diagnosis << "\n";
    }
    if (report.failed > report.failures.size()) {
      std::cout << "(" << (report.failed - report.failures.size())
                << " more failures not shown)\n";
    }

    if (report.failed != 0 && args.has("minimize")) {
      const MinimizedScenario min = minimize(report.failures.front().scenario);
      std::cout << "\nminimized after " << min.steps_tried << " runs to: "
                << min.scenario.describe() << "\n"
                << "  " << min.diagnosis << "\n\n"
                << min.scenario.to_gtest(min.diagnosis);
    }
    return report.failed == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "pobfuzz: " << e.what() << "\n";
    return 2;
  }
}
