#include "pob/scale/hugemem.h"

#include <cstring>
#include <new>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace pob::scale {
namespace {

// Requests below this use ordinary pages even when the hugetlb pool has
// room: rounding a small test-sized engine up to 2 MiB per array would
// pin real (unswappable) hugetlb pages for kilobytes of payload and could
// drain the pool before the benchmark-scale arenas — the ones the pool
// exists for — get a chance to claim it. 1 MiB keeps every per-node array
// of a million-node engine (even the 1-byte-per-node active flags) on big
// pages — they are all random-read per probe — while the worst-case
// rounding waste stays at one page.
constexpr std::size_t kHugetlbThreshold = std::size_t{1} << 20;
constexpr std::size_t kHugePage = std::size_t{2} << 20;
constexpr std::size_t kPage = 4096;

constexpr std::size_t round_up(std::size_t v, std::size_t unit) {
  return (v + unit - 1) / unit * unit;
}

// The mapping length is a pure function of the request size so that
// huge_free can reconstruct it without per-allocation bookkeeping. Large
// requests are rounded to the hugetlb unit on EVERY path (a hugetlb
// attempt that falls back still maps the rounded length), so free never
// has to know which path won.
constexpr std::size_t mapping_length(std::size_t bytes) {
  return bytes >= kHugetlbThreshold ? round_up(bytes, kHugePage)
                                    : round_up(bytes, kPage);
}

}  // namespace

void advise_hugepages(const void* data, std::size_t bytes) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  // Round inward to whole pages: madvise wants an aligned start, and pages
  // we only partially own must not be advised.
  const auto addr = reinterpret_cast<std::uintptr_t>(data);
  const std::uintptr_t lo = (addr + kPage - 1) & ~(kPage - 1);
  const std::uintptr_t hi = (addr + bytes) & ~(kPage - 1);
  if (hi > lo) {
    // Failure (old kernel, THP off) is fine: purely a perf hint.
    (void)madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_HUGEPAGE);
  }
#else
  (void)data;
  (void)bytes;
#endif
}

void* huge_alloc(std::size_t bytes) {
  if (bytes == 0) return nullptr;
#if defined(__linux__)
  const std::size_t len = mapping_length(bytes);
#if defined(MAP_HUGETLB)
  if (bytes >= kHugetlbThreshold) {
    // Without MAP_NORESERVE the pool reservation happens here, so a
    // depleted or absent pool fails the mmap itself — no lazy-fault
    // surprises later.
    void* p = mmap(nullptr, len, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB, -1, 0);
    if (p != MAP_FAILED) return p;
  }
#endif
  void* p = mmap(nullptr, len, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) throw std::bad_alloc{};  // genuine memory exhaustion
  advise_hugepages(p, len);
  return p;
#else
  void* p = ::operator new(bytes);
  std::memset(p, 0, bytes);
  return p;
#endif
}

void huge_free(void* ptr, std::size_t bytes) noexcept {
  if (ptr == nullptr) return;
#if defined(__linux__)
  // Every Linux allocation is an mmap (huge_alloc throws rather than fall
  // back to the heap), so the length derivation below is always valid.
  (void)munmap(ptr, mapping_length(bytes));
#else
  (void)bytes;
  ::operator delete(ptr);
#endif
}

}  // namespace pob::scale
