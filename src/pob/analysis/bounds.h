// Closed-form completion times and lower bounds from the paper (§2.2, §3.1,
// §3.2), used by tests to pin measured schedules to theory and by benches to
// report "paper vs measured".

#pragma once

#include <cstdint>

#include "pob/core/types.h"

namespace pob {

/// Theorem 1: any cooperative algorithm needs >= k - 1 + ceil(log2 n) ticks
/// to deliver k blocks to n - 1 clients (n nodes counting the server).
Tick cooperative_lower_bound(std::uint32_t num_nodes, std::uint32_t num_blocks);

/// §2.2.1: the pipeline completes in exactly k + n - 2 ticks.
Tick pipeline_completion(std::uint32_t num_nodes, std::uint32_t num_blocks);

/// §2.2.3: sending one block at a time through binomial trees completes in
/// k * ceil(log2 n) ticks.
Tick binomial_tree_completion(std::uint32_t num_nodes, std::uint32_t num_blocks);

/// §2.2.2's estimate for the d-ary multicast tree,
/// d * (k + ceil(log_d(n)) - 1). This is an upper-bound-flavored
/// approximation of the tree schedule's completion, NOT a lower bound on
/// optimal schedules: the simulated tree may finish earlier for ragged
/// trees, and non-tree schedules finish far earlier still. For certified
/// per-overlay lower bounds use pob/flow/certify.h instead.
Tick multicast_tree_estimate(std::uint32_t num_nodes, std::uint32_t num_blocks,
                             std::uint32_t arity);

/// Theorem 2, d = u case: strict barter needs >= n + k - 2 ticks.
Tick strict_barter_lower_bound_equal_bw(std::uint32_t num_nodes, std::uint32_t num_blocks);

/// Theorem 2, d >= 2u case: the capability ramp. Clients can only start
/// bartering after the server seeds them (at most one new client per tick),
/// and barter moves blocks in pairs, so uploads at tick t are at most
/// 1 + 2*floor(min(t - 1, n - 1) / 2). The bound is the smallest T whose
/// cumulative upload budget covers the (n - 1) * k blocks clients must
/// receive.
Tick strict_barter_lower_bound_ramp(std::uint32_t num_nodes, std::uint32_t num_blocks);

/// Theorem 2 generalized to arbitrary uniform capacities: client upload u,
/// client download d, and server upload us blocks per tick. Two independent
/// counting arguments, combined by max:
///  - seeding: under strict barter a client's first block can only come from
///    the server, so the last-seeded client starts at ceil((n - 1) / us) and
///    then needs k - 1 more blocks at rate min(d, u + us);
///  - pairing ramp: at tick t at most min(us * (t - 1), n - 1) clients hold
///    anything, barter transfers pair up (even count, bounded by the capable
///    clients' aggregate upload u * capable), and the server adds us more.
/// At u = d = us = 1 both the equal-bandwidth bound (n + k - 2) and the unit
/// ramp above are special cases of this function.
Tick strict_barter_lower_bound_general(std::uint32_t num_nodes, std::uint32_t num_blocks,
                                       std::uint32_t upload, std::uint32_t download,
                                       std::uint32_t server_upload);

/// The "price of barter": strict-barter lower bound over cooperative lower
/// bound, the paper's headline efficiency-loss ratio.
double price_of_barter(std::uint32_t num_nodes, std::uint32_t num_blocks);

/// §2.3.4 multi-server: with server bandwidth m*u and clients split into m
/// groups, the per-group optimum is k - 1 + ceil(log2(group + 1)).
Tick multi_server_estimate(std::uint32_t num_nodes, std::uint32_t num_blocks,
                           std::uint32_t num_virtual_servers);

}  // namespace pob
