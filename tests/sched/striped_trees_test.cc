#include "pob/sched/striped_trees.h"

#include <gtest/gtest.h>

#include "pob/analysis/bounds.h"
#include "pob/core/engine.h"
#include "pob/core/metrics.h"
#include "pob/overlay/builders.h"

namespace pob {
namespace {

RunResult run_striped(std::uint32_t n, std::uint32_t k, std::uint32_t stripes) {
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  // A node is a leaf in stripes-1 trees and interior in one: inbound
  // bandwidth must cover concurrent stripes (the SplitStream assumption).
  cfg.download_capacity = stripes;
  StripedTreesScheduler sched(n, k, stripes);
  return run(cfg, sched);
}

TEST(StripedTrees, OneStripeIsASingleTree) {
  const RunResult r = run_striped(8, 8, 1);
  ASSERT_TRUE(r.completed);
  EXPECT_GE(r.completion_tick, cooperative_lower_bound(8, 8));
}

class StripedGrid
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> {};

TEST_P(StripedGrid, CompletesWithBoundedOverhead) {
  const auto [n, k, stripes] = GetParam();
  const RunResult r = run_striped(n, k, stripes);
  ASSERT_TRUE(r.completed) << "n=" << n << " k=" << k << " s=" << stripes;
  EXPECT_GE(r.completion_tick, cooperative_lower_bound(n, k));
  // SplitStream-flavor bound: interior nodes make up to 2 children + ~s-1
  // leaf sends per stripe block, so the per-block serialization overhead is
  // bounded by ~2/stripes on top of k, plus depth terms.
  const double budget = static_cast<double>(k) * (1.0 + 2.0 / stripes) +
                        8.0 * stripes * (ceil_log2(n) + 2.0) + 16.0;
  EXPECT_LE(static_cast<double>(r.completion_tick), budget)
      << "n=" << n << " k=" << k << " s=" << stripes;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StripedGrid,
    ::testing::Combine(::testing::Values(16u, 33u, 64u, 100u),
                       ::testing::Values(16u, 64u, 256u), ::testing::Values(2u, 4u, 8u)));

TEST(StripedTrees, InteriorLoadIsBalanced) {
  // SplitStream's selling point: every client is interior in exactly one
  // stripe, so upload load is spread across all clients.
  const RunResult r = run_striped(64, 256, 4);
  ASSERT_TRUE(r.completed);
  const FairnessSummary f = upload_fairness(r);
  EXPECT_GT(f.mean, 0.0);
  // No client should idle completely, and nobody should do the bulk alone.
  EXPECT_GT(f.min, 0.0);
  EXPECT_LT(f.gini, 0.5);
}

TEST(StripedTrees, MoreStripesImproveThroughputRegime) {
  // For k >> log n the k*(1 + 1/stripes) term dominates: more stripes means
  // less serialization at the interior nodes.
  const RunResult two = run_striped(64, 512, 2);
  const RunResult eight = run_striped(64, 512, 8);
  ASSERT_TRUE(two.completed);
  ASSERT_TRUE(eight.completed);
  EXPECT_LT(eight.completion_tick, two.completion_tick);
}

TEST(StripedTrees, RejectsBadParameters) {
  EXPECT_THROW(StripedTreesScheduler(1, 4, 1), std::invalid_argument);
  EXPECT_THROW(StripedTreesScheduler(4, 4, 0), std::invalid_argument);
  EXPECT_THROW(StripedTreesScheduler(4, 4, 4), std::invalid_argument);
}

}  // namespace
}  // namespace pob
