#include <gtest/gtest.h>

#include <algorithm>

#include "pob/overlay/builders.h"

namespace pob {
namespace {

class RandomRegular
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(RandomRegular, IsSimpleRegularAndConnected) {
  const auto [n, d] = GetParam();
  Rng rng(1000 + n * 131 + d);
  const Graph g = make_random_regular(n, d, rng);
  EXPECT_EQ(g.num_nodes(), n);
  EXPECT_EQ(g.num_edges(), static_cast<std::uint64_t>(n) * d / 2);
  for (NodeId u = 0; u < n; ++u) {
    ASSERT_EQ(g.degree(u), d) << "node " << u;
    for (const NodeId v : g.neighbors(u)) ASSERT_NE(v, u);
  }
  if (d >= 3) {
    EXPECT_TRUE(g.is_connected());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RandomRegular,
    ::testing::Values(std::make_tuple(10u, 3u), std::make_tuple(50u, 4u),
                      std::make_tuple(100u, 3u), std::make_tuple(100u, 10u),
                      std::make_tuple(200u, 7u), std::make_tuple(1000u, 20u),
                      std::make_tuple(1000u, 80u), std::make_tuple(500u, 140u),
                      std::make_tuple(64u, 63u)));

TEST(RandomRegularTest, DifferentSeedsGiveDifferentGraphs) {
  Rng a(1), b(2);
  const Graph ga = make_random_regular(100, 6, a);
  const Graph gb = make_random_regular(100, 6, b);
  int diff = 0;
  for (NodeId u = 0; u < 100; ++u) {
    const auto na = ga.neighbors(u);
    const auto nb = gb.neighbors(u);
    diff += !std::equal(na.begin(), na.end(), nb.begin(), nb.end());
  }
  EXPECT_GT(diff, 50);
}

TEST(RandomRegularTest, SameSeedIsDeterministic) {
  Rng a(9), b(9);
  const Graph ga = make_random_regular(80, 5, a);
  const Graph gb = make_random_regular(80, 5, b);
  for (NodeId u = 0; u < 80; ++u) {
    const auto na = ga.neighbors(u);
    const auto nb = gb.neighbors(u);
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()));
  }
}

TEST(RandomRegularTest, RejectsInfeasibleParameters) {
  Rng rng(3);
  EXPECT_THROW(make_random_regular(5, 5, rng), std::invalid_argument);   // d >= n
  EXPECT_THROW(make_random_regular(5, 3, rng), std::invalid_argument);   // n*d odd
  EXPECT_THROW(make_random_regular(10, 0, rng), std::invalid_argument);  // d = 0
}

TEST(RandomRegularTest, DegreeOneIsAPerfectMatching) {
  Rng rng(4);
  const Graph g = make_random_regular(10, 1, rng);
  for (NodeId u = 0; u < 10; ++u) EXPECT_EQ(g.degree(u), 1u);
}

}  // namespace
}  // namespace pob
