#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "pob/mech/barter.h"

namespace pob {
namespace {

std::uint64_t ordered_key(NodeId a, NodeId b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

CyclicBarter::CyclicBarter(std::uint32_t max_cycle_len, std::uint32_t credit_limit)
    : max_cycle_len_(max_cycle_len), credit_limit_(credit_limit) {
  if (max_cycle_len_ < 2) {
    throw std::invalid_argument("CyclicBarter: cycles shorter than 2 are impossible");
  }
}

std::optional<std::string> CyclicBarter::classify(std::span<const Transfer> transfers,
                                                  std::vector<char>& cleared) const {
  cleared.assign(transfers.size(), 0);
  // Out-edge index over client->client transfers of this tick.
  std::unordered_map<NodeId, std::vector<std::uint32_t>> out;
  for (std::uint32_t i = 0; i < transfers.size(); ++i) {
    const Transfer& tr = transfers[i];
    if (tr.from == kServer) {
      cleared[i] = 1;  // server gives freely
      continue;
    }
    if (tr.to == kServer) {
      return "client " + std::to_string(tr.from) + " uploads to the server";
    }
    out[tr.from].push_back(i);
  }
  // For each uncleared edge u->v, search for a directed path v ~> u of at
  // most max_cycle_len_ - 1 edges; if found, the whole cycle clears. Upload
  // capacities keep out-degrees tiny, so bounded DFS is cheap.
  std::vector<std::uint32_t> path;
  for (std::uint32_t i = 0; i < transfers.size(); ++i) {
    if (cleared[i]) continue;
    const Transfer& start = transfers[i];
    path.clear();
    // Iterative DFS with explicit stack of (node, next-edge cursor).
    struct Frame {
      NodeId node;
      std::uint32_t cursor;
    };
    std::vector<Frame> stack{{start.to, 0}};
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.node == start.from) {
        // Found a cycle: start edge plus everything on the path.
        cleared[i] = 1;
        for (const std::uint32_t e : path) cleared[e] = 1;
        break;
      }
      if (stack.size() > max_cycle_len_ - 1) {  // path length limit reached
        stack.pop_back();
        if (!path.empty()) path.pop_back();
        continue;
      }
      const auto it = out.find(f.node);
      if (it == out.end() || f.cursor >= it->second.size()) {
        stack.pop_back();
        if (!path.empty()) path.pop_back();
        continue;
      }
      const std::uint32_t edge = it->second[f.cursor++];
      path.push_back(edge);
      stack.push_back({transfers[edge].to, 0});
    }
  }
  return std::nullopt;
}

std::optional<std::string> CyclicBarter::check_tick(Tick /*tick*/,
                                                    std::span<const Transfer> transfers,
                                                    const SwarmState& /*state*/) {
  std::vector<char> cleared;
  if (auto err = classify(transfers, cleared)) return err;
  // Uncleared transfers must fit within the pairwise credit limit.
  std::unordered_map<std::uint64_t, std::int64_t> delta;
  for (std::uint32_t i = 0; i < transfers.size(); ++i) {
    if (cleared[i]) continue;
    const Transfer& tr = transfers[i];
    if (tr.from < tr.to) {
      delta[ordered_key(tr.from, tr.to)] += 1;
    } else {
      delta[ordered_key(tr.to, tr.from)] -= 1;
    }
  }
  for (const auto& [k, d] : delta) {
    const auto lo = static_cast<NodeId>(k >> 32);
    const auto hi = static_cast<NodeId>(k & 0xffffffffULL);
    const std::int64_t end = ledger_.net(lo, hi) + d;
    const std::int64_t limit = static_cast<std::int64_t>(credit_limit_);
    if (end > limit || -end > limit) {
      std::ostringstream os;
      os << "credit limit " << credit_limit_ << " exceeded between clients " << lo
         << " and " << hi << " outside barter cycles (end-of-tick net " << end << ")";
      return os.str();
    }
  }
  return std::nullopt;
}

void CyclicBarter::commit_tick(Tick /*tick*/, std::span<const Transfer> transfers,
                               const SwarmState& /*state*/) {
  std::vector<char> cleared;
  (void)classify(transfers, cleared);  // already validated in check_tick
  for (std::uint32_t i = 0; i < transfers.size(); ++i) {
    if (cleared[i]) continue;
    const Transfer& tr = transfers[i];
    ledger_.record(tr.from, tr.to);
  }
}

bool CyclicBarter::may_upload(NodeId from, NodeId to) const {
  if (from == kServer) return true;
  if (to == kServer) return false;
  return ledger_.net(from, to) + 1 <= static_cast<std::int64_t>(credit_limit_);
}

}  // namespace pob
