#include "pob/exp/sweep.h"

#include <vector>

#include "pob/exp/table.h"

namespace pob {

TrialStats aggregate_trials(std::span<const TrialOutcome> outcomes) {
  TrialStats stats;
  stats.runs = static_cast<std::uint32_t>(outcomes.size());
  std::vector<double> completions;
  std::vector<double> means;
  completions.reserve(outcomes.size());
  means.reserve(outcomes.size());
  for (const TrialOutcome& outcome : outcomes) {
    if (!outcome.completed) {
      ++stats.censored;
      continue;
    }
    completions.push_back(outcome.completion);
    means.push_back(outcome.mean_completion);
  }
  stats.completion = summarize(completions);
  stats.mean_completion = summarize(means);
  return stats;
}

TrialStats repeat_trials(std::uint32_t runs,
                         const std::function<TrialOutcome(std::uint32_t)>& trial) {
  std::vector<TrialOutcome> outcomes;
  outcomes.reserve(runs);
  for (std::uint32_t i = 0; i < runs; ++i) outcomes.push_back(trial(i));
  return aggregate_trials(outcomes);
}

std::string completion_cell(const TrialStats& stats, double cap, int precision) {
  if (stats.all_censored()) return ">" + fmt(cap, 0) + " (censored)";
  std::string cell = fmt_ci(stats.completion.mean, stats.completion.ci95, precision);
  if (stats.censored > 0) {
    cell += " [" + std::to_string(stats.censored) + "/" + std::to_string(stats.runs) +
            " censored]";
  }
  return cell;
}

}  // namespace pob
