// Overlay-graph constructors used across the paper's experiments:
//
//   * random d-regular graphs ("in which each edge is equally likely to be
//     chosen", §2.4.4) — configuration model with double-edge-swap repair,
//   * the hypercube-like overlay of §2.3.2-2.3.3 with 1-2 nodes per vertex,
//   * ring and k-ary tree topologies for the deterministic baselines.

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "pob/core/rng.h"
#include "pob/core/types.h"
#include "pob/overlay/graph.h"

namespace pob {

/// Random d-regular simple graph on n nodes via the configuration model:
/// d*n stubs are paired uniformly at random, then self-loops and parallel
/// edges are repaired with uniform double-edge swaps. Regenerates until the
/// graph is connected (disconnection is vanishingly rare for d >= 3 but
/// checked regardless). Requires d < n and d*n even.
Graph make_random_regular(std::uint32_t n, std::uint32_t d, Rng& rng);

/// Describes the hypercube vertex assignment of §2.3.3: m = floor(log2 n)
/// dimensions, one vertex per m-bit ID; the server (node 0) alone holds the
/// all-zero ID, and every other ID hosts one or two clients.
struct HypercubeMap {
  std::uint32_t dims = 0;                     ///< m
  std::uint32_t num_vertices = 0;             ///< 2^m
  std::vector<std::uint32_t> vertex_of;       ///< node -> vertex id
  std::vector<std::array<NodeId, 2>> members; ///< vertex -> {node, node|kNoNode}

  std::uint32_t vertex_count(std::uint32_t v) const {
    return members[v][1] == kNoNode ? 1u : 2u;
  }
};

/// Builds the assignment for any n >= 2 (n = total nodes incl. server).
HypercubeMap make_hypercube_map(std::uint32_t n);

/// The physical overlay induced by the hypercube map: an edge between every
/// pair of nodes whose vertices are hypercube-adjacent, plus an edge between
/// the two members of each doubled vertex. Average degree is Θ(log n);
/// §2.4.4 observes the randomized algorithm on this overlay matches the
/// complete graph.
Graph make_hypercube_overlay(std::uint32_t n);

/// Cycle 0-1-2-...-(n-1)-0.
Graph make_ring(std::uint32_t n);

/// Complete k-ary tree rooted at node 0 in level order: children of x are
/// k*x+1 ... k*x+k (when < n).
Graph make_kary_tree(std::uint32_t n, std::uint32_t arity);

/// floor(log2(x)) for x >= 1.
std::uint32_t floor_log2(std::uint32_t x);

/// ceil(log2(x)) for x >= 1.
std::uint32_t ceil_log2(std::uint32_t x);

}  // namespace pob
