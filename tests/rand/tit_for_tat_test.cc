// The §4 BitTorrent-style comparison: tit-for-tat completes, respects the
// engine's model, and pays a measurable efficiency cost against both the
// paper's randomized algorithm and the optimum.

#include "pob/rand/tit_for_tat.h"

#include <gtest/gtest.h>

#include "pob/analysis/bounds.h"
#include "pob/core/engine.h"
#include "pob/overlay/builders.h"

namespace pob {
namespace {

RunResult run_tft(std::uint32_t n, std::uint32_t k, std::uint64_t seed,
                  TitForTatOptions opt = {},
                  std::shared_ptr<const Overlay> overlay = nullptr) {
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  if (overlay == nullptr) overlay = std::make_shared<CompleteOverlay>(n);
  TitForTatScheduler sched(std::move(overlay), opt, Rng(seed));
  return run(cfg, sched);
}

class TitForTatGrid
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(TitForTatGrid, CompletesOnCompleteGraph) {
  const auto [n, k] = GetParam();
  const RunResult r = run_tft(n, k, 7);
  ASSERT_TRUE(r.completed) << "n=" << n << " k=" << k;
  EXPECT_GE(r.completion_tick, cooperative_lower_bound(n, k));
}

INSTANTIATE_TEST_SUITE_P(Grid, TitForTatGrid,
                         ::testing::Combine(::testing::Values(8u, 32u, 100u),
                                            ::testing::Values(4u, 32u, 128u)));

TEST(TitForTat, CompletesOnSparseOverlay) {
  Rng grng(3);
  auto ov = std::make_shared<GraphOverlay>(make_random_regular(64, 8, grng));
  const RunResult r = run_tft(64, 32, 9, {}, ov);
  ASSERT_TRUE(r.completed);
}

TEST(TitForTat, SlowerThanUnconstrainedRandomized) {
  // The unchoke-set restriction costs throughput in this static homogeneous
  // setting (the paper's §4 claim: >30% worse than optimal even when tuned).
  const std::uint32_t n = 128, k = 128;
  const RunResult tft = run_tft(n, k, 11);
  ASSERT_TRUE(tft.completed);
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  RandomizedScheduler rand_sched(std::make_shared<CompleteOverlay>(n), {}, Rng(11));
  const RunResult rnd = run(cfg, rand_sched);
  ASSERT_TRUE(rnd.completed);
  EXPECT_GT(tft.completion_tick, rnd.completion_tick);
}

TEST(TitForTat, MoreUnchokeSlotsHelpOnAverage) {
  double narrow = 0, wide = 0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    TitForTatOptions few;
    few.regular_unchokes = 1;
    few.optimistic_unchokes = 1;
    TitForTatOptions many;
    many.regular_unchokes = 6;
    many.optimistic_unchokes = 2;
    narrow += static_cast<double>(run_tft(96, 64, 100 + seed, few).completion_tick);
    wide += static_cast<double>(run_tft(96, 64, 100 + seed, many).completion_tick);
  }
  EXPECT_LT(wide, narrow);
}

TEST(TitForTat, RejectsBadOptions) {
  TitForTatOptions zero;
  zero.regular_unchokes = 0;
  zero.optimistic_unchokes = 0;
  EXPECT_THROW(TitForTatScheduler(std::make_shared<CompleteOverlay>(8), zero, Rng(1)),
               std::invalid_argument);
  TitForTatOptions bad_period;
  bad_period.rechoke_period = 0;
  EXPECT_THROW(
      TitForTatScheduler(std::make_shared<CompleteOverlay>(8), bad_period, Rng(1)),
      std::invalid_argument);
  EXPECT_THROW(TitForTatScheduler(nullptr, {}, Rng(1)), std::invalid_argument);
}

TEST(TitForTat, DeterministicGivenSeed) {
  const RunResult a = run_tft(40, 24, 17);
  const RunResult b = run_tft(40, 24, 17);
  EXPECT_EQ(a.completion_tick, b.completion_tick);
}

TEST(OverlayNeighborIndex, RoundTripsOnBothOverlayKinds) {
  const CompleteOverlay complete(6);
  for (NodeId u = 0; u < 6; ++u) {
    for (std::uint32_t i = 0; i < complete.degree(u); ++i) {
      EXPECT_EQ(complete.neighbor_index(u, complete.neighbor(u, i)), i);
    }
    EXPECT_EQ(complete.neighbor_index(u, u), kUnlimited);
  }
  const GraphOverlay ring(make_ring(6));
  for (NodeId u = 0; u < 6; ++u) {
    for (std::uint32_t i = 0; i < ring.degree(u); ++i) {
      EXPECT_EQ(ring.neighbor_index(u, ring.neighbor(u, i)), i);
    }
  }
  EXPECT_EQ(ring.neighbor_index(0, 3), kUnlimited);
}

}  // namespace
}  // namespace pob
