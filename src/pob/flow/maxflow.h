// Hermetic integer max-flow / min-cost-flow solver for the certificate
// oracle. Header-only, no dependencies beyond the standard library: CI's
// certificate job must build with nothing but the toolchain.
//
// Max flow is Dinic's algorithm — BFS level graphs plus blocking flows, i.e.
// augmentation along successive shortest (fewest-arc) paths. The min-cost
// variant is the classic successive-shortest-path scheme: repeatedly augment
// along a cheapest residual path (SPFA, since residual arcs of cost -c
// appear once flow moves) until the target flow is met. Both operate on the
// same arc store, so a caller can build one network and ask either question.
//
// The time-expanded graphs the certifier builds are long and thin (path
// depth grows with the horizon), so every traversal here is iterative — no
// recursion to overflow on a 10^5-node unrolling.

#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

namespace pob::flow {

/// Effectively-infinite arc capacity; large enough that sums of clamped
/// capacities never overflow a signed 64-bit accumulator.
constexpr std::int64_t kInfCapacity = std::numeric_limits<std::int64_t>::max() / 4;

class FlowNetwork {
 public:
  explicit FlowNetwork(std::uint32_t num_nodes) : adj_(num_nodes) {}

  std::uint32_t num_nodes() const { return static_cast<std::uint32_t>(adj_.size()); }
  std::uint64_t num_arcs() const { return arcs_.size() / 2; }

  std::uint32_t add_node() {
    adj_.emplace_back();
    return static_cast<std::uint32_t>(adj_.size() - 1);
  }

  /// Adds a directed arc and its zero-capacity residual twin. Returns the
  /// forward arc's id (its twin is id ^ 1). Cost applies per unit of flow;
  /// the residual twin carries -cost, as successive-shortest-path requires.
  std::uint32_t add_arc(std::uint32_t from, std::uint32_t to, std::int64_t capacity,
                        std::int64_t cost = 0) {
    const auto id = static_cast<std::uint32_t>(arcs_.size());
    arcs_.push_back({to, capacity, cost});
    arcs_.push_back({from, 0, -cost});
    adj_[from].push_back(id);
    adj_[to].push_back(id + 1);
    return id;
  }

  /// Units pushed through the forward arc `id` so far (its twin's capacity).
  std::int64_t arc_flow(std::uint32_t id) const { return arcs_[id ^ 1].capacity; }

  /// Dinic's max flow from `source` to `sink`, stopping early once `limit`
  /// units have been routed (the certifier only ever asks "can k units make
  /// it", so it passes limit = k and skips the tail of the computation).
  std::int64_t max_flow(std::uint32_t source, std::uint32_t sink,
                        std::int64_t limit = kInfCapacity) {
    std::int64_t total = 0;
    while (total < limit && build_levels(source, sink)) {
      iter_.assign(adj_.size(), 0);
      std::int64_t pushed;
      while (total < limit &&
             (pushed = augment(source, sink, limit - total)) > 0) {
        total += pushed;
      }
    }
    return total;
  }

  struct FlowCost {
    std::int64_t flow = 0;
    std::int64_t cost = 0;
  };

  /// Successive shortest paths: route up to `limit` units at minimum total
  /// cost. Arc costs must be non-negative on the *original* arcs (residual
  /// negatives are handled by the label-correcting search).
  FlowCost min_cost_max_flow(std::uint32_t source, std::uint32_t sink,
                             std::int64_t limit = kInfCapacity) {
    FlowCost result;
    std::vector<std::int64_t> dist;
    std::vector<std::uint32_t> parent_arc;
    while (result.flow < limit &&
           cheapest_path(source, sink, dist, parent_arc)) {
      std::int64_t bottleneck = limit - result.flow;
      for (std::uint32_t v = sink; v != source;) {
        const Arc& a = arcs_[parent_arc[v]];
        bottleneck = std::min(bottleneck, a.capacity);
        v = arcs_[parent_arc[v] ^ 1].to;
      }
      for (std::uint32_t v = sink; v != source;) {
        const std::uint32_t id = parent_arc[v];
        arcs_[id].capacity -= bottleneck;
        arcs_[id ^ 1].capacity += bottleneck;
        v = arcs_[id ^ 1].to;
      }
      result.flow += bottleneck;
      result.cost += bottleneck * dist[sink];
    }
    return result;
  }

 private:
  struct Arc {
    std::uint32_t to;
    std::int64_t capacity;
    std::int64_t cost;
  };

  bool build_levels(std::uint32_t source, std::uint32_t sink) {
    level_.assign(adj_.size(), -1);
    level_[source] = 0;
    bfs_queue_.clear();
    bfs_queue_.push_back(source);
    while (!bfs_queue_.empty()) {
      const std::uint32_t u = bfs_queue_.front();
      bfs_queue_.pop_front();
      for (const std::uint32_t id : adj_[u]) {
        const Arc& a = arcs_[id];
        if (a.capacity > 0 && level_[a.to] < 0) {
          level_[a.to] = level_[u] + 1;
          bfs_queue_.push_back(a.to);
        }
      }
    }
    return level_[sink] >= 0;
  }

  /// One shortest augmenting path in the current level graph, found with an
  /// explicit arc stack (paths in time-expanded graphs are horizon-deep).
  std::int64_t augment(std::uint32_t source, std::uint32_t sink, std::int64_t limit) {
    path_.clear();
    std::uint32_t u = source;
    while (true) {
      if (u == sink) {
        std::int64_t pushed = limit;
        for (const std::uint32_t id : path_) {
          pushed = std::min(pushed, arcs_[id].capacity);
        }
        for (const std::uint32_t id : path_) {
          arcs_[id].capacity -= pushed;
          arcs_[id ^ 1].capacity += pushed;
        }
        return pushed;
      }
      bool advanced = false;
      for (; iter_[u] < adj_[u].size(); ++iter_[u]) {
        const std::uint32_t id = adj_[u][iter_[u]];
        const Arc& a = arcs_[id];
        if (a.capacity > 0 && level_[a.to] == level_[u] + 1) {
          path_.push_back(id);
          u = a.to;
          advanced = true;
          break;
        }
      }
      if (advanced) continue;
      level_[u] = -1;  // dead end: prune from this phase's level graph
      if (path_.empty()) return 0;
      const std::uint32_t back = path_.back();
      path_.pop_back();
      u = arcs_[back ^ 1].to;
      ++iter_[u];
    }
  }

  /// SPFA label-correcting shortest path over residual costs; fills `dist`
  /// and `parent_arc` and reports whether the sink is reachable.
  bool cheapest_path(std::uint32_t source, std::uint32_t sink,
                     std::vector<std::int64_t>& dist,
                     std::vector<std::uint32_t>& parent_arc) {
    constexpr std::int64_t kFar = std::numeric_limits<std::int64_t>::max() / 2;
    dist.assign(adj_.size(), kFar);
    parent_arc.assign(adj_.size(), 0);
    std::vector<char> queued(adj_.size(), 0);
    dist[source] = 0;
    bfs_queue_.clear();
    bfs_queue_.push_back(source);
    queued[source] = 1;
    while (!bfs_queue_.empty()) {
      const std::uint32_t u = bfs_queue_.front();
      bfs_queue_.pop_front();
      queued[u] = 0;
      for (const std::uint32_t id : adj_[u]) {
        const Arc& a = arcs_[id];
        if (a.capacity <= 0 || dist[u] + a.cost >= dist[a.to]) continue;
        dist[a.to] = dist[u] + a.cost;
        parent_arc[a.to] = id;
        if (!queued[a.to]) {
          queued[a.to] = 1;
          bfs_queue_.push_back(a.to);
        }
      }
    }
    return dist[sink] < kFar;
  }

  std::vector<Arc> arcs_;
  std::vector<std::vector<std::uint32_t>> adj_;
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
  std::vector<std::uint32_t> path_;
  std::deque<std::uint32_t> bfs_queue_;
};

}  // namespace pob::flow
