// E16 — the §4 BitTorrent comparison ("more than 30% worse than the optimal
// time", per the paper's preliminary asynchronous simulations).
//
// Synchronous tit-for-tat (reciprocated unchokes + optimistic unchoke,
// rarest-first pieces) vs the §2.4 randomized algorithm and the cooperative
// optimum, on the same overlays. Sweeps the unchoke-slot count to show the
// "perfect tuning" flavor of the claim.

#include <iostream>
#include <memory>

#include "bench_util.h"
#include "pob/analysis/bounds.h"
#include "pob/rand/tit_for_tat.h"

namespace pob::bench {
namespace {

int main_impl(int argc, char** argv) {
  const Args args(argc, argv);
  TrialRunner trials(args);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 500));
  const auto k = static_cast<std::uint32_t>(args.get_int("k", 500));
  const auto runs = static_cast<std::uint32_t>(args.get_int("runs", 3));
  const auto degree = static_cast<std::uint32_t>(args.get_int("degree", 40));

  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  const Tick optimal = cooperative_lower_bound(n, k);

  Table table({"algorithm", "unchokes(reg+opt)", "rechoke", "T (mean +- 95% CI)",
               "T/optimal"});
  const auto add = [&](const std::string& name, const std::string& slots,
                       const std::string& period, const TrialStats& stats) {
    table.add_row({name, slots, period,
                   fmt_ci(stats.completion.mean, stats.completion.ci95),
                   fmt(stats.completion.mean / static_cast<double>(optimal), 3)});
  };

  for (const std::uint32_t reg : {1u, 3u, 6u}) {
    for (const Tick period : {5u, 10u, 20u}) {
      TitForTatOptions opt;
      opt.regular_unchokes = reg;
      opt.optimistic_unchokes = 1;
      opt.rechoke_period = period;
      const TrialStats stats = trials(runs, [&](std::uint32_t i) {
        Rng grng(trial_seed(0xB17'0000 + 37ull * reg + period, i));
        auto overlay =
            std::make_shared<GraphOverlay>(make_random_regular(n, degree, grng));
        TitForTatScheduler sched(std::move(overlay), opt,
                                 Rng(trial_seed(0xB17'1000 + 41ull * reg + period, i)));
        const RunResult r = run(cfg, sched);
        TrialOutcome out;
        out.completed = r.completed;
        if (r.completed) {
          out.completion = static_cast<double>(r.completion_tick);
          out.mean_completion = r.mean_client_completion();
        }
        return out;
      });
      add("tit-for-tat", std::to_string(reg) + "+1", std::to_string(period), stats);
    }
  }
  {
    const TrialStats stats = trials(runs, [&](std::uint32_t i) {
      Rng grng(trial_seed(0xB17'2000, i));
      auto overlay =
          std::make_shared<GraphOverlay>(make_random_regular(n, degree, grng));
      return randomized_trial(cfg, std::move(overlay), {}, trial_seed(0xB17'3000, i));
    });
    add("randomized (sec 2.4)", "-", "-", stats);
  }
  std::cout << "# E16/§4: BitTorrent-style tit-for-tat vs the randomized algorithm "
               "(n = " << n << ", k = " << k << ", degree-" << degree
            << " overlay; paper claims tit-for-tat > 30% over optimal)\n";
  emit(args, table);
  trials.report(std::cout);
  return 0;
}

}  // namespace
}  // namespace pob::bench

int main(int argc, char** argv) { return pob::bench::main_impl(argc, argv); }
