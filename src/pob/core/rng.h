// Deterministic, splittable random number generator.
//
// Experiments must be reproducible across platforms and standard-library
// versions, so we implement xoshiro256** (Blackman & Vigna) directly instead
// of relying on std:: distributions, whose outputs are not portable.

#pragma once

#include <array>
#include <cstdint>

namespace pob {

/// Small, fast, deterministic PRNG (xoshiro256**), seeded via splitmix64.
///
/// Not cryptographically secure; intended for simulation only. Copyable:
/// copies continue the same stream independently.
class Rng {
 public:
  /// Seeds the generator. Two generators with different seeds produce
  /// independent-looking streams; the all-zero state is impossible because
  /// splitmix64 never maps a seed to four zero words.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next 64 uniformly distributed bits.
  std::uint64_t next();

  /// Uniform integer in [0, bound). `bound` must be nonzero. Uses rejection
  /// sampling (Lemire-style) so results are exactly uniform.
  std::uint32_t below(std::uint32_t bound);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  std::uint32_t range(std::uint32_t lo, std::uint32_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// True with probability `p` (clamped to [0,1]).
  bool chance(double p);

  /// Derives an independent generator for a sub-task. Streams derived with
  /// different `stream` values from the same parent are independent, and
  /// deriving does not perturb the parent's own stream.
  [[nodiscard]] Rng split(std::uint64_t stream) const;

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) {
    using std::size;
    const auto n = static_cast<std::uint32_t>(size(c));
    for (std::uint32_t i = n; i > 1; --i) {
      const std::uint32_t j = below(i);
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace pob
