// E18 — churn/failure injection (the §2.4 motivation for randomized
// algorithms: "such a rigid construction may not be particularly robust").
//
// A fraction of clients departs at random ticks during the first half of
// the nominal schedule. The randomized swarm routes around the losses; the
// rigid binomial pipeline (run in lossy mode: severed flows drop silently)
// strands the survivors that depended on departed relays; striped trees
// lose whole subtrees per stripe.

#include <iostream>
#include <memory>

#include "bench_util.h"
#include "pob/analysis/bounds.h"
#include "pob/sched/binomial_pipeline.h"
#include "pob/sched/striped_trees.h"

namespace pob::bench {
namespace {

std::vector<std::pair<Tick, NodeId>> draw_departures(std::uint32_t n, std::uint32_t k,
                                                     double fraction, Rng& rng) {
  std::vector<NodeId> clients(n - 1);
  for (NodeId c = 1; c < n; ++c) clients[c - 1] = c;
  rng.shuffle(clients);
  const auto count = static_cast<std::uint32_t>(fraction * (n - 1));
  std::vector<std::pair<Tick, NodeId>> departures;
  const Tick horizon = (k + ceil_log2(n)) / 2 + 1;
  for (std::uint32_t i = 0; i < count; ++i) {
    departures.push_back({1 + rng.below(horizon), clients[i]});
  }
  return departures;
}

int main_impl(int argc, char** argv) {
  const Args args(argc, argv);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 256));
  const auto k = static_cast<std::uint32_t>(args.get_int("k", 256));
  const auto runs = static_cast<std::uint32_t>(args.get_int("runs", 3));

  Table table({"algorithm", "departed", "survivors-complete", "T (completed runs)",
               "runs-completed"});
  const Tick cap = 10 * cooperative_lower_bound(n, k);

  for (const double fraction : {0.0, 0.1, 0.25}) {
    for (const char* algo : {"randomized", "binomial-pipeline", "striped-trees"}) {
      double t_sum = 0, departed_sum = 0, survivors_done_sum = 0;
      std::uint32_t completed_runs = 0;
      for (std::uint32_t i = 0; i < runs; ++i) {
        Rng rng(0xC4A'0000 + static_cast<std::uint64_t>(fraction * 100) * 131 + i);
        EngineConfig cfg;
        cfg.num_nodes = n;
        cfg.num_blocks = k;
        cfg.max_ticks = cap;
        cfg.stall_window = 200;
        cfg.departures = draw_departures(n, k, fraction, rng);
        cfg.drop_transfers_involving_inactive = true;

        RunResult r;
        if (std::string_view(algo) == "randomized") {
          RandomizedScheduler sched(std::make_shared<CompleteOverlay>(n), {},
                                    rng.split(1));
          r = run(cfg, sched);
        } else if (std::string_view(algo) == "binomial-pipeline") {
          BinomialPipelineScheduler sched(n, k);
          r = run(cfg, sched);
        } else {
          cfg.download_capacity = 4;
          StripedTreesScheduler sched(n, k, 4);
          r = run(cfg, sched);
        }
        departed_sum += r.departed;
        std::uint32_t done = 0;
        for (const Tick t : r.client_completion) done += t != 0;
        survivors_done_sum +=
            static_cast<double>(done) / static_cast<double>(n - 1 - r.departed);
        if (r.completed) {
          ++completed_runs;
          t_sum += static_cast<double>(r.completion_tick);
        }
      }
      table.add_row({std::string(algo) + " @" + fmt(fraction * 100, 0) + "%",
                     fmt(departed_sum / runs, 1),
                     fmt(100.0 * survivors_done_sum / runs, 1) + "%",
                     completed_runs > 0 ? fmt(t_sum / completed_runs, 0) : "-",
                     std::to_string(completed_runs) + "/" + std::to_string(runs)});
    }
  }
  std::cout << "# E18: churn robustness (n = " << n << ", k = " << k
            << "; departures in the first half, lossy mode, optimal = "
            << cooperative_lower_bound(n, k) << ")\n";
  emit(args, table);
  return 0;
}

}  // namespace
}  // namespace pob::bench

int main(int argc, char** argv) { return pob::bench::main_impl(argc, argv); }
