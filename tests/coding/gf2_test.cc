#include "pob/coding/gf2.h"

#include <gtest/gtest.h>

namespace pob {
namespace {

TEST(Gf2Vector, BasicsAndXor) {
  Gf2Vector a(70), b(70);
  a.set(0);
  a.set(69);
  b.set(69);
  EXPECT_TRUE(a.get(0));
  EXPECT_FALSE(a.get(1));
  EXPECT_EQ(a.leading(), 0u);
  a ^= b;
  EXPECT_TRUE(a.get(0));
  EXPECT_FALSE(a.get(69));
  EXPECT_FALSE(a.is_zero());
  a ^= a;
  EXPECT_TRUE(a.is_zero());
  EXPECT_EQ(a.leading(), 70u);
}

TEST(Gf2Vector, UnitAndRandomNonzero) {
  const Gf2Vector e5 = Gf2Vector::unit(16, 5);
  EXPECT_TRUE(e5.get(5));
  EXPECT_EQ(e5.leading(), 5u);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const Gf2Vector v = Gf2Vector::random_nonzero(13, rng);
    EXPECT_FALSE(v.is_zero());
    for (std::uint32_t bit = 13; bit < 64; ++bit) {
      // No stray bits above the dimension (would corrupt rank computations).
      EXPECT_LT(v.leading(), 13u);
    }
  }
}

TEST(Gf2Basis, RankGrowsOnlyOnIndependentInsertions) {
  Gf2Basis basis(8);
  EXPECT_EQ(basis.rank(), 0u);
  EXPECT_TRUE(basis.insert(Gf2Vector::unit(8, 3)));
  EXPECT_TRUE(basis.insert(Gf2Vector::unit(8, 5)));
  EXPECT_EQ(basis.rank(), 2u);
  // 3 xor 5 is dependent.
  Gf2Vector dep(8);
  dep.set(3);
  dep.set(5);
  EXPECT_FALSE(basis.insert(dep));
  EXPECT_EQ(basis.rank(), 2u);
  // 3 xor 5 xor 7 is independent.
  dep.set(7);
  EXPECT_TRUE(basis.insert(dep));
  EXPECT_EQ(basis.rank(), 3u);
}

TEST(Gf2Basis, ContainsAndFullRank) {
  Gf2Basis basis(4);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(basis.full_rank());
    basis.insert(Gf2Vector::unit(4, i));
  }
  EXPECT_TRUE(basis.full_rank());
  Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(basis.contains(Gf2Vector::random_nonzero(4, rng)));
  }
}

TEST(Gf2Basis, RandomInsertionsReachFullRankQuickly) {
  // Over GF(2), ~k + 2 random vectors reach rank k with high probability.
  Rng rng(3);
  for (const std::uint32_t k : {16u, 64u, 200u}) {
    Gf2Basis basis(k);
    std::uint32_t inserted = 0;
    while (!basis.full_rank()) {
      basis.insert(Gf2Vector::random_nonzero(k, rng));
      ++inserted;
      ASSERT_LT(inserted, k + 40) << k;
    }
    EXPECT_LE(inserted, k + 20) << k;
  }
}

TEST(Gf2Basis, InnovativeSourceDetection) {
  Gf2Basis a(6), b(6);
  a.insert(Gf2Vector::unit(6, 0));
  b.insert(Gf2Vector::unit(6, 0));
  EXPECT_FALSE(a.is_innovative_source(b));  // b ⊆ a
  b.insert(Gf2Vector::unit(6, 1));
  EXPECT_TRUE(a.is_innovative_source(b));
  a.insert(Gf2Vector::unit(6, 1));
  EXPECT_FALSE(a.is_innovative_source(b));
}

TEST(Gf2Basis, RandomCombinationStaysInSpan) {
  Rng rng(4);
  Gf2Basis basis(32);
  for (std::uint32_t i = 0; i < 10; ++i) {
    basis.insert(Gf2Vector::random_nonzero(32, rng));
  }
  for (int i = 0; i < 50; ++i) {
    const Gf2Vector v = basis.random_combination(rng);
    EXPECT_FALSE(v.is_zero());
    EXPECT_TRUE(basis.contains(v));
  }
  Gf2Basis empty(8);
  EXPECT_THROW(empty.random_combination(rng), std::logic_error);
}

TEST(Gf2Basis, DimensionMismatchThrows) {
  Gf2Basis basis(8);
  EXPECT_THROW(basis.insert(Gf2Vector(9)), std::invalid_argument);
}

}  // namespace
}  // namespace pob
