// Shared event-queue types for the event-driven paths: the continuous-time
// (time, seq)-ordered min-heap pob/async runs on, factored out so the
// stream mirror (pob/check/stream_check) and any future event consumers
// schedule with the identical ordering contract instead of re-deriving it.
//
// Determinism contract: events with equal fire times pop in insertion
// order (the queue stamps a monotone sequence number on push). Every
// consumer that needs a stronger tiebreak — e.g. the stream layer's
// "timestamp then node id" — must encode it in the time or sort the
// simultaneous batch itself; the queue guarantees only (time, seq).

#pragma once

#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

namespace pob {

/// A payload stamped with its fire time and insertion sequence number.
template <typename Payload>
struct TimedEvent {
  double time = 0.0;
  std::uint64_t seq = 0;
  Payload payload;
};

/// Min-heap over (time, seq): earliest time first, FIFO among equal times.
template <typename Payload>
class EventQueue {
 public:
  void push(double time, Payload payload) {
    heap_.push(TimedEvent<Payload>{time, seq_++, std::move(payload)});
  }
  const TimedEvent<Payload>& top() const { return heap_.top(); }
  TimedEvent<Payload> pop() {
    TimedEvent<Payload> ev = heap_.top();
    heap_.pop();
    return ev;
  }
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

 private:
  struct Later {
    bool operator()(const TimedEvent<Payload>& a, const TimedEvent<Payload>& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<TimedEvent<Payload>, std::vector<TimedEvent<Payload>>, Later>
      heap_;
  std::uint64_t seq_ = 0;
};

}  // namespace pob
