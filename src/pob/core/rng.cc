#include "pob/core/rng.h"

#include <cassert>

namespace pob {

// Hot paths (construction, next, below) live inline in the header; only the
// colder conveniences stay out of line here.

std::uint32_t Rng::range(std::uint32_t lo, std::uint32_t hi) {
  assert(lo <= hi);
  return lo + below(hi - lo + 1);
}

double Rng::uniform() {
  // 53 random bits into [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::split(std::uint64_t stream) const {
  // Mix the parent state with the stream id through splitmix64; the parent
  // is untouched (method is const and copies state words by value).
  std::uint64_t s = state_[0] ^ rotl(state_[3], 13) ^ (stream * 0xd1342543de82ef95ULL);
  Rng child(splitmix(s));
  return child;
}

}  // namespace pob
