// §2.3 "The Binomial Pipeline" — the paper's optimal cooperative algorithm,
// in its hypercube formulation (§2.3.2) generalized to arbitrary node counts
// (§2.3.3).
//
// Nodes are assigned m-bit hypercube IDs, m = floor(log2 n): the server gets
// the all-zero ID, every other ID hosts one or two clients ("logical
// nodes"). During tick t all data moves across dimension (t-1) mod m:
//
//   * the server transmits block b_min(t,k);
//   * every other logical node transmits the highest-index block it has;
//   * inside a doubled vertex, the member that is not transmitting receives
//     the incoming block, and members forward each other blocks the other
//     lacks using leftover capacity.
//
// Completion takes k - 1 + ceil(log2 n) ticks — exactly Theorem 1's lower
// bound — and when k >= log2 n all clients finish on the same tick (§2.3.4).
//
// The scheduler can also run on a subset of clients with a shared server,
// which is how the multi-server variant of §2.3.4 composes m independent
// pipelines.

#pragma once

#include <vector>

#include "pob/core/scheduler.h"
#include "pob/overlay/builders.h"

namespace pob {

class BinomialPipelineScheduler final : public Scheduler {
 public:
  /// Pipeline over all nodes 0..num_nodes-1 (node 0 the server).
  BinomialPipelineScheduler(std::uint32_t num_nodes, std::uint32_t num_blocks);

  /// Pipeline over an explicit participant list; participants[0] acts as the
  /// server (it must hold every block it is asked to send). `blocks` lists
  /// the block ids this pipeline distributes, in transmission order.
  BinomialPipelineScheduler(std::vector<NodeId> participants,
                            std::vector<BlockId> blocks);

  std::string_view name() const override { return "binomial-pipeline"; }
  void plan_tick(Tick tick, const SwarmState& state, std::vector<Transfer>& out) override;

  /// Optimal completion time (== Theorem 1's bound): k - 1 + ceil(log2 n).
  static Tick completion_time(std::uint32_t num_nodes, std::uint32_t num_blocks) {
    return num_blocks - 1 + ceil_log2(num_nodes);
  }

  const HypercubeMap& map() const { return map_; }

 private:
  /// Highest-index block (by transmission order) held by either member.
  std::uint32_t union_max_rank(const SwarmState& state, std::uint32_t vertex) const;

  std::vector<NodeId> participants_;  // participants_[0] = server
  std::vector<BlockId> blocks_;       // blocks in transmission order
  std::vector<std::uint32_t> rank_of_block_;  // BlockId -> order index (+1), 0 = not ours
  HypercubeMap map_;                  // over participant indices
};

}  // namespace pob
