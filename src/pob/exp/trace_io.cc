#include "pob/exp/trace_io.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace pob {

EngineConfig LoadedTrace::to_config() const {
  EngineConfig cfg;
  cfg.num_nodes = num_nodes;
  cfg.num_blocks = num_blocks;
  cfg.upload_capacity = upload_capacity;
  cfg.download_capacity = download_capacity;
  cfg.server_upload_capacity = server_upload_capacity;
  cfg.upload_capacities = upload_capacities;
  cfg.download_capacities = download_capacities;
  cfg.departures = departures;
  cfg.drop_transfers_involving_inactive = drop_transfers_involving_inactive;
  cfg.depart_on_complete = depart_on_complete;
  return cfg;
}

void write_trace(std::ostream& os, const EngineConfig& config, const RunResult& result) {
  write_trace(os, config, result, TraceEvents{});
}

void write_trace(std::ostream& os, const EngineConfig& config, const RunResult& result,
                 const TraceEvents& events) {
  const bool extended = !config.upload_capacities.empty() ||
                        !config.download_capacities.empty() ||
                        !config.departures.empty() ||
                        config.drop_transfers_involving_inactive ||
                        config.depart_on_complete;
  const int version = !events.empty() ? 3 : (extended ? 2 : 1);
  os << "pobtrace " << version << ' ' << config.num_nodes << ' '
     << config.num_blocks << ' ' << config.upload_capacity << ' '
     << (config.download_capacity == kUnlimited ? 0 : config.download_capacity) << ' '
     << config.server_upload_capacity << '\n';
  if (extended) {
    if (!config.upload_capacities.empty()) {
      os << "!up";
      for (std::uint32_t c : config.upload_capacities) os << ' ' << c;
      os << '\n';
    }
    if (!config.download_capacities.empty()) {
      os << "!down";
      for (std::uint32_t c : config.download_capacities) {
        os << ' ' << (c == kUnlimited ? 0 : c);
      }
      os << '\n';
    }
    if (!config.departures.empty()) {
      os << "!depart";
      for (const auto& [tick, node] : config.departures) {
        os << ' ' << tick << ':' << node;
      }
      os << '\n';
    }
    if (config.drop_transfers_involving_inactive) os << "!drop\n";
    if (config.depart_on_complete) os << "!depart-on-complete\n";
  }
  for (const auto& [tick, node] : events.arrivals) {
    os << "!arrive " << tick << ' ' << node << '\n';
  }
  for (const RateChange& rc : events.rate_changes) {
    os << "!rate " << rc.tick << ' ' << rc.node << ' ' << rc.up << ' '
       << (rc.down == kUnlimited ? 0 : rc.down) << '\n';
  }
  for (const auto& tick : result.trace) {
    bool first = true;
    for (const Transfer& tr : tick) {
      if (!first) os << ' ';
      first = false;
      os << tr.from << ':' << tr.to << ':' << tr.block;
    }
    os << '\n';
  }
}

namespace {

void parse_directive(const std::string& line, LoadedTrace& trace, int version) {
  std::istringstream in(line);
  std::string word;
  in >> word;
  if (word == "!arrive" || word == "!rate") {
    if (version < 3) {
      throw std::invalid_argument("pobtrace: " + word +
                                  " is a v3 directive, trace is v" +
                                  std::to_string(version));
    }
    if (word == "!arrive") {
      Tick tick = 0;
      NodeId node = 0;
      in >> tick >> node;
      if (!in || tick < 1 || node == 0 || node >= trace.num_nodes) {
        throw std::invalid_argument("pobtrace: bad arrival: " + line);
      }
      trace.events.arrivals.emplace_back(tick, node);
    } else {
      RateChange rc;
      in >> rc.tick >> rc.node >> rc.up >> rc.down;
      if (!in || rc.tick < 1 || rc.node >= trace.num_nodes) {
        throw std::invalid_argument("pobtrace: bad rate change: " + line);
      }
      if (rc.down == 0) rc.down = kUnlimited;
      trace.events.rate_changes.push_back(rc);
    }
    std::string extra;
    if (in >> extra) {
      throw std::invalid_argument("pobtrace: trailing fields: " + line);
    }
    return;
  }
  if (word == "!up" || word == "!down") {
    auto& caps = word == "!up" ? trace.upload_capacities : trace.download_capacities;
    std::uint32_t c = 0;
    while (in >> c) caps.push_back(word == "!down" && c == 0 ? kUnlimited : c);
    if (caps.size() != trace.num_nodes) {
      throw std::invalid_argument("pobtrace: " + word + " needs " +
                                  std::to_string(trace.num_nodes) + " entries");
    }
  } else if (word == "!depart") {
    std::string cell;
    while (in >> cell) {
      std::istringstream parts(cell);
      Tick tick = 0;
      NodeId node = 0;
      char sep = 0;
      parts >> tick >> sep >> node;
      if (!parts || sep != ':') {
        throw std::invalid_argument("pobtrace: bad departure cell: " + cell);
      }
      trace.departures.emplace_back(tick, node);
    }
  } else if (word == "!drop") {
    trace.drop_transfers_involving_inactive = true;
  } else if (word == "!depart-on-complete") {
    trace.depart_on_complete = true;
  } else {
    throw std::invalid_argument("pobtrace: unknown directive: " + line);
  }
}

}  // namespace

LoadedTrace read_trace(std::istream& is) {
  LoadedTrace trace;
  std::string line;
  // Header (skipping comments/blank lines before it).
  for (;;) {
    if (!std::getline(is, line)) {
      throw std::invalid_argument("pobtrace: missing header");
    }
    if (line.empty() || line[0] == '#') continue;
    break;
  }
  int version = 0;
  {
    std::istringstream header(line);
    std::string magic;
    std::uint32_t download = 0;
    header >> magic >> version >> trace.num_nodes >> trace.num_blocks >>
        trace.upload_capacity >> download >> trace.server_upload_capacity;
    if (!header || magic != "pobtrace" || version < 1 || version > 3) {
      throw std::invalid_argument("pobtrace: bad header: " + line);
    }
    trace.download_capacity = download == 0 ? kUnlimited : download;
  }
  bool in_preamble = true;  // directives are only legal before the first tick
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] == '#') continue;
    if (!line.empty() && line[0] == '!') {
      if (version < 2 || !in_preamble) {
        throw std::invalid_argument("pobtrace: unexpected directive: " + line);
      }
      parse_directive(line, trace, version);
      continue;
    }
    in_preamble = false;
    std::vector<Transfer>& tick = trace.ticks.emplace_back();
    std::istringstream cells(line);
    std::string cell;
    while (cells >> cell) {
      Transfer tr;
      char c1 = 0, c2 = 0;
      std::istringstream parts(cell);
      parts >> tr.from >> c1 >> tr.to >> c2 >> tr.block;
      if (!parts || c1 != ':' || c2 != ':') {
        throw std::invalid_argument("pobtrace: bad transfer cell: " + cell);
      }
      tick.push_back(tr);
    }
  }
  return trace;
}

void TraceScheduler::plan_tick(Tick tick, const SwarmState& /*state*/,
                               std::vector<Transfer>& out) {
  if (tick == 0 || tick > trace_->ticks.size()) return;
  const auto& planned = trace_->ticks[tick - 1];
  out.insert(out.end(), planned.begin(), planned.end());
}

RunResult replay_trace(const LoadedTrace& trace, Mechanism* mechanism) {
  EngineConfig cfg = trace.to_config();
  cfg.max_ticks = static_cast<Tick>(trace.ticks.size()) + 1;
  TraceScheduler sched(trace);
  return run(cfg, sched, mechanism);
}

}  // namespace pob
