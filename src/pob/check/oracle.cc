#include "pob/check/oracle.h"

#include <bit>
#include <sstream>

namespace pob::check {
namespace {

std::string transfers_to_string(const std::vector<Transfer>& transfers) {
  std::ostringstream os;
  for (std::size_t i = 0; i < transfers.size(); ++i) {
    if (i != 0) os << ' ';
    os << transfers[i].from << ':' << transfers[i].to << ':' << transfers[i].block;
  }
  return os.str();
}

template <typename T>
bool compare_scalar(OracleReport& report, const char* what, const T& fast, const T& ref) {
  if (fast == ref) return true;
  std::ostringstream os;
  os << what << ": fast=" << fast << " reference=" << ref;
  report.ok = false;
  report.diagnosis = os.str();
  return false;
}

template <typename T>
bool compare_vector(OracleReport& report, const char* what, const std::vector<T>& fast,
                    const std::vector<T>& ref) {
  if (fast.size() != ref.size()) {
    std::ostringstream os;
    os << what << ": fast has " << fast.size() << " entries, reference " << ref.size();
    report.ok = false;
    report.diagnosis = os.str();
    return false;
  }
  for (std::size_t i = 0; i < fast.size(); ++i) {
    if (fast[i] != ref[i]) {
      std::ostringstream os;
      os << what << "[" << i << "]: fast=" << fast[i] << " reference=" << ref[i];
      report.ok = false;
      report.diagnosis = os.str();
      return false;
    }
  }
  return true;
}

}  // namespace

OracleReport differential_check(const EngineConfig& config, Scheduler& scheduler,
                                const MechanismSpec& mech, Mechanism* fast_mechanism) {
  OracleReport report;

  EngineConfig cfg = config;
  cfg.record_trace = true;

  std::unique_ptr<Mechanism> owned;
  if (fast_mechanism == nullptr) {
    owned = make_mechanism(mech);
    fast_mechanism = owned.get();
  }

  RecordingScheduler recorder(scheduler);
  SwarmState state(cfg.num_nodes, cfg.num_blocks);
  bool fast_threw = false;
  std::string fast_message;
  try {
    report.fast = run_with_state(cfg, recorder, fast_mechanism, state);
  } catch (const EngineViolation& e) {
    fast_threw = true;
    fast_message = e.what();
  }

  const ReferenceResult ref = reference_run(cfg, recorder.log(), mech);

  // --- Accept/reject agreement. ---
  report.violated = fast_threw;
  if (fast_threw) {
    report.violation_message = fast_message;
    if (!ref.violated) {
      report.ok = false;
      report.diagnosis =
          "fast engine rejected the schedule (" + fast_message +
          ") but the reference accepted it" +
          (ref.ran_out_of_log ? " (reference ran out of recorded ticks)" : "");
      return report;
    }
    report.violation_tick = ref.violation_tick;
    if (recorder.log().empty() || recorder.log().back().tick != ref.violation_tick) {
      report.ok = false;
      report.diagnosis = "fast engine rejected on tick " +
                         std::to_string(recorder.log().empty()
                                            ? Tick{0}
                                            : recorder.log().back().tick) +
                         " but the reference rejected tick " +
                         std::to_string(ref.violation_tick) + " (" +
                         ref.violation_message + ")";
    }
    return report;  // both sides rejected, same tick: agreement
  }
  if (ref.violated) {
    report.ok = false;
    report.diagnosis = "reference rejected the schedule (" + ref.violation_message +
                       ") but the fast engine accepted it";
    return report;
  }
  if (ref.ran_out_of_log) {
    report.ok = false;
    report.diagnosis =
        "fast engine stopped after " + std::to_string(recorder.log().size()) +
        " planned ticks but the reference expected more" +
        (ref.violation_message.empty() ? "" : " (" + ref.violation_message + ")");
    return report;
  }

  // --- Final RunResult agreement. ---
  const RunResult& fast = report.fast;
  if (!compare_scalar(report, "completed", fast.completed, ref.completed)) return report;
  if (!compare_scalar(report, "stalled", fast.stalled, ref.stalled)) return report;
  if (!compare_scalar(report, "completion_tick", fast.completion_tick,
                      ref.completion_tick)) {
    return report;
  }
  if (!compare_scalar(report, "ticks_executed", fast.ticks_executed, ref.ticks_executed)) {
    return report;
  }
  if (!compare_scalar(report, "total_transfers", fast.total_transfers,
                      ref.total_transfers)) {
    return report;
  }
  if (!compare_scalar(report, "dropped_transfers", fast.dropped_transfers,
                      ref.dropped_transfers)) {
    return report;
  }
  if (!compare_scalar(report, "departed", fast.departed, ref.departed)) return report;
  if (!compare_vector(report, "client_completion", fast.client_completion,
                      ref.client_completion)) {
    return report;
  }
  if (!compare_vector(report, "uploads_per_node", fast.uploads_per_node,
                      ref.uploads_per_node)) {
    return report;
  }
  if (!compare_vector(report, "uploads_per_tick", fast.uploads_per_tick,
                      ref.uploads_per_tick)) {
    return report;
  }
  if (!compare_vector(report, "active_slots_per_tick", fast.active_slots_per_tick,
                      ref.active_slots_per_tick)) {
    return report;
  }

  // --- Per-tick accept decisions (the kept trace). ---
  if (fast.trace.size() != ref.accepted.size()) {
    report.ok = false;
    report.diagnosis = "trace length: fast=" + std::to_string(fast.trace.size()) +
                       " reference=" + std::to_string(ref.accepted.size());
    return report;
  }
  for (std::size_t t = 0; t < fast.trace.size(); ++t) {
    if (fast.trace[t] != ref.accepted[t]) {
      report.ok = false;
      report.diagnosis = "accepted transfers diverge on tick " + std::to_string(t + 1) +
                         ": fast [" + transfers_to_string(fast.trace[t]) +
                         "] reference [" + transfers_to_string(ref.accepted[t]) + "]";
      return report;
    }
  }

  // --- Start-of-tick observations (replica counts, blocks held). ---
  const std::vector<TickRecord>& log = recorder.log();
  if (log.size() != ref.blocks_held_at_start.size()) {
    report.ok = false;
    report.diagnosis = "planned tick count: fast=" + std::to_string(log.size()) +
                       " reference=" + std::to_string(ref.blocks_held_at_start.size());
    return report;
  }
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (log[i].blocks_held_at_start != ref.blocks_held_at_start[i]) {
      report.ok = false;
      report.diagnosis = "blocks held at start of tick " + std::to_string(log[i].tick) +
                         ": fast=" + std::to_string(log[i].blocks_held_at_start) +
                         " reference=" + std::to_string(ref.blocks_held_at_start[i]);
      return report;
    }
    if (log[i].freq_fingerprint != ref.freq_fingerprint[i]) {
      report.ok = false;
      report.diagnosis = "replica counts diverge at start of tick " +
                         std::to_string(log[i].tick);
      return report;
    }
  }

  // --- Final possession, node by node, block by block. ---
  for (NodeId u = 0; u < cfg.num_nodes; ++u) {
    for (BlockId b = 0; b < cfg.num_blocks; ++b) {
      const bool fast_has = state.has(u, b);
      const bool ref_has = ref.final_have[u].count(b) != 0;
      if (fast_has != ref_has) {
        report.ok = false;
        report.diagnosis = "final possession of block " + std::to_string(b) +
                           " by node " + std::to_string(u) +
                           ": fast=" + (fast_has ? "yes" : "no") +
                           " reference=" + (ref_has ? "yes" : "no");
        return report;
      }
    }
  }

  return report;
}

OracleReport differential_replay(const LoadedTrace& trace, const MechanismSpec& mech) {
  EngineConfig cfg = trace.to_config();
  cfg.max_ticks = static_cast<Tick>(trace.ticks.size()) + 1;
  TraceScheduler scheduler(trace);
  return differential_check(cfg, scheduler, mech);
}

std::uint64_t run_result_digest(const RunResult& result) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (unsigned i = 0; i < 8; ++i) {
      h = (h ^ ((v >> (8 * i)) & 0xffu)) * 0x100000001b3ULL;
    }
  };
  mix(result.completed ? 1 : 0);
  mix(result.stalled ? 1 : 0);
  mix(result.completion_tick);
  mix(result.ticks_executed);
  mix(result.total_transfers);
  mix(result.dropped_transfers);
  mix(result.departed);
  const auto mix_all = [&mix](const auto& v) {
    mix(v.size());
    for (const auto x : v) mix(x);
  };
  mix_all(result.client_completion);
  mix_all(result.uploads_per_node);
  mix_all(result.uploads_per_tick);
  mix_all(result.active_slots_per_tick);
  mix(result.trace.size());
  for (const auto& tick : result.trace) {
    mix(tick.size());
    for (const Transfer& tr : tick) {
      mix(tr.from);
      mix(tr.to);
      mix(tr.block);
    }
  }
  // Streaming-demand fields (pob/scale/stream), mixed only when a streaming
  // drive filled them: every pinned digest of a plain run — CI, EXPERIMENTS,
  // the corpus — is byte-identical to what it was before these fields
  // existed. Doubles are mixed by bit pattern, so the censored NaN is a
  // stable, distinct value.
  if (!result.startup_latency.empty() || !result.rebuffer_ticks.empty() ||
      result.deadline_checks != 0) {
    mix(result.startup_latency.size());
    for (const double x : result.startup_latency) {
      mix(std::bit_cast<std::uint64_t>(x));
    }
    mix_all(result.rebuffer_ticks);
    mix(result.deadline_misses);
    mix(result.deadline_checks);
    mix(result.never_started);
    mix(result.rebuffered_clients);
  }
  return h;
}

std::string diff_run_results(const RunResult& a, const RunResult& b) {
  const auto scalar = [](const char* what, auto x, auto y) {
    std::ostringstream os;
    os << what << ": " << x << " vs " << y;
    return os.str();
  };
  if (a.completed != b.completed) return scalar("completed", a.completed, b.completed);
  if (a.stalled != b.stalled) return scalar("stalled", a.stalled, b.stalled);
  if (a.completion_tick != b.completion_tick) {
    return scalar("completion_tick", a.completion_tick, b.completion_tick);
  }
  if (a.ticks_executed != b.ticks_executed) {
    return scalar("ticks_executed", a.ticks_executed, b.ticks_executed);
  }
  if (a.total_transfers != b.total_transfers) {
    return scalar("total_transfers", a.total_transfers, b.total_transfers);
  }
  if (a.dropped_transfers != b.dropped_transfers) {
    return scalar("dropped_transfers", a.dropped_transfers, b.dropped_transfers);
  }
  if (a.departed != b.departed) return scalar("departed", a.departed, b.departed);
  const auto vec = [&](const char* what, const auto& x, const auto& y) -> std::string {
    if (x.size() != y.size()) {
      return scalar((std::string(what) + " size").c_str(), x.size(), y.size());
    }
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (x[i] != y[i]) {
        return scalar((std::string(what) + "[" + std::to_string(i) + "]").c_str(),
                      x[i], y[i]);
      }
    }
    return std::string();
  };
  if (auto d = vec("client_completion", a.client_completion, b.client_completion);
      !d.empty()) {
    return d;
  }
  if (auto d = vec("uploads_per_node", a.uploads_per_node, b.uploads_per_node);
      !d.empty()) {
    return d;
  }
  if (auto d = vec("uploads_per_tick", a.uploads_per_tick, b.uploads_per_tick);
      !d.empty()) {
    return d;
  }
  if (auto d = vec("active_slots_per_tick", a.active_slots_per_tick,
                   b.active_slots_per_tick);
      !d.empty()) {
    return d;
  }
  if (a.trace.size() != b.trace.size()) {
    return scalar("trace size", a.trace.size(), b.trace.size());
  }
  for (std::size_t t = 0; t < a.trace.size(); ++t) {
    if (a.trace[t] != b.trace[t]) {
      return "trace tick " + std::to_string(t + 1) + ": [" +
             transfers_to_string(a.trace[t]) + "] vs [" +
             transfers_to_string(b.trace[t]) + "]";
    }
  }
  // Streaming metrics: startup latencies compare by bit pattern so the
  // censored NaN equals itself (NaN-for-NaN, the convention every consumer
  // of client_completion already uses).
  if (a.startup_latency.size() != b.startup_latency.size()) {
    return scalar("startup_latency size", a.startup_latency.size(),
                  b.startup_latency.size());
  }
  for (std::size_t i = 0; i < a.startup_latency.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a.startup_latency[i]) !=
        std::bit_cast<std::uint64_t>(b.startup_latency[i])) {
      return scalar(("startup_latency[" + std::to_string(i) + "]").c_str(),
                    a.startup_latency[i], b.startup_latency[i]);
    }
  }
  if (auto d = vec("rebuffer_ticks", a.rebuffer_ticks, b.rebuffer_ticks); !d.empty()) {
    return d;
  }
  if (a.deadline_misses != b.deadline_misses) {
    return scalar("deadline_misses", a.deadline_misses, b.deadline_misses);
  }
  if (a.deadline_checks != b.deadline_checks) {
    return scalar("deadline_checks", a.deadline_checks, b.deadline_checks);
  }
  if (a.never_started != b.never_started) {
    return scalar("never_started", a.never_started, b.never_started);
  }
  if (a.rebuffered_clients != b.rebuffered_clients) {
    return scalar("rebuffered_clients", a.rebuffered_clients, b.rebuffered_clients);
  }
  return std::string();
}

}  // namespace pob::check
