// §2.2.2 "A Multicast Tree": nodes arranged in a complete d-ary tree rooted
// at the server; every node forwards each block to its d children one child
// per tick (block-major order). The paper's completion estimate is
// d*(k + ceil(log_d n) - 1) + (d - 1)-ish; we simulate the exact schedule.

#pragma once

#include <vector>

#include "pob/core/scheduler.h"

namespace pob {

class MulticastTreeScheduler final : public Scheduler {
 public:
  MulticastTreeScheduler(std::uint32_t num_nodes, std::uint32_t num_blocks,
                         std::uint32_t arity);

  std::string_view name() const override { return "multicast-tree"; }
  void plan_tick(Tick tick, const SwarmState& state, std::vector<Transfer>& out) override;

  std::uint32_t arity() const { return arity_; }

 private:
  std::uint32_t n_;
  std::uint32_t k_;
  std::uint32_t arity_;
  // Per-node forwarding cursor: next (block, child index) to send.
  std::vector<BlockId> next_block_;
  std::vector<std::uint32_t> next_child_;
};

}  // namespace pob
