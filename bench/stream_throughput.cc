// E25: continuous-time mega-swarm throughput — the hybrid tick+event stream
// layer measured at 10^5..10^6 nodes, flash crowd vs steady Poisson.
//
// Runs scale::stream::StreamEngine (calendar-queue arrivals feeding
// variable-population ticks) and reports, alongside the engine-throughput
// numbers E22 established, the three per-run streaming metrics the stream
// layer adds: the startup-latency distribution (censored clients excluded
// and counted), total rebuffer ticks, and the deadline-miss fraction. The
// RunResult digest is printed so CI can pin bit-identical behavior across
// job counts on the same host.
//
//   stream_throughput                          # 10^6-node flash crowd
//   stream_throughput --workload=poisson       # steady trickle instead
//   stream_throughput --n=100000 --k=64        # quicker smoke (CI uses this)
//   stream_throughput --window=8 --deadlines   # VoD: sequential + deadlines
//   stream_throughput --classes=3 --churn=256  # heterogeneous rate classes
//   stream_throughput --sweep=1,2,4,8          # jobs trajectory, one run each
//
// Every run is bit-identical at any --jobs; only the wall-clock may differ.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <stdexcept>
#include <vector>

#include "bench_util.h"
#include "pob/check/oracle.h"
#include "pob/scale/stream/stream_engine.h"

#if __has_include(<sys/resource.h>)
#include <sys/resource.h>
#define POB_HAVE_RUSAGE 1
#endif

namespace pob {
namespace {

std::uint64_t peak_rss_kb() {
#ifdef POB_HAVE_RUSAGE
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    return static_cast<std::uint64_t>(usage.ru_maxrss);
  }
#endif
  return 0;
}

struct LatencyStats {
  std::uint64_t started = 0;
  double mean = 0.0, p50 = 0.0, p95 = 0.0, max = 0.0;
};

LatencyStats latency_stats(const std::vector<double>& latency) {
  LatencyStats s;
  std::vector<double> v;
  v.reserve(latency.size());
  for (const double lat : latency) {
    if (!std::isnan(lat)) v.push_back(lat);
  }
  s.started = v.size();
  if (v.empty()) return s;
  std::sort(v.begin(), v.end());
  double sum = 0.0;
  for (const double lat : v) sum += lat;
  s.mean = sum / static_cast<double>(v.size());
  s.p50 = v[v.size() / 2];
  s.p95 = v[v.size() * 95 / 100];
  s.max = v.back();
  return s;
}

struct SweepPoint {
  unsigned jobs = 1;
  RunResult result;
  double run_seconds = 0.0;
  double node_ticks_per_sec = 0.0;
  std::uint64_t state_bytes = 0;
  std::uint64_t digest = 0;
};

int main_impl(int argc, char** argv) {
  const Args args(argc, argv);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 1000000));
  const auto k = static_cast<std::uint32_t>(args.get_int("k", 256));
  const auto degree = static_cast<std::uint32_t>(args.get_int("degree", 16));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::vector<unsigned> sweep;
  for (const std::int64_t j : args.get_int_list("sweep", {})) {
    const unsigned jobs = jobs_from_flag(j);
    if (std::find(sweep.begin(), sweep.end(), jobs) == sweep.end()) {
      sweep.push_back(jobs);
    }
  }
  if (sweep.empty()) sweep.push_back(jobs_from_flag(args.get_int("jobs", 0)));

  scale::stream::StreamSpec spec;
  spec.seed = seed;
  spec.config.num_nodes = n;
  spec.config.num_blocks = k;
  spec.config.server_upload_capacity =
      static_cast<std::uint32_t>(args.get_int("server-up", 8));
  spec.config.max_ticks = static_cast<Tick>(args.get_int("cap", 0));

  const std::string workload = args.get_string("workload", "flash");
  if (workload == "flash" || workload == "flash-crowd") {
    // The flash crowd: 90% of the swarm lands inside a 16-tick spike.
    spec.workload.arrivals = scale::stream::ArrivalPattern::kFlashCrowd;
    spec.workload.flash_start = static_cast<Tick>(args.get_int("flash-start", 8));
    spec.workload.flash_width =
        static_cast<std::uint32_t>(args.get_int("flash-width", 16));
  } else if (workload == "poisson") {
    // Steady trickle. gap16 = 2 is the densest non-degenerate rate (~16
    // arrivals/tick: the geometric gap has mean gap16 - 1 subticks), so a
    // 10^6-node swarm spends ~62k ticks just arriving — that long, mostly
    // sated tail is exactly what this workload measures against the flash
    // crowd's compressed burst.
    spec.workload.arrivals = scale::stream::ArrivalPattern::kPoisson;
    spec.workload.mean_gap16 =
        static_cast<std::uint32_t>(args.get_int("gap16", n >= 100000 ? 2 : 8));
  } else if (workload == "burst") {
    spec.workload.arrivals = scale::stream::ArrivalPattern::kBurst;
    spec.workload.burst_size =
        static_cast<std::uint32_t>(args.get_int("burst-size", n / 64 + 1));
    spec.workload.burst_period =
        static_cast<std::uint32_t>(args.get_int("burst-period", 4));
  } else if (workload == "batch") {
    spec.workload.arrivals = scale::stream::ArrivalPattern::kAllAtStart;
  } else {
    throw std::invalid_argument("unknown --workload=" + workload +
                                " (flash | poisson | burst | batch)");
  }

  const auto classes = static_cast<std::uint32_t>(args.get_int("classes", 0));
  for (std::uint32_t i = 0; i < classes; ++i) {
    spec.workload.rate_classes.push_back(
        {classes - i, 1 + i, i == 0 ? kUnlimited : 2 * (1 + i)});
  }
  spec.workload.rate_changes = static_cast<std::uint32_t>(args.get_int("churn", 0));
  spec.workload.rate_change_horizon = static_cast<Tick>(args.get_int("horizon", 64));

  spec.demand.window = static_cast<std::uint32_t>(args.get_int("window", 0));
  spec.demand.startup_blocks =
      static_cast<std::uint32_t>(args.get_int("startup", 4));
  spec.demand.interval = static_cast<Tick>(args.get_int("interval", 1));
  spec.demand.deadlines = args.has("deadlines");
  spec.demand.deadline_slack = static_cast<Tick>(args.get_int("slack", 2));

  spec.options.policy = args.get_string("policy", "random") == "random"
                            ? BlockPolicy::kRandom
                            : BlockPolicy::kRarestFirst;
  spec.options.max_probes = static_cast<std::uint32_t>(args.get_int("probes", 16));
  spec.options.scan_kernel = args.get_string("simd", "auto") == "off"
                                 ? scale::ScanKernel::kScalar
                                 : scale::ScanKernel::kAuto;

  const auto t0 = std::chrono::steady_clock::now();
  Rng topo_rng = Rng(seed).split(0);
  spec.topology = std::make_shared<scale::Topology>(
      scale::Topology::from_graph(make_random_regular(n, degree, topo_rng)));
  const double topo_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  std::vector<SweepPoint> points;
  for (const unsigned jobs : sweep) {
    scale::stream::StreamEngine engine(spec);
    SweepPoint p;
    p.jobs = jobs == 0 ? default_jobs() : jobs;
    p.state_bytes = engine.state_bytes();
    const auto t1 = std::chrono::steady_clock::now();
    p.result = engine.run(jobs);
    p.run_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t1).count();
    p.digest = check::run_result_digest(p.result);
    const std::uint64_t node_ticks =
        static_cast<std::uint64_t>(n) * p.result.ticks_executed;
    if (p.run_seconds > 0.0) {
      p.node_ticks_per_sec = static_cast<double>(node_ticks) / p.run_seconds;
    }
    points.push_back(std::move(p));
  }
  const std::uint64_t rss_kb = peak_rss_kb();
  const SweepPoint& head = points.front();
  const SweepPoint& baseline = points[bench::sweep_baseline_index(sweep)];

  const LatencyStats lat = latency_stats(head.result.startup_latency);
  const std::uint64_t rebuffer_total = head.result.total_rebuffer_ticks();
  const double miss_fraction = head.result.deadline_miss_fraction();

  bench::emit(args, [&] {
    Table table({"n", "k", "workload", "jobs", "ticks", "T", "transfers",
                 "node-ticks/s", "speedup", "start-p50", "start-p95",
                 "rebuf-ticks", "dl-miss"});
    for (const SweepPoint& p : points) {
      const double speedup = baseline.run_seconds > 0.0 && p.run_seconds > 0.0
                                 ? baseline.run_seconds / p.run_seconds
                                 : 0.0;
      table.add_row(
          {std::to_string(n), std::to_string(k), workload, std::to_string(p.jobs),
           std::to_string(p.result.ticks_executed),
           p.result.completed ? std::to_string(p.result.completion_tick)
                              : (p.result.stalled ? "stall" : "cap"),
           std::to_string(p.result.total_transfers),
           fmt(p.node_ticks_per_sec / 1e6, 1) + "M", fmt(speedup, 2) + "x",
           fmt(lat.p50, 1), fmt(lat.p95, 1),
           std::to_string(p.result.total_rebuffer_ticks()),
           fmt(p.result.deadline_miss_fraction(), 4)});
    }
    return table;
  }());
  std::cout << "# graph build " << fmt(topo_seconds, 2) << " s, state "
            << head.state_bytes / (1024 * 1024) << " MiB, peak rss "
            << rss_kb / 1024 << " MiB\n";
  std::cout << "# startup latency: " << lat.started << " started / "
            << head.result.never_started << " censored, mean " << fmt(lat.mean, 2)
            << " p50 " << fmt(lat.p50, 1) << " p95 " << fmt(lat.p95, 1) << " max "
            << fmt(lat.max, 1) << "; rebuffer " << rebuffer_total << " ticks over "
            << head.result.rebuffered_clients << " clients; deadline misses "
            << head.result.deadline_misses << "/" << head.result.deadline_checks
            << " (" << fmt(miss_fraction, 4) << ")\n";
  std::cout << "# digest " << std::hex << head.digest << std::dec << "\n";

  bench::JsonReport json;
  json.str("bench", "stream_throughput")
      .count("n", n)
      .count("k", k)
      .count("degree", degree)
      .count("jobs", head.jobs)
      .str("workload", workload)
      .count("rate_classes", classes)
      .count("rate_changes", spec.workload.rate_changes)
      .count("window", spec.demand.window)
      .count("startup_blocks", spec.demand.startup_blocks)
      .flag("deadlines", spec.demand.deadlines)
      .str("policy", spec.options.policy == BlockPolicy::kRandom ? "random"
                                                                 : "rarest")
      .str("scan_kernel", scale::scan_kernel_name(spec.options.scan_kernel))
      .flag("completed", head.result.completed)
      .count("ticks_executed", head.result.ticks_executed)
      .count("completion_tick", head.result.completion_tick)
      .count("total_transfers", head.result.total_transfers)
      .num("run_seconds", head.run_seconds)
      .num("topology_seconds", topo_seconds)
      .num("node_ticks_per_sec", head.node_ticks_per_sec)
      .count("state_bytes", head.state_bytes)
      .count("peak_rss_kb", rss_kb)
      .count("started_clients", lat.started)
      .count("never_started", head.result.never_started)
      .num("startup_latency_mean", lat.mean)
      .num("startup_latency_p50", lat.p50)
      .num("startup_latency_p95", lat.p95)
      .num("startup_latency_max", lat.max)
      .count("rebuffer_ticks_total", rebuffer_total)
      .count("rebuffered_clients", head.result.rebuffered_clients)
      .count("deadline_misses", head.result.deadline_misses)
      .count("deadline_checks", head.result.deadline_checks)
      .num("deadline_miss_fraction", miss_fraction)
      .count("digest", head.digest);
  if (points.size() > 1) {
    std::string jobs_list;
    for (const SweepPoint& p : points) {
      if (!jobs_list.empty()) jobs_list += ',';
      jobs_list += std::to_string(p.jobs);
    }
    json.str("jobs_sweep", jobs_list);
    json.count("speedup_baseline_jobs", baseline.jobs);
    for (const SweepPoint& p : points) {
      const std::string suffix = "_j" + std::to_string(p.jobs);
      json.num("run_seconds" + suffix, p.run_seconds)
          .num("node_ticks_per_sec" + suffix, p.node_ticks_per_sec)
          .num("speedup" + suffix, baseline.run_seconds > 0.0 && p.run_seconds > 0.0
                                       ? baseline.run_seconds / p.run_seconds
                                       : 0.0)
          .count("digest" + suffix, p.digest);
    }
  }
  if (!json.write(args, "BENCH_stream.json")) return 1;
  return head.result.completed || spec.config.max_ticks != 0 ? 0 : 1;
}

}  // namespace
}  // namespace pob

int main(int argc, char** argv) {
  try {
    return pob::main_impl(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "stream_throughput: " << e.what() << "\n";
    return 2;
  }
}
