// E6 / Figure 6 — credit-limited randomized algorithm with the Random
// block-selection policy. See fig67_common.h for the expected shape; the
// paper's threshold with Random at n = k = 1000 is around degree 80.

#include "fig67_common.h"

int main(int argc, char** argv) {
  return pob::bench::run_fig67(argc, argv, pob::BlockPolicy::kRandom,
                               "E6/Figure 6");
}
