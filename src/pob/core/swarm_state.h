// Possession state of every node in the swarm, plus the derived indexes the
// randomized algorithms need to stay fast at scale:
//
//   * a swap-removable list of incomplete nodes (endgame target sampling),
//   * global per-block replica counts (Rarest-First with "perfect statistics",
//     exactly as the paper's simulations assume in §3.2.4).
//
// The server (node 0) starts with every block; clients start empty. State is
// mutated only by the engine (or by schedulers running their own private
// simulations, e.g. to precompute a deterministic schedule).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pob/core/block_set.h"
#include "pob/core/types.h"

namespace pob {

class SwarmState {
 public:
  /// `num_nodes` includes the server; requires num_nodes >= 2, num_blocks >= 1.
  SwarmState(std::uint32_t num_nodes, std::uint32_t num_blocks);

  std::uint32_t num_nodes() const { return static_cast<std::uint32_t>(have_.size()); }
  std::uint32_t num_clients() const { return num_nodes() - 1; }
  std::uint32_t num_blocks() const { return num_blocks_; }

  const BlockSet& blocks_of(NodeId node) const { return have_[node]; }

  bool has(NodeId node, BlockId block) const { return have_[node].contains(block); }

  bool is_complete(NodeId node) const { return have_[node].full(); }

  /// True when every client holds every block.
  bool all_complete() const { return incomplete_.empty(); }

  std::uint32_t num_incomplete() const {
    return static_cast<std::uint32_t>(incomplete_.size());
  }

  /// Clients (and never the server — it starts complete) still missing blocks,
  /// in unspecified order. Stable only until the next mutation.
  std::span<const NodeId> incomplete_nodes() const { return incomplete_; }

  /// Number of nodes (server included) possessing each block.
  std::span<const std::uint32_t> block_frequency() const { return freq_; }

  /// Grants `block` to `node` at tick `tick`. Returns true if newly added;
  /// updates the incomplete index, replica counts, and — if the node became
  /// complete — its completion tick.
  bool add_block(NodeId node, BlockId block, Tick tick);

  /// Removes `node` from the swarm (churn/failure injection): it no longer
  /// counts toward completion, leaves the incomplete index, and its block
  /// replicas stop counting toward block_frequency(). Idempotent; the
  /// server cannot depart.
  void deactivate(NodeId node);

  /// False once the node departed.
  bool is_active(NodeId node) const { return active_[node] != 0; }

  std::uint32_t num_departed() const { return num_departed_; }

  /// Tick at which `node` became complete, or 0 if it has not (the server
  /// reports 0: it never "completes", it starts full).
  Tick completion_tick(NodeId node) const { return completion_tick_[node]; }

  /// Completion ticks of all clients (index 0 = client 1).
  std::vector<Tick> client_completion_ticks() const;

  /// Total number of blocks held across all nodes (server included).
  std::uint64_t total_blocks_held() const { return total_held_; }

 private:
  std::uint32_t num_blocks_;
  std::vector<BlockSet> have_;
  std::vector<Tick> completion_tick_;
  std::vector<NodeId> incomplete_;      // swap-remove list of incomplete clients
  std::vector<std::uint32_t> position_; // node -> index in incomplete_, or npos
  std::vector<std::uint32_t> freq_;     // block -> replica count (active nodes)
  std::vector<char> active_;            // 0 once departed
  std::uint32_t num_departed_ = 0;
  std::uint64_t total_held_ = 0;

  static constexpr std::uint32_t kNotListed = 0xffffffffu;
};

}  // namespace pob
