// Quickstart: distribute an 8-block file from one server to 15 clients with
// the optimal Binomial Pipeline (§2.3), inspect the tick-by-tick schedule,
// and check the completion time against Theorem 1's lower bound.
//
//   $ ./quickstart

#include <iostream>

#include "pob/analysis/bounds.h"
#include "pob/core/engine.h"
#include "pob/sched/binomial_pipeline.h"

int main() {
  const std::uint32_t n = 16;  // nodes, including the server (node 0)
  const std::uint32_t k = 8;   // file size in blocks

  // The engine enforces the paper's model: every node uploads and downloads
  // at most one block per tick, and a block can be forwarded only starting
  // the tick after it arrived.
  pob::EngineConfig config;
  config.num_nodes = n;
  config.num_blocks = k;
  config.download_capacity = 1;
  config.record_trace = true;

  pob::BinomialPipelineScheduler scheduler(n, k);
  const pob::RunResult result = pob::run(config, scheduler);

  std::cout << "binomial pipeline, n = " << n << ", k = " << k << "\n";
  std::cout << "completed: " << (result.completed ? "yes" : "no") << "\n";
  std::cout << "completion time: " << result.completion_tick << " ticks\n";
  std::cout << "theorem 1 lower bound: " << pob::cooperative_lower_bound(n, k)
            << " ticks (k - 1 + ceil(log2 n))\n";
  std::cout << "total transfers: " << result.total_transfers << " (= (n-1)*k = "
            << (n - 1) * k << ")\n\n";

  std::cout << "schedule (tick: from->to blocks, 0 = server):\n";
  for (pob::Tick t = 1; t <= result.trace.size(); ++t) {
    std::cout << "  tick " << t << ":";
    for (const pob::Transfer& tr : result.trace[t - 1]) {
      std::cout << "  " << tr.from << "->" << tr.to << " b" << tr.block;
    }
    std::cout << "\n";
  }

  std::cout << "\nper-client completion ticks:";
  for (const pob::Tick t : result.client_completion) std::cout << " " << t;
  std::cout << "\n(all equal, as §2.3.4 promises for k >= log2 n)\n";
  return result.completed ? 0 : 1;
}
