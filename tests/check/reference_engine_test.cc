#include <gtest/gtest.h>

#include <vector>

#include "pob/check/reference_engine.h"

namespace pob::check {
namespace {

template <typename Fn>
class LambdaScheduler final : public Scheduler {
 public:
  explicit LambdaScheduler(Fn fn) : fn_(std::move(fn)) {}
  std::string_view name() const override { return "lambda"; }
  void plan_tick(Tick t, const SwarmState& s, std::vector<Transfer>& out) override {
    fn_(t, s, out);
  }

 private:
  Fn fn_;
};

EngineConfig config(std::uint32_t n, std::uint32_t k) {
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  cfg.record_trace = true;
  return cfg;
}

TEST(FingerprintFrequencies, SeparatesPermutationsAndMatchesItself) {
  const std::vector<std::uint32_t> a{1, 2, 3}, b{3, 2, 1}, c{1, 2, 3};
  EXPECT_EQ(fingerprint_frequencies(a), fingerprint_frequencies(c));
  EXPECT_NE(fingerprint_frequencies(a), fingerprint_frequencies(b));
  EXPECT_NE(fingerprint_frequencies(a), fingerprint_frequencies({}));
}

TEST(RecordingScheduler, CapturesPlansAndStartOfTickObservations) {
  EngineConfig cfg = config(3, 2);
  LambdaScheduler inner([](Tick t, const SwarmState&, std::vector<Transfer>& out) {
    if (t == 1) out.push_back({0, 1, 0});
    if (t == 2) {
      out.push_back({0, 2, 1});
      out.push_back({1, 2, 0});
    }
    if (t == 3) out.push_back({0, 1, 1});
  });
  RecordingScheduler recorder(inner);
  const RunResult r = run(cfg, recorder);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.completion_tick, 3u);

  const std::vector<TickRecord>& log = recorder.log();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].tick, 1u);
  ASSERT_EQ(log[0].planned.size(), 1u);
  EXPECT_EQ(log[0].planned[0], (Transfer{0, 1, 0}));
  EXPECT_EQ(log[1].planned.size(), 2u);
  // Start of tick 1: only the server's k = 2 blocks exist.
  EXPECT_EQ(log[0].blocks_held_at_start, 2u);
  EXPECT_EQ(log[1].blocks_held_at_start, 3u);
  EXPECT_EQ(log[2].blocks_held_at_start, 5u);
  // Tick 1 replica counts are all-ones; tick 2 has block 0 doubled.
  const std::vector<std::uint32_t> ones{1, 1}, after{2, 1};
  EXPECT_EQ(log[0].freq_fingerprint, fingerprint_frequencies(ones));
  EXPECT_EQ(log[1].freq_fingerprint, fingerprint_frequencies(after));
}

TEST(ReferenceEngine, MirrorsALegalRunExactly) {
  EngineConfig cfg = config(3, 1);
  LambdaScheduler inner([](Tick t, const SwarmState&, std::vector<Transfer>& out) {
    if (t == 1) out.push_back({0, 1, 0});
    if (t == 2) out.push_back({1, 2, 0});
  });
  RecordingScheduler recorder(inner);
  const RunResult r = run(cfg, recorder);
  ASSERT_TRUE(r.completed);

  const ReferenceResult ref = reference_run(cfg, recorder.log(), {});
  EXPECT_FALSE(ref.violated) << ref.violation_message;
  EXPECT_FALSE(ref.ran_out_of_log);
  EXPECT_TRUE(ref.completed);
  EXPECT_EQ(ref.completion_tick, r.completion_tick);
  EXPECT_EQ(ref.ticks_executed, r.ticks_executed);
  EXPECT_EQ(ref.total_transfers, r.total_transfers);
  EXPECT_EQ(ref.client_completion, r.client_completion);
  EXPECT_EQ(ref.uploads_per_node, r.uploads_per_node);
  ASSERT_EQ(ref.accepted.size(), r.trace.size());
  for (std::size_t t = 0; t < r.trace.size(); ++t) {
    EXPECT_EQ(ref.accepted[t], r.trace[t]) << "tick " << t + 1;
  }
  EXPECT_EQ(ref.final_have[2].count(0), 1u);
}

TEST(ReferenceEngine, RejectsWhatTheFastEngineRejects) {
  EngineConfig cfg = config(3, 1);
  // Node 1 has nothing on tick 1; both engines must refuse this.
  LambdaScheduler inner([](Tick, const SwarmState&, std::vector<Transfer>& out) {
    out.push_back({1, 2, 0});
  });
  RecordingScheduler recorder(inner);
  EXPECT_THROW(run(cfg, recorder), EngineViolation);

  const ReferenceResult ref = reference_run(cfg, recorder.log(), {});
  EXPECT_TRUE(ref.violated);
  EXPECT_EQ(ref.violation_tick, 1u);
  EXPECT_NE(ref.violation_message.find("does not hold"), std::string::npos)
      << ref.violation_message;
}

TEST(ReferenceEngine, EnforcesStrictBarterIndependently) {
  EngineConfig cfg = config(3, 4);
  cfg.download_capacity = kUnlimited;
  // Tick 1-2: the server seeds both clients. Tick 3: a one-sided client
  // upload — legal bandwidth-wise, but barter demands reciprocation.
  LambdaScheduler inner([](Tick t, const SwarmState&, std::vector<Transfer>& out) {
    if (t == 1) out.push_back({0, 1, 0});
    if (t == 2) out.push_back({0, 2, 1});
    if (t == 3) out.push_back({1, 2, 0});
  });
  RecordingScheduler recorder(inner);
  MechanismSpec spec;
  spec.kind = MechanismSpec::Kind::kStrictBarter;
  std::unique_ptr<Mechanism> mech = make_mechanism(spec);
  EXPECT_THROW(run(cfg, recorder, mech.get()), EngineViolation);

  const ReferenceResult ref = reference_run(cfg, recorder.log(), spec);
  EXPECT_TRUE(ref.violated);
  EXPECT_EQ(ref.violation_tick, 3u);
}

TEST(ReferenceEngine, AcceptsBalancedBarterAndCountsUploads) {
  EngineConfig cfg = config(3, 4);
  cfg.download_capacity = kUnlimited;
  LambdaScheduler inner([](Tick t, const SwarmState&, std::vector<Transfer>& out) {
    if (t == 1) out.push_back({0, 1, 0});
    if (t == 2) out.push_back({0, 2, 1});
    if (t == 3) {  // balanced swap
      out.push_back({1, 2, 0});
      out.push_back({2, 1, 1});
    }
    if (t == 4) out.push_back({0, 1, 2});
    if (t == 5) out.push_back({0, 2, 3});
    if (t == 6) {
      out.push_back({1, 2, 2});
      out.push_back({2, 1, 3});
    }
  });
  RecordingScheduler recorder(inner);
  MechanismSpec spec;
  spec.kind = MechanismSpec::Kind::kStrictBarter;
  std::unique_ptr<Mechanism> mech = make_mechanism(spec);
  const RunResult r = run(cfg, recorder, mech.get());
  ASSERT_TRUE(r.completed);

  const ReferenceResult ref = reference_run(cfg, recorder.log(), spec);
  EXPECT_FALSE(ref.violated) << ref.violation_message;
  EXPECT_TRUE(ref.completed);
  EXPECT_EQ(ref.uploads_per_node, r.uploads_per_node);
  EXPECT_EQ(ref.uploads_per_tick, r.uploads_per_tick);
}

}  // namespace
}  // namespace pob::check
