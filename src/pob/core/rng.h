// Deterministic, splittable random number generator.
//
// Experiments must be reproducible across platforms and standard-library
// versions, so we implement xoshiro256** (Blackman & Vigna) directly instead
// of relying on std:: distributions, whose outputs are not portable.

#pragma once

#include <array>
#include <cstdint>

namespace pob {

/// Small, fast, deterministic PRNG (xoshiro256**), seeded via splitmix64.
///
/// Not cryptographically secure; intended for simulation only. Copyable:
/// copies continue the same stream independently.
class Rng {
 public:
  /// Seeds the generator. Two generators with different seeds produce
  /// independent-looking streams; the all-zero state is impossible because
  /// splitmix64 never maps a seed to four zero words.
  ///
  /// Construction, next() and below() are defined inline: the scale
  /// engine's generate phase seeds a fresh stream and draws from it for
  /// every (tick, node) pair — hundreds of millions of times per run — and
  /// an out-of-line call per draw was measurable there.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    std::uint64_t s = seed;
    for (auto& word : state_) word = splitmix(s);
  }

  /// Next 64 uniformly distributed bits.
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be nonzero. Uses rejection
  /// sampling (Lemire-style) so results are exactly uniform.
  std::uint32_t below(std::uint32_t bound) {
    // Lemire's multiply-shift with rejection for exact uniformity.
    std::uint64_t x = next() & 0xffffffffULL;
    std::uint64_t m = x * bound;
    auto low = static_cast<std::uint32_t>(m);
    if (low < bound) {
      const std::uint32_t threshold = (0u - bound) % bound;
      while (low < threshold) {
        x = next() & 0xffffffffULL;
        m = x * bound;
        low = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  std::uint32_t range(std::uint32_t lo, std::uint32_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// True with probability `p` (clamped to [0,1]).
  bool chance(double p);

  /// Derives an independent generator for a sub-task. Streams derived with
  /// different `stream` values from the same parent are independent, and
  /// deriving does not perturb the parent's own stream.
  [[nodiscard]] Rng split(std::uint64_t stream) const;

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) {
    using std::size;
    const auto n = static_cast<std::uint32_t>(size(c));
    for (std::uint32_t i = n; i > 1; --i) {
      const std::uint32_t j = below(i);
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

 private:
  /// splitmix64: used to expand a 64-bit seed into xoshiro state.
  static std::uint64_t splitmix(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace pob
