#include "pob/core/block_set.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

namespace pob {
namespace {

TEST(BlockSet, StartsEmpty) {
  const BlockSet s(100);
  EXPECT_EQ(s.universe(), 100u);
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.full());
  EXPECT_EQ(s.min(), kNoBlock);
  EXPECT_EQ(s.max(), kNoBlock);
  EXPECT_EQ(s.first_missing(), 0u);
}

TEST(BlockSet, ZeroUniverseRejected) {
  // A zero-block file is meaningless; every downstream invariant (first
  // missing block, fullness, rarest-first frequency vectors) assumes k >= 1.
  EXPECT_THROW(BlockSet(0), std::invalid_argument);
}

TEST(BlockSet, SingleBlockUniverse) {
  BlockSet s(1);
  EXPECT_EQ(s.first_missing(), 0u);
  EXPECT_TRUE(s.insert(0));
  EXPECT_TRUE(s.full());
  EXPECT_EQ(s.min(), 0u);
  EXPECT_EQ(s.max(), 0u);
  EXPECT_EQ(s.first_missing(), kNoBlock);
}

TEST(BlockSet, WordBoundaryTailBitsStayMasked) {
  // k = 63/64/65 straddle the uint64 word boundary; operations on the last
  // block must not leak into (or read from) unused tail bits.
  for (const std::uint32_t universe : {63u, 64u, 65u}) {
    BlockSet s(universe);
    const BlockId last = universe - 1;
    EXPECT_TRUE(s.insert(last)) << universe;
    EXPECT_EQ(s.count(), 1u) << universe;
    EXPECT_EQ(s.max(), last) << universe;
    EXPECT_EQ(s.first_missing(), 0u) << universe;
    for (BlockId b = 0; b < last; ++b) s.insert(b);
    EXPECT_TRUE(s.full()) << universe;
    EXPECT_TRUE(s.erase(last)) << universe;
    EXPECT_FALSE(s.full()) << universe;
    EXPECT_EQ(s.first_missing(), last) << universe;
  }
}

TEST(BlockSet, InsertEraseRoundTrip) {
  BlockSet s(130);
  EXPECT_TRUE(s.insert(0));
  EXPECT_TRUE(s.insert(129));
  EXPECT_TRUE(s.insert(64));
  EXPECT_FALSE(s.insert(64));  // duplicate
  EXPECT_EQ(s.count(), 3u);
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(64));
  EXPECT_TRUE(s.contains(129));
  EXPECT_FALSE(s.contains(1));
  EXPECT_TRUE(s.erase(64));
  EXPECT_FALSE(s.erase(64));
  EXPECT_EQ(s.count(), 2u);
}

TEST(BlockSet, MinMaxTrackExtremes) {
  BlockSet s(200);
  s.insert(77);
  EXPECT_EQ(s.min(), 77u);
  EXPECT_EQ(s.max(), 77u);
  s.insert(12);
  s.insert(199);
  EXPECT_EQ(s.min(), 12u);
  EXPECT_EQ(s.max(), 199u);
}

TEST(BlockSet, FillMakesFull) {
  for (const std::uint32_t universe : {1u, 63u, 64u, 65u, 128u, 1000u}) {
    BlockSet s(universe);
    s.fill();
    EXPECT_TRUE(s.full()) << universe;
    EXPECT_EQ(s.count(), universe) << universe;
    EXPECT_EQ(s.first_missing(), kNoBlock) << universe;
    EXPECT_EQ(s.min(), 0u) << universe;
    EXPECT_EQ(s.max(), universe - 1) << universe;
  }
}

TEST(BlockSet, FirstMissingSkipsHeldPrefix) {
  BlockSet s(70);
  for (BlockId b = 0; b < 65; ++b) s.insert(b);
  EXPECT_EQ(s.first_missing(), 65u);
}

TEST(BlockSet, MissingFromQueries) {
  BlockSet a(100), b(100);
  a.insert(3);
  a.insert(70);
  b.insert(3);
  EXPECT_TRUE(a.has_block_missing_from(b));
  EXPECT_EQ(a.max_missing_from(b), 70u);
  EXPECT_EQ(a.count_missing_from(b), 1u);
  EXPECT_FALSE(b.has_block_missing_from(a));
  EXPECT_EQ(b.max_missing_from(a), kNoBlock);
  b.insert(70);
  EXPECT_FALSE(a.has_block_missing_from(b));
}

TEST(BlockSet, HasUsefulHonorsExclusion) {
  BlockSet src(64), dst(64), excl(64);
  src.insert(5);
  EXPECT_TRUE(src.has_useful(dst, nullptr));
  EXPECT_TRUE(src.has_useful(dst, &excl));
  excl.insert(5);
  EXPECT_FALSE(src.has_useful(dst, &excl));
  dst.insert(5);
  EXPECT_FALSE(src.has_useful(dst, nullptr));
}

TEST(BlockSet, CoversComplementOf) {
  BlockSet have(10), inbound(10);
  for (BlockId b = 0; b < 8; ++b) have.insert(b);
  EXPECT_FALSE(inbound.covers_complement_of(have));
  inbound.insert(8);
  EXPECT_FALSE(inbound.covers_complement_of(have));
  inbound.insert(9);
  EXPECT_TRUE(inbound.covers_complement_of(have));
  // A full `have` is covered by anything.
  have.insert(8);
  have.insert(9);
  BlockSet empty(10);
  EXPECT_TRUE(empty.covers_complement_of(have));
}

TEST(BlockSet, PickRandomUsefulIsUniform) {
  BlockSet src(256), dst(256);
  for (BlockId b = 0; b < 256; b += 2) src.insert(b);  // evens
  dst.insert(0);  // remove one candidate
  Rng rng(1);
  std::map<BlockId, int> histogram;
  const int trials = 12700;
  for (int i = 0; i < trials; ++i) {
    const BlockId b = src.pick_random_useful(dst, nullptr, rng);
    ASSERT_NE(b, kNoBlock);
    ASSERT_TRUE(src.contains(b));
    ASSERT_FALSE(dst.contains(b));
    ++histogram[b];
  }
  EXPECT_EQ(histogram.size(), 127u);  // every candidate hit
  for (const auto& [b, count] : histogram) {
    EXPECT_GT(count, 40) << "block " << b;  // 100 expected; loose uniformity
    EXPECT_LT(count, 220) << "block " << b;
  }
}

TEST(BlockSet, PickRandomUsefulEmptyDifference) {
  BlockSet src(32), dst(32);
  src.insert(7);
  dst.insert(7);
  Rng rng(2);
  EXPECT_EQ(src.pick_random_useful(dst, nullptr, rng), kNoBlock);
}

TEST(BlockSet, PickRarestPrefersLowFrequency) {
  BlockSet src(8), dst(8);
  src.insert(1);
  src.insert(3);
  src.insert(5);
  std::vector<std::uint32_t> freq = {9, 4, 9, 2, 9, 7, 9, 9};
  Rng rng(3);
  EXPECT_EQ(src.pick_rarest_useful(dst, nullptr, freq, rng), 3u);  // freq 2
  dst.insert(3);
  EXPECT_EQ(src.pick_rarest_useful(dst, nullptr, freq, rng), 1u);  // freq 4
}

TEST(BlockSet, PickRarestBreaksTiesRandomly) {
  BlockSet src(4), dst(4);
  src.insert(0);
  src.insert(2);
  std::vector<std::uint32_t> freq = {5, 1, 5, 1};
  Rng rng(4);
  std::set<BlockId> seen;
  for (int i = 0; i < 200; ++i) seen.insert(src.pick_rarest_useful(dst, nullptr, freq, rng));
  EXPECT_EQ(seen, (std::set<BlockId>{0u, 2u}));
}

TEST(BlockSet, PickRarestRejectsBadFreqSize) {
  BlockSet src(8), dst(8);
  src.insert(0);
  std::vector<std::uint32_t> freq(4, 0);
  Rng rng(5);
  EXPECT_THROW(src.pick_rarest_useful(dst, nullptr, freq, rng), std::invalid_argument);
}

TEST(BlockSet, ForEachAndToVectorAgree) {
  BlockSet s(150);
  const std::vector<BlockId> blocks = {0, 1, 63, 64, 65, 127, 128, 149};
  for (const BlockId b : blocks) s.insert(b);
  EXPECT_EQ(s.to_vector(), blocks);
  std::vector<BlockId> visited;
  s.for_each([&](BlockId b) { visited.push_back(b); });
  EXPECT_EQ(visited, blocks);
}

TEST(BlockSet, EqualityComparesContents) {
  BlockSet a(64), b(64), c(65);
  a.insert(3);
  b.insert(3);
  EXPECT_EQ(a, b);
  b.insert(4);
  EXPECT_FALSE(a == b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace pob
