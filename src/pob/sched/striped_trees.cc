#include "pob/sched/striped_trees.h"

#include <stdexcept>

namespace pob {

StripedTreesScheduler::StripedTreesScheduler(std::uint32_t num_nodes,
                                             std::uint32_t num_blocks,
                                             std::uint32_t stripes)
    : n_(num_nodes), k_(num_blocks), stripes_(stripes) {
  if (n_ < 2) throw std::invalid_argument("striped-trees: need >= 2 nodes");
  if (stripes_ < 1) throw std::invalid_argument("striped-trees: need >= 1 stripe");
  if (stripes_ > n_ - 1) {
    throw std::invalid_argument("striped-trees: more stripes than clients");
  }

  // Blocks striped round-robin: stripe j owns blocks j, j+stripes, ...
  stripe_blocks_.assign(stripes_, {});
  for (BlockId b = 0; b < k_; ++b) stripe_blocks_[b % stripes_].push_back(b);

  // Client groups: client c belongs to group (c - 1) % stripes.
  std::vector<std::vector<NodeId>> group(stripes_);
  for (NodeId c = 1; c < n_; ++c) group[(c - 1) % stripes_].push_back(c);

  duty_.assign(n_, {});
  root_.assign(stripes_, kNoNode);
  server_next_.assign(stripes_, 0);
  for (std::uint32_t j = 0; j < stripes_; ++j) {
    const auto& members = group[j];
    root_[j] = members[0];
    // Interior binary tree over the group, heap order.
    for (std::uint32_t i = 0; i < members.size(); ++i) {
      NodeDuty& duty = duty_[members[i]];
      duty.stripe = j;
      for (const std::uint32_t child : {2 * i + 1, 2 * i + 2}) {
        if (child < members.size()) duty.targets.push_back(members[child]);
      }
    }
    // Every non-member is a leaf of this stripe, attached round-robin.
    std::uint32_t cursor = 0;
    for (NodeId c = 1; c < n_; ++c) {
      if ((c - 1) % stripes_ == j) continue;
      duty_[group[j][cursor % members.size()]].targets.push_back(c);
      ++cursor;
    }
  }
}

void StripedTreesScheduler::plan_tick(Tick /*tick*/, const SwarmState& state,
                                      std::vector<Transfer>& out) {
  // Server: inject the next block of the next non-exhausted stripe
  // (round-robin), to that stripe's tree root.
  for (std::uint32_t probe = 0; probe < stripes_; ++probe) {
    const std::uint32_t j = (server_cursor_ + probe) % stripes_;
    if (server_next_[j] >= stripe_blocks_[j].size()) continue;
    const BlockId b = stripe_blocks_[j][server_next_[j]];
    if (state.has(root_[j], b)) {  // nothing to do; should not happen
      ++server_next_[j];
      continue;
    }
    out.push_back({kServer, root_[j], b});
    ++server_next_[j];
    server_cursor_ = (j + 1) % stripes_;
    break;
  }

  // Interior nodes: block-major forwarding of their stripe, stalling until
  // each block arrives; targets that somehow already hold the block are
  // skipped without consuming the tick.
  for (NodeId x = 1; x < n_; ++x) {
    NodeDuty& duty = duty_[x];
    if (duty.targets.empty()) continue;
    const auto& blocks = stripe_blocks_[duty.stripe];
    while (duty.block_idx < blocks.size()) {
      if (duty.target_idx >= duty.targets.size()) {
        duty.target_idx = 0;
        ++duty.block_idx;
        continue;
      }
      const BlockId b = blocks[duty.block_idx];
      if (!state.has(x, b)) break;  // stall until it arrives
      const NodeId target = duty.targets[duty.target_idx];
      ++duty.target_idx;
      if (state.has(target, b)) continue;  // skip without spending the tick
      out.push_back({x, target, b});
      break;
    }
  }
}

}  // namespace pob
