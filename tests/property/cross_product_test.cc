// Broad cross-product sweep: every randomized algorithm configuration
// (overlay family x block policy x download capacity) must complete within
// the generous envelope and never beat Theorem 1 — dozens of engine-validated
// end-to-end runs per build.

#include <gtest/gtest.h>

#include <memory>

#include "pob/analysis/bounds.h"
#include "pob/core/engine.h"
#include "pob/overlay/builders.h"
#include "pob/rand/randomized.h"
#include "pob/rand/tit_for_tat.h"

namespace pob {
namespace {

enum class OverlayKind { kComplete, kRegular8, kRegular16, kHypercube };

const char* name_of(OverlayKind o) {
  switch (o) {
    case OverlayKind::kComplete:
      return "complete";
    case OverlayKind::kRegular8:
      return "regular8";
    case OverlayKind::kRegular16:
      return "regular16";
    case OverlayKind::kHypercube:
      return "hypercube";
  }
  return "?";
}

std::shared_ptr<const Overlay> build(OverlayKind o, std::uint32_t n, Rng& rng) {
  switch (o) {
    case OverlayKind::kComplete:
      return std::make_shared<CompleteOverlay>(n);
    case OverlayKind::kRegular8:
      return std::make_shared<GraphOverlay>(make_random_regular(n, 8, rng));
    case OverlayKind::kRegular16:
      return std::make_shared<GraphOverlay>(make_random_regular(n, 16, rng));
    case OverlayKind::kHypercube:
      return std::make_shared<GraphOverlay>(make_hypercube_overlay(n));
  }
  return nullptr;
}

class RandomizedCrossProduct
    : public ::testing::TestWithParam<
          std::tuple<OverlayKind, BlockPolicy, std::uint32_t>> {};

TEST_P(RandomizedCrossProduct, CompletesWithinEnvelope) {
  const auto [overlay_kind, policy, download] = GetParam();
  const std::uint32_t n = 80, k = 60;
  Rng graph_rng(0xCB07 + static_cast<std::uint64_t>(overlay_kind) * 131 +
                static_cast<std::uint64_t>(policy) * 17 + download);
  RandomizedOptions opt;
  opt.policy = policy;
  opt.download_capacity = download;
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  cfg.download_capacity = download;
  RandomizedScheduler sched(build(overlay_kind, n, graph_rng), opt,
                            Rng(0xCB08 + download));
  const RunResult r = run(cfg, sched);
  ASSERT_TRUE(r.completed) << name_of(overlay_kind) << "/" << to_string(policy)
                           << "/d=" << download;
  EXPECT_GE(r.completion_tick, cooperative_lower_bound(n, k));
  EXPECT_LE(r.completion_tick, 4 * cooperative_lower_bound(n, k) + 40)
      << name_of(overlay_kind) << "/" << to_string(policy) << "/d=" << download;
  // Invariant: no wasted deliveries in the block model.
  EXPECT_EQ(r.total_transfers, static_cast<std::uint64_t>(n - 1) * k);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomizedCrossProduct,
    ::testing::Combine(::testing::Values(OverlayKind::kComplete, OverlayKind::kRegular8,
                                         OverlayKind::kRegular16,
                                         OverlayKind::kHypercube),
                       ::testing::Values(BlockPolicy::kRandom,
                                         BlockPolicy::kRarestFirst),
                       ::testing::Values(1u, 2u, kUnlimited)));

class TitForTatCrossProduct
    : public ::testing::TestWithParam<std::tuple<OverlayKind, std::uint32_t>> {};

TEST_P(TitForTatCrossProduct, CompletesWithinEnvelope) {
  const auto [overlay_kind, rechoke] = GetParam();
  const std::uint32_t n = 64, k = 48;
  Rng graph_rng(0xCB09 + static_cast<std::uint64_t>(overlay_kind) * 13 + rechoke);
  TitForTatOptions opt;
  opt.rechoke_period = rechoke;
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  cfg.max_ticks = 40 * cooperative_lower_bound(n, k);
  TitForTatScheduler sched(build(overlay_kind, n, graph_rng), opt, Rng(0xCB0A + rechoke));
  const RunResult r = run(cfg, sched);
  ASSERT_TRUE(r.completed) << name_of(overlay_kind) << "/rechoke=" << rechoke;
  EXPECT_EQ(r.total_transfers, static_cast<std::uint64_t>(n - 1) * k);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TitForTatCrossProduct,
    ::testing::Combine(::testing::Values(OverlayKind::kComplete, OverlayKind::kRegular16,
                                         OverlayKind::kHypercube),
                       ::testing::Values(3u, 10u, 25u)));

class BoundsConsistency
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(BoundsConsistency, TheoremOrderings) {
  const auto [n, k] = GetParam();
  // The bound lattice the paper implies, at every grid point.
  EXPECT_LE(cooperative_lower_bound(n, k), pipeline_completion(n, k));
  EXPECT_LE(cooperative_lower_bound(n, k), binomial_tree_completion(n, k));
  EXPECT_LE(strict_barter_lower_bound_ramp(n, k),
            strict_barter_lower_bound_equal_bw(n, k));
  EXPECT_GE(strict_barter_lower_bound_equal_bw(n, k), cooperative_lower_bound(n, k));
  EXPECT_GE(price_of_barter(n, k), 1.0);
  for (const std::uint32_t m : {1u, 2u, 4u}) {
    if (n > m + 1) {
      EXPECT_LE(multi_server_estimate(n, k, m), cooperative_lower_bound(n, k) + 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BoundsConsistency,
    ::testing::Combine(::testing::Values(4u, 7u, 16u, 100u, 1000u, 4096u),
                       ::testing::Values(1u, 2u, 10u, 100u, 10000u)));

}  // namespace
}  // namespace pob
