// §3.2.4's closing experiment: "nodes are constrained in a low-degree
// overlay network, but allowed to change their neighbors periodically."
// This scheduler re-draws a fresh random d-regular overlay every
// `rotation_period` ticks and otherwise behaves exactly like the randomized
// scheduler (optionally credit-limited).
//
// Note the credit ledger intentionally survives rotation: credit is granted
// between *nodes*, and the paper's enforcement sketch (server-designated
// neighbors) would re-designate on rotation while old debts stand.

#pragma once

#include <memory>

#include "pob/core/rng.h"
#include "pob/rand/randomized.h"

namespace pob {

class RotatingRandomizedScheduler final : public Scheduler {
 public:
  RotatingRandomizedScheduler(std::uint32_t num_nodes, std::uint32_t degree,
                              Tick rotation_period, RandomizedOptions options, Rng rng,
                              const Mechanism* precheck = nullptr);

  std::string_view name() const override { return "randomized-rotating"; }
  void plan_tick(Tick tick, const SwarmState& state, std::vector<Transfer>& out) override;

 private:
  std::uint32_t num_nodes_;
  std::uint32_t degree_;
  Tick rotation_period_;
  Rng graph_rng_;
  std::unique_ptr<RandomizedScheduler> inner_;
};

}  // namespace pob
