// Closed-form completion times and lower bounds from the paper (§2.2, §3.1,
// §3.2), used by tests to pin measured schedules to theory and by benches to
// report "paper vs measured".

#pragma once

#include <cstdint>

#include "pob/core/types.h"

namespace pob {

/// Theorem 1: any cooperative algorithm needs >= k - 1 + ceil(log2 n) ticks
/// to deliver k blocks to n - 1 clients (n nodes counting the server).
Tick cooperative_lower_bound(std::uint32_t num_nodes, std::uint32_t num_blocks);

/// §2.2.1: the pipeline completes in exactly k + n - 2 ticks.
Tick pipeline_completion(std::uint32_t num_nodes, std::uint32_t num_blocks);

/// §2.2.3: sending one block at a time through binomial trees completes in
/// k * ceil(log2 n) ticks.
Tick binomial_tree_completion(std::uint32_t num_nodes, std::uint32_t num_blocks);

/// §2.2.2's estimate for the d-ary multicast tree,
/// d * (k + ceil(log_d(n)) - 1) — an upper-bound-flavored approximation; the
/// simulated schedule may finish slightly earlier for ragged trees.
Tick multicast_tree_estimate(std::uint32_t num_nodes, std::uint32_t num_blocks,
                             std::uint32_t arity);

/// Theorem 2, d = u case: strict barter needs >= n + k - 2 ticks.
Tick strict_barter_lower_bound_equal_bw(std::uint32_t num_nodes, std::uint32_t num_blocks);

/// Theorem 2, d >= 2u case: the capability ramp. Clients can only start
/// bartering after the server seeds them (at most one new client per tick),
/// and barter moves blocks in pairs, so uploads at tick t are at most
/// 1 + 2*floor(min(t - 1, n - 1) / 2). The bound is the smallest T whose
/// cumulative upload budget covers the (n - 1) * k blocks clients must
/// receive.
Tick strict_barter_lower_bound_ramp(std::uint32_t num_nodes, std::uint32_t num_blocks);

/// The "price of barter": strict-barter lower bound over cooperative lower
/// bound, the paper's headline efficiency-loss ratio.
double price_of_barter(std::uint32_t num_nodes, std::uint32_t num_blocks);

/// §2.3.4 multi-server: with server bandwidth m*u and clients split into m
/// groups, the per-group optimum is k - 1 + ceil(log2(group + 1)).
Tick multi_server_estimate(std::uint32_t num_nodes, std::uint32_t num_blocks,
                           std::uint32_t num_virtual_servers);

}  // namespace pob
