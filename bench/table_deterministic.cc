// E1 + E11 — §2.2 deterministic baselines vs Theorem 1.
//
// For each (n, k): simulated completion time of the pipeline, the d-ary
// multicast trees (d = 2, 3), the block-at-a-time binomial tree, and the
// binomial pipeline, against the cooperative lower bound k - 1 + ceil(log2 n).
// The binomial pipeline column must equal the bound exactly (the paper's
// central §2.3 result); the final column reports the completion-time spread
// of the binomial pipeline (0 when k >= log2 n, §2.3.4).

#include <iostream>

#include "bench_util.h"
#include "pob/analysis/bounds.h"
#include "pob/core/metrics.h"
#include "pob/sched/binomial_pipeline.h"
#include "pob/sched/binomial_tree.h"
#include "pob/sched/multicast_tree.h"
#include "pob/sched/pipeline.h"

namespace pob::bench {
namespace {

Tick measure(Scheduler& sched, std::uint32_t n, std::uint32_t k) {
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  cfg.download_capacity = 1;
  const RunResult r = run(cfg, sched);
  if (!r.completed) throw std::logic_error("deterministic schedule did not complete");
  return r.completion_tick;
}

int main_impl(int argc, char** argv) {
  const Args args(argc, argv);
  std::vector<std::int64_t> ns = args.get_int_list("n", {8, 16, 64, 256, 100, 1000});
  std::vector<std::int64_t> ks = args.get_int_list("k", {1, 16, 128, 1024});

  Table table({"n", "k", "lower-bound", "binom-pipeline", "pipeline", "tree-d2",
               "tree-d3", "binom-tree", "bp-spread"});
  for (const std::int64_t n64 : ns) {
    for (const std::int64_t k64 : ks) {
      const auto n = static_cast<std::uint32_t>(n64);
      const auto k = static_cast<std::uint32_t>(k64);

      BinomialPipelineScheduler bp(n, k);
      PipelineScheduler pipe(n, k);
      MulticastTreeScheduler tree2(n, k, 2);
      MulticastTreeScheduler tree3(n, k, 3);
      BinomialTreeScheduler btree(n, k);

      EngineConfig cfg;
      cfg.num_nodes = n;
      cfg.num_blocks = k;
      cfg.download_capacity = 1;
      const RunResult bp_run = run(cfg, bp);
      const CompletionSpread spread = completion_spread(bp_run);

      table.add_row({std::to_string(n), std::to_string(k),
                     std::to_string(cooperative_lower_bound(n, k)),
                     std::to_string(bp_run.completion_tick),
                     std::to_string(measure(pipe, n, k)),
                     std::to_string(measure(tree2, n, k)),
                     std::to_string(measure(tree3, n, k)),
                     std::to_string(measure(btree, n, k)),
                     std::to_string(spread.spread)});
    }
  }
  std::cout << "# E1/E11: deterministic algorithms vs Theorem 1 (ticks; u = d = 1)\n";
  emit(args, table);
  return 0;
}

}  // namespace
}  // namespace pob::bench

int main(int argc, char** argv) { return pob::bench::main_impl(argc, argv); }
