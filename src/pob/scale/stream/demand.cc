#include "pob/scale/stream/demand.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pob::scale::stream {

DemandTracker::DemandTracker(const StreamDemand& demand, std::uint32_t num_nodes,
                             std::uint32_t num_blocks, std::span<const Tick> arrival)
    : demand_(demand),
      n_(num_nodes),
      k_(num_blocks),
      startup_(std::clamp<std::uint32_t>(demand.startup_blocks, 1, num_blocks)),
      stride_((num_blocks + 63) / 64) {
  if (n_ < 2) throw std::invalid_argument("demand tracker: num_nodes < 2");
  if (demand_.interval < 1) throw std::invalid_argument("demand tracker: interval < 1");
  have_.assign(std::size_t{n_} * stride_, 0);
  next_block_.assign(n_, 0);
  arrival_.assign(arrival.begin(), arrival.end());
  if (arrival_.empty()) arrival_.assign(n_, 0);
  if (arrival_.size() != n_) {
    throw std::invalid_argument("demand tracker: arrival size mismatch");
  }
  start_.assign(n_, kNever);
  next_play_.assign(n_, 0);
  next_due_.assign(n_, 0);
  rebuffer_.assign(n_, 0);
  dl_block_.assign(n_, kNoBlock);
  // The server "starts" trivially and never rebuffers; excluding it here
  // keeps every per-client loop below a plain 1..n-1 scan.
  start_[kServer] = 0;
  next_block_[kServer] = k_;
  next_play_[kServer] = k_;
}

void DemandTracker::begin_playback(NodeId c, Tick t) {
  start_[c] = t;
  next_play_[c] = startup_;
  next_due_[c] = t + demand_.interval;
  if (demand_.deadlines && startup_ < k_) {
    dl_block_[c] = startup_;
    deadlines_.push({t + demand_.interval + demand_.deadline_slack, c,
                     EventKind::kDeadline, 0, 0, startup_});
  }
}

void DemandTracker::consume_prefix(NodeId c, Tick t) {
  // Every block the prefix just crossed became playable at tick t. A block
  // already buffered ahead of its due tick plays on schedule; a late block
  // stalls the playhead from its due tick until t.
  while (next_play_[c] < next_block_[c] && next_play_[c] < k_) {
    Tick play = next_due_[c];
    if (t > next_due_[c]) {
      rebuffer_[c] += t - next_due_[c];
      play = t;
    }
    next_due_[c] = play + demand_.interval;
    ++next_play_[c];
  }
}

void DemandTracker::credit_remaining_deadlines(NodeId c) {
  // The client holds every block, so each not-yet-evaluated deadline is met
  // for certain; count them now and retire the timer (a stale fire is
  // ignored because dl_block_ no longer matches).
  if (dl_block_[c] != kNoBlock) {
    deadline_checks_ += k_ - dl_block_[c];
    dl_block_[c] = kNoBlock;
  }
}

void DemandTracker::on_delivery(NodeId to, BlockId block, Tick t) {
  std::uint64_t& word = have_[std::size_t{to} * stride_ + block / 64];
  const std::uint64_t bit = std::uint64_t{1} << (block % 64);
  if ((word & bit) != 0) return;  // duplicate (server pre-seed etc.)
  word |= bit;
  if (block != next_block_[to]) return;  // prefix unchanged
  // Advance the contiguous prefix across any blocks buffered out of order.
  const std::uint64_t* row = have_.data() + std::size_t{to} * stride_;
  std::uint32_t p = next_block_[to];
  while (p < k_ && (row[p / 64] >> (p % 64) & 1) != 0) ++p;
  next_block_[to] = p;
  if (to == kServer) return;
  if (start_[to] == kNever) {
    if (p >= startup_) begin_playback(to, t);
  }
  if (start_[to] != kNever) consume_prefix(to, t);
  if (p == k_ && demand_.deadlines) credit_remaining_deadlines(to);
}

void DemandTracker::end_tick(Tick t) {
  if (!demand_.deadlines) return;
  for (const StreamEvent& ev : deadlines_.collect(t)) {
    const NodeId c = ev.node;
    if (dl_block_[c] != ev.block) continue;  // stale: client completed
    ++deadline_checks_;
    if (next_block_[c] <= ev.block) ++deadline_misses_;
    const BlockId next = ev.block + 1;
    if (next < k_) {
      dl_block_[c] = next;
      deadlines_.push({t + demand_.interval, c, EventKind::kDeadline, 0, 0, next});
    } else {
      dl_block_[c] = kNoBlock;
    }
  }
}

void DemandTracker::finalize(Tick last_tick, RunResult& result) {
  result.startup_latency.assign(n_ - 1, 0.0);
  result.rebuffer_ticks.assign(n_ - 1, 0);
  result.never_started = 0;
  result.rebuffered_clients = 0;
  for (NodeId c = 1; c < n_; ++c) {
    if (start_[c] == kNever) {
      // Censored, PR-1 convention: the run ended before playback began.
      result.startup_latency[c - 1] = std::numeric_limits<double>::quiet_NaN();
      ++result.never_started;
    } else {
      result.startup_latency[c - 1] =
          static_cast<double>(start_[c]) - static_cast<double>(arrival_[c]);
      // Tail stall: playback has been waiting on the next block since its
      // due tick, and the run ended at last_tick without delivering it.
      if (next_play_[c] < k_ && next_due_[c] < last_tick) {
        rebuffer_[c] += last_tick - next_due_[c];
      }
    }
    result.rebuffer_ticks[c - 1] = rebuffer_[c];
    if (rebuffer_[c] > 0) ++result.rebuffered_clients;
  }
  result.deadline_misses = deadline_misses_;
  result.deadline_checks = deadline_checks_;
}

std::uint64_t DemandTracker::memory_bytes() const {
  std::uint64_t bytes = have_.capacity() * sizeof(std::uint64_t);
  bytes += next_block_.capacity() * sizeof(std::uint32_t);
  bytes += arrival_.capacity() * sizeof(Tick);
  bytes += start_.capacity() * sizeof(Tick);
  bytes += next_play_.capacity() * sizeof(std::uint32_t);
  bytes += next_due_.capacity() * sizeof(Tick);
  bytes += rebuffer_.capacity() * sizeof(Count);
  bytes += dl_block_.capacity() * sizeof(BlockId);
  bytes += deadlines_.memory_bytes();
  return bytes;
}

}  // namespace pob::scale::stream
