#include "pob/scale/engine.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>

#include "pob/scale/sched_binomial.h"
#include "pob/scale/sched_randomized.h"
#include "pob/scale/sched_riffle.h"

#if defined(__AVX2__)
#include <immintrin.h>
#elif defined(__ARM_NEON) && defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace pob::scale {

namespace {

// splitmix64 finalizer; good avalanche for open-addressed probing.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t delivery_key(NodeId to, BlockId block) {
  return (static_cast<std::uint64_t>(to) << 32) | block;
}

std::uint64_t probe_key(NodeId u, NodeId v) {
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

// Runs body(s) for s in [0, count): on the pool when it has real workers,
// inline otherwise. Every caller's body writes only shard-owned state, so
// the two paths are observationally identical — jobs=1 runs the exact same
// sharded algorithm, just serially.
void for_shards(ThreadPool* pool, std::uint32_t count,
                const std::function<void(std::uint32_t)>& body) {
  if (pool != nullptr && pool->jobs() > 1 && count > 1) {
    pool->parallel_for(count, body);
  } else {
    for (std::uint32_t s = 0; s < count; ++s) body(s);
  }
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

// Ticks with at most this many intents take the serial merge/commit fast
// path (see Engine::sparse_tick_). The threshold compares against the tick's
// intent total — a pure function of the intent stream — so the path taken is
// identical at any job count. 2048 intents is far below where the sharded
// scaffolding starts paying for itself.
constexpr std::uint32_t kSparseTickIntents = 2048;

#if defined(__AVX2__)
constexpr const char* kAutoKernelName = "avx2";
#elif defined(__ARM_NEON) && defined(__aarch64__)
constexpr const char* kAutoKernelName = "neon";
#else
constexpr const char* kAutoKernelName = "unrolled";
#endif

}  // namespace

const char* scan_kernel_name(ScanKernel kernel) {
  return kernel == ScanKernel::kScalar ? "scalar" : kAutoKernelName;
}

// --- PairTable -----------------------------------------------------------

void Engine::PairTable::begin_tick(std::size_t expected) {
  std::size_t want = 16;
  while (want < expected * 2) want <<= 1;  // load factor <= 0.5
  if (slots_.size() < want) {
    slots_.assign(want, Slot{0, 0});
    mask_ = want - 1;
    epoch_ = 0;
  }
  if (++epoch_ == 0) {  // epoch wrapped: stale stamps would alias
    for (Slot& s : slots_) s.epoch = 0;
    epoch_ = 1;
  }
}

bool Engine::PairTable::insert(std::uint64_t key) {
  auto i = static_cast<std::size_t>(hash(key) & mask_);
  while (slots_[i].epoch == epoch_) {
    if (slots_[i].key == key) return false;
    i = (i + 1) & static_cast<std::size_t>(mask_);
  }
  slots_[i] = Slot{key, epoch_};
  return true;
}

// --- ProbeCache ----------------------------------------------------------

void Engine::ProbeCache::configure(std::uint32_t shard_width) {
  std::size_t want = 16;
  const std::size_t target = static_cast<std::size_t>(shard_width) * 2;
  while (want < target) want <<= 1;
  keys_.assign(want, ~0ULL);  // real keys have u < kNoNode, never ~0
  ver_from_.assign(want, 0);
  ver_to_.assign(want, 0);
  mask_ = want - 1;
}

bool Engine::ProbeCache::is_useless(NodeId u, NodeId v, std::uint32_t ver_u,
                                    std::uint32_t ver_v) const {
  const std::uint64_t key = probe_key(u, v);
  const auto i = static_cast<std::size_t>(mix64(key) & mask_);
  // Exact or nothing: the key AND both possession versions must match, so a
  // hit replays a verdict computed from these precise rows. A collision or
  // a stale version is simply a miss and the caller rescans — the cache can
  // never change which intents are emitted, only how fast failure is found.
  return keys_[i] == key && ver_from_[i] == ver_u && ver_to_[i] == ver_v;
}

void Engine::ProbeCache::note_useless(NodeId u, NodeId v, std::uint32_t ver_u,
                                      std::uint32_t ver_v) {
  const std::uint64_t key = probe_key(u, v);
  const auto i = static_cast<std::size_t>(mix64(key) & mask_);
  keys_[i] = key;  // direct-mapped: collisions overwrite
  ver_from_[i] = ver_u;
  ver_to_[i] = ver_v;
}

// --- Engine --------------------------------------------------------------

Engine::Engine(const EngineConfig& config, std::shared_ptr<const Topology> topology,
               ScaleOptions options, std::uint64_t seed)
    : cfg_(config), topo_(std::move(topology)), opt_(options), seed_(seed) {
  // Same validation, same exception types, same order as core's
  // run_with_state — a config that one engine rejects must not silently run
  // on the other.
  if (cfg_.num_nodes < 2) throw std::invalid_argument("scale: num_nodes < 2");
  if (cfg_.num_blocks < 1) throw std::invalid_argument("scale: num_blocks < 1");
  if (cfg_.upload_capacity < 1) throw std::invalid_argument("scale: upload_capacity < 1");
  if (cfg_.download_capacity < 1) throw std::invalid_argument("scale: download_capacity < 1");
  if (topo_ == nullptr || topo_->num_nodes() != cfg_.num_nodes) {
    throw std::invalid_argument("scale: topology does not match num_nodes");
  }
  if (opt_.max_probes < 1) throw std::invalid_argument("scale: max_probes < 1");
  if (opt_.shard_nodes < 1) throw std::invalid_argument("scale: shard_nodes < 1");

  const std::uint32_t n = cfg_.num_nodes;
  if (!cfg_.upload_capacities.empty() && cfg_.upload_capacities.size() != n) {
    throw EngineViolation("config: upload_capacities has " +
                          std::to_string(cfg_.upload_capacities.size()) +
                          " entries for " + std::to_string(n) + " nodes");
  }
  if (!cfg_.download_capacities.empty() && cfg_.download_capacities.size() != n) {
    throw EngineViolation("config: download_capacities has " +
                          std::to_string(cfg_.download_capacities.size()) +
                          " entries for " + std::to_string(n) + " nodes");
  }
  for (const auto& [dep_tick, dep_node] : cfg_.departures) {
    (void)dep_tick;
    if (dep_node == kServer) {
      throw EngineViolation("config: departure names the server (node 0)");
    }
    if (dep_node >= n) {
      throw EngineViolation("config: departure names out-of-range node " +
                            std::to_string(dep_node) + " (num_nodes " +
                            std::to_string(n) + ")");
    }
  }

  n_ = n;
  k_ = cfg_.num_blocks;
  stride_ = (k_ + 63) / 64;
  sum_stride_ = (stride_ + 63) / 64;
  tail_mask_ = (k_ & 63) != 0 ? (1ULL << (k_ & 63)) - 1 : ~0ULL;

  const std::uint32_t server_up = cfg_.server_upload_capacity != 0
                                      ? cfg_.server_upload_capacity
                                      : cfg_.upload_capacity;
  up_caps_.resize(n_);
  down_caps_.resize(n_);
  for (NodeId u = 0; u < n_; ++u) {
    up_caps_[u] = !cfg_.upload_capacities.empty()
                      ? cfg_.upload_capacities[u]
                      : (u == kServer ? server_up : cfg_.upload_capacity);
    down_caps_[u] = !cfg_.download_capacities.empty() ? cfg_.download_capacities[u]
                                                      : cfg_.download_capacity;
  }
  for (NodeId c = 1; c < n_; ++c) {
    if (down_caps_[c] < up_caps_[c]) {
      throw EngineViolation("config: client " + std::to_string(c) +
                            " has download capacity " + std::to_string(down_caps_[c]) +
                            " < upload capacity " + std::to_string(up_caps_[c]) +
                            " (the model requires d >= u)");
    }
  }
  down_caps_unlimited_ = std::all_of(
      down_caps_.begin(), down_caps_.end(),
      [](std::uint32_t c) { return c == kUnlimited; });

  // Deterministic schedulers run fixed closed-form schedules; a config the
  // schedule was not derived for must be rejected loudly (distinct message
  // per rule), never silently produce garbage intents.
  if (opt_.scheduler != SchedKind::kRandomized) {
    const char* sname = sched_kind_name(opt_.scheduler);
    if (opt_.stream_window != 0) {
      throw EngineViolation(std::string("scale: ") + sname +
                            " emits a fixed schedule; sequential stream "
                            "demand (stream_window) is randomized-only");
    }
    if (!std::has_single_bit(n)) {
      throw EngineViolation(std::string("scale: ") + sname +
                            " requires power-of-two num_nodes (got " +
                            std::to_string(n) + ")");
    }
    if (!cfg_.upload_capacities.empty() || !cfg_.download_capacities.empty()) {
      throw EngineViolation(std::string("scale: ") + sname +
                            " requires uniform capacities (per-node capacity "
                            "vectors are not supported)");
    }
    if (cfg_.upload_capacity != 1 || server_up > 1) {
      throw EngineViolation(std::string("scale: ") + sname +
                            " requires unit upload capacity (upload_capacity "
                            "1, server_upload_capacity <= 1)");
    }
    if (!cfg_.departures.empty() || cfg_.depart_on_complete) {
      throw EngineViolation(std::string("scale: ") + sname +
                            " does not support churn (departures / "
                            "depart_on_complete)");
    }
    if (opt_.scheduler == SchedKind::kRifflePipeline) {
      if (!topo_->is_complete()) {
        throw EngineViolation(
            "scale: riffle-pipeline requires the complete topology");
      }
      if (cfg_.download_capacity < 2) {
        throw EngineViolation(
            "scale: riffle-pipeline requires download capacity >= 2 (a "
            "server hand-off may land on a bartering client)");
      }
      if (opt_.credit_limit != 0) {
        throw EngineViolation(
            "scale: riffle-pipeline is strict barter; credit_limit must be 0");
      }
    } else {
      // Binomial pipeline / triangular barter: every hypercube edge must be
      // present in the overlay (the complete graph trivially qualifies).
      if (!topo_->is_complete()) {
        const std::uint32_t dims = static_cast<std::uint32_t>(std::countr_zero(n));
        const auto has_edge = [&](NodeId u, NodeId v) {
          std::uint32_t lo = 0;
          std::uint32_t hi = topo_->degree(u);
          while (lo < hi) {  // neighbor lists are ascending (topology.h)
            const std::uint32_t mid = lo + (hi - lo) / 2;
            const NodeId w = topo_->neighbor(u, mid);
            if (w < v) {
              lo = mid + 1;
            } else if (w > v) {
              hi = mid;
            } else {
              return true;
            }
          }
          return false;
        };
        for (NodeId u = 0; u < n; ++u) {
          for (std::uint32_t d = 0; d < dims; ++d) {
            const NodeId v = u ^ (NodeId{1} << d);
            if (!has_edge(u, v)) {
              throw EngineViolation(std::string("scale: ") + sname +
                                    " requires the hypercube overlay: missing "
                                    "edge " +
                                    std::to_string(u) + " <-> " +
                                    std::to_string(v));
            }
          }
        }
      }
      if (opt_.scheduler == SchedKind::kBinomialPipeline && opt_.credit_limit != 0) {
        throw EngineViolation(
            "scale: binomial-pipeline is cooperative; credit_limit must be 0");
      }
      if (opt_.scheduler == SchedKind::kTriangularBarter && opt_.credit_limit < 1) {
        throw EngineViolation(
            "scale: triangular-barter requires credit_limit >= 1");
      }
    }
  }

  // Every per-probe random access lands in one of the arrays below. The
  // big uint64 arenas go through huge_alloc (hugemem.h): explicit 2 MiB
  // hugetlb pages when the kernel pool has room, a THP hint otherwise.
  // Beyond plain TLB relief this is what makes the generate phase's
  // batched prefetch real — software prefetches that miss the TLB are
  // dropped on common cores, so with 4 KiB pages most row prefetches into
  // a 64 MiB arena would silently do nothing.
  //
  // Over-allocate the arena by one cache line and align the row base to 64
  // bytes: a k = 512 row is then exactly one line instead of straddling
  // two, which halves the misses of every random row access. (mmap-backed
  // buffers are page-aligned already; the slack also covers the heap
  // fallback path.)
  bits_.reset(static_cast<std::size_t>(n_) * stride_ + 8);
  {
    auto addr = reinterpret_cast<std::uintptr_t>(bits_.data());
    const std::uintptr_t aligned = (addr + 63) & ~std::uintptr_t{63};
    rows_ = bits_.data() + (aligned - addr) / sizeof(std::uint64_t);
  }
  summary_has_.reset(static_cast<std::size_t>(n_) * sum_stride_);
  summary_missing_.reset(static_cast<std::size_t>(n_) * sum_stride_);
  sated_ver_.assign(n_, 0);
  count_.reset(n_);
  completion_.assign(n_, 0);
  active_.reset(n_);
  std::memset(active_.data(), 1, n_);
  freq_.assign(k_, 1);  // the server's copy of every block
  uploads_per_node_.assign(n_, 0);
  down_used_.assign(n_, 0);
  down_stamp_.assign(n_, 0);

  // Seed the server with the whole file (tail bits of the last word stay 0 —
  // the planner's word-wise diffs rely on that invariant for every row).
  std::uint64_t* server = row(kServer);
  for (std::uint32_t w = 0; w < stride_; ++w) server[w] = word_full_mask(w);
  count_[kServer] = k_;
  num_incomplete_ = n_ - 1;

  // Summaries: the server HAS every chunk and MISSES none; clients have
  // nothing and miss every chunk. The chunk-index pattern (bits [0, stride_)
  // across sum_stride_ words) is tail-masked the same way possession words
  // are, so summary bits beyond the last real chunk stay 0 forever.
  for (std::uint32_t g = 0; g < sum_stride_; ++g) {
    const bool last_partial = (g + 1 == sum_stride_) && (stride_ & 63) != 0;
    const std::uint64_t pattern = last_partial ? (1ULL << (stride_ & 63)) - 1 : ~0ULL;
    summary_has_[static_cast<std::size_t>(kServer) * sum_stride_ + g] = pattern;
    for (NodeId c = 1; c < n_; ++c) {
      summary_missing_[static_cast<std::size_t>(c) * sum_stride_ + g] = pattern;
    }
  }

  for (NodeId u = 0; u < n_; ++u) active_slots_ += up_caps_[u];

  const std::uint32_t shards = (n_ + opt_.shard_nodes - 1) / opt_.shard_nodes;
  shard_intents_.resize(shards);
  switch (opt_.scheduler) {
    case SchedKind::kRandomized:
      sched_ = std::make_unique<RandomizedScheduler>(*this, shards);
      break;
    case SchedKind::kBinomialPipeline:
      sched_ = std::make_unique<BinomialScheduler>(*this, /*triangular=*/false);
      break;
    case SchedKind::kTriangularBarter:
      sched_ = std::make_unique<BinomialScheduler>(*this, /*triangular=*/true);
      break;
    case SchedKind::kRifflePipeline:
      sched_ = std::make_unique<RiffleScheduler>(*this);
      break;
  }

  // Receiver shards: enough for the pool to balance (the E22 swarm gets ~64)
  // but never so many that tiny fuzz swarms pay bucketing overhead for a
  // handful of intents. The width rounds up to a power of two so the merge
  // buckets by shift — the division was ~3 per intent per tick. A pure
  // function of n — job counts must not be able to move shard boundaries —
  // and results cannot depend on it anyway: admission is per-receiver and
  // every receiver lives wholly inside one shard.
  const std::uint32_t want = std::clamp(n_ / 1024u, 1u, 64u);
  recv_width_ = std::bit_ceil((n_ + want - 1) / want);
  recv_shift_ = static_cast<std::uint32_t>(std::countr_zero(recv_width_));
  recv_shards_ = (n_ + recv_width_ - 1) / recv_width_;
  delivered_.resize(recv_shards_);
  bucket_offsets_.assign(recv_shards_ + 1, 0);
  intent_offsets_.assign(shards + 1, 0);
  emit_offsets_.assign(shards + 1, 0);
  scatter_pos_.assign(static_cast<std::size_t>(shards) * recv_shards_, 0);
  freq_scratch_.configure(recv_shards_, k_);
  leaving_shards_.resize(recv_shards_);
  completions_scratch_.assign(recv_shards_, 0);

  departures_ = cfg_.departures;
  std::sort(departures_.begin(), departures_.end());
}

BlockId Engine::top_block(NodeId node) const {
  const std::uint64_t* hs = summary_has_row(node);
  for (std::uint32_t g = sum_stride_; g-- > 0;) {
    const std::uint64_t sword = hs[g];
    if (sword == 0) continue;
    const std::uint32_t w =
        (g << 6) + 63 - static_cast<std::uint32_t>(std::countl_zero(sword));
    const std::uint64_t pword = row(node)[w];
    return static_cast<BlockId>(
        (w << 6) + 63 - static_cast<std::uint32_t>(std::countl_zero(pword)));
  }
  return kNoBlock;
}

bool Engine::summary_overlap(NodeId u, NodeId v) const {
  const std::uint64_t* hu = summary_has_row(u);
  const std::uint64_t* mv = summary_missing_row(v);
  for (std::uint32_t g = 0; g < sum_stride_; ++g) {
    if ((hu[g] & mv[g]) != 0) return true;
  }
  return false;
}

bool Engine::scan_pair(NodeId u, NodeId v, DiffScan& scan, bool guided) const {
  const std::uint64_t* su = row(u);
  const std::uint64_t* sv = row(v);
  std::uint32_t entries = 0;
  std::uint32_t total = 0;
  const auto record = [&](std::uint32_t w, std::uint64_t d) {
    scan.widx[entries] = w;
    scan.words[entries] = d;
    const auto c = static_cast<std::uint32_t>(std::popcount(d));
    scan.pc[entries] = c;
    ++entries;
    total += c;
  };

  // Dense linear sweep, widest compiled-in vector path. Each quad (or
  // pair) is tested for any useful bit at once; only quads that hit pay
  // for per-word recording.
  const auto linear_sweep = [&] {
    std::uint32_t w = 0;
#if defined(__AVX2__)
    for (; w + 4 <= stride_; w += 4) {
      const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(su + w));
      const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sv + w));
      const __m256i d = _mm256_andnot_si256(b, a);  // a & ~b
      if (_mm256_testz_si256(d, d) != 0) continue;
      alignas(32) std::uint64_t lane[4];
      _mm256_store_si256(reinterpret_cast<__m256i*>(lane), d);
      for (std::uint32_t j = 0; j < 4; ++j) {
        if (lane[j] != 0) record(w + j, lane[j]);
      }
    }
#elif defined(__ARM_NEON) && defined(__aarch64__)
    for (; w + 2 <= stride_; w += 2) {
      const uint64x2_t a = vld1q_u64(su + w);
      const uint64x2_t b = vld1q_u64(sv + w);
      const uint64x2_t d = vbicq_u64(a, b);  // a & ~b
      if (vmaxvq_u32(vreinterpretq_u32_u64(d)) == 0) continue;
      const std::uint64_t d0 = vgetq_lane_u64(d, 0);
      const std::uint64_t d1 = vgetq_lane_u64(d, 1);
      if (d0 != 0) record(w, d0);
      if (d1 != 0) record(w + 1, d1);
    }
#else
    for (; w + 4 <= stride_; w += 4) {
      const std::uint64_t d0 = su[w] & ~sv[w];
      const std::uint64_t d1 = su[w + 1] & ~sv[w + 1];
      const std::uint64_t d2 = su[w + 2] & ~sv[w + 2];
      const std::uint64_t d3 = su[w + 3] & ~sv[w + 3];
      if ((d0 | d1 | d2 | d3) == 0) continue;
      if (d0 != 0) record(w, d0);
      if (d1 != 0) record(w + 1, d1);
      if (d2 != 0) record(w + 2, d2);
      if (d3 != 0) record(w + 3, d3);
    }
#endif
    for (; w < stride_; ++w) {
      const std::uint64_t d = su[w] & ~sv[w];
      if (d != 0) record(w, d);
    }
  };

  if (opt_.scan_kernel == ScanKernel::kScalar) {
    // Reference kernel: the historical one-word-at-a-time sweep. Every
    // other path below must record the identical entry sequence.
    for (std::uint32_t w = 0; w < stride_; ++w) {
      const std::uint64_t d = su[w] & ~sv[w];
      if (d != 0) record(w, d);
    }
  } else if (guided) {
    // The caller already paid for the summary rows, so use them: chunk
    // candidates are words where u holds something AND v still misses
    // something. (Tail bits of both rows are 0, so a "full" sv word kills
    // the whole word even though ~sv has garbage above the tail mask.)
    std::uint32_t cand = 0;
    const std::uint64_t* hu = summary_has_row(u);
    const std::uint64_t* mv = summary_missing_row(v);
    for (std::uint32_t g = 0; g < sum_stride_; ++g) {
      cand += static_cast<std::uint32_t>(std::popcount(hu[g] & mv[g]));
    }
    if (cand == 0) {
      scan.entries = 0;
      scan.total = 0;
      return false;
    }
    if (cand * 4 <= stride_) {
      // Sparse guided walk: visit only candidate words, ascending — the
      // endgame shape, where one or two chunks are still in play. The
      // guided/linear choice is a pure function of possession state, and
      // both record the same entries, so it cannot perturb determinism.
      for (std::uint32_t g = 0; g < sum_stride_; ++g) {
        std::uint64_t m = hu[g] & mv[g];
        while (m != 0) {
          const std::uint32_t w =
              (g << 6) + static_cast<std::uint32_t>(std::countr_zero(m));
          m &= m - 1;
          const std::uint64_t d = su[w] & ~sv[w];
          if (d != 0) record(w, d);
        }
      }
    } else {
      linear_sweep();
    }
  } else {
    // Unguided: the caller's expected-diff heuristic said a rejection is
    // unlikely, so go straight at the rows without touching the summaries.
    linear_sweep();
  }
  scan.entries = entries;
  scan.total = total;
  return total != 0;
}

bool Engine::window_admits(NodeId v, const DiffScan& scan) const {
  // Sequential demand: viable only if the lowest deliverable block lies in
  // v's sliding window. Every diff bit is >= first_missing(v) — v holds its
  // whole prefix — so only the scan's first recorded bit matters. The
  // verdict is a pure function of both possession rows (the window bound of
  // v's row, the lowest diff of both), so a failure may be probe-cached
  // under the same (ver_u, ver_v) key as an empty diff.
  const std::uint32_t lowest =
      (scan.widx[0] << 6) + static_cast<std::uint32_t>(std::countr_zero(scan.words[0]));
  return lowest < static_cast<std::uint64_t>(first_missing(v)) + opt_.stream_window;
}

BlockId Engine::pick_from_scan(const DiffScan& scan, Rng& rng) const {
  if (opt_.stream_window != 0) {
    // In-order priority: always the lowest deliverable block, no RNG draw.
    // (The caller verified it is inside the receiver's window.)
    return static_cast<BlockId>(
        (scan.widx[0] << 6) + static_cast<std::uint32_t>(std::countr_zero(scan.words[0])));
  }
  if (opt_.policy == BlockPolicy::kRandom) {
    // Rank-select over the recorded per-word popcounts; one rng draw, as
    // BlockSet::pick_random_useful.
    assert(scan.total != 0);  // caller checked usefulness
    std::uint32_t r = rng.below(scan.total);
    for (std::uint32_t e = 0; e < scan.entries; ++e) {
      const std::uint32_t pc = scan.pc[e];
      if (r < pc) {
        std::uint64_t diff = scan.words[e];
        while (r-- > 0) diff &= diff - 1;
        return static_cast<BlockId>((scan.widx[e] << 6) +
                                    static_cast<std::uint32_t>(std::countr_zero(diff)));
      }
      r -= pc;
    }
    return kNoBlock;  // unreachable
  }
  // Rarest first over the live replica counts, with the same reservoir
  // tie-break idiom (and the same rng draw sequence) as
  // BlockSet::pick_rarest_useful. Entries are recorded in ascending word
  // order by every kernel, so the block visit order — and therefore the
  // reservoir draws — match the historical dense walk exactly.
  BlockId best = kNoBlock;
  std::uint32_t best_freq = 0;
  std::uint32_t ties = 0;
  for (std::uint32_t e = 0; e < scan.entries; ++e) {
    const std::uint32_t base = scan.widx[e] << 6;
    std::uint64_t diff = scan.words[e];
    while (diff != 0) {
      const auto b = static_cast<BlockId>(
          base + static_cast<std::uint32_t>(std::countr_zero(diff)));
      diff &= diff - 1;
      const std::uint32_t f = freq_[b];
      if (best == kNoBlock || f < best_freq) {
        best = b;
        best_freq = f;
        ties = 1;
      } else if (f == best_freq) {
        ++ties;
        if (rng.below(ties) == 0) best = b;
      }
    }
  }
  return best;
}

bool Engine::neighborhood_exhausted(NodeId u, DiffScan& scan, ProbeCache& cache) {
  // Deterministic full sweep, no RNG: is ANY neighbor a viable target right
  // now? Every predicate below is monotone-in-failure while u's version is
  // frozen (see the header), so a true result stays true until u itself
  // receives a block. Failed scans are fed to the probe cache so the sweep
  // also warms future ticks.
  const std::uint32_t deg = topo_->degree(u);
  const bool credit = opt_.credit_limit != 0 && u != kServer;
  const std::uint32_t ver_u = count_[u];
  // The sweep touches every neighbor's metadata, missing-summary and (for
  // survivors) possession row — all random lines. Issue the whole set up
  // front so the per-neighbor chains below overlap instead of serializing;
  // a sweep is only reached after a node's probes all failed, so a little
  // extra traffic for neighbors the ladder rejects is cheap.
  for (std::uint32_t i = 0; i < deg; ++i) {
    const NodeId v = topo_->neighbor(u, i);
    __builtin_prefetch(&count_[v], 0, 1);
    __builtin_prefetch(&active_[v], 0, 1);
    __builtin_prefetch(summary_missing_row(v), 0, 1);
    __builtin_prefetch(row(v), 0, 1);
  }
  for (std::uint32_t i = 0; i < deg; ++i) {
    const NodeId v = topo_->neighbor(u, i);
    if (v == u || v == kServer) continue;
    const std::uint32_t ver_v = count_[v];
    if (active_[v] == 0 || ver_v >= k_) continue;
    if (credit &&
        ledger_.net(u, v) + 1 > static_cast<std::int64_t>(opt_.credit_limit)) {
      continue;
    }
    if (!summary_overlap(u, v)) continue;
    if (cache.is_useless(u, v, ver_u, ver_v)) continue;
    if (scan_pair(u, v, scan, /*guided=*/true)) return false;
    cache.note_useless(u, v, ver_u, ver_v);
  }
  return true;
}

void Engine::generate_node(NodeId u, Rng& rng, NodeId first_probe,
                           std::vector<Transfer>& out, DiffScan& scan,
                           ProbeCache& cache) {
  const std::uint32_t ver_u = count_[u];
  const std::uint32_t slots = up_caps_[u];
  const std::uint32_t deg = topo_->degree(u);
  const std::size_t first_intent = out.size();
  const bool credit = opt_.credit_limit != 0 && u != kServer;

  for (std::uint32_t slot = 0; slot < slots; ++slot) {
    NodeId target = kNoNode;
    for (std::uint32_t probe = 0; probe < opt_.max_probes; ++probe) {
      // The caller consumed the very first below(deg) draw when it peeked
      // the target for prefetching; every later draw comes from the same
      // stream, so the sequence is exactly the historical one.
      const NodeId v = (slot == 0 && probe == 0)
                           ? first_probe
                           : topo_->neighbor(u, rng.below(deg));
      if (v == u || v == kServer) continue;  // nothing flows into the server
      const std::uint32_t ver_v = count_[v];
      if (active_[v] == 0 || ver_v >= k_) continue;
      // At most one upload per (u, v) pair per tick. Together with the
      // pre-tick ledger check below this keeps every admitted stream inside
      // CreditLimited::check_tick: the tick's delta on an ordered pair is in
      // {-1, 0, +1}, and +1 was pre-checked against the limit.
      bool repeat = false;
      for (std::size_t i = first_intent; i < out.size(); ++i) {
        if (out[i].to == v) { repeat = true; break; }
      }
      if (repeat) continue;
      if (credit &&
          ledger_.net(u, v) + 1 > static_cast<std::int64_t>(opt_.credit_limit)) {
        continue;
      }
      // Rejection ladder, none of it consuming RNG. The summary and cache
      // checks only pay off when the diff could plausibly be empty, so they
      // are gated on the expected diff size |su| * (k - |sv|) / k being
      // small; the saturated midgame — where nearly every probe is useful —
      // skips straight to the scan and never touches the summary rows or
      // the cache. Gating cannot change results: both checks are exact
      // rejections, so consulting them less often only costs scans.
      const bool maybe_useless =
          static_cast<std::uint64_t>(ver_u) * (k_ - ver_v) <
          (static_cast<std::uint64_t>(k_) << 3);
      const std::uint32_t window = opt_.stream_window;
      if (maybe_useless) {
        if (!summary_overlap(u, v)) continue;
        if (cache.is_useless(u, v, ver_u, ver_v)) continue;
        if (!scan_pair(u, v, scan, /*guided=*/true) ||
            (window != 0 && !window_admits(v, scan))) {
          // Both rejections are pure functions of the two rows, so both are
          // cacheable under the version-pinned key.
          cache.note_useless(u, v, ver_u, ver_v);
          continue;
        }
      } else if (!scan_pair(u, v, scan, /*guided=*/false) ||
                 (window != 0 && !window_admits(v, scan))) {
        continue;  // a rare dense-pair miss: not worth cache bookkeeping
      }
      target = v;
      break;
    }
    if (target == kNoNode) {
      // Out of luck: idle for the rest of the tick. If no probe found a
      // target AND the whole neighborhood is provably non-viable, stamp the
      // node sated so future ticks skip it outright until it receives a
      // block (the stamp encodes ver+1 so any delivery invalidates it).
      // The stamp is unsound under sequential windows: a RECEIVER's prefix
      // growth slides its window forward over u's held blocks, creating
      // viability without u's version changing — so window mode never
      // stamps (the version-keyed probe cache carries the load instead).
      if (out.size() == first_intent && opt_.stream_window == 0 &&
          neighborhood_exhausted(u, scan, cache)) {
        sated_ver_[u] = ver_u + 1;
      }
      break;
    }
    out.push_back(Transfer{u, target, pick_from_scan(scan, rng)});
  }
}

void Engine::generate_range(std::uint64_t tick_base, NodeId first, NodeId last,
                            std::vector<Transfer>& out, DiffScan& scan,
                            ProbeCache& cache) {
  // Software-pipelined windows. The lead pass does everything that needs
  // no remote state — eligibility (all sequential arrays), RNG seeding,
  // the first neighbor draw — and prefetches the probe target's metadata
  // and possession row. The windows are double-buffered: window W+1's
  // lead pass runs BEFORE window W's emit pass, so every prefetch gets a
  // full window of emit work (microseconds) to complete instead of the
  // few dozen instructions a fused lead+emit would give the window's
  // first nodes. Nothing here consumes draws beyond what generate_node
  // historically consumed, and the emit order is still ascending node id.
  constexpr std::uint32_t kBatch = 16;
  struct Window {
    Rng rngs[kBatch];
    NodeId probe0[kBatch];
    bool eligible[kBatch];
    NodeId base = 0;
    std::uint32_t width = 0;
  };
  Window wins[2];

  const auto lead = [&](Window& w, NodeId base) {
    w.base = base;
    w.width = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(kBatch, static_cast<std::uint64_t>(last) - base));
    for (std::uint32_t i = 0; i < w.width; ++i) {
      const NodeId u = base + i;
      w.eligible[i] = false;
      if (active_[u] == 0) continue;
      const std::uint32_t cu = count_[u];
      // A node proven exhausted at its current possession version emits
      // nothing and would emit nothing: skip it without touching its RNG
      // stream (the stream is derived per (tick, node) and consumed nowhere
      // else, so the emitted intent set — and every digest — is unchanged).
      if (cu == 0 || sated_ver_[u] == cu + 1) continue;
      if (up_caps_[u] == 0) continue;
      const std::uint32_t deg = topo_->degree(u);
      if (deg == 0) continue;
      w.eligible[i] = true;
      // This node's RNG stream is a pure function of (seed, tick, node), so
      // the intents it emits do not depend on which shard/thread runs it.
      w.rngs[i] = Rng(trial_seed(tick_base, u));
      const NodeId v = topo_->neighbor(u, w.rngs[i].below(deg));
      w.probe0[i] = v;
      __builtin_prefetch(&active_[v], 0, 1);
      __builtin_prefetch(&count_[v], 0, 1);
      const std::uint64_t* rv = row(v);
      __builtin_prefetch(rv, 0, 1);
      if (stride_ > 8) __builtin_prefetch(rv + stride_ - 1, 0, 1);
      // Deliberately NOT peeking probe 1's target here: a speculative
      // RNG-copy peek plus three more prefetches per slot was measured
      // ~2% slower end-to-end at n = 10^6 — the extra neighbor lookup and
      // prefetch traffic outweigh the occasional saved miss, because the
      // probe cache and sated-skip already resolve most second probes
      // without touching the arena.
    }
  };
  const auto emit = [&](Window& w) {
    for (std::uint32_t i = 0; i < w.width; ++i) {
      if (w.eligible[i]) {
        generate_node(w.base + i, w.rngs[i], w.probe0[i], out, scan, cache);
      }
    }
  };

  if (first >= last) return;
  lead(wins[0], first);
  std::uint32_t cur = 0;
  for (;;) {
    const NodeId next = wins[cur].base + wins[cur].width;
    if (next < last) {
      lead(wins[cur ^ 1], next);
      emit(wins[cur]);
      cur ^= 1;
    } else {
      emit(wins[cur]);
      break;
    }
  }
}

void Engine::plan_phases(Tick tick, std::vector<Transfer>& out, ThreadPool* pool) {
  const std::uint32_t shard = opt_.shard_nodes;
  const auto num_shards = static_cast<std::uint32_t>(shard_intents_.size());
  const bool timing = opt_.collect_phase_timings;
  auto stamp = std::chrono::steady_clock::time_point{};
  if (timing) stamp = std::chrono::steady_clock::now();

  // Arrivals since the last plan added fresh targets, so every "no viable
  // neighbor" stamp is suspect: wipe them all, once, serially. O(n) per
  // arrival-bearing tick — a flash crowd of m arrivals costs O(n + m), not
  // O(n * m), and tick streams without arrivals never pay it.
  if (sated_dirty_) {
    std::fill(sated_ver_.begin(), sated_ver_.end(), 0u);
    sated_dirty_ = false;
  }

  // Phase 1: intent generation, sharded by sender node range. Shards only
  // read the (frozen) swarm state and write their own vector + scheduler-
  // owned scratch, so running them on a pool is observationally identical to
  // the serial loop. begin_tick is the scheduler's serial hook (the riffle
  // scheduler materializes the tick's meeting buffer in it); generate()
  // emits each shard's slice of the canonical sender-ordered stream.
  sched_->begin_tick(tick);
  const std::function<void(std::uint32_t)> generate = [&](std::uint32_t s) {
    auto& intents = shard_intents_[s];
    intents.clear();
    const auto first = static_cast<NodeId>(static_cast<std::uint64_t>(s) * shard);
    const auto last = static_cast<NodeId>(
        std::min<std::uint64_t>(n_, static_cast<std::uint64_t>(first) + shard));
    sched_->generate(tick, s, first, last, intents);
  };
  for_shards(pool, num_shards, generate);

  if (timing) {
    timings_.generate_seconds += seconds_since(stamp);
    stamp = std::chrono::steady_clock::now();
  }

  // Phase 2: receiver-sharded merge. Every cross-sender constraint —
  // download capacity, one delivery per (receiver, block) — is keyed on the
  // receiver alone, so receiver shards admit independently. Each shard sees
  // its receivers' intents in canonical node order (the counting-sort
  // scatter below is order-preserving), so its decisions match the
  // historical single-pass serial merge exactly; the accepted stream is
  // then reconstructed from per-intent accept flags in canonical order.
  const std::uint32_t R = recv_shards_;

  // 2a. Canonical-stream offsets per intent shard (serial, O(S)).
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    intent_offsets_[s + 1] = intent_offsets_[s] + shard_intents_[s].size();
  }
  const std::size_t total_wide = intent_offsets_[num_shards];
  assert(total_wide <= std::numeric_limits<std::uint32_t>::max());
  const auto total = static_cast<std::uint32_t>(total_wide);
  std::fill(bucket_offsets_.begin(), bucket_offsets_.end(), 0u);
  sparse_tick_ = total <= kSparseTickIntents;
  if (total == 0) {
    if (timing) timings_.merge_seconds += seconds_since(stamp);
    return;
  }
  if (sparse_tick_) {
    // Serial admission in canonical order — the same constraints in the
    // same order as the sharded path (which replicates the historical
    // serial merge), so the accepted stream is identical; it just skips the
    // counting/scatter/flag scaffolding, whose fixed O(S * R) cost would
    // dominate million-tick deterministic runs of a few hundred intents per
    // tick. apply_merged sees sparse_tick_ and commits serially too.
    PairTable& delivered = delivered_[0];
    delivered.begin_tick(total);
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      for (const Transfer& tr : shard_intents_[s]) {
        bool admit;
        if (down_caps_unlimited_) {
          admit = delivered.insert(delivery_key(tr.to, tr.block));
        } else {
          if (down_stamp_[tr.to] != tick) {
            down_stamp_[tr.to] = tick;
            down_used_[tr.to] = 0;
          }
          const std::uint32_t dcap = down_caps_[tr.to];
          admit = dcap == kUnlimited || down_used_[tr.to] < dcap;
          if (admit) admit = delivered.insert(delivery_key(tr.to, tr.block));
          if (admit) ++down_used_[tr.to];
        }
        if (admit) out.push_back(tr);
      }
    }
    if (timing) timings_.merge_seconds += seconds_since(stamp);
    return;
  }

  // 2b. Count intents per (intent shard, receiver shard).
  for_shards(pool, num_shards, [&](std::uint32_t s) {
    std::uint32_t* cnt = scatter_pos_.data() + static_cast<std::size_t>(s) * R;
    std::fill_n(cnt, R, 0u);
    for (const Transfer& tr : shard_intents_[s]) ++cnt[recv_shard_of(tr.to)];
  });

  // 2c. Bucket offsets; counts become scatter cursors (serial, O(S * R)).
  std::uint32_t running = 0;
  for (std::uint32_t r = 0; r < R; ++r) {
    bucket_offsets_[r] = running;
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      std::uint32_t& cell = scatter_pos_[static_cast<std::size_t>(s) * R + r];
      const std::uint32_t c = cell;
      cell = running;
      running += c;
    }
  }
  bucket_offsets_[R] = running;  // == total

  // 2d. Scatter intents into receiver buckets; cursor ranges are disjoint
  // by construction, and walking intent shards in ascending s keeps each
  // bucket in canonical stream order.
  if (bucket_.size() < total) {
    bucket_.reserve(total);
    advise_hugepages(bucket_.data(), static_cast<std::size_t>(total) * sizeof(MergeItem));
    bucket_.resize(total);
  }
  if (accept_.size() < total) {
    accept_.reserve(total);
    advise_hugepages(accept_.data(), total);
    accept_.resize(total);
  }
  for_shards(pool, num_shards, [&](std::uint32_t s) {
    std::uint32_t* cur = scatter_pos_.data() + static_cast<std::size_t>(s) * R;
    auto g = static_cast<std::uint32_t>(intent_offsets_[s]);
    for (const Transfer& tr : shard_intents_[s]) {
      bucket_[cur[recv_shard_of(tr.to)]++] = MergeItem{tr, g++};
    }
  });

  // 2e. Admission per receiver shard: download capacity + per-(receiver,
  // block) dedup, each shard with its own epoch-stamped table and its own
  // slice of down_used_/down_stamp_.
  for_shards(pool, R, [&](std::uint32_t r) {
    const std::uint32_t lo = bucket_offsets_[r];
    const std::uint32_t hi = bucket_offsets_[r + 1];
    PairTable& delivered = delivered_[r];
    delivered.begin_tick(hi - lo);
    // (No software prefetch here: each receiver shard's working set —
    // its slice of down_used_/down_stamp_ — is small enough to stay
    // cached, and measured prefetching made this loop slower.)
    if (down_caps_unlimited_) {
      // With no download cap anywhere, the capacity bookkeeping can never
      // reject, so admission reduces to the (receiver, block) dedup — and
      // down_used_/down_stamp_ are never read. Same accepts, same order.
      // The two random lines per intent — the dedup table's home slot and
      // the accept flag (indexed by canonical stream position, scattered
      // across the whole tick) — are warmed a few intents ahead.
      for (std::uint32_t i = lo; i < hi; ++i) {
        if (i + 8 < hi) {
          const MergeItem& ahead = bucket_[i + 8];
          delivered.prefetch(delivery_key(ahead.tr.to, ahead.tr.block));
          __builtin_prefetch(&accept_[ahead.idx], 1, 1);
        }
        const Transfer& tr = bucket_[i].tr;
        accept_[bucket_[i].idx] =
            delivered.insert(delivery_key(tr.to, tr.block)) ? 1 : 0;
      }
      return;
    }
    for (std::uint32_t i = lo; i < hi; ++i) {
      const Transfer& tr = bucket_[i].tr;
      if (down_stamp_[tr.to] != tick) {
        down_stamp_[tr.to] = tick;
        down_used_[tr.to] = 0;
      }
      const std::uint32_t dcap = down_caps_[tr.to];
      bool admit = dcap == kUnlimited || down_used_[tr.to] < dcap;
      if (admit) admit = delivered.insert(delivery_key(tr.to, tr.block));
      if (admit) ++down_used_[tr.to];
      accept_[bucket_[i].idx] = admit ? 1 : 0;
    }
  });

  // 2f. Emit the accepted subsequence in canonical order: count accepted
  // per intent shard, prefix, then scatter into the output slots.
  for_shards(pool, num_shards, [&](std::uint32_t s) {
    std::uint32_t acc = 0;
    for (std::size_t g = intent_offsets_[s]; g < intent_offsets_[s + 1]; ++g) {
      acc += accept_[g];
    }
    emit_offsets_[s + 1] = acc;
  });
  emit_offsets_[0] = 0;
  for (std::uint32_t s = 0; s < num_shards; ++s) emit_offsets_[s + 1] += emit_offsets_[s];
  const std::size_t base = out.size();
  out.resize(base + emit_offsets_[num_shards]);
  for_shards(pool, num_shards, [&](std::uint32_t s) {
    auto g = intent_offsets_[s];
    std::size_t w = base + emit_offsets_[s];
    for (const Transfer& tr : shard_intents_[s]) {
      if (accept_[g++]) out[w++] = tr;
    }
  });

  if (timing) timings_.merge_seconds += seconds_since(stamp);
}

void Engine::plan(Tick tick, std::vector<Transfer>& out) {
  lockstep_ = true;  // lockstep driving began; run() may no longer be used
  plan_phases(tick, out, nullptr);
}

void Engine::note_delivery(NodeId to, BlockId block, std::uint64_t word) {
  const std::uint32_t w = block >> 6;
  const std::size_t g = static_cast<std::size_t>(to) * sum_stride_ + (w >> 6);
  const std::uint64_t chunk_bit = 1ULL << (w & 63);
  summary_has_[g] |= chunk_bit;
  // The word just filled up (tail-masked for the last one): v no longer
  // misses anything in this chunk, so senders whose holdings sit entirely
  // inside it reject v at the summary level from now on.
  if (word == word_full_mask(w)) summary_missing_[g] &= ~chunk_bit;
  // No separate version bump: the caller's ++count_[to] IS the possession
  // version change, invalidating every cached verdict about `to` — on both
  // sides: as receiver (su \ sv changed) and as sender (sv \ su changed) —
  // and un-sating the node if a neighborhood sweep had written it off.
}

void Engine::apply(Tick tick, std::span<const Transfer> accepted) {
  const bool timing = opt_.collect_phase_timings;
  auto stamp = std::chrono::steady_clock::time_point{};
  if (timing) stamp = std::chrono::steady_clock::now();
  commit_serial(tick, accepted);
  if (timing) timings_.apply_seconds += seconds_since(stamp);
}

void Engine::commit_serial(Tick tick, std::span<const Transfer> accepted) {
  for (const Transfer& tr : accepted) {
    std::uint64_t& word = row(tr.to)[tr.block >> 6];
    const std::uint64_t bit = 1ULL << (tr.block & 63);
    assert((word & bit) == 0 && "duplicate delivery slipped through the merge");
    word |= bit;
    note_delivery(tr.to, tr.block, word);
    ++freq_[tr.block];
    ++uploads_per_node_[tr.from];
    if (++count_[tr.to] == k_) {
      completion_[tr.to] = tick;
      --num_incomplete_;
      if (cfg_.depart_on_complete) leaving_.push_back(tr.to);
    }
    // Mirrors CreditLimited::commit_tick: server-involved transfers never
    // touch the ledger.
    if (opt_.credit_limit != 0 && tr.from != kServer) ledger_.record(tr.from, tr.to);
  }
}

void Engine::apply_merged(Tick tick, std::span<const Transfer> accepted,
                          ThreadPool* pool) {
  const bool timing = opt_.collect_phase_timings;
  auto stamp = std::chrono::steady_clock::time_point{};
  if (timing) stamp = std::chrono::steady_clock::now();
  if (accepted.empty()) {
    if (timing) timings_.apply_seconds += seconds_since(stamp);
    return;
  }
  if (sparse_tick_) {
    // The sparse merge skipped the buckets and accept flags this commit
    // path reads, and at these stream sizes the serial loop wins anyway.
    // (leaving_ may collect completions in stream order rather than
    // receiver-shard order; deactivation is commutative, so the next tick's
    // state is identical either way.)
    commit_serial(tick, accepted);
    if (timing) timings_.apply_seconds += seconds_since(stamp);
    return;
  }
  const std::uint32_t R = recv_shards_;

  // 3a. Receiver-side commit from the merge buckets: possession bits,
  // summary bitmaps, possession versions, per-node counts, completion ticks
  // and the depart-on-complete queue. Shard r owns its receivers' rows and
  // counters exclusively; completions accumulate per shard and fold into
  // num_incomplete_ afterwards.
  for_shards(pool, R, [&](std::uint32_t r) {
    std::uint32_t* freq_row = freq_scratch_.shard(r);
    auto& leaving = leaving_shards_[r];
    leaving.clear();
    std::uint32_t completions = 0;
    const std::uint32_t hi = bucket_offsets_[r + 1];
    for (std::uint32_t i = bucket_offsets_[r]; i < hi; ++i) {
      if (i + 8 < hi) {
        const MergeItem& ahead = bucket_[i + 8];
        __builtin_prefetch(&accept_[ahead.idx], 0, 1);
        __builtin_prefetch(&row(ahead.tr.to)[ahead.tr.block >> 6], 1, 1);
        __builtin_prefetch(&count_[ahead.tr.to], 1, 1);
        __builtin_prefetch(
            &summary_has_[static_cast<std::size_t>(ahead.tr.to) * sum_stride_], 1, 1);
        __builtin_prefetch(
            &summary_missing_[static_cast<std::size_t>(ahead.tr.to) * sum_stride_], 1, 1);
      }
      if (accept_[bucket_[i].idx] == 0) continue;
      const Transfer& tr = bucket_[i].tr;
      std::uint64_t& word = row(tr.to)[tr.block >> 6];
      const std::uint64_t bit = 1ULL << (tr.block & 63);
      assert((word & bit) == 0 && "duplicate delivery slipped through the merge");
      word |= bit;
      note_delivery(tr.to, tr.block, word);
      ++freq_row[tr.block];
      if (++count_[tr.to] == k_) {
        completion_[tr.to] = tick;
        ++completions;
        if (cfg_.depart_on_complete) leaving.push_back(tr.to);
      }
    }
    completions_scratch_[r] = completions;
  });
  for (std::uint32_t r = 0; r < R; ++r) {
    num_incomplete_ -= completions_scratch_[r];
    completions_scratch_[r] = 0;
    if (cfg_.depart_on_complete) {
      leaving_.insert(leaving_.end(), leaving_shards_[r].begin(),
                      leaving_shards_[r].end());
    }
  }

  // 3b. Fold per-shard frequency deltas into freq_ in fixed shard order.
  freq_scratch_.reduce_into(freq_.data(), pool);

  // 3c. Sender-side upload accounting. The accepted stream is non-
  // decreasing in `from` (canonical order is sender node order), so sender
  // shards find their contiguous slice by binary search and own their
  // uploads_per_node_ range exclusively.
  for_shards(pool, R, [&](std::uint32_t r) {
    const NodeId first = static_cast<NodeId>(r) * recv_width_;
    const NodeId last = static_cast<NodeId>(
        std::min<std::uint64_t>(n_, static_cast<std::uint64_t>(first) + recv_width_));
    const auto lo = std::partition_point(
        accepted.begin(), accepted.end(),
        [&](const Transfer& t) { return t.from < first; });
    const auto hi = std::partition_point(
        lo, accepted.end(), [&](const Transfer& t) { return t.from < last; });
    for (auto it = lo; it != hi; ++it) ++uploads_per_node_[it->from];
  });

  // 3d. Ledger commit stays serial: the pairwise map is shared and the pass
  // only runs in credit mode. Stream order matches apply()'s, so the two
  // commit paths build the identical ledger.
  if (opt_.credit_limit != 0) {
    for (const Transfer& tr : accepted) {
      if (tr.from != kServer) ledger_.record(tr.from, tr.to);
    }
  }
  if (timing) timings_.apply_seconds += seconds_since(stamp);
}

void Engine::deactivate(NodeId node) {
  if (node == kServer || node >= n_) {
    throw std::invalid_argument("scale: cannot deactivate node " + std::to_string(node));
  }
  if (active_[node] == 0) return;
  active_[node] = 0;
  ++num_departed_;
  active_slots_ -= up_caps_[node];
  const std::uint64_t* r = row(node);
  for (std::uint32_t w = 0; w < stride_; ++w) {
    std::uint64_t held = r[w];
    while (held != 0) {
      const auto b = (w << 6) + static_cast<std::uint32_t>(std::countr_zero(held));
      held &= held - 1;
      --freq_[b];
    }
  }
  if (count_[node] < k_) --num_incomplete_;
  // No summary/version/cache bookkeeping: a departure removes viability, it
  // never creates any, so cached "useless" verdicts and sated stamps about
  // the survivors stay valid.
}

void Engine::activate(NodeId node) {
  if (node == kServer || node >= n_) {
    throw std::invalid_argument("scale: cannot activate node " + std::to_string(node));
  }
  if (active_[node] != 0) return;
  active_[node] = 1;
  --num_departed_;
  active_slots_ += up_caps_[node];
  const std::uint64_t* r = row(node);
  for (std::uint32_t w = 0; w < stride_; ++w) {
    std::uint64_t held = r[w];
    while (held != 0) {
      const auto b = (w << 6) + static_cast<std::uint32_t>(std::countr_zero(held));
      held &= held - 1;
      ++freq_[b];
    }
  }
  if (count_[node] < k_) ++num_incomplete_;
  // Unlike deactivate, an arrival CREATES viability: the new node is a fresh
  // target, so "no viable neighbor" verdicts about its neighbors are stale.
  // Sated stamps are not version-keyed (that is their point), so they must
  // go; the wipe is batched to once per plan, keeping a flash crowd of m
  // arrivals at O(n + m), not O(n * m). Probe-cache entries survive: they
  // are exact functions of both endpoints' rows, pinned by versions, and no
  // entry about an inactive node is ever written.
  sated_dirty_ = true;
}

void Engine::set_capacity(NodeId node, std::uint32_t up, std::uint32_t down) {
  if (node >= n_) {
    throw std::invalid_argument("scale: set_capacity on node " + std::to_string(node));
  }
  if (down == 0 || (node != kServer && down != kUnlimited && down < up)) {
    throw EngineViolation("scale: set_capacity requires d >= u and d >= 1");
  }
  if (active_[node] != 0) {
    active_slots_ = active_slots_ - up_caps_[node] + up;
  }
  up_caps_[node] = up;
  if (down_caps_[node] != down) {
    down_caps_[node] = down;
    // Demote the all-unlimited fast path once any finite cap appears; never
    // re-promoted (a scan per change is not worth a perf-only flag).
    if (down != kUnlimited) down_caps_unlimited_ = false;
  }
  // No sated invalidation: a sated verdict says "no neighbor has a useful
  // block for me to send", which is about possession, not slots.
}

std::span<const Transfer> Engine::step(ThreadPool* pool) {
  lockstep_ = true;  // the stream driver owns the loop; run() is poisoned
  ++tick_;
  // Same loop head as run(): due config departures, then the depart-on-
  // complete queue, both at the START of the tick.
  while (next_departure_ < departures_.size() &&
         departures_[next_departure_].first <= tick_) {
    deactivate(departures_[next_departure_].second);
    ++next_departure_;
  }
  if (cfg_.depart_on_complete) {
    for (const NodeId c : leaving_) deactivate(c);
    leaving_.clear();
  }
  accepted_.clear();
  plan_phases(tick_, accepted_, pool);
  apply_merged(tick_, accepted_, pool);
  return accepted_;
}

BlockId Engine::first_missing(NodeId node) const {
  const std::uint64_t* miss = summary_missing_row(node);
  for (std::uint32_t g = 0; g < sum_stride_; ++g) {
    if (miss[g] == 0) continue;
    const auto w = (g << 6) + static_cast<std::uint32_t>(std::countr_zero(miss[g]));
    const std::uint64_t gap = ~row(node)[w] & word_full_mask(w);
    return (w << 6) + static_cast<std::uint32_t>(std::countr_zero(gap));
  }
  return k_;  // complete
}

RunResult Engine::run(unsigned jobs) {
  if (lockstep_) {
    throw std::logic_error(
        "scale::Engine::run: engine is being driven in lockstep (plan/apply)");
  }
  // Per-call phase accounting: each run() window reports only its own
  // ticks. (When collection is off the fields simply stay zero — never
  // stale values from a previous instrumented call.)
  timings_ = PhaseTimings{};
  ThreadPool pool(jobs);

  // From here down the control flow replicates core's run_with_state line
  // for line (departure application, depart_on_complete timing, the stall
  // window arithmetic, final bookkeeping) so that a mirrored core run
  // produces a field-for-field identical RunResult. The tick counter, the
  // departure cursor and the leaving queue are members, so a capped call
  // resumes exactly where the previous one stopped — splitting a run into
  // windows changes no transfer and no completion tick.
  const Tick cap = cfg_.max_ticks != 0 ? cfg_.max_ticks
                                       : default_tick_cap(cfg_.num_nodes, cfg_.num_blocks);

  RunResult result;
  std::uint64_t window_sum = 0;
  std::uint64_t window_slots_sum = 0;

  Tick executed = 0;  // this call's ticks; tick_ numbers the global stream
  while (num_incomplete_ != 0 && executed < cap) {
    ++tick_;
    ++executed;
    while (next_departure_ < departures_.size() &&
           departures_[next_departure_].first <= tick_) {
      deactivate(departures_[next_departure_].second);
      ++next_departure_;
    }
    if (cfg_.depart_on_complete) {
      for (const NodeId c : leaving_) deactivate(c);
      leaving_.clear();
    }
    if (num_incomplete_ == 0) break;  // survivors may already all be done

    accepted_.clear();
    plan_phases(tick_, accepted_, &pool);
    apply_merged(tick_, accepted_, &pool);

    result.total_transfers += accepted_.size();
    result.uploads_per_tick.push_back(accepted_.size());
    result.active_slots_per_tick.push_back(active_slots_);
    if (cfg_.record_trace) result.trace.push_back(accepted_);

    if (cfg_.stall_window != 0) {
      window_sum += accepted_.size();
      window_slots_sum += active_slots_;
      if (executed > cfg_.stall_window) {
        window_sum -= result.uploads_per_tick[executed - cfg_.stall_window - 1];
        window_slots_sum -= result.active_slots_per_tick[executed - cfg_.stall_window - 1];
      }
      if (executed >= cfg_.stall_window &&
          static_cast<double>(window_sum) <
              cfg_.stall_utilization * static_cast<double>(window_slots_sum)) {
        result.stalled = true;
        break;
      }
    }
  }

  result.ticks_executed = executed;
  result.completed = num_incomplete_ == 0;
  result.departed = num_departed_;
  result.client_completion.assign(completion_.begin() + 1, completion_.end());
  if (result.completed) {
    result.completion_tick = *std::max_element(result.client_completion.begin(),
                                               result.client_completion.end());
  }
  result.uploads_per_node = uploads_per_node_;  // copy: the engine stays resumable
  return result;
}

std::uint64_t Engine::state_bytes() const {
  std::uint64_t bytes = bits_.size() * sizeof(std::uint64_t);
  bytes += (summary_has_.size() + summary_missing_.size()) * sizeof(std::uint64_t);
  bytes += sated_ver_.size() * sizeof(std::uint32_t);
  bytes += count_.size() * sizeof(std::uint32_t);
  bytes += completion_.size() * sizeof(Tick);
  bytes += active_.size();
  bytes += freq_.size() * sizeof(std::uint32_t);
  bytes += up_caps_.size() * sizeof(std::uint32_t);
  bytes += down_caps_.size() * sizeof(std::uint32_t);
  bytes += uploads_per_node_.size() * sizeof(Count);
  bytes += down_used_.size() * sizeof(std::uint32_t);
  bytes += down_stamp_.size() * sizeof(Tick);
  // Tick scratch: the per-shard intent vectors, diff-scan recordings and
  // probe caches, the admission tables, the merge buckets/flags/offsets,
  // apply scratch and the accepted stream all persist between ticks at
  // high-water capacity — at n = 10^6 they are a triple-digit-MiB chunk of
  // the real footprint the old accounting omitted (it reported 161 MiB
  // against a 503 MiB RSS).
  for (const auto& intents : shard_intents_) {
    bytes += intents.capacity() * sizeof(Transfer);
  }
  bytes += sched_->memory_bytes();  // randomized probe scratch, riffle segments
  for (const PairTable& table : delivered_) bytes += table.memory_bytes();
  bytes += intent_offsets_.capacity() * sizeof(std::size_t);
  bytes += scatter_pos_.capacity() * sizeof(std::uint32_t);
  bytes += bucket_offsets_.capacity() * sizeof(std::uint32_t);
  bytes += bucket_.capacity() * sizeof(MergeItem);
  bytes += accept_.capacity();
  bytes += emit_offsets_.capacity() * sizeof(std::uint32_t);
  bytes += freq_scratch_.memory_bytes();
  for (const auto& leaving : leaving_shards_) bytes += leaving.capacity() * sizeof(NodeId);
  bytes += completions_scratch_.capacity() * sizeof(std::uint32_t);
  bytes += leaving_.capacity() * sizeof(NodeId);
  bytes += accepted_.capacity() * sizeof(Transfer);
  bytes += departures_.capacity() * sizeof(std::pair<Tick, NodeId>);
  bytes += ledger_.memory_bytes();
  bytes += topo_->memory_bytes();
  return bytes;
}

}  // namespace pob::scale
