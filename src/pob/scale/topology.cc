#include "pob/scale/topology.h"

#include <algorithm>
#include <stdexcept>

namespace pob::scale {

Topology Topology::complete(std::uint32_t num_nodes) {
  if (num_nodes < 2) throw std::invalid_argument("Topology: need >= 2 nodes");
  Topology t;
  t.n_ = num_nodes;
  t.complete_ = true;
  return t;
}

Topology Topology::from_graph(const Graph& graph) {
  if (!graph.finalized()) throw std::invalid_argument("Topology: graph not finalized");
  if (graph.num_nodes() < 2) throw std::invalid_argument("Topology: need >= 2 nodes");
  Topology t;
  t.n_ = graph.num_nodes();
  t.offsets_.resize(static_cast<std::size_t>(t.n_) + 1);
  t.targets_.reserve(graph.num_edges() * 2);
  std::uint64_t offset = 0;
  for (NodeId u = 0; u < t.n_; ++u) {
    t.offsets_[u] = offset;
    const auto neighbors = graph.neighbors(u);
    t.targets_.insert(t.targets_.end(), neighbors.begin(), neighbors.end());
    offset += neighbors.size();
  }
  t.offsets_[t.n_] = offset;
  return t;
}

Topology Topology::from_overlay(const Overlay& overlay) {
  const std::uint32_t n = overlay.num_nodes();
  if (n < 2) throw std::invalid_argument("Topology: need >= 2 nodes");
  Topology t;
  t.n_ = n;
  t.offsets_.resize(static_cast<std::size_t>(n) + 1);
  std::uint64_t offset = 0;
  for (NodeId u = 0; u < n; ++u) {
    t.offsets_[u] = offset;
    const std::uint32_t deg = overlay.degree(u);
    for (std::uint32_t i = 0; i < deg; ++i) t.targets_.push_back(overlay.neighbor(u, i));
    // Overlay promises stable-but-arbitrary ordering; the planner's contract
    // is ascending ids, so normalize here.
    std::sort(t.targets_.begin() + static_cast<std::ptrdiff_t>(offset), t.targets_.end());
    offset += deg;
  }
  t.offsets_[n] = offset;
  return t;
}

}  // namespace pob::scale
