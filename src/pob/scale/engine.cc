#include "pob/scale/engine.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <string>

namespace pob::scale {

namespace {

// splitmix64 finalizer; good avalanche for open-addressed probing.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t delivery_key(NodeId to, BlockId block) {
  return (static_cast<std::uint64_t>(to) << 32) | block;
}

// Runs body(s) for s in [0, count): on the pool when it has real workers,
// inline otherwise. Every caller's body writes only shard-owned state, so
// the two paths are observationally identical — jobs=1 runs the exact same
// sharded algorithm, just serially.
void for_shards(ThreadPool* pool, std::uint32_t count,
                const std::function<void(std::uint32_t)>& body) {
  if (pool != nullptr && pool->jobs() > 1 && count > 1) {
    pool->parallel_for(count, body);
  } else {
    for (std::uint32_t s = 0; s < count; ++s) body(s);
  }
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

// --- PairTable -----------------------------------------------------------

void Engine::PairTable::begin_tick(std::size_t expected) {
  std::size_t want = 16;
  while (want < expected * 2) want <<= 1;  // load factor <= 0.5
  if (keys_.size() < want) {
    keys_.assign(want, 0);
    epochs_.assign(want, 0);
    mask_ = want - 1;
    epoch_ = 0;
  }
  if (++epoch_ == 0) {  // epoch wrapped: stale stamps would alias
    std::fill(epochs_.begin(), epochs_.end(), 0u);
    epoch_ = 1;
  }
}

bool Engine::PairTable::insert(std::uint64_t key) {
  auto i = static_cast<std::size_t>(mix64(key) & mask_);
  while (epochs_[i] == epoch_) {
    if (keys_[i] == key) return false;
    i = (i + 1) & static_cast<std::size_t>(mask_);
  }
  epochs_[i] = epoch_;
  keys_[i] = key;
  return true;
}

// --- Engine --------------------------------------------------------------

Engine::Engine(const EngineConfig& config, std::shared_ptr<const Topology> topology,
               ScaleOptions options, std::uint64_t seed)
    : cfg_(config), topo_(std::move(topology)), opt_(options), seed_(seed) {
  // Same validation, same exception types, same order as core's
  // run_with_state — a config that one engine rejects must not silently run
  // on the other.
  if (cfg_.num_nodes < 2) throw std::invalid_argument("scale: num_nodes < 2");
  if (cfg_.num_blocks < 1) throw std::invalid_argument("scale: num_blocks < 1");
  if (cfg_.upload_capacity < 1) throw std::invalid_argument("scale: upload_capacity < 1");
  if (cfg_.download_capacity < 1) throw std::invalid_argument("scale: download_capacity < 1");
  if (topo_ == nullptr || topo_->num_nodes() != cfg_.num_nodes) {
    throw std::invalid_argument("scale: topology does not match num_nodes");
  }
  if (opt_.max_probes < 1) throw std::invalid_argument("scale: max_probes < 1");
  if (opt_.shard_nodes < 1) throw std::invalid_argument("scale: shard_nodes < 1");

  const std::uint32_t n = cfg_.num_nodes;
  if (!cfg_.upload_capacities.empty() && cfg_.upload_capacities.size() != n) {
    throw EngineViolation("config: upload_capacities has " +
                          std::to_string(cfg_.upload_capacities.size()) +
                          " entries for " + std::to_string(n) + " nodes");
  }
  if (!cfg_.download_capacities.empty() && cfg_.download_capacities.size() != n) {
    throw EngineViolation("config: download_capacities has " +
                          std::to_string(cfg_.download_capacities.size()) +
                          " entries for " + std::to_string(n) + " nodes");
  }
  for (const auto& [dep_tick, dep_node] : cfg_.departures) {
    (void)dep_tick;
    if (dep_node == kServer) {
      throw EngineViolation("config: departure names the server (node 0)");
    }
    if (dep_node >= n) {
      throw EngineViolation("config: departure names out-of-range node " +
                            std::to_string(dep_node) + " (num_nodes " +
                            std::to_string(n) + ")");
    }
  }

  n_ = n;
  k_ = cfg_.num_blocks;
  stride_ = (k_ + 63) / 64;

  const std::uint32_t server_up = cfg_.server_upload_capacity != 0
                                      ? cfg_.server_upload_capacity
                                      : cfg_.upload_capacity;
  up_caps_.resize(n_);
  down_caps_.resize(n_);
  for (NodeId u = 0; u < n_; ++u) {
    up_caps_[u] = !cfg_.upload_capacities.empty()
                      ? cfg_.upload_capacities[u]
                      : (u == kServer ? server_up : cfg_.upload_capacity);
    down_caps_[u] = !cfg_.download_capacities.empty() ? cfg_.download_capacities[u]
                                                      : cfg_.download_capacity;
  }
  for (NodeId c = 1; c < n_; ++c) {
    if (down_caps_[c] < up_caps_[c]) {
      throw EngineViolation("config: client " + std::to_string(c) +
                            " has download capacity " + std::to_string(down_caps_[c]) +
                            " < upload capacity " + std::to_string(up_caps_[c]) +
                            " (the model requires d >= u)");
    }
  }

  bits_.assign(static_cast<std::size_t>(n_) * stride_, 0);
  count_.assign(n_, 0);
  completion_.assign(n_, 0);
  active_.assign(n_, 1);
  freq_.assign(k_, 1);  // the server's copy of every block
  uploads_per_node_.assign(n_, 0);
  down_used_.assign(n_, 0);
  down_stamp_.assign(n_, 0);

  // Seed the server with the whole file (tail bits of the last word stay 0 —
  // the planner's word-wise diffs rely on that invariant for every row).
  std::uint64_t* server = row(kServer);
  for (std::uint32_t w = 0; w < stride_; ++w) {
    const bool last_partial = (w + 1 == stride_) && (k_ & 63) != 0;
    server[w] = last_partial ? (1ULL << (k_ & 63)) - 1 : ~0ULL;
  }
  count_[kServer] = k_;
  num_incomplete_ = n_ - 1;

  for (NodeId u = 0; u < n_; ++u) active_slots_ += up_caps_[u];

  const std::uint32_t shards = (n_ + opt_.shard_nodes - 1) / opt_.shard_nodes;
  shard_intents_.resize(shards);
  gen_scratch_.resize(shards);
  for (DiffScan& scan : gen_scratch_) {
    scan.words.resize(stride_);
    scan.pc.resize(stride_);
  }

  // Receiver shards: enough for the pool to balance (the E22 swarm gets 64)
  // but never so many that tiny fuzz swarms pay bucketing overhead for a
  // handful of intents. A pure function of n — job counts must not be able
  // to move shard boundaries.
  const std::uint32_t want = std::clamp(n_ / 1024u, 1u, 64u);
  recv_width_ = (n_ + want - 1) / want;
  recv_shards_ = (n_ + recv_width_ - 1) / recv_width_;
  delivered_.resize(recv_shards_);
  bucket_offsets_.assign(recv_shards_ + 1, 0);
  intent_offsets_.assign(shards + 1, 0);
  emit_offsets_.assign(shards + 1, 0);
  scatter_pos_.assign(static_cast<std::size_t>(shards) * recv_shards_, 0);
  freq_scratch_.configure(recv_shards_, k_);
  leaving_shards_.resize(recv_shards_);
  completions_scratch_.assign(recv_shards_, 0);
}

bool Engine::scan_diff(const std::uint64_t* su, const std::uint64_t* sv,
                       DiffScan& scan) const {
  // Usefulness pre-check with an early exit at the first useful word: most
  // probes either fail (all words scanned, nothing written) or succeed at
  // word 0, and only a successful probe pays for the recording below. This
  // keeps the failed-probe cost identical to a plain usefulness test while
  // still sparing block selection a second walk over the possession rows.
  std::uint32_t w0 = 0;
  while (w0 < stride_ && (su[w0] & ~sv[w0]) == 0) ++w0;
  if (w0 == stride_) return false;
  for (std::uint32_t w = 0; w < w0; ++w) {
    scan.words[w] = 0;
    scan.pc[w] = 0;
  }
  std::uint32_t total = 0;
  for (std::uint32_t w = w0; w < stride_; ++w) {
    const std::uint64_t d = su[w] & ~sv[w];
    scan.words[w] = d;
    const auto c = static_cast<std::uint32_t>(std::popcount(d));
    scan.pc[w] = c;
    total += c;
  }
  scan.total = total;
  return true;
}

BlockId Engine::pick_from_scan(const DiffScan& scan, Rng& rng) const {
  if (opt_.policy == BlockPolicy::kRandom) {
    // Rank-select over the recorded per-word popcounts; one rng draw, as
    // BlockSet::pick_random_useful.
    assert(scan.total != 0);  // caller checked usefulness
    std::uint32_t r = rng.below(scan.total);
    for (std::uint32_t w = 0; w < stride_; ++w) {
      const std::uint32_t pc = scan.pc[w];
      if (r < pc) {
        std::uint64_t diff = scan.words[w];
        while (r-- > 0) diff &= diff - 1;
        return static_cast<BlockId>((w << 6) +
                                    static_cast<std::uint32_t>(std::countr_zero(diff)));
      }
      r -= pc;
    }
    return kNoBlock;  // unreachable
  }
  // Rarest first over the live replica counts, with the same reservoir
  // tie-break idiom (and the same rng draw sequence) as
  // BlockSet::pick_rarest_useful.
  BlockId best = kNoBlock;
  std::uint32_t best_freq = 0;
  std::uint32_t ties = 0;
  for (std::uint32_t w = 0; w < stride_; ++w) {
    if (scan.pc[w] == 0) continue;
    std::uint64_t diff = scan.words[w];
    while (diff != 0) {
      const auto b = static_cast<BlockId>((w << 6) +
                                          static_cast<std::uint32_t>(std::countr_zero(diff)));
      diff &= diff - 1;
      const std::uint32_t f = freq_[b];
      if (best == kNoBlock || f < best_freq) {
        best = b;
        best_freq = f;
        ties = 1;
      } else if (f == best_freq) {
        ++ties;
        if (rng.below(ties) == 0) best = b;
      }
    }
  }
  return best;
}

void Engine::generate_node(std::uint64_t tick_base, NodeId u, std::vector<Transfer>& out,
                           DiffScan& scan) {
  if (active_[u] == 0 || count_[u] == 0) return;
  const std::uint32_t slots = up_caps_[u];
  if (slots == 0) return;
  const std::uint32_t deg = topo_->degree(u);
  if (deg == 0) return;

  // This node's RNG stream is a pure function of (seed, tick, node), so the
  // intents it emits do not depend on which shard/thread runs it.
  Rng rng(trial_seed(tick_base, u));
  const std::size_t first_intent = out.size();
  const bool credit = opt_.credit_limit != 0 && u != kServer;
  const std::uint64_t* su = row(u);

  for (std::uint32_t slot = 0; slot < slots; ++slot) {
    NodeId target = kNoNode;
    for (std::uint32_t probe = 0; probe < opt_.max_probes; ++probe) {
      const NodeId v = topo_->neighbor(u, rng.below(deg));
      if (v == u || v == kServer) continue;  // nothing flows into the server
      if (active_[v] == 0 || count_[v] >= k_) continue;
      // At most one upload per (u, v) pair per tick. Together with the
      // pre-tick ledger check below this keeps every admitted stream inside
      // CreditLimited::check_tick: the tick's delta on an ordered pair is in
      // {-1, 0, +1}, and +1 was pre-checked against the limit.
      bool repeat = false;
      for (std::size_t i = first_intent; i < out.size(); ++i) {
        if (out[i].to == v) { repeat = true; break; }
      }
      if (repeat) continue;
      if (credit &&
          ledger_.net(u, v) + 1 > static_cast<std::int64_t>(opt_.credit_limit)) {
        continue;
      }
      // Fused scan: a successful usefulness test records the per-word diffs
      // and popcounts that block selection rank-selects over, so the pick
      // below never re-walks the possession rows.
      if (!scan_diff(su, row(v), scan)) continue;
      target = v;
      break;
    }
    if (target == kNoNode) break;  // out of luck: idle for the rest of the tick
    out.push_back(Transfer{u, target, pick_from_scan(scan, rng)});
  }
}

void Engine::plan_phases(Tick tick, std::vector<Transfer>& out, ThreadPool* pool) {
  const std::uint64_t tick_base = trial_seed(seed_, tick);
  const std::uint32_t shard = opt_.shard_nodes;
  const auto num_shards = static_cast<std::uint32_t>(shard_intents_.size());
  const bool timing = opt_.collect_phase_timings;
  auto stamp = std::chrono::steady_clock::time_point{};
  if (timing) stamp = std::chrono::steady_clock::now();

  // Phase 1: intent generation, sharded by sender node range. Shards only
  // read the (frozen) swarm state and write their own vector + scratch, so
  // running them on a pool is observationally identical to the serial loop.
  const std::function<void(std::uint32_t)> generate = [&](std::uint32_t s) {
    auto& intents = shard_intents_[s];
    intents.clear();
    const auto first = static_cast<NodeId>(static_cast<std::uint64_t>(s) * shard);
    const auto last = static_cast<NodeId>(
        std::min<std::uint64_t>(n_, static_cast<std::uint64_t>(first) + shard));
    for (NodeId u = first; u < last; ++u) {
      generate_node(tick_base, u, intents, gen_scratch_[s]);
    }
  };
  for_shards(pool, num_shards, generate);

  if (timing) {
    timings_.generate_seconds += seconds_since(stamp);
    stamp = std::chrono::steady_clock::now();
  }

  // Phase 2: receiver-sharded merge. Every cross-sender constraint —
  // download capacity, one delivery per (receiver, block) — is keyed on the
  // receiver alone, so receiver shards admit independently. Each shard sees
  // its receivers' intents in canonical node order (the counting-sort
  // scatter below is order-preserving), so its decisions match the
  // historical single-pass serial merge exactly; the accepted stream is
  // then reconstructed from per-intent accept flags in canonical order.
  const std::uint32_t R = recv_shards_;

  // 2a. Canonical-stream offsets per intent shard (serial, O(S)).
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    intent_offsets_[s + 1] = intent_offsets_[s] + shard_intents_[s].size();
  }
  const std::size_t total_wide = intent_offsets_[num_shards];
  assert(total_wide <= std::numeric_limits<std::uint32_t>::max());
  const auto total = static_cast<std::uint32_t>(total_wide);
  std::fill(bucket_offsets_.begin(), bucket_offsets_.end(), 0u);
  if (total == 0) {
    if (timing) timings_.merge_seconds += seconds_since(stamp);
    return;
  }

  // 2b. Count intents per (intent shard, receiver shard).
  for_shards(pool, num_shards, [&](std::uint32_t s) {
    std::uint32_t* cnt = scatter_pos_.data() + static_cast<std::size_t>(s) * R;
    std::fill_n(cnt, R, 0u);
    for (const Transfer& tr : shard_intents_[s]) ++cnt[recv_shard_of(tr.to)];
  });

  // 2c. Bucket offsets; counts become scatter cursors (serial, O(S * R)).
  std::uint32_t running = 0;
  for (std::uint32_t r = 0; r < R; ++r) {
    bucket_offsets_[r] = running;
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      std::uint32_t& cell = scatter_pos_[static_cast<std::size_t>(s) * R + r];
      const std::uint32_t c = cell;
      cell = running;
      running += c;
    }
  }
  bucket_offsets_[R] = running;  // == total

  // 2d. Scatter intents into receiver buckets; cursor ranges are disjoint
  // by construction, and walking intent shards in ascending s keeps each
  // bucket in canonical stream order.
  if (bucket_.size() < total) bucket_.resize(total);
  if (accept_.size() < total) accept_.resize(total);
  for_shards(pool, num_shards, [&](std::uint32_t s) {
    std::uint32_t* cur = scatter_pos_.data() + static_cast<std::size_t>(s) * R;
    auto g = static_cast<std::uint32_t>(intent_offsets_[s]);
    for (const Transfer& tr : shard_intents_[s]) {
      bucket_[cur[recv_shard_of(tr.to)]++] = MergeItem{tr, g++};
    }
  });

  // 2e. Admission per receiver shard: download capacity + per-(receiver,
  // block) dedup, each shard with its own epoch-stamped table and its own
  // slice of down_used_/down_stamp_.
  for_shards(pool, R, [&](std::uint32_t r) {
    const std::uint32_t lo = bucket_offsets_[r];
    const std::uint32_t hi = bucket_offsets_[r + 1];
    PairTable& delivered = delivered_[r];
    delivered.begin_tick(hi - lo);
    for (std::uint32_t i = lo; i < hi; ++i) {
      const Transfer& tr = bucket_[i].tr;
      if (down_stamp_[tr.to] != tick) {
        down_stamp_[tr.to] = tick;
        down_used_[tr.to] = 0;
      }
      const std::uint32_t dcap = down_caps_[tr.to];
      bool admit = dcap == kUnlimited || down_used_[tr.to] < dcap;
      if (admit) admit = delivered.insert(delivery_key(tr.to, tr.block));
      if (admit) ++down_used_[tr.to];
      accept_[bucket_[i].idx] = admit ? 1 : 0;
    }
  });

  // 2f. Emit the accepted subsequence in canonical order: count accepted
  // per intent shard, prefix, then scatter into the output slots.
  for_shards(pool, num_shards, [&](std::uint32_t s) {
    std::uint32_t acc = 0;
    for (std::size_t g = intent_offsets_[s]; g < intent_offsets_[s + 1]; ++g) {
      acc += accept_[g];
    }
    emit_offsets_[s + 1] = acc;
  });
  emit_offsets_[0] = 0;
  for (std::uint32_t s = 0; s < num_shards; ++s) emit_offsets_[s + 1] += emit_offsets_[s];
  const std::size_t base = out.size();
  out.resize(base + emit_offsets_[num_shards]);
  for_shards(pool, num_shards, [&](std::uint32_t s) {
    auto g = intent_offsets_[s];
    std::size_t w = base + emit_offsets_[s];
    for (const Transfer& tr : shard_intents_[s]) {
      if (accept_[g++]) out[w++] = tr;
    }
  });

  if (timing) timings_.merge_seconds += seconds_since(stamp);
}

void Engine::plan(Tick tick, std::vector<Transfer>& out) {
  consumed_ = true;  // lockstep driving began; run() would not start fresh
  plan_phases(tick, out, nullptr);
}

void Engine::apply(Tick tick, std::span<const Transfer> accepted) {
  const bool timing = opt_.collect_phase_timings;
  auto stamp = std::chrono::steady_clock::time_point{};
  if (timing) stamp = std::chrono::steady_clock::now();
  for (const Transfer& tr : accepted) {
    std::uint64_t& word = row(tr.to)[tr.block >> 6];
    const std::uint64_t bit = 1ULL << (tr.block & 63);
    assert((word & bit) == 0 && "duplicate delivery slipped through the merge");
    word |= bit;
    ++freq_[tr.block];
    ++uploads_per_node_[tr.from];
    if (++count_[tr.to] == k_) {
      completion_[tr.to] = tick;
      --num_incomplete_;
      if (cfg_.depart_on_complete) leaving_.push_back(tr.to);
    }
    // Mirrors CreditLimited::commit_tick: server-involved transfers never
    // touch the ledger.
    if (opt_.credit_limit != 0 && tr.from != kServer) ledger_.record(tr.from, tr.to);
  }
  if (timing) timings_.apply_seconds += seconds_since(stamp);
}

void Engine::apply_merged(Tick tick, std::span<const Transfer> accepted,
                          ThreadPool* pool) {
  const bool timing = opt_.collect_phase_timings;
  auto stamp = std::chrono::steady_clock::time_point{};
  if (timing) stamp = std::chrono::steady_clock::now();
  if (accepted.empty()) {
    if (timing) timings_.apply_seconds += seconds_since(stamp);
    return;
  }
  const std::uint32_t R = recv_shards_;

  // 3a. Receiver-side commit from the merge buckets: possession bits,
  // per-node counts, completion ticks and the depart-on-complete queue.
  // Shard r owns its receivers' rows and counters exclusively; completions
  // accumulate per shard and fold into num_incomplete_ afterwards.
  for_shards(pool, R, [&](std::uint32_t r) {
    std::uint32_t* freq_row = freq_scratch_.shard(r);
    auto& leaving = leaving_shards_[r];
    leaving.clear();
    std::uint32_t completions = 0;
    for (std::uint32_t i = bucket_offsets_[r]; i < bucket_offsets_[r + 1]; ++i) {
      if (accept_[bucket_[i].idx] == 0) continue;
      const Transfer& tr = bucket_[i].tr;
      std::uint64_t& word = row(tr.to)[tr.block >> 6];
      const std::uint64_t bit = 1ULL << (tr.block & 63);
      assert((word & bit) == 0 && "duplicate delivery slipped through the merge");
      word |= bit;
      ++freq_row[tr.block];
      if (++count_[tr.to] == k_) {
        completion_[tr.to] = tick;
        ++completions;
        if (cfg_.depart_on_complete) leaving.push_back(tr.to);
      }
    }
    completions_scratch_[r] = completions;
  });
  for (std::uint32_t r = 0; r < R; ++r) {
    num_incomplete_ -= completions_scratch_[r];
    completions_scratch_[r] = 0;
    if (cfg_.depart_on_complete) {
      leaving_.insert(leaving_.end(), leaving_shards_[r].begin(),
                      leaving_shards_[r].end());
    }
  }

  // 3b. Fold per-shard frequency deltas into freq_ in fixed shard order.
  freq_scratch_.reduce_into(freq_.data(), pool);

  // 3c. Sender-side upload accounting. The accepted stream is non-
  // decreasing in `from` (canonical order is sender node order), so sender
  // shards find their contiguous slice by binary search and own their
  // uploads_per_node_ range exclusively.
  for_shards(pool, R, [&](std::uint32_t r) {
    const NodeId first = static_cast<NodeId>(r) * recv_width_;
    const NodeId last = static_cast<NodeId>(
        std::min<std::uint64_t>(n_, static_cast<std::uint64_t>(first) + recv_width_));
    const auto lo = std::partition_point(
        accepted.begin(), accepted.end(),
        [&](const Transfer& t) { return t.from < first; });
    const auto hi = std::partition_point(
        lo, accepted.end(), [&](const Transfer& t) { return t.from < last; });
    for (auto it = lo; it != hi; ++it) ++uploads_per_node_[it->from];
  });

  // 3d. Ledger commit stays serial: the pairwise map is shared and the pass
  // only runs in credit mode. Stream order matches apply()'s, so the two
  // commit paths build the identical ledger.
  if (opt_.credit_limit != 0) {
    for (const Transfer& tr : accepted) {
      if (tr.from != kServer) ledger_.record(tr.from, tr.to);
    }
  }
  if (timing) timings_.apply_seconds += seconds_since(stamp);
}

void Engine::deactivate(NodeId node) {
  if (node == kServer || node >= n_) {
    throw std::invalid_argument("scale: cannot deactivate node " + std::to_string(node));
  }
  if (active_[node] == 0) return;
  active_[node] = 0;
  ++num_departed_;
  active_slots_ -= up_caps_[node];
  const std::uint64_t* r = row(node);
  for (std::uint32_t w = 0; w < stride_; ++w) {
    std::uint64_t held = r[w];
    while (held != 0) {
      const auto b = (w << 6) + static_cast<std::uint32_t>(std::countr_zero(held));
      held &= held - 1;
      --freq_[b];
    }
  }
  if (count_[node] < k_) --num_incomplete_;
}

RunResult Engine::run(unsigned jobs) {
  if (consumed_) {
    throw std::logic_error("scale::Engine::run: engine state already consumed");
  }
  consumed_ = true;
  ThreadPool pool(jobs);

  // From here down the control flow replicates core's run_with_state line
  // for line (departure application, depart_on_complete timing, the stall
  // window arithmetic, final bookkeeping) so that a mirrored core run
  // produces a field-for-field identical RunResult.
  const Tick cap = cfg_.max_ticks != 0 ? cfg_.max_ticks
                                       : default_tick_cap(cfg_.num_nodes, cfg_.num_blocks);
  std::vector<std::pair<Tick, NodeId>> departures = cfg_.departures;
  std::sort(departures.begin(), departures.end());
  std::size_t next_departure = 0;

  RunResult result;
  std::uint64_t window_sum = 0;
  std::uint64_t window_slots_sum = 0;

  Tick tick = 0;
  while (num_incomplete_ != 0 && tick < cap) {
    ++tick;
    while (next_departure < departures.size() && departures[next_departure].first <= tick) {
      deactivate(departures[next_departure].second);
      ++next_departure;
    }
    if (cfg_.depart_on_complete) {
      for (const NodeId c : leaving_) deactivate(c);
      leaving_.clear();
    }
    if (num_incomplete_ == 0) break;  // survivors may already all be done

    accepted_.clear();
    plan_phases(tick, accepted_, &pool);
    apply_merged(tick, accepted_, &pool);

    result.total_transfers += accepted_.size();
    result.uploads_per_tick.push_back(accepted_.size());
    result.active_slots_per_tick.push_back(active_slots_);
    if (cfg_.record_trace) result.trace.push_back(accepted_);

    if (cfg_.stall_window != 0) {
      window_sum += accepted_.size();
      window_slots_sum += active_slots_;
      if (tick > cfg_.stall_window) {
        window_sum -= result.uploads_per_tick[tick - cfg_.stall_window - 1];
        window_slots_sum -= result.active_slots_per_tick[tick - cfg_.stall_window - 1];
      }
      if (tick >= cfg_.stall_window &&
          static_cast<double>(window_sum) <
              cfg_.stall_utilization * static_cast<double>(window_slots_sum)) {
        result.stalled = true;
        break;
      }
    }
  }

  result.ticks_executed = tick;
  result.completed = num_incomplete_ == 0;
  result.departed = num_departed_;
  result.client_completion.assign(completion_.begin() + 1, completion_.end());
  if (result.completed) {
    result.completion_tick = *std::max_element(result.client_completion.begin(),
                                               result.client_completion.end());
  }
  result.uploads_per_node = std::move(uploads_per_node_);
  return result;
}

std::uint64_t Engine::state_bytes() const {
  std::uint64_t bytes = bits_.size() * sizeof(std::uint64_t);
  bytes += count_.size() * sizeof(std::uint32_t);
  bytes += completion_.size() * sizeof(Tick);
  bytes += active_.size();
  bytes += freq_.size() * sizeof(std::uint32_t);
  bytes += up_caps_.size() * sizeof(std::uint32_t);
  bytes += down_caps_.size() * sizeof(std::uint32_t);
  bytes += uploads_per_node_.size() * sizeof(Count);
  bytes += down_used_.size() * sizeof(std::uint32_t);
  bytes += down_stamp_.size() * sizeof(Tick);
  // Tick scratch: the per-shard intent vectors, the admission tables, the
  // merge buckets/flags/offsets, apply scratch and the accepted stream all
  // persist between ticks at high-water capacity — at n = 10^6 they are a
  // triple-digit-MiB chunk of the real footprint the old accounting
  // omitted (it reported 161 MiB against a 503 MiB RSS).
  for (const auto& intents : shard_intents_) {
    bytes += intents.capacity() * sizeof(Transfer);
  }
  for (const DiffScan& scan : gen_scratch_) {
    bytes += scan.words.capacity() * sizeof(std::uint64_t) +
             scan.pc.capacity() * sizeof(std::uint32_t);
  }
  for (const PairTable& table : delivered_) bytes += table.memory_bytes();
  bytes += intent_offsets_.capacity() * sizeof(std::size_t);
  bytes += scatter_pos_.capacity() * sizeof(std::uint32_t);
  bytes += bucket_offsets_.capacity() * sizeof(std::uint32_t);
  bytes += bucket_.capacity() * sizeof(MergeItem);
  bytes += accept_.capacity();
  bytes += emit_offsets_.capacity() * sizeof(std::uint32_t);
  bytes += freq_scratch_.memory_bytes();
  for (const auto& leaving : leaving_shards_) bytes += leaving.capacity() * sizeof(NodeId);
  bytes += completions_scratch_.capacity() * sizeof(std::uint32_t);
  bytes += leaving_.capacity() * sizeof(NodeId);
  bytes += accepted_.capacity() * sizeof(Transfer);
  bytes += ledger_.memory_bytes();
  bytes += topo_->memory_bytes();
  return bytes;
}

}  // namespace pob::scale
