// Deterministic scenario space for the fuzzer: a Scenario is plain data
// sampled as a pure function of (base seed, index), buildable into a
// (config, scheduler, mechanism) triple, runnable through the differential
// oracle, and shrinkable by the minimizer. Sampling is legal-by-construction
// — every sampled scenario is one the engines must agree on and complete (or
// honestly stall); any violation or disagreement is a bug.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "pob/check/oracle.h"
#include "pob/core/engine.h"
#include "pob/core/scheduler.h"
#include "pob/overlay/overlay.h"
#include "pob/scale/engine.h"
#include "pob/scale/stream/stream_engine.h"

namespace pob::check {

enum class SchedulerKind : std::uint8_t {
  kPipeline,
  kMulticastTree,
  kBinomialTree,
  kBinomialPipeline,
  kRiffle,
  kStripedTrees,
  kMultiServer,
  kRandomized,
  kCreditRandomized,
  kRotating,
  kTitForTat,
};

enum class OverlayKind : std::uint8_t { kComplete, kRegular, kHypercube, kRing, kKaryTree };

enum class FaultKind : std::uint8_t {
  kNone,
  /// Off-by-one forwarding: after the first planned transfer s -> r, append
  /// r forwarding the same block onward in the *same* tick — illegal under
  /// §2.1 ("a node cannot begin transmitting a block until it has received
  /// that block in its entirety"), and exactly the bug class the oracle must
  /// catch.
  kSameTickForward,
};

/// Which engine runs the scenario. kCore is the classic path (scheduler +
/// core::Engine + reference oracle). kScale runs the mega-swarm engine three
/// ways — serial, multi-threaded, and mirrored through core::Engine + the
/// reference oracle via scale::MirrorScheduler — and requires bit-identical
/// results from all of them. Scale scenarios may use node counts well above
/// the core sampler's cap (the SoA engine exists for exactly that).
enum class EngineKind : std::uint8_t { kCore, kScale };

const char* to_string(SchedulerKind kind);
const char* to_string(OverlayKind kind);
const char* to_string(EngineKind kind);

struct Scenario {
  std::uint64_t seed = 0;  ///< scheduler / overlay randomness
  EngineKind engine = EngineKind::kCore;
  SchedulerKind scheduler = SchedulerKind::kRandomized;
  OverlayKind overlay = OverlayKind::kComplete;
  MechanismSpec mechanism;
  std::uint32_t n = 8;
  std::uint32_t k = 4;
  std::uint32_t upload = 1;
  std::uint32_t download = kUnlimited;  ///< d in {u, 2u, unlimited}
  std::uint32_t server_upload = 0;      ///< 0 = same as upload
  std::uint32_t arity = 2;              ///< multicast tree
  std::uint32_t stripes = 2;            ///< striped trees
  std::uint32_t servers = 2;            ///< multi-server m
  std::uint32_t degree = 6;             ///< regular overlay / rotation
  Tick period = 8;                      ///< rotation period
  std::vector<std::uint32_t> upload_caps;    ///< heterogeneous (randomized only)
  std::vector<std::uint32_t> download_caps;  ///< heterogeneous (randomized only)
  std::vector<std::pair<Tick, NodeId>> departures;
  bool drop_on_churn = false;
  bool depart_on_complete = false;
  FaultKind fault = FaultKind::kNone;

  // --- Stream axis (pob/scale/stream; kScale + kRandomized only) -------
  // A stream scenario runs the hybrid tick+event driver three ways (serial,
  // jobs=4, flipped scan kernel) and mirrors it through pob/async; arrivals
  // replace config departures, rate classes replace the static hetero caps.
  bool stream = false;
  scale::stream::ArrivalPattern arrival_pattern =
      scale::stream::ArrivalPattern::kFlashCrowd;
  std::uint32_t rate_class_count = 0;  ///< 0 = uniform capacities
  std::uint32_t rate_changes = 0;      ///< mid-run kRate events (needs classes)
  std::uint32_t playback_window = 0;   ///< 0 = random demand, else window W
  std::uint32_t startup_blocks = 2;
  Tick playback_interval = 1;
  bool hard_deadlines = false;

  EngineConfig to_config() const;
  std::string describe() const;
  /// Ready-to-paste gtest case reproducing this scenario.
  std::string to_gtest(const std::string& diagnosis) const;
};

/// Pure function of (base, index): the same pair always yields the same
/// scenario, at any job count, on any platform.
Scenario sample_scenario(std::uint64_t base_seed, std::uint32_t index);

/// Clamps a (possibly mutated) scenario back into the legal space the
/// sampler guarantees; the minimizer calls this after every shrink step.
void sanitize(Scenario& sc);

/// A built scenario: the config plus live scheduler/mechanism objects. The
/// scheduler may hold a precheck pointer into `mechanism`, so keep both
/// alive together and use each build for exactly one run (schedulers and
/// ledgers are stateful).
struct BuiltScenario {
  EngineConfig config;
  std::shared_ptr<const Overlay> overlay;  // kept alive for the scheduler
  std::unique_ptr<Mechanism> mechanism;    // fast-side instance (may be null)
  std::unique_ptr<Scheduler> scheduler;
};

BuiltScenario build_scenario(const Scenario& sc);

/// Scale-engine builders for a kScale scenario, shared between the fuzzer
/// runner and the golden-corpus renderer: the CSR topology (mirroring
/// build_scenario's overlay switch on the same seed-derived rng stream) and
/// the ScaleOptions — including the SchedKind mapping: kBinomialPipeline →
/// binomial-pipeline, kBinomialPipeline + CyclicBarter → triangular-barter,
/// kRiffle → riffle-pipeline, anything else → randomized (credit-limited
/// when the mechanism is CreditLimited).
std::shared_ptr<const scale::Topology> make_scale_topology(const Scenario& sc);
scale::ScaleOptions make_scale_options(const Scenario& sc);

/// The StreamSpec a stream scenario (sc.stream) runs: config + topology +
/// options as above, workload pattern parameters derived from the scenario
/// seed, and the demand model from the playback fields. Shared between the
/// fuzzer runner, the golden-corpus renderer and the repro tests.
scale::stream::StreamSpec make_stream_spec(const Scenario& sc);

struct ScenarioOutcome {
  bool ok = true;
  std::string diagnosis;  ///< first failed check (empty when ok)
};

/// Runs the scenario through the differential oracle and asserts the paper
/// invariants on the fast result: Theorem 1 is never beaten, deterministic
/// schedules hit their closed forms, and no violation occurs at all (the
/// sampler only emits legal scenarios — so with fault injection on, the
/// injected bug surfaces here as a failure).
ScenarioOutcome run_scenario(const Scenario& sc);

}  // namespace pob::check
