// E19 — upload-load fairness across algorithms.
//
// Barter exists to make contribution compulsory; this table quantifies how
// evenly each algorithm spreads upload work across clients (Gini over
// per-client upload counts; the server is excluded). Deterministic optimal
// schedules and barter mechanisms should be near-equal; tit-for-tat
// concentrates load on the unchoke cliques.

#include <iostream>
#include <memory>

#include "bench_util.h"
#include "pob/analysis/bounds.h"
#include "pob/core/metrics.h"
#include "pob/mech/barter.h"
#include "pob/rand/tit_for_tat.h"
#include "pob/sched/binomial_pipeline.h"
#include "pob/sched/riffle_pipeline.h"

namespace pob::bench {
namespace {

int main_impl(int argc, char** argv) {
  const Args args(argc, argv);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 256));
  const auto k = static_cast<std::uint32_t>(args.get_int("k", 255));

  Table table({"algorithm", "T", "uploads/client mean", "min", "max", "gini"});
  const auto report = [&](const std::string& name, const RunResult& r) {
    const FairnessSummary f = upload_fairness(r);
    table.add_row({name,
                   r.completed ? std::to_string(r.completion_tick) : "censored",
                   fmt(f.mean, 1), fmt(f.min, 0), fmt(f.max, 0), fmt(f.gini, 3)});
  };

  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  {
    BinomialPipelineScheduler sched(n, k);
    report("binomial pipeline", run(cfg, sched));
  }
  {
    EngineConfig barter_cfg = cfg;
    barter_cfg.download_capacity = 2;
    RifflePipelineScheduler sched(n, k, 1, 2);
    StrictBarter mech;
    report("riffle (strict barter)", run(barter_cfg, sched, &mech));
  }
  {
    RandomizedScheduler sched(std::make_shared<CompleteOverlay>(n), {}, Rng(1));
    report("randomized cooperative", run(cfg, sched));
  }
  {
    auto cr = make_credit_randomized(std::make_shared<CompleteOverlay>(n), {}, Rng(2), 1);
    report("randomized + credit(1)", run(cfg, *cr.scheduler, cr.mechanism.get()));
  }
  {
    Rng grng(3);
    auto overlay = std::make_shared<GraphOverlay>(make_random_regular(n, 20, grng));
    TitForTatScheduler sched(overlay, {}, Rng(4));
    report("tit-for-tat (deg 20)", run(cfg, sched));
  }
  std::cout << "# E19: upload-load fairness across clients (n = " << n
            << ", k = " << k << "; total work = (n-1)*k = "
            << static_cast<std::uint64_t>(n - 1) * k
            << " uploads shared by the server and " << n - 1 << " clients)\n";
  emit(args, table);
  return 0;
}

}  // namespace
}  // namespace pob::bench

int main(int argc, char** argv) { return pob::bench::main_impl(argc, argv); }
