#include "pob/scale/stream/workload.h"

#include <algorithm>
#include <stdexcept>

#include "pob/core/rng.h"
#include "pob/exp/parallel.h"

namespace pob::scale::stream {

const char* arrival_pattern_name(ArrivalPattern pattern) {
  switch (pattern) {
    case ArrivalPattern::kAllAtStart: return "all-at-start";
    case ArrivalPattern::kPoisson: return "poisson";
    case ArrivalPattern::kFlashCrowd: return "flash-crowd";
    case ArrivalPattern::kBurst: return "burst";
  }
  return "?";
}

namespace {

// Geometric gap in 1/16-tick subticks with success probability
// 1 / mean_gap16 per subtick — integer compare against a fixed-point
// threshold, no floating point, so the draw sequence is platform-exact.
// Capped at 64x the mean (the cap truncates a ~e^-64 tail).
std::uint64_t geometric_gap16(Rng& rng, std::uint32_t mean_gap16) {
  const std::uint64_t threshold = ~std::uint64_t{0} / mean_gap16;
  const std::uint64_t cap = std::uint64_t{64} * mean_gap16;
  std::uint64_t gap = 0;
  while (gap < cap && rng.next() >= threshold) ++gap;
  return gap;
}

}  // namespace

WorkloadPlan build_workload(const StreamWorkload& workload, const EngineConfig& config,
                            std::uint64_t seed) {
  const std::uint32_t n = config.num_nodes;
  if (n < 2) throw std::invalid_argument("stream workload: num_nodes < 2");

  WorkloadPlan plan;
  plan.arrival.assign(n, 0);

  // Distinct derived streams per concern, so adding rate churn cannot
  // perturb the arrival pattern and vice versa.
  Rng arrival_rng(trial_seed(seed, 0));
  Rng class_rng(trial_seed(seed, 1));
  Rng churn_rng(trial_seed(seed, 2));

  switch (workload.arrivals) {
    case ArrivalPattern::kAllAtStart:
      break;
    case ArrivalPattern::kPoisson: {
      if (workload.mean_gap16 == 0) {
        throw std::invalid_argument("stream workload: mean_gap16 == 0");
      }
      std::uint64_t subtick = 16;  // client 1's baseline: tick 1
      for (NodeId c = 1; c < n; ++c) {
        subtick += geometric_gap16(arrival_rng, workload.mean_gap16);
        plan.arrival[c] = static_cast<Tick>(subtick / 16);
      }
      break;
    }
    case ArrivalPattern::kFlashCrowd: {
      if (workload.flash_width == 0 || workload.flash_pct > 100 ||
          workload.flash_start < 1) {
        throw std::invalid_argument("stream workload: malformed flash crowd");
      }
      const Tick background =
          workload.flash_start + 4 * static_cast<Tick>(workload.flash_width);
      for (NodeId c = 1; c < n; ++c) {
        if (arrival_rng.below(100) < workload.flash_pct) {
          plan.arrival[c] = workload.flash_start + arrival_rng.below(workload.flash_width);
        } else {
          plan.arrival[c] = 1 + arrival_rng.below(background);
        }
      }
      break;
    }
    case ArrivalPattern::kBurst: {
      if (workload.burst_size == 0 || workload.burst_period == 0) {
        throw std::invalid_argument("stream workload: malformed burst");
      }
      for (NodeId c = 1; c < n; ++c) {
        plan.arrival[c] =
            1 + ((c - 1) / workload.burst_size) * workload.burst_period;
      }
      break;
    }
  }
  for (NodeId c = 1; c < n; ++c) {
    if (plan.arrival[c] >= 1) {
      plan.events.push_back(
          {plan.arrival[c], c, EventKind::kArrive, 0, 0, kNoBlock});
      ++plan.pending_arrivals;
      plan.last_arrival = std::max(plan.last_arrival, plan.arrival[c]);
    }
  }

  if (!workload.rate_classes.empty()) {
    std::uint64_t total_weight = 0;
    for (const RateClass& rc : workload.rate_classes) {
      if (rc.up == 0 && rc.down == 0) {
        throw std::invalid_argument("stream workload: zero-capacity class");
      }
      if (rc.down != kUnlimited && rc.down < rc.up) {
        throw std::invalid_argument("stream workload: class with down < up");
      }
      if (rc.down == 0) {
        throw std::invalid_argument("stream workload: class with down == 0");
      }
      total_weight += rc.weight;
    }
    if (total_weight == 0) {
      throw std::invalid_argument("stream workload: class weights sum to 0");
    }
    const auto draw_class = [&](Rng& rng) -> const RateClass& {
      std::uint64_t r = rng.next() % total_weight;
      for (const RateClass& rc : workload.rate_classes) {
        if (r < rc.weight) return rc;
        r -= rc.weight;
      }
      return workload.rate_classes.back();  // unreachable
    };
    plan.initial_up.assign(n, 0);
    plan.initial_down.assign(n, 0);
    const std::uint32_t server_up = config.server_upload_capacity != 0
                                        ? config.server_upload_capacity
                                        : config.upload_capacity;
    plan.initial_up[kServer] = server_up;
    plan.initial_down[kServer] = kUnlimited;
    for (NodeId c = 1; c < n; ++c) {
      const RateClass& rc = draw_class(class_rng);
      plan.initial_up[c] = rc.up;
      plan.initial_down[c] = rc.down;
    }
    if (workload.rate_changes != 0) {
      if (workload.rate_change_horizon < 1) {
        throw std::invalid_argument("stream workload: rate_change_horizon < 1");
      }
      for (std::uint32_t i = 0; i < workload.rate_changes; ++i) {
        const Tick t = 1 + churn_rng.below(workload.rate_change_horizon);
        const NodeId c = 1 + churn_rng.below(n - 1);
        const RateClass& rc = draw_class(churn_rng);
        plan.events.push_back({t, c, EventKind::kRate, rc.up, rc.down, kNoBlock});
      }
    }
  } else if (workload.rate_changes != 0) {
    throw std::invalid_argument("stream workload: rate_changes without rate_classes");
  }

  return plan;
}

}  // namespace pob::scale::stream
