#include "pob/exp/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace pob {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << std::setw(static_cast<int>(width[c])) << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (const std::size_t w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string fmt_ci(double mean, double ci, int precision) {
  return fmt(mean, precision) + " +- " + fmt(ci, precision);
}

}  // namespace pob
