#include "pob/sched/multicast_tree.h"

#include <algorithm>
#include <stdexcept>

namespace pob {

MulticastTreeScheduler::MulticastTreeScheduler(std::uint32_t num_nodes,
                                               std::uint32_t num_blocks,
                                               std::uint32_t arity)
    : n_(num_nodes), k_(num_blocks), arity_(arity) {
  if (n_ < 2) throw std::invalid_argument("multicast-tree: need >= 2 nodes");
  if (arity_ < 1) throw std::invalid_argument("multicast-tree: need arity >= 1");
  next_block_.assign(n_, 0);
  next_child_.assign(n_, 0);
}

void MulticastTreeScheduler::plan_tick(Tick /*tick*/, const SwarmState& state,
                                       std::vector<Transfer>& out) {
  // Each node with forwarding work sends its cursor block to its cursor
  // child, then advances child-major within the block. A node whose cursor
  // block has not arrived yet stalls (the paper's store-and-forward rule).
  for (NodeId x = 0; x < n_; ++x) {
    // Number of real children of x: ids arity*x+1 .. arity*x+arity, clipped.
    const std::uint64_t first_child = static_cast<std::uint64_t>(arity_) * x + 1;
    if (first_child >= n_) continue;  // leaf
    const auto num_children =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(arity_, n_ - first_child));
    if (next_child_[x] >= num_children) {
      next_block_[x] += 1;
      next_child_[x] = 0;
    }
    if (next_block_[x] >= k_) continue;  // all blocks forwarded
    const BlockId b = next_block_[x];
    if (!state.has(x, b)) continue;  // stall until the block arrives
    out.push_back({x, static_cast<NodeId>(first_child + next_child_[x]), b});
    next_child_[x] += 1;
  }
}

}  // namespace pob
