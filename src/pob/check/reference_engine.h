// The reference half of the differential oracle: a deliberately slow,
// obviously-correct re-implementation of the §2.1 bandwidth / data-transfer
// model and of each §3 mechanism's legality predicate.
//
// The fast engine (pob/core/engine.cc) validates schedules with incremental
// indexes — swap-removed incomplete lists, tick-stamped scratch, cached
// replica counts. A bug there re-validates itself, because every other test
// in the repo trusts the same code. The reference engine shares *no* code
// and no data structures with it: possession is a std::set per node, replica
// counts are recounted from scratch every tick, mechanism ledgers are plain
// std::map, and cyclic-barter clearing is a BFS reachability check instead
// of the fast engine's path-clearing DFS. It replays a recorded schedule
// transfer-by-transfer and must agree with the fast engine on every
// accept/reject decision, per-tick replica count, and the final RunResult.

#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "pob/core/engine.h"
#include "pob/core/mechanism.h"
#include "pob/core/scheduler.h"

namespace pob::check {

/// Which §3 mechanism a run is validated under, as plain data — the fast
/// side builds a pob::Mechanism from it, the reference side interprets it
/// with its own independent predicates.
struct MechanismSpec {
  enum class Kind { kNone, kStrictBarter, kCreditLimited, kCyclicBarter };
  Kind kind = Kind::kNone;
  std::uint32_t credit_limit = 1;
  std::uint32_t max_cycle_len = 3;

  std::string describe() const;
};

/// Fast-side instance for the spec (nullptr for kNone).
std::unique_ptr<Mechanism> make_mechanism(const MechanismSpec& spec);

/// What the fast engine was *asked* to do on one tick, captured before any
/// validation ran, plus two start-of-tick observations of the fast engine's
/// incremental state that the reference recomputes from scratch.
struct TickRecord {
  Tick tick = 0;
  std::vector<Transfer> planned;
  std::uint64_t blocks_held_at_start = 0;  ///< SwarmState::total_blocks_held()
  std::uint64_t freq_fingerprint = 0;      ///< fingerprint_frequencies(block_frequency())
};

/// FNV-1a over the per-block replica counts.
std::uint64_t fingerprint_frequencies(std::span<const std::uint32_t> freq);

/// Wraps the real scheduler and records every planned tick; the engine never
/// knows it is being watched, so recording cannot perturb the run. The log
/// survives an EngineViolation (which destroys the fast RunResult), so the
/// oracle can still see the schedule that triggered it.
class RecordingScheduler final : public Scheduler {
 public:
  explicit RecordingScheduler(Scheduler& inner) : inner_(&inner) {}

  std::string_view name() const override { return inner_->name(); }
  void plan_tick(Tick tick, const SwarmState& state, std::vector<Transfer>& out) override;

  const std::vector<TickRecord>& log() const { return log_; }

 private:
  Scheduler* inner_;
  std::vector<TickRecord> log_;
};

/// Everything the reference engine concludes from a recorded schedule.
struct ReferenceResult {
  // Accept/reject decision: set when the reference rejects the schedule (the
  // fast engine must have thrown EngineViolation on the same tick).
  bool violated = false;
  Tick violation_tick = 0;
  std::string violation_message;

  // Set when the reference loop wanted a tick the log does not contain —
  // the fast engine stopped earlier than the reference thinks it should.
  bool ran_out_of_log = false;

  // Mirror of RunResult, recomputed with naive data structures.
  bool completed = false;
  bool stalled = false;
  Tick completion_tick = 0;
  Tick ticks_executed = 0;
  Count total_transfers = 0;
  Count dropped_transfers = 0;
  std::uint32_t departed = 0;
  std::vector<Tick> client_completion;
  std::vector<Count> uploads_per_node;
  std::vector<Count> uploads_per_tick;
  std::vector<Count> active_slots_per_tick;

  /// Transfers the reference accepted, per executed tick (compare to
  /// RunResult::trace).
  std::vector<std::vector<Transfer>> accepted;

  /// The reference's own start-of-tick observations, index-aligned with the
  /// recorded log (compare to TickRecord's fields).
  std::vector<std::uint64_t> blocks_held_at_start;
  std::vector<std::uint64_t> freq_fingerprint;

  /// Final possession per node, departed nodes included.
  std::vector<std::set<BlockId>> final_have;
};

/// Replays a recorded schedule through the reference model. `config` must be
/// the exact EngineConfig the fast run used.
ReferenceResult reference_run(const EngineConfig& config,
                              const std::vector<TickRecord>& log,
                              const MechanismSpec& mech);

}  // namespace pob::check
