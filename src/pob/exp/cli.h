// Minimal command-line flag parsing shared by the bench/example binaries.
// Accepts --key=value, --key value, and bare boolean --flag forms.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace pob {

class Args {
 public:
  Args(int argc, const char* const* argv);

  bool has(std::string_view flag) const;
  std::int64_t get_int(std::string_view flag, std::int64_t fallback) const;
  double get_double(std::string_view flag, double fallback) const;
  std::string get_string(std::string_view flag, std::string_view fallback) const;

  /// Comma-separated integer list, e.g. --degrees=10,20,40.
  std::vector<std::int64_t> get_int_list(std::string_view flag,
                                         std::vector<std::int64_t> fallback) const;

  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string, std::less<>> values_;
};

}  // namespace pob
