#include "pob/rand/tit_for_tat.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace pob {

TitForTatScheduler::TitForTatScheduler(std::shared_ptr<const Overlay> overlay,
                                       TitForTatOptions options, Rng rng)
    : overlay_(std::move(overlay)), opt_(options), rng_(rng) {
  if (overlay_ == nullptr) throw std::invalid_argument("tit-for-tat: null overlay");
  if (opt_.regular_unchokes + opt_.optimistic_unchokes == 0) {
    throw std::invalid_argument("tit-for-tat: need at least one unchoke slot");
  }
  if (opt_.rechoke_period < 1) throw std::invalid_argument("tit-for-tat: period >= 1");
}

void TitForTatScheduler::ensure_scratch(const SwarmState& state) {
  const std::uint32_t n = state.num_nodes();
  if (received_.size() == n) return;
  received_.resize(n);
  unchoked_.assign(n, {});
  for (NodeId u = 0; u < n; ++u) received_[u].assign(overlay_->degree(u), 0);
  incoming_.assign(n, BlockSet(state.num_blocks()));
  incoming_stamp_.assign(n, 0);
  down_used_.assign(n, 0);
  down_stamp_.assign(n, 0);
}

void TitForTatScheduler::rechoke(Tick /*tick*/, const SwarmState& state) {
  const std::uint32_t n = state.num_nodes();
  std::vector<std::uint32_t> order;
  for (NodeId u = 0; u < n; ++u) {
    const std::uint32_t deg = overlay_->degree(u);
    auto& slots = unchoked_[u];
    slots.clear();
    if (deg == 0) continue;

    // Reciprocation: top senders of the last window (the server skips this —
    // it receives nothing). Random tiebreak via a shuffled index order.
    order.resize(deg);
    std::iota(order.begin(), order.end(), 0u);
    rng_.shuffle(order);
    if (u != kServer) {
      std::stable_sort(order.begin(), order.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         return received_[u][a] > received_[u][b];
                       });
      for (const std::uint32_t idx : order) {
        if (slots.size() >= opt_.regular_unchokes) break;
        if (received_[u][idx] == 0) break;  // nobody else reciprocated
        slots.push_back(overlay_->neighbor(u, idx));
      }
    }
    // Optimistic slots (all slots, for the server): random distinct
    // neighbors not already unchoked.
    const std::uint32_t target =
        u == kServer ? opt_.regular_unchokes + opt_.optimistic_unchokes
                     : static_cast<std::uint32_t>(slots.size()) + opt_.optimistic_unchokes;
    for (const std::uint32_t idx : order) {
      if (slots.size() >= std::min(target, deg)) break;
      const NodeId v = overlay_->neighbor(u, idx);
      if (std::find(slots.begin(), slots.end(), v) == slots.end()) slots.push_back(v);
    }
    // New window.
    std::fill(received_[u].begin(), received_[u].end(), 0u);
  }
}

void TitForTatScheduler::plan_tick(Tick tick, const SwarmState& state,
                                   std::vector<Transfer>& out) {
  ensure_scratch(state);
  if ((tick - 1) % opt_.rechoke_period == 0) rechoke(tick, state);

  std::vector<NodeId> node_order(state.num_nodes());
  std::iota(node_order.begin(), node_order.end(), NodeId{0});
  rng_.shuffle(node_order);

  std::vector<NodeId> candidates;
  for (const NodeId u : node_order) {
    const BlockSet& have = state.blocks_of(u);
    if (have.empty()) continue;
    for (std::uint32_t slot = 0; slot < opt_.upload_capacity; ++slot) {
      candidates.clear();
      for (const NodeId v : unchoked_[u]) {
        if (state.is_complete(v) || v == kServer) continue;
        if (down_stamp_[v] == tick && down_used_[v] >= opt_.download_capacity) continue;
        const BlockSet* excl = incoming_stamp_[v] == tick ? &incoming_[v] : nullptr;
        if (have.has_useful(state.blocks_of(v), excl)) candidates.push_back(v);
      }
      if (candidates.empty()) break;
      const NodeId v =
          candidates[rng_.below(static_cast<std::uint32_t>(candidates.size()))];
      const BlockSet* excl = incoming_stamp_[v] == tick ? &incoming_[v] : nullptr;
      const BlockId b =
          opt_.policy == BlockPolicy::kRandom
              ? have.pick_random_useful(state.blocks_of(v), excl, rng_)
              : have.pick_rarest_useful(state.blocks_of(v), excl,
                                        state.block_frequency(), rng_);
      assert(b != kNoBlock);
      if (incoming_stamp_[v] != tick) {
        incoming_[v].clear();
        incoming_stamp_[v] = tick;
      }
      incoming_[v].insert(b);
      if (down_stamp_[v] != tick) {
        down_used_[v] = 0;
        down_stamp_[v] = tick;
      }
      ++down_used_[v];
      // Tit-for-tat accounting: v notes what u sent it this window.
      const std::uint32_t idx = overlay_->neighbor_index(v, u);
      if (idx != kUnlimited) received_[v][idx] += 1;
      out.push_back({u, v, b});
    }
  }
}

}  // namespace pob
