// Workload generator tests: purity (a plan is a function of (workload,
// config, seed)), the shape of each arrival pattern, rate-class assignment,
// and the malformed-workload guards.

#include <gtest/gtest.h>

#include <stdexcept>

#include "pob/scale/stream/workload.h"

namespace pob::scale::stream {
namespace {

EngineConfig swarm(std::uint32_t n, std::uint32_t k) {
  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  return cfg;
}

TEST(StreamWorkload, PlanIsAPureFunctionOfItsInputs) {
  StreamWorkload wl;
  wl.arrivals = ArrivalPattern::kPoisson;
  wl.mean_gap16 = 8;
  wl.rate_classes = {{2, 1, kUnlimited}, {1, 2, 4}};
  wl.rate_changes = 5;

  const EngineConfig cfg = swarm(64, 8);
  const WorkloadPlan a = build_workload(wl, cfg, 42);
  const WorkloadPlan b = build_workload(wl, cfg, 42);
  EXPECT_EQ(a.arrival, b.arrival);
  EXPECT_EQ(a.initial_up, b.initial_up);
  EXPECT_EQ(a.initial_down, b.initial_down);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].time, b.events[i].time);
    EXPECT_EQ(a.events[i].node, b.events[i].node);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
  }

  // A different seed moves the arrivals (overwhelmingly likely at n = 64).
  const WorkloadPlan c = build_workload(wl, cfg, 43);
  EXPECT_NE(a.arrival, c.arrival);
}

TEST(StreamWorkload, AllAtStartHasNoEvents) {
  const WorkloadPlan plan = build_workload({}, swarm(32, 4), 7);
  EXPECT_TRUE(plan.events.empty());
  EXPECT_EQ(plan.pending_arrivals, 0u);
  EXPECT_EQ(plan.last_arrival, 0u);
  for (const Tick t : plan.arrival) EXPECT_EQ(t, 0u);
}

TEST(StreamWorkload, PoissonArrivalsAreMonotoneInNodeId) {
  StreamWorkload wl;
  wl.arrivals = ArrivalPattern::kPoisson;
  wl.mean_gap16 = 4;  // four arrivals per tick on average
  const WorkloadPlan plan = build_workload(wl, swarm(256, 4), 11);
  EXPECT_EQ(plan.arrival[kServer], 0u);
  for (NodeId c = 2; c < 256; ++c) {
    EXPECT_GE(plan.arrival[c], plan.arrival[c - 1]) << c;
  }
  EXPECT_GE(plan.arrival[1], 1u);
  EXPECT_EQ(plan.pending_arrivals, 255u);
  EXPECT_EQ(plan.last_arrival, plan.arrival[255]);
}

TEST(StreamWorkload, FlashCrowdConcentratesInTheSpikeWindow) {
  StreamWorkload wl;
  wl.arrivals = ArrivalPattern::kFlashCrowd;
  wl.flash_start = 10;
  wl.flash_width = 4;
  wl.flash_pct = 90;
  const WorkloadPlan plan = build_workload(wl, swarm(512, 4), 3);

  std::uint32_t in_spike = 0;
  for (NodeId c = 1; c < 512; ++c) {
    const Tick t = plan.arrival[c];
    ASSERT_GE(t, 1u);
    ASSERT_LE(t, wl.flash_start + 4 * wl.flash_width);  // background bound
    if (t >= wl.flash_start && t < wl.flash_start + wl.flash_width) ++in_spike;
  }
  // 90% of 511 in expectation; even a very unlucky draw clears 75%.
  EXPECT_GT(in_spike, 511u * 3 / 4);
}

TEST(StreamWorkload, BurstCohortsFollowTheFormula) {
  StreamWorkload wl;
  wl.arrivals = ArrivalPattern::kBurst;
  wl.burst_size = 8;
  wl.burst_period = 5;
  const WorkloadPlan plan = build_workload(wl, swarm(30, 4), 3);
  for (NodeId c = 1; c < 30; ++c) {
    EXPECT_EQ(plan.arrival[c], 1 + ((c - 1) / 8) * 5) << c;
  }
}

TEST(StreamWorkload, RateClassesAssignEveryClientAndSpareTheServer) {
  StreamWorkload wl;
  wl.rate_classes = {{3, 1, kUnlimited}, {1, 2, 4}, {1, 3, 6}};
  EngineConfig cfg = swarm(128, 4);
  cfg.server_upload_capacity = 4;
  const WorkloadPlan plan = build_workload(wl, cfg, 5);

  ASSERT_EQ(plan.initial_up.size(), 128u);
  EXPECT_EQ(plan.initial_up[kServer], 4u);
  EXPECT_EQ(plan.initial_down[kServer], kUnlimited);
  bool saw_other_than_first = false;
  for (NodeId c = 1; c < 128; ++c) {
    const std::uint32_t up = plan.initial_up[c];
    ASSERT_TRUE(up == 1 || up == 2 || up == 3) << c;
    if (up != 1) saw_other_than_first = true;
    const std::uint32_t down = plan.initial_down[c];
    EXPECT_TRUE(down == kUnlimited || down >= up);
  }
  EXPECT_TRUE(saw_other_than_first);  // the weighted draw uses all classes
}

TEST(StreamWorkload, RateChurnEmitsKRateEventsWithinTheHorizon) {
  StreamWorkload wl;
  wl.rate_classes = {{1, 1, kUnlimited}, {1, 2, 4}};
  wl.rate_changes = 10;
  wl.rate_change_horizon = 16;
  const WorkloadPlan plan = build_workload(wl, swarm(64, 4), 9);

  std::uint32_t rates = 0;
  for (const StreamEvent& ev : plan.events) {
    if (ev.kind != EventKind::kRate) continue;
    ++rates;
    EXPECT_GE(ev.time, 1u);
    EXPECT_LE(ev.time, 16u);
    EXPECT_NE(ev.node, kServer);
    EXPECT_TRUE(ev.down == kUnlimited || ev.down >= ev.up);
  }
  EXPECT_EQ(rates, 10u);
}

TEST(StreamWorkload, RejectsMalformedWorkloads) {
  {  // Poisson needs a nonzero mean gap
    StreamWorkload wl;
    wl.arrivals = ArrivalPattern::kPoisson;
    wl.mean_gap16 = 0;
    EXPECT_THROW(build_workload(wl, swarm(8, 4), 1), std::invalid_argument);
  }
  {  // flash crowd needs a nonzero spike width
    StreamWorkload wl;
    wl.arrivals = ArrivalPattern::kFlashCrowd;
    wl.flash_width = 0;
    EXPECT_THROW(build_workload(wl, swarm(8, 4), 1), std::invalid_argument);
  }
  {  // the model rule: class download must cover class upload
    StreamWorkload wl;
    wl.rate_classes = {{1, 3, 2}};
    EXPECT_THROW(build_workload(wl, swarm(8, 4), 1), std::invalid_argument);
  }
  {  // all-zero weights have no class to draw
    StreamWorkload wl;
    wl.rate_classes = {{0, 1, kUnlimited}};
    EXPECT_THROW(build_workload(wl, swarm(8, 4), 1), std::invalid_argument);
  }
  {  // rate churn without classes has nothing to re-draw
    StreamWorkload wl;
    wl.rate_changes = 3;
    EXPECT_THROW(build_workload(wl, swarm(8, 4), 1), std::invalid_argument);
  }
}

}  // namespace
}  // namespace pob::scale::stream
