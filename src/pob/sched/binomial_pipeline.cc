#include "pob/sched/binomial_pipeline.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace pob {

BinomialPipelineScheduler::BinomialPipelineScheduler(std::uint32_t num_nodes,
                                                     std::uint32_t num_blocks)
    : BinomialPipelineScheduler(
          [&] {
            std::vector<NodeId> all(num_nodes);
            std::iota(all.begin(), all.end(), NodeId{0});
            return all;
          }(),
          [&] {
            std::vector<BlockId> blocks(num_blocks);
            std::iota(blocks.begin(), blocks.end(), BlockId{0});
            return blocks;
          }()) {}

BinomialPipelineScheduler::BinomialPipelineScheduler(std::vector<NodeId> participants,
                                                     std::vector<BlockId> blocks)
    : participants_(std::move(participants)), blocks_(std::move(blocks)) {
  if (participants_.size() < 2) {
    throw std::invalid_argument("binomial-pipeline: need >= 2 participants");
  }
  if (blocks_.empty()) {
    throw std::invalid_argument("binomial-pipeline: need >= 1 block");
  }
  if (!std::is_sorted(blocks_.begin(), blocks_.end()) ||
      std::adjacent_find(blocks_.begin(), blocks_.end()) != blocks_.end()) {
    throw std::invalid_argument("binomial-pipeline: blocks must be strictly increasing");
  }
  map_ = make_hypercube_map(static_cast<std::uint32_t>(participants_.size()));
  const BlockId top = blocks_.back();
  rank_of_block_.assign(top + 1, 0);
  for (std::uint32_t r = 0; r < blocks_.size(); ++r) rank_of_block_[blocks_[r]] = r + 1;
}

std::uint32_t BinomialPipelineScheduler::union_max_rank(const SwarmState& state,
                                                        std::uint32_t vertex) const {
  // Blocks are strictly increasing in rank, so the max-rank block of a
  // member is simply its max-id held block (clients in this pipeline only
  // ever hold this pipeline's blocks).
  std::uint32_t best = 0;
  for (const NodeId member_idx : map_.members[vertex]) {
    if (member_idx == kNoNode) continue;
    const BlockId b = state.blocks_of(participants_[member_idx]).max();
    if (b == kNoBlock) continue;
    best = std::max(best, rank_of_block_[b]);
  }
  return best;
}

void BinomialPipelineScheduler::plan_tick(Tick tick, const SwarmState& state,
                                          std::vector<Transfer>& out) {
  const std::uint32_t m = map_.dims;
  const std::uint32_t k = static_cast<std::uint32_t>(blocks_.size());
  const std::uint32_t p = static_cast<std::uint32_t>(participants_.size());
  const Tick phase_len = k + m - 1;

  // Per-participant capacity used this tick (upload, download).
  std::vector<std::uint8_t> up(p, 0), down(p, 0);

  // Returns the member of `vertex` that would transmit block of rank `r`
  // (kNoNode if nobody holds it). The preferred member alternates with the
  // tick so that doubled-vertex roles (external sender vs internal
  // forwarder) swap every tick — this keeps the intra-pair barter ledger
  // balanced, which is what lets the general-n pipeline run under
  // credit-limited mechanisms (§3.3).
  const auto tx_member = [&](std::uint32_t vertex, std::uint32_t r) -> NodeId {
    if (r == 0) return kNoNode;
    const BlockId b = blocks_[r - 1];
    const auto& members = map_.members[vertex];
    const std::uint32_t first = (members[1] != kNoNode && tick % 2 == 0) ? 1u : 0u;
    for (const std::uint32_t side : {first, 1u - first}) {
      const NodeId idx = members[side];
      if (idx != kNoNode && state.has(participants_[idx], b)) return idx;
    }
    return kNoNode;
  };

  if (tick <= phase_len) {
    const std::uint32_t dim = (tick - 1) % m;
    const std::uint32_t bit = 1u << dim;
    for (std::uint32_t v = 0; v < map_.num_vertices; ++v) {
      if (v & bit) continue;  // handle each pair once, from its low side
      const std::uint32_t w = v | bit;

      // Transmission rank of each side: the server vertex pushes block
      // b_min(t,k); every other logical node pushes its highest-rank block.
      const std::uint32_t rank_v =
          v == 0 ? std::min<std::uint32_t>(tick, k) : union_max_rank(state, v);
      const std::uint32_t rank_w =
          w == 0 ? std::min<std::uint32_t>(tick, k) : union_max_rank(state, w);
      const NodeId tx_v = tx_member(v, rank_v);
      const NodeId tx_w = tx_member(w, rank_w);

      // Plans the external transfer src_vertex -> dst_vertex of rank r.
      const auto plan_external = [&](std::uint32_t dst, std::uint32_t r, NodeId tx,
                                     NodeId dst_tx) {
        if (r == 0 || tx == kNoNode) return;
        const BlockId b = blocks_[r - 1];
        // Receiver: prefer the member of dst that is not transmitting.
        NodeId rx = kNoNode;
        for (const NodeId idx : map_.members[dst]) {
          if (idx == kNoNode || state.has(participants_[idx], b)) continue;
          if (rx == kNoNode || idx != dst_tx) rx = idx;
        }
        if (rx == kNoNode) return;  // dst already has the block everywhere
        ++up[tx];
        ++down[rx];
        out.push_back({participants_[tx], participants_[rx], b});
      };
      plan_external(w, rank_v, tx_v, tx_w);
      plan_external(v, rank_w, tx_w, tx_v);
    }
  }

  // Intra-vertex forwarding for doubled vertices (§2.3.3): with leftover
  // capacity, a member passes its partner the highest-rank block the partner
  // lacks. After the hypercube phase this is the "extra tick" that clears the
  // at-most-one-block deficit on each side.
  for (std::uint32_t v = 1; v < map_.num_vertices; ++v) {
    const NodeId a = map_.members[v][0];
    const NodeId b = map_.members[v][1];
    if (b == kNoNode) continue;
    const auto plan_internal = [&](NodeId from, NodeId to) {
      if (up[from] != 0 || down[to] != 0) return;
      const BlockSet& fs = state.blocks_of(participants_[from]);
      const BlockSet& ts = state.blocks_of(participants_[to]);
      // Highest-rank block in from \ to; blocks_ is increasing so the
      // highest id is also the highest rank.
      const BlockId blk = fs.max_missing_from(ts);
      if (blk == kNoBlock) return;
      ++up[from];
      ++down[to];
      out.push_back({participants_[from], participants_[to], blk});
    };
    plan_internal(a, b);
    plan_internal(b, a);
  }
}

}  // namespace pob
