// pobsim — run any algorithm / overlay / mechanism combination from the
// command line.
//
//   pobsim --algo=binomial-pipeline --n=64 --k=32
//   pobsim --algo=randomized --overlay=regular --degree=20 --n=1000 --k=1000
//          --policy=rarest --runs=5
//   pobsim --algo=credit-randomized --overlay=regular --degree=80 --credit=1
//          --n=1000 --k=1000
//   pobsim --algo=riffle --mechanism=strict --n=100 --k=99 --download=2
//
// Flags:
//   --engine     core (default) | scale | stream. The scale engine is the
//                SoA mega-swarm path (src/pob/scale): randomized / credit-
//                randomized protocol plus the deterministic mechanisms
//                (--algo=binomial-pipeline | riffle | triangular), sized for
//                n up to 10^6+. --jobs then parallelizes ticks *within* one
//                run (bit-identical at any value); --probes tunes its
//                per-slot neighbor probing; --simd=off forces the scalar
//                scan kernel (same results).
//                    pobsim --engine=scale --n=1000000 --k=512
//                           --overlay=regular --degree=16 --jobs=0
//                    pobsim --engine=scale --algo=riffle --n=1048576 --k=512
//                The stream engine layers event-driven arrivals, rate churn
//                and streaming demand over the scale engine (randomized
//                protocol only):
//                  --arrivals=batch|poisson|flash|burst  arrival process
//                  --gap16 (poisson, 1/16-tick mean gap)  --flash-start
//                  --flash-width --flash-pct  --burst-size --burst-period
//                  --classes=N (heterogeneous rate classes) --churn=N
//                  --horizon (churn window)  --window=W (sequential demand)
//                  --startup (blocks buffered before playback) --interval
//                  --deadlines --slack (hard per-block deadlines)
//                    pobsim --engine=stream --n=200000 --k=64
//                           --overlay=regular --arrivals=flash --deadlines
//   --jobs       worker threads for repeated runs (0 = all cores; results
//                are identical at any value)
//   --algo       pipeline | tree | binomial-tree | binomial-pipeline |
//                multi-server | riffle | randomized | credit-randomized |
//                rotating | tit-for-tat | striped-trees
//   --overlay    complete | regular | hypercube | ring | karytree  (randomized only)
//   --mechanism  none | strict | credit | triangular | cyclic
//   --n --k --degree --arity --credit --cycle-len --policy --upload --download
//   --servers (multi-server m) --period (rotation) --stripes --runs --seed --cap
//   --leave-pct (random client departures in the first half, lossy mode)
//   --certify (print the pob/flow lower-bound certificate T* for the exact
//              scenario simulated, the run's T, and the certified price T/T*)
//   --fairness (print per-client upload-load stats)
//   --save-trace=<file> (record run 0) --replay=<file> (validate a saved trace)
//   --trace --csv

#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>

#include "pob/analysis/bounds.h"
#include "pob/core/engine.h"
#include "pob/core/metrics.h"
#include "pob/exp/cli.h"
#include "pob/exp/parallel.h"
#include "pob/exp/sweep.h"
#include "pob/exp/table.h"
#include "pob/exp/trace_io.h"
#include "pob/flow/certify.h"
#include "pob/mech/barter.h"
#include "pob/overlay/builders.h"
#include "pob/overlay/overlay.h"
#include "pob/rand/randomized.h"
#include "pob/rand/rotation.h"
#include "pob/rand/tit_for_tat.h"
#include "pob/sched/binomial_pipeline.h"
#include "pob/sched/binomial_tree.h"
#include "pob/sched/multi_server.h"
#include "pob/sched/multicast_tree.h"
#include "pob/sched/pipeline.h"
#include "pob/sched/riffle_pipeline.h"
#include "pob/sched/striped_trees.h"
#include "pob/scale/engine.h"
#include "pob/scale/stream/stream_engine.h"

namespace pob {
namespace {

std::shared_ptr<const Overlay> make_overlay(const Args& args, std::uint32_t n,
                                            Rng& rng) {
  const std::string kind = args.get_string("overlay", "complete");
  if (kind == "complete") return std::make_shared<CompleteOverlay>(n);
  if (kind == "regular") {
    const auto d = static_cast<std::uint32_t>(args.get_int("degree", 20));
    return std::make_shared<GraphOverlay>(make_random_regular(n, d, rng));
  }
  if (kind == "hypercube") {
    return std::make_shared<GraphOverlay>(make_hypercube_overlay(n));
  }
  if (kind == "ring") return std::make_shared<GraphOverlay>(make_ring(n));
  if (kind == "karytree") {
    const auto a = static_cast<std::uint32_t>(args.get_int("arity", 2));
    return std::make_shared<GraphOverlay>(make_kary_tree(n, a));
  }
  throw std::invalid_argument("unknown overlay: " + kind);
}

std::unique_ptr<Mechanism> make_mechanism(const Args& args) {
  const std::string kind = args.get_string("mechanism", "none");
  const auto credit = static_cast<std::uint32_t>(args.get_int("credit", 1));
  if (kind == "none") return nullptr;
  if (kind == "strict") return std::make_unique<StrictBarter>();
  if (kind == "credit") return std::make_unique<CreditLimited>(credit);
  if (kind == "triangular") return std::make_unique<CyclicBarter>(3, credit);
  if (kind == "cyclic") {
    const auto len = static_cast<std::uint32_t>(args.get_int("cycle-len", 4));
    return std::make_unique<CyclicBarter>(len, credit);
  }
  throw std::invalid_argument("unknown mechanism: " + kind);
}

BlockPolicy parse_policy(const Args& args) {
  const std::string p = args.get_string("policy", "random");
  if (p == "random") return BlockPolicy::kRandom;
  if (p == "rarest" || p == "rarest-first") return BlockPolicy::kRarestFirst;
  throw std::invalid_argument("unknown policy: " + p);
}

std::shared_ptr<const scale::Topology> make_scale_topology(const Args& args,
                                                           std::uint32_t n, Rng& rng) {
  const std::string kind = args.get_string("overlay", "complete");
  if (kind == "complete") {
    return std::make_shared<scale::Topology>(scale::Topology::complete(n));
  }
  if (kind == "regular") {
    const auto d = static_cast<std::uint32_t>(args.get_int("degree", 20));
    return std::make_shared<scale::Topology>(
        scale::Topology::from_graph(make_random_regular(n, d, rng)));
  }
  if (kind == "hypercube") {
    return std::make_shared<scale::Topology>(
        scale::Topology::from_graph(make_hypercube_overlay(n)));
  }
  if (kind == "ring") {
    return std::make_shared<scale::Topology>(scale::Topology::from_graph(make_ring(n)));
  }
  if (kind == "karytree") {
    const auto a = static_cast<std::uint32_t>(args.get_int("arity", 2));
    return std::make_shared<scale::Topology>(
        scale::Topology::from_graph(make_kary_tree(n, a)));
  }
  throw std::invalid_argument("unknown overlay: " + kind);
}

/// The --certify report: the pob/flow lower-bound oracle evaluated on the
/// exact scenario just simulated. T* is sound for every legal schedule of
/// the scenario, so simulated-T / T* is a certified price — 1.00 means the
/// run is provably optimal on its topology.
void print_certificate(const EngineConfig& cfg, const scale::Topology& topo,
                       flow::BarterModel model, bool completed, Tick simulated) {
  const flow::CompletionCertificate cert =
      flow::certify_completion_bound(cfg, topo, model);
  std::cout << "# certificate: T*=" << cert.lower_bound << " simulated-T=";
  if (completed) {
    std::cout << simulated << " certified-price="
              << fmt(flow::certified_price(simulated, cert.lower_bound), 3);
  } else {
    std::cout << "DNF";
  }
  std::cout << " (last-block " << cert.last_block_bound << ", ramp "
            << cert.ramp_bound << ", pipe " << cert.pipe_bound;
  if (cert.flow_evaluated) std::cout << ", flow " << cert.flow_bound;
  if (model == flow::BarterModel::kStrictBarter) {
    std::cout << ", seed " << cert.seed_bound << ", strict-ramp "
              << cert.strict_ramp_bound;
  }
  std::cout << "; demand " << cert.demand_clients << ")\n";
}

/// The --engine=scale path: trials run serially, each tick parallelized
/// inside the engine, so --jobs speeds up one giant run instead of
/// oversubscribing cores with concurrent mega-swarms.
int run_scale(const Args& args, const EngineConfig& cfg, std::uint32_t n,
              std::uint32_t k, std::uint32_t runs, std::uint64_t seed, unsigned jobs) {
  scale::ScaleOptions opt;
  opt.policy = parse_policy(args);
  opt.max_probes = static_cast<std::uint32_t>(args.get_int("probes", 16));
  // --simd=off forces the scalar reference scan kernel (results identical,
  // only seconds differ) — the same flag scale_throughput takes.
  opt.scan_kernel = args.get_string("simd", "auto") == "off"
                        ? scale::ScanKernel::kScalar
                        : scale::ScanKernel::kAuto;
  const std::string algo = args.get_string("algo", "randomized");
  if (algo == "binomial-pipeline" || algo == "binomial") {
    opt.scheduler = scale::SchedKind::kBinomialPipeline;
  } else if (algo == "riffle") {
    opt.scheduler = scale::SchedKind::kRifflePipeline;
  } else if (algo == "triangular" || algo == "triangular-barter") {
    opt.scheduler = scale::SchedKind::kTriangularBarter;
    opt.credit_limit = static_cast<std::uint32_t>(args.get_int("credit", 1));
  } else if (algo != "randomized" && algo != "credit-randomized") {
    throw std::invalid_argument(
        "scale engine supports --algo=randomized|credit-randomized|"
        "binomial-pipeline|riffle|triangular, not " + algo);
  }
  const std::string mech = args.get_string("mechanism", "none");
  if (opt.scheduler != scale::SchedKind::kRandomized) {
    if (mech != "none") {
      throw std::invalid_argument(
          "deterministic scale schedulers enforce their mechanism natively; "
          "drop --mechanism");
    }
  } else if (mech == "credit" || algo == "credit-randomized") {
    opt.credit_limit = static_cast<std::uint32_t>(args.get_int("credit", 1));
  } else if (mech != "none") {
    throw std::invalid_argument("scale engine supports --mechanism=none|credit, not " +
                                mech);
  }

  const auto sweep_start = std::chrono::steady_clock::now();
  std::uint64_t state_bytes = 0;
  std::shared_ptr<const scale::Topology> first_topo;
  bool first_completed = false;
  Tick first_tick = 0;
  const TrialStats stats = repeat_trials_parallel(runs, 1, [&](std::uint32_t i) {
    const std::uint64_t run_seed = trial_seed(seed, i);
    Rng topo_rng = Rng(run_seed).split(0);
    std::shared_ptr<const scale::Topology> topo = make_scale_topology(args, n, topo_rng);
    if (i == 0) first_topo = topo;
    scale::Engine engine(cfg, topo, opt, run_seed);
    if (i == 0) state_bytes = engine.state_bytes();
    const RunResult r = engine.run(jobs);
    if (i == 0) {
      first_completed = r.completed;
      first_tick = r.completion_tick;
    }
    if (args.has("save-trace") && i == 0) {
      std::ofstream out(args.get_string("save-trace", ""));
      if (!out) throw std::invalid_argument("cannot open trace output file");
      write_trace(out, cfg, r);
    }
    if (args.has("fairness") && i == 0) {
      const FairnessSummary f = upload_fairness(r);
      std::cout << "fairness (clients): mean=" << fmt(f.mean, 1) << " min=" << fmt(f.min, 0)
                << " max=" << fmt(f.max, 0) << " gini=" << fmt(f.gini, 3) << "\n";
    }
    TrialOutcome out;
    out.completed = r.completed;
    if (r.completed) {
      out.completion = static_cast<double>(r.completion_tick);
      out.mean_completion = r.mean_client_completion();
    }
    return out;
  });

  const std::string algo_label =
      std::string("scale:") +
      (opt.scheduler != scale::SchedKind::kRandomized
           ? sched_kind_name(opt.scheduler)
           : (opt.credit_limit != 0 ? "credit-randomized" : "randomized"));
  Table table({"algo", "n", "k", "runs", "T", "mean-finish", "coop-bound"});
  const double cap = cfg.max_ticks != 0 ? static_cast<double>(cfg.max_ticks)
                                        : static_cast<double>(default_tick_cap(n, k));
  table.add_row({algo_label, std::to_string(n), std::to_string(k), std::to_string(runs),
                 completion_cell(stats, cap),
                 stats.all_censored() ? "-" : fmt(stats.mean_completion.mean),
                 std::to_string(cooperative_lower_bound(n, k))});
  if (args.has("csv")) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - sweep_start)
          .count();
  std::cout << "# scale engine: " << runs << " run(s) in " << fmt(sweep_seconds, 2)
            << " s, state " << state_bytes / (1024 * 1024) << " MiB, jobs="
            << (jobs == 0 ? default_jobs() : jobs) << "\n";
  if (args.has("certify")) {
    // Certify run 0's exact scenario: same topology draw, same config. Riffle
    // is the only scale scheduler bound by strict barter's coupling.
    const flow::BarterModel model = opt.scheduler == scale::SchedKind::kRifflePipeline
                                        ? flow::BarterModel::kStrictBarter
                                        : flow::BarterModel::kCooperative;
    print_certificate(cfg, *first_topo, model, first_completed, first_tick);
  }
  return 0;
}

/// The --engine=stream path: one StreamEngine run (randomized protocol with
/// event-driven arrivals, optional rate classes / churn / sequential demand /
/// deadlines), reporting the streaming metrics alongside the usual table.
int run_stream(const Args& args, const EngineConfig& cfg, std::uint32_t n,
               std::uint32_t k, std::uint64_t seed, unsigned jobs) {
  scale::stream::StreamSpec spec;
  spec.config = cfg;
  spec.seed = seed;
  Rng topo_rng = Rng(seed).split(0);
  spec.topology = make_scale_topology(args, n, topo_rng);
  spec.options.policy = parse_policy(args);
  spec.options.max_probes = static_cast<std::uint32_t>(args.get_int("probes", 16));
  spec.options.scan_kernel = args.get_string("simd", "auto") == "off"
                                 ? scale::ScanKernel::kScalar
                                 : scale::ScanKernel::kAuto;

  const std::string arrivals = args.get_string("arrivals", "batch");
  if (arrivals == "poisson") {
    spec.workload.arrivals = scale::stream::ArrivalPattern::kPoisson;
    spec.workload.mean_gap16 = static_cast<std::uint32_t>(args.get_int("gap16", 16));
  } else if (arrivals == "flash" || arrivals == "flash-crowd") {
    spec.workload.arrivals = scale::stream::ArrivalPattern::kFlashCrowd;
    spec.workload.flash_start = static_cast<Tick>(args.get_int("flash-start", 8));
    spec.workload.flash_width =
        static_cast<std::uint32_t>(args.get_int("flash-width", 4));
    spec.workload.flash_pct =
        static_cast<std::uint32_t>(args.get_int("flash-pct", 90));
  } else if (arrivals == "burst") {
    spec.workload.arrivals = scale::stream::ArrivalPattern::kBurst;
    spec.workload.burst_size =
        static_cast<std::uint32_t>(args.get_int("burst-size", 64));
    spec.workload.burst_period =
        static_cast<std::uint32_t>(args.get_int("burst-period", 4));
  } else if (arrivals != "batch") {
    throw std::invalid_argument("unknown --arrivals=" + arrivals +
                                " (batch | poisson | flash | burst)");
  }
  const auto classes = static_cast<std::uint32_t>(args.get_int("classes", 0));
  for (std::uint32_t i = 0; i < classes; ++i) {
    spec.workload.rate_classes.push_back(
        {classes - i, 1 + i, i == 0 ? kUnlimited : 2 * (1 + i)});
  }
  spec.workload.rate_changes =
      static_cast<std::uint32_t>(args.get_int("churn", 0));
  spec.workload.rate_change_horizon =
      static_cast<Tick>(args.get_int("horizon", 64));
  spec.demand.window = static_cast<std::uint32_t>(args.get_int("window", 0));
  spec.demand.startup_blocks =
      static_cast<std::uint32_t>(args.get_int("startup", 4));
  spec.demand.interval = static_cast<Tick>(args.get_int("interval", 1));
  spec.demand.deadlines = args.has("deadlines");
  spec.demand.deadline_slack = static_cast<Tick>(args.get_int("slack", 2));
  spec.config.record_trace = args.has("trace") || args.has("save-trace");

  const auto t0 = std::chrono::steady_clock::now();
  scale::stream::StreamEngine engine(spec);
  const std::uint64_t state_bytes = engine.state_bytes();
  const RunResult r = engine.run(jobs);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  if (args.has("save-trace")) {
    std::ofstream out(args.get_string("save-trace", ""));
    if (!out) throw std::invalid_argument("cannot open trace output file");
    TraceEvents events;
    const std::vector<Tick>& arrival = engine.arrivals();
    for (NodeId c = 1; c < n; ++c) {
      if (arrival[c] >= 1) events.arrivals.emplace_back(arrival[c], c);
    }
    for (const scale::stream::StreamEvent& ev : engine.plan().events) {
      if (ev.kind == scale::stream::EventKind::kRate) {
        events.rate_changes.push_back({ev.time, ev.node, ev.up, ev.down});
      }
    }
    write_trace(out, spec.config, r, events);
  }

  Table table({"algo", "n", "k", "arrivals", "T", "mean-finish", "coop-bound"});
  const double cap = cfg.max_ticks != 0 ? static_cast<double>(cfg.max_ticks)
                                        : static_cast<double>(default_tick_cap(n, k));
  table.add_row({"stream:randomized", std::to_string(n), std::to_string(k), arrivals,
                 r.completed ? fmt(static_cast<double>(r.completion_tick), 0)
                             : (r.stalled ? "stall" : ">" + fmt(cap, 0)),
                 r.completed ? fmt(r.mean_client_completion()) : "-",
                 std::to_string(cooperative_lower_bound(n, k))});
  if (args.has("csv")) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  // The streaming metrics the stream layer adds on top of RunResult.
  std::uint64_t started = 0;
  double latency_sum = 0.0;
  for (const double lat : r.startup_latency) {
    if (!std::isnan(lat)) {
      ++started;
      latency_sum += lat;
    }
  }
  std::cout << "# startup: " << started << " started / " << r.never_started
            << " censored, mean latency "
            << fmt(started != 0 ? latency_sum / static_cast<double>(started) : 0.0, 2)
            << "; rebuffer " << r.total_rebuffer_ticks() << " ticks over "
            << r.rebuffered_clients << " clients; deadline misses "
            << r.deadline_misses << "/" << r.deadline_checks << " ("
            << fmt(r.deadline_miss_fraction(), 4) << ")\n";
  std::cout << "# stream engine: 1 run in " << fmt(seconds, 2) << " s, state "
            << state_bytes / (1024 * 1024) << " MiB, jobs="
            << (jobs == 0 ? default_jobs() : jobs) << "\n";
  if (args.has("certify")) {
    if (classes != 0) {
      // Rate classes raise per-node capacities above the config scalars the
      // certifier sees, so a bound computed here would not be sound.
      std::cout << "# certificate: skipped (--classes overrides capacities)\n";
    } else {
      print_certificate(spec.config, *spec.topology, flow::BarterModel::kCooperative,
                        r.completed, r.completion_tick);
    }
  }
  return 0;
}

int main_impl(int argc, char** argv) {
  const Args args(argc, argv);

  if (args.has("replay")) {
    std::ifstream in(args.get_string("replay", ""));
    if (!in) throw std::invalid_argument("cannot open trace file");
    const LoadedTrace trace = read_trace(in);
    std::unique_ptr<Mechanism> mech = make_mechanism(args);
    const RunResult r = replay_trace(trace, mech.get());
    std::cout << "replayed " << trace.ticks.size() << " ticks: "
              << (r.completed ? "completed at tick " + std::to_string(r.completion_tick)
                              : "incomplete")
              << " under mechanism '" << args.get_string("mechanism", "none") << "'\n";
    return r.completed ? 0 : 1;
  }

  const std::string algo = args.get_string("algo", "binomial-pipeline");
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 64));
  const auto k = static_cast<std::uint32_t>(args.get_int("k", 32));
  const auto runs = static_cast<std::uint32_t>(args.get_int("runs", 1));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const unsigned jobs = jobs_from_flag(args.get_int("jobs", 0));

  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;
  cfg.upload_capacity = static_cast<std::uint32_t>(args.get_int("upload", 1));
  cfg.download_capacity = args.has("download")
                              ? static_cast<std::uint32_t>(args.get_int("download", 1))
                              : kUnlimited;
  cfg.max_ticks = static_cast<Tick>(args.get_int("cap", 0));
  cfg.record_trace = args.has("trace") || args.has("save-trace");
  if (args.has("stall-window")) {
    cfg.stall_window = static_cast<Tick>(args.get_int("stall-window", 250));
  }
  if (args.has("leave-pct")) {
    // Random departures in the first half of the nominal schedule.
    const double fraction = args.get_double("leave-pct", 0.0) / 100.0;
    Rng churn_rng(seed ^ 0xC4A0);
    std::vector<NodeId> clients(n - 1);
    for (NodeId c = 1; c < n; ++c) clients[c - 1] = c;
    churn_rng.shuffle(clients);
    const Tick horizon = (k + ceil_log2(n)) / 2 + 1;
    const auto leavers = static_cast<std::uint32_t>(fraction * (n - 1));
    for (std::uint32_t i = 0; i < leavers; ++i) {
      cfg.departures.push_back({1 + churn_rng.below(horizon), clients[i]});
    }
    cfg.drop_transfers_involving_inactive = true;
  }
  if (algo == "multi-server") {
    cfg.server_upload_capacity =
        static_cast<std::uint32_t>(args.get_int("servers", 2));
  }

  const std::string engine = args.get_string("engine", "core");
  if (engine == "scale") return run_scale(args, cfg, n, k, runs, seed, jobs);
  if (engine == "stream") return run_stream(args, cfg, n, k, seed, jobs);
  if (engine != "core") throw std::invalid_argument("unknown engine: " + engine);

  RandomizedOptions opt;
  opt.policy = parse_policy(args);
  opt.upload_capacity = cfg.upload_capacity;
  opt.download_capacity = cfg.download_capacity;

  const auto sweep_start = std::chrono::steady_clock::now();
  bool first_completed = false;
  Tick first_tick = 0;
  const TrialStats stats = repeat_trials_parallel(runs, jobs, [&](std::uint32_t i) -> TrialOutcome {
    Rng run_rng(trial_seed(seed, i));
    std::unique_ptr<Mechanism> mech = make_mechanism(args);
    std::unique_ptr<Scheduler> sched;
    if (algo == "pipeline") {
      sched = std::make_unique<PipelineScheduler>(n, k);
    } else if (algo == "tree") {
      const auto a = static_cast<std::uint32_t>(args.get_int("arity", 2));
      sched = std::make_unique<MulticastTreeScheduler>(n, k, a);
    } else if (algo == "binomial-tree") {
      sched = std::make_unique<BinomialTreeScheduler>(n, k);
    } else if (algo == "binomial-pipeline") {
      sched = std::make_unique<BinomialPipelineScheduler>(n, k);
    } else if (algo == "multi-server") {
      sched = std::make_unique<MultiServerScheduler>(
          n, k, static_cast<std::uint32_t>(args.get_int("servers", 2)));
    } else if (algo == "riffle") {
      const std::uint32_t d = cfg.download_capacity == kUnlimited
                                  ? 2u
                                  : cfg.download_capacity;
      sched = std::make_unique<RifflePipelineScheduler>(n, k, cfg.upload_capacity, d);
    } else if (algo == "randomized") {
      sched = std::make_unique<RandomizedScheduler>(make_overlay(args, n, run_rng),
                                                    opt, run_rng.split(1));
    } else if (algo == "credit-randomized") {
      auto credit = std::make_unique<CreditLimited>(
          static_cast<std::uint32_t>(args.get_int("credit", 1)));
      sched = std::make_unique<RandomizedScheduler>(make_overlay(args, n, run_rng),
                                                    opt, run_rng.split(1),
                                                    credit.get());
      mech = std::move(credit);
    } else if (algo == "tit-for-tat") {
      TitForTatOptions tft;
      tft.policy = opt.policy;
      tft.upload_capacity = opt.upload_capacity;
      tft.download_capacity = opt.download_capacity;
      sched = std::make_unique<TitForTatScheduler>(make_overlay(args, n, run_rng), tft,
                                                   run_rng.split(1));
    } else if (algo == "striped-trees") {
      sched = std::make_unique<StripedTreesScheduler>(
          n, k, static_cast<std::uint32_t>(args.get_int("stripes", 4)));
    } else if (algo == "rotating") {
      auto credit = std::make_unique<CreditLimited>(
          static_cast<std::uint32_t>(args.get_int("credit", 1)));
      sched = std::make_unique<RotatingRandomizedScheduler>(
          n, static_cast<std::uint32_t>(args.get_int("degree", 8)),
          static_cast<Tick>(args.get_int("period", 16)), opt, run_rng.split(1),
          credit.get());
      mech = std::move(credit);
    } else {
      throw std::invalid_argument("unknown algo: " + algo);
    }

    const RunResult r = run(cfg, *sched, mech.get());
    if (i == 0) {
      first_completed = r.completed;
      first_tick = r.completion_tick;
    }
    if (args.has("save-trace") && i == 0) {
      std::ofstream out(args.get_string("save-trace", ""));
      if (!out) throw std::invalid_argument("cannot open trace output file");
      write_trace(out, cfg, r);
    }
    if (args.has("fairness") && i == 0) {
      const FairnessSummary f = upload_fairness(r);
      std::cout << "fairness (clients): mean=" << fmt(f.mean, 1) << " min=" << fmt(f.min, 0)
                << " max=" << fmt(f.max, 0) << " gini=" << fmt(f.gini, 3) << "\n";
    }
    if (args.has("trace") && i == 0) {
      for (Tick t = 1; t <= r.trace.size(); ++t) {
        std::cout << "tick " << t << ":";
        for (const Transfer& tr : r.trace[t - 1]) {
          std::cout << "  " << tr.from << "->" << tr.to << " b" << tr.block;
        }
        std::cout << "\n";
      }
    }
    TrialOutcome out;
    out.completed = r.completed;
    if (r.completed) {
      out.completion = static_cast<double>(r.completion_tick);
      out.mean_completion = r.mean_client_completion();
    }
    return out;
  });

  Table table({"algo", "n", "k", "runs", "T", "mean-finish", "coop-bound"});
  const double cap = cfg.max_ticks != 0
                         ? static_cast<double>(cfg.max_ticks)
                         : static_cast<double>(default_tick_cap(n, k));
  table.add_row({algo, std::to_string(n), std::to_string(k), std::to_string(runs),
                 completion_cell(stats, cap),
                 stats.all_censored() ? "-" : fmt(stats.mean_completion.mean),
                 std::to_string(cooperative_lower_bound(n, k))});
  if (args.has("csv")) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - sweep_start)
          .count();
  std::cout << "# sweep: " << runs << " trials in " << fmt(sweep_seconds, 2) << " s ("
            << fmt(sweep_seconds > 0.0 ? runs / sweep_seconds : 0.0, 1)
            << " trials/s, jobs=" << (jobs == 0 ? default_jobs() : jobs) << ")\n";
  if (args.has("certify")) {
    // Only the overlay-sampling schedulers are bound by --overlay; everything
    // else may pair any two nodes, so the complete graph is the sound base.
    const bool overlay_bound =
        algo == "randomized" || algo == "credit-randomized" || algo == "tit-for-tat";
    Rng cert_rng(trial_seed(seed, 0));  // run 0's overlay draw, re-derived
    const std::shared_ptr<const scale::Topology> cert_topo =
        overlay_bound ? make_scale_topology(args, n, cert_rng)
                      : std::make_shared<scale::Topology>(scale::Topology::complete(n));
    const flow::BarterModel model =
        (algo == "riffle" || args.get_string("mechanism", "none") == "strict")
            ? flow::BarterModel::kStrictBarter
            : flow::BarterModel::kCooperative;
    print_certificate(cfg, *cert_topo, model, first_completed, first_tick);
  }
  return 0;
}

}  // namespace
}  // namespace pob

int main(int argc, char** argv) {
  try {
    return pob::main_impl(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "pobsim: " << e.what() << "\n";
    return 2;
  }
}
